// Microbenchmarks of the storage substrate (google-benchmark): B+-tree
// inserts/lookups, heap-file inserts/scans, tuple codec, buffer-pool churn,
// XML parsing throughput, and multi-threaded SELECT scaling over the shared
// statement lock. Supporting evidence for DESIGN.md's cost model of the
// higher-level experiments.

#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "ordb/bptree.h"
#include "ordb/buffer_pool.h"
#include "ordb/database.h"
#include "ordb/heap_file.h"
#include "ordb/pager.h"
#include "ordb/tuple.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace xorator::ordb {
namespace {

void BM_BPlusTreeInsert(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    MemoryPager pager;
    BufferPool pool(&pager, 8192);
    auto tree = BPlusTree::Create(&pool);
    std::mt19937_64 rng(42);
    state.ResumeTiming();
    for (int64_t i = 0; i < state.range(0); ++i) {
      benchmark::DoNotOptimize(tree->Insert(rng(), i));
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BPlusTreeInsert)->Arg(10000)->Arg(100000);

void BM_BPlusTreeLookup(benchmark::State& state) {
  MemoryPager pager;
  BufferPool pool(&pager, 8192);
  auto tree = BPlusTree::Create(&pool);
  std::mt19937_64 rng(42);
  std::vector<uint64_t> keys;
  for (int64_t i = 0; i < state.range(0); ++i) {
    keys.push_back(rng());
    XO_DISCARD_STATUS(tree->Insert(keys.back(), i),
                      "setup over a MemoryPager with ample pool capacity; an "
                      "insert failure would only shrink the lookup key set");
  }
  size_t at = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree->Find(keys[at++ % keys.size()]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BPlusTreeLookup)->Arg(100000);

void BM_HeapFileInsert(benchmark::State& state) {
  std::string record(static_cast<size_t>(state.range(0)), 'r');
  for (auto _ : state) {
    state.PauseTiming();
    MemoryPager pager;
    BufferPool pool(&pager, 8192);
    auto file = HeapFile::Create(&pool);
    state.ResumeTiming();
    for (int i = 0; i < 10000; ++i) {
      benchmark::DoNotOptimize(file->Insert(record));
    }
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_HeapFileInsert)->Arg(64)->Arg(512);

void BM_HeapFileScan(benchmark::State& state) {
  MemoryPager pager;
  BufferPool pool(&pager, 8192);
  auto file = HeapFile::Create(&pool);
  std::string record(128, 'r');
  for (int i = 0; i < 50000; ++i) {
    XO_DISCARD_STATUS(file->Insert(record),
                      "setup over a MemoryPager with ample pool capacity; a "
                      "failed insert only shortens the scanned file");
  }
  for (auto _ : state) {
    auto scanner = file->Scan();
    Rid rid;
    std::string rec;
    int64_t count = 0;
    while (*scanner.Next(&rid, &rec)) ++count;
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * 50000);
}
BENCHMARK(BM_HeapFileScan);

void BM_TupleCodec(benchmark::State& state) {
  TableSchema schema;
  schema.columns = {{"id", TypeId::kInteger},
                    {"parent", TypeId::kInteger},
                    {"order", TypeId::kInteger},
                    {"value", TypeId::kVarchar}};
  Tuple tuple = {Value::Int(12345), Value::Int(678), Value::Int(3),
                 Value::Varchar("But soft what light through yonder window")};
  for (auto _ : state) {
    std::string bytes;
    EncodeTuple(schema, tuple, &bytes);
    auto decoded = DecodeTuple(schema, bytes);
    benchmark::DoNotOptimize(decoded);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TupleCodec);

// The PageRef guard must be free in Release builds: the pin/unpin work is
// identical and the guard's bookkeeping (two pointers, an id, a bool) stays
// in registers — provided the guard's release path and the Fetch()/Create()
// wrappers are header-inline (an early out-of-line version cost hot-cache
// lookups ~10%). Measured raw-API vs guard binaries interleaved on the same
// machine (RelWithDebInfo, g++ 12, MemoryPager; median of 3 runs):
//   BM_BufferPoolChurn        raw 18430 ns   guard 18511 ns   (noise)
//   BM_BPlusTreeLookup/100000 raw   293 ns   guard   289 ns   (noise)
void BM_BufferPoolChurn(benchmark::State& state) {
  MemoryPager pager;
  BufferPool pool(&pager, 64);  // smaller than the working set
  std::vector<PageId> pages;
  for (int i = 0; i < 256; ++i) {
    auto p = pool.Create();
    if (!p.ok()) {
      state.SkipWithError("page allocation failed during setup");
      return;
    }
    pages.push_back(p->id());
    if (!p->Release().ok()) {
      state.SkipWithError("unbalanced release during setup");
      return;
    }
  }
  std::mt19937_64 rng(7);
  for (auto _ : state) {
    PageId id = pages[rng() % pages.size()];
    auto frame = pool.Fetch(id);
    benchmark::DoNotOptimize(frame);
    // The guard in `frame` unpins when it goes out of scope here.
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BufferPoolChurn);

// Read-side scaling of the statement lock (DESIGN.md section 10): the same
// indexed point SELECT from 1..8 threads against one shared database.
// SELECT takes the statement lock shared, so items/sec should grow with
// the thread count (bounded by cores); a flat curve here would mean the
// read path has re-serialized.
void BM_ConcurrentReaders(benchmark::State& state) {
  // One database shared by every benchmark thread, built by thread 0 and
  // deliberately leaked: google-benchmark gives no hook that runs after
  // the last thread exits but before the process does, and a static would
  // checkpoint during shutdown — pure noise for a memory-backed database.
  static Database* db = [] {
    auto opened = Database::Open({});
    if (!opened.ok()) return static_cast<Database*>(nullptr);
    auto* raw = opened->release();
    Status setup = raw->Execute("CREATE TABLE r (a INTEGER, b VARCHAR)");
    for (int i = 0; setup.ok() && i < 64; ++i) {
      setup = raw->Execute("INSERT INTO r VALUES (" + std::to_string(i) +
                           ", 'row" + std::to_string(i) + "')");
    }
    if (setup.ok()) setup = raw->Execute("CREATE INDEX ri ON r (a)");
    if (setup.ok()) setup = raw->RunStats();
    return setup.ok() ? raw : static_cast<Database*>(nullptr);
  }();
  if (db == nullptr) {
    state.SkipWithError("shared database setup failed");
    return;
  }
  const std::string sql =
      "SELECT b FROM r WHERE a = " + std::to_string(state.thread_index() * 7);
  for (auto _ : state) {
    auto r = db->Query(sql);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(r->rows);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ConcurrentReaders)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

// Cost of the query guardrails (DESIGN.md section 12): the same full-table
// aggregate scan with and without a QueryGuard attached. The guarded run
// pays one ctx->CheckPoint() per row — a relaxed atomic increment, with the
// monotonic clock read only every 32nd poll — so the two curves must stay
// within ~2% of each other. Measured interleaved on the same machine
// (RelWithDebInfo, g++ 12, 20000-row scan, median of 3 runs):
//   BM_GuardOverhead/guarded:0 4.97 ms   BM_GuardOverhead/guarded:1 5.03 ms
// (≈1.2% apart, within the stated budget).
void BM_GuardOverhead(benchmark::State& state) {
  // Shared across both arms and deliberately leaked, same reasoning as
  // BM_ConcurrentReaders above.
  static Database* db = [] {
    auto opened = Database::Open({});
    if (!opened.ok()) return static_cast<Database*>(nullptr);
    auto* raw = opened->release();
    Status setup = raw->Execute("CREATE TABLE g (a INTEGER, b VARCHAR)");
    std::vector<Tuple> rows;
    for (int i = 0; i < 20000; ++i) {
      rows.push_back({Value::Int(i), Value::Varchar("payload-row")});
    }
    if (setup.ok()) setup = raw->BulkInsert("g", rows);
    return setup.ok() ? raw : static_cast<Database*>(nullptr);
  }();
  if (db == nullptr) {
    state.SkipWithError("shared database setup failed");
    return;
  }
  const bool guarded = state.range(0) != 0;
  QueryOptions options;
  if (guarded) options.deadline_millis = 3'600'000;  // active, never trips
  for (auto _ : state) {
    auto r = guarded ? db->Query("SELECT COUNT(*) AS n FROM g", options)
                     : db->Query("SELECT COUNT(*) AS n FROM g");
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(r->rows);
  }
  state.SetItemsProcessed(state.iterations() * 20000);
}
BENCHMARK(BM_GuardOverhead)->ArgName("guarded")->Arg(0)->Arg(1);

// Cancellation latency: the wall time from Database::Cancel() returning to
// the victim SELECT actually surfacing kCancelled. Bounded by the checkpoint
// cadence — one poll per operator row, the clock read every 32nd poll — so
// this should sit in the tens of microseconds, not milliseconds (measured
// ~65 us median on the BM_GuardOverhead machine).
void BM_CancelLatency(benchmark::State& state) {
  static Database* db = [] {
    auto opened = Database::Open({});
    if (!opened.ok()) return static_cast<Database*>(nullptr);
    auto* raw = opened->release();
    Status setup = raw->Execute("CREATE TABLE c (a INTEGER)");
    std::vector<Tuple> rows;
    for (int i = 0; i < 2000; ++i) rows.push_back({Value::Int(i)});
    if (setup.ok()) setup = raw->BulkInsert("c", rows);
    return setup.ok() ? raw : static_cast<Database*>(nullptr);
  }();
  if (db == nullptr) {
    state.SkipWithError("shared database setup failed");
    return;
  }
  constexpr uint64_t kQueryId = 900;
  std::atomic<bool> victim_survived{false};
  for (auto _ : state) {
    // Nanoseconds-since-epoch of the moment Query() returned, written by
    // the victim thread right before it exits.
    std::atomic<int64_t> done_ns{0};
    std::thread victim([&] {
      QueryOptions options;
      options.query_id = kQueryId;
      // A three-way cross product (8e9 rows): never finishes on its own.
      auto r = db->Query("SELECT COUNT(*) AS n FROM c c1, c c2, c c3",
                         options);
      done_ns.store(std::chrono::steady_clock::now().time_since_epoch()
                        .count(),
                    std::memory_order_release);
      if (r.status().code() != StatusCode::kCancelled) {
        victim_survived.store(true, std::memory_order_relaxed);
      }
    });
    // Registration happens before the statement lock, so this spin is
    // short; once Cancel succeeds the stop is latched.
    while (!db->Cancel(kQueryId).ok()) std::this_thread::yield();
    const int64_t t0 =
        std::chrono::steady_clock::now().time_since_epoch().count();
    victim.join();
    const int64_t t1 = done_ns.load(std::memory_order_acquire);
    state.SetIterationTime(t1 > t0 ? static_cast<double>(t1 - t0) * 1e-9
                                   : 0.0);
  }
  if (victim_survived.load()) {
    state.SkipWithError("a victim query ended in something other than "
                        "kCancelled");
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CancelLatency)->UseManualTime();

void BM_XmlParse(benchmark::State& state) {
  std::string doc = "<SPEECH>";
  for (int i = 0; i < 32; ++i) {
    doc += "<LINE>but soft what light through yonder window breaks</LINE>";
  }
  doc += "</SPEECH>";
  for (auto _ : state) {
    auto parsed = xml::ParseDocument(doc);
    benchmark::DoNotOptimize(parsed);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(doc.size()));
}
BENCHMARK(BM_XmlParse);

}  // namespace
}  // namespace xorator::ordb

// Hand-rolled BENCHMARK_MAIN with one extra convenience flag:
//
//   --json[=path]   emit results as google-benchmark JSON (default path
//                   BENCH_engine_micro.json in the current directory) while
//                   keeping the human-readable console table on stdout.
//
// The flag is sugar for --benchmark_out=<path> --benchmark_out_format=json,
// so the emitted file is the standard benchmark schema and any explicit
// --benchmark_* flags still work alongside it.
int main(int argc, char** argv) {
  std::vector<std::string> args;
  args.reserve(static_cast<size_t>(argc) + 2);
  bool json = false;
  std::string json_path = "BENCH_engine_micro.json";
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      json = true;
      json_path = arg.substr(std::string("--json=").size());
    } else {
      args.push_back(arg);
    }
  }
  if (json) {
    args.push_back("--benchmark_out=" + json_path);
    args.push_back("--benchmark_out_format=json");
  }
  std::vector<char*> argv2;
  argv2.reserve(args.size());
  for (auto& a : args) argv2.push_back(a.data());
  int argc2 = static_cast<int>(argv2.size());
  benchmark::Initialize(&argc2, argv2.data());
  if (benchmark::ReportUnrecognizedArguments(argc2, argv2.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
