// Microbenchmarks of the storage substrate (google-benchmark): B+-tree
// inserts/lookups, heap-file inserts/scans, tuple codec, buffer-pool churn,
// XML parsing throughput, and multi-threaded SELECT scaling over the shared
// statement lock. Supporting evidence for DESIGN.md's cost model of the
// higher-level experiments.

#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "common/span.h"
#include "common/varint.h"
#include "ordb/bptree.h"
#include "ordb/buffer_pool.h"
#include "ordb/database.h"
#include "ordb/heap_file.h"
#include "ordb/pager.h"
#include "ordb/row_codec.h"
#include "ordb/tuple.h"
#include "xadt/functions.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace xorator::ordb {
namespace {

void BM_BPlusTreeInsert(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    MemoryPager pager;
    BufferPool pool(&pager, 8192);
    auto tree = BPlusTree::Create(&pool);
    std::mt19937_64 rng(42);
    state.ResumeTiming();
    for (int64_t i = 0; i < state.range(0); ++i) {
      benchmark::DoNotOptimize(tree->Insert(rng(), i));
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BPlusTreeInsert)->Arg(10000)->Arg(100000);

void BM_BPlusTreeLookup(benchmark::State& state) {
  MemoryPager pager;
  BufferPool pool(&pager, 8192);
  auto tree = BPlusTree::Create(&pool);
  std::mt19937_64 rng(42);
  std::vector<uint64_t> keys;
  for (int64_t i = 0; i < state.range(0); ++i) {
    keys.push_back(rng());
    XO_DISCARD_STATUS(tree->Insert(keys.back(), i),
                      "setup over a MemoryPager with ample pool capacity; an "
                      "insert failure would only shrink the lookup key set");
  }
  size_t at = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree->Find(keys[at++ % keys.size()]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BPlusTreeLookup)->Arg(100000);

void BM_HeapFileInsert(benchmark::State& state) {
  std::string record(static_cast<size_t>(state.range(0)), 'r');
  for (auto _ : state) {
    state.PauseTiming();
    MemoryPager pager;
    BufferPool pool(&pager, 8192);
    auto file = HeapFile::Create(&pool);
    state.ResumeTiming();
    for (int i = 0; i < 10000; ++i) {
      benchmark::DoNotOptimize(file->Insert(record));
    }
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_HeapFileInsert)->Arg(64)->Arg(512);

void BM_HeapFileScan(benchmark::State& state) {
  MemoryPager pager;
  BufferPool pool(&pager, 8192);
  auto file = HeapFile::Create(&pool);
  std::string record(128, 'r');
  for (int i = 0; i < 50000; ++i) {
    XO_DISCARD_STATUS(file->Insert(record),
                      "setup over a MemoryPager with ample pool capacity; a "
                      "failed insert only shortens the scanned file");
  }
  for (auto _ : state) {
    auto scanner = file->Scan();
    Rid rid;
    std::string rec;
    int64_t count = 0;
    while (*scanner.Next(&rid, &rec)) ++count;
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * 50000);
}
BENCHMARK(BM_HeapFileScan);

void BM_TupleCodec(benchmark::State& state) {
  TableSchema schema;
  schema.columns = {{"id", TypeId::kInteger},
                    {"parent", TypeId::kInteger},
                    {"order", TypeId::kInteger},
                    {"value", TypeId::kVarchar}};
  Tuple tuple = {Value::Int(12345), Value::Int(678), Value::Int(3),
                 Value::Varchar("But soft what light through yonder window")};
  for (auto _ : state) {
    std::string bytes;
    EncodeTuple(schema, tuple, &bytes);
    auto decoded = DecodeTuple(schema, bytes);
    benchmark::DoNotOptimize(decoded);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TupleCodec);

// The copying row decoder the zero-copy data plane replaced (DESIGN.md
// section 14), preserved verbatim as BM_RowDecode's baseline arm: a fresh
// Tuple per row, a heap std::string copy per string column, and a Value
// factory call per column. DecodeTuple itself now parses through RowView
// and materializes in place, so this is the only remaining copy of the old
// behaviour.
Result<Tuple> DecodeTupleCopying(const TableSchema& schema,
                                 std::string_view bytes) {
  size_t n = schema.columns.size();
  size_t bitmap_bytes = (n + 7) / 8;
  if (bytes.size() < bitmap_bytes) {
    return Status::Internal("tuple shorter than its null bitmap");
  }
  Tuple tuple;
  tuple.reserve(n);
  size_t pos = bitmap_bytes;
  for (size_t i = 0; i < n; ++i) {
    bool null = (static_cast<uint8_t>(bytes[i / 8]) >> (i % 8)) & 1;
    if (null) {
      tuple.push_back(Value::Null());
      continue;
    }
    switch (schema.columns[i].type) {
      case TypeId::kBoolean: {
        if (bytes.size() - pos < 1) {
          return Status::Internal("truncated boolean in tuple");
        }
        tuple.push_back(Value::Bool(bytes[pos] != 0));
        pos += 1;
        break;
      }
      case TypeId::kInteger: {
        if (bytes.size() - pos < 8) {
          return Status::Internal("truncated integer in tuple");
        }
        tuple.push_back(Value::Int(xo::LoadFixedUnchecked<int64_t>(bytes, pos)));
        pos += 8;
        break;
      }
      case TypeId::kDouble: {
        if (bytes.size() - pos < 8) {
          return Status::Internal("truncated double in tuple");
        }
        tuple.push_back(Value::Double(xo::LoadFixedUnchecked<double>(bytes, pos)));
        pos += 8;
        break;
      }
      case TypeId::kVarchar:
      case TypeId::kXadt: {
        XO_ASSIGN_OR_RETURN(uint64_t len, GetVarint(bytes, &pos));
        if (len > bytes.size() - pos) {
          return Status::Internal("truncated string in tuple");
        }
        std::string s(bytes.substr(pos, len));
        pos += len;
        tuple.push_back(schema.columns[i].type == TypeId::kVarchar
                            ? Value::Varchar(std::move(s))
                            : Value::Xadt(std::move(s)));
        break;
      }
      case TypeId::kNull:
        tuple.push_back(Value::Null());
        break;
    }
  }
  return tuple;
}

// Copy vs in-place decode of one representative element-table record: two
// ids, a flag, a score, a short tag, and a ~300-byte XADT fragment — the
// row shape every scan operator decodes per heap-file record. The copying
// arm is DecodeTupleCopying above; the in-place arm is what the executor
// does now: RowView::Parse over the record buffer, then Materialize into a
// Tuple whose Values are reused across rows (string capacity recycled by
// the in-place setters, so the steady state allocates nothing).
void BM_RowDecode(benchmark::State& state) {
  TableSchema schema;
  schema.columns = {{"id", TypeId::kInteger},
                    {"parent", TypeId::kInteger},
                    {"live", TypeId::kBoolean},
                    {"score", TypeId::kDouble},
                    {"tag", TypeId::kVarchar},
                    {"frag", TypeId::kXadt}};
  std::string frag = "<SPEECH>";
  for (int l = 0; l < 5; ++l) {
    frag += "<LINE>but soft what light through yonder window breaks</LINE>";
  }
  frag += "</SPEECH>";
  Tuple row = {Value::Int(12345),       Value::Int(678),
               Value::Bool(true),       Value::Double(3.25),
               Value::Varchar("LINE"),  Value::Xadt(frag)};
  std::string bytes;
  EncodeTuple(schema, row, &bytes);
  const bool in_place = state.range(0) != 0;
  Tuple reused;
  for (auto _ : state) {
    if (in_place) {
      auto view = RowView::Parse(schema, bytes);
      if (!view.ok()) {
        state.SkipWithError(view.status().ToString().c_str());
        return;
      }
      view->Materialize(&reused);
      benchmark::DoNotOptimize(reused);
    } else {
      auto decoded = DecodeTupleCopying(schema, bytes);
      if (!decoded.ok()) {
        state.SkipWithError(decoded.status().ToString().c_str());
        return;
      }
      benchmark::DoNotOptimize(*decoded);
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RowDecode)->ArgName("inplace")->Arg(0)->Arg(1);

// The PageRef guard must be free in Release builds: the pin/unpin work is
// identical and the guard's bookkeeping (two pointers, an id, a bool) stays
// in registers — provided the guard's release path and the Fetch()/Create()
// wrappers are header-inline (an early out-of-line version cost hot-cache
// lookups ~10%). Measured raw-API vs guard binaries interleaved on the same
// machine (RelWithDebInfo, g++ 12, MemoryPager; median of 3 runs):
//   BM_BufferPoolChurn        raw 18430 ns   guard 18511 ns   (noise)
//   BM_BPlusTreeLookup/100000 raw   293 ns   guard   289 ns   (noise)
void BM_BufferPoolChurn(benchmark::State& state) {
  MemoryPager pager;
  BufferPool pool(&pager, 64);  // smaller than the working set
  std::vector<PageId> pages;
  for (int i = 0; i < 256; ++i) {
    auto p = pool.Create();
    if (!p.ok()) {
      state.SkipWithError("page allocation failed during setup");
      return;
    }
    pages.push_back(p->id());
    if (!p->Release().ok()) {
      state.SkipWithError("unbalanced release during setup");
      return;
    }
  }
  std::mt19937_64 rng(7);
  for (auto _ : state) {
    PageId id = pages[rng() % pages.size()];
    auto frame = pool.Fetch(id);
    benchmark::DoNotOptimize(frame);
    // The guard in `frame` unpins when it goes out of scope here.
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BufferPoolChurn);

// Shard contention in the buffer pool (DESIGN.md section 15): every
// benchmark thread hammers Fetch/Unpin on resident pages. With
// `disjoint:1` each thread's pages all hash to its own bucket, so under
// the sharded pool the threads touch disjoint latches and never contend;
// with `disjoint:0` every page hashes to bucket 0 and all threads fight
// over one latch — the pre-shard single-`mu_` behaviour reproduced on
// demand. The gap between the two arms (and between `disjoint:1` here
// and the single-latch baseline recorded in BENCH_engine_micro.json) is
// the direct measure of what the shard split buys.
void BM_DisjointPageFetch(benchmark::State& state) {
  // Shared across all benchmark threads and deliberately leaked, same
  // reasoning as BM_ConcurrentReaders below.
  struct Shared {
    MemoryPager pager;
    BufferPool pool{&pager, 128};  // 16 buckets, all pages resident
    std::vector<PageId> pages;
  };
  static Shared* shared = [] {
    auto* s = new Shared();
    for (int i = 0; i < 128; ++i) {
      auto p = s->pool.Create();
      if (!p.ok()) return static_cast<Shared*>(nullptr);
      const PageId id = p->id();
      if (!p->Release().ok()) return static_cast<Shared*>(nullptr);
      s->pages.push_back(id);
    }
    if (!s->pool.FlushAll().ok()) return static_cast<Shared*>(nullptr);
    return s;
  }();
  if (shared == nullptr) {
    state.SkipWithError("pool setup failed");
    return;
  }
  const bool disjoint = state.range(0) != 0;
  const size_t buckets = shared->pool.bucket_count();
  // disjoint:1 — thread t's pages satisfy id % buckets == t % buckets.
  // disjoint:0 — everyone's pages satisfy id % buckets == 0.
  std::vector<PageId> mine;
  for (PageId id : shared->pages) {
    const size_t want = disjoint
                            ? static_cast<size_t>(state.thread_index()) % buckets
                            : 0;
    if (id % buckets == want) mine.push_back(id);
  }
  size_t next = 0;
  for (auto _ : state) {
    auto frame = shared->pool.Fetch(mine[next]);
    if (!frame.ok()) {
      state.SkipWithError("fetch failed");
      return;
    }
    benchmark::DoNotOptimize(*frame);
    next = (next + 1) % mine.size();
    // The guard unpins as `frame` dies here.
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DisjointPageFetch)
    ->ArgName("disjoint")
    ->Arg(1)
    ->Arg(0)
    ->Threads(1)
    ->Threads(8)
    ->UseRealTime();

// Read-side scaling of the statement lock (DESIGN.md section 10): the same
// indexed point SELECT from 1..8 threads against one shared database.
// SELECT takes the statement lock shared, so items/sec should grow with
// the thread count (bounded by cores); a flat curve here would mean the
// read path has re-serialized.
void BM_ConcurrentReaders(benchmark::State& state) {
  // One database shared by every benchmark thread, built by thread 0 and
  // deliberately leaked: google-benchmark gives no hook that runs after
  // the last thread exits but before the process does, and a static would
  // checkpoint during shutdown — pure noise for a memory-backed database.
  static Database* db = [] {
    auto opened = Database::Open({});
    if (!opened.ok()) return static_cast<Database*>(nullptr);
    auto* raw = opened->release();
    Status setup = raw->Execute("CREATE TABLE r (a INTEGER, b VARCHAR)");
    for (int i = 0; setup.ok() && i < 64; ++i) {
      setup = raw->Execute("INSERT INTO r VALUES (" + std::to_string(i) +
                           ", 'row" + std::to_string(i) + "')");
    }
    if (setup.ok()) setup = raw->Execute("CREATE INDEX ri ON r (a)");
    if (setup.ok()) setup = raw->RunStats();
    return setup.ok() ? raw : static_cast<Database*>(nullptr);
  }();
  if (db == nullptr) {
    state.SkipWithError("shared database setup failed");
    return;
  }
  const std::string sql =
      "SELECT b FROM r WHERE a = " + std::to_string(state.thread_index() * 7);
  for (auto _ : state) {
    auto r = db->Query(sql);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(r->rows);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ConcurrentReaders)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

// Cost of the query guardrails (DESIGN.md section 12): the same full-table
// aggregate scan with and without a QueryGuard attached. The guarded run
// pays one ctx->CheckPoint() per row — a relaxed atomic increment, with the
// monotonic clock read only every 32nd poll — so the two curves must stay
// within ~2% of each other. Measured interleaved on the same machine
// (RelWithDebInfo, g++ 12, 20000-row scan, median of 3 runs):
//   BM_GuardOverhead/guarded:0 4.97 ms   BM_GuardOverhead/guarded:1 5.03 ms
// (≈1.2% apart, within the stated budget).
void BM_GuardOverhead(benchmark::State& state) {
  // Shared across both arms and deliberately leaked, same reasoning as
  // BM_ConcurrentReaders above.
  static Database* db = [] {
    auto opened = Database::Open({});
    if (!opened.ok()) return static_cast<Database*>(nullptr);
    auto* raw = opened->release();
    Status setup = raw->Execute("CREATE TABLE g (a INTEGER, b VARCHAR)");
    std::vector<Tuple> rows;
    for (int i = 0; i < 20000; ++i) {
      rows.push_back({Value::Int(i), Value::Varchar("payload-row")});
    }
    if (setup.ok()) setup = raw->BulkInsert("g", rows);
    return setup.ok() ? raw : static_cast<Database*>(nullptr);
  }();
  if (db == nullptr) {
    state.SkipWithError("shared database setup failed");
    return;
  }
  const bool guarded = state.range(0) != 0;
  QueryOptions options;
  if (guarded) options.deadline_millis = 3'600'000;  // active, never trips
  for (auto _ : state) {
    auto r = guarded ? db->Query("SELECT COUNT(*) AS n FROM g", options)
                     : db->Query("SELECT COUNT(*) AS n FROM g");
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(r->rows);
  }
  state.SetItemsProcessed(state.iterations() * 20000);
}
BENCHMARK(BM_GuardOverhead)->ArgName("guarded")->Arg(0)->Arg(1);

// Cancellation latency: the wall time from Database::Cancel() returning to
// the victim SELECT actually surfacing kCancelled. Bounded by the checkpoint
// cadence — one poll per operator row, the clock read every 32nd poll — so
// this should sit in the tens of microseconds, not milliseconds (measured
// ~65 us median on the BM_GuardOverhead machine).
void BM_CancelLatency(benchmark::State& state) {
  static Database* db = [] {
    auto opened = Database::Open({});
    if (!opened.ok()) return static_cast<Database*>(nullptr);
    auto* raw = opened->release();
    Status setup = raw->Execute("CREATE TABLE c (a INTEGER)");
    std::vector<Tuple> rows;
    for (int i = 0; i < 2000; ++i) rows.push_back({Value::Int(i)});
    if (setup.ok()) setup = raw->BulkInsert("c", rows);
    return setup.ok() ? raw : static_cast<Database*>(nullptr);
  }();
  if (db == nullptr) {
    state.SkipWithError("shared database setup failed");
    return;
  }
  constexpr uint64_t kQueryId = 900;
  std::atomic<bool> victim_survived{false};
  for (auto _ : state) {
    // Nanoseconds-since-epoch of the moment Query() returned, written by
    // the victim thread right before it exits.
    std::atomic<int64_t> done_ns{0};
    std::thread victim([&] {
      QueryOptions options;
      options.query_id = kQueryId;
      // A three-way cross product (8e9 rows): never finishes on its own.
      auto r = db->Query("SELECT COUNT(*) AS n FROM c c1, c c2, c c3",
                         options);
      done_ns.store(std::chrono::steady_clock::now().time_since_epoch()
                        .count(),
                    std::memory_order_release);
      if (r.status().code() != StatusCode::kCancelled) {
        victim_survived.store(true, std::memory_order_relaxed);
      }
    });
    // Registration happens before the statement lock, so this spin is
    // short; once Cancel succeeds the stop is latched.
    while (!db->Cancel(kQueryId).ok()) std::this_thread::yield();
    const int64_t t0 =
        std::chrono::steady_clock::now().time_since_epoch().count();
    victim.join();
    const int64_t t1 = done_ns.load(std::memory_order_acquire);
    state.SetIterationTime(t1 > t0 ? static_cast<double>(t1 - t0) * 1e-9
                                   : 0.0);
  }
  if (victim_survived.load()) {
    state.SkipWithError("a victim query ended in something other than "
                        "kCancelled");
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CancelLatency)->UseManualTime();

// One Fig. 11 query end to end: the XORator form of QS3 ("lines with the
// keyword 'Rising' in the text of the stage direction") — a sequential scan
// whose filter calls findKeyInElm and whose projection calls getElm on an
// XADT column. This is the decode-path-bound query shape: every row is
// fetched from the heap file, decoded, and its XADT payload streamed, so
// it tracks the scan/decode improvements the row codec targets. Measured
// on the same machine before and after the switch to the zero-copy plane
// (same build config, median of 3 runs; see also BM_RowDecode above):
//   before (copying DecodeTuple + per-row Tuple)  947 us
//   after  (RowView recheck + in-place decode)    720 us   (~1.3x)
void BM_Fig11Qs3Scan(benchmark::State& state) {
  // Shared and deliberately leaked, same reasoning as BM_ConcurrentReaders.
  static Database* db = [] {
    auto opened = Database::Open({});
    if (!opened.ok()) return static_cast<Database*>(nullptr);
    auto* raw = opened->release();
    Status setup = xadt::RegisterXadtFunctions(raw->functions());
    if (setup.ok()) {
      setup =
          raw->Execute("CREATE TABLE speech (id INTEGER, speech_line XADT)");
    }
    for (int i = 0; setup.ok() && i < 512; ++i) {
      std::string doc = "<SPEECH>";
      for (int l = 0; l < 6; ++l) {
        doc += "<LINE>but soft what light through yonder window breaks";
        // Every 16th speech carries the stage direction QS3 looks for.
        if (l == 0 && i % 16 == 0) doc += "<STAGEDIR>Rising</STAGEDIR>";
        doc += "</LINE>";
      }
      doc += "</SPEECH>";
      setup = raw->Execute("INSERT INTO speech VALUES (" + std::to_string(i) +
                           ", '" + doc + "')");
    }
    return setup.ok() ? raw : static_cast<Database*>(nullptr);
  }();
  if (db == nullptr) {
    state.SkipWithError("shared database setup failed");
    return;
  }
  const std::string sql =
      "SELECT getElm(speech_line, 'LINE', 'STAGEDIR', 'Rising') "
      "FROM speech WHERE findKeyInElm(speech_line, 'STAGEDIR', 'Rising') = 1";
  for (auto _ : state) {
    auto r = db->Query(sql);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    if (r->rows.size() != 32) {
      state.SkipWithError("unexpected QS3 result cardinality");
      return;
    }
    benchmark::DoNotOptimize(r->rows);
  }
  state.SetItemsProcessed(state.iterations() * 512);
}
BENCHMARK(BM_Fig11Qs3Scan);

void BM_XmlParse(benchmark::State& state) {
  std::string doc = "<SPEECH>";
  for (int i = 0; i < 32; ++i) {
    doc += "<LINE>but soft what light through yonder window breaks</LINE>";
  }
  doc += "</SPEECH>";
  for (auto _ : state) {
    auto parsed = xml::ParseDocument(doc);
    benchmark::DoNotOptimize(parsed);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(doc.size()));
}
BENCHMARK(BM_XmlParse);

}  // namespace
}  // namespace xorator::ordb

// Hand-rolled BENCHMARK_MAIN with one extra convenience flag:
//
//   --json[=path]   emit results as google-benchmark JSON (default path
//                   BENCH_engine_micro.json in the current directory) while
//                   keeping the human-readable console table on stdout.
//
// The flag is sugar for --benchmark_out=<path> --benchmark_out_format=json,
// so the emitted file is the standard benchmark schema and any explicit
// --benchmark_* flags still work alongside it.
int main(int argc, char** argv) {
  std::vector<std::string> args;
  args.reserve(static_cast<size_t>(argc) + 2);
  bool json = false;
  std::string json_path = "BENCH_engine_micro.json";
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      json = true;
      json_path = arg.substr(std::string("--json=").size());
    } else {
      args.push_back(arg);
    }
  }
  if (json) {
    args.push_back("--benchmark_out=" + json_path);
    args.push_back("--benchmark_out_format=json");
  }
  std::vector<char*> argv2;
  argv2.reserve(args.size());
  for (auto& a : args) argv2.push_back(a.data());
  int argc2 = static_cast<int>(argv2.size());
  benchmark::Initialize(&argc2, argv2.data());
  if (benchmark::ReportUnrecognizedArguments(argc2, argv2.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
