// Reproduces Figure 11 of the paper: Hybrid/XORator response-time ratios
// for queries QS1-QS6 and loading time on the Shakespeare data set, at
// scale factors DSx1/x2/x4/x8.
//
// Environment: XORATOR_PLAYS, XORATOR_MAX_SCALE (default 8 at full scale,
// 4 otherwise), XORATOR_RUNS (default 5, the paper's protocol).

#include <cstdio>

#include "benchutil/benchutil.h"
#include "benchutil/workload.h"
#include "datagen/dtds.h"
#include "datagen/generators.h"
#include "figure_common.h"

namespace xorator {
namespace {

int Run() {
  bool full = benchutil::FullScale();
  datagen::ShakespeareOptions gen_opts;
  gen_opts.plays = bench::EnvInt("PLAYS", full ? 37 : 8);
  int max_scale = bench::EnvInt("MAX_SCALE", 8);
  int runs = bench::EnvInt("RUNS", full ? 5 : 3);
  std::vector<int> scales;
  for (int s = 1; s <= max_scale; s *= 2) scales.push_back(s);

  auto corpus = datagen::ShakespeareGenerator(gen_opts).GenerateCorpus();
  std::vector<const xml::Node*> docs;
  for (const auto& d : corpus) docs.push_back(d.get());
  std::printf(
      "== Figure 11: Shakespeare queries, Hybrid vs XORator (%d plays = %s, "
      "scales up to DSx%d, %d runs/query) ==\n"
      "Paper shape: XORator wins QS1-QS5 (often ~10x), loses QS6 (order "
      "access); loading is much faster under XORator.\n\n",
      gen_opts.plays, benchutil::FmtBytes(datagen::CorpusBytes(corpus)).c_str(),
      max_scale, runs);

  auto result = bench::RunFigure(datagen::kShakespeareDtd, docs,
                                 benchutil::ShakespeareQueries(), scales,
                                 runs);
  if (!result.ok()) {
    std::fprintf(stderr, "error: %s\n", result.status().ToString().c_str());
    return 1;
  }
  bench::PrintFigure(*result, benchutil::ShakespeareQueries(), scales);
  return 0;
}

}  // namespace
}  // namespace xorator

int main() { return xorator::Run(); }
