// Reproduces Figure 13 of the paper: Hybrid/XORator response-time ratios
// for queries QG1-QG6 and loading time on the SIGMOD-Proceedings data set,
// at scale factors DSx1/x2/x4/x8.
//
// Paper shape: at small scales XORator loses (every query pays 4-8 UDF
// calls per tuple against the single XADT column), at larger scales it wins
// as the Hybrid joins outgrow the sort heap and fall back to sort-merge.
//
// Environment: XORATOR_SIGMOD_DOCS, XORATOR_MAX_SCALE, XORATOR_RUNS.

#include <cstdio>

#include "benchutil/benchutil.h"
#include "benchutil/workload.h"
#include "datagen/dtds.h"
#include "datagen/generators.h"
#include "figure_common.h"

namespace xorator {
namespace {

int Run() {
  bool full = benchutil::FullScale();
  datagen::SigmodOptions gen_opts;
  gen_opts.documents = bench::EnvInt("SIGMOD_DOCS", full ? 3000 : 400);
  int max_scale = bench::EnvInt("MAX_SCALE", 8);
  int runs = bench::EnvInt("RUNS", full ? 5 : 3);
  std::vector<int> scales;
  for (int s = 1; s <= max_scale; s *= 2) scales.push_back(s);

  auto corpus = datagen::SigmodGenerator(gen_opts).GenerateCorpus();
  std::vector<const xml::Node*> docs;
  for (const auto& d : corpus) docs.push_back(d.get());
  std::printf(
      "== Figure 13: SIGMOD Proceedings queries, Hybrid vs XORator (%d docs "
      "= %s, scales up to DSx%d, %d runs/query) ==\n"
      "Paper shape: ratios below 1 at DSx1/x2 (UDF-call overhead), above 1 "
      "at DSx4/x8 (joins outgrow the sort heap).\n\n",
      gen_opts.documents,
      benchutil::FmtBytes(datagen::CorpusBytes(corpus)).c_str(), max_scale,
      runs);

  auto result = bench::RunFigure(datagen::kSigmodDtd, docs,
                                 benchutil::SigmodQueries(), scales, runs);
  if (!result.ok()) {
    std::fprintf(stderr, "error: %s\n", result.status().ToString().c_str());
    return 1;
  }
  bench::PrintFigure(*result, benchutil::SigmodQueries(), scales);
  return 0;
}

}  // namespace
}  // namespace xorator

int main() { return xorator::Run(); }
