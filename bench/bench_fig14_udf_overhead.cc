// Reproduces Figure 14 of the paper: the cost of invoking a UDF relative to
// the equivalent built-in function. QT1 computes length(speaker_value) and
// QT2 substr(speaker_value, 5) over the Hybrid Shakespeare speaker table,
// once with the built-in and once with a UDF twin that goes through the UDF
// marshaling dispatch.
//
// Paper result: the UDF is ~40% more expensive than the built-in.

#include <cstdio>

#include "benchutil/benchutil.h"
#include "benchutil/fixture.h"
#include "benchutil/workload.h"
#include "datagen/dtds.h"
#include "datagen/generators.h"
#include "figure_common.h"

namespace xorator {
namespace {

using benchutil::BuildExperimentDb;
using benchutil::ExperimentOptions;
using benchutil::Mapping;

int Run() {
  bool full = benchutil::FullScale();
  datagen::ShakespeareOptions gen_opts;
  gen_opts.plays = bench::EnvInt("PLAYS", full ? 37 : 12);
  int runs = bench::EnvInt("RUNS", 7);
  // Load the corpus several times so each query touches enough tuples for
  // stable timing (the paper's run returned 31,028 tuples).
  int multiplier = bench::EnvInt("UDF_MULTIPLIER", 4);

  auto corpus = datagen::ShakespeareGenerator(gen_opts).GenerateCorpus();
  std::vector<const xml::Node*> docs;
  for (const auto& d : corpus) docs.push_back(d.get());

  ExperimentOptions opts;
  opts.mapping = Mapping::kHybrid;
  opts.load_multiplier = multiplier;
  auto db = BuildExperimentDb(datagen::kShakespeareDtd, docs, opts);
  if (!db.ok()) {
    std::fprintf(stderr, "load: %s\n", db.status().ToString().c_str());
    return 1;
  }
  auto rows = db->db->Query("SELECT COUNT(*) AS n FROM speaker");
  if (!rows.ok()) {
    std::fprintf(stderr, "count: %s\n", rows.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "== Figure 14: UDF invocation overhead (QT1/QT2 over %lld speaker "
      "tuples, %d runs) ==\n\n",
      static_cast<long long>(rows->rows[0][0].AsInt()), runs);

  benchutil::TablePrinter table({"Query", "Built-in (ms)", "UDF (ms)",
                                 "UDF/Built-in", "Paper"});
  for (const auto& q : benchutil::UdfOverheadQueries()) {
    auto builtin = benchutil::TimeMedianOfMiddle(
        [&]() { return db->db->Query(q.hybrid_sql).status(); }, runs);
    auto udf = benchutil::TimeMedianOfMiddle(
        [&]() { return db->db->Query(q.xorator_sql).status(); }, runs);
    if (!builtin.ok() || !udf.ok()) {
      std::fprintf(stderr, "%s failed\n", q.id.c_str());
      return 1;
    }
    table.AddRow({q.id, benchutil::Fmt(*builtin, 2), benchutil::Fmt(*udf, 2),
                  benchutil::Fmt(*udf / *builtin, 2), "~1.4"});
  }
  table.Print();

  auto stats = db->db->Query("SELECT udf_length(speaker_value) FROM speaker");
  if (stats.ok()) {
    std::printf(
        "\nUDF dispatch accounting for one QT1 run: %llu scalar calls, %s "
        "marshaled across the UDF boundary\n",
        static_cast<unsigned long long>(stats->udf_stats.scalar_calls),
        benchutil::FmtBytes(stats->udf_stats.marshaled_bytes).c_str());
  }
  return 0;
}

}  // namespace
}  // namespace xorator

int main() { return xorator::Run(); }
