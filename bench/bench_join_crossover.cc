// Ablation for the Figure 13 crossover mechanism (Section 4.4): the same
// Hybrid join query executed with each join algorithm the planner can pick
// (index nested-loop, hash, sort-merge), against the XORator single-table
// scan, across scale factors. Shows why the Hybrid side degrades once its
// build sides outgrow the sort heap while the XORator side stays a linear
// scan with a constant number of UDF calls per tuple.

#include <cstdio>

#include "benchutil/benchutil.h"
#include "benchutil/fixture.h"
#include "benchutil/workload.h"
#include "datagen/dtds.h"
#include "datagen/generators.h"
#include "figure_common.h"

namespace xorator {
namespace {

using benchutil::BuildExperimentDb;
using benchutil::ExperimentOptions;
using benchutil::Mapping;

int Run() {
  bool full = benchutil::FullScale();
  datagen::SigmodOptions gen_opts;
  gen_opts.documents = bench::EnvInt("SIGMOD_DOCS", full ? 1500 : 300);
  int max_scale = bench::EnvInt("MAX_SCALE", full ? 8 : 4);
  int runs = bench::EnvInt("RUNS", 3);
  // QG2: the five-way flattening join, the paper's most join-heavy query.
  const std::string hybrid_sql = benchutil::SigmodQueries()[1].hybrid_sql;
  const std::string xorator_sql = benchutil::SigmodQueries()[1].xorator_sql;

  auto corpus = datagen::SigmodGenerator(gen_opts).GenerateCorpus();
  std::vector<const xml::Node*> docs;
  for (const auto& d : corpus) docs.push_back(d.get());
  std::printf(
      "== Join-algorithm ablation on QG2 (%d docs, scales up to DSx%d) ==\n"
      "Columns are milliseconds for the Hybrid plan under each forced join "
      "algorithm, and for the XORator UDF-scan plan.\n\n",
      gen_opts.documents, max_scale);

  benchutil::TablePrinter table({"Scale", "Hybrid hash", "Hybrid sort-merge",
                                 "Hybrid auto", "XORator scan"});
  for (int scale = 1; scale <= max_scale; scale *= 2) {
    auto time_hybrid = [&](bool hash, size_t sort_heap,
                           bool index) -> Result<double> {
      ExperimentOptions opts;
      opts.mapping = Mapping::kHybrid;
      opts.load_multiplier = scale;
      opts.db_options.planner.enable_hash_join = hash;
      opts.db_options.planner.enable_index_join = index;
      opts.db_options.planner.sort_heap_bytes = sort_heap;
      XO_ASSIGN_OR_RETURN(auto db,
                          BuildExperimentDb(datagen::kSigmodDtd, docs, opts));
      return benchutil::TimeMedianOfMiddle(
          [&]() { return db.db->Query(hybrid_sql).status(); }, runs);
    };
    auto hash_ms =
        time_hybrid(true, static_cast<size_t>(1) << 40, false);  // always hash
    auto merge_ms = time_hybrid(false, 0, false);  // always sort-merge
    auto auto_ms = time_hybrid(true, 8u << 20, true);  // default policy

    ExperimentOptions xopts;
    xopts.mapping = Mapping::kXorator;
    xopts.load_multiplier = scale;
    auto xdb = BuildExperimentDb(datagen::kSigmodDtd, docs, xopts);
    if (!hash_ms.ok() || !merge_ms.ok() || !auto_ms.ok() || !xdb.ok()) {
      std::fprintf(stderr, "scale %d failed\n", scale);
      return 1;
    }
    auto xorator_ms = benchutil::TimeMedianOfMiddle(
        [&]() { return xdb->db->Query(xorator_sql).status(); }, runs);
    if (!xorator_ms.ok()) {
      std::fprintf(stderr, "xorator scale %d failed\n", scale);
      return 1;
    }
    table.AddRow({"DSx" + std::to_string(scale), benchutil::Fmt(*hash_ms, 2),
                  benchutil::Fmt(*merge_ms, 2), benchutil::Fmt(*auto_ms, 2),
                  benchutil::Fmt(*xorator_ms, 2)});
  }
  table.Print();
  std::printf(
      "\nExpected shape: hash stays near-linear; sort-merge grows "
      "O(n log n); the auto policy tracks hash at small scales and "
      "sort-merge once the build side exceeds the sort heap. The XORator "
      "scan is linear with a higher per-tuple constant (UDF parsing).\n");
  return 0;
}

}  // namespace
}  // namespace xorator

int main() { return xorator::Run(); }
