// Mapping-algorithm ablation (beyond the paper's two-way comparison): the
// SIGMOD corpus loaded under Hybrid, Shared, PerElement (Monet-style),
// XORator, and the statistics-tuned XORator of Section 5's future work.
// Reports schema size, database/index bytes, load time, and the time of a
// QG5-style selective aggregation expressed against each schema.

#include <cstdio>

#include "benchutil/benchutil.h"
#include "benchutil/fixture.h"
#include "datagen/dtds.h"
#include "datagen/generators.h"
#include "figure_common.h"

namespace xorator {
namespace {

using benchutil::BuildExperimentDb;
using benchutil::ExperimentOptions;
using benchutil::Mapping;

const char* kJoinQg5 =
    "SELECT COUNT(*) AS n FROM atuple, authors, author "
    "WHERE authors_parentID = atupleID AND author_parentID = authorsID "
    "AND author_value LIKE '%Bird%'";
const char* kXoratorQg5 =
    "SELECT COUNT(*) AS n FROM pp, "
    "table(unnest(getElm(pp_slist, 'author', '', ''), 'author')) a "
    "WHERE a.out LIKE '%Bird%'";
const char* kTunedQg5 =
    "SELECT COUNT(*) AS n FROM atuple, "
    "table(unnest(getElm(atuple_authors, 'author', '', ''), 'author')) a "
    "WHERE a.out LIKE '%Bird%'";

int Run() {
  bool full = benchutil::FullScale();
  datagen::SigmodOptions gen_opts;
  gen_opts.documents = bench::EnvInt("SIGMOD_DOCS", full ? 1500 : 400);
  int runs = bench::EnvInt("RUNS", 3);
  auto corpus = datagen::SigmodGenerator(gen_opts).GenerateCorpus();
  std::vector<const xml::Node*> docs;
  for (const auto& d : corpus) docs.push_back(d.get());
  std::printf(
      "== Mapping ablation on the SIGMOD corpus (%d docs = %s) ==\n\n",
      gen_opts.documents,
      benchutil::FmtBytes(datagen::CorpusBytes(corpus)).c_str());

  struct Algo {
    const char* name;
    Mapping mapping;
    const char* qg5;
  };
  const Algo kAlgos[] = {
      {"Hybrid", Mapping::kHybrid, kJoinQg5},
      {"Shared", Mapping::kShared, kJoinQg5},
      {"PerElement", Mapping::kPerElement, kJoinQg5},
      {"XORator", Mapping::kXorator, kXoratorQg5},
      {"XORator tuned", Mapping::kXoratorTuned, kTunedQg5},
  };

  benchutil::TablePrinter table({"Mapping", "Tables", "Data", "Index",
                                 "Load (ms)", "QG5-style (ms)", "rows"});
  for (const Algo& algo : kAlgos) {
    ExperimentOptions opts;
    opts.mapping = algo.mapping;
    opts.tuned.max_fragment_bytes = 256;
    opts.tuned.max_fragment_depth = 0;
    opts.advisor_queries = {algo.qg5};
    auto db = BuildExperimentDb(datagen::kSigmodDtd, docs, opts);
    if (!db.ok()) {
      std::fprintf(stderr, "%s: %s\n", algo.name,
                   db.status().ToString().c_str());
      return 1;
    }
    auto check = db->db->Query(algo.qg5);
    if (!check.ok()) {
      std::fprintf(stderr, "%s query: %s\n", algo.name,
                   check.status().ToString().c_str());
      return 1;
    }
    auto ms = benchutil::TimeMedianOfMiddle(
        [&]() { return db->db->Query(algo.qg5).status(); }, runs);
    if (!ms.ok()) return 1;
    table.AddRow({algo.name, std::to_string(db->schema.tables.size()),
                  benchutil::FmtBytes(db->db->DataBytes()),
                  benchutil::FmtBytes(db->db->IndexBytes()),
                  benchutil::Fmt(db->load.load_millis, 1),
                  benchutil::Fmt(*ms, 2),
                  check->rows[0][0].ToString()});
  }
  table.Print();
  std::printf(
      "\nAll five mappings answer the same logical query; the 'rows' column "
      "must agree. PerElement maximizes table count (the Monet-style "
      "extreme the paper's related work cites); the tuned XORator sits "
      "between Hybrid and XORator by keeping only small subtrees as XADT "
      "fragments.\n");
  return 0;
}

}  // namespace
}  // namespace xorator

int main() { return xorator::Run(); }
