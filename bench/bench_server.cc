// Latency/throughput benchmark for the network front end (DESIGN.md
// section 17): the paper's QS1 lookup fired over loopback at 1, 8 and 32
// concurrent connections against a default-sized server, recording p50/p99
// round-trip latency and aggregate qps per level.
//
// The second half measures the overload point the admission control is
// built for: with every worker and queue slot occupied by deliberately
// slow statements, excess requests must be REJECTED (kResourceExhausted +
// retry-after) in a small fraction of the service time — an overloaded
// server drains its backlog at rejection speed, not service speed.
//
// `--json=PATH` additionally writes the numbers as a JSON document (the
// checked-in BENCH_server.json is this output). Knobs: XORATOR_OPS
// (requests per connection), XORATOR_FULL=1 for the larger corpus.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "benchutil/benchutil.h"
#include "benchutil/fixture.h"
#include "benchutil/workload.h"
#include "datagen/dtds.h"
#include "datagen/generators.h"
#include "figure_common.h"
#include "ordb/database.h"
#include "server/client.h"
#include "server/server.h"

namespace xorator {
namespace {

using benchutil::BuildExperimentDb;
using benchutil::ExperimentOptions;
using benchutil::Mapping;
using server::CallOptions;
using server::Client;
using server::ClientOptions;
using server::Server;
using server::ServerOptions;

constexpr int kSlowRows = 40;
constexpr int kSnoozeMillis = 5;
const char kSlowSql[] = "SELECT snooze(a) AS s FROM bench_slow";

double PercentileMillis(std::vector<double>* sorted_ms, double q) {
  if (sorted_ms->empty()) return 0;
  std::sort(sorted_ms->begin(), sorted_ms->end());
  const size_t at = static_cast<size_t>(
      q * static_cast<double>(sorted_ms->size() - 1) + 0.5);
  return (*sorted_ms)[std::min(at, sorted_ms->size() - 1)];
}

struct LoadPoint {
  int connections = 0;
  size_t requests = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  double qps = 0;
};

/// Fires `ops` QS1 queries from each of `connections` concurrent clients
/// and summarizes the round-trip latency distribution.
LoadPoint MeasureLoad(const Server& srv, const std::string& sql,
                      int connections, int ops) {
  std::vector<std::vector<double>> lat(static_cast<size_t>(connections));
  std::atomic<int> errors{0};
  const auto begin = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(connections));
  for (int c = 0; c < connections; ++c) {
    threads.emplace_back([&, c] {
      ClientOptions options;
      options.port = srv.port();
      Client client(std::move(options));
      lat[static_cast<size_t>(c)].reserve(static_cast<size_t>(ops));
      for (int i = 0; i < ops; ++i) {
        const auto t0 = std::chrono::steady_clock::now();
        auto r = client.Query(sql);
        const auto t1 = std::chrono::steady_clock::now();
        if (!r.ok()) {
          errors.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        lat[static_cast<size_t>(c)].push_back(
            std::chrono::duration<double, std::milli>(t1 - t0).count());
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - begin)
          .count();

  std::vector<double> all;
  for (const auto& per_conn : lat) {
    all.insert(all.end(), per_conn.begin(), per_conn.end());
  }
  LoadPoint point;
  point.connections = connections;
  point.requests = all.size();
  point.p50_ms = PercentileMillis(&all, 0.50);
  point.p99_ms = PercentileMillis(&all, 0.99);
  point.qps = wall_s > 0 ? static_cast<double>(all.size()) / wall_s : 0;
  if (errors.load() != 0) {
    std::fprintf(stderr, "bench_server: %d errors at %d connections\n",
                 errors.load(), connections);
  }
  return point;
}

struct OverloadPoint {
  double service_p50_ms = 0;
  double rejection_p50_ms = 0;
  double rejection_p99_ms = 0;
  size_t rejections = 0;
  size_t non_rejections = 0;
};

/// Saturates a deliberately small server (2 workers, 2 queue slots) with
/// slow statements, then times how fast excess requests bounce off the
/// admission control.
Result<OverloadPoint> MeasureOverload(ordb::Database* db, int probes) {
  ServerOptions options;
  options.worker_threads = 2;
  options.max_queue_depth = 2;
  options.retry_after_millis = 25;
  XO_ASSIGN_OR_RETURN(std::unique_ptr<Server> srv, Server::Start(db, options));

  OverloadPoint point;

  // Service latency baseline: the slow statement alone.
  {
    ClientOptions copts;
    copts.port = srv->port();
    Client client(std::move(copts));
    std::vector<double> solo;
    for (int i = 0; i < 3; ++i) {
      const auto t0 = std::chrono::steady_clock::now();
      auto r = client.Query(kSlowSql);
      const auto t1 = std::chrono::steady_clock::now();
      if (!r.ok()) return r.status();
      solo.push_back(
          std::chrono::duration<double, std::milli>(t1 - t0).count());
    }
    point.service_p50_ms = PercentileMillis(&solo, 0.50);
  }

  // Warm the probe connection before the saturation so the rejection
  // timings measure admission, not TCP setup.
  ClientOptions popts;
  popts.port = srv->port();
  popts.max_retries = 0;
  Client probe(std::move(popts));
  if (Status warm = probe.Query("SELECT a FROM bench_slow").status();
      !warm.ok()) {
    return warm;
  }

  // Fill both workers and both queue slots, one blocker at a time so none
  // of them bounces off the queue cap.
  std::vector<std::thread> blockers;
  for (int b = 0; b < 4; ++b) {
    const uint64_t admitted_before = srv->server_stats().statements_admitted;
    blockers.emplace_back([&srv] {
      ClientOptions bopts;
      bopts.port = srv->port();
      bopts.max_retries = 0;
      Client client(std::move(bopts));
      auto r = client.Query(kSlowSql);
      if (!r.ok()) {
        std::fprintf(stderr, "bench_server: blocker failed: %s\n",
                     r.status().ToString().c_str());
      }
    });
    const auto give_up =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (srv->server_stats().statements_admitted == admitted_before &&
           std::chrono::steady_clock::now() < give_up) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }

  // The saturation window is kSlowRows * kSnoozeMillis = 200 ms; the probe
  // burst finishes in a few ms, well inside it.
  std::vector<double> rejected_ms;
  for (int i = 0; i < probes; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    auto r = probe.Query("SELECT a FROM bench_slow");
    const auto t1 = std::chrono::steady_clock::now();
    if (!r.ok() && r.status().code() == StatusCode::kResourceExhausted) {
      rejected_ms.push_back(
          std::chrono::duration<double, std::milli>(t1 - t0).count());
    } else {
      ++point.non_rejections;
      if (!r.ok()) r.status().IgnoreError();
    }
  }
  for (std::thread& b : blockers) b.join();

  point.rejections = rejected_ms.size();
  point.rejection_p50_ms = PercentileMillis(&rejected_ms, 0.50);
  point.rejection_p99_ms = PercentileMillis(&rejected_ms, 0.99);
  srv->Shutdown();
  return point;
}

int Run(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) json_path = arg.substr(7);
  }

  const bool full = benchutil::FullScale();
  const int ops = bench::EnvInt("OPS", full ? 200 : 60);

  datagen::ShakespeareOptions gen;
  gen.plays = full ? 6 : 3;
  gen.acts_per_play = 2;
  gen.scenes_per_act = 2;
  gen.speeches_per_scene = 8;
  auto corpus = datagen::ShakespeareGenerator(gen).GenerateCorpus();
  std::vector<const xml::Node*> docs;
  for (const auto& d : corpus) docs.push_back(d.get());

  ExperimentOptions eopts;
  eopts.mapping = Mapping::kHybrid;
  auto built = BuildExperimentDb(datagen::kShakespeareDtd, docs, eopts);
  if (!built.ok()) {
    std::fprintf(stderr, "fixture failed: %s\n",
                 built.status().ToString().c_str());
    return 1;
  }
  ordb::Database* db = built->db.get();

  // The slow statement for the overload half: ~200 ms of engine time per
  // execution, checkpointed per row so shutdown stays prompt.
  if (!db->Execute("CREATE TABLE bench_slow (a INTEGER)").ok()) return 1;
  for (int i = 0; i < kSlowRows; ++i) {
    if (!db->Execute("INSERT INTO bench_slow VALUES (" + std::to_string(i) +
                     ")")
             .ok()) {
      return 1;
    }
  }
  ordb::ScalarFunction snooze;
  snooze.name = "snooze";
  snooze.return_type = ordb::TypeId::kInteger;
  snooze.arity = 1;
  snooze.impl =
      [](const std::vector<ordb::Value>& args) -> Result<ordb::Value> {
    std::this_thread::sleep_for(std::chrono::milliseconds(kSnoozeMillis));
    return args[0];
  };
  if (!db->functions()->RegisterScalar(std::move(snooze)).ok()) return 1;

  const std::string sql = benchutil::ShakespeareQueries().front().hybrid_sql;

  std::printf("== Server round-trip latency (QS1 over loopback, %d ops per "
              "connection) ==\n\n",
              ops);
  benchutil::TablePrinter table(
      {"Connections", "Requests", "p50 ms", "p99 ms", "qps"});
  std::vector<LoadPoint> points;
  {
    auto started = Server::Start(db);
    if (!started.ok()) {
      std::fprintf(stderr, "server start failed: %s\n",
                   started.status().ToString().c_str());
      return 1;
    }
    std::unique_ptr<Server> srv = std::move(*started);
    for (int connections : {1, 8, 32}) {
      LoadPoint point = MeasureLoad(*srv, sql, connections, ops);
      points.push_back(point);
      table.AddRow({std::to_string(point.connections),
                    std::to_string(point.requests),
                    benchutil::Fmt(point.p50_ms, 3),
                    benchutil::Fmt(point.p99_ms, 3),
                    benchutil::Fmt(point.qps, 0)});
    }
    srv->Shutdown();
  }
  table.Print();

  auto overload = MeasureOverload(db, 100);
  if (!overload.ok()) {
    std::fprintf(stderr, "overload phase failed: %s\n",
                 overload.status().ToString().c_str());
    return 1;
  }
  const double ratio = overload->rejection_p50_ms > 0
                           ? overload->service_p50_ms /
                                 overload->rejection_p50_ms
                           : 0;
  std::printf(
      "\n== Overload point (2 workers + 2 queue slots saturated) ==\n"
      "service p50      %s ms (the slow statement, run solo)\n"
      "rejection p50    %s ms   p99 %s ms   (%zu rejected, %zu slipped in)\n"
      "rejection is %sx faster than service: an overloaded server sheds\n"
      "load at admission speed instead of queuing into collapse.\n",
      benchutil::Fmt(overload->service_p50_ms, 2).c_str(),
      benchutil::Fmt(overload->rejection_p50_ms, 3).c_str(),
      benchutil::Fmt(overload->rejection_p99_ms, 3).c_str(),
      overload->rejections, overload->non_rejections,
      benchutil::Fmt(ratio, 0).c_str());

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << "{\n  \"benchmark\": \"bench_server\",\n  \"ops_per_connection\": "
        << ops << ",\n  \"load\": [\n";
    for (size_t i = 0; i < points.size(); ++i) {
      const LoadPoint& p = points[i];
      out << "    {\"connections\": " << p.connections
          << ", \"requests\": " << p.requests << ", \"p50_ms\": " << p.p50_ms
          << ", \"p99_ms\": " << p.p99_ms << ", \"qps\": " << p.qps << "}"
          << (i + 1 < points.size() ? "," : "") << "\n";
    }
    out << "  ],\n  \"overload\": {\n    \"service_p50_ms\": "
        << overload->service_p50_ms
        << ",\n    \"rejection_p50_ms\": " << overload->rejection_p50_ms
        << ",\n    \"rejection_p99_ms\": " << overload->rejection_p99_ms
        << ",\n    \"rejections\": " << overload->rejections
        << ",\n    \"non_rejections\": " << overload->non_rejections
        << ",\n    \"service_over_rejection\": " << ratio << "\n  }\n}\n";
    std::printf("\nwrote %s\n", json_path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace xorator

int main(int argc, char** argv) { return xorator::Run(argc, argv); }
