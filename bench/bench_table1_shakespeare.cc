// Reproduces Table 1 of the paper: number of tables, database size and
// index size for the Shakespeare data set under the Hybrid and XORator
// mappings.
//
// Environment: XORATOR_PLAYS (default 37, the paper's corpus size),
// XORATOR_BENCH_FULL=1 for paper-scale defaults everywhere.

#include <cstdio>

#include "benchutil/benchutil.h"
#include "benchutil/fixture.h"
#include "benchutil/workload.h"
#include "datagen/dtds.h"
#include "datagen/generators.h"
#include "figure_common.h"

namespace xorator {
namespace {

using benchutil::BuildExperimentDb;
using benchutil::ExperimentOptions;
using benchutil::Mapping;

int Run() {
  datagen::ShakespeareOptions gen_opts;
  gen_opts.plays =
      bench::EnvInt("PLAYS", benchutil::FullScale() ? 37 : 12);
  auto corpus = datagen::ShakespeareGenerator(gen_opts).GenerateCorpus();
  std::vector<const xml::Node*> docs;
  for (const auto& d : corpus) docs.push_back(d.get());
  std::printf(
      "== Table 1: Shakespeare data set (%d synthetic plays, %s of XML) ==\n",
      gen_opts.plays, benchutil::FmtBytes(datagen::CorpusBytes(corpus)).c_str());

  std::vector<std::string> advisor;
  for (const auto& q : benchutil::ShakespeareQueries()) {
    advisor.push_back(q.hybrid_sql);
    advisor.push_back(q.xorator_sql);
  }

  ExperimentOptions hybrid_opts;
  hybrid_opts.mapping = Mapping::kHybrid;
  hybrid_opts.advisor_queries = advisor;
  auto hybrid = BuildExperimentDb(datagen::kShakespeareDtd, docs, hybrid_opts);
  if (!hybrid.ok()) {
    std::fprintf(stderr, "hybrid: %s\n", hybrid.status().ToString().c_str());
    return 1;
  }

  ExperimentOptions xorator_opts;
  xorator_opts.mapping = Mapping::kXorator;
  xorator_opts.advisor_queries = advisor;
  auto xorator =
      BuildExperimentDb(datagen::kShakespeareDtd, docs, xorator_opts);
  if (!xorator.ok()) {
    std::fprintf(stderr, "xorator: %s\n", xorator.status().ToString().c_str());
    return 1;
  }

  benchutil::TablePrinter table(
      {"Metric", "Hybrid", "XORator", "Paper (Hybrid)", "Paper (XORator)"});
  table.AddRow({"Number of tables",
                std::to_string(hybrid->schema.tables.size()),
                std::to_string(xorator->schema.tables.size()), "17", "7"});
  table.AddRow({"Database size", benchutil::FmtBytes(hybrid->db->DataBytes()),
                benchutil::FmtBytes(xorator->db->DataBytes()), "15 MB",
                "9 MB"});
  table.AddRow({"Index size", benchutil::FmtBytes(hybrid->db->IndexBytes()),
                benchutil::FmtBytes(xorator->db->IndexBytes()), "30 MB",
                "3 MB"});
  table.Print();
  double size_ratio = static_cast<double>(xorator->db->DataBytes()) /
                      static_cast<double>(hybrid->db->DataBytes());
  std::printf(
      "\nXORator/Hybrid database size: %s (paper: ~0.60); XADT "
      "representation: %s (paper: uncompressed)\n",
      benchutil::Fmt(size_ratio, 2).c_str(),
      xorator->load.used_compression ? "compressed" : "uncompressed");
  return 0;
}

}  // namespace
}  // namespace xorator

int main() { return xorator::Run(); }
