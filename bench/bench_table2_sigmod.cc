// Reproduces Table 2 of the paper: number of tables, database size and
// index size for the synthetic SIGMOD-Proceedings data set, plus the
// compression decision of the XADT storage chooser.
//
// Environment: XORATOR_SIGMOD_DOCS (default 3000 at full scale, 600
// otherwise).

#include <cstdio>

#include "benchutil/benchutil.h"
#include "benchutil/fixture.h"
#include "benchutil/workload.h"
#include "datagen/dtds.h"
#include "datagen/generators.h"
#include "figure_common.h"
#include "shred/loader.h"

namespace xorator {
namespace {

using benchutil::BuildExperimentDb;
using benchutil::ExperimentOptions;
using benchutil::Mapping;

int Run() {
  datagen::SigmodOptions gen_opts;
  gen_opts.documents =
      bench::EnvInt("SIGMOD_DOCS", benchutil::FullScale() ? 3000 : 600);
  auto corpus = datagen::SigmodGenerator(gen_opts).GenerateCorpus();
  std::vector<const xml::Node*> docs;
  for (const auto& d : corpus) docs.push_back(d.get());
  std::printf(
      "== Table 2: SIGMOD Proceedings data set (%d documents, %s of XML) "
      "==\n",
      gen_opts.documents,
      benchutil::FmtBytes(datagen::CorpusBytes(corpus)).c_str());

  std::vector<std::string> advisor;
  for (const auto& q : benchutil::SigmodQueries()) {
    advisor.push_back(q.hybrid_sql);
    advisor.push_back(q.xorator_sql);
  }

  ExperimentOptions hybrid_opts;
  hybrid_opts.mapping = Mapping::kHybrid;
  hybrid_opts.advisor_queries = advisor;
  auto hybrid = BuildExperimentDb(datagen::kSigmodDtd, docs, hybrid_opts);
  if (!hybrid.ok()) {
    std::fprintf(stderr, "hybrid: %s\n", hybrid.status().ToString().c_str());
    return 1;
  }

  ExperimentOptions xorator_opts;
  xorator_opts.mapping = Mapping::kXorator;
  xorator_opts.advisor_queries = advisor;
  auto xorator = BuildExperimentDb(datagen::kSigmodDtd, docs, xorator_opts);
  if (!xorator.ok()) {
    std::fprintf(stderr, "xorator: %s\n", xorator.status().ToString().c_str());
    return 1;
  }

  // Compression saving on the XADT column (paper: ~38%).
  ExperimentOptions raw_opts = xorator_opts;
  raw_opts.load_options.force_raw = true;
  auto raw = BuildExperimentDb(datagen::kSigmodDtd, docs, raw_opts);
  if (!raw.ok()) {
    std::fprintf(stderr, "raw: %s\n", raw.status().ToString().c_str());
    return 1;
  }

  benchutil::TablePrinter table(
      {"Metric", "Hybrid", "XORator", "Paper (Hybrid)", "Paper (XORator)"});
  table.AddRow({"Number of tables",
                std::to_string(hybrid->schema.tables.size()),
                std::to_string(xorator->schema.tables.size()), "7", "1"});
  table.AddRow({"Database size", benchutil::FmtBytes(hybrid->db->DataBytes()),
                benchutil::FmtBytes(xorator->db->DataBytes()), "23 MB",
                "15 MB"});
  table.AddRow({"Index size", benchutil::FmtBytes(hybrid->db->IndexBytes()),
                benchutil::FmtBytes(xorator->db->IndexBytes()), "34 MB",
                "2 MB"});
  table.Print();

  double size_ratio = static_cast<double>(xorator->db->DataBytes()) /
                      static_cast<double>(hybrid->db->DataBytes());
  double saving = 1.0 - static_cast<double>(xorator->db->DataBytes()) /
                            static_cast<double>(raw->db->DataBytes());
  std::printf(
      "\nXORator/Hybrid database size: %s (paper: ~0.65)\n"
      "XADT representation chosen: %s (paper: compressed); compression "
      "saves %s%% of the uncompressed database (paper: ~38%%)\n",
      benchutil::Fmt(size_ratio, 2).c_str(),
      xorator->load.used_compression ? "compressed" : "uncompressed",
      benchutil::Fmt(saving * 100, 1).c_str());
  return 0;
}

}  // namespace
}  // namespace xorator

int main() { return xorator::Run(); }
