// Ablation for Section 3.4.1: raw vs compressed XADT storage. Measures
// encode/decode/method costs (google-benchmark) and prints a size sweep
// over fragments with varying tag densities, which drives the 20% rule.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "benchutil/benchutil.h"
#include "xadt/xadt.h"
#include "xml/parser.h"

namespace xorator {
namespace {

std::unique_ptr<xml::Node> MakeSpeechFragment(int lines) {
  auto frag = xml::Node::Element("#fragment");
  for (int i = 0; i < lines; ++i) {
    auto line = xml::Node::Element("LINE");
    line->AddChild(xml::Node::Text(
        "but soft what light through yonder window breaks " +
        std::to_string(i)));
    if (i % 7 == 0) {
      line->AddElementWithText("STAGEDIR", "Rising");
    }
    frag->AddChild(std::move(line));
  }
  return frag;
}

std::vector<const xml::Node*> Children(const xml::Node& frag) {
  std::vector<const xml::Node*> out;
  for (const auto& c : frag.children()) out.push_back(c.get());
  return out;
}

void BM_EncodeRaw(benchmark::State& state) {
  auto frag = MakeSpeechFragment(static_cast<int>(state.range(0)));
  auto roots = Children(*frag);
  for (auto _ : state) {
    benchmark::DoNotOptimize(xadt::EncodeRaw(roots));
  }
}
BENCHMARK(BM_EncodeRaw)->Arg(4)->Arg(64);

void BM_EncodeCompressed(benchmark::State& state) {
  auto frag = MakeSpeechFragment(static_cast<int>(state.range(0)));
  auto roots = Children(*frag);
  for (auto _ : state) {
    benchmark::DoNotOptimize(xadt::EncodeCompressed(roots));
  }
}
BENCHMARK(BM_EncodeCompressed)->Arg(4)->Arg(64);

void BM_DecodeRaw(benchmark::State& state) {
  auto frag = MakeSpeechFragment(static_cast<int>(state.range(0)));
  std::string bytes = xadt::EncodeRaw(Children(*frag));
  for (auto _ : state) {
    auto decoded = xadt::Decode(bytes);
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_DecodeRaw)->Arg(4)->Arg(64);

void BM_DecodeCompressed(benchmark::State& state) {
  auto frag = MakeSpeechFragment(static_cast<int>(state.range(0)));
  std::string bytes = xadt::EncodeCompressed(Children(*frag));
  for (auto _ : state) {
    auto decoded = xadt::Decode(bytes);
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_DecodeCompressed)->Arg(4)->Arg(64);

void BM_GetElm(benchmark::State& state) {
  auto frag = MakeSpeechFragment(64);
  std::string bytes = state.range(0) == 0
                          ? xadt::EncodeRaw(Children(*frag))
                          : xadt::EncodeCompressed(Children(*frag));
  for (auto _ : state) {
    auto out = xadt::GetElm(bytes, "LINE", "STAGEDIR", "Rising");
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_GetElm)->Arg(0)->Arg(1);

void BM_FindKeyInElm(benchmark::State& state) {
  auto frag = MakeSpeechFragment(64);
  std::string bytes = state.range(0) == 0
                          ? xadt::EncodeRaw(Children(*frag))
                          : xadt::EncodeCompressed(Children(*frag));
  for (auto _ : state) {
    auto out = xadt::FindKeyInElm(bytes, "LINE", "window");
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_FindKeyInElm)->Arg(0)->Arg(1);

void BM_GetElmIndexPlainVsDirectory(benchmark::State& state) {
  // The Section 5 metadata extension: order access via the fragment
  // directory vs a full scan. range(0): 0 = plain, 1 = directory.
  auto frag = MakeSpeechFragment(256);
  std::vector<const xml::Node*> roots;
  for (const auto& c : frag->children()) roots.push_back(c.get());
  std::string bytes = state.range(0) == 0
                          ? xadt::Encode(roots, /*compressed=*/false)
                          : xadt::EncodeWithDirectory(roots, false);
  for (auto _ : state) {
    auto out = xadt::GetElmIndex(bytes, "", "LINE", 250, 250);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_GetElmIndexPlainVsDirectory)->Arg(0)->Arg(1);

void BM_Unnest(benchmark::State& state) {
  auto frag = MakeSpeechFragment(64);
  std::string bytes = state.range(0) == 0
                          ? xadt::EncodeRaw(Children(*frag))
                          : xadt::EncodeCompressed(Children(*frag));
  for (auto _ : state) {
    auto out = xadt::Unnest(bytes, "LINE");
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_Unnest)->Arg(0)->Arg(1);

void PrintSizeSweep() {
  std::printf(
      "\n== XADT storage-size sweep (drives the Section 4.1 20%% rule) "
      "==\n");
  benchutil::TablePrinter table({"Fragment", "Raw bytes", "Compressed bytes",
                                 "Saving", "Chooser"});
  struct Case {
    const char* label;
    const char* xml;
    int repeat;
  };
  const Case kCases[] = {
      {"1 short element", "<a>x</a>", 1},
      {"8 repeated tags", "<LINE>word word</LINE>", 8},
      {"64 repeated tags", "<LINE>word word</LINE>", 64},
      {"tag-heavy tree",
       "<s><t><u>x</u><u>y</u></t><t><u>z</u></t></s>", 16},
      {"text-heavy",
       "<p>a very long run of prose text with hardly any markup at all "
       "inside of it whatsoever</p>",
       4},
  };
  for (const Case& c : kCases) {
    std::string xml_text;
    for (int i = 0; i < c.repeat; ++i) xml_text += c.xml;
    auto frag = xml::ParseFragment(xml_text);
    if (!frag.ok()) continue;
    std::vector<const xml::Node*> roots;
    for (const auto& child : (*frag)->children()) roots.push_back(child.get());
    xadt::CompressionAdvisor advisor(0.2);
    advisor.AddSample(roots);
    double saving =
        1.0 - static_cast<double>(advisor.compressed_bytes()) /
                  static_cast<double>(advisor.raw_bytes());
    table.AddRow({c.label, std::to_string(advisor.raw_bytes()),
                  std::to_string(advisor.compressed_bytes()),
                  benchutil::Fmt(saving * 100, 1) + "%",
                  advisor.UseCompression() ? "compressed" : "raw"});
  }
  table.Print();
}

}  // namespace
}  // namespace xorator

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  xorator::PrintSizeSweep();
  return 0;
}
