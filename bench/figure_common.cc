#include "figure_common.h"

#include <cstdlib>

namespace xorator::bench {

using benchutil::BuildExperimentDb;
using benchutil::ExperimentOptions;
using benchutil::Mapping;
using benchutil::PaperQuery;

int EnvInt(const char* name, int fallback) {
  std::string full = std::string("XORATOR_") + name;
  const char* value = std::getenv(full.c_str());
  if (value == nullptr || value[0] == '\0') return fallback;
  return std::atoi(value);
}

Result<FigureResult> RunFigure(
    const std::string& dtd_text,
    const std::vector<const xml::Node*>& corpus,
    const std::vector<PaperQuery>& queries,
    const std::vector<int>& scales, int runs) {
  FigureResult result;
  std::vector<std::string> advisor;
  for (const PaperQuery& q : queries) {
    advisor.push_back(q.hybrid_sql);
    advisor.push_back(q.xorator_sql);
  }
  for (int scale : scales) {
    ExperimentOptions hybrid_opts;
    hybrid_opts.mapping = Mapping::kHybrid;
    hybrid_opts.load_multiplier = scale;
    hybrid_opts.advisor_queries = advisor;
    XO_ASSIGN_OR_RETURN(auto hybrid,
                        BuildExperimentDb(dtd_text, corpus, hybrid_opts));

    ExperimentOptions xorator_opts;
    xorator_opts.mapping = Mapping::kXorator;
    xorator_opts.load_multiplier = scale;
    xorator_opts.advisor_queries = advisor;
    XO_ASSIGN_OR_RETURN(auto xorator,
                        BuildExperimentDb(dtd_text, corpus, xorator_opts));

    FigureCell load;
    load.query_id = "Loading";
    load.scale = scale;
    load.hybrid_ms = hybrid.load.load_millis;
    load.xorator_ms = xorator.load.load_millis;
    result.loading.push_back(load);

    for (const PaperQuery& q : queries) {
      FigureCell cell;
      cell.query_id = q.id;
      cell.scale = scale;
      XO_ASSIGN_OR_RETURN(
          cell.hybrid_ms,
          benchutil::TimeMedianOfMiddle(
              [&]() { return hybrid.db->Query(q.hybrid_sql).status(); },
              runs));
      XO_ASSIGN_OR_RETURN(
          cell.xorator_ms,
          benchutil::TimeMedianOfMiddle(
              [&]() { return xorator.db->Query(q.xorator_sql).status(); },
              runs));
      result.cells.push_back(cell);
    }
    result.hybrid_data_bytes = hybrid.db->DataBytes();
    result.xorator_data_bytes = xorator.db->DataBytes();
  }
  return result;
}

void PrintFigure(const FigureResult& result,
                 const std::vector<PaperQuery>& queries,
                 const std::vector<int>& scales) {
  std::vector<std::string> headers = {"Query"};
  for (int s : scales) {
    headers.push_back("DSx" + std::to_string(s) + " H(ms)");
    headers.push_back("DSx" + std::to_string(s) + " X(ms)");
    headers.push_back("DSx" + std::to_string(s) + " H/X");
  }
  benchutil::TablePrinter table(headers);
  auto add_rows = [&](const std::string& id) {
    std::vector<std::string> row = {id};
    for (int s : scales) {
      const FigureCell* found = nullptr;
      for (const FigureCell& c : result.cells) {
        if (c.query_id == id && c.scale == s) found = &c;
      }
      for (const FigureCell& c : result.loading) {
        if (c.query_id == id && c.scale == s) found = &c;
      }
      if (found == nullptr) {
        row.insert(row.end(), {"-", "-", "-"});
        continue;
      }
      row.push_back(benchutil::Fmt(found->hybrid_ms, 2));
      row.push_back(benchutil::Fmt(found->xorator_ms, 2));
      row.push_back(benchutil::Fmt(found->Ratio(), 2));
    }
    table.AddRow(row);
  };
  for (const PaperQuery& q : queries) add_rows(q.id);
  add_rows("Loading");
  table.Print();
  std::printf(
      "\nDatabase size at DSx%d: Hybrid %s, XORator %s (XORator/Hybrid = "
      "%s)\n",
      scales.back(), benchutil::FmtBytes(result.hybrid_data_bytes).c_str(),
      benchutil::FmtBytes(result.xorator_data_bytes).c_str(),
      benchutil::Fmt(static_cast<double>(result.xorator_data_bytes) /
                         static_cast<double>(result.hybrid_data_bytes),
                     2)
          .c_str());
}

}  // namespace xorator::bench
