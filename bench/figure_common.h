#ifndef XORATOR_BENCH_FIGURE_COMMON_H_
#define XORATOR_BENCH_FIGURE_COMMON_H_

#include <cstdio>
#include <string>
#include <vector>

#include "benchutil/benchutil.h"
#include "benchutil/fixture.h"
#include "benchutil/workload.h"
#include "common/result.h"
#include "datagen/generators.h"

namespace xorator::bench {

/// One measured cell of a figure: per-query, per-scale times for both
/// systems.
struct FigureCell {
  std::string query_id;
  int scale = 1;
  double hybrid_ms = 0;
  double xorator_ms = 0;

  double Ratio() const {
    return xorator_ms > 0 ? hybrid_ms / xorator_ms : 0;
  }
};

struct FigureResult {
  std::vector<FigureCell> cells;           // queries x scales
  std::vector<FigureCell> loading;         // one per scale ("Loading")
  uint64_t hybrid_data_bytes = 0;          // at the largest scale
  uint64_t xorator_data_bytes = 0;
};

/// Runs the Figure 11 / Figure 13 protocol: for each scale factor, load the
/// corpus `scale` times into a Hybrid and an XORator database (timing the
/// loads), create the advised indexes, collect statistics, then time every
/// query with the paper's five-runs-average-middle-three rule.
Result<FigureResult> RunFigure(
    const std::string& dtd_text,
    const std::vector<const xml::Node*>& corpus,
    const std::vector<benchutil::PaperQuery>& queries,
    const std::vector<int>& scales, int runs);

/// Prints the per-query Hybrid/XORator ratio matrix in the layout of the
/// paper's figures (rows: queries + Loading; columns: DSx<scale>).
void PrintFigure(const FigureResult& result,
                 const std::vector<benchutil::PaperQuery>& queries,
                 const std::vector<int>& scales);

/// Reads an integer environment override (XORATOR_<name>), falling back to
/// `fallback`.
int EnvInt(const char* name, int fallback);

}  // namespace xorator::bench

#endif  // XORATOR_BENCH_FIGURE_COMMON_H_
