file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_shakespeare_queries.dir/bench_fig11_shakespeare_queries.cc.o"
  "CMakeFiles/bench_fig11_shakespeare_queries.dir/bench_fig11_shakespeare_queries.cc.o.d"
  "bench_fig11_shakespeare_queries"
  "bench_fig11_shakespeare_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_shakespeare_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
