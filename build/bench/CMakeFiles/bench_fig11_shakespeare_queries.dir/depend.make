# Empty dependencies file for bench_fig11_shakespeare_queries.
# This may be replaced when dependencies are built.
