# Empty compiler generated dependencies file for bench_fig13_sigmod_queries.
# This may be replaced when dependencies are built.
