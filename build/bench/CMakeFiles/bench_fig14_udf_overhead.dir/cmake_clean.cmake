file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_udf_overhead.dir/bench_fig14_udf_overhead.cc.o"
  "CMakeFiles/bench_fig14_udf_overhead.dir/bench_fig14_udf_overhead.cc.o.d"
  "bench_fig14_udf_overhead"
  "bench_fig14_udf_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_udf_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
