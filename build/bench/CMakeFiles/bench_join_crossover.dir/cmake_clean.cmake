file(REMOVE_RECURSE
  "CMakeFiles/bench_join_crossover.dir/bench_join_crossover.cc.o"
  "CMakeFiles/bench_join_crossover.dir/bench_join_crossover.cc.o.d"
  "bench_join_crossover"
  "bench_join_crossover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_join_crossover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
