# Empty dependencies file for bench_join_crossover.
# This may be replaced when dependencies are built.
