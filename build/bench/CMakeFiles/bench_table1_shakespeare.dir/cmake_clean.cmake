file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_shakespeare.dir/bench_table1_shakespeare.cc.o"
  "CMakeFiles/bench_table1_shakespeare.dir/bench_table1_shakespeare.cc.o.d"
  "bench_table1_shakespeare"
  "bench_table1_shakespeare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_shakespeare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
