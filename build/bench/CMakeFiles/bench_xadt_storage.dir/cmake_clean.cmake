file(REMOVE_RECURSE
  "CMakeFiles/bench_xadt_storage.dir/bench_xadt_storage.cc.o"
  "CMakeFiles/bench_xadt_storage.dir/bench_xadt_storage.cc.o.d"
  "bench_xadt_storage"
  "bench_xadt_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_xadt_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
