# Empty dependencies file for bench_xadt_storage.
# This may be replaced when dependencies are built.
