file(REMOVE_RECURSE
  "CMakeFiles/shakespeare_tour.dir/shakespeare_tour.cpp.o"
  "CMakeFiles/shakespeare_tour.dir/shakespeare_tour.cpp.o.d"
  "shakespeare_tour"
  "shakespeare_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shakespeare_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
