# Empty dependencies file for shakespeare_tour.
# This may be replaced when dependencies are built.
