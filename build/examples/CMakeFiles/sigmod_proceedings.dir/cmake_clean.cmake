file(REMOVE_RECURSE
  "CMakeFiles/sigmod_proceedings.dir/sigmod_proceedings.cpp.o"
  "CMakeFiles/sigmod_proceedings.dir/sigmod_proceedings.cpp.o.d"
  "sigmod_proceedings"
  "sigmod_proceedings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sigmod_proceedings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
