# Empty dependencies file for sigmod_proceedings.
# This may be replaced when dependencies are built.
