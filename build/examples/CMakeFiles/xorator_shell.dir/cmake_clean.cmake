file(REMOVE_RECURSE
  "CMakeFiles/xorator_shell.dir/xorator_shell.cpp.o"
  "CMakeFiles/xorator_shell.dir/xorator_shell.cpp.o.d"
  "xorator_shell"
  "xorator_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xorator_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
