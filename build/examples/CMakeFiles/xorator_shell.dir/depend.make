# Empty dependencies file for xorator_shell.
# This may be replaced when dependencies are built.
