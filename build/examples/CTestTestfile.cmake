# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;13;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_mapping_explorer "/root/repo/build/examples/mapping_explorer" "plays")
set_tests_properties(example_mapping_explorer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_shakespeare_tour "/root/repo/build/examples/shakespeare_tour" "2")
set_tests_properties(example_shakespeare_tour PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_sigmod_proceedings "/root/repo/build/examples/sigmod_proceedings" "60")
set_tests_properties(example_sigmod_proceedings PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
