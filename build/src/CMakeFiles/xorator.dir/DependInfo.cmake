
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/benchutil/benchutil.cc" "src/CMakeFiles/xorator.dir/benchutil/benchutil.cc.o" "gcc" "src/CMakeFiles/xorator.dir/benchutil/benchutil.cc.o.d"
  "/root/repo/src/benchutil/fixture.cc" "src/CMakeFiles/xorator.dir/benchutil/fixture.cc.o" "gcc" "src/CMakeFiles/xorator.dir/benchutil/fixture.cc.o.d"
  "/root/repo/src/benchutil/workload.cc" "src/CMakeFiles/xorator.dir/benchutil/workload.cc.o" "gcc" "src/CMakeFiles/xorator.dir/benchutil/workload.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/xorator.dir/common/status.cc.o" "gcc" "src/CMakeFiles/xorator.dir/common/status.cc.o.d"
  "/root/repo/src/common/str_util.cc" "src/CMakeFiles/xorator.dir/common/str_util.cc.o" "gcc" "src/CMakeFiles/xorator.dir/common/str_util.cc.o.d"
  "/root/repo/src/common/varint.cc" "src/CMakeFiles/xorator.dir/common/varint.cc.o" "gcc" "src/CMakeFiles/xorator.dir/common/varint.cc.o.d"
  "/root/repo/src/datagen/dtds.cc" "src/CMakeFiles/xorator.dir/datagen/dtds.cc.o" "gcc" "src/CMakeFiles/xorator.dir/datagen/dtds.cc.o.d"
  "/root/repo/src/datagen/generators.cc" "src/CMakeFiles/xorator.dir/datagen/generators.cc.o" "gcc" "src/CMakeFiles/xorator.dir/datagen/generators.cc.o.d"
  "/root/repo/src/dtdgraph/dtd_graph.cc" "src/CMakeFiles/xorator.dir/dtdgraph/dtd_graph.cc.o" "gcc" "src/CMakeFiles/xorator.dir/dtdgraph/dtd_graph.cc.o.d"
  "/root/repo/src/dtdgraph/simplify.cc" "src/CMakeFiles/xorator.dir/dtdgraph/simplify.cc.o" "gcc" "src/CMakeFiles/xorator.dir/dtdgraph/simplify.cc.o.d"
  "/root/repo/src/mapping/mapper.cc" "src/CMakeFiles/xorator.dir/mapping/mapper.cc.o" "gcc" "src/CMakeFiles/xorator.dir/mapping/mapper.cc.o.d"
  "/root/repo/src/mapping/schema.cc" "src/CMakeFiles/xorator.dir/mapping/schema.cc.o" "gcc" "src/CMakeFiles/xorator.dir/mapping/schema.cc.o.d"
  "/root/repo/src/mapping/xml_stats.cc" "src/CMakeFiles/xorator.dir/mapping/xml_stats.cc.o" "gcc" "src/CMakeFiles/xorator.dir/mapping/xml_stats.cc.o.d"
  "/root/repo/src/ordb/bptree.cc" "src/CMakeFiles/xorator.dir/ordb/bptree.cc.o" "gcc" "src/CMakeFiles/xorator.dir/ordb/bptree.cc.o.d"
  "/root/repo/src/ordb/buffer_pool.cc" "src/CMakeFiles/xorator.dir/ordb/buffer_pool.cc.o" "gcc" "src/CMakeFiles/xorator.dir/ordb/buffer_pool.cc.o.d"
  "/root/repo/src/ordb/catalog.cc" "src/CMakeFiles/xorator.dir/ordb/catalog.cc.o" "gcc" "src/CMakeFiles/xorator.dir/ordb/catalog.cc.o.d"
  "/root/repo/src/ordb/database.cc" "src/CMakeFiles/xorator.dir/ordb/database.cc.o" "gcc" "src/CMakeFiles/xorator.dir/ordb/database.cc.o.d"
  "/root/repo/src/ordb/executor.cc" "src/CMakeFiles/xorator.dir/ordb/executor.cc.o" "gcc" "src/CMakeFiles/xorator.dir/ordb/executor.cc.o.d"
  "/root/repo/src/ordb/expr.cc" "src/CMakeFiles/xorator.dir/ordb/expr.cc.o" "gcc" "src/CMakeFiles/xorator.dir/ordb/expr.cc.o.d"
  "/root/repo/src/ordb/functions.cc" "src/CMakeFiles/xorator.dir/ordb/functions.cc.o" "gcc" "src/CMakeFiles/xorator.dir/ordb/functions.cc.o.d"
  "/root/repo/src/ordb/heap_file.cc" "src/CMakeFiles/xorator.dir/ordb/heap_file.cc.o" "gcc" "src/CMakeFiles/xorator.dir/ordb/heap_file.cc.o.d"
  "/root/repo/src/ordb/page.cc" "src/CMakeFiles/xorator.dir/ordb/page.cc.o" "gcc" "src/CMakeFiles/xorator.dir/ordb/page.cc.o.d"
  "/root/repo/src/ordb/pager.cc" "src/CMakeFiles/xorator.dir/ordb/pager.cc.o" "gcc" "src/CMakeFiles/xorator.dir/ordb/pager.cc.o.d"
  "/root/repo/src/ordb/planner.cc" "src/CMakeFiles/xorator.dir/ordb/planner.cc.o" "gcc" "src/CMakeFiles/xorator.dir/ordb/planner.cc.o.d"
  "/root/repo/src/ordb/sql.cc" "src/CMakeFiles/xorator.dir/ordb/sql.cc.o" "gcc" "src/CMakeFiles/xorator.dir/ordb/sql.cc.o.d"
  "/root/repo/src/ordb/tuple.cc" "src/CMakeFiles/xorator.dir/ordb/tuple.cc.o" "gcc" "src/CMakeFiles/xorator.dir/ordb/tuple.cc.o.d"
  "/root/repo/src/ordb/value.cc" "src/CMakeFiles/xorator.dir/ordb/value.cc.o" "gcc" "src/CMakeFiles/xorator.dir/ordb/value.cc.o.d"
  "/root/repo/src/shred/loader.cc" "src/CMakeFiles/xorator.dir/shred/loader.cc.o" "gcc" "src/CMakeFiles/xorator.dir/shred/loader.cc.o.d"
  "/root/repo/src/shred/reconstruct.cc" "src/CMakeFiles/xorator.dir/shred/reconstruct.cc.o" "gcc" "src/CMakeFiles/xorator.dir/shred/reconstruct.cc.o.d"
  "/root/repo/src/shred/shredder.cc" "src/CMakeFiles/xorator.dir/shred/shredder.cc.o" "gcc" "src/CMakeFiles/xorator.dir/shred/shredder.cc.o.d"
  "/root/repo/src/xadt/functions.cc" "src/CMakeFiles/xorator.dir/xadt/functions.cc.o" "gcc" "src/CMakeFiles/xorator.dir/xadt/functions.cc.o.d"
  "/root/repo/src/xadt/scanner.cc" "src/CMakeFiles/xorator.dir/xadt/scanner.cc.o" "gcc" "src/CMakeFiles/xorator.dir/xadt/scanner.cc.o.d"
  "/root/repo/src/xadt/xadt.cc" "src/CMakeFiles/xorator.dir/xadt/xadt.cc.o" "gcc" "src/CMakeFiles/xorator.dir/xadt/xadt.cc.o.d"
  "/root/repo/src/xml/dom.cc" "src/CMakeFiles/xorator.dir/xml/dom.cc.o" "gcc" "src/CMakeFiles/xorator.dir/xml/dom.cc.o.d"
  "/root/repo/src/xml/dtd.cc" "src/CMakeFiles/xorator.dir/xml/dtd.cc.o" "gcc" "src/CMakeFiles/xorator.dir/xml/dtd.cc.o.d"
  "/root/repo/src/xml/parser.cc" "src/CMakeFiles/xorator.dir/xml/parser.cc.o" "gcc" "src/CMakeFiles/xorator.dir/xml/parser.cc.o.d"
  "/root/repo/src/xml/serializer.cc" "src/CMakeFiles/xorator.dir/xml/serializer.cc.o" "gcc" "src/CMakeFiles/xorator.dir/xml/serializer.cc.o.d"
  "/root/repo/src/xpath/xpath.cc" "src/CMakeFiles/xorator.dir/xpath/xpath.cc.o" "gcc" "src/CMakeFiles/xorator.dir/xpath/xpath.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
