file(REMOVE_RECURSE
  "libxorator.a"
)
