src/CMakeFiles/xorator.dir/datagen/dtds.cc.o: \
 /root/repo/src/datagen/dtds.cc /usr/include/stdc-predef.h \
 /root/repo/src/datagen/dtds.h
