# Empty dependencies file for xorator.
# This may be replaced when dependencies are built.
