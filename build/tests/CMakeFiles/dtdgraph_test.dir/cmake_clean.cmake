file(REMOVE_RECURSE
  "CMakeFiles/dtdgraph_test.dir/dtdgraph_test.cc.o"
  "CMakeFiles/dtdgraph_test.dir/dtdgraph_test.cc.o.d"
  "dtdgraph_test"
  "dtdgraph_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtdgraph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
