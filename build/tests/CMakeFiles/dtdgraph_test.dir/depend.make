# Empty dependencies file for dtdgraph_test.
# This may be replaced when dependencies are built.
