file(REMOVE_RECURSE
  "CMakeFiles/shred_test.dir/shred_test.cc.o"
  "CMakeFiles/shred_test.dir/shred_test.cc.o.d"
  "shred_test"
  "shred_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shred_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
