# Empty dependencies file for shred_test.
# This may be replaced when dependencies are built.
