file(REMOVE_RECURSE
  "CMakeFiles/tuned_mapping_test.dir/tuned_mapping_test.cc.o"
  "CMakeFiles/tuned_mapping_test.dir/tuned_mapping_test.cc.o.d"
  "tuned_mapping_test"
  "tuned_mapping_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tuned_mapping_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
