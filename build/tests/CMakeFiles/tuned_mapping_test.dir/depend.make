# Empty dependencies file for tuned_mapping_test.
# This may be replaced when dependencies are built.
