file(REMOVE_RECURSE
  "CMakeFiles/xadt_directory_test.dir/xadt_directory_test.cc.o"
  "CMakeFiles/xadt_directory_test.dir/xadt_directory_test.cc.o.d"
  "xadt_directory_test"
  "xadt_directory_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xadt_directory_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
