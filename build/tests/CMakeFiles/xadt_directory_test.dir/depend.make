# Empty dependencies file for xadt_directory_test.
# This may be replaced when dependencies are built.
