file(REMOVE_RECURSE
  "CMakeFiles/xadt_test.dir/xadt_test.cc.o"
  "CMakeFiles/xadt_test.dir/xadt_test.cc.o.d"
  "xadt_test"
  "xadt_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xadt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
