# Empty compiler generated dependencies file for xadt_test.
# This may be replaced when dependencies are built.
