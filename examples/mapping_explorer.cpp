// Mapping explorer: a small CLI that shows every stage of the XML-to-
// relational pipeline for a DTD — the simplified declarations (paper
// Figure 2), the DTD graph (Figures 3/4), and the schemas produced by all
// four mapping algorithms (Hybrid, Shared, PerElement, XORator).
//
// Run: ./build/examples/mapping_explorer [plays|shakespeare|sigmod|<file.dtd>]

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "benchutil/fixture.h"
#include "xorator.h"

namespace {

xorator::Result<std::string> LoadDtdText(const std::string& arg) {
  using namespace xorator;
  if (arg == "plays") return std::string(datagen::kPlaysDtd);
  if (arg == "shakespeare") return std::string(datagen::kShakespeareDtd);
  if (arg == "sigmod") return std::string(datagen::kSigmodDtd);
  std::ifstream in(arg);
  if (!in) return Status::IOError("cannot open '" + arg + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace xorator;
  std::string source = argc > 1 ? argv[1] : "plays";
  auto dtd_text = LoadDtdText(source);
  if (!dtd_text.ok()) {
    std::fprintf(stderr, "%s\n", dtd_text.status().ToString().c_str());
    return 1;
  }

  auto dtd = xml::ParseDtd(*dtd_text);
  if (!dtd.ok()) {
    std::fprintf(stderr, "DTD parse error: %s\n",
                 dtd.status().ToString().c_str());
    return 1;
  }
  std::printf("== Parsed DTD (%zu element declarations) ==\n%s\n",
              dtd->elements().size(), dtd->ToString().c_str());

  auto simplified = dtdgraph::Simplify(*dtd);
  if (!simplified.ok()) {
    std::fprintf(stderr, "simplify: %s\n",
                 simplified.status().ToString().c_str());
    return 1;
  }
  std::printf("== Simplified DTD (flattening / simplification / grouping, "
              "paper Section 3.1) ==\n");
  for (const auto& elem : simplified->elements()) {
    std::printf("%s ->", elem.name.c_str());
    if (elem.has_pcdata) std::printf(" #PCDATA");
    for (const auto& child : elem.children) {
      char suffix = xml::OccurrenceSuffix(child.occurrence);
      std::printf(" %s%c", child.name.c_str(), suffix ? suffix : ' ');
    }
    std::printf("\n");
  }

  auto graph = dtdgraph::DtdGraph::Build(
      *simplified, {.duplicate_shared_leaves = false});
  auto revised = dtdgraph::DtdGraph::Build(
      *simplified, {.duplicate_shared_leaves = true});
  if (!graph.ok() || !revised.ok()) return 1;
  std::printf("\n== DTD graph (paper Figure 3) ==\n%s", graph->ToString().c_str());
  std::printf("\n== Revised DTD graph with duplicated shared leaves (paper "
              "Figure 4) ==\n%s",
              revised->ToString().c_str());

  struct Algo {
    const char* name;
    benchutil::Mapping mapping;
  };
  const Algo kAlgos[] = {
      {"Hybrid (VLDB '99 baseline)", benchutil::Mapping::kHybrid},
      {"Shared (VLDB '99)", benchutil::Mapping::kShared},
      {"Per-element (Monet-style)", benchutil::Mapping::kPerElement},
      {"XORator (this paper)", benchutil::Mapping::kXorator},
  };
  for (const Algo& algo : kAlgos) {
    auto schema = benchutil::MapDtd(*dtd_text, algo.mapping);
    if (!schema.ok()) {
      std::fprintf(stderr, "%s: %s\n", algo.name,
                   schema.status().ToString().c_str());
      return 1;
    }
    std::printf("\n== %s: %zu tables ==\n%s", algo.name,
                schema->tables.size(), schema->ToDdl().c_str());
  }
  return 0;
}
