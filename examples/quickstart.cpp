// Quickstart: map a DTD with XORator, load a document, query it with the
// XADT methods. Mirrors the worked example of Sections 3.3-3.5 of the
// paper, using its Plays DTD (Figure 1).
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "xorator.h"

namespace {

constexpr char kPlayDocument[] = R"(
<PLAY>
  <ACT>
    <SCENE>
      <TITLE>SCENE I. A public place.</TITLE>
      <SPEECH>
        <SPEAKER>HAMLET</SPEAKER>
        <LINE>my friend attends me here</LINE>
        <LINE>and yet I wait</LINE>
      </SPEECH>
      <SPEECH>
        <SPEAKER>YORICK</SPEAKER>
        <LINE>a lantern in the dark</LINE>
      </SPEECH>
    </SCENE>
    <TITLE>ACT I</TITLE>
    <SPEECH>
      <SPEAKER>HAMLET</SPEAKER>
      <LINE>the rest is silence my friend</LINE>
    </SPEECH>
  </ACT>
</PLAY>
)";

#define CHECK_OK(expr)                                              \
  do {                                                              \
    auto _status = (expr);                                          \
    if (!_status.ok()) {                                            \
      std::fprintf(stderr, "FAILED %s: %s\n", #expr,                \
                   _status.ToString().c_str());                     \
      return 1;                                                     \
    }                                                               \
  } while (false)

}  // namespace

int main() {
  using namespace xorator;

  // 1. Parse the DTD and derive the object-relational schema with XORator.
  auto dtd = xml::ParseDtd(datagen::kPlaysDtd);
  if (!dtd.ok()) return 1;
  auto simplified = dtdgraph::Simplify(*dtd);
  if (!simplified.ok()) return 1;
  auto schema = mapping::MapXorator(*simplified);
  if (!schema.ok()) return 1;
  std::printf("== XORator schema for the Plays DTD (paper Figure 6) ==\n%s\n",
              schema->ToDdl().c_str());

  // 2. Open an engine, register the XADT UDFs, create the tables and load
  //    the document through the shredder.
  auto db = ordb::Database::Open({});
  if (!db.ok()) return 1;
  CHECK_OK(xadt::RegisterXadtFunctions((*db)->functions()));
  shred::Loader loader(db->get(), &*schema);
  CHECK_OK(loader.CreateTables());
  auto doc = xml::ParseDocument(kPlayDocument);
  if (!doc.ok()) return 1;
  auto report = loader.Load({doc->root.get()});
  if (!report.ok()) return 1;
  std::printf("Loaded %llu tuples from %llu document(s); XADT stored %s\n\n",
              static_cast<unsigned long long>(report->tuples),
              static_cast<unsigned long long>(report->documents),
              report->used_compression ? "compressed" : "raw");

  // 3. Query QE1 from the paper (Figure 7a): HAMLET's lines containing
  //    the keyword 'friend', via the XADT methods.
  const char* kQe1 =
      "SELECT xadtToXml(getElm(speech_line, 'LINE', 'LINE', 'friend')) "
      "FROM speech, act "
      "WHERE findKeyInElm(speech_speaker, 'SPEAKER', 'HAMLET') = 1 "
      "AND findKeyInElm(speech_line, 'LINE', 'friend') = 1 "
      "AND speech_parentID = actID "
      "AND speech_parentCODE = 'ACT'";
  auto qe1 = (*db)->Query(kQe1);
  if (!qe1.ok()) {
    std::fprintf(stderr, "QE1: %s\n", qe1.status().ToString().c_str());
    return 1;
  }
  std::printf("== QE1: HAMLET's 'friend' lines in acts ==\n%s\n",
              qe1->ToString().c_str());

  // 4. QE2 (Figure 8a): the second line of each speech.
  auto qe2 = (*db)->Query(
      "SELECT xadtToXml(getElmIndex(speech_line, '', 'LINE', 2, 2)) "
      "FROM speech");
  if (!qe2.ok()) return 1;
  std::printf("== QE2: second line of each speech ==\n%s\n",
              qe2->ToString().c_str());

  // 5. The unnest table UDF (Figure 9): distinct speakers.
  auto speakers = (*db)->Query(
      "SELECT DISTINCT u.out AS speaker FROM speech, "
      "table(unnest(speech_speaker, 'SPEAKER')) u");
  if (!speakers.ok()) return 1;
  std::printf("== Distinct speakers via unnest ==\n%s\n",
              speakers->ToString().c_str());

  // 6. Peek at a query plan.
  auto plan = (*db)->Explain(kQe1);
  if (plan.ok()) std::printf("== QE1 plan ==\n%s\n", plan->c_str());
  return 0;
}
