// Shakespeare tour: builds the paper's Section 4.3 experiment end to end —
// a synthetic Shakespeare corpus loaded under both the Hybrid and the
// XORator mappings — then walks through the six workload queries, printing
// each query pair, its plan on both databases, and a sample of the results.
//
// Run: ./build/examples/shakespeare_tour [plays]

#include <cstdio>
#include <cstdlib>

#include "benchutil/benchutil.h"
#include "benchutil/fixture.h"
#include "benchutil/workload.h"
#include "xorator.h"

int main(int argc, char** argv) {
  using namespace xorator;
  int plays = argc > 1 ? std::atoi(argv[1]) : 6;

  datagen::ShakespeareOptions gen_opts;
  gen_opts.plays = plays;
  auto corpus = datagen::ShakespeareGenerator(gen_opts).GenerateCorpus();
  std::vector<const xml::Node*> docs;
  for (const auto& d : corpus) docs.push_back(d.get());
  std::printf("Generated %d plays (%s of XML)\n\n", plays,
              benchutil::FmtBytes(datagen::CorpusBytes(corpus)).c_str());

  std::vector<std::string> advisor;
  for (const auto& q : benchutil::ShakespeareQueries()) {
    advisor.push_back(q.hybrid_sql);
    advisor.push_back(q.xorator_sql);
  }

  benchutil::ExperimentOptions hybrid_opts;
  hybrid_opts.mapping = benchutil::Mapping::kHybrid;
  hybrid_opts.advisor_queries = advisor;
  auto hybrid =
      benchutil::BuildExperimentDb(datagen::kShakespeareDtd, docs, hybrid_opts);
  if (!hybrid.ok()) {
    std::fprintf(stderr, "hybrid: %s\n", hybrid.status().ToString().c_str());
    return 1;
  }
  benchutil::ExperimentOptions xorator_opts;
  xorator_opts.mapping = benchutil::Mapping::kXorator;
  xorator_opts.advisor_queries = advisor;
  auto xorator = benchutil::BuildExperimentDb(datagen::kShakespeareDtd, docs,
                                              xorator_opts);
  if (!xorator.ok()) {
    std::fprintf(stderr, "xorator: %s\n", xorator.status().ToString().c_str());
    return 1;
  }

  std::printf(
      "Hybrid schema: %zu tables, %s data, %s index\n"
      "XORator schema: %zu tables, %s data, %s index\n\n",
      hybrid->schema.tables.size(),
      benchutil::FmtBytes(hybrid->db->DataBytes()).c_str(),
      benchutil::FmtBytes(hybrid->db->IndexBytes()).c_str(),
      xorator->schema.tables.size(),
      benchutil::FmtBytes(xorator->db->DataBytes()).c_str(),
      benchutil::FmtBytes(xorator->db->IndexBytes()).c_str());

  for (const auto& q : benchutil::ShakespeareQueries()) {
    std::printf("==================== %s: %s ====================\n",
                q.id.c_str(), q.description.c_str());
    std::printf("-- Hybrid SQL --\n%s\n", q.hybrid_sql.c_str());
    auto h = hybrid->db->Query(q.hybrid_sql);
    if (!h.ok()) {
      std::fprintf(stderr, "hybrid failed: %s\n",
                   h.status().ToString().c_str());
      return 1;
    }
    std::printf("%zu rows; plan:\n%s", h->rows.size(), h->plan.c_str());
    std::printf("-- XORator SQL --\n%s\n", q.xorator_sql.c_str());
    auto x = xorator->db->Query(q.xorator_sql);
    if (!x.ok()) {
      std::fprintf(stderr, "xorator failed: %s\n",
                   x.status().ToString().c_str());
      return 1;
    }
    std::printf("%zu rows; plan:\n%s", x->rows.size(), x->plan.c_str());
    std::printf("sample result:\n%s\n", x->ToString(3).c_str());
  }
  return 0;
}
