// SIGMOD Proceedings walkthrough (the paper's Section 4.4 "deep DTD" worst
// case): everything below the document root collapses into a single XADT
// column, the storage chooser picks the compressed representation, and
// queries compose getElm / getElmIndex / unnest calls instead of joins.
//
// Run: ./build/examples/sigmod_proceedings [documents]

#include <cstdio>
#include <cstdlib>

#include "benchutil/benchutil.h"
#include "benchutil/fixture.h"
#include "benchutil/workload.h"
#include "xorator.h"

int main(int argc, char** argv) {
  using namespace xorator;
  int documents = argc > 1 ? std::atoi(argv[1]) : 200;

  // Show the two schemas side by side.
  auto hybrid_schema =
      benchutil::MapDtd(datagen::kSigmodDtd, benchutil::Mapping::kHybrid);
  auto xorator_schema =
      benchutil::MapDtd(datagen::kSigmodDtd, benchutil::Mapping::kXorator);
  if (!hybrid_schema.ok() || !xorator_schema.ok()) return 1;
  std::printf("== Hybrid schema (%zu tables) ==\n%s\n",
              hybrid_schema->tables.size(), hybrid_schema->ToDdl().c_str());
  std::printf("== XORator schema (%zu table) ==\n%s\n",
              xorator_schema->tables.size(), xorator_schema->ToDdl().c_str());

  datagen::SigmodOptions gen_opts;
  gen_opts.documents = documents;
  auto corpus = datagen::SigmodGenerator(gen_opts).GenerateCorpus();
  std::vector<const xml::Node*> docs;
  for (const auto& d : corpus) docs.push_back(d.get());

  std::vector<std::string> advisor;
  for (const auto& q : benchutil::SigmodQueries()) {
    advisor.push_back(q.hybrid_sql);
    advisor.push_back(q.xorator_sql);
  }
  benchutil::ExperimentOptions opts;
  opts.mapping = benchutil::Mapping::kXorator;
  opts.advisor_queries = advisor;
  auto db = benchutil::BuildExperimentDb(datagen::kSigmodDtd, docs, opts);
  if (!db.ok()) {
    std::fprintf(stderr, "%s\n", db.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "Loaded %d documents (%s of XML) into ONE table; XADT representation: "
      "%s; database: %s\n\n",
      documents, benchutil::FmtBytes(datagen::CorpusBytes(corpus)).c_str(),
      db->load.used_compression ? "compressed (tag dictionary)" : "raw",
      benchutil::FmtBytes(db->db->DataBytes()).c_str());

  // QG4: per-author section counts, entirely through unnest + getElm.
  const auto& qg4 = benchutil::SigmodQueries()[3];
  std::printf("== %s ==\n%s\n\n", qg4.id.c_str(), qg4.xorator_sql.c_str());
  auto result = db->db->Query(qg4.xorator_sql + " ORDER BY sections DESC");
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("Top authors by section count:\n%s\n",
              result->ToString(8).c_str());
  std::printf("UDF accounting: %llu scalar + %llu table-UDF calls, %s "
              "marshaled\n\n",
              static_cast<unsigned long long>(result->udf_stats.scalar_calls),
              static_cast<unsigned long long>(result->udf_stats.table_calls),
              benchutil::FmtBytes(result->udf_stats.marshaled_bytes).c_str());

  // QG6: order access inside the fragment — second authors of Join papers.
  const auto& qg6 = benchutil::SigmodQueries()[5];
  auto second = db->db->Query(
      "SELECT u.out AS second_author FROM pp, "
      "table(unnest(getElmIndex(getElm(pp_slist, 'aTuple', 'title', 'Join'), "
      "'authors', 'author', 2, 2), 'author')) u");
  if (!second.ok()) return 1;
  std::printf("== %s ==\nsecond authors of 'Join' papers:\n%s\n",
              qg6.id.c_str(), second->ToString(6).c_str());
  return 0;
}
