// xo_client: a command-line client for a running xo_server (DESIGN.md
// section 17), built on the retrying server::Client.
//
//   ./build/examples/xo_client <port> "<SQL>"     run one statement
//   ./build/examples/xo_client <port>             interactive: one SQL
//                                                 statement per line
//
// Interactive commands besides SQL:
//   \stats        server + engine counters (the STATS frame)
//   \deadline N   set a per-statement deadline of N ms (0 clears it)
//   \quit
//
// Retryable failures — admission rejections with a retry-after hint, the
// read-only health latch, transport drops — are retried with bounded
// exponential backoff + jitter before they surface here.

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "xorator.h"

namespace {

using namespace xorator;

void PrintResult(const server::ResultPayload& result) {
  for (size_t c = 0; c < result.columns.size(); ++c) {
    std::printf("%s%s", c == 0 ? "" : " | ", result.columns[c].c_str());
  }
  if (!result.columns.empty()) std::printf("\n");
  for (const auto& row : result.rows) {
    for (size_t c = 0; c < row.size(); ++c) {
      std::printf("%s%s", c == 0 ? "" : " | ", row[c].c_str());
    }
    std::printf("\n");
  }
  std::printf("(%zu rows)\n", result.rows.size());
}

int RunStatement(server::Client* client, const std::string& sql,
                 uint64_t deadline_millis) {
  server::CallOptions call;
  call.deadline_millis = deadline_millis;
  auto r = client->Query(sql, call);
  if (!r.ok()) {
    std::fprintf(stderr, "error: %s\n", r.status().ToString().c_str());
    return 1;
  }
  PrintResult(*r);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: xo_client <port> [sql]\n");
    return 2;
  }
  server::ClientOptions options;
  options.port = static_cast<uint16_t>(std::atoi(argv[1]));
  server::Client client(std::move(options));

  if (argc > 2) return RunStatement(&client, argv[2], 0);

  uint64_t deadline_millis = 0;
  std::string line;
  std::printf("connected to 127.0.0.1:%s — SQL per line, \\stats, \\quit\n",
              argv[1]);
  while (std::getline(std::cin, line)) {
    if (line.empty()) continue;
    if (line == "\\quit" || line == "\\q") break;
    if (line == "\\stats") {
      auto stats = client.Stats();
      if (!stats.ok()) {
        std::fprintf(stderr, "error: %s\n",
                     stats.status().ToString().c_str());
        continue;
      }
      for (const auto& [name, value] : stats->rows) {
        std::printf("%-36s %s\n", name.c_str(), value.c_str());
      }
      continue;
    }
    if (line.rfind("\\deadline ", 0) == 0) {
      deadline_millis = std::strtoull(line.c_str() + 10, nullptr, 10);
      std::printf("deadline: %llu ms\n",
                  static_cast<unsigned long long>(deadline_millis));
      continue;
    }
    RunStatement(&client, line, deadline_millis);
  }
  return 0;
}
