// xo_server: serve a synthetic Shakespeare corpus over the xorator wire
// protocol (DESIGN.md section 17).
//
//   ./build/examples/xo_server [port] [plays]
//
// Builds a Hybrid-mapped database from `plays` generated plays (default 3),
// starts the thread-pool socket server on `port` (default 4715; 0 picks an
// ephemeral port), prints the address, and serves until stdin closes or a
// `quit` line arrives — then drains in flight statements and prints the
// admission counters. Point ./build/examples/xo_client at it.
//
//   ./build/examples/xo_server --smoke
//
// Self-contained smoke mode for CI: starts the server on an ephemeral
// port, drives one client round trip + STATS over loopback, shuts down.

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "benchutil/fixture.h"
#include "xorator.h"

namespace {

using namespace xorator;

int Fail(const Status& status, const char* what) {
  std::fprintf(stderr, "xo_server: %s: %s\n", what,
               status.ToString().c_str());
  return 1;
}

Result<benchutil::ExperimentDb> BuildCorpusDb(int plays) {
  datagen::ShakespeareOptions gen;
  gen.plays = plays;
  gen.acts_per_play = 2;
  gen.scenes_per_act = 2;
  gen.speeches_per_scene = 8;
  auto corpus = datagen::ShakespeareGenerator(gen).GenerateCorpus();
  std::vector<const xml::Node*> docs;
  for (const auto& d : corpus) docs.push_back(d.get());
  benchutil::ExperimentOptions options;
  options.mapping = benchutil::Mapping::kHybrid;
  return benchutil::BuildExperimentDb(datagen::kShakespeareDtd, docs,
                                      options);
}

void PrintStats(server::Server* srv) {
  const server::ServerStats s = srv->server_stats();
  std::printf("connections  accepted %llu  rejected %llu  closed %llu\n",
              static_cast<unsigned long long>(s.connections_accepted),
              static_cast<unsigned long long>(s.connections_rejected),
              static_cast<unsigned long long>(s.connections_closed));
  std::printf("statements   admitted %llu  ok %llu  error %llu\n",
              static_cast<unsigned long long>(s.statements_admitted),
              static_cast<unsigned long long>(s.statements_ok),
              static_cast<unsigned long long>(s.statements_error));
  std::printf("shed         queue %llu  readonly %llu  draining %llu  "
              "disconnect-cancels %llu  malformed %llu\n",
              static_cast<unsigned long long>(s.statements_rejected_queue),
              static_cast<unsigned long long>(s.statements_shed_readonly),
              static_cast<unsigned long long>(s.statements_rejected_draining),
              static_cast<unsigned long long>(s.cancelled_on_disconnect),
              static_cast<unsigned long long>(s.malformed_frames));
}

int Smoke() {
  auto built = BuildCorpusDb(2);
  if (!built.ok()) return Fail(built.status(), "fixture");
  auto started = server::Server::Start(built->db.get());
  if (!started.ok()) return Fail(started.status(), "start");
  std::unique_ptr<server::Server> srv = std::move(*started);

  server::ClientOptions copts;
  copts.port = srv->port();
  server::Client client(std::move(copts));
  auto r = client.Query("SELECT COUNT(*) AS n FROM speech");
  if (!r.ok()) return Fail(r.status(), "query");
  std::printf("smoke: %s rows, speech count %s\n",
              std::to_string(r->rows.size()).c_str(),
              r->rows[0][0].c_str());
  auto stats = client.Stats();
  if (!stats.ok()) return Fail(stats.status(), "stats");
  std::printf("smoke: %zu stats rows\n", stats->rows.size());
  srv->Shutdown();
  PrintStats(srv.get());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::string(argv[1]) == "--smoke") return Smoke();
  const uint16_t port =
      argc > 1 ? static_cast<uint16_t>(std::atoi(argv[1])) : 4715;
  const int plays = argc > 2 ? std::atoi(argv[2]) : 3;

  std::printf("loading %d generated plays (Hybrid mapping)...\n", plays);
  auto built = BuildCorpusDb(plays);
  if (!built.ok()) return Fail(built.status(), "fixture");

  server::ServerOptions options;
  options.port = port;
  auto started = server::Server::Start(built->db.get(), options);
  if (!started.ok()) return Fail(started.status(), "start");
  std::unique_ptr<server::Server> srv = std::move(*started);
  std::printf(
      "listening on 127.0.0.1:%u\n"
      "try:  ./build/examples/xo_client %u \"SELECT COUNT(*) AS n FROM "
      "speech\"\n"
      "type quit (or close stdin) to drain and exit\n",
      srv->port(), srv->port());

  std::string line;
  while (std::getline(std::cin, line)) {
    if (line == "quit" || line == "exit") break;
    if (line == "stats") PrintStats(srv.get());
  }
  std::printf("draining...\n");
  srv->Shutdown();
  PrintStats(srv.get());
  return 0;
}
