// Interactive shell: load a synthetic corpus under any mapping, then run
// SQL or path expressions against it from stdin.
//
//   ./build/examples/xorator_shell [shakespeare|sigmod] [hybrid|xorator|
//                                   shared|perelement] [docs]
//
// Commands:
//   <SQL>;                e.g. SELECT COUNT(*) AS n FROM speech;
//   \path <expr>          e.g. \path /PLAY/ACT/SCENE/SPEECH/LINE[contains(., 'love')]
//   \text <expr>          like \path but returns element text
//   \schema               prints the mapped DDL
//   \tables               table sizes
//   \explain <SQL>        query plan
//   \quit

#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>

#include "benchutil/benchutil.h"
#include "benchutil/fixture.h"
#include "benchutil/workload.h"
#include "common/timer.h"
#include "xorator.h"
#include "xpath/xpath.h"

namespace {

using namespace xorator;

benchutil::Mapping ParseMapping(const std::string& name) {
  if (name == "hybrid") return benchutil::Mapping::kHybrid;
  if (name == "shared") return benchutil::Mapping::kShared;
  if (name == "perelement") return benchutil::Mapping::kPerElement;
  return benchutil::Mapping::kXorator;
}

}  // namespace

int main(int argc, char** argv) {
  std::string corpus_name = argc > 1 ? argv[1] : "shakespeare";
  std::string mapping_name = argc > 2 ? argv[2] : "xorator";
  int docs_count = argc > 3 ? std::atoi(argv[3]) : 0;

  std::vector<std::unique_ptr<xml::Node>> corpus;
  std::string dtd_text;
  if (corpus_name == "sigmod") {
    datagen::SigmodOptions opts;
    opts.documents = docs_count > 0 ? docs_count : 200;
    corpus = datagen::SigmodGenerator(opts).GenerateCorpus();
    dtd_text = datagen::kSigmodDtd;
  } else {
    datagen::ShakespeareOptions opts;
    opts.plays = docs_count > 0 ? docs_count : 6;
    corpus = datagen::ShakespeareGenerator(opts).GenerateCorpus();
    dtd_text = datagen::kShakespeareDtd;
  }
  std::vector<const xml::Node*> docs;
  for (const auto& d : corpus) docs.push_back(d.get());

  std::vector<std::string> advisor;
  for (const auto& q : benchutil::ShakespeareQueries()) {
    advisor.push_back(q.hybrid_sql);
    advisor.push_back(q.xorator_sql);
  }
  for (const auto& q : benchutil::SigmodQueries()) {
    advisor.push_back(q.hybrid_sql);
    advisor.push_back(q.xorator_sql);
  }
  benchutil::ExperimentOptions opts;
  opts.mapping = ParseMapping(mapping_name);
  opts.advisor_queries = advisor;
  auto db = benchutil::BuildExperimentDb(dtd_text, docs, opts);
  if (!db.ok()) {
    std::fprintf(stderr, "load failed: %s\n", db.status().ToString().c_str());
    return 1;
  }
  auto parsed_dtd = xml::ParseDtd(dtd_text);
  auto simplified = dtdgraph::Simplify(*parsed_dtd);
  xpath::Translator translator(&db->schema, &*simplified);

  std::printf(
      "Loaded %zu %s documents under the %s mapping (%zu tables, %s).\n"
      "Enter SQL terminated by ';', or \\path, \\text, \\schema, \\tables, "
      "\\explain, \\quit.\n",
      docs.size(), corpus_name.c_str(), db->schema.algorithm.c_str(),
      db->schema.tables.size(),
      benchutil::FmtBytes(db->db->DataBytes()).c_str());

  std::string buffer;
  std::string line;
  while (true) {
    std::fputs(buffer.empty() ? "xorator> " : "      -> ", stdout);
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    std::string trimmed(xorator::StripWhitespace(line));
    if (trimmed.empty()) continue;
    if (trimmed[0] == '\\') {
      std::istringstream iss(trimmed);
      std::string cmd;
      iss >> cmd;
      std::string rest;
      std::getline(iss, rest);
      rest = std::string(xorator::StripWhitespace(rest));
      if (cmd == "\\quit" || cmd == "\\q") break;
      if (cmd == "\\schema") {
        std::fputs(db->schema.ToDdl().c_str(), stdout);
      } else if (cmd == "\\tables") {
        for (const auto& t : db->db->catalog()->tables()) {
          std::printf("%-16s %8llu rows  %s\n", t->name.c_str(),
                      static_cast<unsigned long long>(t->heap->record_count()),
                      benchutil::FmtBytes(t->heap->bytes()).c_str());
        }
      } else if (cmd == "\\explain") {
        auto plan = db->db->Explain(rest);
        std::printf("%s\n", plan.ok() ? plan->c_str()
                                      : plan.status().ToString().c_str());
      } else if (cmd == "\\path" || cmd == "\\text") {
        auto path = xpath::ParsePath(rest);
        if (!path.ok()) {
          std::printf("parse error: %s\n", path.status().ToString().c_str());
          continue;
        }
        auto sql = translator.ToSql(*path, cmd == "\\path"
                                               ? xpath::OutputMode::kCount
                                               : xpath::OutputMode::kText);
        if (!sql.ok()) {
          std::printf("translate error: %s\n",
                      sql.status().ToString().c_str());
          continue;
        }
        std::printf("-- %s\n", sql->c_str());
        auto result = db->db->Query(*sql);
        std::printf("%s\n", result.ok()
                                ? result->ToString(20).c_str()
                                : result.status().ToString().c_str());
      } else {
        std::printf("unknown command %s\n", cmd.c_str());
      }
      continue;
    }
    buffer += (buffer.empty() ? "" : " ") + std::string(trimmed);
    if (buffer.back() != ';') continue;
    xorator::Timer timer;
    auto result = db->db->Query(buffer);
    double ms = timer.ElapsedMillis();
    buffer.clear();
    if (!result.ok()) {
      std::printf("error: %s\n", result.status().ToString().c_str());
      continue;
    }
    std::fputs(result->ToString(20).c_str(), stdout);
    std::printf("(%.2f ms", ms);
    if (result->udf_stats.scalar_calls + result->udf_stats.table_calls > 0) {
      std::printf(", %llu UDF calls",
                  static_cast<unsigned long long>(
                      result->udf_stats.scalar_calls +
                      result->udf_stats.table_calls));
    }
    std::printf(")\n");
  }
  return 0;
}
