#include "benchutil/benchutil.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "common/timer.h"

namespace xorator::benchutil {

Result<double> TimeMedianOfMiddle(const std::function<Status()>& fn,
                                  int runs) {
  if (runs < 1) return Status::InvalidArgument("runs must be >= 1");
  std::vector<double> times;
  times.reserve(runs);
  for (int i = 0; i < runs; ++i) {
    Timer timer;
    XO_RETURN_NOT_OK(fn());
    times.push_back(timer.ElapsedMillis());
  }
  std::sort(times.begin(), times.end());
  size_t lo = 0;
  size_t hi = times.size();
  if (times.size() >= 3) {
    lo = 1;
    hi = times.size() - 1;
  }
  double sum = 0;
  for (size_t i = lo; i < hi; ++i) sum += times[i];
  return sum / static_cast<double>(hi - lo);
}

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size() && i < widths.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  auto line = [&](const std::vector<std::string>& cells) {
    std::string out = "|";
    for (size_t i = 0; i < widths.size(); ++i) {
      std::string cell = i < cells.size() ? cells[i] : "";
      out += " " + cell + std::string(widths[i] - cell.size(), ' ') + " |";
    }
    return out + "\n";
  };
  std::string out = line(headers_);
  std::string sep = "|";
  for (size_t w : widths) sep += std::string(w + 2, '-') + "|";
  out += sep + "\n";
  for (const auto& row : rows_) out += line(row);
  return out;
}

void TablePrinter::Print() const { std::fputs(ToString().c_str(), stdout); }

std::string Fmt(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

std::string FmtBytes(uint64_t bytes) {
  double mb = static_cast<double>(bytes) / (1024.0 * 1024.0);
  if (mb >= 1.0) return Fmt(mb, 1) + " MB";
  return Fmt(static_cast<double>(bytes) / 1024.0, 1) + " KB";
}

bool FullScale() {
  // Benchmarks read the environment once at startup, before any worker
  // threads exist; nothing in the process ever calls setenv.
  const char* env = std::getenv("XORATOR_BENCH_FULL");  // NOLINT(concurrency-mt-unsafe)
  return env != nullptr && env[0] == '1';
}

}  // namespace xorator::benchutil
