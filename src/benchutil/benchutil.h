#ifndef XORATOR_BENCHUTIL_BENCHUTIL_H_
#define XORATOR_BENCHUTIL_BENCHUTIL_H_

#include <functional>
#include <string>
#include <vector>

#include "common/result.h"

namespace xorator::benchutil {

/// Runs `fn` `runs` times and returns the paper's timing statistic: the
/// mean of the middle `runs - 2` measurements (the paper ran each query five
/// times and averaged the middle three). Milliseconds.
[[nodiscard]] Result<double> TimeMedianOfMiddle(const std::function<Status()>& fn,
                                  int runs = 5);

/// Fixed-width text table printer for paper-style outputs.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);
  std::string ToString() const;
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` decimals.
std::string Fmt(double value, int digits = 2);

/// Formats bytes as "12.3 MB".
std::string FmtBytes(uint64_t bytes);

/// True when the environment asks for paper-scale benchmarks
/// (XORATOR_BENCH_FULL=1); otherwise benches run a reduced scale so the
/// whole suite finishes in minutes.
bool FullScale();

}  // namespace xorator::benchutil

#endif  // XORATOR_BENCHUTIL_BENCHUTIL_H_
