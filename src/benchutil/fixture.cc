#include "benchutil/fixture.h"

#include "dtdgraph/simplify.h"
#include "mapping/mapper.h"
#include "xadt/functions.h"
#include "xml/dtd.h"

namespace xorator::benchutil {

Result<mapping::MappedSchema> MapDtd(const std::string& dtd_text,
                                     Mapping mapping) {
  XO_ASSIGN_OR_RETURN(xml::Dtd dtd, xml::ParseDtd(dtd_text));
  XO_ASSIGN_OR_RETURN(auto simplified, dtdgraph::Simplify(dtd));
  switch (mapping) {
    case Mapping::kHybrid:
      return mapping::MapHybrid(simplified);
    case Mapping::kXorator:
      return mapping::MapXorator(simplified);
    case Mapping::kShared:
      return mapping::MapShared(simplified);
    case Mapping::kPerElement:
      return mapping::MapPerElement(simplified);
    case Mapping::kXoratorTuned:
      return Status::InvalidArgument(
          "kXoratorTuned needs documents; use BuildExperimentDb");
  }
  return Status::InvalidArgument("bad mapping");
}

Result<ExperimentDb> BuildExperimentDb(
    const std::string& dtd_text,
    const std::vector<const xml::Node*>& documents,
    const ExperimentOptions& options) {
  ExperimentDb out;
  if (options.mapping == Mapping::kXoratorTuned) {
    XO_ASSIGN_OR_RETURN(xml::Dtd dtd, xml::ParseDtd(dtd_text));
    XO_ASSIGN_OR_RETURN(auto simplified, dtdgraph::Simplify(dtd));
    std::vector<const xml::Node*> sample(
        documents.begin(),
        documents.begin() +
            std::min(documents.size(), options.tuned_sample_docs));
    mapping::XmlStats stats = mapping::CollectXmlStats(sample);
    XO_ASSIGN_OR_RETURN(out.schema, mapping::MapXoratorTuned(
                                        simplified, stats, options.tuned));
  } else {
    XO_ASSIGN_OR_RETURN(out.schema, MapDtd(dtd_text, options.mapping));
  }
  XO_ASSIGN_OR_RETURN(out.db, ordb::Database::Open(options.db_options));
  XO_RETURN_NOT_OK(xadt::RegisterXadtFunctions(out.db->functions()));
  shred::Loader loader(out.db.get(), &out.schema);
  XO_RETURN_NOT_OK(loader.CreateTables());
  std::vector<const xml::Node*> multiplied;
  multiplied.reserve(documents.size() *
                     static_cast<size_t>(std::max(1, options.load_multiplier)));
  for (int m = 0; m < std::max(1, options.load_multiplier); ++m) {
    for (const xml::Node* doc : documents) multiplied.push_back(doc);
  }
  XO_ASSIGN_OR_RETURN(out.load, loader.Load(multiplied, options.load_options));
  // Primary-key indexes, which DB2 creates implicitly for the ID column the
  // mapping algorithms add to every relation.
  for (const mapping::TableSpec& table : out.schema.tables) {
    int id_col = table.RoleIndex(mapping::ColumnRole::kId);
    if (id_col >= 0) {
      XO_RETURN_NOT_OK(
          out.db->CreateIndex(table.name, table.columns[id_col].name));
    }
  }
  XO_RETURN_NOT_OK(out.db->RunStats());
  if (!options.advisor_queries.empty()) {
    XO_RETURN_NOT_OK(out.db->AdviseIndexes(options.advisor_queries));
    XO_RETURN_NOT_OK(out.db->RunStats());
  }
  return out;
}

}  // namespace xorator::benchutil
