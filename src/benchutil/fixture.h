#ifndef XORATOR_BENCHUTIL_FIXTURE_H_
#define XORATOR_BENCHUTIL_FIXTURE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "mapping/mapper.h"
#include "mapping/schema.h"
#include "ordb/database.h"
#include "shred/loader.h"
#include "xml/dom.h"

namespace xorator::benchutil {

/// Which mapping algorithm a fixture database uses.
enum class Mapping { kHybrid, kXorator, kShared, kPerElement, kXoratorTuned };

/// A loaded experiment database: mapping + engine + load report.
///
/// Once built, the database may be queried from many threads at once —
/// SELECTs take the statement lock shared (DESIGN.md section 10); the
/// concurrency tests and the multi-threaded benchmarks share one
/// ExperimentDb across reader threads this way.
struct ExperimentDb {
  mapping::MappedSchema schema;
  std::unique_ptr<ordb::Database> db;
  shred::LoadReport load;
};

/// Knobs for one paper-experiment run (mapping, corpus scale, indexes).
struct ExperimentOptions {
  Mapping mapping = Mapping::kHybrid;
  /// Load the corpus this many times (the paper's DSx1/x2/x4/x8 scaling).
  int load_multiplier = 1;
  /// Queries handed to the index advisor (the paper's "Index Wizard") after
  /// loading; statistics are always collected ("runstats").
  std::vector<std::string> advisor_queries;
  shred::LoadOptions load_options;
  ordb::DbOptions db_options;
  /// Thresholds for Mapping::kXoratorTuned (statistics collected from the
  /// first `tuned_sample_docs` documents).
  mapping::TunedOptions tuned;
  size_t tuned_sample_docs = 5;
};

/// Builds a database for `dtd_text`, loads `documents` (multiplied), creates
/// advised indexes and collects statistics. The XADT UDFs are registered for
/// every mapping so both dialects run everywhere.
[[nodiscard]] Result<ExperimentDb> BuildExperimentDb(
    const std::string& dtd_text,
    const std::vector<const xml::Node*>& documents,
    const ExperimentOptions& options);

/// Maps a DTD text with the requested algorithm.
[[nodiscard]] Result<mapping::MappedSchema> MapDtd(const std::string& dtd_text,
                                     Mapping mapping);

}  // namespace xorator::benchutil

#endif  // XORATOR_BENCHUTIL_FIXTURE_H_
