#include "benchutil/workload.h"

namespace xorator::benchutil {

const std::vector<PaperQuery>& ShakespeareQueries() {
  static const std::vector<PaperQuery>* kQueries = new std::vector<PaperQuery>{
      {"QS1", "Flattening: list speakers and the lines that they speak",
       "SELECT speaker_value, line_value "
       "FROM speech, speaker, line "
       "WHERE speaker_parentID = speechID AND line_parentID = speechID",
       "SELECT s.out, l.out "
       "FROM speech, table(unnest(speech_speaker, 'SPEAKER')) s, "
       "table(unnest(speech_line, 'LINE')) l"},
      {"QS2",
       "Full path expression: lines that have stage directions associated "
       "with the lines",
       "SELECT line_value "
       "FROM line, stagedir "
       "WHERE stagedir_parentID = lineID AND stagedir_parentCODE = 'LINE'",
       "SELECT getElm(speech_line, 'LINE', 'STAGEDIR', '') "
       "FROM speech "
       "WHERE findKeyInElm(speech_line, 'STAGEDIR', '') = 1"},
      {"QS3",
       "Selection: lines with the keyword 'Rising' in the text of the stage "
       "direction",
       "SELECT line_value "
       "FROM line, stagedir "
       "WHERE stagedir_parentID = lineID AND stagedir_parentCODE = 'LINE' "
       "AND stagedir_value LIKE '%Rising%'",
       "SELECT getElm(speech_line, 'LINE', 'STAGEDIR', 'Rising') "
       "FROM speech "
       "WHERE findKeyInElm(speech_line, 'STAGEDIR', 'Rising') = 1"},
      {"QS4",
       "Multiple selections: speeches spoken by ROMEO in 'Romeo and Juliet'",
       "SELECT speechID "
       "FROM play, act, scene, speech, speaker "
       "WHERE play_title = 'Romeo and Juliet' AND act_parentID = playID "
       "AND scene_parentID = actID AND scene_parentCODE = 'ACT' "
       "AND speech_parentID = sceneID AND speech_parentCODE = 'SCENE' "
       "AND speaker_parentID = speechID AND speaker_value = 'ROMEO'",
       "SELECT speechID "
       "FROM play, act, scene, speech "
       "WHERE play_title = 'Romeo and Juliet' AND act_parentID = playID "
       "AND scene_parentID = actID AND scene_parentCODE = 'ACT' "
       "AND speech_parentID = sceneID AND speech_parentCODE = 'SCENE' "
       "AND findKeyInElm(speech_speaker, 'SPEAKER', 'ROMEO') = 1"},
      {"QS5",
       "Twig with selection: ROMEO's speeches in 'Romeo and Juliet' with "
       "lines containing 'love'",
       "SELECT line_value "
       "FROM play, act, scene, speech, speaker, line "
       "WHERE play_title = 'Romeo and Juliet' AND act_parentID = playID "
       "AND scene_parentID = actID AND scene_parentCODE = 'ACT' "
       "AND speech_parentID = sceneID AND speech_parentCODE = 'SCENE' "
       "AND speaker_parentID = speechID AND speaker_value = 'ROMEO' "
       "AND line_parentID = speechID AND line_value LIKE '%love%'",
       "SELECT getElm(speech_line, 'LINE', 'LINE', 'love') "
       "FROM play, act, scene, speech "
       "WHERE play_title = 'Romeo and Juliet' AND act_parentID = playID "
       "AND scene_parentID = actID AND scene_parentCODE = 'ACT' "
       "AND speech_parentID = sceneID AND speech_parentCODE = 'SCENE' "
       "AND findKeyInElm(speech_speaker, 'SPEAKER', 'ROMEO') = 1 "
       "AND findKeyInElm(speech_line, 'LINE', 'love') = 1"},
      {"QS6",
       "Order access: the second line in all speeches that are in prologues",
       "SELECT line_value "
       "FROM prologue, speech, line "
       "WHERE speech_parentID = prologueID "
       "AND speech_parentCODE = 'PROLOGUE' "
       "AND line_parentID = speechID AND line_childOrder = 2",
       "SELECT getElmIndex(speech_line, '', 'LINE', 2, 2) "
       "FROM speech "
       "WHERE speech_parentCODE = 'PROLOGUE'"},
  };
  return *kQueries;
}

const std::vector<PaperQuery>& SigmodQueries() {
  static const std::vector<PaperQuery>* kQueries = new std::vector<PaperQuery>{
      {"QG1",
       "Selection and extraction: authors of papers with 'Join' in the title",
       "SELECT author_value "
       "FROM atuple, authors, author "
       "WHERE atuple_title LIKE '%Join%' "
       "AND authors_parentID = atupleID AND author_parentID = authorsID",
       "SELECT getElm(getElm(pp_slist, 'aTuple', 'title', 'Join'), "
       "'author', '', '') "
       "FROM pp "
       "WHERE findKeyInElm(pp_slist, 'title', 'Join') = 1"},
      {"QG2",
       "Flattening: all authors with the section names their papers appear "
       "in",
       "SELECT author_value, slisttuple_sectionname "
       "FROM slisttuple, articles, atuple, authors, author "
       "WHERE articles_parentID = slisttupleID "
       "AND atuple_parentID = articlesID "
       "AND authors_parentID = atupleID AND author_parentID = authorsID",
       "SELECT a.out, s.out "
       "FROM pp, table(unnest(pp_slist, 'sListTuple')) t, "
       "table(unnest(getElm(t.frag, 'sectionName', '', ''), "
       "'sectionName')) s, "
       "table(unnest(getElm(t.frag, 'author', '', ''), 'author')) a"},
      {"QG3",
       "Flattening with selection: section names of papers by authors "
       "matching 'Worthy'",
       "SELECT slisttuple_sectionname "
       "FROM slisttuple, articles, atuple, authors, author "
       "WHERE articles_parentID = slisttupleID "
       "AND atuple_parentID = articlesID "
       "AND authors_parentID = atupleID AND author_parentID = authorsID "
       "AND author_value LIKE '%Worthy%'",
       "SELECT getElm(getElm(pp_slist, 'sListTuple', 'author', 'Worthy'), "
       "'sectionName', '', '') "
       "FROM pp "
       "WHERE findKeyInElm(pp_slist, 'author', 'Worthy') = 1"},
      {"QG4",
       "Aggregation: per author, the number of sections with their papers",
       "SELECT author_value, COUNT(*) AS sections "
       "FROM slisttuple, articles, atuple, authors, author "
       "WHERE articles_parentID = slisttupleID "
       "AND atuple_parentID = articlesID "
       "AND authors_parentID = atupleID AND author_parentID = authorsID "
       "GROUP BY author_value",
       "SELECT a.out, COUNT(*) AS sections "
       "FROM pp, table(unnest(pp_slist, 'sListTuple')) t, "
       "table(unnest(getElm(t.frag, 'author', '', ''), 'author')) a "
       "GROUP BY a.out"},
      {"QG5",
       "Aggregation with selection: sections having papers by authors "
       "matching 'Bird'",
       "SELECT COUNT(*) AS sections "
       "FROM slisttuple, articles, atuple, authors, author "
       "WHERE articles_parentID = slisttupleID "
       "AND atuple_parentID = articlesID "
       "AND authors_parentID = atupleID AND author_parentID = authorsID "
       "AND author_value LIKE '%Bird%'",
       "SELECT COUNT(*) AS sections "
       "FROM pp, table(unnest(getElm(pp_slist, 'sListTuple', 'author', "
       "'Bird'), 'sListTuple')) t "
       "WHERE findKeyInElm(pp_slist, 'author', 'Bird') = 1"},
      {"QG6",
       "Order access with selection: the second author of papers with "
       "'Join' in the title",
       "SELECT author_value "
       "FROM atuple, authors, author "
       "WHERE atuple_title LIKE '%Join%' "
       "AND authors_parentID = atupleID AND author_parentID = authorsID "
       "AND author_childOrder = 2",
       "SELECT getElmIndex(getElm(pp_slist, 'aTuple', 'title', 'Join'), "
       "'authors', 'author', 2, 2) "
       "FROM pp "
       "WHERE findKeyInElm(pp_slist, 'title', 'Join') = 1"},
  };
  return *kQueries;
}

const std::vector<PaperQuery>& UdfOverheadQueries() {
  static const std::vector<PaperQuery>* kQueries = new std::vector<PaperQuery>{
      {"QT1", "Return the length of the SPEAKER attribute",
       "SELECT length(speaker_value) FROM speaker",
       "SELECT udf_length(speaker_value) FROM speaker"},
      {"QT2",
       "Return the substring of the SPEAKER attribute from position 5",
       "SELECT substr(speaker_value, 5) FROM speaker",
       "SELECT udf_substr(speaker_value, 5) FROM speaker"},
  };
  return *kQueries;
}

}  // namespace xorator::benchutil
