#ifndef XORATOR_BENCHUTIL_WORKLOAD_H_
#define XORATOR_BENCHUTIL_WORKLOAD_H_

#include <string>
#include <vector>

namespace xorator::benchutil {

/// One paper query in both dialects: SQL over the Hybrid (relational) schema
/// and SQL (with XADT UDFs) over the XORator schema.
struct PaperQuery {
  std::string id;           // "QS1" ... "QG6"
  std::string description;  // the paper's one-line description
  std::string hybrid_sql;
  std::string xorator_sql;
};

/// The Shakespeare query set of Section 4.3 (QS1-QS6).
const std::vector<PaperQuery>& ShakespeareQueries();

/// The SIGMOD-Proceedings query set of Section 4.4 (QG1-QG6).
const std::vector<PaperQuery>& SigmodQueries();

/// The UDF-overhead microqueries of Figure 14 (QT1/QT2), over the Hybrid
/// Shakespeare schema. `.hybrid_sql` uses the built-in, `.xorator_sql` the
/// UDF twin.
const std::vector<PaperQuery>& UdfOverheadQueries();

}  // namespace xorator::benchutil

#endif  // XORATOR_BENCHUTIL_WORKLOAD_H_
