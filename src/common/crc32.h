#ifndef XORATOR_COMMON_CRC32_H_
#define XORATOR_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace xorator {

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320), table-driven.
///
/// Used to checksum storage pages and WAL records. `seed` allows chaining:
/// Crc32(b, nb, Crc32(a, na)) == Crc32(concat(a, b)).
uint32_t Crc32(const void* data, size_t length, uint32_t seed = 0);

}  // namespace xorator

#endif  // XORATOR_COMMON_CRC32_H_
