#ifndef XORATOR_COMMON_LIFETIME_H_
#define XORATOR_COMMON_LIFETIME_H_

// Clang statement-local lifetime annotations (DESIGN.md section 14).
//
// These macros mark the functions and classes that hand out *borrowed*
// bytes — `std::string_view`s into an encoded value, `char*` into a pinned
// buffer-pool page, `RowView`/`ValueView` over a stored record — so that
// the borrow outliving its owner is a compile error under Clang. The
// top-level CMakeLists.txt promotes the three diagnostics that consume
// these annotations (`-Wdangling`, `-Wdangling-gsl`,
// `-Wreturn-stack-address`) to errors on every Clang build; GCC compiles
// the macros to nothing, so on GCC they are free documentation and the
// runtime backstop is the Sanitize build type (ASan catches the dangles
// these rules prevent statically).
//
// They are macros (not attributes spelled inline) for the same reasons as
// the annotations in common/thread_annotations.h and common/typestate.h:
//   1. `[[clang::lifetimebound]]` / `[[gsl::Owner]]` / `[[gsl::Pointer]]`
//      are Clang-only spellings; the tokens must vanish on other
//      compilers.
//   2. One macro layer isolates the repository from attribute churn.
//   3. Grep-ability: `XO_LIFETIME_BOUND` finds every annotated borrow, and
//      the `lifetime` lint rule (tools/lint) uses exactly that token to
//      require the annotation on every view-returning function in src/.
//
// Spelling-order rule: `XO_LIFETIME_BOUND` expands to a C++11-style
// attribute. On a member function it annotates the implicit object
// parameter and must follow the cv-qualifier — and when combined with the
// GNU-style analysis macros (XO_CALLABLE_WHEN, XO_EXCLUDES, ...), those
// come first:
//
//   const char* data() XO_CALLABLE_WHEN("unconsumed") XO_LIFETIME_BOUND;
//
// Known limits, so callers are not surprised:
//   * The analysis is statement-local: it catches a borrow initialized
//     from a temporary owner, and a borrow of a local returned from the
//     function, in a single full-expression. A dangle assembled across
//     statements (store the view, destroy the owner later, then read) is
//     invisible to it — that class is covered by the runtime sanitizers
//     and by keeping borrow scopes small.
//   * `XO_LIFETIME_BOUND` on a parameter means "the returned value may
//     refer into this argument"; on the implicit object parameter it
//     means "…into *this". Apply it to the *owning* parameter only —
//     annotating a looked-up key would produce false positives.
//   * `XO_GSL_POINTER` classes are assumed by Clang to dangle when
//     constructed from a temporary `XO_GSL_OWNER` (or std:: owner, which
//     Clang knows intrinsically); the annotation is about construction
//     and propagation, not about every member.

#if defined(__clang__) && !defined(SWIG)

/// The returned reference/pointer/view may refer into the annotated
/// parameter (or, placed after a member function's cv-qualifier, into
/// *this); Clang then diagnoses results that outlive that owner.
#define XO_LIFETIME_BOUND [[clang::lifetimebound]]

/// Marks a class that *owns* the bytes views are taken of (PageRef, ...).
/// `type` is the pointee the owner vends, e.g. XO_GSL_OWNER(char).
#define XO_GSL_OWNER(type) [[gsl::Owner(type)]]

/// Marks a non-owning view class (RowView, ValueView, FragmentScanner):
/// Clang warns when an instance is initialized from a temporary owner.
#define XO_GSL_POINTER(type) [[gsl::Pointer(type)]]

#else  // no-op outside Clang

#define XO_LIFETIME_BOUND
#define XO_GSL_OWNER(type)
#define XO_GSL_POINTER(type)

#endif

#endif  // XORATOR_COMMON_LIFETIME_H_
