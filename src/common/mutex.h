#ifndef XORATOR_COMMON_MUTEX_H_
#define XORATOR_COMMON_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <shared_mutex>

#include "common/thread_annotations.h"

// Annotated synchronization primitives (DESIGN.md sections 10 and 15).
//
// These wrap the standard mutexes with Clang Thread Safety Analysis
// capability annotations so that `XO_GUARDED_BY(mu_)` members and
// `XO_REQUIRES(mu_)` functions are statically checked on every Clang
// build. Library code must use these instead of raw `std::mutex` /
// `std::shared_mutex` / `std::lock_guard` / `std::unique_lock` — the
// repository lint (tools/lint, rule `raw-mutex`) enforces that; this file
// is the single allowlisted implementation site.
//
// The deliberately minimal surface (no timed mutex waits, no
// native_handle) keeps every acquisition analyzable: a capability is only
// ever taken through `Lock`/`ReaderLock` members or the scoped RAII guards
// below, so the analysis sees every edge. Condition waits go through
// xo::CondVar, whose Wait/WaitFor release and re-acquire the xo::Mutex via
// the same rank-checked entry points, so a sleeping waiter keeps the
// held-lock stack truthful.
//
// On top of the static analysis, every mutex carries a LockRank — the
// DESIGN.md section 10 lock hierarchy made executable. Debug builds keep a
// per-thread stack of held ranks and abort on any acquisition that
// violates the hierarchy, catching at runtime the orderings the static
// lattice cannot express (notably the canonical-index ordering of the
// sharded buffer-pool bucket latches, which share one rank).

namespace xo {

/// The lock hierarchy of DESIGN.md section 10 as numeric ranks. A thread
/// may only acquire a mutex whose rank is strictly below the rank of the
/// most recently acquired mutex it still holds (ranks descend inward), with
/// one exception: a mutex of the *same* rank may be acquired if its address
/// is greater than the held one's — the canonical ordering tier used by the
/// sharded buffer-pool bucket latches, which live in one contiguous array
/// acquired in ascending index (= ascending address) order.
///
/// Gaps between values are deliberate: new subsystems slot in without
/// renumbering. The `kLeaf*` ranks are terminal — nothing is ever acquired
/// while holding one.
enum class LockRank : int {
  /// Leaf: EngineHealth's detail mutex. Fault reporters call in from under
  /// bucket latches and Wal::mu_, so nothing may nest below it.
  kLeafHealth = 100,
  /// Leaf: the process-wide close-status record (database.cc).
  kLeafCloseStatus = 110,
  /// Leaf: Database::guards_mu_, the cancel registry. Deliberately outside
  /// the statement-lock hierarchy (taken without mu_), but still a leaf —
  /// Cancel() must never be able to wait on engine locks.
  kLeafGuardRegistry = 120,
  /// Catalog::mu_ — registry lookups/registration. Pool allocations happen
  /// before it is taken, so it nests under nothing but the statement lock.
  kCatalog = 300,
  /// Wal::mu_ — journal stream + logged-page set, taken by write-backs
  /// from under a bucket latch.
  kWal = 400,
  /// BufferPool::io_mu_ — serializes the (unsynchronized) Pager under the
  /// bucket latches; see DESIGN.md section 15.
  kPagerIo = 450,
  /// One sharded buffer-pool bucket latch. The only rank acquired
  /// same-rank: cross-bucket operations take buckets in canonical
  /// (ascending index, therefore ascending address) order.
  kBufferPoolBucket = 500,
  /// BufferPool::scrub_mu_ — the scrub cursor/scratch, which acquires
  /// bucket latches page by page while held.
  kBufferPoolMaint = 550,
  /// Database::mu_ — the statement lock, outermost engine lock.
  kStatement = 600,
  /// server::Server::mu_ — the network front end's admission/queue state.
  /// Above kStatement: the server is a layer over the engine, so even an
  /// accidental engine call made while holding server state descends the
  /// hierarchy. By design the server never holds its mutex across engine
  /// calls (DESIGN.md section 17).
  kServer = 700,
};

/// Human-readable name of `rank`, for the inversion abort message.
inline const char* LockRankName(LockRank rank) {
  switch (rank) {
    case LockRank::kLeafHealth:
      return "LeafHealth";
    case LockRank::kLeafCloseStatus:
      return "LeafCloseStatus";
    case LockRank::kLeafGuardRegistry:
      return "LeafGuardRegistry";
    case LockRank::kCatalog:
      return "Catalog";
    case LockRank::kWal:
      return "Wal";
    case LockRank::kPagerIo:
      return "PagerIo";
    case LockRank::kBufferPoolBucket:
      return "BufferPoolBucket";
    case LockRank::kBufferPoolMaint:
      return "BufferPoolMaint";
    case LockRank::kStatement:
      return "Statement";
    case LockRank::kServer:
      return "Server";
  }
  return "?";
}

// The runtime detector is compiled in whenever asserts are (the same gate
// as the unchecked-Status tracker and the pin-leak sentinels), so the
// Sanitize / ThreadSanitize CI legs and the chaos soak run with it armed;
// Release builds (NDEBUG) pay nothing beyond the 4-byte rank member.
// XORATOR_LOCK_RANK_CHECK forces it on independently of NDEBUG.
#if !defined(NDEBUG) || defined(XORATOR_LOCK_RANK_CHECK)
#define XO_LOCK_RANK_CHECK_ENABLED 1
#else
#define XO_LOCK_RANK_CHECK_ENABLED 0
#endif

namespace rank_internal {

#if XO_LOCK_RANK_CHECK_ENABLED

/// One held acquisition: which mutex, its rank, and the code address the
/// acquisition returned to (resolvable with addr2line against the binary).
struct HeldLock {
  const void* mu = nullptr;
  int rank = 0;
  const void* site = nullptr;
};

/// Per-thread stack of held acquisitions. A fixed array: the engine's
/// deepest legal chain is statement → maint → bucket → io/wal → leaf, plus
/// the 16-bucket canonical sweep, so 64 slots is generous headroom.
struct HeldLockStack {
  static constexpr int kCapacity = 64;
  HeldLock entries[kCapacity];
  int size = 0;
};

/// The calling thread's held-lock stack.
inline HeldLockStack& ThreadLockStack() {
  thread_local HeldLockStack stack;
  return stack;
}

/// Reports a hierarchy violation with both acquisition sites and aborts.
/// Never returns; the message is the contract the death tests match on.
[[noreturn]] inline void AbortLockRankViolation(const char* kind,
                                                const void* mu, LockRank rank,
                                                const void* site,
                                                const HeldLock& held) {
  std::fprintf(
      stderr,
      "xorator: lock rank %s: acquiring %s (rank %d, mutex %p) at %p "
      "while holding %s (rank %d, mutex %p) acquired at %p; the lock "
      "hierarchy (DESIGN.md section 10) permits only strictly descending "
      "ranks, or equal ranks in ascending address order\n",
      kind, LockRankName(rank), static_cast<int>(rank), mu, site,
      LockRankName(static_cast<LockRank>(held.rank)), held.rank, held.mu,
      held.site);
  std::abort();
}

/// Checks `mu` against the thread's held stack and records the
/// acquisition. Called with the raw lock NOT yet taken, so the abort fires
/// before the thread can actually deadlock.
inline void PushLockRank(const void* mu, LockRank rank, const void* site) {
  HeldLockStack& stack = ThreadLockStack();
  for (int i = 0; i < stack.size; ++i) {
    if (stack.entries[i].mu == mu) {
      AbortLockRankViolation("self-deadlock (re-acquisition)", mu, rank, site,
                             stack.entries[i]);
    }
  }
  if (stack.size > 0) {
    const HeldLock& top = stack.entries[stack.size - 1];
    const bool descending = static_cast<int>(rank) < top.rank;
    const bool canonical_same_rank =
        static_cast<int>(rank) == top.rank && mu > top.mu;
    if (!descending && !canonical_same_rank) {
      AbortLockRankViolation("inversion", mu, rank, site, top);
    }
  }
  if (stack.size >= HeldLockStack::kCapacity) {
    std::fprintf(stderr,
                 "xorator: lock rank stack overflow (%d locks held by one "
                 "thread) acquiring %s (mutex %p) at %p\n",
                 stack.size, LockRankName(rank), mu, site);
    std::abort();
  }
  stack.entries[stack.size++] = HeldLock{mu, static_cast<int>(rank), site};
}

/// Removes `mu` from the thread's held stack (releases may be out of
/// order, so this erases the matching entry, not necessarily the top).
inline void PopLockRank(const void* mu) {
  HeldLockStack& stack = ThreadLockStack();
  for (int i = stack.size - 1; i >= 0; --i) {
    if (stack.entries[i].mu == mu) {
      for (int j = i; j + 1 < stack.size; ++j) {
        stack.entries[j] = stack.entries[j + 1];
      }
      --stack.size;
      return;
    }
  }
  // Releasing a lock this thread never recorded: the acquisition predates
  // the thread (impossible for these wrappers) or the bookkeeping is
  // broken. Either way the detector's state is untrustworthy.
  std::fprintf(stderr,
               "xorator: lock rank release of untracked mutex %p\n", mu);
  std::abort();
}

#define XO_LOCK_RANK_PUSH(mu, rank) \
  ::xo::rank_internal::PushLockRank(mu, rank, __builtin_return_address(0))
#define XO_LOCK_RANK_POP(mu) ::xo::rank_internal::PopLockRank(mu)

#else  // !XO_LOCK_RANK_CHECK_ENABLED

#define XO_LOCK_RANK_PUSH(mu, rank) ((void)0)
#define XO_LOCK_RANK_POP(mu) ((void)0)

#endif  // XO_LOCK_RANK_CHECK_ENABLED

}  // namespace rank_internal

/// An exclusive mutex carrying the "mutex" capability and a LockRank.
/// Prefer the scoped MutexLock guard over calling Lock/Unlock directly.
class XO_CAPABILITY("mutex") Mutex {
 public:
  /// Every mutex declares its place in the lock hierarchy at construction
  /// (the `lock-rank` lint rule enforces an explicit rank at every
  /// declaration site).
  explicit Mutex(LockRank rank) : rank_(rank) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  /// Acquires the mutex exclusively, blocking until available. In debug
  /// builds the rank detector runs first, so a would-be deadlock aborts
  /// with both acquisition sites instead of hanging.
  void Lock() XO_ACQUIRE() {
    XO_LOCK_RANK_PUSH(this, rank_);
    mu_.lock();
  }

  /// Releases an exclusive hold.
  void Unlock() XO_RELEASE() {
    mu_.unlock();
    XO_LOCK_RANK_POP(this);
  }

  /// Attempts an exclusive acquisition; true if it was obtained. Rank
  /// checked like Lock(): a try-acquisition that *would* invert the
  /// hierarchy is a bug even when it would have failed cleanly.
  [[nodiscard]] bool TryLock() XO_TRY_ACQUIRE(true) {
    XO_LOCK_RANK_PUSH(this, rank_);
    if (mu_.try_lock()) return true;
    XO_LOCK_RANK_POP(this);
    return false;
  }

  /// This mutex's declared place in the hierarchy.
  LockRank rank() const { return rank_; }

 private:
  std::mutex mu_;
  const LockRank rank_;
};

/// A reader/writer mutex: many concurrent shared holders or one exclusive
/// holder. Carries the "shared_mutex" capability and a LockRank; shared
/// acquisitions satisfy XO_REQUIRES_SHARED, exclusive ones satisfy
/// XO_REQUIRES. Both modes participate in the rank discipline.
class XO_CAPABILITY("shared_mutex") SharedMutex {
 public:
  /// See Mutex: the rank is the mutex's place in the DESIGN.md section 10
  /// hierarchy, enforced at runtime in debug builds.
  explicit SharedMutex(LockRank rank) : rank_(rank) {}
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  /// Acquires the mutex exclusively (writer side).
  void Lock() XO_ACQUIRE() {
    XO_LOCK_RANK_PUSH(this, rank_);
    mu_.lock();
  }

  /// Releases an exclusive hold.
  void Unlock() XO_RELEASE() {
    mu_.unlock();
    XO_LOCK_RANK_POP(this);
  }

  /// Acquires the mutex shared (reader side). Shared holds obey the same
  /// rank discipline: a reader acquiring upward is as deadlock-prone
  /// against a queued writer as an exclusive holder would be.
  void ReaderLock() XO_ACQUIRE_SHARED() {
    XO_LOCK_RANK_PUSH(this, rank_);
    mu_.lock_shared();
  }

  /// Releases a shared hold.
  void ReaderUnlock() XO_RELEASE_SHARED() {
    mu_.unlock_shared();
    XO_LOCK_RANK_POP(this);
  }

  /// This mutex's declared place in the hierarchy.
  LockRank rank() const { return rank_; }

 private:
  std::shared_mutex mu_;
  const LockRank rank_;
};

/// Scoped exclusive guard over an xo::Mutex (the std::lock_guard shape,
/// visible to the analysis).
class XO_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) XO_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() XO_RELEASE() { mu_->Unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// Scoped exclusive (writer) guard over an xo::SharedMutex.
class XO_SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex* mu) XO_ACQUIRE(mu) : mu_(mu) {
    mu_->Lock();
  }
  ~WriterLock() XO_RELEASE() { mu_->Unlock(); }
  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex* const mu_;
};

/// A condition variable usable with xo::Mutex. Wait/WaitFor release and
/// re-acquire the mutex through its rank-checked Lock/Unlock entry points,
/// so the runtime lock-rank detector's per-thread stack stays accurate
/// across the sleep (the waiter holds nothing while blocked, exactly as at
/// runtime). The capability annotations model the net effect — the caller
/// holds `mu` before and after — while the internal release/re-acquire is
/// opted out of the analysis (the standard condition-variable blind spot).
///
/// Spurious wakeups happen; always wait in a predicate loop. Signal/
/// SignalAll need not hold the mutex, but the waited-on state must be
/// written under it.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `*mu` and blocks until notified (or spuriously
  /// woken); re-acquires `*mu` before returning.
  void Wait(Mutex* mu) XO_REQUIRES(mu) {
    RankedLockAdapter adapter{mu};
    cv_.wait(adapter);
  }

  /// Wait() with a timeout. Returns false when the wait timed out (the
  /// mutex is re-acquired either way). A non-positive timeout polls.
  bool WaitFor(Mutex* mu, int64_t timeout_millis) XO_REQUIRES(mu) {
    RankedLockAdapter adapter{mu};
    return cv_.wait_for(adapter, std::chrono::milliseconds(timeout_millis)) ==
           std::cv_status::no_timeout;
  }

  /// Wakes one waiter.
  void Signal() { cv_.notify_one(); }

  /// Wakes every waiter.
  void SignalAll() { cv_.notify_all(); }

 private:
  /// BasicLockable adapter handing the wait's internal unlock/lock pair to
  /// the rank-checked xo::Mutex entry points. The methods are excluded
  /// from Thread Safety Analysis: they deliberately release a capability
  /// the enclosing Wait() is annotated as holding throughout.
  struct RankedLockAdapter {
    Mutex* mu;
    void lock() XO_NO_THREAD_SAFETY_ANALYSIS { mu->Lock(); }
    void unlock() XO_NO_THREAD_SAFETY_ANALYSIS { mu->Unlock(); }
  };

  std::condition_variable_any cv_;
};

/// Scoped shared (reader) guard over an xo::SharedMutex. The destructor's
/// generic release matches either mode, which is how scoped capabilities
/// are modelled by the analysis.
class XO_SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex* mu) XO_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_->ReaderLock();
  }
  ~ReaderLock() XO_RELEASE() { mu_->ReaderUnlock(); }
  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex* const mu_;
};

}  // namespace xo

#endif  // XORATOR_COMMON_MUTEX_H_
