#ifndef XORATOR_COMMON_MUTEX_H_
#define XORATOR_COMMON_MUTEX_H_

#include <mutex>
#include <shared_mutex>

#include "common/thread_annotations.h"

// Annotated synchronization primitives (DESIGN.md section 10).
//
// These wrap the standard mutexes with Clang Thread Safety Analysis
// capability annotations so that `XO_GUARDED_BY(mu_)` members and
// `XO_REQUIRES(mu_)` functions are statically checked on every Clang
// build. Library code must use these instead of raw `std::mutex` /
// `std::shared_mutex` / `std::lock_guard` / `std::unique_lock` — the
// repository lint (tools/lint, rule `raw-mutex`) enforces that; this file
// is the single allowlisted implementation site.
//
// The deliberately minimal surface (no timed waits, no condition
// variables, no native_handle) keeps every acquisition analyzable: a
// capability is only ever taken through `Lock`/`ReaderLock` members or
// the scoped RAII guards below, so the analysis sees every edge.

namespace xo {

/// An exclusive mutex carrying the "mutex" capability. Prefer the scoped
/// MutexLock guard over calling Lock/Unlock directly.
class XO_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  /// Acquires the mutex exclusively, blocking until available.
  void Lock() XO_ACQUIRE() { mu_.lock(); }

  /// Releases an exclusive hold.
  void Unlock() XO_RELEASE() { mu_.unlock(); }

  /// Attempts an exclusive acquisition; true if it was obtained.
  [[nodiscard]] bool TryLock() XO_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// A reader/writer mutex: many concurrent shared holders or one exclusive
/// holder. Carries the "shared_mutex" capability; shared acquisitions
/// satisfy XO_REQUIRES_SHARED, exclusive ones satisfy XO_REQUIRES.
class XO_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  /// Acquires the mutex exclusively (writer side).
  void Lock() XO_ACQUIRE() { mu_.lock(); }

  /// Releases an exclusive hold.
  void Unlock() XO_RELEASE() { mu_.unlock(); }

  /// Acquires the mutex shared (reader side).
  void ReaderLock() XO_ACQUIRE_SHARED() { mu_.lock_shared(); }

  /// Releases a shared hold.
  void ReaderUnlock() XO_RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

/// Scoped exclusive guard over an xo::Mutex (the std::lock_guard shape,
/// visible to the analysis).
class XO_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) XO_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() XO_RELEASE() { mu_->Unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// Scoped exclusive (writer) guard over an xo::SharedMutex.
class XO_SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex* mu) XO_ACQUIRE(mu) : mu_(mu) {
    mu_->Lock();
  }
  ~WriterLock() XO_RELEASE() { mu_->Unlock(); }
  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex* const mu_;
};

/// Scoped shared (reader) guard over an xo::SharedMutex. The destructor's
/// generic release matches either mode, which is how scoped capabilities
/// are modelled by the analysis.
class XO_SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex* mu) XO_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_->ReaderLock();
  }
  ~ReaderLock() XO_RELEASE() { mu_->ReaderUnlock(); }
  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex* const mu_;
};

}  // namespace xo

#endif  // XORATOR_COMMON_MUTEX_H_
