#ifndef XORATOR_COMMON_RESULT_H_
#define XORATOR_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace xorator {

/// Either a value of type `T` or a non-OK `Status` explaining why the value
/// could not be produced.
///
/// Usage:
///   Result<int> Parse(...);
///   XO_ASSIGN_OR_RETURN(int n, Parse(...));
template <typename T>
class Result {
 public:
  /// Constructs a successful result. Intentionally implicit so functions can
  /// `return value;`.
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}

  /// Constructs a failed result from a non-OK status. Intentionally implicit
  /// so functions can `return Status::ParseError(...);`.
  Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "Result(Status) requires a non-OK status");
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Precondition: ok().
  T& value() & {
    assert(ok());
    return *value_;
  }
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

#define XO_CONCAT_IMPL_(x, y) x##y
#define XO_CONCAT_(x, y) XO_CONCAT_IMPL_(x, y)

/// Evaluates `rexpr` (a `Result<T>`); on failure returns its status from the
/// enclosing function, otherwise moves the value into `lhs` (which may be a
/// declaration such as `auto v`).
#define XO_ASSIGN_OR_RETURN(lhs, rexpr)                              \
  XO_ASSIGN_OR_RETURN_IMPL_(XO_CONCAT_(_xo_result_, __LINE__), lhs,  \
                            rexpr)

#define XO_ASSIGN_OR_RETURN_IMPL_(result, lhs, rexpr) \
  auto result = (rexpr);                              \
  if (!result.ok()) return result.status();           \
  lhs = std::move(result).value();

}  // namespace xorator

#endif  // XORATOR_COMMON_RESULT_H_
