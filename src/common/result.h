#ifndef XORATOR_COMMON_RESULT_H_
#define XORATOR_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/lifetime.h"
#include "common/status.h"

namespace xorator {

/// Either a value of type `T` or a non-OK `Status` explaining why the value
/// could not be produced.
///
/// Like `Status`, the class is `[[nodiscard]]`: dropping a returned
/// `Result<T>` is a compile error, and in debug builds destroying a failed
/// result that was never inspected aborts (the unchecked-Status tracker
/// tracks the wrapped status; see status.h).
///
/// Usage:
///   Result<int> Parse(...);
///   ASSIGN_OR_RETURN(int n, Parse(...));
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Constructs a successful result. Intentionally implicit so functions can
  /// `return value;`.
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}

  /// Constructs a failed result from a non-OK status. Intentionally implicit
  /// so functions can `return Status::ParseError(...);`.
  Result(Status status) : status_(EnsureNotOk(std::move(status))) {}

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return status_.ok(); }

  /// Accessing the status counts as inspecting it: the caller takes over
  /// the must-check obligation (any copy it makes carries its own).
  const Status& status() const XO_LIFETIME_BOUND {
    status_.IgnoreError();
    return status_;
  }

  /// Precondition: ok(). The returned reference is lifetime-bound to the
  /// Result (DESIGN.md section 14): binding `Func().value()` to a
  /// reference, or returning it from the enclosing function, is a compile
  /// error on Clang builds. Move the value out (`std::move(r).value()`,
  /// what ASSIGN_OR_RETURN does) or copy it before the Result dies.
  T& value() & XO_LIFETIME_BOUND {
    assert(ok());
    return *value_;
  }
  const T& value() const& XO_LIFETIME_BOUND {
    assert(ok());
    return *value_;
  }
  T&& value() && XO_LIFETIME_BOUND {
    assert(ok());
    return std::move(*value_);
  }

  T& operator*() & XO_LIFETIME_BOUND { return value(); }
  const T& operator*() const& XO_LIFETIME_BOUND { return value(); }
  T* operator->() XO_LIFETIME_BOUND { return &value(); }
  const T* operator->() const XO_LIFETIME_BOUND { return &value(); }

 private:
  /// Asserts the precondition without leaving the stored status marked as
  /// checked (the final move re-arms the unchecked-Status tracker).
  [[nodiscard]] static Status EnsureNotOk(Status s) {
    assert(!s.ok() && "Result(Status) requires a non-OK status");
    return s;
  }

  Status status_;
  std::optional<T> value_;
};

}  // namespace xorator

#endif  // XORATOR_COMMON_RESULT_H_
