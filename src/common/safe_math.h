#ifndef XORATOR_COMMON_SAFE_MATH_H_
#define XORATOR_COMMON_SAFE_MATH_H_

#include <cstdint>
#include <limits>
#include <string>
#include <type_traits>

#include "common/result.h"

// Checked integer arithmetic for the data plane (DESIGN.md section 16).
//
// Every on-disk format this engine reads — slotted pages, B+-tree nodes,
// the varint row codec, WAL records, XADT fragment directories — is
// navigated by offsets and lengths decoded from bytes an attacker (or a
// failing disk) controls. Unchecked arithmetic on those values turns a
// corrupt byte into silent wraparound and an out-of-bounds access instead
// of a clean kCorruption. The rules:
//
//   * Arithmetic on decoded offsets/lengths goes through CheckedAdd /
//     CheckedSub / CheckedMul, which fail closed with kCorruption.
//   * Narrowing a wider value into a field goes through checked_cast,
//     which fails closed with kInvalidArgument (callers in decode paths
//     typically cannot reach it: they validate ranges first).
//   * Intentional wraparound — CRC folding, hash mixing, PRNG steps — is
//     spelled WrapAdd / WrapSub / WrapMul so `-fsanitize=integer` (the
//     Clang Sanitize build, see the top-level CMakeLists.txt) never fires
//     on it and a reader can grep every deliberate wrap site.
//
// All helpers are built on the `__builtin_*_overflow` intrinsics, which
// compile to a flag check (or a single `mul` + overflow test) and are
// defined for every integer type and sign mix; the sanitizers do not
// instrument them, which is exactly what makes WrapAdd an escape hatch.

namespace xo {

/// Checked `a + b`: fails closed with kCorruption on overflow. Use for any
/// sum involving a decoded offset or length.
template <typename T>
[[nodiscard]] inline xorator::Result<T> CheckedAdd(T a, std::type_identity_t<T> b) {
  static_assert(std::is_integral_v<T>);
  T out;
  if (__builtin_add_overflow(a, b, &out)) {
    return xorator::Status::Corruption("integer overflow in checked add");
  }
  return out;
}

/// Checked `a - b`: fails closed with kCorruption on overflow/underflow
/// (for unsigned types: whenever b > a).
template <typename T>
[[nodiscard]] inline xorator::Result<T> CheckedSub(T a, std::type_identity_t<T> b) {
  static_assert(std::is_integral_v<T>);
  T out;
  if (__builtin_sub_overflow(a, b, &out)) {
    return xorator::Status::Corruption("integer underflow in checked sub");
  }
  return out;
}

/// Checked `a * b`: fails closed with kCorruption on overflow. Use when
/// scaling a decoded count by an entry size.
template <typename T>
[[nodiscard]] inline xorator::Result<T> CheckedMul(T a, std::type_identity_t<T> b) {
  static_assert(std::is_integral_v<T>);
  T out;
  if (__builtin_mul_overflow(a, b, &out)) {
    return xorator::Status::Corruption("integer overflow in checked mul");
  }
  return out;
}

/// Checked narrowing/sign conversion: fails closed with kInvalidArgument
/// when `v` is not representable in `To`. The explicit conversion keeps
/// `-fsanitize=implicit-conversion` and `-Werror=shorten-64-to-32` quiet
/// while still refusing to silently truncate.
template <typename To, typename From>
[[nodiscard]] inline xorator::Result<To> checked_cast(From v) {
  static_assert(std::is_integral_v<To> && std::is_integral_v<From>);
  To out;
  if (__builtin_add_overflow(v, From{0}, &out)) {
    return xorator::Status::InvalidArgument(
        "value " + std::to_string(v) + " does not fit the destination type");
  }
  return out;
}

/// True if `v` is representable in `To` (the predicate form of
/// checked_cast, for callers that want their own error message).
template <typename To, typename From>
[[nodiscard]] inline bool FitsIn(From v) {
  static_assert(std::is_integral_v<To> && std::is_integral_v<From>);
  To out;
  return !__builtin_add_overflow(v, From{0}, &out);
}

/// Deliberately wrapping `a + b` (two's-complement). The escape hatch for
/// CRC folding, hash mixing and PRNG steps under `-fsanitize=integer`:
/// the intrinsic is never instrumented, and the name marks the wrap as
/// intended (DESIGN.md section 16).
template <typename T>
[[nodiscard]] constexpr T WrapAdd(T a, std::type_identity_t<T> b) {
  static_assert(std::is_integral_v<T>);
  T out;
  bool overflowed = __builtin_add_overflow(a, b, &out);
  static_cast<void>(overflowed);  // wrap is the point
  return out;
}

/// Deliberately wrapping `a - b`; see WrapAdd.
template <typename T>
[[nodiscard]] constexpr T WrapSub(T a, std::type_identity_t<T> b) {
  static_assert(std::is_integral_v<T>);
  T out;
  bool overflowed = __builtin_sub_overflow(a, b, &out);
  static_cast<void>(overflowed);  // wrap is the point
  return out;
}

/// Deliberately wrapping `a * b`; see WrapAdd.
template <typename T>
[[nodiscard]] constexpr T WrapMul(T a, std::type_identity_t<T> b) {
  static_assert(std::is_integral_v<T>);
  T out;
  bool overflowed = __builtin_mul_overflow(a, b, &out);
  static_cast<void>(overflowed);  // wrap is the point
  return out;
}

}  // namespace xo

#endif  // XORATOR_COMMON_SAFE_MATH_H_
