#ifndef XORATOR_COMMON_SPAN_H_
#define XORATOR_COMMON_SPAN_H_

#include <cassert>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <type_traits>

#include "common/lifetime.h"
#include "common/result.h"
#include "common/safe_math.h"

// Bounds-safe byte accessors for the data plane (DESIGN.md section 16).
//
// This header is the single place in the repository allowed to touch raw
// bytes with memcpy/memmove/pointer arithmetic (the `raw-bytes` lint rule
// in tools/lint enforces that for every decode-path file). Everything the
// engine decodes from disk or the wire — slotted pages, B+-tree nodes,
// WAL records, the varint row codec, XADT fragment directories — reads its
// bytes through one of three layers:
//
//   * `xo::Span<T>` — a pointer+length pair; its checked operations
//     (Subspan) fail closed with kCorruption instead of slicing out of
//     bounds.
//   * checked free functions (LoadU16/.../StoreU32/ViewBytes/CopyInto/
//     MoveWithin) — one-shot loads/stores at a caller-supplied offset,
//     every one validated against the span's length with overflow-proof
//     arithmetic (common/safe_math.h).
//   * `xo::BoundedReader` — a cursor that can never advance past the end:
//     ReadU*/ReadVarint/ReadBytes either return the value or fail closed
//     with kCorruption, and `position() <= size()` is a class invariant.
//
// Bytes are spelled `char` (not std::byte/uint8_t) because that is the
// currency of this codebase — std::string buffers, std::string_view
// views, PageRef::data() — and converting at every boundary would itself
// require the reinterpret_casts this layer exists to eliminate.
//
// Unchecked escape hatch: the `*Unchecked` functions at the bottom skip
// the range check for post-validation hot paths (RowView's accessors,
// whose offsets were all proven in-range by one up-front Parse). They
// assert in debug builds; a new call site needs the same "validated
// up front" argument or it belongs on the checked API.
//
// All multi-byte integers are little-endian on disk; every supported
// target is little-endian, and memcpy-based loads keep the accessors free
// of alignment UB either way.

namespace xo {

/// A non-owning pointer+length view over contiguous `T`s. The checked
/// subdivision operations return kCorruption instead of ever producing a
/// view outside [data, data+size). A Span borrows its storage: like
/// std::string_view, it must not outlive the owner (XO_GSL_POINTER makes
/// a span of a temporary owner a compile error under Clang).
template <typename T>
class XO_GSL_POINTER(T) Span {
 public:
  constexpr Span() = default;
  constexpr Span(T* data XO_LIFETIME_BOUND, size_t size)
      : data_(data), size_(size) {}

  constexpr T* data() const { return data_; }
  constexpr size_t size() const { return size_; }
  constexpr bool empty() const { return size_ == 0; }

  /// Debug-asserted element access (release builds do not check; use the
  /// checked free functions for untrusted indices).
  constexpr T& operator[](size_t i) const {
    assert(i < size_);
    return data_[i];
  }

  /// Checked slice [off, off+len): fails closed with kCorruption when the
  /// range escapes the span. Overflow-proof (off and len are validated
  /// independently against size()).
  [[nodiscard]] xorator::Result<Span> Subspan(size_t off, size_t len) const {
    if (off > size_ || len > size_ - off) {
      return xorator::Status::Corruption("span slice out of bounds");
    }
    return Span(data_ + off, len);
  }

  /// Implicit const view (Span<char> -> Span<const char>).
  constexpr operator Span<const T>() const {
    return Span<const T>(data_, size_);
  }

 private:
  T* data_ = nullptr;
  size_t size_ = 0;
};

/// The byte-span aliases the data plane trades in.
using ByteSpan = Span<const char>;
using MutableByteSpan = Span<char>;

/// A ByteSpan over a string_view's bytes (same storage, same lifetime).
inline ByteSpan SpanOf(std::string_view s XO_LIFETIME_BOUND) {
  return ByteSpan(s.data(), s.size());
}

/// The string_view over a ByteSpan's bytes (same storage, same lifetime).
inline std::string_view ViewOf(ByteSpan s XO_LIFETIME_BOUND) {
  return std::string_view(s.data(), s.size());
}

namespace internal {
/// True when [off, off+len) lies inside a span of `size` bytes, phrased
/// so no intermediate sum can wrap.
constexpr bool InBounds(size_t size, size_t off, size_t len) {
  return off <= size && len <= size - off;
}
}  // namespace internal

// ---------------------------------------------------------------------------
// Checked fixed-width loads/stores (little-endian).
// ---------------------------------------------------------------------------

/// Loads a little-endian `T` at `off`; kCorruption when the field escapes
/// the span.
template <typename T>
[[nodiscard]] inline xorator::Result<T> LoadFixed(ByteSpan s, size_t off) {
  static_assert(std::is_trivially_copyable_v<T>);
  if (!internal::InBounds(s.size(), off, sizeof(T))) {
    return xorator::Status::Corruption("fixed-width load out of bounds");
  }
  T v;
  std::memcpy(&v, s.data() + off, sizeof(T));
  return v;
}

[[nodiscard]] inline xorator::Result<uint8_t> LoadU8(ByteSpan s, size_t off) {
  return LoadFixed<uint8_t>(s, off);
}
[[nodiscard]] inline xorator::Result<uint16_t> LoadU16(ByteSpan s,
                                                       size_t off) {
  return LoadFixed<uint16_t>(s, off);
}
[[nodiscard]] inline xorator::Result<uint32_t> LoadU32(ByteSpan s,
                                                       size_t off) {
  return LoadFixed<uint32_t>(s, off);
}
[[nodiscard]] inline xorator::Result<uint64_t> LoadU64(ByteSpan s,
                                                       size_t off) {
  return LoadFixed<uint64_t>(s, off);
}

/// Stores a little-endian `T` at `off`; kCorruption when the field escapes
/// the span (the store is not performed).
template <typename T>
[[nodiscard]] inline xorator::Status StoreFixed(MutableByteSpan s, size_t off,
                                                T v) {
  static_assert(std::is_trivially_copyable_v<T>);
  if (!internal::InBounds(s.size(), off, sizeof(T))) {
    return xorator::Status::Corruption("fixed-width store out of bounds");
  }
  std::memcpy(s.data() + off, &v, sizeof(T));
  return xorator::Status::OK();
}

[[nodiscard]] inline xorator::Status StoreU16(MutableByteSpan s, size_t off,
                                              uint16_t v) {
  return StoreFixed<uint16_t>(s, off, v);
}
[[nodiscard]] inline xorator::Status StoreU32(MutableByteSpan s, size_t off,
                                              uint32_t v) {
  return StoreFixed<uint32_t>(s, off, v);
}
[[nodiscard]] inline xorator::Status StoreU64(MutableByteSpan s, size_t off,
                                              uint64_t v) {
  return StoreFixed<uint64_t>(s, off, v);
}

// ---------------------------------------------------------------------------
// Checked bulk views and copies.
// ---------------------------------------------------------------------------

/// A view of `len` bytes at `off`; kCorruption when the range escapes the
/// span. The view borrows the span's storage.
[[nodiscard]] inline xorator::Result<std::string_view> ViewBytes(
    ByteSpan s XO_LIFETIME_BOUND, size_t off, size_t len) {
  if (!internal::InBounds(s.size(), off, len)) {
    return xorator::Status::Corruption("byte range out of bounds");
  }
  return std::string_view(s.data() + off, len);
}

/// Copies `src` into the span at `off`; kCorruption when it does not fit
/// (nothing is written).
[[nodiscard]] inline xorator::Status CopyInto(MutableByteSpan dst, size_t off,
                                              std::string_view src) {
  if (!internal::InBounds(dst.size(), off, src.size())) {
    return xorator::Status::Corruption("byte copy out of bounds");
  }
  std::memcpy(dst.data() + off, src.data(), src.size());
  return xorator::Status::OK();
}

/// memmove within one span (entry shifts in B+-tree nodes); kCorruption
/// when either range escapes the span (nothing is moved).
[[nodiscard]] inline xorator::Status MoveWithin(MutableByteSpan s,
                                                size_t dst_off, size_t src_off,
                                                size_t len) {
  if (!internal::InBounds(s.size(), dst_off, len) ||
      !internal::InBounds(s.size(), src_off, len)) {
    return xorator::Status::Corruption("byte move out of bounds");
  }
  std::memmove(s.data() + dst_off, s.data() + src_off, len);
  return xorator::Status::OK();
}

/// Zero-fills [off, off+len); kCorruption when the range escapes the span.
[[nodiscard]] inline xorator::Status FillZero(MutableByteSpan s, size_t off,
                                              size_t len) {
  if (!internal::InBounds(s.size(), off, len)) {
    return xorator::Status::Corruption("byte fill out of bounds");
  }
  std::memset(s.data() + off, 0, len);
  return xorator::Status::OK();
}

// ---------------------------------------------------------------------------
// Append-side encode helpers (little-endian), so encode paths need no
// reinterpret_cast either.
// ---------------------------------------------------------------------------

/// Appends `v`'s little-endian bytes to `*out`.
template <typename T>
inline void AppendFixed(std::string* out, T v) {
  static_assert(std::is_trivially_copyable_v<T>);
  char buf[sizeof(T)];
  std::memcpy(buf, &v, sizeof(T));
  out->append(buf, sizeof(T));
}

inline void AppendU16(std::string* out, uint16_t v) { AppendFixed(out, v); }
inline void AppendU32(std::string* out, uint32_t v) { AppendFixed(out, v); }
inline void AppendU64(std::string* out, uint64_t v) { AppendFixed(out, v); }

// ---------------------------------------------------------------------------
// BoundedReader: a cursor that cannot escape its bytes.
// ---------------------------------------------------------------------------

/// Sequential decoder over a byte buffer. Class invariant:
/// `position() <= size()` always; every Read*/Skip either consumes exactly
/// what it returns or fails closed with kCorruption and leaves the cursor
/// where it was. The reader borrows the buffer (XO_GSL_POINTER): views it
/// hands out (ReadBytes) share the buffer's lifetime, not the reader's.
class XO_GSL_POINTER(char) BoundedReader {
 public:
  BoundedReader() = default;
  explicit BoundedReader(std::string_view bytes XO_LIFETIME_BOUND)
      : bytes_(bytes) {}
  explicit BoundedReader(ByteSpan bytes XO_LIFETIME_BOUND)
      : bytes_(bytes.data(), bytes.size()) {}

  size_t position() const { return pos_; }
  size_t size() const { return bytes_.size(); }
  size_t remaining() const { return bytes_.size() - pos_; }
  bool AtEnd() const { return pos_ == bytes_.size(); }

  /// Moves the cursor to `pos`; kCorruption past the end.
  [[nodiscard]] xorator::Status SeekTo(size_t pos) {
    if (pos > bytes_.size()) {
      return xorator::Status::Corruption("seek past end of buffer");
    }
    pos_ = pos;
    return xorator::Status::OK();
  }

  /// Advances over `n` bytes; kCorruption when fewer remain.
  [[nodiscard]] xorator::Status Skip(size_t n) {
    if (n > remaining()) {
      return xorator::Status::Corruption("skip past end of buffer");
    }
    pos_ += n;
    return xorator::Status::OK();
  }

  /// Reads a little-endian fixed-width `T`; kCorruption when truncated.
  template <typename T>
  [[nodiscard]] xorator::Result<T> ReadFixed() {
    static_assert(std::is_trivially_copyable_v<T>);
    if (sizeof(T) > remaining()) {
      return xorator::Status::Corruption("truncated fixed-width field");
    }
    T v;
    std::memcpy(&v, bytes_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  [[nodiscard]] xorator::Result<uint8_t> ReadU8() {
    return ReadFixed<uint8_t>();
  }
  [[nodiscard]] xorator::Result<uint16_t> ReadU16() {
    return ReadFixed<uint16_t>();
  }
  [[nodiscard]] xorator::Result<uint32_t> ReadU32() {
    return ReadFixed<uint32_t>();
  }
  [[nodiscard]] xorator::Result<uint64_t> ReadU64() {
    return ReadFixed<uint64_t>();
  }

  /// Reads a LEB128 varint (common/varint.h wire format); kCorruption on a
  /// buffer ending mid-varint or a varint wider than 64 bits.
  [[nodiscard]] xorator::Result<uint64_t> ReadVarint() {
    uint64_t value = 0;
    unsigned shift = 0;
    size_t p = pos_;
    while (p < bytes_.size()) {
      const uint8_t byte = static_cast<uint8_t>(bytes_[p++]);
      value |= static_cast<uint64_t>(byte & 0x7F) << shift;
      if ((byte & 0x80) == 0) {
        pos_ = p;
        return value;
      }
      shift += 7;
      if (shift > 63) {
        return xorator::Status::Corruption("varint too long");
      }
    }
    return xorator::Status::Corruption("truncated varint");
  }

  /// Returns the next `n` bytes and advances; kCorruption when fewer
  /// remain. The view borrows the underlying buffer.
  [[nodiscard]] xorator::Result<std::string_view> ReadBytes(size_t n)
      XO_LIFETIME_BOUND {
    if (n > remaining()) {
      return xorator::Status::Corruption("truncated byte field");
    }
    std::string_view out = bytes_.substr(pos_, n);
    pos_ += n;
    return out;
  }

  /// Reads a varint length then that many bytes (the codec's string wire
  /// shape); kCorruption when the length outruns the buffer.
  [[nodiscard]] xorator::Result<std::string_view> ReadLengthPrefixedBytes()
      XO_LIFETIME_BOUND {
    const size_t before = pos_;
    auto len = ReadVarint();
    if (!len.ok()) return len.status();
    if (*len > remaining()) {
      pos_ = before;
      return xorator::Status::Corruption("length prefix outruns buffer");
    }
    return ReadBytes(static_cast<size_t>(*len));
  }

  /// The unread tail (borrows the underlying buffer).
  [[nodiscard]] std::string_view rest() const XO_LIFETIME_BOUND {
    return bytes_.substr(pos_);
  }

 private:
  std::string_view bytes_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Post-validation accessors (debug-asserted, unchecked in release).
// ---------------------------------------------------------------------------

/// Load for offsets a validating pass already proved in range (RowView's
/// accessors after Parse). Asserts in debug; a release-build caller that
/// cannot point at its validating pass must use LoadFixed instead.
template <typename T>
inline T LoadFixedUnchecked(std::string_view s, size_t off) {
  static_assert(std::is_trivially_copyable_v<T>);
  assert(internal::InBounds(s.size(), off, sizeof(T)));
  T v;
  std::memcpy(&v, s.data() + off, sizeof(T));
  return v;
}

/// Store counterpart of LoadFixedUnchecked: for offsets the caller already
/// proved in range (constant header offsets, Fits()-guarded inserts).
template <typename T>
inline void StoreFixedUnchecked(MutableByteSpan s, size_t off, T v) {
  static_assert(std::is_trivially_copyable_v<T>);
  assert(internal::InBounds(s.size(), off, sizeof(T)));
  std::memcpy(s.data() + off, &v, sizeof(T));
}

/// Zero-fill counterpart, same proven-in-range contract.
inline void FillZeroUnchecked(MutableByteSpan s, size_t off, size_t len) {
  assert(internal::InBounds(s.size(), off, len));
  std::memset(s.data() + off, 0, len);
}

}  // namespace xo

#endif  // XORATOR_COMMON_SPAN_H_
