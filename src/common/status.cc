#include "common/status.h"

#include <cstdio>
#include <cstdlib>

namespace xorator {

namespace internal {

void AbortOnUncheckedStatus(StatusCode code, const std::string& message,
                            const char* file, unsigned line) {
  std::fprintf(stderr,
               "xorator: non-OK Status dropped without being checked: "
               "%.*s: %s (created at %s:%u)\n",
               static_cast<int>(StatusCodeToString(code).size()),
               StatusCodeToString(code).data(), message.c_str(), file, line);
  std::abort();
}

}  // namespace internal

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code_));
  out += ": ";
  out += message_;
  if (retry_after_millis_ > 0) {
    out += " [retry after " + std::to_string(retry_after_millis_) + "ms]";
  }
  return out;
}

}  // namespace xorator
