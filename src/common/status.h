#ifndef XORATOR_COMMON_STATUS_H_
#define XORATOR_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace xorator {

/// Machine-readable category of a `Status`.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kParseError,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kIOError,
  kNotImplemented,
  kInternal,
  /// Stored data failed an integrity check (checksum mismatch, torn page,
  /// malformed on-disk structure). Never retryable.
  kCorruption,
  /// A transient I/O failure; the operation may succeed if retried (the
  /// buffer pool retries these with bounded backoff).
  kUnavailable,
};

/// Returns a human-readable name for `code` ("OK", "ParseError", ...).
std::string_view StatusCodeToString(StatusCode code);

/// Outcome of an operation that can fail.
///
/// The library does not use exceptions; fallible functions return a `Status`
/// (or a `Result<T>`, see result.h) in the style of Arrow and RocksDB.
/// A default-constructed `Status` is OK and carries no message.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  /// Factory for the singleton-like OK status.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "<Code>: <message>" rendering for logs and test failures.
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Evaluates `expr` (a `Status`); returns it from the enclosing function if
/// it is not OK.
#define XO_RETURN_NOT_OK(expr)                        \
  do {                                                \
    ::xorator::Status _xo_status = (expr);            \
    if (!_xo_status.ok()) return _xo_status;          \
  } while (false)

}  // namespace xorator

#endif  // XORATOR_COMMON_STATUS_H_
