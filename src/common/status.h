#ifndef XORATOR_COMMON_STATUS_H_
#define XORATOR_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

/// XORATOR_STATUS_CHECK enables the debug unchecked-Status tracker
/// (RocksDB-style): every non-OK `Status` must be inspected — via `ok()`,
/// `code()`, `message()`, `ToString()`, or an explicit `IgnoreError()` —
/// before it is destroyed or overwritten, else the process aborts and
/// prints the site that created the dropped status. The tracker is on in
/// builds without NDEBUG (Debug, Sanitize, ThreadSanitize) and compiled
/// out elsewhere; define XORATOR_STATUS_CHECK=0/1 to override.
#if !defined(XORATOR_STATUS_CHECK)
#if !defined(NDEBUG)
#define XORATOR_STATUS_CHECK 1
#else
#define XORATOR_STATUS_CHECK 0
#endif
#endif

#if XORATOR_STATUS_CHECK
#include <source_location>
#endif

namespace xorator {

/// Machine-readable category of a `Status`.
///
/// Failure taxonomy (DESIGN.md §13): every code falls into one of three
/// classes that the resilience layer keys off.
///   * Retryable — the same operation may succeed if simply re-issued
///     (`kUnavailable` only). `BufferPool` absorbs these with bounded
///     backoff via `Status::IsRetryable()`.
///   * Degradable — the storage underneath the engine misbehaved in a way
///     retrying will not fix (`kIOError`, `kCorruption`). These feed the
///     `EngineHealth` state machine: corruption quarantines the page,
///     WAL-append / checkpoint failures latch read-only mode
///     (`Status::IsDegradable()`).
///   * Caller errors and governed stops — everything else (bad SQL, guard
///     trips, logic errors). The engine itself stays healthy.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kParseError,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  /// A non-transient I/O failure (disk gone, short write, sync failure).
  /// Not retryable, but degradable: the engine can often keep serving
  /// reads from intact pages after latching read-only mode.
  kIOError,
  kNotImplemented,
  kInternal,
  /// Stored data failed an integrity check (checksum mismatch, torn page,
  /// malformed on-disk structure). Never retryable; degradable — the
  /// offending page is quarantined and scans may elect to skip it.
  kCorruption,
  /// A transient I/O failure; the operation may succeed if retried (the
  /// buffer pool retries these with bounded backoff). Also returned by
  /// mutation entry points of an engine latched read-only — retryable in
  /// the wider sense that TryRecover() may re-arm the engine.
  kUnavailable,
  /// The query's deadline (QueryOptions::deadline_millis) elapsed before it
  /// finished. The statement unwound cleanly; re-running with a longer
  /// deadline may succeed.
  kDeadlineExceeded,
  /// The query was cooperatively cancelled (Database::Cancel or
  /// QueryGuard::Cancel) and unwound at its next guard checkpoint.
  kCancelled,
  /// The query exceeded its tracked-memory byte budget
  /// (QueryOptions::max_memory_bytes). Deterministic, not retryable at the
  /// same budget.
  kResourceExhausted,
};

/// Returns a human-readable name for `code` ("OK", "ParseError", ...).
std::string_view StatusCodeToString(StatusCode code);

namespace internal {
/// Prints the dropped status (code, message, creation site) to stderr and
/// aborts. Out of line so the header stays light.
[[noreturn]] void AbortOnUncheckedStatus(StatusCode code,
                                         const std::string& message,
                                         const char* file, unsigned line);
}  // namespace internal

/// Outcome of an operation that can fail.
///
/// The library does not use exceptions; fallible functions return a `Status`
/// (or a `Result<T>`, see result.h) in the style of Arrow and RocksDB. A
/// default-constructed `Status` is OK and carries no message.
///
/// Error-handling contract (DESIGN.md §6): the class is `[[nodiscard]]`, so
/// dropping a returned `Status` on the floor is a compile error
/// (`-Werror=unused-result`). A deliberate drop must be annotated with
/// `XO_DISCARD_STATUS(expr, "why it is safe")`. In debug builds the
/// unchecked-Status tracker (see XORATOR_STATUS_CHECK above) additionally
/// aborts when a non-OK status held in a local or member is destroyed
/// without ever being inspected — the class of drop `[[nodiscard]]` cannot
/// see.
class [[nodiscard]] Status {
 public:
#if XORATOR_STATUS_CHECK
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message,
         std::source_location loc = std::source_location::current())
      : code_(code),
        message_(std::move(message)),
        file_(loc.file_name()),
        line_(loc.line()),
        checked_(code == StatusCode::kOk) {}

  /// A copy carries its own must-check obligation when non-OK; the source
  /// keeps its state (copying is not inspecting).
  Status(const Status& other)
      : code_(other.code_),
        message_(other.message_),
        retry_after_millis_(other.retry_after_millis_),
        file_(other.file_),
        line_(other.line_),
        checked_(other.code_ == StatusCode::kOk) {}
  Status& operator=(const Status& other) {
    if (this != &other) {
      EnforceChecked();
      code_ = other.code_;
      message_ = other.message_;
      retry_after_millis_ = other.retry_after_millis_;
      file_ = other.file_;
      line_ = other.line_;
      checked_ = other.code_ == StatusCode::kOk;
    }
    return *this;
  }

  /// A move transfers the must-check obligation to the destination and
  /// leaves the source OK-and-checked.
  Status(Status&& other) noexcept
      : code_(other.code_),
        message_(std::move(other.message_)),
        retry_after_millis_(other.retry_after_millis_),
        file_(other.file_),
        line_(other.line_),
        checked_(other.code_ == StatusCode::kOk) {
    other.code_ = StatusCode::kOk;
    other.retry_after_millis_ = 0;
    other.checked_ = true;
  }
  Status& operator=(Status&& other) noexcept {
    if (this != &other) {
      EnforceChecked();
      code_ = other.code_;
      message_ = std::move(other.message_);
      retry_after_millis_ = other.retry_after_millis_;
      file_ = other.file_;
      line_ = other.line_;
      checked_ = other.code_ == StatusCode::kOk;
      other.code_ = StatusCode::kOk;
      other.retry_after_millis_ = 0;
      other.checked_ = true;
    }
    return *this;
  }

  ~Status() { EnforceChecked(); }
#else
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;

  /// Moves leave the source OK with no retry-after hint in every build —
  /// a defaulted move would leave the source's code and hint behind, so a
  /// moved-from status could still answer IsRetryable() == true and
  /// confuse a retry loop that reuses it.
  Status(Status&& other) noexcept
      : code_(other.code_),
        message_(std::move(other.message_)),
        retry_after_millis_(other.retry_after_millis_) {
    other.code_ = StatusCode::kOk;
    other.retry_after_millis_ = 0;
  }
  Status& operator=(Status&& other) noexcept {
    if (this != &other) {
      code_ = other.code_;
      message_ = std::move(other.message_);
      retry_after_millis_ = other.retry_after_millis_;
      other.code_ = StatusCode::kOk;
      other.retry_after_millis_ = 0;
    }
    return *this;
  }
#endif

  /// Factory for the singleton-like OK status.
  [[nodiscard]] static Status OK() { return Status(); }

#if XORATOR_STATUS_CHECK
#define XORATOR_STATUS_FACTORY_(Name, Code)                 \
  [[nodiscard]] static Status Name(                         \
      std::string msg,                                      \
      std::source_location loc =                            \
          std::source_location::current()) {                \
    return Status(StatusCode::Code, std::move(msg), loc);   \
  }
#else
#define XORATOR_STATUS_FACTORY_(Name, Code)             \
  [[nodiscard]] static Status Name(std::string msg) {   \
    return Status(StatusCode::Code, std::move(msg));    \
  }
#endif
  XORATOR_STATUS_FACTORY_(InvalidArgument, kInvalidArgument)
  XORATOR_STATUS_FACTORY_(ParseError, kParseError)
  XORATOR_STATUS_FACTORY_(NotFound, kNotFound)
  XORATOR_STATUS_FACTORY_(AlreadyExists, kAlreadyExists)
  XORATOR_STATUS_FACTORY_(OutOfRange, kOutOfRange)
  XORATOR_STATUS_FACTORY_(IOError, kIOError)
  XORATOR_STATUS_FACTORY_(NotImplemented, kNotImplemented)
  XORATOR_STATUS_FACTORY_(Internal, kInternal)
  XORATOR_STATUS_FACTORY_(Corruption, kCorruption)
  XORATOR_STATUS_FACTORY_(Unavailable, kUnavailable)
  XORATOR_STATUS_FACTORY_(DeadlineExceeded, kDeadlineExceeded)
  XORATOR_STATUS_FACTORY_(Cancelled, kCancelled)
  XORATOR_STATUS_FACTORY_(ResourceExhausted, kResourceExhausted)
#undef XORATOR_STATUS_FACTORY_

  bool ok() const {
    MarkChecked();
    return code_ == StatusCode::kOk;
  }

  /// True for failures worth re-issuing unchanged: transient I/O faults
  /// (`kUnavailable`), plus any status that carries an explicit
  /// retry-after hint (the network front end's admission rejections are
  /// `kResourceExhausted` *with* a hint — "the queue is full, come back in
  /// N ms" — while a guard's budget trip is `kResourceExhausted` without
  /// one and stays non-retryable). The buffer pool's retry loop and the
  /// client library's backoff layer are both keyed on this, not on the raw
  /// code, so the retry policy and the taxonomy stay in one place (see the
  /// StatusCode comment). Inspecting the class counts as checking the
  /// status.
  bool IsRetryable() const {
    MarkChecked();
    return code_ == StatusCode::kUnavailable || retry_after_millis_ > 0;
  }

  /// Optional retry-after hint in milliseconds (0 = no hint). Set by
  /// producers that know when retrying could help: the server's admission
  /// control ("queue full, back off this long") and the read-only health
  /// latch ("TryRecover() may re-arm the engine; don't hot-retry"). The
  /// hint survives the wire protocol (server/protocol.h, ERROR frames), so
  /// a remote client's backoff layer sees exactly what a local caller
  /// would. Inspecting the hint counts as checking the status.
  uint32_t retry_after_millis() const {
    MarkChecked();
    return retry_after_millis_;
  }

  /// Attaches a retry-after hint (builder style, for use at the creation
  /// site: `Status::ResourceExhausted("...").WithRetryAfter(25)`). A hint
  /// makes the status IsRetryable(); it does not mark it checked.
  Status&& WithRetryAfter(uint32_t millis) && {
    retry_after_millis_ = millis;
    return std::move(*this);
  }

  /// True for storage failures the engine should degrade on rather than
  /// retry: permanent I/O errors and integrity-check failures
  /// (`kIOError`, `kCorruption`). These feed EngineHealth (page
  /// quarantine, read-only latching — DESIGN.md §13). Inspecting the
  /// class counts as checking the status.
  bool IsDegradable() const {
    MarkChecked();
    return code_ == StatusCode::kIOError || code_ == StatusCode::kCorruption;
  }
  StatusCode code() const {
    MarkChecked();
    return code_;
  }
  const std::string& message() const {
    MarkChecked();
    return message_;
  }

  /// "<Code>: <message>" rendering for logs and test failures.
  std::string ToString() const;

  /// Marks this status deliberately inspected-and-ignored, satisfying the
  /// debug unchecked-Status tracker. Use through `XO_DISCARD_STATUS`, which
  /// also records why the drop is safe.
  void IgnoreError() const { MarkChecked(); }

  /// Adopts `other` if this status is OK, else keeps the earlier error and
  /// marks `other` checked — the idiom for combining statuses in cleanup
  /// paths where only the first failure is worth reporting.
  void Update(Status other) {
    if (code_ == StatusCode::kOk) {
      *this = std::move(other);
    } else {
      other.IgnoreError();
    }
  }

 private:
#if XORATOR_STATUS_CHECK
  void MarkChecked() const { checked_ = true; }
  void EnforceChecked() const {
    if (!checked_ && code_ != StatusCode::kOk) {
      internal::AbortOnUncheckedStatus(code_, message_, file_, line_);
    }
  }
#else
  void MarkChecked() const {}
  void EnforceChecked() const {}
#endif

  StatusCode code_;
  std::string message_;
  /// Retry-after hint in milliseconds; 0 means none. See
  /// retry_after_millis().
  uint32_t retry_after_millis_ = 0;
#if XORATOR_STATUS_CHECK
  const char* file_ = "";
  unsigned line_ = 0;
  mutable bool checked_ = true;
#endif
};

namespace internal {
/// XO_DISCARD_STATUS helpers: mark either a `Status` or anything with a
/// `.status()` accessor (i.e. `Result<T>`) as deliberately ignored.
inline void MarkDiscarded(const Status& s) { s.IgnoreError(); }
template <typename R>
void MarkDiscarded(const R& r) {
  r.status().IgnoreError();
}

/// RETURN_IF_ERROR adapter: materializes a `Status` the macro owns, so the
/// argument may safely be a reference into a temporary (e.g.
/// `Fallible().status()`, which dangles the moment the full-expression
/// ends). The lvalue overload also marks the caller's object checked — the
/// macro inspects the copy on its behalf; the rvalue overload just moves,
/// transferring the obligation.
inline Status AdoptStatus(const Status& s) {
  s.IgnoreError();
  return s;  // the copy carries the obligation the macro satisfies
}
inline Status AdoptStatus(Status&& s) { return std::move(s); }
}  // namespace internal

#define XO_CONCAT_IMPL_(x, y) x##y
#define XO_CONCAT_(x, y) XO_CONCAT_IMPL_(x, y)

/// Evaluates `expr` (a `Status`); returns it from the enclosing function if
/// it is not OK. Safe for lvalues (the original is marked checked, not just
/// a copy) and for references into temporaries such as
/// `Fallible().status()` (the status is copied out before the temporary
/// dies) — see internal::AdoptStatus.
#define RETURN_IF_ERROR(expr)                                       \
  do {                                                              \
    ::xorator::Status _xo_status =                                  \
        ::xorator::internal::AdoptStatus((expr));                   \
    if (!_xo_status.ok()) return _xo_status;                        \
  } while (false)

/// Evaluates `rexpr` (a `Result<T>`); on failure returns its status from
/// the enclosing function, otherwise moves the value into `lhs` (which may
/// be a declaration such as `auto v`).
#define ASSIGN_OR_RETURN(lhs, rexpr)                             \
  XO_ASSIGN_OR_RETURN_IMPL_(XO_CONCAT_(_xo_result_, __LINE__), lhs, rexpr)

#define XO_ASSIGN_OR_RETURN_IMPL_(result, lhs, rexpr) \
  auto result = (rexpr);                              \
  if (!result.ok()) return result.status();           \
  lhs = std::move(result).value();

/// Historical spellings, kept as aliases of the canonical macros above.
#define XO_RETURN_NOT_OK(expr) RETURN_IF_ERROR(expr)
#define XO_ASSIGN_OR_RETURN(lhs, rexpr) ASSIGN_OR_RETURN(lhs, rexpr)

/// Deliberately discards the `Status` (or `Result<T>`) produced by `expr`.
/// `why` must be a non-empty string literal stating the invariant that
/// makes the drop safe; it is compiled out, but its presence is enforced
/// here and by tools/lint (bare `(void)` call discards are banned).
/// Satisfies both `[[nodiscard]]` and the debug unchecked-Status tracker.
#define XO_DISCARD_STATUS(expr, why)                                      \
  do {                                                                    \
    static_assert(sizeof(why) > 1, "XO_DISCARD_STATUS needs a reason");   \
    ::xorator::internal::MarkDiscarded((expr));                           \
  } while (false)

}  // namespace xorator

#endif  // XORATOR_COMMON_STATUS_H_
