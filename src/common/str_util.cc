#include "common/str_util.h"

#include <cctype>
#include <cstdint>

#include "common/safe_math.h"

namespace xorator {

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

bool Contains(std::string_view haystack, std::string_view needle) {
  return haystack.find(needle) != std::string_view::npos;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view StripWhitespace(std::string_view s XO_LIFETIME_BOUND) {
  size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool LikeMatch(std::string_view value, std::string_view pattern) {
  // Iterative wildcard matcher with backtracking on the last '%'.
  size_t v = 0, p = 0;
  size_t star_p = std::string_view::npos, star_v = 0;
  while (v < value.size()) {
    if (p < pattern.size() && (pattern[p] == '_' || pattern[p] == value[v])) {
      ++v;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_v = v;
    } else if (star_p != std::string_view::npos) {
      p = star_p + 1;
      v = ++star_v;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

uint64_t Hash64(std::string_view s) {
  // FNV-1a; the multiply wraps by design (xo::WrapMul keeps
  // -fsanitize=integer quiet and marks the wrap as intended).
  uint64_t h = 14695981039346656037ULL;
  for (unsigned char c : s) {
    h ^= c;
    h = xo::WrapMul(h, 1099511628211ULL);
  }
  return h;
}

}  // namespace xorator
