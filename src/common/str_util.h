#ifndef XORATOR_COMMON_STR_UTIL_H_
#define XORATOR_COMMON_STR_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/lifetime.h"

namespace xorator {

/// ASCII-lowercases `s` (XML names in this codebase are ASCII).
std::string ToLower(std::string_view s);

/// ASCII-uppercases `s`.
std::string ToUpper(std::string_view s);

/// True if `haystack` contains `needle` (case-sensitive). An empty needle
/// matches everything.
bool Contains(std::string_view haystack, std::string_view needle);

/// Case-insensitive ASCII string equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Splits on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Strips ASCII whitespace from both ends. The result is a sub-view of
/// `s`: it is lifetime-bound to the viewed characters, so Clang builds
/// reject stripping a temporary string in a single statement.
std::string_view StripWhitespace(std::string_view s XO_LIFETIME_BOUND);

/// SQL LIKE matching with `%` (any run) and `_` (any one char) wildcards.
bool LikeMatch(std::string_view value, std::string_view pattern);

/// 64-bit FNV-1a hash, used for hash joins and string index keys.
uint64_t Hash64(std::string_view s);

}  // namespace xorator

#endif  // XORATOR_COMMON_STR_UTIL_H_
