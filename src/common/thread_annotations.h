#ifndef XORATOR_COMMON_THREAD_ANNOTATIONS_H_
#define XORATOR_COMMON_THREAD_ANNOTATIONS_H_

// Clang Thread Safety Analysis annotations (DESIGN.md section 10).
//
// These macros attach capability annotations to mutexes, guarded data and
// the functions that touch them, turning the repository's lock discipline
// into a compile-time proof: under Clang, `-Wthread-safety` (enabled as an
// error for every target by the top-level CMakeLists.txt) rejects any code
// path that reads or writes a guarded member without holding the declared
// capability, acquires locks out of order against declared ordering, or
// forgets to release what it acquired. Under other compilers the macros
// compile to nothing, so the annotations are free documentation.
//
// They are macros (not attributes spelled inline) for three reasons:
//   1. GCC has no thread-safety analysis; `__attribute__((guarded_by(x)))`
//      is an error there, so the spelling must vanish on non-Clang builds.
//   2. The underlying attribute names have churned across Clang releases
//      (e.g. `exclusive_locks_required` became `requires_capability`);
//      one macro layer isolates the repository from that churn.
//   3. Grep-ability: `XO_GUARDED_BY` finds every guarded field in the tree.
//
// Use `xo::Mutex` / `xo::SharedMutex` (common/mutex.h) rather than raw
// standard mutexes: the wrappers carry the capability annotations these
// macros reference, and the repository lint (tools/lint) rejects raw
// `std::mutex` & friends in library code.

#if defined(__clang__) && !defined(SWIG)
#define XO_THREAD_ANNOTATION_ATTRIBUTE_(x) __attribute__((x))
#else
#define XO_THREAD_ANNOTATION_ATTRIBUTE_(x)  // no-op outside Clang
#endif

// -- Type annotations. ------------------------------------------------------

/// Marks a type as a lockable capability (e.g. a mutex class).
#define XO_CAPABILITY(x) XO_THREAD_ANNOTATION_ATTRIBUTE_(capability(x))

/// Marks an RAII type whose constructor acquires and destructor releases a
/// capability (e.g. xo::MutexLock).
#define XO_SCOPED_CAPABILITY XO_THREAD_ANNOTATION_ATTRIBUTE_(scoped_lockable)

// -- Data annotations. ------------------------------------------------------

/// The annotated member may only be accessed while holding capability `x`
/// (shared for reads, exclusive for writes).
#define XO_GUARDED_BY(x) XO_THREAD_ANNOTATION_ATTRIBUTE_(guarded_by(x))

/// Like XO_GUARDED_BY, but guards the data *pointed to* by the annotated
/// pointer rather than the pointer itself.
#define XO_PT_GUARDED_BY(x) XO_THREAD_ANNOTATION_ATTRIBUTE_(pt_guarded_by(x))

/// Declares lock-ordering edges: this capability must be acquired before /
/// after the listed ones (enforced with -Wthread-safety-beta).
#define XO_ACQUIRED_BEFORE(...) \
  XO_THREAD_ANNOTATION_ATTRIBUTE_(acquired_before(__VA_ARGS__))
#define XO_ACQUIRED_AFTER(...) \
  XO_THREAD_ANNOTATION_ATTRIBUTE_(acquired_after(__VA_ARGS__))

// -- Function annotations. --------------------------------------------------

/// The caller must hold the listed capabilities exclusively.
#define XO_REQUIRES(...) \
  XO_THREAD_ANNOTATION_ATTRIBUTE_(requires_capability(__VA_ARGS__))

/// The caller must hold the listed capabilities at least shared.
#define XO_REQUIRES_SHARED(...) \
  XO_THREAD_ANNOTATION_ATTRIBUTE_(requires_shared_capability(__VA_ARGS__))

/// The function acquires the listed capabilities (exclusive / shared) and
/// holds them on return.
#define XO_ACQUIRE(...) \
  XO_THREAD_ANNOTATION_ATTRIBUTE_(acquire_capability(__VA_ARGS__))
#define XO_ACQUIRE_SHARED(...) \
  XO_THREAD_ANNOTATION_ATTRIBUTE_(acquire_shared_capability(__VA_ARGS__))

/// The function releases the listed capabilities (exclusive / shared /
/// either, for scoped guards that may hold either mode).
#define XO_RELEASE(...) \
  XO_THREAD_ANNOTATION_ATTRIBUTE_(release_capability(__VA_ARGS__))
#define XO_RELEASE_SHARED(...) \
  XO_THREAD_ANNOTATION_ATTRIBUTE_(release_shared_capability(__VA_ARGS__))
#define XO_RELEASE_GENERIC(...) \
  XO_THREAD_ANNOTATION_ATTRIBUTE_(release_generic_capability(__VA_ARGS__))

/// The function attempts the acquisition and returns `b` on success.
#define XO_TRY_ACQUIRE(...) \
  XO_THREAD_ANNOTATION_ATTRIBUTE_(try_acquire_capability(__VA_ARGS__))
#define XO_TRY_ACQUIRE_SHARED(...) \
  XO_THREAD_ANNOTATION_ATTRIBUTE_(try_acquire_shared_capability(__VA_ARGS__))

/// The caller must NOT hold the listed capabilities (non-reentrancy;
/// deadlock prevention for functions that acquire them internally).
#define XO_EXCLUDES(...) \
  XO_THREAD_ANNOTATION_ATTRIBUTE_(locks_excluded(__VA_ARGS__))

/// Asserts (without acquiring) that the capability is held, for code the
/// analysis cannot follow.
#define XO_ASSERT_CAPABILITY(x) \
  XO_THREAD_ANNOTATION_ATTRIBUTE_(assert_capability(x))
#define XO_ASSERT_SHARED_CAPABILITY(x) \
  XO_THREAD_ANNOTATION_ATTRIBUTE_(assert_shared_capability(x))

/// The function returns a reference to the capability that guards its
/// class (lets the analysis name it through an accessor).
#define XO_RETURN_CAPABILITY(x) \
  XO_THREAD_ANNOTATION_ATTRIBUTE_(lock_returned(x))

/// Escape hatch: the function body is excluded from the analysis. Every
/// use must carry a comment justifying why the analysis cannot see the
/// invariant; the acceptance bar for this repository is zero undocumented
/// uses (DESIGN.md section 10).
#define XO_NO_THREAD_SAFETY_ANALYSIS \
  XO_THREAD_ANNOTATION_ATTRIBUTE_(no_thread_safety_analysis)

#endif  // XORATOR_COMMON_THREAD_ANNOTATIONS_H_
