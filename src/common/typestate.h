#ifndef XORATOR_COMMON_TYPESTATE_H_
#define XORATOR_COMMON_TYPESTATE_H_

// Clang Consumed Analysis annotations (DESIGN.md section 11).
//
// These macros attach typestate annotations to move-only resource guards —
// today, the page-pin guard `xorator::ordb::PageRef` — turning their
// acquire/release protocol into a compile-time proof: under Clang,
// `-Wconsumed` (promoted to an error for every target by the top-level
// CMakeLists.txt) rejects any path that touches a guard after it was
// released or moved from, or that releases it twice. Under other compilers
// the macros compile to nothing, so the annotations are free documentation.
//
// The analysis tracks each annotated object through one of three states:
//
//   unconsumed  the guard holds its resource (a pinned page);
//   consumed    the resource was released, or moved into another guard;
//   unknown     the analysis cannot tell (e.g. after a branch merge) — no
//               diagnostics fire in this state, so the checking is sound
//               but not complete.
//
// They are macros (not attributes spelled inline) for the same reasons as
// the lock annotations in common/thread_annotations.h:
//   1. GCC has no consumed analysis; `__attribute__((consumable(x)))` is
//      an error there, so the spelling must vanish on non-Clang builds.
//   2. One macro layer isolates the repository from attribute churn.
//   3. Grep-ability: `XO_CONSUMABLE` finds every typestate-tracked class.
//
// Known limits, so callers are not surprised:
//   * The analysis tracks local variables. Guards stored in containers or
//     members leave its sight (state "unknown"); the RAII destructor still
//     releases the resource at runtime, so only the *static* double/after-
//     release check is lost for such guards.
//   * A guard that lives across a loop back-edge must be in the same state
//     at the loop's entry and exit; declare per-iteration guards inside
//     the loop body.
//   * Do not annotate move constructors with XO_RETURN_TYPESTATE: Clang's
//     built-in move handling (source becomes consumed) is bypassed when an
//     explicit annotation is present, which would silence use-after-move.

#if defined(__clang__) && !defined(SWIG)
#define XO_TYPESTATE_ATTRIBUTE_(x) __attribute__((x))
#else
#define XO_TYPESTATE_ATTRIBUTE_(x)  // no-op outside Clang
#endif

/// Marks a class whose instances' typestates are tracked. The argument
/// (unconsumed | consumed | unknown) is the state assumed for instances
/// the analysis receives from un-annotated producers, e.g. a guard pulled
/// out of a Result<T>.
#define XO_CONSUMABLE(state) XO_TYPESTATE_ATTRIBUTE_(consumable(state))

/// The annotated method may only be invoked in the listed state(s), spelled
/// as string literals: XO_CALLABLE_WHEN("unconsumed"). Calling it in any
/// other *known* state is a compile error under -Wconsumed.
#define XO_CALLABLE_WHEN(...) \
  XO_TYPESTATE_ATTRIBUTE_(callable_when(__VA_ARGS__))

/// After the annotated method returns, the object is in the given state
/// (e.g. Release() leaves the guard consumed).
#define XO_SET_TYPESTATE(state) XO_TYPESTATE_ATTRIBUTE_(set_typestate(state))

/// On a constructor: the state of the freshly constructed object. On a
/// function returning a tracked type: the state of the returned value.
#define XO_RETURN_TYPESTATE(state) \
  XO_TYPESTATE_ATTRIBUTE_(return_typestate(state))

/// On a parameter of tracked type: the state the argument must be in at
/// the call (violations are diagnosed at the call site).
#define XO_PARAM_TYPESTATE(state) \
  XO_TYPESTATE_ATTRIBUTE_(param_typestate(state))

/// On a const method returning bool: returns true iff the object is in the
/// given state. Branching on it refines the tracked state, so
/// `if (ref.holds()) { ... }` makes the guarded block "unconsumed".
#define XO_TEST_TYPESTATE(state) XO_TYPESTATE_ATTRIBUTE_(test_typestate(state))

#endif  // XORATOR_COMMON_TYPESTATE_H_
