#include "common/varint.h"

#include "common/span.h"

namespace xorator {

void PutVarint(std::string* dst, uint64_t value) {
  while (value >= 0x80) {
    dst->push_back(static_cast<char>((value & 0x7F) | 0x80));
    value >>= 7;
  }
  dst->push_back(static_cast<char>(value));
}

Result<uint64_t> GetVarint(std::string_view src, size_t* pos) {
  xo::BoundedReader reader(src);
  XO_RETURN_NOT_OK(reader.SeekTo(*pos));
  XO_ASSIGN_OR_RETURN(uint64_t value, reader.ReadVarint());
  *pos = reader.position();
  return value;
}

}  // namespace xorator
