#include "common/varint.h"

namespace xorator {

void PutVarint(std::string* dst, uint64_t value) {
  while (value >= 0x80) {
    dst->push_back(static_cast<char>((value & 0x7F) | 0x80));
    value >>= 7;
  }
  dst->push_back(static_cast<char>(value));
}

Result<uint64_t> GetVarint(std::string_view src, size_t* pos) {
  uint64_t value = 0;
  int shift = 0;
  while (*pos < src.size()) {
    uint8_t byte = static_cast<uint8_t>(src[(*pos)++]);
    value |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return value;
    shift += 7;
    if (shift > 63) return Status::OutOfRange("varint too long");
  }
  return Status::OutOfRange("truncated varint");
}

}  // namespace xorator
