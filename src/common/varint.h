#ifndef XORATOR_COMMON_VARINT_H_
#define XORATOR_COMMON_VARINT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"

namespace xorator {

/// LEB128-style unsigned varint append, used by the tuple codec and the
/// compressed XADT representation.
void PutVarint(std::string* dst, uint64_t value);

/// Decodes a varint at `*pos` in `src`, advancing `*pos` past it.
/// Fails closed with Corruption if the buffer ends mid-varint or the
/// varint is wider than 64 bits (`*pos` is left unchanged on failure).
[[nodiscard]] Result<uint64_t> GetVarint(std::string_view src, size_t* pos);

/// ZigZag encoding so small negative integers stay small on the wire.
inline uint64_t ZigZagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}
inline int64_t ZigZagDecode(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

}  // namespace xorator

#endif  // XORATOR_COMMON_VARINT_H_
