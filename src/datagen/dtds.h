#ifndef XORATOR_DATAGEN_DTDS_H_
#define XORATOR_DATAGEN_DTDS_H_

namespace xorator::datagen {

/// The Plays DTD of the paper's Figure 1 (used for the worked example and
/// the Figure 5/6 schema tests).
extern const char kPlaysDtd[];

/// The Shakespeare DTD of Figure 10 (Bosak's corpus DTD, as printed).
extern const char kShakespeareDtd[];

/// The SIGMOD Proceedings DTD of Figure 12 (deep DTD, XORator worst case).
extern const char kSigmodDtd[];

}  // namespace xorator::datagen

#endif  // XORATOR_DATAGEN_DTDS_H_
