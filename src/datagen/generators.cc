#include "datagen/generators.h"

#include <array>

#include "xml/serializer.h"

namespace xorator::datagen {

namespace {

constexpr const char* kWords[] = {
    "thou",   "art",    "more",    "lovely",  "temperate", "rough",
    "winds",  "shake",  "darling", "buds",    "summer",    "lease",
    "hath",   "short",  "date",    "sometime", "hot",      "eye",
    "heaven", "shines", "gold",    "complexion", "dimmed", "fair",
    "declines", "chance", "nature", "changing", "course",  "untrimmed",
    "eternal", "fade",  "possession", "owe",   "wander",   "shade",
    "grow",   "time",   "breathe", "eyes",    "see",       "long",
    "lives",  "gives",  "life",    "thee",    "night",     "candle",
    "burns",  "sword",  "honour",  "crown",   "kingdom",   "horse"};

constexpr const char* kSpeakerNames[] = {
    "ROMEO",    "JULIET",   "HAMLET",    "OPHELIA",  "MACBETH", "BANQUO",
    "PORTIA",   "BRUTUS",   "CASSIUS",   "OTHELLO",  "IAGO",    "LEAR",
    "CORDELIA", "PROSPERO", "MIRANDA",   "FALSTAFF", "HENRY",   "RICHARD",
    "TITANIA",  "OBERON",   "PUCK",      "VIOLA",    "ORSINO",  "MALVOLIO"};

constexpr const char* kStageActions[] = {
    "Enter the court", "Exeunt all",     "Aside to the crowd",
    "Drawing a sword", "Reads a letter", "Trumpets sound",
    "Dies",            "Kneeling down",  "They fight"};

constexpr const char* kConferenceCities[] = {
    "San Jose",  "Seattle", "Tucson",  "Dallas", "Philadelphia",
    "Montreal",  "Athens",  "Seoul",   "Sydney", "Edinburgh"};

constexpr const char* kFirstNames[] = {"Alice", "Bob",   "Carol", "David",
                                       "Erika", "Frank", "Grace", "Henry",
                                       "Irene", "Jack",  "Kanda", "Laura"};
constexpr const char* kLastNames[] = {
    "Smith",  "Jones", "Chen",    "Patel",  "Garcia", "Kim",
    "Muller", "Rossi", "Tanaka",  "Novak",  "Silva",  "Dubois"};

constexpr const char* kPaperTopics[] = {
    "Query Optimization",   "Index Structures",    "Transaction Recovery",
    "Data Mining",          "View Maintenance",    "Spatial Access Methods",
    "Parallel Aggregation", "Schema Evolution",    "Cache Consistency",
    "Stream Processing"};

template <size_t N>
const char* Pick(std::mt19937_64& rng, const char* const (&pool)[N]) {
  return pool[rng() % N];
}

bool Chance(std::mt19937_64& rng, double p) {
  return std::uniform_real_distribution<double>(0, 1)(rng) < p;
}

std::string Sentence(std::mt19937_64& rng, int min_words, int max_words,
                     const char* inject = nullptr) {
  int n = min_words +
          static_cast<int>(rng() % static_cast<uint64_t>(
                                       std::max(1, max_words - min_words + 1)));
  std::string out;
  int inject_at = inject != nullptr ? static_cast<int>(rng() % n) : -1;
  for (int i = 0; i < n; ++i) {
    if (i > 0) out += " ";
    out += i == inject_at ? inject : Pick(rng, kWords);
  }
  return out;
}

}  // namespace

uint64_t CorpusBytes(const std::vector<std::unique_ptr<xml::Node>>& corpus) {
  uint64_t bytes = 0;
  for (const auto& doc : corpus) {
    std::string text;
    xml::SerializeTo(*doc, &text);
    bytes += text.size();
  }
  return bytes;
}

// ------------------------------------------------------------- Shakespeare

ShakespeareGenerator::ShakespeareGenerator(const ShakespeareOptions& options)
    : options_(options) {}

std::unique_ptr<xml::Node> ShakespeareGenerator::GeneratePlay(int i) const {
  std::mt19937_64 rng(options_.seed * 1000003 + static_cast<uint64_t>(i));
  auto play = xml::Node::Element("PLAY");
  bool romeo = (i == 0);
  std::string title =
      romeo ? "Romeo and Juliet"
            : "The Chronicle of " + std::string(Pick(rng, kSpeakerNames)) +
                  " Part " + std::to_string(i);
  play->AddElementWithText("TITLE", title);

  // Front matter.
  xml::Node* fm = play->AddChild(xml::Node::Element("FM"));
  int paragraphs = 2 + static_cast<int>(rng() % 3);
  for (int p = 0; p < paragraphs; ++p) {
    fm->AddElementWithText("P", Sentence(rng, 8, 16));
  }

  // Cast of the play: a local pool of speakers.
  std::vector<std::string> cast;
  if (romeo) cast.push_back("ROMEO");
  while (cast.size() < 12) {
    std::string name = Pick(rng, kSpeakerNames);
    name += " " + std::to_string(rng() % 4 + 1);
    cast.push_back(name);
  }
  xml::Node* personae = play->AddChild(xml::Node::Element("PERSONAE"));
  personae->AddElementWithText("TITLE", "Dramatis Personae");
  for (size_t c = 0; c < cast.size(); ++c) {
    if (c + 2 < cast.size() && Chance(rng, 0.15)) {
      xml::Node* group = personae->AddChild(xml::Node::Element("PGROUP"));
      group->AddElementWithText("PERSONA", cast[c]);
      group->AddElementWithText("PERSONA", cast[c + 1]);
      group->AddElementWithText("GRPDESCR", Sentence(rng, 3, 6));
      ++c;
    } else {
      personae->AddElementWithText("PERSONA", cast[c]);
    }
  }
  play->AddElementWithText("SCNDESCR", "SCENE " + Sentence(rng, 3, 8));
  play->AddElementWithText("PLAYSUBT", title);

  auto add_speech = [&](xml::Node* parent) {
    xml::Node* speech = parent->AddChild(xml::Node::Element("SPEECH"));
    // In the Romeo play, ROMEO (cast[0]) reliably speaks a share of the
    // speeches so that QS4/QS5 have a non-empty, stable answer.
    std::string speaker = (romeo && Chance(rng, 0.15))
                              ? cast[0]
                              : cast[rng() % cast.size()];
    speech->AddElementWithText("SPEAKER", speaker);
    if (Chance(rng, 0.05)) {
      speech->AddElementWithText("SPEAKER", cast[rng() % cast.size()]);
    }
    int lines =
        1 + static_cast<int>(rng() % static_cast<uint64_t>(
                                         options_.max_lines_per_speech));
    for (int l = 0; l < lines; ++l) {
      const char* inject = nullptr;
      if (Chance(rng, 0.02)) inject = "friend";
      else if (Chance(rng, 0.05)) inject = "love";
      auto line = xml::Node::Element("LINE");
      line->AddChild(xml::Node::Text(Sentence(rng, 5, 9, inject)));
      if (Chance(rng, 0.06)) {
        // Mixed content: a stage direction embedded in the line.
        const char* action =
            Chance(rng, 0.3) ? "Rising" : Pick(rng, kStageActions);
        line->AddElementWithText("STAGEDIR", action);
        line->AddChild(xml::Node::Text(Sentence(rng, 2, 5)));
      }
      speech->AddChild(std::move(line));
    }
    if (Chance(rng, 0.08)) {
      speech->AddElementWithText("STAGEDIR", Pick(rng, kStageActions));
    }
  };

  auto fill_scene_body = [&](xml::Node* scene) {
    int speeches =
        options_.speeches_per_scene / 2 +
        static_cast<int>(rng() % static_cast<uint64_t>(
                                     std::max(1, options_.speeches_per_scene)));
    for (int s = 0; s < speeches; ++s) {
      if (Chance(rng, 0.04)) {
        const char* action =
            Chance(rng, 0.25) ? "Rising" : Pick(rng, kStageActions);
        scene->AddElementWithText("STAGEDIR", action);
      }
      if (Chance(rng, 0.03)) {
        scene->AddElementWithText("SUBHEAD", Sentence(rng, 2, 4));
      }
      add_speech(scene);
    }
  };

  auto add_scene = [&](xml::Node* parent, int act_no, int scene_no) {
    xml::Node* scene = parent->AddChild(xml::Node::Element("SCENE"));
    scene->AddElementWithText("TITLE", "SCENE " + std::to_string(scene_no) +
                                           ". " + Sentence(rng, 3, 6));
    if (Chance(rng, 0.2)) {
      scene->AddElementWithText("SUBTITLE", Sentence(rng, 2, 4));
    }
    (void)act_no;
    fill_scene_body(scene);
  };

  if (Chance(rng, 0.3)) {
    xml::Node* induct = play->AddChild(xml::Node::Element("INDUCT"));
    induct->AddElementWithText("TITLE", "INDUCTION");
    if (Chance(rng, 0.5)) {
      induct->AddElementWithText("SUBTITLE", Sentence(rng, 2, 4));
    }
    add_scene(induct, 0, 1);
  }
  if (Chance(rng, 0.4)) {
    xml::Node* prologue = play->AddChild(xml::Node::Element("PROLOGUE"));
    prologue->AddElementWithText("TITLE", "PROLOGUE");
    add_speech(prologue);
  }
  for (int a = 1; a <= options_.acts_per_play; ++a) {
    xml::Node* act = play->AddChild(xml::Node::Element("ACT"));
    act->AddElementWithText("TITLE", "ACT " + std::to_string(a));
    if (Chance(rng, 0.1)) {
      act->AddElementWithText("SUBTITLE", Sentence(rng, 2, 4));
    }
    if (Chance(rng, 0.15)) {
      xml::Node* prologue = act->AddChild(xml::Node::Element("PROLOGUE"));
      prologue->AddElementWithText("TITLE", "PROLOGUE");
      add_speech(prologue);
      add_speech(prologue);
    }
    int scenes = std::max(1, options_.scenes_per_act / 2 +
                                 static_cast<int>(
                                     rng() % static_cast<uint64_t>(std::max(
                                                 1, options_.scenes_per_act))));
    for (int s = 1; s <= scenes; ++s) add_scene(act, a, s);
    if (Chance(rng, 0.1)) {
      xml::Node* epilogue = act->AddChild(xml::Node::Element("EPILOGUE"));
      epilogue->AddElementWithText("TITLE", "EPILOGUE");
      add_speech(epilogue);
    }
  }
  if (Chance(rng, 0.25)) {
    xml::Node* epilogue = play->AddChild(xml::Node::Element("EPILOGUE"));
    epilogue->AddElementWithText("TITLE", "EPILOGUE");
    add_speech(epilogue);
  }
  return play;
}

std::vector<std::unique_ptr<xml::Node>> ShakespeareGenerator::GenerateCorpus()
    const {
  std::vector<std::unique_ptr<xml::Node>> out;
  out.reserve(options_.plays);
  for (int i = 0; i < options_.plays; ++i) out.push_back(GeneratePlay(i));
  return out;
}

// ------------------------------------------------------------------ SIGMOD

SigmodGenerator::SigmodGenerator(const SigmodOptions& options)
    : options_(options) {}

std::unique_ptr<xml::Node> SigmodGenerator::GenerateProceedings(int i) const {
  std::mt19937_64 rng(options_.seed * 7771 + static_cast<uint64_t>(i));
  auto pp = xml::Node::Element("PP");
  int year = 1975 + (i % 28);
  pp->AddElementWithText("volume", std::to_string(10 + i % 30));
  pp->AddElementWithText("number", std::to_string(1 + i % 4));
  pp->AddElementWithText("month", std::to_string(1 + i % 12));
  pp->AddElementWithText("year", std::to_string(year));
  pp->AddElementWithText("conference", "SIGMOD");
  pp->AddElementWithText("date", std::to_string(1 + i % 28) + "/" +
                                     std::to_string(1 + i % 12) + "/" +
                                     std::to_string(year));
  pp->AddElementWithText("confyear", std::to_string(year));
  pp->AddElementWithText("location", Pick(rng, kConferenceCities));
  xml::Node* slist = pp->AddChild(xml::Node::Element("sList"));
  int sections = std::max(1, options_.sections_per_doc / 2 +
                                 static_cast<int>(rng() % static_cast<uint64_t>(
                                     std::max(1, options_.sections_per_doc))));
  int article_seq = 0;
  for (int s = 0; s < sections; ++s) {
    xml::Node* tuple = slist->AddChild(xml::Node::Element("sListTuple"));
    auto section_name = xml::Node::Element("sectionName");
    section_name->AddAttribute("SectionPosition", std::to_string(s + 1));
    section_name->AddChild(
        xml::Node::Text(std::string(Pick(rng, kPaperTopics)) + " Session"));
    tuple->AddChild(std::move(section_name));
    xml::Node* articles = tuple->AddChild(xml::Node::Element("articles"));
    int narticles = std::max(
        1, options_.articles_per_section / 2 +
               static_cast<int>(rng() % static_cast<uint64_t>(std::max(
                                    1, options_.articles_per_section))));
    int page = 1 + static_cast<int>(rng() % 400);
    for (int a = 0; a < narticles; ++a) {
      xml::Node* at = articles->AddChild(xml::Node::Element("aTuple"));
      std::string title_text = std::string(Pick(rng, kPaperTopics));
      if (Chance(rng, 0.05)) title_text += " with Adaptive Join Processing";
      if (Chance(rng, 0.2)) {
        title_text += " for " + std::string(Pick(rng, kPaperTopics));
      }
      auto title = xml::Node::Element("title");
      title->AddAttribute("articleCode",
                          "A" + std::to_string(i) + "-" +
                              std::to_string(article_seq++));
      title->AddChild(xml::Node::Text(title_text));
      at->AddChild(std::move(title));
      xml::Node* authors = at->AddChild(xml::Node::Element("authors"));
      int nauthors = 1 + static_cast<int>(
                             rng() % static_cast<uint64_t>(std::max(
                                         1, options_.max_authors_per_article)));
      for (int u = 0; u < nauthors; ++u) {
        std::string name;
        if (Chance(rng, 0.004)) {
          name = "Worthy Writer";
        } else if (Chance(rng, 0.004)) {
          name = "Bird Brain";
        } else {
          name = std::string(Pick(rng, kFirstNames)) + " " +
                 Pick(rng, kLastNames);
        }
        auto author = xml::Node::Element("author");
        author->AddAttribute("AuthorPosition", std::to_string(u + 1));
        author->AddChild(xml::Node::Text(name));
        authors->AddChild(std::move(author));
      }
      int length = 8 + static_cast<int>(rng() % 20);
      at->AddElementWithText("initPage", std::to_string(page));
      at->AddElementWithText("endPage", std::to_string(page + length));
      page += length + 1;
      xml::Node* toindex = at->AddChild(xml::Node::Element("Toindex"));
      if (Chance(rng, 0.8)) {
        auto index = xml::Node::Element("index");
        index->AddAttribute("href", "index/" + std::to_string(i) + "/" +
                                        std::to_string(article_seq) + ".xml");
        index->AddChild(xml::Node::Text("term list"));
        toindex->AddChild(std::move(index));
      }
      xml::Node* full = at->AddChild(xml::Node::Element("fullText"));
      if (Chance(rng, 0.9)) {
        auto size = xml::Node::Element("size");
        size->AddAttribute("href", "ft/" + std::to_string(i) + "/" +
                                       std::to_string(article_seq) + ".pdf");
        size->AddChild(
            xml::Node::Text(std::to_string(100 + rng() % 900) + "KB"));
        full->AddChild(std::move(size));
      }
    }
  }
  return pp;
}

std::vector<std::unique_ptr<xml::Node>> SigmodGenerator::GenerateCorpus()
    const {
  std::vector<std::unique_ptr<xml::Node>> out;
  out.reserve(options_.documents);
  for (int i = 0; i < options_.documents; ++i) {
    out.push_back(GenerateProceedings(i));
  }
  return out;
}

// ------------------------------------------------------------ generic DTD

RandomDocGenerator::RandomDocGenerator(const xml::Dtd* dtd,
                                       const RandomDocOptions& options)
    : dtd_(dtd), options_(options), rng_(options.seed) {}

std::string RandomDocGenerator::RandomText() {
  return Sentence(rng_, 1, std::max(1, options_.max_words));
}

Result<std::unique_ptr<xml::Node>> RandomDocGenerator::Generate(
    const std::string& root_element) {
  auto holder = xml::Node::Element("#holder");
  XO_RETURN_NOT_OK(BuildElement(root_element, holder.get(), 0));
  if (holder->children().empty()) {
    return Status::Internal("generation produced no root");
  }
  // Detach the root from the holder.
  auto root = holder->children().front()->Clone();
  return root;
}

Status RandomDocGenerator::BuildElement(const std::string& name,
                                        xml::Node* parent, int depth) {
  const xml::ElementDecl* decl = dtd_->Find(name);
  if (decl == nullptr) {
    return Status::InvalidArgument("undeclared element '" + name + "'");
  }
  xml::Node* elem = parent->AddChild(xml::Node::Element(name));
  for (const xml::AttributeDecl& attr : decl->attributes) {
    if (attr.default_decl == "#REQUIRED" || Chance(rng_, 0.7)) {
      elem->AddAttribute(attr.name, RandomText());
    }
  }
  if (decl->content_kind == xml::ContentKind::kEmpty) return Status::OK();
  if (decl->content_kind == xml::ContentKind::kMixed &&
      decl->content->children.size() <= 1) {
    // Pure (#PCDATA).
    elem->AddChild(xml::Node::Text(RandomText()));
    return Status::OK();
  }
  if (decl->content == nullptr) return Status::OK();
  return Expand(*decl->content, elem, depth + 1);
}

Status RandomDocGenerator::Expand(const xml::ContentParticle& particle,
                                  xml::Node* parent, int depth) {
  int repeats = 1;
  switch (particle.occurrence) {
    case xml::Occurrence::kOne:
      repeats = 1;
      break;
    case xml::Occurrence::kOptional:
      repeats = Chance(rng_, options_.optional_prob) ? 1 : 0;
      break;
    case xml::Occurrence::kStar:
      repeats = static_cast<int>(rng_() %
                                 static_cast<uint64_t>(options_.max_repeat + 1));
      break;
    case xml::Occurrence::kPlus:
      repeats = 1 + static_cast<int>(
                        rng_() % static_cast<uint64_t>(options_.max_repeat));
      break;
  }
  if (depth >= options_.max_depth) repeats = 0;
  for (int r = 0; r < repeats; ++r) {
    switch (particle.kind) {
      case xml::ContentParticle::Kind::kElementRef:
        XO_RETURN_NOT_OK(BuildElement(particle.name, parent, depth));
        break;
      case xml::ContentParticle::Kind::kPCData:
        parent->AddChild(xml::Node::Text(RandomText()));
        break;
      case xml::ContentParticle::Kind::kSequence:
        for (const auto& c : particle.children) {
          XO_RETURN_NOT_OK(Expand(*c, parent, depth));
        }
        break;
      case xml::ContentParticle::Kind::kChoice: {
        if (particle.children.empty()) break;
        size_t pick = rng_() % particle.children.size();
        XO_RETURN_NOT_OK(Expand(*particle.children[pick], parent, depth));
        break;
      }
    }
  }
  return Status::OK();
}

}  // namespace xorator::datagen
