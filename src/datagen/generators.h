#ifndef XORATOR_DATAGEN_GENERATORS_H_
#define XORATOR_DATAGEN_GENERATORS_H_

#include <cstdint>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "common/result.h"
#include "xml/dom.h"
#include "xml/dtd.h"

namespace xorator::datagen {

/// Synthetic Shakespeare corpus conforming to the Figure 10 DTD, replacing
/// Bosak's copyrighted data set. Keyword frequencies are calibrated so the
/// paper's queries QS1-QS6 are selective in the same way:
///   * "friend" in ~2% of lines, "love" in ~5%;
///   * "Rising" in ~3% of stage directions;
///   * play 0 is titled "Romeo and Juliet" with a speaker "ROMEO";
///   * some lines embed STAGEDIR children (mixed content).
struct ShakespeareOptions {
  int plays = 37;
  uint64_t seed = 42;
  int acts_per_play = 5;
  int scenes_per_act = 4;
  int speeches_per_scene = 18;
  int max_lines_per_speech = 6;
};

/// Synthesizes Shakespeare-DTD plays (the paper's DSx corpora).
class ShakespeareGenerator {
 public:
  explicit ShakespeareGenerator(const ShakespeareOptions& options = {});

  /// Generates play number `i` (deterministic in (seed, i)).
  std::unique_ptr<xml::Node> GeneratePlay(int i) const;

  /// Generates the whole corpus.
  std::vector<std::unique_ptr<xml::Node>> GenerateCorpus() const;

 private:
  ShakespeareOptions options_;
};

/// Synthetic SIGMOD Proceedings documents conforming to the Figure 12 DTD
/// (replaces IBM's XML Generator). Keywords: "Join" in ~5% of titles,
/// authors "Worthy Writer" and "Bird Brain" appear rarely, matching the
/// selectivity shape of QG1-QG6.
struct SigmodOptions {
  int documents = 3000;
  uint64_t seed = 7;
  int sections_per_doc = 3;
  int articles_per_section = 5;
  int max_authors_per_article = 4;
};

/// Synthesizes SIGMOD-Record-DTD proceedings documents.
class SigmodGenerator {
 public:
  explicit SigmodGenerator(const SigmodOptions& options = {});

  std::unique_ptr<xml::Node> GenerateProceedings(int i) const;
  std::vector<std::unique_ptr<xml::Node>> GenerateCorpus() const;

 private:
  SigmodOptions options_;
};

/// Generic DTD-driven random document generator (in the spirit of the IBM
/// XML Generator the paper used): produces documents conforming to any
/// non-recursive DTD, used by property tests to fuzz the shred/query
/// pipeline.
struct RandomDocOptions {
  uint64_t seed = 1;
  /// Expansion count for `*`; `+` uses 1..max_repeat.
  int max_repeat = 3;
  /// Probability that a `?` particle is present.
  double optional_prob = 0.5;
  /// Hard depth cap (recursion in the DTD is truncated here).
  int max_depth = 12;
  /// Words per text node.
  int max_words = 6;
};

/// Generates random documents from an arbitrary simplified DTD.
class RandomDocGenerator {
 public:
  RandomDocGenerator(const xml::Dtd* dtd, const RandomDocOptions& options);

  /// Generates one document rooted at `root_element`.
  [[nodiscard]] Result<std::unique_ptr<xml::Node>> Generate(const std::string& root_element);

 private:
  [[nodiscard]] Status Expand(const xml::ContentParticle& particle, xml::Node* parent,
                int depth);
  [[nodiscard]] Status BuildElement(const std::string& name, xml::Node* parent, int depth);
  std::string RandomText();

  const xml::Dtd* dtd_;
  RandomDocOptions options_;
  std::mt19937_64 rng_;
};

/// Serializes a generated corpus and reports its total size in bytes
/// (handy for matching the paper's 7.5 MB / 12 MB corpus sizes).
uint64_t CorpusBytes(const std::vector<std::unique_ptr<xml::Node>>& corpus);

}  // namespace xorator::datagen

#endif  // XORATOR_DATAGEN_GENERATORS_H_
