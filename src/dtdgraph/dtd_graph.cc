#include "dtdgraph/dtd_graph.h"

#include <algorithm>
#include <map>

#include "xml/dtd.h"

namespace xorator::dtdgraph {

namespace {

// A leaf for duplication purposes: no element children in the simplified DTD.
bool IsLeafElement(const SimplifiedElement& e) { return e.children.empty(); }

}  // namespace

Result<DtdGraph> DtdGraph::Build(const SimplifiedDtd& dtd,
                                 const DtdGraphOptions& options) {
  DtdGraph g;
  std::map<std::string, int> index;  // element name -> node (non-duplicated)

  // Count how many distinct parents reference each element, to know which
  // leaves need duplication.
  std::map<std::string, int> ref_count;
  for (const SimplifiedElement& e : dtd.elements()) {
    for (const ChildSpec& c : e.children) ref_count[c.name]++;
  }

  auto make_node = [&](const SimplifiedElement& e,
                       const std::string& id) -> int {
    GraphNode node;
    node.id = id;
    node.element = e.name;
    node.has_pcdata = e.has_pcdata;
    node.attributes = e.attributes;
    g.nodes_.push_back(std::move(node));
    return static_cast<int>(g.nodes_.size()) - 1;
  };

  // First create one node per element (shared leaves get extra copies on
  // demand while wiring edges).
  for (const SimplifiedElement& e : dtd.elements()) {
    index[e.name] = make_node(e, e.name);
  }

  std::map<std::string, int> dup_counter;
  for (const SimplifiedElement& e : dtd.elements()) {
    int parent = index[e.name];
    for (const ChildSpec& c : e.children) {
      const SimplifiedElement* child_elem = dtd.Find(c.name);
      if (child_elem == nullptr) {
        return Status::InvalidArgument("undeclared element '" + c.name + "'");
      }
      int child;
      bool shared_leaf = options.duplicate_shared_leaves &&
                         IsLeafElement(*child_elem) &&
                         ref_count[c.name] > 1;
      if (shared_leaf) {
        int k = ++dup_counter[c.name];
        child = make_node(*child_elem, c.name + "#" + std::to_string(k));
        // Re-fetch parent pointer: make_node may have reallocated nodes_.
      } else {
        child = index[c.name];
      }
      g.nodes_[parent].children.push_back({child, c.occurrence});
      auto& parents = g.nodes_[child].parents;
      if (std::find(parents.begin(), parents.end(), parent) == parents.end()) {
        parents.push_back(parent);
      }
    }
  }

  // With duplication enabled, the original node of a fully-duplicated shared
  // leaf is left parentless and childless; drop such orphans from root
  // candidacy by requiring either parents or a reference count of zero.
  for (int i = 0; i < static_cast<int>(g.nodes_.size()); ++i) {
    const GraphNode& n = g.nodes_[i];
    bool orphan_copy_source = options.duplicate_shared_leaves &&
                              n.parents.empty() &&
                              ref_count[n.element] > 1 &&
                              n.id == n.element;
    if (n.parents.empty() && !orphan_copy_source) {
      g.roots_.push_back(i);
    }
  }
  return g;
}

int DtdGraph::FindId(const std::string& id) const {
  for (int i = 0; i < static_cast<int>(nodes_.size()); ++i) {
    if (nodes_[i].id == id) return i;
  }
  return -1;
}

std::set<int> DtdGraph::Descendants(int node, bool* recursive) const {
  std::set<int> out;
  if (recursive != nullptr) *recursive = false;
  std::vector<int> stack;
  for (const GraphNode::Edge& e : nodes_[node].children) stack.push_back(e.child);
  while (!stack.empty()) {
    int cur = stack.back();
    stack.pop_back();
    if (cur == node) {
      if (recursive != nullptr) *recursive = true;
      continue;
    }
    if (!out.insert(cur).second) continue;
    for (const GraphNode::Edge& e : nodes_[cur].children) {
      stack.push_back(e.child);
    }
  }
  return out;
}

bool DtdGraph::BelowStar(int node) const {
  for (int p : nodes_[node].parents) {
    for (const GraphNode::Edge& e : nodes_[p].children) {
      if (e.child == node && e.occurrence == Occurrence::kStar) return true;
    }
  }
  return false;
}

bool DtdGraph::HasStarredChild(int node) const {
  for (const GraphNode::Edge& e : nodes_[node].children) {
    if (e.occurrence == Occurrence::kStar) return true;
  }
  return false;
}

std::string DtdGraph::ToString() const {
  std::string out;
  for (const GraphNode& n : nodes_) {
    out += n.id;
    if (n.has_pcdata) out += " [pcdata]";
    out += " ->";
    for (const GraphNode::Edge& e : n.children) {
      out += " " + nodes_[e.child].id;
      char suffix = xml::OccurrenceSuffix(e.occurrence);
      if (suffix != '\0') out.push_back(suffix);
    }
    out += "\n";
  }
  return out;
}

}  // namespace xorator::dtdgraph
