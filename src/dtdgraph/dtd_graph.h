#ifndef XORATOR_DTDGRAPH_DTD_GRAPH_H_
#define XORATOR_DTDGRAPH_DTD_GRAPH_H_

#include <set>
#include <string>
#include <vector>

#include "common/result.h"
#include "dtdgraph/simplify.h"

namespace xorator::dtdgraph {

/// A node of the DTD graph (Section 3.2 of the paper). Occurrence operators
/// are folded onto the edges rather than materialized as nodes.
struct GraphNode {
  /// Unique node id within the graph. Equal to the element name, except for
  /// duplicated leaf copies which are suffixed "#<k>" (see
  /// `DtdGraphOptions::duplicate_shared_leaves`).
  std::string id;
  /// Underlying DTD element name.
  std::string element;
  bool has_pcdata = false;
  std::vector<std::string> attributes;

  struct Edge {
    int child = -1;  // node index
    Occurrence occurrence = Occurrence::kOne;
  };
  std::vector<Edge> children;  // content-model order
  std::vector<int> parents;    // node indices (deduplicated)

  /// A leaf carries no element children (it may carry text/attributes).
  bool is_leaf() const { return children.empty(); }
};

/// Options controlling DTD-graph construction.
struct DtdGraphOptions {
  /// The paper's "revised DTD graph" (Figure 4): every *leaf* element shared
  /// by several parents is duplicated, one copy per referencing parent, so
  /// that XORator can inline it everywhere. Hybrid uses the unduplicated
  /// graph (Figure 3).
  bool duplicate_shared_leaves = false;
};

/// The DTD graph over a simplified DTD.
class DtdGraph {
 public:
  [[nodiscard]] static Result<DtdGraph> Build(const SimplifiedDtd& dtd,
                                const DtdGraphOptions& options = {});

  const std::vector<GraphNode>& nodes() const { return nodes_; }
  const GraphNode& node(int i) const { return nodes_[i]; }

  /// Indices of nodes with no parents (document-root candidates).
  const std::vector<int>& roots() const { return roots_; }

  /// Node index by id; -1 if absent.
  int FindId(const std::string& id) const;

  /// Number of distinct parent nodes.
  int InDegree(int node) const {
    return static_cast<int>(nodes_[node].parents.size());
  }

  /// All nodes reachable from `node` via child edges, excluding `node`
  /// itself. Sets `*recursive` if `node` is reachable from itself.
  std::set<int> Descendants(int node, bool* recursive) const;

  /// True if `node` appears under a Star edge from at least one parent.
  bool BelowStar(int node) const;

  /// True if some child edge of `node` is a Star edge.
  bool HasStarredChild(int node) const;

  /// Renders nodes and edges for debugging.
  std::string ToString() const;

 private:
  std::vector<GraphNode> nodes_;
  std::vector<int> roots_;
};

}  // namespace xorator::dtdgraph

#endif  // XORATOR_DTDGRAPH_DTD_GRAPH_H_
