#include "dtdgraph/simplify.h"

namespace xorator::dtdgraph {

namespace {

// One < Optional < Star ordering on the simplified-occurrence lattice.
int Rank(Occurrence occ) {
  switch (occ) {
    case Occurrence::kOne:
      return 0;
    case Occurrence::kOptional:
      return 1;
    case Occurrence::kPlus:  // normalized to kStar before use
    case Occurrence::kStar:
      return 2;
  }
  return 2;
}

Occurrence Normalize(Occurrence occ) {
  return occ == Occurrence::kPlus ? Occurrence::kStar : occ;
}

// Occurrence of a child nested under an enclosing particle: anything under a
// Star becomes Star; under an Optional, a One becomes Optional.
Occurrence Multiply(Occurrence inner, Occurrence outer) {
  int r = std::max(Rank(Normalize(inner)), Rank(Normalize(outer)));
  switch (r) {
    case 0:
      return Occurrence::kOne;
    case 1:
      return Occurrence::kOptional;
    default:
      return Occurrence::kStar;
  }
}

struct Accumulator {
  SimplifiedElement* out;
  std::map<std::string, size_t> seen;  // child name -> index in out->children

  void AddChild(const std::string& name, Occurrence occ) {
    auto it = seen.find(name);
    if (it == seen.end()) {
      seen.emplace(name, out->children.size());
      out->children.push_back({name, occ});
    } else {
      // Grouping rule: a repeated subelement collapses to a starred one.
      out->children[it->second].occurrence = Occurrence::kStar;
    }
  }
};

void Collect(const xml::ContentParticle& p, Occurrence outer,
             Accumulator* acc) {
  switch (p.kind) {
    case xml::ContentParticle::Kind::kElementRef:
      acc->AddChild(p.name, Multiply(p.occurrence, outer));
      break;
    case xml::ContentParticle::Kind::kPCData:
      acc->out->has_pcdata = true;
      break;
    case xml::ContentParticle::Kind::kSequence: {
      Occurrence group = Multiply(p.occurrence, outer);
      for (const auto& c : p.children) Collect(*c, group, acc);
      break;
    }
    case xml::ContentParticle::Kind::kChoice: {
      // Each alternative of a choice is optional within one instance.
      Occurrence group =
          Multiply(Multiply(p.occurrence, outer), Occurrence::kOptional);
      for (const auto& c : p.children) Collect(*c, group, acc);
      break;
    }
  }
}

}  // namespace

const SimplifiedElement* SimplifiedDtd::Find(const std::string& name) const {
  auto it = index_.find(name);
  return it == index_.end() ? nullptr : &elements_[it->second];
}

std::vector<std::string> SimplifiedDtd::Roots() const {
  std::map<std::string, bool> referenced;
  for (const SimplifiedElement& e : elements_) {
    for (const ChildSpec& c : e.children) referenced[c.name] = true;
  }
  std::vector<std::string> out;
  for (const SimplifiedElement& e : elements_) {
    if (!referenced.count(e.name)) out.push_back(e.name);
  }
  return out;
}

void SimplifiedDtd::Add(SimplifiedElement elem) {
  index_.emplace(elem.name, elements_.size());
  elements_.push_back(std::move(elem));
}

Result<SimplifiedDtd> Simplify(const xml::Dtd& dtd) {
  std::vector<std::string> undeclared = dtd.UndeclaredReferences();
  if (!undeclared.empty()) {
    return Status::InvalidArgument("content model references undeclared element '" +
                                   undeclared.front() + "'");
  }
  SimplifiedDtd out;
  for (const auto& decl : dtd.elements()) {
    if (decl->content_kind == xml::ContentKind::kAny) {
      return Status::InvalidArgument("element '" + decl->name +
                                     "' has ANY content, which is unmappable");
    }
    SimplifiedElement elem;
    elem.name = decl->name;
    for (const xml::AttributeDecl& a : decl->attributes) {
      elem.attributes.push_back(a.name);
    }
    if (decl->content != nullptr) {
      Accumulator acc{&elem, {}};
      Collect(*decl->content, Occurrence::kOne, &acc);
    }
    out.Add(std::move(elem));
  }
  return out;
}

}  // namespace xorator::dtdgraph
