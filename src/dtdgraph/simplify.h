#ifndef XORATOR_DTDGRAPH_SIMPLIFY_H_
#define XORATOR_DTDGRAPH_SIMPLIFY_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "xml/dtd.h"

namespace xorator::dtdgraph {

/// Occurrence of a child element after simplification. `kPlus` never
/// survives simplification (the paper transforms e+ to e*).
using xml::Occurrence;

/// One child element of a simplified element declaration.
struct ChildSpec {
  std::string name;
  Occurrence occurrence = Occurrence::kOne;
};

/// An element declaration after applying the DTD-simplification rules of
/// Shanmugasundaram et al. (VLDB '99), as used in Section 3.1 of the paper:
///
///   * flattening:      (e1, e2)* -> e1*, e2*
///   * simplification:  e1**      -> e1*,   e+ -> e*
///   * grouping:        e0, e1, e1, e2 -> e0, e1*, e2
///   * choice:          (e1 | e2) -> e1?, e2?
///
/// The result is a flat, ordered list of distinct child names, each occurring
/// once / optionally / any number of times, plus a mixed-content flag.
struct SimplifiedElement {
  std::string name;
  bool has_pcdata = false;
  std::vector<ChildSpec> children;         // first-appearance order
  std::vector<std::string> attributes;     // declared attribute names
};

/// A whole simplified DTD, preserving declaration order.
class SimplifiedDtd {
 public:
  const std::vector<SimplifiedElement>& elements() const { return elements_; }
  const SimplifiedElement* Find(const std::string& name) const;

  /// Elements never referenced as a child: the document-root candidates.
  std::vector<std::string> Roots() const;

  void Add(SimplifiedElement elem);

 private:
  std::vector<SimplifiedElement> elements_;
  std::map<std::string, size_t> index_;
};

/// Applies the simplification rules to every declaration of `dtd`.
/// Fails with InvalidArgument if a content model references an undeclared
/// element (ANY content is rejected as unmappable).
[[nodiscard]] Result<SimplifiedDtd> Simplify(const xml::Dtd& dtd);

}  // namespace xorator::dtdgraph

#endif  // XORATOR_DTDGRAPH_SIMPLIFY_H_
