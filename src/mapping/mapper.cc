#include "mapping/mapper.h"

#include <functional>

#include <algorithm>
#include <map>
#include <set>

#include "common/str_util.h"
#include "mapping/xml_stats.h"
#include "dtdgraph/dtd_graph.h"

namespace xorator::mapping {

namespace {

using dtdgraph::DtdGraph;
using dtdgraph::GraphNode;
using dtdgraph::Occurrence;

/// Builder shared by every mapping algorithm: allocates tables, keeps column
/// names unique, and fills the bookkeeping maps used by the shredder.
class SchemaBuilder {
 public:
  explicit SchemaBuilder(std::string algorithm) {
    schema_.algorithm = std::move(algorithm);
  }

  TableSpec* AddTable(const std::string& element) {
    TableSpec table;
    table.name = UniqueTableName(SqlName(element));
    table.element = element;
    schema_.relation_of_element[element] = schema_.tables.size();
    schema_.tables.push_back(std::move(table));
    return &schema_.tables.back();
  }

  /// Adds the surrogate key and, for non-root tables, parent/order columns.
  void AddPrefixColumns(TableSpec* table, bool has_parent,
                        const std::vector<std::string>& parent_elements) {
    AddColumn(table, table->name + "ID", ColumnType::kInteger, ColumnRole::kId,
              {}, "");
    if (has_parent) {
      AddColumn(table, table->name + "_parentID", ColumnType::kInteger,
                ColumnRole::kParentId, {}, "");
      if (parent_elements.size() > 1) {
        AddColumn(table, table->name + "_parentCODE", ColumnType::kVarchar,
                  ColumnRole::kParentCode, {}, "");
      }
      AddColumn(table, table->name + "_childOrder", ColumnType::kInteger,
                ColumnRole::kChildOrder, {}, "");
    }
    schema_.parent_tables_of_element[table->element] = parent_elements;
  }

  void AddColumn(TableSpec* table, std::string name, ColumnType type,
                 ColumnRole role, std::vector<std::string> path,
                 std::string attr) {
    ColumnSpec col;
    col.name = UniqueColumnName(table, std::move(name));
    col.type = type;
    col.role = role;
    col.path = std::move(path);
    col.attr = std::move(attr);
    table->columns.push_back(std::move(col));
  }

  MappedSchema Finish() { return std::move(schema_); }

 private:
  std::string UniqueTableName(std::string base) {
    std::string name = base;
    int k = 1;
    while (used_tables_.count(name)) name = base + "_" + std::to_string(++k);
    used_tables_.insert(name);
    return name;
  }

  std::string UniqueColumnName(TableSpec* table, std::string base) {
    std::string name = base;
    int k = 1;
    while (table->ColumnIndex(name) >= 0) {
      name = base + "_" + std::to_string(++k);
    }
    return name;
  }

  MappedSchema schema_;
  std::set<std::string> used_tables_;
};

/// The relations whose tables can host a given element's instances: the
/// element's own relation, or (for an inlined element) the hosts of all its
/// parents. Memoized; cycles are broken by the in-progress guard (a cyclic
/// inlined chain always reaches a relation, which terminates the walk).
class HostResolver {
 public:
  HostResolver(const DtdGraph& graph, const std::set<int>& relations)
      : graph_(graph), relations_(relations) {}

  const std::set<int>& Hosts(int node) {
    auto it = memo_.find(node);
    if (it != memo_.end()) return it->second;
    auto [slot, inserted] = memo_.emplace(node, std::set<int>{});
    if (!inserted) return slot->second;
    if (relations_.count(node)) {
      slot->second.insert(node);
      return slot->second;
    }
    if (!in_progress_.insert(node).second) return slot->second;
    std::set<int> hosts;
    for (int p : graph_.node(node).parents) {
      const std::set<int>& ph = Hosts(p);
      hosts.insert(ph.begin(), ph.end());
    }
    in_progress_.erase(node);
    memo_[node] = std::move(hosts);
    return memo_[node];
  }

 private:
  const DtdGraph& graph_;
  const std::set<int>& relations_;
  std::map<int, std::set<int>> memo_;
  std::set<int> in_progress_;
};

std::vector<std::string> ParentElementsOf(const DtdGraph& graph,
                                          HostResolver* hosts, int node) {
  std::set<std::string> names;
  for (int p : graph.node(node).parents) {
    for (int h : hosts->Hosts(p)) names.insert(graph.node(h).element);
  }
  return {names.begin(), names.end()};
}

/// Emits inlined-value and attribute columns for `node` (already known to be
/// inlined into `table`), then recurses into its non-relation children.
/// `path` is the element path from the table's element down to `node`.
void EmitInlinedColumns(const DtdGraph& graph, const std::set<int>& relations,
                        SchemaBuilder* builder, TableSpec* table, int node,
                        std::vector<std::string>* path, int depth) {
  if (depth > 64) return;  // cycle guard; cyclic elements are relations
  const GraphNode& n = graph.node(node);
  std::string prefix = table->name;
  for (const std::string& step : *path) prefix += "_" + SqlName(step);
  if (n.has_pcdata) {
    builder->AddColumn(table, prefix, ColumnType::kVarchar,
                       ColumnRole::kInlinedValue, *path, "");
  }
  for (const std::string& attr : n.attributes) {
    builder->AddColumn(table, prefix + "_" + SqlName(attr),
                       ColumnType::kVarchar, ColumnRole::kInlinedAttr, *path,
                       attr);
  }
  for (const GraphNode::Edge& e : n.children) {
    if (relations.count(e.child)) continue;
    path->push_back(graph.node(e.child).element);
    EmitInlinedColumns(graph, relations, builder, table, e.child, path,
                       depth + 1);
    path->pop_back();
  }
}

/// Builds the final schema for the inlining family (Hybrid/Shared/
/// PerElement) given the chosen relation set.
MappedSchema BuildInlinedSchema(const DtdGraph& graph,
                                const std::set<int>& relations,
                                std::string algorithm) {
  SchemaBuilder builder(std::move(algorithm));
  HostResolver hosts(graph, relations);
  for (int r = 0; r < static_cast<int>(graph.nodes().size()); ++r) {
    if (!relations.count(r)) continue;
    const GraphNode& n = graph.node(r);
    TableSpec* table = builder.AddTable(n.element);
    std::vector<std::string> parent_elements =
        ParentElementsOf(graph, &hosts, r);
    builder.AddPrefixColumns(table, !n.parents.empty(), parent_elements);
    if (n.has_pcdata) {
      builder.AddColumn(table, table->name + "_value", ColumnType::kVarchar,
                        ColumnRole::kValue, {}, "");
    }
    for (const std::string& attr : n.attributes) {
      builder.AddColumn(table, table->name + "_" + SqlName(attr),
                        ColumnType::kVarchar, ColumnRole::kInlinedAttr, {},
                        attr);
    }
    for (const GraphNode::Edge& e : n.children) {
      if (relations.count(e.child)) continue;
      std::vector<std::string> path = {graph.node(e.child).element};
      EmitInlinedColumns(graph, relations, &builder, table, e.child, &path, 0);
    }
  }
  return builder.Finish();
}

/// True if `node` can reach itself via child edges.
bool IsRecursive(const DtdGraph& graph, int node) {
  bool recursive = false;
  graph.Descendants(node, &recursive);
  return recursive;
}

std::set<int> InliningRelations(const DtdGraph& graph, bool shared_variant) {
  std::set<int> relations;
  const auto& nodes = graph.nodes();
  std::vector<bool> recursive(nodes.size());
  for (int i = 0; i < static_cast<int>(nodes.size()); ++i) {
    recursive[i] = IsRecursive(graph, i);
  }
  for (int i = 0; i < static_cast<int>(nodes.size()); ++i) {
    bool is_root = nodes[i].parents.empty();
    if (is_root || graph.BelowStar(i) || graph.HasStarredChild(i) ||
        (recursive[i] && graph.InDegree(i) > 1) ||
        (shared_variant && graph.InDegree(i) > 1)) {
      relations.insert(i);
    }
  }
  // One relation per mutually-recursive cycle whose members are all
  // in-degree 1: pick the first such node (declaration order) whose cycle
  // holds no relation yet.
  for (int i = 0; i < static_cast<int>(nodes.size()); ++i) {
    if (!recursive[i] || relations.count(i)) continue;
    bool unused = false;
    std::set<int> reach = graph.Descendants(i, &unused);
    bool cycle_has_relation = false;
    for (int m : reach) {
      if (!relations.count(m)) continue;
      bool m_reaches_i = false;
      std::set<int> back = graph.Descendants(m, &m_reaches_i);
      if (back.count(i) || m == i) {
        cycle_has_relation = true;
        break;
      }
    }
    if (!cycle_has_relation) relations.insert(i);
  }
  return relations;
}

}  // namespace

Result<MappedSchema> MapHybrid(const dtdgraph::SimplifiedDtd& dtd) {
  XO_ASSIGN_OR_RETURN(DtdGraph graph,
                      DtdGraph::Build(dtd, {.duplicate_shared_leaves = false}));
  return BuildInlinedSchema(graph, InliningRelations(graph, false), "hybrid");
}

Result<MappedSchema> MapShared(const dtdgraph::SimplifiedDtd& dtd) {
  XO_ASSIGN_OR_RETURN(DtdGraph graph,
                      DtdGraph::Build(dtd, {.duplicate_shared_leaves = false}));
  return BuildInlinedSchema(graph, InliningRelations(graph, true), "shared");
}

Result<MappedSchema> MapPerElement(const dtdgraph::SimplifiedDtd& dtd) {
  XO_ASSIGN_OR_RETURN(DtdGraph graph,
                      DtdGraph::Build(dtd, {.duplicate_shared_leaves = false}));
  std::set<int> relations;
  for (int i = 0; i < static_cast<int>(graph.nodes().size()); ++i) {
    relations.insert(i);
  }
  return BuildInlinedSchema(graph, relations, "per_element");
}

namespace {

/// Shared XORator construction: `fragment_ok` lets the tuned variant veto
/// XADT eligibility per node (based on XML data statistics).
Result<MappedSchema> BuildXoratorSchema(
    const DtdGraph& graph,
    const std::function<bool(const GraphNode&)>& fragment_ok) {
  const auto& nodes = graph.nodes();

  // Rule 1 eligibility: a non-leaf node is XADT-eligible iff it has a single
  // parent, is not recursive, and no node outside its subtree points into it.
  auto eligible = [&](int n) {
    if (nodes[n].is_leaf()) return false;
    if (graph.InDegree(n) > 1) return false;
    if (!fragment_ok(nodes[n])) return false;
    bool recursive = false;
    std::set<int> subtree = graph.Descendants(n, &recursive);
    if (recursive) return false;
    subtree.insert(n);
    for (int d : subtree) {
      if (d == n) continue;
      for (int p : nodes[d].parents) {
        if (!subtree.count(p)) return false;
      }
    }
    return true;
  };

  // Relations: closure from the roots; a non-leaf child that is not
  // XADT-eligible becomes a relation itself (Rule 2 plus the ancestor rule).
  std::set<int> relations;
  std::vector<int> work(graph.roots());
  if (work.empty() && !nodes.empty()) {
    // A fully-recursive DTD has no parentless element; seed with the first
    // declared element as the document root.
    work.push_back(0);
  }
  for (int r : work) relations.insert(r);
  while (!work.empty()) {
    int r = work.back();
    work.pop_back();
    for (const GraphNode::Edge& e : nodes[r].children) {
      int c = e.child;
      if (nodes[c].is_leaf() || eligible(c)) continue;
      if (relations.insert(c).second) work.push_back(c);
    }
  }

  SchemaBuilder builder("xorator");
  for (int r = 0; r < static_cast<int>(nodes.size()); ++r) {
    if (!relations.count(r)) continue;
    const GraphNode& n = nodes[r];
    TableSpec* table = builder.AddTable(n.element);
    // Every parent of a relation is itself a relation under XORator.
    std::set<std::string> parent_set;
    for (int p : n.parents) parent_set.insert(nodes[p].element);
    std::vector<std::string> parent_elements(parent_set.begin(),
                                             parent_set.end());
    builder.AddPrefixColumns(table, !n.parents.empty(), parent_elements);
    if (n.has_pcdata) {
      builder.AddColumn(table, table->name + "_value", ColumnType::kVarchar,
                        ColumnRole::kValue, {}, "");
    }
    for (const std::string& attr : n.attributes) {
      builder.AddColumn(table, table->name + "_" + SqlName(attr),
                        ColumnType::kVarchar, ColumnRole::kInlinedAttr, {},
                        attr);
    }
    for (const GraphNode::Edge& e : n.children) {
      const GraphNode& c = nodes[e.child];
      if (relations.count(e.child)) continue;
      std::string base = table->name + "_" + SqlName(c.element);
      if (!c.is_leaf()) {
        // Rule 1: the whole subtree becomes one XADT attribute.
        builder.AddColumn(table, base, ColumnType::kXadt,
                          ColumnRole::kXadtFragment, {c.element}, "");
        continue;
      }
      if (e.occurrence == Occurrence::kStar) {
        // Rule 3, starred leaf: XADT attribute holding all occurrences.
        builder.AddColumn(table, base, ColumnType::kXadt,
                          ColumnRole::kXadtFragment, {c.element}, "");
        continue;
      }
      // Rule 3, non-starred leaf: plain string attribute (plus attributes).
      if (c.has_pcdata) {
        builder.AddColumn(table, base, ColumnType::kVarchar,
                          ColumnRole::kInlinedValue, {c.element}, "");
      }
      for (const std::string& attr : c.attributes) {
        builder.AddColumn(table, base + "_" + SqlName(attr),
                          ColumnType::kVarchar, ColumnRole::kInlinedAttr,
                          {c.element}, attr);
      }
    }
  }
  return builder.Finish();
}

}  // namespace

Result<MappedSchema> MapXorator(const dtdgraph::SimplifiedDtd& dtd) {
  XO_ASSIGN_OR_RETURN(DtdGraph graph,
                      DtdGraph::Build(dtd, {.duplicate_shared_leaves = true}));
  return BuildXoratorSchema(graph, [](const GraphNode&) { return true; });
}

Result<MappedSchema> MapXoratorTuned(const dtdgraph::SimplifiedDtd& dtd,
                                     const XmlStats& stats,
                                     const TunedOptions& options) {
  XO_ASSIGN_OR_RETURN(DtdGraph graph,
                      DtdGraph::Build(dtd, {.duplicate_shared_leaves = true}));
  auto schema = BuildXoratorSchema(graph, [&](const GraphNode& node) {
    const ElementStats* s = stats.Find(node.element);
    if (s == nullptr) return true;  // never observed: assume small
    if (options.max_fragment_bytes > 0 &&
        s->avg_subtree_bytes > options.max_fragment_bytes) {
      return false;
    }
    if (options.max_fragment_depth > 0 &&
        s->max_subtree_depth > options.max_fragment_depth) {
      return false;
    }
    return true;
  });
  if (schema.ok()) schema->algorithm = "xorator_tuned";
  return schema;
}

}  // namespace xorator::mapping
