#ifndef XORATOR_MAPPING_MAPPER_H_
#define XORATOR_MAPPING_MAPPER_H_

#include "common/result.h"
#include "dtdgraph/simplify.h"
#include "mapping/schema.h"
#include "mapping/xml_stats.h"

namespace xorator::mapping {

/// Hybrid inlining (Shanmugasundaram et al., VLDB '99), the paper's RDBMS
/// baseline. Creates a relation for:
///   * elements with in-degree zero (document roots),
///   * elements directly below a `*` operator,
///   * elements with a starred child (their starred children need a stable
///     parent key — this is the variant the paper's Figure 5 exhibits, where
///     INDUCT is a relation),
///   * recursive elements with in-degree > 1, and one element per
///     mutually-recursive cycle whose members all have in-degree 1.
/// All other elements are inlined into their nearest relation ancestor with
/// path-prefixed column names (e.g. act_title).
[[nodiscard]] Result<MappedSchema> MapHybrid(const dtdgraph::SimplifiedDtd& dtd);

/// XORator (Section 3.3 of the paper). Works on the revised DTD graph in
/// which shared PCDATA leaves are duplicated per parent, then applies:
///   1. a maximal subgraph entered only through its root element, with no
///      edge from outside into any descendant, becomes an XADT attribute of
///      the parent relation;
///   2. a non-leaf element that cannot be an XADT attribute becomes a
///      relation (and so do its ancestors);
///   3. a leaf below `*` becomes an XADT attribute; any other leaf becomes a
///      VARCHAR attribute.
[[nodiscard]] Result<MappedSchema> MapXorator(const dtdgraph::SimplifiedDtd& dtd);

/// "Shared" inlining from VLDB '99 (extension): like Hybrid, but every
/// element with in-degree greater than one also becomes a relation.
[[nodiscard]] Result<MappedSchema> MapShared(const dtdgraph::SimplifiedDtd& dtd);

/// Thresholds for the statistics-tuned XORator variant.
struct TunedOptions {
  /// XADT-eligible subtrees whose average serialized size exceeds this stay
  /// relations (0 disables the size rule).
  double max_fragment_bytes = 4096;
  /// Subtrees nesting deeper than this stay relations (0 disables).
  int max_fragment_depth = 6;
};

/// Statistics-tuned XORator (the paper's Section 5 future work: "expand the
/// mapping rules to accommodate ... the statistics of XML data, including
/// the number of levels and the size of the data that is in an XML
/// fragment"): rule 1 assigns a subtree to an XADT attribute only when the
/// sampled data says its fragments stay small and shallow; oversized
/// subtrees keep the relational treatment so queries inside them can use
/// joins and indexes.
[[nodiscard]] Result<MappedSchema> MapXoratorTuned(const dtdgraph::SimplifiedDtd& dtd,
                                     const XmlStats& stats,
                                     const TunedOptions& options = {});

/// One relation per element (extension): the edge-style mapping in the
/// spirit of Monet XML / Shimura et al., which the paper's related-work
/// section contrasts against (95 tables for the Shakespeare DTD). Useful as
/// an extreme baseline for table-count and join-count comparisons.
[[nodiscard]] Result<MappedSchema> MapPerElement(const dtdgraph::SimplifiedDtd& dtd);

}  // namespace xorator::mapping

#endif  // XORATOR_MAPPING_MAPPER_H_
