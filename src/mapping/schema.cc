#include "mapping/schema.h"

#include "common/str_util.h"

namespace xorator::mapping {

std::string_view ColumnTypeName(ColumnType t) {
  switch (t) {
    case ColumnType::kInteger:
      return "INTEGER";
    case ColumnType::kVarchar:
      return "VARCHAR";
    case ColumnType::kXadt:
      return "XADT";
  }
  return "VARCHAR";
}

bool TableSpec::has_parent_code() const {
  return RoleIndex(ColumnRole::kParentCode) >= 0;
}

int TableSpec::ColumnIndex(std::string_view column_name) const {
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i].name == column_name) return static_cast<int>(i);
  }
  return -1;
}

int TableSpec::RoleIndex(ColumnRole role) const {
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i].role == role) return static_cast<int>(i);
  }
  return -1;
}

const TableSpec* MappedSchema::FindTable(std::string_view table_name) const {
  for (const TableSpec& t : tables) {
    if (t.name == table_name) return &t;
  }
  return nullptr;
}

const TableSpec* MappedSchema::TableForElement(std::string_view element) const {
  auto it = relation_of_element.find(std::string(element));
  if (it == relation_of_element.end()) return nullptr;
  return &tables[it->second];
}

bool MappedSchema::IsRelationElement(std::string_view element) const {
  return relation_of_element.count(std::string(element)) > 0;
}

std::string MappedSchema::ToDdl() const {
  std::string out;
  for (const TableSpec& t : tables) {
    out += "CREATE TABLE " + t.name + " (";
    for (size_t i = 0; i < t.columns.size(); ++i) {
      if (i > 0) out += ", ";
      out += t.columns[i].name;
      out += " ";
      out += ColumnTypeName(t.columns[i].type);
      if (t.columns[i].role == ColumnRole::kId) out += " PRIMARY KEY";
    }
    out += ");\n";
  }
  return out;
}

std::string SqlName(std::string_view element) {
  std::string out = ToLower(element);
  for (char& c : out) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_') c = '_';
  }
  return out;
}

}  // namespace xorator::mapping
