#ifndef XORATOR_MAPPING_SCHEMA_H_
#define XORATOR_MAPPING_SCHEMA_H_

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace xorator::mapping {

/// SQL column types used by the generated schemas. kXadt is the paper's XML
/// abstract data type (Section 3.4); under the Hybrid mapping it never
/// appears.
enum class ColumnType { kInteger, kVarchar, kXadt };

std::string_view ColumnTypeName(ColumnType t);

/// What a column stores; drives both DDL generation and shredding.
enum class ColumnRole {
  kId,           // surrogate primary key
  kParentId,     // foreign key to the parent tuple
  kParentCode,   // parent table discriminator (element name)
  kChildOrder,   // 1-based order among same-tag siblings
  kValue,        // PCDATA of the relation's own element
  kInlinedValue, // text content of an inlined descendant (path non-empty)
  kInlinedAttr,  // XML attribute of the element at `path` (may be empty path)
  kXadtFragment, // XML fragments of the child element at `path` (XADT)
};

/// One column of a generated table.
struct ColumnSpec {
  std::string name;
  ColumnType type = ColumnType::kVarchar;
  ColumnRole role = ColumnRole::kValue;
  /// Element path below the table's element for inlined/XADT columns.
  std::vector<std::string> path;
  /// Attribute name for kInlinedAttr.
  std::string attr;
};

/// One generated table; `element` is the DTD element it materializes.
struct TableSpec {
  std::string name;
  std::string element;
  std::vector<ColumnSpec> columns;

  bool has_parent_code() const;
  /// Index of the column named `name`, or -1.
  int ColumnIndex(std::string_view column_name) const;
  /// Index of the first column with the given role, or -1.
  int RoleIndex(ColumnRole role) const;
};

/// Result of running a mapping algorithm over a DTD.
struct MappedSchema {
  /// "hybrid" or "xorator"; informational.
  std::string algorithm;
  std::vector<TableSpec> tables;
  /// Element name -> index into `tables` for elements mapped to relations.
  std::map<std::string, size_t> relation_of_element;
  /// For each relation element, the element names of its possible parent
  /// tables (used to decide parentCODE values).
  std::map<std::string, std::vector<std::string>> parent_tables_of_element;

  const TableSpec* FindTable(std::string_view table_name) const;
  const TableSpec* TableForElement(std::string_view element) const;
  bool IsRelationElement(std::string_view element) const;

  /// SQL DDL (CREATE TABLE statements) for all tables.
  std::string ToDdl() const;
};

/// Lowercases an element name into a SQL identifier.
std::string SqlName(std::string_view element);

}  // namespace xorator::mapping

#endif  // XORATOR_MAPPING_SCHEMA_H_
