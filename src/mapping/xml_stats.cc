#include "mapping/xml_stats.h"

#include <functional>

#include "xml/serializer.h"

namespace xorator::mapping {

void XmlStats::AddDocument(const xml::Node& root) {
  ++documents_;
  // Depth-first walk computing serialized size and depth per element.
  std::function<int(const xml::Node&)> walk =
      [&](const xml::Node& elem) -> int {
    int depth = 0;
    for (const auto& child : elem.children()) {
      if (child->is_element()) {
        depth = std::max(depth, 1 + walk(*child));
      }
    }
    std::string text;
    xml::SerializeTo(elem, &text);
    Accumulator& acc = acc_[elem.name()];
    ++acc.instances;
    acc.total_bytes += text.size();
    acc.max_depth = std::max(acc.max_depth, depth);
    return depth;
  };
  if (root.is_element()) walk(root);
  // Refresh the published view.
  stats_.clear();
  for (const auto& [name, acc] : acc_) {
    ElementStats s;
    s.instances = acc.instances;
    s.avg_subtree_bytes = acc.instances == 0
                              ? 0
                              : static_cast<double>(acc.total_bytes) /
                                    static_cast<double>(acc.instances);
    s.max_subtree_depth = acc.max_depth;
    stats_[name] = s;
  }
}

const ElementStats* XmlStats::Find(const std::string& element) const {
  auto it = stats_.find(element);
  return it == stats_.end() ? nullptr : &it->second;
}

XmlStats CollectXmlStats(const std::vector<const xml::Node*>& documents) {
  XmlStats stats;
  for (const xml::Node* doc : documents) stats.AddDocument(*doc);
  return stats;
}

}  // namespace xorator::mapping
