#ifndef XORATOR_MAPPING_XML_STATS_H_
#define XORATOR_MAPPING_XML_STATS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "xml/dom.h"

namespace xorator::mapping {

/// Per-element statistics gathered from sample documents — the "statistics
/// of XML data, including the number of levels and the size of the data
/// that is in an XML fragment" that Section 5 of the paper plans to feed
/// into the mapping rules.
struct ElementStats {
  uint64_t instances = 0;
  /// Serialized bytes of the element's whole subtree, averaged.
  double avg_subtree_bytes = 0;
  /// Deepest element nesting below (self = 0).
  int max_subtree_depth = 0;
};

/// Statistics for every element name seen in the sampled documents.
class XmlStats {
 public:
  /// Accounts one document (call repeatedly over a sample).
  void AddDocument(const xml::Node& root);

  const ElementStats* Find(const std::string& element) const;
  const std::map<std::string, ElementStats>& elements() const {
    return stats_;
  }
  uint64_t documents() const { return documents_; }

 private:
  struct Accumulator {
    uint64_t instances = 0;
    uint64_t total_bytes = 0;
    int max_depth = 0;
  };

  std::map<std::string, ElementStats> stats_;
  std::map<std::string, Accumulator> acc_;
  uint64_t documents_ = 0;
};

/// Collects statistics over `documents`.
XmlStats CollectXmlStats(const std::vector<const xml::Node*>& documents);

}  // namespace xorator::mapping

#endif  // XORATOR_MAPPING_XML_STATS_H_
