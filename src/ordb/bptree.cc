#include "ordb/bptree.h"

#include "common/span.h"

namespace xorator::ordb {

namespace {

// Node layout, after the common checksummed page header (kPageHeaderBytes).
//   byte 0:      type (0 = leaf, 1 = internal)
//   bytes 2..3:  entry count (u16)
//   bytes 4..7:  leaf: next-leaf page id; internal: first child page id
// Leaf entries at offset 8:      (key u64, rid u64)            = 16 bytes
// Internal entries at offset 8:  (key u64, rid u64, child u32) = 20 bytes
// Internal separators are (key, rid) pairs so duplicate keys route
// deterministically; child[i] holds entries < separator[i], the extra
// child in the header holds the leftmost subtree.
constexpr size_t kNodeBase = kPageHeaderBytes;
constexpr size_t kEntryOffset = kNodeBase + 8;
constexpr size_t kLeafEntryBytes = 16;
constexpr size_t kInternalEntryBytes = 20;
constexpr size_t kLeafCapacity = (kPageSize - kEntryOffset) / kLeafEntryBytes;
constexpr size_t kInternalCapacity =
    (kPageSize - kEntryOffset) / kInternalEntryBytes;

struct EntryKey {
  uint64_t key;
  uint64_t rid;
  bool operator<(const EntryKey& o) const {
    return key != o.key ? key < o.key : rid < o.rid;
  }
};

// Node bytes are accessed through span.h only. Entry offsets are of the
// form kEntryOffset + i * entry_bytes with i < count; the count comes off
// disk, so every fetch runs ValidateBPlusTreeNode before the unchecked
// accessors below may trust it (a corrupt count would otherwise index past
// the 8 KB frame).
std::string_view NodeView(const char* node XO_LIFETIME_BOUND) {
  return std::string_view(node, kPageSize);
}
xo::MutableByteSpan NodeSpan(char* node XO_LIFETIME_BOUND) {
  return xo::MutableByteSpan(node, kPageSize);
}

bool IsLeaf(const char* node) {
  return xo::LoadFixedUnchecked<uint8_t>(NodeView(node), kNodeBase) == 0;
}
void SetLeaf(char* node, bool leaf) {
  xo::StoreFixedUnchecked<uint8_t>(NodeSpan(node), kNodeBase, leaf ? 0 : 1);
}
uint16_t Count(const char* node) {
  return xo::LoadFixedUnchecked<uint16_t>(NodeView(node), kNodeBase + 2);
}
void SetCount(char* node, uint16_t c) {
  xo::StoreFixedUnchecked(NodeSpan(node), kNodeBase + 2, c);
}
PageId Link(const char* node) {
  return xo::LoadFixedUnchecked<PageId>(NodeView(node), kNodeBase + 4);
}
void SetLink(char* node, PageId p) {
  xo::StoreFixedUnchecked(NodeSpan(node), kNodeBase + 4, p);
}

EntryKey LeafEntry(const char* node, size_t i) {
  const size_t off = kEntryOffset + i * kLeafEntryBytes;
  return EntryKey{xo::LoadFixedUnchecked<uint64_t>(NodeView(node), off),
                  xo::LoadFixedUnchecked<uint64_t>(NodeView(node), off + 8)};
}
void SetLeafEntry(char* node, size_t i, EntryKey e) {
  const size_t off = kEntryOffset + i * kLeafEntryBytes;
  xo::StoreFixedUnchecked(NodeSpan(node), off, e.key);
  xo::StoreFixedUnchecked(NodeSpan(node), off + 8, e.rid);
}

EntryKey InternalSep(const char* node, size_t i) {
  const size_t off = kEntryOffset + i * kInternalEntryBytes;
  return EntryKey{xo::LoadFixedUnchecked<uint64_t>(NodeView(node), off),
                  xo::LoadFixedUnchecked<uint64_t>(NodeView(node), off + 8)};
}
PageId InternalChild(const char* node, size_t i) {
  // child 0 lives in the header link; child i (i >= 1) follows separator i-1.
  if (i == 0) return Link(node);
  return xo::LoadFixedUnchecked<PageId>(
      NodeView(node), kEntryOffset + (i - 1) * kInternalEntryBytes + 16);
}
void SetInternalEntry(char* node, size_t i, EntryKey sep, PageId child) {
  const size_t off = kEntryOffset + i * kInternalEntryBytes;
  xo::StoreFixedUnchecked(NodeSpan(node), off, sep.key);
  xo::StoreFixedUnchecked(NodeSpan(node), off + 8, sep.rid);
  xo::StoreFixedUnchecked(NodeSpan(node), off + 16, child);
}

/// Shifts `n` entries of `entry_bytes` each from entry index `src` to
/// entry index `dst` (overlap-safe); kCorruption when either range would
/// escape the frame.
[[nodiscard]] Status ShiftEntries(char* node, size_t dst, size_t src,
                                  size_t n, size_t entry_bytes) {
  return xo::MoveWithin(NodeSpan(node), kEntryOffset + dst * entry_bytes,
                        kEntryOffset + src * entry_bytes, n * entry_bytes);
}

// First index i such that target < separator[i]; the search key descends
// into child i.
size_t ChildIndexFor(const char* node, EntryKey target) {
  size_t lo = 0, hi = Count(node);
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (target < InternalSep(node, mid)) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

// First leaf index i such that entry[i] >= target.
size_t LeafLowerBound(const char* node, EntryKey target) {
  size_t lo = 0, hi = Count(node);
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (LeafEntry(node, mid) < target) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace

Status ValidateBPlusTreeNode(std::string_view node) {
  if (node.size() != kPageSize) {
    return Status::Corruption("B+-tree node is not a full page");
  }
  const uint8_t type = xo::LoadFixedUnchecked<uint8_t>(node, kNodeBase);
  if (type > 1) {
    return Status::Corruption("unknown B+-tree node type " +
                              std::to_string(type));
  }
  const uint16_t count =
      xo::LoadFixedUnchecked<uint16_t>(node, kNodeBase + 2);
  const size_t capacity = type == 0 ? kLeafCapacity : kInternalCapacity;
  if (count > capacity) {
    return Status::Corruption("B+-tree node claims " + std::to_string(count) +
                              " entries, capacity is " +
                              std::to_string(capacity));
  }
  return Status::OK();
}

Result<BPlusTree> BPlusTree::Create(BufferPool* pool) {
  XO_ASSIGN_OR_RETURN(PageRef page, pool->Create());
  SetLeaf(page.data(), true);
  SetCount(page.data(), 0);
  SetLink(page.data(), kInvalidPageId);
  const PageId root = page.id();
  RETURN_IF_ERROR(page.Release());
  return BPlusTree(pool, root, 1, 0);
}

Result<BPlusTree::SplitResult> BPlusTree::InsertRecursive(PageId node_id,
                                                          uint64_t key,
                                                          uint64_t rid) {
  XO_ASSIGN_OR_RETURN(PageRef node_ref, pool_->Fetch(node_id));
  char* node = node_ref.data();
  RETURN_IF_ERROR(ValidateBPlusTreeNode(NodeView(node)));
  EntryKey entry{key, rid};
  if (IsLeaf(node)) {
    uint16_t count = Count(node);
    size_t pos = LeafLowerBound(node, entry);
    if (count < kLeafCapacity) {
      RETURN_IF_ERROR(
          ShiftEntries(node, pos + 1, pos, count - pos, kLeafEntryBytes));
      SetLeafEntry(node, pos, entry);
      SetCount(node, count + 1);
      node_ref.MarkDirty();
      RETURN_IF_ERROR(node_ref.Release());
      return SplitResult{};
    }
    // Split the leaf: left keeps the lower half.
    XO_ASSIGN_OR_RETURN(PageRef right_ref, pool_->Create());
    ++page_count_;
    char* right = right_ref.data();
    SetLeaf(right, true);
    size_t mid = count / 2;
    size_t right_count = count - mid;
    XO_ASSIGN_OR_RETURN(
        std::string_view upper_half,
        xo::ViewBytes(xo::SpanOf(NodeView(node)),
                      kEntryOffset + mid * kLeafEntryBytes,
                      right_count * kLeafEntryBytes));
    RETURN_IF_ERROR(xo::CopyInto(NodeSpan(right), kEntryOffset, upper_half));
    SetCount(right, static_cast<uint16_t>(right_count));
    SetLink(right, Link(node));
    SetCount(node, static_cast<uint16_t>(mid));
    SetLink(node, right_ref.id());
    // Insert into the proper half.
    char* target = pos <= mid ? node : right;
    size_t tpos = pos <= mid ? pos : pos - mid;
    uint16_t tcount = Count(target);
    RETURN_IF_ERROR(
        ShiftEntries(target, tpos + 1, tpos, tcount - tpos, kLeafEntryBytes));
    SetLeafEntry(target, tpos, entry);
    SetCount(target, tcount + 1);
    EntryKey sep = LeafEntry(right, 0);
    node_ref.MarkDirty();
    SplitResult out;
    out.split = true;
    out.separator = sep.key;
    out.right = right_ref.id();
    separator_rid_ = sep.rid;
    RETURN_IF_ERROR(right_ref.Release());
    RETURN_IF_ERROR(node_ref.Release());
    return out;
  }

  // Internal node.
  size_t child_idx = ChildIndexFor(node, entry);
  PageId child = InternalChild(node, child_idx);
  RETURN_IF_ERROR(node_ref.Release());
  XO_ASSIGN_OR_RETURN(SplitResult child_split,
                      InsertRecursive(child, key, rid));
  if (!child_split.split) return SplitResult{};

  EntryKey sep{child_split.separator, separator_rid_};
  PageId new_child = child_split.right;
  XO_ASSIGN_OR_RETURN(node_ref, pool_->Fetch(node_id));
  node = node_ref.data();
  RETURN_IF_ERROR(ValidateBPlusTreeNode(NodeView(node)));
  uint16_t count = Count(node);
  size_t pos = ChildIndexFor(node, sep);
  if (count < kInternalCapacity) {
    RETURN_IF_ERROR(
        ShiftEntries(node, pos + 1, pos, count - pos, kInternalEntryBytes));
    SetInternalEntry(node, pos, sep, new_child);
    SetCount(node, count + 1);
    node_ref.MarkDirty();
    RETURN_IF_ERROR(node_ref.Release());
    return SplitResult{};
  }
  // Split the internal node. Gather entries into a scratch array first.
  struct Item {
    EntryKey sep;
    PageId child;
  };
  std::vector<Item> items;
  items.reserve(count + 1);
  for (size_t i = 0; i < count; ++i) {
    items.push_back({InternalSep(node, i), InternalChild(node, i + 1)});
  }
  items.insert(items.begin() + pos, {sep, new_child});
  size_t mid = items.size() / 2;
  EntryKey up = items[mid].sep;

  XO_ASSIGN_OR_RETURN(PageRef right_ref, pool_->Create());
  ++page_count_;
  char* right = right_ref.data();
  SetLeaf(right, false);
  SetLink(right, items[mid].child);  // leftmost child of the right node
  uint16_t rcount = 0;
  for (size_t i = mid + 1; i < items.size(); ++i) {
    SetInternalEntry(right, rcount, items[i].sep, items[i].child);
    ++rcount;
  }
  SetCount(right, rcount);

  uint16_t lcount = 0;
  for (size_t i = 0; i < mid; ++i) {
    SetInternalEntry(node, lcount, items[i].sep, items[i].child);
    ++lcount;
  }
  SetCount(node, lcount);
  node_ref.MarkDirty();
  SplitResult out;
  out.split = true;
  out.separator = up.key;
  out.right = right_ref.id();
  separator_rid_ = up.rid;
  RETURN_IF_ERROR(right_ref.Release());
  RETURN_IF_ERROR(node_ref.Release());
  return out;
}

Status BPlusTree::Insert(uint64_t key, uint64_t rid) {
  XO_ASSIGN_OR_RETURN(SplitResult split, InsertRecursive(root_, key, rid));
  if (split.split) {
    XO_ASSIGN_OR_RETURN(PageRef page, pool_->Create());
    ++page_count_;
    char* node = page.data();
    SetLeaf(node, false);
    SetCount(node, 1);
    SetLink(node, root_);
    SetInternalEntry(node, 0, EntryKey{split.separator, separator_rid_},
                     split.right);
    const PageId new_root = page.id();
    RETURN_IF_ERROR(page.Release());
    root_ = new_root;
  }
  ++entry_count_;
  return Status::OK();
}

Result<PageId> BPlusTree::FindLeaf(uint64_t key) const {
  EntryKey target{key, 0};
  PageId cur = root_;
  while (true) {
    XO_ASSIGN_OR_RETURN(PageRef node, pool_->Fetch(cur));
    RETURN_IF_ERROR(ValidateBPlusTreeNode(NodeView(node.data())));
    if (IsLeaf(node.data())) {
      RETURN_IF_ERROR(node.Release());
      return cur;
    }
    PageId next = InternalChild(node.data(), ChildIndexFor(node.data(), target));
    RETURN_IF_ERROR(node.Release());
    cur = next;
  }
}

Result<std::vector<uint64_t>> BPlusTree::Find(uint64_t key) const {
  return FindRange(key, key);
}

Result<std::vector<uint64_t>> BPlusTree::FindRange(uint64_t lo,
                                                   uint64_t hi) const {
  std::vector<uint64_t> out;
  XO_ASSIGN_OR_RETURN(PageId leaf, FindLeaf(lo));
  EntryKey target{lo, 0};
  while (leaf != kInvalidPageId) {
    XO_ASSIGN_OR_RETURN(PageRef node_ref, pool_->Fetch(leaf));
    const char* node = node_ref.data();
    RETURN_IF_ERROR(ValidateBPlusTreeNode(NodeView(node)));
    uint16_t count = Count(node);
    size_t i = LeafLowerBound(node, target);
    bool done = false;
    for (; i < count; ++i) {
      EntryKey e = LeafEntry(node, i);
      if (e.key > hi) {
        done = true;
        break;
      }
      out.push_back(e.rid);
    }
    PageId next = Link(node);
    RETURN_IF_ERROR(node_ref.Release());
    if (done) break;
    leaf = next;
    target = EntryKey{0, 0};  // subsequent leaves: take from the start
  }
  return out;
}

Status BPlusTree::Delete(uint64_t key, uint64_t rid) {
  EntryKey target{key, rid};
  PageId cur = root_;
  while (true) {
    XO_ASSIGN_OR_RETURN(PageRef node_ref, pool_->Fetch(cur));
    char* node = node_ref.data();
    RETURN_IF_ERROR(ValidateBPlusTreeNode(NodeView(node)));
    if (!IsLeaf(node)) {
      PageId next = InternalChild(node, ChildIndexFor(node, target));
      RETURN_IF_ERROR(node_ref.Release());
      cur = next;
      continue;
    }
    uint16_t count = Count(node);
    size_t i = LeafLowerBound(node, target);
    if (i < count) {
      EntryKey e = LeafEntry(node, i);
      if (e.key == key && e.rid == rid) {
        RETURN_IF_ERROR(
            ShiftEntries(node, i, i + 1, count - i - 1, kLeafEntryBytes));
        SetCount(node, count - 1);
        node_ref.MarkDirty();
        RETURN_IF_ERROR(node_ref.Release());
        if (entry_count_ > 0) --entry_count_;
        return Status::OK();
      }
    }
    RETURN_IF_ERROR(node_ref.Release());
    return Status::NotFound("entry not in index");
  }
}

Status BPlusTree::CheckNode(PageId node_id, uint64_t lo, uint64_t hi,
                            int depth, int* leaf_depth) const {
  // The pre-PageRef version of this function juggled error precedence by
  // hand (a structural violation outranks the trailing unpin status); the
  // guard's destructor now releases the pin on the violation returns.
  XO_ASSIGN_OR_RETURN(PageRef node_ref, pool_->Fetch(node_id));
  const char* node = node_ref.data();
  RETURN_IF_ERROR(ValidateBPlusTreeNode(NodeView(node)));
  uint16_t count = Count(node);
  if (IsLeaf(node)) {
    if (*leaf_depth == -1) {
      *leaf_depth = depth;
    } else if (*leaf_depth != depth) {
      return Status::Internal("leaves at differing depths");
    }
    for (size_t i = 0; i < count; ++i) {
      EntryKey e = LeafEntry(node, i);
      if (e.key < lo || e.key > hi) {
        return Status::Internal("leaf key outside separator bounds");
      }
      if (i > 0 && e < LeafEntry(node, i - 1)) {
        return Status::Internal("leaf entries out of order");
      }
    }
    return node_ref.Release();
  }
  std::vector<std::pair<PageId, std::pair<uint64_t, uint64_t>>> children;
  uint64_t prev = lo;
  for (size_t i = 0; i < count; ++i) {
    EntryKey sep = InternalSep(node, i);
    if (sep.key < lo || sep.key > hi) {
      return Status::Internal("separator outside bounds");
    }
    if (i > 0 && sep < InternalSep(node, i - 1)) {
      return Status::Internal("separators out of order");
    }
    children.push_back({InternalChild(node, i), {prev, sep.key}});
    prev = sep.key;
  }
  children.push_back({InternalChild(node, count), {prev, hi}});
  RETURN_IF_ERROR(node_ref.Release());
  for (auto& [child, bounds] : children) {
    XO_RETURN_NOT_OK(
        CheckNode(child, bounds.first, bounds.second, depth + 1, leaf_depth));
  }
  return Status::OK();
}

Status BPlusTree::CheckInvariants() const {
  int leaf_depth = -1;
  return CheckNode(root_, 0, UINT64_MAX, 0, &leaf_depth);
}

}  // namespace xorator::ordb
