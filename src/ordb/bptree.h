#ifndef XORATOR_ORDB_BPTREE_H_
#define XORATOR_ORDB_BPTREE_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "ordb/buffer_pool.h"
#include "ordb/page.h"

namespace xorator::ordb {

/// Structural validation of one B+-tree node image (a full kPageSize
/// buffer): type byte is leaf/internal, entry count fits the node's
/// capacity. Every tree operation runs it on each node it fetches before
/// trusting the count — a corrupt count would otherwise index entries past
/// the 8 KB frame. Exposed for the page fuzzer and the adversarial bounds
/// tests. Fails closed with kCorruption.
[[nodiscard]] Status ValidateBPlusTreeNode(std::string_view node);

/// Order-preserving index key for INTEGER columns.
inline uint64_t IntIndexKey(int64_t v) {
  return static_cast<uint64_t>(v) ^ (1ULL << 63);
}

/// A paged B+-tree mapping fixed-size 64-bit keys to record ids.
///
/// Keys are 64-bit: integer columns use the order-preserving transform
/// above; string columns index a 64-bit hash (point lookups only, with the
/// executor rechecking the predicate on the heap tuple). Duplicate keys are
/// supported — entries are unique on (key, rid).
///
/// Deletion is "lazy": the entry is removed from its leaf but nodes are not
/// rebalanced, which is adequate for this engine's bulk-load-then-query
/// usage.
///
/// Thread safety: lookups (Find/FindRange) hold each node through a
/// PageRef guard from the (fully thread-safe) BufferPool and copy node
/// contents out before releasing it, so concurrent readers are safe.
/// Insert/Delete restructure nodes and update the inline counters and must
/// hold the Database statement lock exclusively (DESIGN.md section 10).
/// Every page access goes through a PageRef (DESIGN.md section 11): error
/// paths release pins via the guard's destructor, so no fault can leak a
/// pin and wedge eviction.
class BPlusTree {
 public:
  /// Creates an empty tree (allocates the root leaf).
  [[nodiscard]] static Result<BPlusTree> Create(BufferPool* pool);

  /// Re-attaches to an existing tree.
  BPlusTree(BufferPool* pool, PageId root, uint64_t page_count,
            uint64_t entry_count)
      : pool_(pool),
        root_(root),
        page_count_(page_count),
        entry_count_(entry_count) {}

  PageId root() const { return root_; }
  uint64_t page_count() const { return page_count_; }
  uint64_t bytes() const { return page_count_ * kPageSize; }
  uint64_t entry_count() const { return entry_count_; }

  [[nodiscard]] Status Insert(uint64_t key, uint64_t rid);

  /// Removes one (key, rid) entry; NotFound if absent.
  [[nodiscard]] Status Delete(uint64_t key, uint64_t rid);

  /// All rids whose key equals `key`.
  [[nodiscard]] Result<std::vector<uint64_t>> Find(uint64_t key) const;

  /// All rids with key in [lo, hi], in key order.
  [[nodiscard]] Result<std::vector<uint64_t>> FindRange(uint64_t lo, uint64_t hi) const;

  /// Structural invariant check for tests: keys sorted within nodes, leaf
  /// chain ordered, parent separators bound children.
  [[nodiscard]] Status CheckInvariants() const;

 private:
  struct SplitResult {
    bool split = false;
    uint64_t separator = 0;
    PageId right = kInvalidPageId;
  };

  [[nodiscard]] Result<SplitResult> InsertRecursive(PageId node, uint64_t key, uint64_t rid);
  [[nodiscard]] Result<PageId> FindLeaf(uint64_t key) const;
  [[nodiscard]] Status CheckNode(PageId node, uint64_t lo, uint64_t hi, int depth,
                   int* leaf_depth) const;

  BufferPool* pool_;
  PageId root_;
  uint64_t page_count_;
  uint64_t entry_count_;
  /// Rid half of the separator produced by the innermost split while an
  /// insert is unwinding (separators are (key, rid) pairs).
  uint64_t separator_rid_ = 0;
};

}  // namespace xorator::ordb

#endif  // XORATOR_ORDB_BPTREE_H_
