#include "ordb/buffer_pool.h"

#include <cassert>
#include <chrono>
#include <cstring>
#include <thread>

#include "ordb/health.h"
#include "ordb/query_guard.h"

namespace xorator::ordb {

BufferPool::BufferPool(Pager* pager, size_t capacity)
    : pager_(pager), capacity_(capacity == 0 ? 1 : capacity) {
  frames_.resize(capacity_);
}

BufferPool::~BufferPool() {
  // Quiescence sentinel: every pin is owned by a PageRef, so a non-zero
  // count here means a guard outlived the pool — a lifetime bug the
  // typestate cannot see (it tracks release order, not relative
  // lifetimes). Debug builds fail loudly instead of letting the guard's
  // destructor touch a dead pool.
  assert(PinnedFrameCount() == 0 &&
         "BufferPool destroyed while PageRef guards still hold pins");
}

void BufferPool::set_wal(Wal* wal) {
  xo::MutexLock lock(&mu_);
  wal_ = wal;
}

void BufferPool::set_health(EngineHealth* health) {
  xo::MutexLock lock(&mu_);
  health_ = health;
}

BufferPoolStats BufferPool::stats() const {
  xo::MutexLock lock(&mu_);
  BufferPoolStats out = stats_;
  out.quarantined_pages = quarantined_.size();
  return out;
}

bool BufferPool::IsQuarantined(PageId id) const {
  xo::MutexLock lock(&mu_);
  return quarantined_.count(id) > 0;
}

std::vector<PageId> BufferPool::QuarantinedPages() const {
  xo::MutexLock lock(&mu_);
  return std::vector<PageId>(quarantined_.begin(), quarantined_.end());
}

void BufferPool::ClearQuarantine() {
  xo::MutexLock lock(&mu_);
  quarantined_.clear();
}

void BufferPool::QuarantineLocked(PageId id) {
  if (!quarantined_.insert(id).second) return;
  if (health_ != nullptr) {
    health_->ReportDegraded("page " + std::to_string(id) +
                            " quarantined after a checksum failure");
  }
}

size_t BufferPool::PinnedFrameCount() const {
  xo::MutexLock lock(&mu_);
  size_t pinned = 0;
  for (const Frame& f : frames_) {
    if (f.pin_count > 0) ++pinned;
  }
  return pinned;
}

namespace {

/// Runs `op`, retrying retryable (Status::IsRetryable — transient
/// kUnavailable) failures with exponential backoff. Any other status —
/// including a retryable one once the attempts are exhausted — is returned
/// as-is; degradable failures (IOError/Corruption) are for the caller and
/// the health machine, not the retry loop (see the taxonomy in
/// common/status.h).
template <typename Op>
Status WithRetry(Op&& op, uint64_t* retries) {
  Status s;
  for (int attempt = 0; attempt <= BufferPool::kMaxIoRetries; ++attempt) {
    if (attempt > 0) {
      ++*retries;
      std::this_thread::sleep_for(std::chrono::microseconds(1u << attempt));
    }
    s = op();
    if (!s.IsRetryable()) return s;
  }
  return s;
}

}  // namespace

Status BufferPool::ReadRetry(PageId id, char* buf) {
  return WithRetry([&] { return pager_->Read(id, buf); }, &stats_.retries);
}

Status BufferPool::WriteRetry(PageId id, const char* buf) {
  return WithRetry([&] { return pager_->Write(id, buf); }, &stats_.retries);
}

bool BufferPool::WritebackFrozen() const {
  // Once the engine latches kReadOnly (or worse) on a journaled database,
  // the pre-image log is no longer trustworthy — the latch fired precisely
  // because a WAL append, sync, or checkpoint commit failed. Overwriting
  // any more on-disk pages could strand state that no rollback can undo,
  // so dirty frames stay resident until TryRecover() rebuilds the stack
  // (DESIGN.md §13). Memory-backed pools have no journal and no rollback
  // contract, so they are never frozen.
  if (wal_ == nullptr || health_ == nullptr) return false;
  const HealthState hs = health_->state();
  return hs == HealthState::kReadOnly || hs == HealthState::kFailed;
}

Status BufferPool::WriteBack(Frame& f) {
  if (WritebackFrozen()) {
    return Status::Unavailable(
        "engine is not writable; dirty page write-back is disabled until "
        "TryRecover()");
  }
  SetPageChecksum(f.data.get());
  if (wal_ != nullptr && f.page_id < wal_->checkpoint_page_count() &&
      !wal_->Logged(f.page_id)) {
    // Write-ahead rule: the page's current on-disk image must be durable
    // in the log before this epoch's first overwrite of it.
    if (scratch_ == nullptr) scratch_ = std::make_unique<char[]>(kPageSize);
    XO_RETURN_NOT_OK(ReadRetry(f.page_id, scratch_.get()));
    Status logged = wal_->LogPageImage(f.page_id, scratch_.get());
    if (!logged.ok()) {
      // Durability is gone: without the pre-image the engine cannot
      // guarantee rollback to the last checkpoint, so writes must stop
      // (DESIGN.md §13). Reads stay safe — nothing was overwritten.
      if (health_ != nullptr) {
        health_->ReportReadOnly("WAL append failed: " + logged.message());
      }
      return logged;
    }
  }
  Status wrote = WriteRetry(f.page_id, f.data.get());
  if (!wrote.ok()) {
    if (health_ != nullptr && wrote.IsDegradable()) {
      health_->ReportDegraded("write-back of page " +
                              std::to_string(f.page_id) +
                              " failed: " + wrote.message());
    }
    return wrote;
  }
  ++stats_.writebacks;
  return Status::OK();
}

Result<size_t> BufferPool::GetVictimFrame() {
  // While write-back is frozen (read-only engine), dirty frames are as
  // unevictable as pinned ones: reads keep flowing through clean frames.
  const bool frozen = WritebackFrozen();
  size_t victim = frames_.size();
  uint64_t oldest = UINT64_MAX;
  for (size_t i = 0; i < frames_.size(); ++i) {
    Frame& f = frames_[i];
    if (f.page_id == kInvalidPageId && f.pin_count == 0) return i;
    if (f.pin_count == 0 && (!frozen || !f.dirty) && f.last_used < oldest) {
      oldest = f.last_used;
      victim = i;
    }
  }
  if (victim == frames_.size()) {
    if (frozen) {
      return Status::Unavailable(
          "buffer pool exhausted: every unpinned frame is dirty and the "
          "engine is read-only; TryRecover() may re-arm it");
    }
    return Status::Internal("buffer pool exhausted: all frames pinned");
  }
  Frame& f = frames_[victim];
  if (f.dirty) {
    XO_RETURN_NOT_OK(WriteBack(f));
  }
  frame_of_page_.erase(f.page_id);
  f.page_id = kInvalidPageId;
  f.dirty = false;
  ++stats_.evictions;
  return victim;
}

Result<char*> BufferPool::FetchPage(PageId id) {
  xo::MutexLock lock(&mu_);
  if (quarantined_.count(id) > 0) {
    // Containment: the page already failed verification once; repeated
    // fetches fail fast without touching the disk (DESIGN.md §13).
    ++stats_.quarantine_hits;
    return Status::Corruption("page " + std::to_string(id) +
                              " is quarantined (earlier checksum failure)");
  }
  auto it = frame_of_page_.find(id);
  if (it != frame_of_page_.end()) {
    Frame& f = frames_[it->second];
    ++f.pin_count;
    f.last_used = ++clock_;
    ++stats_.hits;
    return f.data.get();
  }
  ++stats_.misses;
  XO_ASSIGN_OR_RETURN(size_t idx, GetVictimFrame());
  Frame& f = frames_[idx];
  if (f.data == nullptr) f.data = std::make_unique<char[]>(kPageSize);
  XO_RETURN_NOT_OK(ReadRetry(id, f.data.get()));
  if (!VerifyPageChecksum(f.data.get())) {
    ++stats_.checksum_failures;
    QuarantineLocked(id);
    return Status::Corruption("page " + std::to_string(id) +
                              " failed its checksum (torn write or bit rot)");
  }
  f.page_id = id;
  f.pin_count = 1;
  f.dirty = false;
  f.last_used = ++clock_;
  frame_of_page_[id] = idx;
  return f.data.get();
}

Result<std::pair<PageId, char*>> BufferPool::NewPage() {
  xo::MutexLock lock(&mu_);
  Result<PageId> alloc = pager_->Allocate();
  for (int attempt = 1;
       attempt <= kMaxIoRetries && alloc.status().IsRetryable(); ++attempt) {
    ++stats_.retries;
    std::this_thread::sleep_for(std::chrono::microseconds(1u << attempt));
    alloc = pager_->Allocate();
  }
  XO_ASSIGN_OR_RETURN(PageId id, std::move(alloc));
  XO_ASSIGN_OR_RETURN(size_t idx, GetVictimFrame());
  Frame& f = frames_[idx];
  if (f.data == nullptr) f.data = std::make_unique<char[]>(kPageSize);
  std::memset(f.data.get(), 0, kPageSize);
  f.page_id = id;
  f.pin_count = 1;
  f.dirty = true;
  f.last_used = ++clock_;
  frame_of_page_[id] = idx;
  return std::make_pair(id, f.data.get());
}

Status BufferPool::Unpin(PageId id, bool dirty) {
  xo::MutexLock lock(&mu_);
  auto it = frame_of_page_.find(id);
  if (it == frame_of_page_.end()) {
    return Status::InvalidArgument("Unpin of non-resident page " +
                                   std::to_string(id));
  }
  Frame& f = frames_[it->second];
  if (f.pin_count == 0) {
    return Status::InvalidArgument("unbalanced Unpin of page " +
                                   std::to_string(id));
  }
  --f.pin_count;
  f.dirty = f.dirty || dirty;
  return Status::OK();
}

Status BufferPool::FlushAll() {
  xo::MutexLock lock(&mu_);
  for (Frame& f : frames_) {
    if (f.page_id != kInvalidPageId && f.dirty) {
      XO_RETURN_NOT_OK(WriteBack(f));
      f.dirty = false;
    }
  }
  return Status::OK();
}

Result<ScrubReport> BufferPool::ScrubSlice(uint64_t max_pages) {
  xo::MutexLock lock(&mu_);
  ScrubReport report;
  const PageId total = pager_->page_count();
  if (total == 0 || max_pages == 0) {
    report.cursor = scrub_cursor_;
    report.wrapped = total == 0;
    return report;
  }
  if (scrub_cursor_ >= total) scrub_cursor_ = 0;
  if (scratch_ == nullptr) scratch_ = std::make_unique<char[]>(kPageSize);
  // Guard pacing: a PRAGMA scrub issued with a deadline or cancel token
  // unwinds between pages like any other scan (DESIGN.md §12/§13).
  QueryGuard* guard = CurrentGuard();
  for (uint64_t i = 0; i < max_pages; ++i) {
    if (guard != nullptr) RETURN_IF_ERROR(guard->CheckPoint());
    const PageId id = scrub_cursor_;
    ++report.pages_scanned;
    ++stats_.scrub_pages_scanned;
    if (quarantined_.count(id) > 0) {
      // Already contained; no point re-reading until recovery clears it.
      ++report.pages_bad;
    } else if (frame_of_page_.count(id) > 0) {
      ++report.pages_resident;
    } else {
      Status read = ReadRetry(id, scratch_.get());
      if (read.IsRetryable()) {
        // A transient-fault storm outlasted the bounded retries; surface
        // it so the caller can re-issue the slice later — the cursor has
        // not moved past this page.
        return read;
      }
      if (!read.ok() || !VerifyPageChecksum(scratch_.get())) {
        // A non-OK read (degradable IOError) and a bad checksum get the
        // same response: contain the page and keep scrubbing.
        QuarantineLocked(id);
        ++report.pages_bad;
        ++stats_.scrub_pages_bad;
      } else {
        ++report.pages_verified;
      }
    }
    ++scrub_cursor_;
    if (scrub_cursor_ >= total) {
      scrub_cursor_ = 0;
      report.wrapped = true;
      ++stats_.scrub_passes;
      break;  // a slice ends at the file boundary — one pass at a time
    }
  }
  report.cursor = scrub_cursor_;
  return report;
}

Status BufferPool::ReadForSalvage(PageId id, char* buf) {
  xo::MutexLock lock(&mu_);
  auto it = frame_of_page_.find(id);
  if (it != frame_of_page_.end()) {
    // Unreachable for quarantined pages (they are never resident), but a
    // salvage of a healthy page should still see the canonical bytes.
    std::memcpy(buf, frames_[it->second].data.get(), kPageSize);
    return Status::OK();
  }
  return ReadRetry(id, buf);
}

}  // namespace xorator::ordb
