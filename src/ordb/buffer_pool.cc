#include "ordb/buffer_pool.h"

#include <cstring>

namespace xorator::ordb {

BufferPool::BufferPool(Pager* pager, size_t capacity) : pager_(pager) {
  frames_.resize(capacity == 0 ? 1 : capacity);
}

Result<size_t> BufferPool::GetVictimFrame() {
  size_t victim = frames_.size();
  uint64_t oldest = UINT64_MAX;
  for (size_t i = 0; i < frames_.size(); ++i) {
    Frame& f = frames_[i];
    if (f.page_id == kInvalidPageId && f.pin_count == 0) return i;
    if (f.pin_count == 0 && f.last_used < oldest) {
      oldest = f.last_used;
      victim = i;
    }
  }
  if (victim == frames_.size()) {
    return Status::Internal("buffer pool exhausted: all frames pinned");
  }
  Frame& f = frames_[victim];
  if (f.dirty) {
    XO_RETURN_NOT_OK(pager_->Write(f.page_id, f.data.get()));
    ++stats_.writebacks;
  }
  frame_of_page_.erase(f.page_id);
  f.page_id = kInvalidPageId;
  f.dirty = false;
  ++stats_.evictions;
  return victim;
}

Result<char*> BufferPool::FetchPage(PageId id) {
  auto it = frame_of_page_.find(id);
  if (it != frame_of_page_.end()) {
    Frame& f = frames_[it->second];
    ++f.pin_count;
    f.last_used = ++clock_;
    ++stats_.hits;
    return f.data.get();
  }
  ++stats_.misses;
  XO_ASSIGN_OR_RETURN(size_t idx, GetVictimFrame());
  Frame& f = frames_[idx];
  if (f.data == nullptr) f.data = std::make_unique<char[]>(kPageSize);
  XO_RETURN_NOT_OK(pager_->Read(id, f.data.get()));
  f.page_id = id;
  f.pin_count = 1;
  f.dirty = false;
  f.last_used = ++clock_;
  frame_of_page_[id] = idx;
  return f.data.get();
}

Result<std::pair<PageId, char*>> BufferPool::NewPage() {
  XO_ASSIGN_OR_RETURN(PageId id, pager_->Allocate());
  XO_ASSIGN_OR_RETURN(size_t idx, GetVictimFrame());
  Frame& f = frames_[idx];
  if (f.data == nullptr) f.data = std::make_unique<char[]>(kPageSize);
  std::memset(f.data.get(), 0, kPageSize);
  f.page_id = id;
  f.pin_count = 1;
  f.dirty = true;
  f.last_used = ++clock_;
  frame_of_page_[id] = idx;
  return std::make_pair(id, f.data.get());
}

void BufferPool::Unpin(PageId id, bool dirty) {
  auto it = frame_of_page_.find(id);
  if (it == frame_of_page_.end()) return;
  Frame& f = frames_[it->second];
  if (f.pin_count > 0) --f.pin_count;
  f.dirty = f.dirty || dirty;
}

Status BufferPool::FlushAll() {
  for (Frame& f : frames_) {
    if (f.page_id != kInvalidPageId && f.dirty) {
      XO_RETURN_NOT_OK(pager_->Write(f.page_id, f.data.get()));
      f.dirty = false;
      ++stats_.writebacks;
    }
  }
  return Status::OK();
}

}  // namespace xorator::ordb
