#include "ordb/buffer_pool.h"

#include <cassert>
#include <chrono>
#include <cstring>
#include <thread>

namespace xorator::ordb {

BufferPool::BufferPool(Pager* pager, size_t capacity)
    : pager_(pager), capacity_(capacity == 0 ? 1 : capacity) {
  frames_.resize(capacity_);
}

BufferPool::~BufferPool() {
  // Quiescence sentinel: every pin is owned by a PageRef, so a non-zero
  // count here means a guard outlived the pool — a lifetime bug the
  // typestate cannot see (it tracks release order, not relative
  // lifetimes). Debug builds fail loudly instead of letting the guard's
  // destructor touch a dead pool.
  assert(PinnedFrameCount() == 0 &&
         "BufferPool destroyed while PageRef guards still hold pins");
}

void BufferPool::set_wal(Wal* wal) {
  xo::MutexLock lock(&mu_);
  wal_ = wal;
}

BufferPoolStats BufferPool::stats() const {
  xo::MutexLock lock(&mu_);
  return stats_;
}

size_t BufferPool::PinnedFrameCount() const {
  xo::MutexLock lock(&mu_);
  size_t pinned = 0;
  for (const Frame& f : frames_) {
    if (f.pin_count > 0) ++pinned;
  }
  return pinned;
}

namespace {

/// Runs `op`, retrying transient (kUnavailable) failures with exponential
/// backoff. Any other status — including kUnavailable once the attempts
/// are exhausted — is returned as-is.
template <typename Op>
Status WithRetry(Op&& op, uint64_t* retries) {
  Status s;
  for (int attempt = 0; attempt <= BufferPool::kMaxIoRetries; ++attempt) {
    if (attempt > 0) {
      ++*retries;
      std::this_thread::sleep_for(std::chrono::microseconds(1u << attempt));
    }
    s = op();
    if (s.code() != StatusCode::kUnavailable) return s;
  }
  return s;
}

}  // namespace

Status BufferPool::ReadRetry(PageId id, char* buf) {
  return WithRetry([&] { return pager_->Read(id, buf); }, &stats_.retries);
}

Status BufferPool::WriteRetry(PageId id, const char* buf) {
  return WithRetry([&] { return pager_->Write(id, buf); }, &stats_.retries);
}

Status BufferPool::WriteBack(Frame& f) {
  SetPageChecksum(f.data.get());
  if (wal_ != nullptr && f.page_id < wal_->checkpoint_page_count() &&
      !wal_->Logged(f.page_id)) {
    // Write-ahead rule: the page's current on-disk image must be durable
    // in the log before this epoch's first overwrite of it.
    if (scratch_ == nullptr) scratch_ = std::make_unique<char[]>(kPageSize);
    XO_RETURN_NOT_OK(ReadRetry(f.page_id, scratch_.get()));
    XO_RETURN_NOT_OK(wal_->LogPageImage(f.page_id, scratch_.get()));
  }
  XO_RETURN_NOT_OK(WriteRetry(f.page_id, f.data.get()));
  ++stats_.writebacks;
  return Status::OK();
}

Result<size_t> BufferPool::GetVictimFrame() {
  size_t victim = frames_.size();
  uint64_t oldest = UINT64_MAX;
  for (size_t i = 0; i < frames_.size(); ++i) {
    Frame& f = frames_[i];
    if (f.page_id == kInvalidPageId && f.pin_count == 0) return i;
    if (f.pin_count == 0 && f.last_used < oldest) {
      oldest = f.last_used;
      victim = i;
    }
  }
  if (victim == frames_.size()) {
    return Status::Internal("buffer pool exhausted: all frames pinned");
  }
  Frame& f = frames_[victim];
  if (f.dirty) {
    XO_RETURN_NOT_OK(WriteBack(f));
  }
  frame_of_page_.erase(f.page_id);
  f.page_id = kInvalidPageId;
  f.dirty = false;
  ++stats_.evictions;
  return victim;
}

Result<char*> BufferPool::FetchPage(PageId id) {
  xo::MutexLock lock(&mu_);
  auto it = frame_of_page_.find(id);
  if (it != frame_of_page_.end()) {
    Frame& f = frames_[it->second];
    ++f.pin_count;
    f.last_used = ++clock_;
    ++stats_.hits;
    return f.data.get();
  }
  ++stats_.misses;
  XO_ASSIGN_OR_RETURN(size_t idx, GetVictimFrame());
  Frame& f = frames_[idx];
  if (f.data == nullptr) f.data = std::make_unique<char[]>(kPageSize);
  XO_RETURN_NOT_OK(ReadRetry(id, f.data.get()));
  if (!VerifyPageChecksum(f.data.get())) {
    ++stats_.checksum_failures;
    return Status::Corruption("page " + std::to_string(id) +
                              " failed its checksum (torn write or bit rot)");
  }
  f.page_id = id;
  f.pin_count = 1;
  f.dirty = false;
  f.last_used = ++clock_;
  frame_of_page_[id] = idx;
  return f.data.get();
}

Result<std::pair<PageId, char*>> BufferPool::NewPage() {
  xo::MutexLock lock(&mu_);
  Result<PageId> alloc = pager_->Allocate();
  for (int attempt = 1; attempt <= kMaxIoRetries &&
                        alloc.status().code() == StatusCode::kUnavailable;
       ++attempt) {
    ++stats_.retries;
    std::this_thread::sleep_for(std::chrono::microseconds(1u << attempt));
    alloc = pager_->Allocate();
  }
  XO_ASSIGN_OR_RETURN(PageId id, std::move(alloc));
  XO_ASSIGN_OR_RETURN(size_t idx, GetVictimFrame());
  Frame& f = frames_[idx];
  if (f.data == nullptr) f.data = std::make_unique<char[]>(kPageSize);
  std::memset(f.data.get(), 0, kPageSize);
  f.page_id = id;
  f.pin_count = 1;
  f.dirty = true;
  f.last_used = ++clock_;
  frame_of_page_[id] = idx;
  return std::make_pair(id, f.data.get());
}

Status BufferPool::Unpin(PageId id, bool dirty) {
  xo::MutexLock lock(&mu_);
  auto it = frame_of_page_.find(id);
  if (it == frame_of_page_.end()) {
    return Status::InvalidArgument("Unpin of non-resident page " +
                                   std::to_string(id));
  }
  Frame& f = frames_[it->second];
  if (f.pin_count == 0) {
    return Status::InvalidArgument("unbalanced Unpin of page " +
                                   std::to_string(id));
  }
  --f.pin_count;
  f.dirty = f.dirty || dirty;
  return Status::OK();
}

Status BufferPool::FlushAll() {
  xo::MutexLock lock(&mu_);
  for (Frame& f : frames_) {
    if (f.page_id != kInvalidPageId && f.dirty) {
      XO_RETURN_NOT_OK(WriteBack(f));
      f.dirty = false;
    }
  }
  return Status::OK();
}

}  // namespace xorator::ordb
