#include "ordb/buffer_pool.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstring>
#include <thread>

#include "ordb/health.h"
#include "ordb/query_guard.h"

namespace xorator::ordb {

namespace {

/// One latch shard per this many frames, clamped to
/// [1, BufferPool::kMaxBuckets]. Pools smaller than one full bucket
/// (the fault-injection tests run capacities of 1–8) collapse to a single
/// bucket, which preserves the exact global LRU eviction order those tests
/// assert; production-sized pools (64+ frames) fan out.
size_t BucketCountFor(size_t capacity) {
  const size_t want = capacity / BufferPool::kMinFramesPerBucket;
  return std::clamp<size_t>(want, 1, BufferPool::kMaxBuckets);
}

}  // namespace

BufferPool::BufferPool(Pager* pager, size_t capacity)
    : pager_(pager),
      capacity_(capacity == 0 ? 1 : capacity),
      num_buckets_(BucketCountFor(capacity_)),
      buckets_(std::make_unique<Bucket[]>(num_buckets_)) {
  // Distribute the frame budget across buckets, earlier buckets taking the
  // remainder. Pages hash uniformly over buckets (id % num_buckets_), so a
  // near-even split keeps per-bucket eviction pressure balanced.
  const size_t base = capacity_ / num_buckets_;
  const size_t extra = capacity_ % num_buckets_;
  for (size_t i = 0; i < num_buckets_; ++i) {
    Bucket& b = buckets_[i];
    xo::MutexLock lock(&b.mu);
    b.frames.resize(base + (i < extra ? 1 : 0));
  }
}

BufferPool::~BufferPool() {
  // Quiescence sentinel: every pin is owned by a PageRef, so a non-zero
  // count here means a guard outlived the pool — a lifetime bug the
  // typestate cannot see (it tracks release order, not relative
  // lifetimes). Debug builds fail loudly instead of letting the guard's
  // destructor touch a dead pool.
  assert(PinnedFrameCount() == 0 &&
         "BufferPool destroyed while PageRef guards still hold pins");
}

void BufferPool::set_wal(Wal* wal) {
  for (size_t i = 0; i < num_buckets_; ++i) {
    xo::MutexLock lock(&buckets_[i].mu);
    buckets_[i].wal = wal;
  }
}

void BufferPool::set_health(EngineHealth* health) {
  for (size_t i = 0; i < num_buckets_; ++i) {
    xo::MutexLock lock(&buckets_[i].mu);
    buckets_[i].health = health;
  }
}

BufferPoolStats BufferPool::stats() const {
  BufferPoolStats out;
  for (size_t i = 0; i < num_buckets_; ++i) {
    const Bucket& b = buckets_[i];
    xo::MutexLock lock(&b.mu);
    out.hits += b.stats.hits;
    out.misses += b.stats.misses;
    out.evictions += b.stats.evictions;
    out.writebacks += b.stats.writebacks;
    out.checksum_failures += b.stats.checksum_failures;
    out.quarantine_hits += b.stats.quarantine_hits;
    out.quarantined_pages += b.quarantined.size();
  }
  {
    xo::MutexLock io(&io_mu_);
    out.retries = io_retries_;
  }
  {
    xo::MutexLock scrub(&scrub_mu_);
    out.scrub_pages_scanned = scrub_pages_scanned_;
    out.scrub_pages_bad = scrub_pages_bad_;
    out.scrub_passes = scrub_passes_;
  }
  return out;
}

bool BufferPool::IsQuarantined(PageId id) const {
  Bucket& b = BucketOf(id);
  xo::MutexLock lock(&b.mu);
  return b.quarantined.count(id) > 0;
}

std::vector<PageId> BufferPool::QuarantinedPages() const {
  std::vector<PageId> out;
  for (size_t i = 0; i < num_buckets_; ++i) {
    Bucket& b = buckets_[i];
    xo::MutexLock lock(&b.mu);
    out.insert(out.end(), b.quarantined.begin(), b.quarantined.end());
  }
  return out;
}

void BufferPool::ClearQuarantine() {
  for (size_t i = 0; i < num_buckets_; ++i) {
    xo::MutexLock lock(&buckets_[i].mu);
    buckets_[i].quarantined.clear();
  }
}

void BufferPool::QuarantineLocked(Bucket& b, PageId id) {
  if (!b.quarantined.insert(id).second) return;
  if (b.health != nullptr) {
    // EngineHealth's mutex is a leaf below the bucket rank, so reporting
    // from under the latch cannot invert the hierarchy.
    b.health->ReportDegraded("page " + std::to_string(id) +
                             " quarantined after a checksum failure");
  }
}

size_t BufferPool::PinnedFrameCount() const {
  size_t pinned = 0;
  for (size_t i = 0; i < num_buckets_; ++i) {
    const Bucket& b = buckets_[i];
    xo::MutexLock lock(&b.mu);
    for (const Frame& f : b.frames) {
      if (f.pin_count > 0) ++pinned;
    }
  }
  return pinned;
}

namespace {

/// Runs `op`, retrying retryable (Status::IsRetryable — transient
/// kUnavailable) failures with exponential backoff. Any other status —
/// including a retryable one once the attempts are exhausted — is returned
/// as-is; degradable failures (IOError/Corruption) are for the caller and
/// the health machine, not the retry loop (see the taxonomy in
/// common/status.h).
template <typename Op>
Status WithRetry(Op&& op, uint64_t* retries) {
  Status s;
  for (int attempt = 0; attempt <= BufferPool::kMaxIoRetries; ++attempt) {
    if (attempt > 0) {
      ++*retries;
      std::this_thread::sleep_for(std::chrono::microseconds(1u << attempt));
    }
    s = op();
    if (!s.IsRetryable()) return s;
  }
  return s;
}

}  // namespace

Status BufferPool::ReadRetry(PageId id, char* buf) {
  // The whole retry loop runs under io_mu_: the Pager is not internally
  // synchronized, and holding the latch across retries keeps the
  // fault-injection PRNG's draw order deterministic per logical operation.
  xo::MutexLock io(&io_mu_);
  return WithRetry([&] { return pager_->Read(id, buf); }, &io_retries_);
}

Status BufferPool::WriteRetry(PageId id, const char* buf) {
  xo::MutexLock io(&io_mu_);
  return WithRetry([&] { return pager_->Write(id, buf); }, &io_retries_);
}

bool BufferPool::WritebackFrozen(const Bucket& b) const {
  // Once the engine latches kReadOnly (or worse) on a journaled database,
  // the pre-image log is no longer trustworthy — the latch fired precisely
  // because a WAL append, sync, or checkpoint commit failed. Overwriting
  // any more on-disk pages could strand state that no rollback can undo,
  // so dirty frames stay resident until TryRecover() rebuilds the stack
  // (DESIGN.md §13). Memory-backed pools have no journal and no rollback
  // contract, so they are never frozen.
  if (b.wal == nullptr || b.health == nullptr) return false;
  const HealthState hs = b.health->state();
  return hs == HealthState::kReadOnly || hs == HealthState::kFailed;
}

Status BufferPool::WriteBack(Bucket& b, Frame& f) {
  if (WritebackFrozen(b)) {
    return Status::Unavailable(
        "engine is not writable; dirty page write-back is disabled until "
        "TryRecover()");
  }
  SetPageChecksum(f.data.get());
  if (b.wal != nullptr && f.page_id < b.wal->checkpoint_page_count() &&
      !b.wal->Logged(f.page_id)) {
    // Write-ahead rule: the page's current on-disk image must be durable
    // in the log before this epoch's first overwrite of it. Wal::mu_ sits
    // below the bucket rank, so logging from under the latch is in order.
    if (b.scratch == nullptr) b.scratch = std::make_unique<char[]>(kPageSize);
    XO_RETURN_NOT_OK(ReadRetry(f.page_id, b.scratch.get()));
    Status logged = b.wal->LogPageImage(f.page_id, b.scratch.get());
    if (!logged.ok()) {
      // Durability is gone: without the pre-image the engine cannot
      // guarantee rollback to the last checkpoint, so writes must stop
      // (DESIGN.md §13). Reads stay safe — nothing was overwritten.
      if (b.health != nullptr) {
        b.health->ReportReadOnly("WAL append failed: " + logged.message());
      }
      return logged;
    }
  }
  Status wrote = WriteRetry(f.page_id, f.data.get());
  if (!wrote.ok()) {
    if (b.health != nullptr && wrote.IsDegradable()) {
      b.health->ReportDegraded("write-back of page " +
                               std::to_string(f.page_id) +
                               " failed: " + wrote.message());
    }
    return wrote;
  }
  ++b.stats.writebacks;
  return Status::OK();
}

Result<size_t> BufferPool::GetVictimFrame(Bucket& b) {
  // While write-back is frozen (read-only engine), dirty frames are as
  // unevictable as pinned ones: reads keep flowing through clean frames.
  const bool frozen = WritebackFrozen(b);
  size_t victim = b.frames.size();
  uint64_t oldest = UINT64_MAX;
  for (size_t i = 0; i < b.frames.size(); ++i) {
    Frame& f = b.frames[i];
    if (f.page_id == kInvalidPageId && f.pin_count == 0) return i;
    if (f.pin_count == 0 && (!frozen || !f.dirty) && f.last_used < oldest) {
      oldest = f.last_used;
      victim = i;
    }
  }
  if (victim == b.frames.size()) {
    if (frozen) {
      return Status::Unavailable(
          "buffer pool exhausted: every unpinned frame is dirty and the "
          "engine is read-only; TryRecover() may re-arm it");
    }
    return Status::Internal("buffer pool exhausted: all frames pinned");
  }
  Frame& f = b.frames[victim];
  if (f.dirty) {
    XO_RETURN_NOT_OK(WriteBack(b, f));
  }
  b.frame_of_page.erase(f.page_id);
  f.page_id = kInvalidPageId;
  f.dirty = false;
  ++b.stats.evictions;
  return victim;
}

Result<char*> BufferPool::FetchPage(PageId id) {
  Bucket& b = BucketOf(id);
  xo::MutexLock lock(&b.mu);
  if (b.quarantined.count(id) > 0) {
    // Containment: the page already failed verification once; repeated
    // fetches fail fast without touching the disk (DESIGN.md §13).
    ++b.stats.quarantine_hits;
    return Status::Corruption("page " + std::to_string(id) +
                              " is quarantined (earlier checksum failure)");
  }
  auto it = b.frame_of_page.find(id);
  if (it != b.frame_of_page.end()) {
    Frame& f = b.frames[it->second];
    ++f.pin_count;
    f.last_used = ++b.clock;
    ++b.stats.hits;
    return f.data.get();
  }
  ++b.stats.misses;
  XO_ASSIGN_OR_RETURN(size_t idx, GetVictimFrame(b));
  Frame& f = b.frames[idx];
  if (f.data == nullptr) f.data = std::make_unique<char[]>(kPageSize);
  XO_RETURN_NOT_OK(ReadRetry(id, f.data.get()));
  if (!VerifyPageChecksum(f.data.get())) {
    ++b.stats.checksum_failures;
    QuarantineLocked(b, id);
    return Status::Corruption("page " + std::to_string(id) +
                              " failed its checksum (torn write or bit rot)");
  }
  f.page_id = id;
  f.pin_count = 1;
  f.dirty = false;
  f.last_used = ++b.clock;
  b.frame_of_page[id] = idx;
  return f.data.get();
}

Result<std::pair<PageId, char*>> BufferPool::NewPage() {
  // Allocation talks to the Pager, so it runs under io_mu_ — and must
  // finish before the bucket latch is taken: io_mu_ ranks below the
  // buckets, and the new page's bucket is unknown until the id exists.
  // The window between allocation and frame insertion is benign — no other
  // thread can name the page until this call returns its id.
  Result<PageId> alloc = [&]() -> Result<PageId> {
    xo::MutexLock io(&io_mu_);
    Result<PageId> r = pager_->Allocate();
    for (int attempt = 1;
         attempt <= kMaxIoRetries && r.status().IsRetryable(); ++attempt) {
      ++io_retries_;
      std::this_thread::sleep_for(std::chrono::microseconds(1u << attempt));
      r = pager_->Allocate();
    }
    return r;
  }();
  XO_ASSIGN_OR_RETURN(PageId id, std::move(alloc));
  Bucket& b = BucketOf(id);
  xo::MutexLock lock(&b.mu);
  XO_ASSIGN_OR_RETURN(size_t idx, GetVictimFrame(b));
  Frame& f = b.frames[idx];
  if (f.data == nullptr) f.data = std::make_unique<char[]>(kPageSize);
  std::memset(f.data.get(), 0, kPageSize);
  f.page_id = id;
  f.pin_count = 1;
  f.dirty = true;
  f.last_used = ++b.clock;
  b.frame_of_page[id] = idx;
  return std::make_pair(id, f.data.get());
}

Status BufferPool::Unpin(PageId id, bool dirty) {
  Bucket& b = BucketOf(id);
  xo::MutexLock lock(&b.mu);
  auto it = b.frame_of_page.find(id);
  if (it == b.frame_of_page.end()) {
    return Status::InvalidArgument("Unpin of non-resident page " +
                                   std::to_string(id));
  }
  Frame& f = b.frames[it->second];
  if (f.pin_count == 0) {
    return Status::InvalidArgument("unbalanced Unpin of page " +
                                   std::to_string(id));
  }
  --f.pin_count;
  f.dirty = f.dirty || dirty;
  return Status::OK();
}

Status BufferPool::FlushAll() {
  // Canonical cross-bucket order: ascending index, one bucket at a time.
  // A checkpoint holds the exclusive statement lock, so no new dirt can
  // appear in an already-flushed bucket while a later one is written.
  for (size_t i = 0; i < num_buckets_; ++i) {
    Bucket& b = buckets_[i];
    xo::MutexLock lock(&b.mu);
    for (Frame& f : b.frames) {
      if (f.page_id != kInvalidPageId && f.dirty) {
        XO_RETURN_NOT_OK(WriteBack(b, f));
        f.dirty = false;
      }
    }
  }
  return Status::OK();
}

Result<ScrubReport> BufferPool::ScrubSlice(uint64_t max_pages) {
  // scrub_mu_ (kBufferPoolMaint) is held for the whole slice: it owns the
  // cursor and the scratch page, and ranks above the bucket latches the
  // slice takes one page at a time.
  xo::MutexLock scrub(&scrub_mu_);
  ScrubReport report;
  PageId total = 0;
  {
    // page_count() is Pager state; like all pager access it needs io_mu_.
    xo::MutexLock io(&io_mu_);
    total = pager_->page_count();
  }
  if (total == 0 || max_pages == 0) {
    report.cursor = scrub_cursor_;
    report.wrapped = total == 0;
    return report;
  }
  if (scrub_cursor_ >= total) scrub_cursor_ = 0;
  if (scrub_scratch_ == nullptr) {
    scrub_scratch_ = std::make_unique<char[]>(kPageSize);
  }
  // Guard pacing: a PRAGMA scrub issued with a deadline or cancel token
  // unwinds between pages like any other scan (DESIGN.md §12/§13).
  QueryGuard* guard = CurrentGuard();
  for (uint64_t i = 0; i < max_pages; ++i) {
    if (guard != nullptr) RETURN_IF_ERROR(guard->CheckPoint());
    const PageId id = scrub_cursor_;
    ++report.pages_scanned;
    ++scrub_pages_scanned_;
    {
      // The page's bucket latch is held across the disk read: it excludes
      // a concurrent write-back of this very page, which could otherwise
      // present a torn half-written image to the verifier.
      Bucket& b = BucketOf(id);
      xo::MutexLock lock(&b.mu);
      if (b.quarantined.count(id) > 0) {
        // Already contained; no point re-reading until recovery clears it.
        ++report.pages_bad;
      } else if (b.frame_of_page.count(id) > 0) {
        ++report.pages_resident;
      } else {
        Status read = ReadRetry(id, scrub_scratch_.get());
        if (read.IsRetryable()) {
          // A transient-fault storm outlasted the bounded retries; surface
          // it so the caller can re-issue the slice later — the cursor has
          // not moved past this page.
          return read;
        }
        if (!read.ok() || !VerifyPageChecksum(scrub_scratch_.get())) {
          // A non-OK read (degradable IOError) and a bad checksum get the
          // same response: contain the page and keep scrubbing.
          QuarantineLocked(b, id);
          ++report.pages_bad;
          ++scrub_pages_bad_;
        } else {
          ++report.pages_verified;
        }
      }
    }
    ++scrub_cursor_;
    if (scrub_cursor_ >= total) {
      scrub_cursor_ = 0;
      report.wrapped = true;
      ++scrub_passes_;
      break;  // a slice ends at the file boundary — one pass at a time
    }
  }
  report.cursor = scrub_cursor_;
  return report;
}

Status BufferPool::ReadForSalvage(PageId id, char* buf) {
  Bucket& b = BucketOf(id);
  xo::MutexLock lock(&b.mu);
  auto it = b.frame_of_page.find(id);
  if (it != b.frame_of_page.end()) {
    // Unreachable for quarantined pages (they are never resident), but a
    // salvage of a healthy page should still see the canonical bytes.
    std::memcpy(buf, b.frames[it->second].data.get(), kPageSize);
    return Status::OK();
  }
  return ReadRetry(id, buf);
}

}  // namespace xorator::ordb
