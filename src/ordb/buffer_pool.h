#ifndef XORATOR_ORDB_BUFFER_POOL_H_
#define XORATOR_ORDB_BUFFER_POOL_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/result.h"
#include "common/thread_annotations.h"
#include "ordb/page.h"
#include "ordb/pager.h"
#include "ordb/wal.h"

namespace xorator::ordb {

/// Counters for buffer-pool behaviour, surfaced by benchmarks and the
/// fault-injection tests.
struct BufferPoolStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t writebacks = 0;
  /// Transient pager faults absorbed by the retry policy.
  uint64_t retries = 0;
  /// Pages rejected on fetch because their checksum did not verify.
  uint64_t checksum_failures = 0;
};

/// A fixed-capacity LRU buffer pool over a Pager.
///
/// Usage: FetchPage/NewPage pin a frame; callers must Unpin with the dirty
/// flag once done.
///
/// Thread safety: fully thread-safe. An internal mutex (`mu_`, statically
/// checked via Clang Thread Safety Analysis) guards the frame table, LRU
/// clock, pin counts and counters, and is held across the underlying pager
/// I/O, so the Pager itself needs no locking of its own. The `char*`
/// returned by FetchPage/NewPage is valid — and its frame immune to
/// eviction — until the matching Unpin; the pin count, not the mutex, is
/// what protects the page bytes. Writers of page contents must still be
/// mutually excluded from readers of the same page by a higher-level lock
/// (the Database statement lock: statements that mutate pages run
/// exclusively; see DESIGN.md section 10 for the lock hierarchy).
///
/// Durability duties (see DESIGN.md "Durability & fault tolerance"):
/// - every fetched page is checksum-verified (kCorruption on mismatch);
/// - every written-back page is checksum-stamped first;
/// - when a Wal is attached, a page's on-disk pre-image is logged before
///   its first write-back of the checkpoint epoch (write-ahead rule);
/// - pager operations failing with kUnavailable (transient faults) are
///   retried up to kMaxIoRetries times with exponential backoff.
class BufferPool {
 public:
  /// `capacity` is in pages.
  BufferPool(Pager* pager, size_t capacity);

  /// Attaches the write-ahead log consulted before write-backs. Pass
  /// nullptr to detach (memory-backed databases run without one).
  void set_wal(Wal* wal) XO_EXCLUDES(mu_);

  /// Returns a pinned pointer to the page contents.
  [[nodiscard]] Result<char*> FetchPage(PageId id) XO_EXCLUDES(mu_);

  /// Allocates a new page and returns it pinned (already zeroed).
  [[nodiscard]] Result<std::pair<PageId, char*>> NewPage() XO_EXCLUDES(mu_);

  /// Releases one pin on `id`, marking the frame dirty if `dirty`. Fails
  /// with kInvalidArgument on an unbalanced unpin (page not resident or
  /// not pinned) — always a caller bug, so propagate or discard with an
  /// annotation stating the invariant.
  [[nodiscard]] Status Unpin(PageId id, bool dirty) XO_EXCLUDES(mu_);

  /// Writes back all dirty frames.
  [[nodiscard]] Status FlushAll() XO_EXCLUDES(mu_);

  /// Snapshot of the counters (copied under the pool mutex).
  [[nodiscard]] BufferPoolStats stats() const XO_EXCLUDES(mu_);

  size_t capacity() const { return capacity_; }

  /// Attempts a pager op, absorbing up to this many transient faults.
  static constexpr int kMaxIoRetries = 4;

 private:
  struct Frame {
    PageId page_id = kInvalidPageId;
    std::unique_ptr<char[]> data;
    bool dirty = false;
    int pin_count = 0;
    uint64_t last_used = 0;
  };

  [[nodiscard]] Result<size_t> GetVictimFrame() XO_REQUIRES(mu_);
  /// Stamps the checksum, logs the WAL pre-image, writes the frame back.
  [[nodiscard]] Status WriteBack(Frame& frame) XO_REQUIRES(mu_);
  [[nodiscard]] Status ReadRetry(PageId id, char* buf) XO_REQUIRES(mu_);
  [[nodiscard]] Status WriteRetry(PageId id, const char* buf) XO_REQUIRES(mu_);

  Pager* const pager_;  // only touched under mu_ (or by Database exclusively)
  const size_t capacity_;

  /// Guards every mutable member below. Acquired after the Database
  /// statement lock and before Wal::mu_ (DESIGN.md section 10).
  mutable xo::Mutex mu_;
  Wal* wal_ XO_GUARDED_BY(mu_) = nullptr;
  std::vector<Frame> frames_ XO_GUARDED_BY(mu_);
  std::unordered_map<PageId, size_t> frame_of_page_ XO_GUARDED_BY(mu_);
  std::unique_ptr<char[]> scratch_ XO_GUARDED_BY(mu_);  // pre-image staging
  uint64_t clock_ XO_GUARDED_BY(mu_) = 0;
  BufferPoolStats stats_ XO_GUARDED_BY(mu_);
};

}  // namespace xorator::ordb

#endif  // XORATOR_ORDB_BUFFER_POOL_H_
