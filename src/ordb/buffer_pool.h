#ifndef XORATOR_ORDB_BUFFER_POOL_H_
#define XORATOR_ORDB_BUFFER_POOL_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "ordb/page.h"
#include "ordb/pager.h"

namespace xorator::ordb {

/// Counters for buffer-pool behaviour, surfaced by benchmarks.
struct BufferPoolStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t writebacks = 0;
};

/// A fixed-capacity LRU buffer pool over a Pager.
///
/// Usage: FetchPage/NewPage pin a frame; callers must Unpin with the dirty
/// flag once done. Not thread-safe (the engine is single-threaded by
/// design; see DESIGN.md).
class BufferPool {
 public:
  /// `capacity` is in pages.
  BufferPool(Pager* pager, size_t capacity);

  /// Returns a pinned pointer to the page contents.
  Result<char*> FetchPage(PageId id);

  /// Allocates a new page and returns it pinned (already zeroed).
  Result<std::pair<PageId, char*>> NewPage();

  void Unpin(PageId id, bool dirty);

  /// Writes back all dirty frames.
  Status FlushAll();

  const BufferPoolStats& stats() const { return stats_; }
  size_t capacity() const { return frames_.size(); }

 private:
  struct Frame {
    PageId page_id = kInvalidPageId;
    std::unique_ptr<char[]> data;
    bool dirty = false;
    int pin_count = 0;
    uint64_t last_used = 0;
  };

  Result<size_t> GetVictimFrame();

  Pager* pager_;
  std::vector<Frame> frames_;
  std::unordered_map<PageId, size_t> frame_of_page_;
  uint64_t clock_ = 0;
  BufferPoolStats stats_;
};

}  // namespace xorator::ordb

#endif  // XORATOR_ORDB_BUFFER_POOL_H_
