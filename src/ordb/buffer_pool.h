#ifndef XORATOR_ORDB_BUFFER_POOL_H_
#define XORATOR_ORDB_BUFFER_POOL_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "ordb/page.h"
#include "ordb/pager.h"
#include "ordb/wal.h"

namespace xorator::ordb {

/// Counters for buffer-pool behaviour, surfaced by benchmarks and the
/// fault-injection tests.
struct BufferPoolStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t writebacks = 0;
  /// Transient pager faults absorbed by the retry policy.
  uint64_t retries = 0;
  /// Pages rejected on fetch because their checksum did not verify.
  uint64_t checksum_failures = 0;
};

/// A fixed-capacity LRU buffer pool over a Pager.
///
/// Usage: FetchPage/NewPage pin a frame; callers must Unpin with the dirty
/// flag once done. Not thread-safe (the engine is single-threaded by
/// design; see DESIGN.md).
///
/// Durability duties (see DESIGN.md "Durability & fault tolerance"):
/// - every fetched page is checksum-verified (kCorruption on mismatch);
/// - every written-back page is checksum-stamped first;
/// - when a Wal is attached, a page's on-disk pre-image is logged before
///   its first write-back of the checkpoint epoch (write-ahead rule);
/// - pager operations failing with kUnavailable (transient faults) are
///   retried up to kMaxIoRetries times with exponential backoff.
class BufferPool {
 public:
  /// `capacity` is in pages.
  BufferPool(Pager* pager, size_t capacity);

  /// Attaches the write-ahead log consulted before write-backs. Pass
  /// nullptr to detach (memory-backed databases run without one).
  void set_wal(Wal* wal) { wal_ = wal; }

  /// Returns a pinned pointer to the page contents.
  [[nodiscard]] Result<char*> FetchPage(PageId id);

  /// Allocates a new page and returns it pinned (already zeroed).
  [[nodiscard]] Result<std::pair<PageId, char*>> NewPage();

  /// Releases one pin on `id`, marking the frame dirty if `dirty`. Fails
  /// with kInvalidArgument on an unbalanced unpin (page not resident or
  /// not pinned) — always a caller bug, so propagate or discard with an
  /// annotation stating the invariant.
  [[nodiscard]] Status Unpin(PageId id, bool dirty);

  /// Writes back all dirty frames.
  [[nodiscard]] Status FlushAll();

  const BufferPoolStats& stats() const { return stats_; }
  size_t capacity() const { return frames_.size(); }

  /// Attempts a pager op, absorbing up to this many transient faults.
  static constexpr int kMaxIoRetries = 4;

 private:
  struct Frame {
    PageId page_id = kInvalidPageId;
    std::unique_ptr<char[]> data;
    bool dirty = false;
    int pin_count = 0;
    uint64_t last_used = 0;
  };

  [[nodiscard]] Result<size_t> GetVictimFrame();
  /// Stamps the checksum, logs the WAL pre-image, writes the frame back.
  [[nodiscard]] Status WriteBack(Frame& frame);
  [[nodiscard]] Status ReadRetry(PageId id, char* buf);
  [[nodiscard]] Status WriteRetry(PageId id, const char* buf);

  Pager* pager_;
  Wal* wal_ = nullptr;
  std::vector<Frame> frames_;
  std::unordered_map<PageId, size_t> frame_of_page_;
  std::unique_ptr<char[]> scratch_;  // pre-image staging buffer
  uint64_t clock_ = 0;
  BufferPoolStats stats_;
};

}  // namespace xorator::ordb

#endif  // XORATOR_ORDB_BUFFER_POOL_H_
