#ifndef XORATOR_ORDB_BUFFER_POOL_H_
#define XORATOR_ORDB_BUFFER_POOL_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/lifetime.h"
#include "common/mutex.h"
#include "common/result.h"
#include "common/thread_annotations.h"
#include "common/typestate.h"
#include "ordb/page.h"
#include "ordb/pager.h"
#include "ordb/wal.h"

namespace xorator::ordb {

class EngineHealth;

/// Counters for buffer-pool behaviour, surfaced by benchmarks, the
/// fault-injection tests, PRAGMA health and the resilience stats line.
/// Aggregated across the pool's bucket shards by BufferPool::stats().
struct BufferPoolStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t writebacks = 0;
  /// Transient pager faults absorbed by the retry policy.
  uint64_t retries = 0;
  /// Pages rejected on fetch because their checksum did not verify.
  uint64_t checksum_failures = 0;
  /// Pages currently quarantined (fetches fail fast; DESIGN.md §13).
  uint64_t quarantined_pages = 0;
  /// Fetches rejected without disk I/O because the page was quarantined.
  uint64_t quarantine_hits = 0;
  /// Pages the scrubber has examined (cumulative across slices).
  uint64_t scrub_pages_scanned = 0;
  /// Pages the scrubber found bad and quarantined.
  uint64_t scrub_pages_bad = 0;
  /// Completed full passes of the scrub cursor over the file.
  uint64_t scrub_passes = 0;
};

/// What one BufferPool::ScrubSlice call did (PRAGMA scrub's result row).
struct ScrubReport {
  /// Pages examined in this slice (including resident/quarantined skips).
  uint64_t pages_scanned = 0;
  /// Non-resident pages whose on-disk checksum verified clean.
  uint64_t pages_verified = 0;
  /// Pages skipped because their canonical bytes are resident in the pool
  /// (the disk image may legitimately lag under WAL protection).
  uint64_t pages_resident = 0;
  /// Pages that failed verification in this slice; now quarantined.
  uint64_t pages_bad = 0;
  /// Where the incremental cursor stopped (the next slice resumes here).
  PageId cursor = 0;
  /// True when this slice reached the end of the file (a full pass
  /// completed since the cursor last wrapped).
  bool wrapped = false;
};

class BufferPool;

/// A move-only guard over one pin on one buffer-pool frame, returned by
/// BufferPool::Fetch / BufferPool::Create. Holding the guard keeps the
/// frame resident and its bytes (data()) valid; destruction releases the
/// pin, carrying the dirty bit recorded via MarkDirty(). Call Release()
/// instead of relying on the destructor where the unpin Status should
/// propagate.
///
/// The pin protocol is a compile-checked typestate (DESIGN.md section 11):
/// the class is XO_CONSUMABLE, so under Clang's `-Wconsumed` (an error on
/// every Clang build) touching a guard after Release() or after it was
/// moved from, and releasing it twice, fail the build. The page bytes may
/// be borrowed once (`char* p = ref.data()`) for tight loops, but the raw
/// pointer must not outlive the guard.
///
/// Guards must not outlive their BufferPool; at pool destruction (and at
/// every checkpoint) a debug sentinel asserts PinnedFrameCount() == 0.
///
/// The guard is also a gsl::Owner of its page bytes for Clang's lifetime
/// analysis (DESIGN.md section 14): data() is lifetime-bound to the guard,
/// so returning the bytes of a local or temporary guard is a compile error
/// on Clang builds.
class XO_CONSUMABLE(unconsumed) XO_GSL_OWNER(char) PageRef {
 public:
  /// An empty guard: holds no pin and starts life in the released
  /// (consumed) state, so the only legal next step is to move-assign a
  /// live guard into it.
  PageRef() XO_RETURN_TYPESTATE(consumed) {}

  PageRef(const PageRef&) = delete;
  PageRef& operator=(const PageRef&) = delete;

  /// Transfers the pin; `other` is left released (consumed, enforced by
  /// the analysis' built-in move tracking — deliberately un-annotated,
  /// see common/typestate.h).
  PageRef(PageRef&& other) noexcept
      : pool_(other.pool_),
        id_(other.id_),
        data_(other.data_),
        dirty_(other.dirty_) {
    other.pool_ = nullptr;
    other.data_ = nullptr;
  }

  /// Releases any pin this guard still holds, then adopts `other`'s.
  PageRef& operator=(PageRef&& other) noexcept;

  /// Releases the pin if it was never released explicitly. The unpin
  /// Status is discarded here (it can only fail on a protocol violation
  /// the typestate already rules out); use Release() to surface it.
  ~PageRef();

  /// The pinned page's id.
  [[nodiscard]] PageId id() const XO_CALLABLE_WHEN("unconsumed") {
    return id_;
  }

  /// The pinned page's bytes; valid until the pin is released. The pointer
  /// is lifetime-bound to this guard: escaping it past the guard (returning
  /// it, or borrowing from a temporary guard) is a compile error on Clang.
  [[nodiscard]] char* data() XO_CALLABLE_WHEN("unconsumed") XO_LIFETIME_BOUND {
    return data_;
  }
  [[nodiscard]] const char* data() const XO_CALLABLE_WHEN("unconsumed")
      XO_LIFETIME_BOUND {
    return data_;
  }

  /// Records that the page bytes were modified: the frame will be marked
  /// dirty (scheduled for write-back) when the pin is released. Pages from
  /// Create() start dirty; fetched pages start clean.
  void MarkDirty() XO_CALLABLE_WHEN("unconsumed") { dirty_ = true; }

  /// Releases the pin now and surfaces the Unpin Status. After this the
  /// guard is consumed: any further data()/MarkDirty()/Release() is a
  /// compile error under Clang and a no-op destructor at runtime.
  [[nodiscard]] Status Release() XO_CALLABLE_WHEN("unconsumed")
      XO_SET_TYPESTATE(consumed);

  /// True while the guard still holds its pin. Branching on it refines
  /// the static state: the taken branch is treated as unconsumed.
  [[nodiscard]] bool holds() const XO_TEST_TYPESTATE(unconsumed) {
    return pool_ != nullptr;
  }

 private:
  friend class BufferPool;

  PageRef(BufferPool* pool, PageId id, char* data, bool dirty)
      XO_RETURN_TYPESTATE(unconsumed)
      : pool_(pool), id_(id), data_(data), dirty_(dirty) {}

  /// Unpins and deliberately drops the Status (destructor / move-assign
  /// paths, which have nowhere to put it).
  void ReleaseQuietly();

  BufferPool* pool_ = nullptr;
  PageId id_ = kInvalidPageId;
  char* data_ = nullptr;
  bool dirty_ = false;
};

/// A fixed-capacity LRU buffer pool over a Pager, sharded into
/// independently-latched buckets (DESIGN.md section 15).
///
/// Usage: Fetch/Create return a PageRef guard holding one pin; the frame
/// stays resident until the guard is released (destructor or Release()),
/// and MarkDirty() on the guard schedules write-back. The raw
/// FetchPage/NewPage/Unpin protocol is private — PageRef is the only
/// caller (enforced by the `raw-pin` lint rule, tools/lint), so a leaked
/// or doubled pin is a compile error, not an eviction stall.
///
/// Thread safety: fully thread-safe. The frame table is sharded by page id
/// into bucket_count() buckets; each bucket carries its own latch
/// (`Bucket::mu`, statically checked via Clang Thread Safety Analysis)
/// over its frames, LRU clock, pin counts, quarantine set and counters, so
/// concurrent Fetch/Unpin on pages in different buckets never contend.
/// The Pager is NOT internally synchronized, so all pager I/O and
/// allocation funnels through one `io_mu_` below the bucket latches; the
/// incremental scrubber's cursor and scratch sit under `scrub_mu_` above
/// them (LockRank kBufferPoolMaint > kBufferPoolBucket > kPagerIo;
/// DESIGN.md section 10 has the full numeric hierarchy). Cross-bucket
/// operations (FlushAll, PinnedFrameCount, stats, the quarantine
/// snapshots, set_wal/set_health) visit buckets one at a time in canonical
/// ascending index order — the same-rank ordering the runtime lock-rank
/// detector enforces. The bytes behind a PageRef are valid — and the frame
/// immune to eviction — until the guard releases its pin; the pin count,
/// not the latch, is what protects the page bytes. Writers of page
/// contents must still be mutually excluded from readers of the same page
/// by a higher-level lock (the Database statement lock: statements that
/// mutate pages run exclusively; see DESIGN.md section 10).
///
/// Durability duties (see DESIGN.md "Durability & fault tolerance"):
/// - every fetched page is checksum-verified (kCorruption on mismatch);
/// - every written-back page is checksum-stamped first;
/// - when a Wal is attached, a page's on-disk pre-image is logged before
///   its first write-back of the checkpoint epoch (write-ahead rule);
/// - pager operations failing retryably (Status::IsRetryable, i.e.
///   transient kUnavailable faults) are retried up to kMaxIoRetries times
///   with exponential backoff.
///
/// Failure containment (DESIGN.md §13): a page that fails its checksum is
/// quarantined in its bucket — later fetches fail fast with kCorruption
/// and no disk I/O — and reported to the attached EngineHealth
/// (set_health) as degraded operation; a WAL-append failure during
/// write-back latches read-only mode. ScrubSlice() proactively
/// checksum-verifies the file in budgeted increments, feeding the same
/// per-bucket quarantine sets.
class BufferPool {
 public:
  /// `capacity` is in pages, distributed across the bucket shards. The
  /// bucket count scales with capacity (one bucket per kMinFramesPerBucket
  /// frames, capped at kMaxBuckets), so tiny test pools keep the exact
  /// single-latch eviction order while production-sized pools shard.
  BufferPool(Pager* pager, size_t capacity);

  /// Debug sentinel: asserts no pin outlived the pool (a leaked pin would
  /// have wedged eviction; with PageRef it means a guard outlived us).
  ~BufferPool();

  /// Attaches the write-ahead log consulted before write-backs (fanned out
  /// to every bucket). Pass nullptr to detach (memory-backed databases run
  /// without one).
  void set_wal(Wal* wal);

  /// Attaches the engine health machine that checksum failures and WAL
  /// write-back failures report to; nullptr detaches (tests that exercise
  /// the pool stand-alone).
  void set_health(EngineHealth* health);

  /// Pins `id` and returns its guard. The page starts clean: call
  /// MarkDirty() on the guard after modifying the bytes. Takes only the
  /// bucket latch that owns `id` (plus io_mu_ on a miss).
  [[nodiscard]] Result<PageRef> Fetch(PageId id);

  /// Allocates a new page (already zeroed) and returns its guard. The
  /// page starts dirty — it must reach disk even if never written to.
  [[nodiscard]] Result<PageRef> Create() XO_EXCLUDES(io_mu_);

  /// Writes back all dirty frames, bucket by bucket in canonical order.
  [[nodiscard]] Status FlushAll();

  /// Number of frames currently holding at least one pin, summed across
  /// buckets. Zero at every quiescent point (checkpoints, pool
  /// destruction); the fault-injection suite asserts this after each
  /// failed operation.
  [[nodiscard]] size_t PinnedFrameCount() const;

  /// Snapshot of the counters, aggregated bucket by bucket (each bucket
  /// copied under its latch; the sum is not a single atomic snapshot under
  /// concurrency, which only matters to tests that read it quiesced).
  [[nodiscard]] BufferPoolStats stats() const XO_EXCLUDES(io_mu_);

  /// True if `id` is currently quarantined (fetches of it fail fast).
  [[nodiscard]] bool IsQuarantined(PageId id) const;

  /// Snapshot of the quarantined page ids (unordered), across all buckets.
  [[nodiscard]] std::vector<PageId> QuarantinedPages() const;

  /// Empties every bucket's quarantine set. Called by Database::TryRecover
  /// after WAL recovery restored pre-images (the pages will be re-verified
  /// on their next fetch, and re-quarantined if still bad).
  void ClearQuarantine();

  /// Checksum-verifies up to `max_pages` on-disk pages starting at the
  /// persistent scrub cursor, quarantining failures (DESIGN.md §13). The
  /// cursor is a single page-id sequence over the whole file, so one pass
  /// sweeps every bucket's pages; each page is checked under its owning
  /// bucket's latch (excluding a concurrent write-back of that page).
  /// Pages resident in the pool are skipped (their canonical bytes are in
  /// memory); already-quarantined pages are not re-read. Paced by the
  /// thread's bound QueryGuard, if any: the slice unwinds at the guard's
  /// deadline/cancel like any other scan. The cursor survives between
  /// calls, so repeated slices walk the whole file incrementally.
  [[nodiscard]] Result<ScrubReport> ScrubSlice(uint64_t max_pages)
      XO_EXCLUDES(scrub_mu_);

  /// Best-effort raw read of `id` into `buf` (kPageSize bytes), bypassing
  /// both the quarantine check and checksum verification, and never
  /// caching the bytes. For salvage only: a skip-mode heap scan uses this
  /// to extract the next-page link from a quarantined chain page.
  [[nodiscard]] Status ReadForSalvage(PageId id, char* buf);

  size_t capacity() const { return capacity_; }

  /// Number of independently-latched bucket shards.
  size_t bucket_count() const { return num_buckets_; }

  /// Attempts a pager op, absorbing up to this many transient faults.
  static constexpr int kMaxIoRetries = 4;

  /// Sharding bounds: one bucket per this many frames of capacity...
  static constexpr size_t kMinFramesPerBucket = 8;
  /// ...up to this many buckets (diminishing returns past the thread
  /// counts the engine serves; keeps cross-bucket sweeps cheap).
  static constexpr size_t kMaxBuckets = 16;

 private:
  friend class PageRef;

  struct Frame {
    PageId page_id = kInvalidPageId;
    std::unique_ptr<char[]> data;
    bool dirty = false;
    int pin_count = 0;
    uint64_t last_used = 0;
  };

  /// One shard of the pool: a latch and everything it guards. Buckets live
  /// in one contiguous array (buckets_), so canonical ascending-index
  /// order is ascending-address order — the same-rank ordering the
  /// LockRank detector admits for kBufferPoolBucket.
  struct Bucket {
    /// This bucket's latch. Guards every member below and is held across
    /// the bucket's pager I/O (which additionally serializes on io_mu_).
    mutable xo::Mutex mu{xo::LockRank::kBufferPoolBucket};
    /// Per-bucket copy of the pool-wide WAL pointer (set_wal fans out).
    Wal* wal XO_GUARDED_BY(mu) = nullptr;
    /// Per-bucket copy of the fault sink; EngineHealth's own mutex is a
    /// leaf below the bucket rank, so reporting from under the latch
    /// cannot invert the hierarchy.
    EngineHealth* health XO_GUARDED_BY(mu) = nullptr;
    std::vector<Frame> frames XO_GUARDED_BY(mu);
    std::unordered_map<PageId, size_t> frame_of_page XO_GUARDED_BY(mu);
    std::unique_ptr<char[]> scratch XO_GUARDED_BY(mu);  // pre-image staging
    /// Pages of this bucket whose checksum failed; fetches fail fast until
    /// recovery clears the set (DESIGN.md §13 quarantine lifecycle).
    std::unordered_set<PageId> quarantined XO_GUARDED_BY(mu);
    uint64_t clock XO_GUARDED_BY(mu) = 0;
    BufferPoolStats stats XO_GUARDED_BY(mu);
  };

  /// The bucket owning `id` (pure hash; safe without any lock).
  Bucket& BucketOf(PageId id) const { return buckets_[id % num_buckets_]; }

  // The raw pin protocol. Private on purpose: every external pin flows
  // through a PageRef guard, so balance is structural. Only PageRef and
  // the Fetch/Create wrappers below may call these.
  [[nodiscard]] Result<char*> FetchPage(PageId id);
  [[nodiscard]] Result<std::pair<PageId, char*>> NewPage()
      XO_EXCLUDES(io_mu_);
  [[nodiscard]] Status Unpin(PageId id, bool dirty);

  [[nodiscard]] Result<size_t> GetVictimFrame(Bucket& b) XO_REQUIRES(b.mu);
  /// True when dirty write-back must stop: the engine latched kReadOnly or
  /// kFailed on a journaled pool, so the pre-image log cannot be trusted.
  [[nodiscard]] bool WritebackFrozen(const Bucket& b) const
      XO_REQUIRES(b.mu);
  /// Stamps the checksum, logs the WAL pre-image, writes the frame back.
  [[nodiscard]] Status WriteBack(Bucket& b, Frame& frame) XO_REQUIRES(b.mu);
  /// Pager reads/writes with bounded retry, serialized on io_mu_ (the
  /// Pager itself is not internally synchronized).
  [[nodiscard]] Status ReadRetry(PageId id, char* buf) XO_EXCLUDES(io_mu_);
  [[nodiscard]] Status WriteRetry(PageId id, const char* buf)
      XO_EXCLUDES(io_mu_);
  /// Adds `id` to its bucket's quarantine set and reports degraded health
  /// once.
  void QuarantineLocked(Bucket& b, PageId id) XO_REQUIRES(b.mu);

  Pager* const pager_;  // reached only under io_mu_ (see ReadRetry)
  const size_t capacity_;
  const size_t num_buckets_;
  /// The bucket shards, fixed at construction. A contiguous array so that
  /// index order and address order agree (see Bucket).
  const std::unique_ptr<Bucket[]> buckets_;

  /// Serializes all Pager access (I/O, allocation, page_count): the Pager
  /// is not internally synchronized, and before sharding it inherited
  /// mutual exclusion from the single pool latch. Rank kPagerIo — below
  /// the bucket latches, independent of Wal::mu_.
  mutable xo::Mutex io_mu_{xo::LockRank::kPagerIo};
  /// Transient pager faults absorbed across all buckets (stats().retries).
  uint64_t io_retries_ XO_GUARDED_BY(io_mu_) = 0;

  /// Guards the incremental scrubber's cursor, scratch page and counters.
  /// Rank kBufferPoolMaint — above the bucket latches, because a slice
  /// acquires each page's bucket latch while holding it.
  mutable xo::Mutex scrub_mu_{xo::LockRank::kBufferPoolMaint};
  /// Next page ScrubSlice examines; wraps at the end of the file.
  PageId scrub_cursor_ XO_GUARDED_BY(scrub_mu_) = 0;
  std::unique_ptr<char[]> scrub_scratch_ XO_GUARDED_BY(scrub_mu_);
  uint64_t scrub_pages_scanned_ XO_GUARDED_BY(scrub_mu_) = 0;
  uint64_t scrub_pages_bad_ XO_GUARDED_BY(scrub_mu_) = 0;
  uint64_t scrub_passes_ XO_GUARDED_BY(scrub_mu_) = 0;
};

// PageRef members that touch the pool (and the guard-returning wrappers)
// need BufferPool complete, so they are defined here, below the class —
// but kept in the header: guard construction and release sit on every
// page-access hot path, and inlining keeps the guard API at cost parity
// with the raw FetchPage/Unpin protocol it replaced (see the before/after
// numbers in bench/bench_engine_micro.cc).

inline void PageRef::ReleaseQuietly() {
  if (pool_ == nullptr) return;
  XO_DISCARD_STATUS(
      pool_->Unpin(id_, dirty_),
      "a PageRef is constructed pinned and released exactly once (the "
      "typestate and this null-out enforce it), so the unpin cannot be "
      "unbalanced; a destructor has nowhere to put a Status anyway");
  pool_ = nullptr;
  data_ = nullptr;
}

inline PageRef::~PageRef() { ReleaseQuietly(); }

inline PageRef& PageRef::operator=(PageRef&& other) noexcept {
  if (this != &other) {
    ReleaseQuietly();
    pool_ = other.pool_;
    id_ = other.id_;
    data_ = other.data_;
    dirty_ = other.dirty_;
    other.pool_ = nullptr;
    other.data_ = nullptr;
  }
  return *this;
}

inline Status PageRef::Release() {
  if (pool_ == nullptr) {
    // Unreachable under Clang (-Werror=consumed rejects the call); kept as
    // a runtime backstop for GCC builds.
    return Status::InvalidArgument("Release() of an empty PageRef");
  }
  Status s = pool_->Unpin(id_, dirty_);
  pool_ = nullptr;
  data_ = nullptr;
  return s;
}

inline Result<PageRef> BufferPool::Fetch(PageId id) {
  XO_ASSIGN_OR_RETURN(char* data, FetchPage(id));
  return PageRef(this, id, data, /*dirty=*/false);
}

inline Result<PageRef> BufferPool::Create() {
  XO_ASSIGN_OR_RETURN(auto page, NewPage());
  // A fresh page starts dirty: its zeroed image must reach disk even if
  // the caller never writes a byte (NewPage already marked the frame).
  return PageRef(this, page.first, page.second, /*dirty=*/true);
}

}  // namespace xorator::ordb

#endif  // XORATOR_ORDB_BUFFER_POOL_H_
