#include "ordb/catalog.h"

namespace xorator::ordb {

const IndexInfo* TableInfo::FindIndex(std::string_view column) const {
  for (const IndexInfo* idx : indexes) {
    if (idx->column == column) return idx;
  }
  return nullptr;
}

Result<TableInfo*> Catalog::CreateTable(const std::string& name,
                                        TableSchema schema, BufferPool* pool) {
  // The heap pages are allocated before taking the registry lock so the
  // buffer-pool mutex is never acquired under mu_ (lock hierarchy: the
  // catalog mutex is a leaf). A lost race on the name check only costs the
  // loser its freshly created (empty) heap.
  XO_ASSIGN_OR_RETURN(HeapFile heap, HeapFile::Create(pool));
  auto info = std::make_unique<TableInfo>();
  info->name = name;
  info->schema = std::move(schema);
  info->heap = std::make_unique<HeapFile>(heap);
  info->stats.columns.resize(info->schema.size());
  TableInfo* raw = info.get();
  xo::WriterLock lock(&mu_);
  if (table_by_name_.count(name)) {
    return Status::AlreadyExists("table '" + name + "' exists");
  }
  tables_.push_back(std::move(info));
  table_by_name_[name] = raw;
  return raw;
}

Result<IndexInfo*> Catalog::CreateIndex(const std::string& index_name,
                                        const std::string& table,
                                        const std::string& column,
                                        BufferPool* pool) {
  TableInfo* t = FindTable(table);
  if (t == nullptr) return Status::NotFound("no table '" + table + "'");
  int col = t->schema.ColumnIndex(column);
  if (col < 0) {
    return Status::NotFound("no column '" + column + "' in '" + table + "'");
  }
  if (t->FindIndex(column) != nullptr) {
    return Status::AlreadyExists("index on " + table + "(" + column +
                                 ") exists");
  }
  TypeId type = t->schema.columns[col].type;
  if (type == TypeId::kXadt) {
    return Status::InvalidArgument("cannot index an XADT column");
  }
  auto info = std::make_unique<IndexInfo>();
  info->name = index_name;
  info->table = table;
  info->column = column;
  info->column_index = col;
  info->key_type = type;
  // Root-page allocation happens before the registry lock (see
  // CreateTable); DDL is serialized by the exclusive statement lock, so
  // the FindIndex check above cannot be raced by another CreateIndex.
  XO_ASSIGN_OR_RETURN(BPlusTree tree, BPlusTree::Create(pool));
  info->tree = std::make_unique<BPlusTree>(tree);
  IndexInfo* raw = info.get();
  xo::WriterLock lock(&mu_);
  indexes_.push_back(std::move(info));
  t->indexes.push_back(raw);
  return raw;
}

Result<TableInfo*> Catalog::RestoreTable(std::unique_ptr<TableInfo> info) {
  xo::WriterLock lock(&mu_);
  if (table_by_name_.count(info->name)) {
    return Status::AlreadyExists("table '" + info->name + "' exists");
  }
  info->stats.columns.resize(info->schema.size());
  TableInfo* raw = info.get();
  tables_.push_back(std::move(info));
  table_by_name_[raw->name] = raw;
  return raw;
}

Result<IndexInfo*> Catalog::RestoreIndex(std::unique_ptr<IndexInfo> info) {
  xo::WriterLock lock(&mu_);
  TableInfo* t = FindTableLocked(info->table);
  if (t == nullptr) {
    return Status::Corruption("index '" + info->name +
                              "' references missing table '" + info->table +
                              "'");
  }
  IndexInfo* raw = info.get();
  indexes_.push_back(std::move(info));
  t->indexes.push_back(raw);
  return raw;
}

TableInfo* Catalog::FindTableLocked(std::string_view name) const {
  auto it = table_by_name_.find(name);
  return it == table_by_name_.end() ? nullptr : it->second;
}

TableInfo* Catalog::FindTable(std::string_view name) {
  xo::ReaderLock lock(&mu_);
  return FindTableLocked(name);
}

const TableInfo* Catalog::FindTable(std::string_view name) const {
  xo::ReaderLock lock(&mu_);
  return FindTableLocked(name);
}

std::vector<TableInfo*> Catalog::tables() const {
  xo::ReaderLock lock(&mu_);
  std::vector<TableInfo*> out;
  out.reserve(tables_.size());
  for (const auto& t : tables_) out.push_back(t.get());
  return out;
}

std::vector<IndexInfo*> Catalog::indexes() const {
  xo::ReaderLock lock(&mu_);
  std::vector<IndexInfo*> out;
  out.reserve(indexes_.size());
  for (const auto& i : indexes_) out.push_back(i.get());
  return out;
}

uint64_t Catalog::DataBytes() const {
  uint64_t bytes = 0;
  for (TableInfo* t : tables()) bytes += t->heap->bytes();
  return bytes;
}

uint64_t Catalog::IndexBytes() const {
  uint64_t bytes = 0;
  for (IndexInfo* i : indexes()) bytes += i->tree->bytes();
  return bytes;
}

void Catalog::Clear() {
  xo::WriterLock lock(&mu_);
  table_by_name_.clear();
  indexes_.clear();
  tables_.clear();
}

}  // namespace xorator::ordb
