#include "ordb/catalog.h"

namespace xorator::ordb {

const IndexInfo* TableInfo::FindIndex(std::string_view column) const {
  for (const IndexInfo* idx : indexes) {
    if (idx->column == column) return idx;
  }
  return nullptr;
}

Result<TableInfo*> Catalog::CreateTable(const std::string& name,
                                        TableSchema schema, BufferPool* pool) {
  if (table_by_name_.count(name)) {
    return Status::AlreadyExists("table '" + name + "' exists");
  }
  auto info = std::make_unique<TableInfo>();
  info->name = name;
  info->schema = std::move(schema);
  XO_ASSIGN_OR_RETURN(HeapFile heap, HeapFile::Create(pool));
  info->heap = std::make_unique<HeapFile>(heap);
  info->stats.columns.resize(info->schema.size());
  TableInfo* raw = info.get();
  tables_.push_back(std::move(info));
  table_by_name_[name] = raw;
  return raw;
}

Result<IndexInfo*> Catalog::CreateIndex(const std::string& index_name,
                                        const std::string& table,
                                        const std::string& column,
                                        BufferPool* pool) {
  TableInfo* t = FindTable(table);
  if (t == nullptr) return Status::NotFound("no table '" + table + "'");
  int col = t->schema.ColumnIndex(column);
  if (col < 0) {
    return Status::NotFound("no column '" + column + "' in '" + table + "'");
  }
  if (t->FindIndex(column) != nullptr) {
    return Status::AlreadyExists("index on " + table + "(" + column +
                                 ") exists");
  }
  TypeId type = t->schema.columns[col].type;
  if (type == TypeId::kXadt) {
    return Status::InvalidArgument("cannot index an XADT column");
  }
  auto info = std::make_unique<IndexInfo>();
  info->name = index_name;
  info->table = table;
  info->column = column;
  info->column_index = col;
  info->key_type = type;
  XO_ASSIGN_OR_RETURN(BPlusTree tree, BPlusTree::Create(pool));
  info->tree = std::make_unique<BPlusTree>(tree);
  IndexInfo* raw = info.get();
  indexes_.push_back(std::move(info));
  t->indexes.push_back(raw);
  return raw;
}

Result<TableInfo*> Catalog::RestoreTable(std::unique_ptr<TableInfo> info) {
  if (table_by_name_.count(info->name)) {
    return Status::AlreadyExists("table '" + info->name + "' exists");
  }
  info->stats.columns.resize(info->schema.size());
  TableInfo* raw = info.get();
  tables_.push_back(std::move(info));
  table_by_name_[raw->name] = raw;
  return raw;
}

Result<IndexInfo*> Catalog::RestoreIndex(std::unique_ptr<IndexInfo> info) {
  TableInfo* t = FindTable(info->table);
  if (t == nullptr) {
    return Status::Corruption("index '" + info->name +
                              "' references missing table '" + info->table +
                              "'");
  }
  IndexInfo* raw = info.get();
  indexes_.push_back(std::move(info));
  t->indexes.push_back(raw);
  return raw;
}

TableInfo* Catalog::FindTable(std::string_view name) {
  auto it = table_by_name_.find(name);
  return it == table_by_name_.end() ? nullptr : it->second;
}

const TableInfo* Catalog::FindTable(std::string_view name) const {
  auto it = table_by_name_.find(name);
  return it == table_by_name_.end() ? nullptr : it->second;
}

uint64_t Catalog::DataBytes() const {
  uint64_t bytes = 0;
  for (const auto& t : tables_) bytes += t->heap->bytes();
  return bytes;
}

uint64_t Catalog::IndexBytes() const {
  uint64_t bytes = 0;
  for (const auto& i : indexes_) bytes += i->tree->bytes();
  return bytes;
}

}  // namespace xorator::ordb
