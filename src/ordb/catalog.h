#ifndef XORATOR_ORDB_CATALOG_H_
#define XORATOR_ORDB_CATALOG_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/result.h"
#include "common/thread_annotations.h"
#include "ordb/bptree.h"
#include "ordb/heap_file.h"
#include "ordb/tuple.h"

namespace xorator::ordb {

/// Per-column statistics gathered by RunStats (the engine's "runstats").
struct ColumnStats {
  /// Estimated number of distinct values.
  double ndv = 0;
};

/// Optimizer statistics for a table (the paper's runstats output).
struct TableStats {
  uint64_t row_count = 0;
  std::vector<ColumnStats> columns;
  bool collected = false;
};

/// A secondary index over one column.
struct IndexInfo {
  std::string name;
  std::string table;
  std::string column;
  int column_index = -1;
  TypeId key_type = TypeId::kInteger;
  std::unique_ptr<BPlusTree> tree;
};

/// A stored table: declared schema plus its heap file.
struct TableInfo {
  std::string name;
  TableSchema schema;
  std::unique_ptr<HeapFile> heap;
  TableStats stats;
  std::vector<IndexInfo*> indexes;  // borrowed from Catalog

  /// The index on `column`, or nullptr.
  const IndexInfo* FindIndex(std::string_view column) const;
};

/// In-memory catalog of tables and indexes. The catalog owns all table and
/// index metadata; heap files and trees reference the database's buffer
/// pool.
///
/// Thread safety: the registry itself (name map, table/index lists) is
/// guarded by an internal reader/writer mutex, so lookups may race
/// registrations safely. Entries are never removed, so a TableInfo* /
/// IndexInfo* stays valid for the catalog's lifetime. The *contents* of an
/// entry (heap, tree, stats) are NOT guarded here: statements that mutate
/// them run under the Database statement lock held exclusively, while
/// read-only statements hold it shared (DESIGN.md section 10).
class Catalog {
 public:
  [[nodiscard]] Result<TableInfo*> CreateTable(const std::string& name, TableSchema schema,
                                 BufferPool* pool) XO_EXCLUDES(mu_);
  [[nodiscard]] Result<IndexInfo*> CreateIndex(const std::string& index_name,
                                 const std::string& table,
                                 const std::string& column, BufferPool* pool)
      XO_EXCLUDES(mu_);

  /// Re-registers a table deserialized from the catalog page (its heap
  /// already exists in the file). Fails if the name is taken.
  [[nodiscard]] Result<TableInfo*> RestoreTable(std::unique_ptr<TableInfo> info)
      XO_EXCLUDES(mu_);
  /// Re-registers a deserialized index and links it to its table.
  [[nodiscard]] Result<IndexInfo*> RestoreIndex(std::unique_ptr<IndexInfo> info)
      XO_EXCLUDES(mu_);

  TableInfo* FindTable(std::string_view name) XO_EXCLUDES(mu_);
  const TableInfo* FindTable(std::string_view name) const XO_EXCLUDES(mu_);

  /// Snapshot of the registered tables, in creation order. The vector is
  /// an owned copy, but the TableInfo pointers inside it are non-owning:
  /// the Catalog owns the pointees, which stay valid until Clear() — the
  /// TryRecover-only teardown documented there.
  [[nodiscard]] std::vector<TableInfo*> tables() const XO_EXCLUDES(mu_);
  /// Snapshot of the registered indexes, in creation order. Same lifetime
  /// contract as tables(): Catalog-owned pointees, valid until Clear().
  [[nodiscard]] std::vector<IndexInfo*> indexes() const XO_EXCLUDES(mu_);

  /// Total pages/bytes across table heaps (the paper's "database size").
  uint64_t DataBytes() const XO_EXCLUDES(mu_);
  /// Total pages/bytes across indexes (the paper's "index size").
  uint64_t IndexBytes() const XO_EXCLUDES(mu_);

  /// Drops every table and index entry. This is the one exception to the
  /// "entries are never removed" contract above, reserved for
  /// Database::TryRecover(), which rebuilds the whole storage stack under
  /// the exclusive statement lock with no statements in flight — any
  /// TableInfo*/IndexInfo* held across a Clear() is dangling.
  void Clear() XO_EXCLUDES(mu_);

 private:
  TableInfo* FindTableLocked(std::string_view name) const
      XO_REQUIRES_SHARED(mu_);

  /// Guards the registry containers below (not the pointees; see the
  /// class comment). Leaf lock: nothing else is acquired while held.
  mutable xo::SharedMutex mu_{xo::LockRank::kCatalog};
  std::vector<std::unique_ptr<TableInfo>> tables_ XO_GUARDED_BY(mu_);
  std::vector<std::unique_ptr<IndexInfo>> indexes_ XO_GUARDED_BY(mu_);
  std::map<std::string, TableInfo*, std::less<>> table_by_name_
      XO_GUARDED_BY(mu_);
};

}  // namespace xorator::ordb

#endif  // XORATOR_ORDB_CATALOG_H_
