#include "ordb/database.h"

#include <cassert>
#include <cstdio>
#include <set>
#include <unordered_set>

#include "common/span.h"
#include "common/str_util.h"
#include "common/varint.h"

namespace xorator::ordb {

namespace {

/// Process-wide record of the most recent destructor/Close() checkpoint,
/// stored as raw code+message (not a Status) so that nothing enforces a
/// check on the global itself at process exit.
xo::Mutex g_close_status_mu{xo::LockRank::kLeafCloseStatus};
StatusCode g_close_status_code XO_GUARDED_BY(g_close_status_mu) =
    StatusCode::kOk;
std::string g_close_status_message  // NOLINT(runtime/string)
    XO_GUARDED_BY(g_close_status_mu);

void RecordCloseStatus(const Status& s) XO_EXCLUDES(g_close_status_mu) {
  xo::MutexLock lock(&g_close_status_mu);
  g_close_status_code = s.code();
  g_close_status_message = s.message();
  if (!s.ok()) {
    std::fprintf(stderr, "xorator: close-time checkpoint failed: %s\n",
                 s.ToString().c_str());
  }
}

/// Meta-page catalog serialization (see DESIGN.md "Durability & fault
/// tolerance"). Everything is varints after the magic; strings are
/// length-prefixed.
constexpr uint64_t kCatalogMagic = 0x47544358;  // "XCTG"
constexpr uint64_t kCatalogVersion = 1;

void PutString(std::string* dst, std::string_view s) {
  PutVarint(dst, s.size());
  dst->append(s);
}

Result<std::string> GetString(std::string_view src, size_t* pos) {
  XO_ASSIGN_OR_RETURN(uint64_t len, GetVarint(src, pos));
  if (len > src.size() - *pos) {
    return Status::Corruption("meta page: string runs past the page");
  }
  std::string out(src.substr(*pos, len));
  *pos += len;
  return out;
}

}  // namespace

std::string QueryResult::ToString(size_t max_rows) const {
  std::string out;
  for (size_t i = 0; i < columns.size(); ++i) {
    if (i > 0) out += " | ";
    out += columns[i];
  }
  out += "\n";
  size_t shown = 0;
  for (const Tuple& row : rows) {
    if (shown++ >= max_rows) {
      out += "... (" + std::to_string(rows.size()) + " rows total)\n";
      break;
    }
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += " | ";
      out += row[i].ToString();
    }
    out += "\n";
  }
  if (shown <= max_rows) {
    out += "(" + std::to_string(rows.size()) + " rows)\n";
  }
  return out;
}

Result<std::unique_ptr<Database>> Database::Open(const DbOptions& options) {
  auto db = std::unique_ptr<Database>(new Database(options));
  std::unique_ptr<Pager> pager;
  if (options.path.empty()) {
    pager = std::make_unique<MemoryPager>();
  } else {
    // Roll back any interrupted epoch before the pager sees the file, so
    // torn final pages are healed before the size/alignment check.
    const std::string wal_path = options.path + ".wal";
    XO_RETURN_NOT_OK(RecoverFromWal(options.path, wal_path).status());
    XO_ASSIGN_OR_RETURN(auto file_pager, FilePager::Open(options.path));
    pager = std::move(file_pager);
    XO_ASSIGN_OR_RETURN(db->wal_,
                        Wal::Open(wal_path, pager->page_count()));
  }
  if (options.fault.has_value()) {
    auto faulty =
        std::make_unique<FaultInjectingPager>(std::move(pager), *options.fault);
    db->fault_pager_ = faulty.get();
    pager = std::move(faulty);
  }
  db->pager_ = std::move(pager);
  db->pool_ =
      std::make_unique<BufferPool>(db->pager_.get(), options.buffer_pool_pages);
  db->pool_->set_wal(db->wal_.get());
  db->pool_->set_health(&db->health_);
  if (db->fault_pager_ != nullptr && db->wal_ != nullptr) {
    // Per-file fault scoping: WAL-append faults are drawn from the fault
    // pager's independent WAL stream (the WAL itself is an ofstream, not a
    // Pager, so it cannot be wrapped).
    db->wal_->set_fault_hook(
        [fp = db->fault_pager_] { return fp->DrawWalAppend(); });
  }
  db->functions_ = FunctionRegistry::WithBuiltins();
  // The database is not published yet, but the locked helpers below
  // require the statement lock; taking it here is free and lets the
  // analysis check Open() against the same capability as every other path.
  xo::WriterLock lock(&db->mu_);
  if (db->wal_ != nullptr) {
    if (db->pager_->page_count() == 0) {
      // Fresh database: claim page 0 as the meta page and commit the
      // empty catalog so even a never-used file reopens cleanly.
      XO_ASSIGN_OR_RETURN(PageRef meta, db->pool_->Create());
      if (meta.id() != 0) {
        return Status::Internal("meta page allocated as page " +
                                std::to_string(meta.id()) + ", not 0");
      }
      XO_RETURN_NOT_OK(meta.Release());
      XO_RETURN_NOT_OK(db->CheckpointLocked());
    } else {
      XO_RETURN_NOT_OK(db->LoadCatalog());
    }
  }
  db->opened_ = true;
  return db;
}

Database::~Database() {
  if (killed_.load(std::memory_order_relaxed)) return;
  xo::WriterLock lock(&mu_);
  if (opened_ && !closed_ && pool_ != nullptr) {
    // A destructor cannot return the checkpoint status, but it must not
    // swallow it either: record it for last_close_status() (which also
    // logs a failure to stderr).
    RecordCloseStatus(CheckpointLocked());
  }
}

Status Database::Checkpoint() {
  xo::WriterLock lock(&mu_);
  return CheckpointLocked();
}

Status Database::CheckpointLocked() {
  if (pool_ == nullptr) return Status::OK();
  // A non-writable engine must never checkpoint: truncating the WAL would
  // destroy exactly the rollback evidence a later recovery needs, and a
  // Degraded-but-writable engine may still checkpoint what it can.
  XO_RETURN_NOT_OK(health_.CheckWritable());
  Status s = DoCheckpointLocked();
  if (!s.ok() && s.IsDegradable()) {
    // The commit point itself failed; durability is no longer guaranteed,
    // so mutations stop until TryRecover() re-verifies the stack.
    health_.ReportReadOnly("checkpoint failed: " + s.message());
  }
  return s;
}

Status Database::DoCheckpointLocked() {
  // Quiescence sentinel: a checkpoint runs under the exclusive statement
  // lock, so every PageRef guard must have been released by now. A live
  // pin here is a leak that would wedge eviction (debug builds only).
  assert(pool_->PinnedFrameCount() == 0 &&
         "checkpoint reached with PageRef guards still holding pins");
  if (wal_ == nullptr) return pool_->FlushAll();  // memory-backed
  XO_RETURN_NOT_OK(SaveCatalog());
  XO_RETURN_NOT_OK(pool_->FlushAll());
  XO_RETURN_NOT_OK(pager_->Flush());
  // Truncating the journal is the atomic commit: everything flushed above
  // is now the state the next Open() lands on.
  return wal_->Reset(pager_->page_count());
}

Status Database::Close() {
  xo::WriterLock lock(&mu_);
  if (closed_ || killed_.load(std::memory_order_relaxed)) return Status::OK();
  Status s = CheckpointLocked();
  closed_ = true;
  RecordCloseStatus(s);
  return s;
}

Status Database::last_close_status() {
  xo::MutexLock lock(&g_close_status_mu);
  return Status(g_close_status_code, g_close_status_message);
}

Status Database::SaveCatalog() {
  std::string blob;
  PutVarint(&blob, kCatalogMagic);
  PutVarint(&blob, kCatalogVersion);
  PutVarint(&blob, catalog_.tables().size());
  for (const auto& t : catalog_.tables()) {
    PutString(&blob, t->name);
    PutVarint(&blob, t->schema.size());
    for (const ColumnDef& c : t->schema.columns) {
      PutString(&blob, c.name);
      PutVarint(&blob, static_cast<uint64_t>(c.type));
    }
    PutVarint(&blob, t->heap->first_page());
    PutVarint(&blob, t->heap->last_page());
    PutVarint(&blob, t->heap->record_count());
    PutVarint(&blob, t->heap->page_count());
  }
  PutVarint(&blob, catalog_.indexes().size());
  for (const auto& i : catalog_.indexes()) {
    PutString(&blob, i->name);
    PutString(&blob, i->table);
    PutString(&blob, i->column);
    PutVarint(&blob, static_cast<uint64_t>(i->column_index));
    PutVarint(&blob, static_cast<uint64_t>(i->key_type));
    PutVarint(&blob, i->tree->root());
    PutVarint(&blob, i->tree->page_count());
    PutVarint(&blob, i->tree->entry_count());
  }
  if (blob.size() > kPageSize - kPageHeaderBytes) {
    return Status::Internal("catalog (" + std::to_string(blob.size()) +
                            " bytes) overflows the 8 KB meta page");
  }
  XO_ASSIGN_OR_RETURN(PageRef meta, pool_->Fetch(0));
  xo::MutableByteSpan page(meta.data(), kPageSize);
  RETURN_IF_ERROR(xo::FillZero(page, kPageHeaderBytes,
                               kPageSize - kPageHeaderBytes));
  RETURN_IF_ERROR(xo::CopyInto(page, kPageHeaderBytes, blob));
  meta.MarkDirty();
  return meta.Release();
}

Status Database::LoadCatalog() {
  std::string payload;
  {
    XO_ASSIGN_OR_RETURN(PageRef meta, pool_->Fetch(0));
    XO_ASSIGN_OR_RETURN(
        std::string_view body,
        xo::ViewBytes(xo::ByteSpan(meta.data(), kPageSize), kPageHeaderBytes,
                      kPageSize - kPageHeaderBytes));
    payload.assign(body);
    XO_RETURN_NOT_OK(meta.Release());
  }
  const std::string_view view(payload);
  const PageId pages = pager_->page_count();
  size_t pos = 0;
  XO_ASSIGN_OR_RETURN(uint64_t magic, GetVarint(view, &pos));
  if (magic != kCatalogMagic) {
    return Status::Corruption("meta page has no catalog (bad magic)");
  }
  XO_ASSIGN_OR_RETURN(uint64_t version, GetVarint(view, &pos));
  if (version != kCatalogVersion) {
    return Status::Corruption("catalog version " + std::to_string(version) +
                              " is not supported");
  }
  XO_ASSIGN_OR_RETURN(uint64_t table_count, GetVarint(view, &pos));
  for (uint64_t ti = 0; ti < table_count; ++ti) {
    auto info = std::make_unique<TableInfo>();
    XO_ASSIGN_OR_RETURN(info->name, GetString(view, &pos));
    XO_ASSIGN_OR_RETURN(uint64_t col_count, GetVarint(view, &pos));
    for (uint64_t ci = 0; ci < col_count; ++ci) {
      ColumnDef col;
      XO_ASSIGN_OR_RETURN(col.name, GetString(view, &pos));
      XO_ASSIGN_OR_RETURN(uint64_t type, GetVarint(view, &pos));
      if (type > static_cast<uint64_t>(TypeId::kXadt)) {
        return Status::Corruption("catalog: column '" + col.name +
                                  "' has unknown type " +
                                  std::to_string(type));
      }
      col.type = static_cast<TypeId>(type);
      info->schema.columns.push_back(std::move(col));
    }
    XO_ASSIGN_OR_RETURN(uint64_t first, GetVarint(view, &pos));
    XO_ASSIGN_OR_RETURN(uint64_t last, GetVarint(view, &pos));
    XO_ASSIGN_OR_RETURN(uint64_t records, GetVarint(view, &pos));
    XO_ASSIGN_OR_RETURN(uint64_t heap_pages, GetVarint(view, &pos));
    if (first >= pages || last >= pages) {
      return Status::Corruption("catalog: heap of '" + info->name +
                                "' points past the end of the file");
    }
    info->heap = std::make_unique<HeapFile>(
        pool_.get(), static_cast<PageId>(first), static_cast<PageId>(last),
        records, heap_pages);
    XO_RETURN_NOT_OK(catalog_.RestoreTable(std::move(info)).status());
  }
  XO_ASSIGN_OR_RETURN(uint64_t index_count, GetVarint(view, &pos));
  for (uint64_t ii = 0; ii < index_count; ++ii) {
    auto info = std::make_unique<IndexInfo>();
    XO_ASSIGN_OR_RETURN(info->name, GetString(view, &pos));
    XO_ASSIGN_OR_RETURN(info->table, GetString(view, &pos));
    XO_ASSIGN_OR_RETURN(info->column, GetString(view, &pos));
    XO_ASSIGN_OR_RETURN(uint64_t col, GetVarint(view, &pos));
    XO_ASSIGN_OR_RETURN(uint64_t type, GetVarint(view, &pos));
    if (type > static_cast<uint64_t>(TypeId::kXadt)) {
      return Status::Corruption("catalog: index '" + info->name +
                                "' has unknown key type " +
                                std::to_string(type));
    }
    info->column_index = static_cast<int>(col);
    info->key_type = static_cast<TypeId>(type);
    XO_ASSIGN_OR_RETURN(uint64_t root, GetVarint(view, &pos));
    XO_ASSIGN_OR_RETURN(uint64_t tree_pages, GetVarint(view, &pos));
    XO_ASSIGN_OR_RETURN(uint64_t entries, GetVarint(view, &pos));
    if (root >= pages) {
      return Status::Corruption("catalog: index '" + info->name +
                                "' roots past the end of the file");
    }
    info->tree = std::make_unique<BPlusTree>(
        pool_.get(), static_cast<PageId>(root), tree_pages, entries);
    XO_RETURN_NOT_OK(catalog_.RestoreIndex(std::move(info)).status());
  }
  return Status::OK();
}

Database::GuardRegistration::GuardRegistration(Database* db, uint64_t query_id,
                                               QueryGuard* guard)
    : db_(db), query_id_(guard != nullptr ? query_id : 0) {
  if (query_id_ == 0) return;
  xo::MutexLock lock(&db_->guards_mu_);
  db_->guards_[query_id_] = guard;
}

Database::GuardRegistration::~GuardRegistration() {
  if (query_id_ == 0) return;
  xo::MutexLock lock(&db_->guards_mu_);
  db_->guards_.erase(query_id_);
}

Status Database::Cancel(uint64_t query_id) {
  xo::MutexLock lock(&guards_mu_);
  auto it = guards_.find(query_id);
  if (it == guards_.end()) {
    return Status::NotFound("no in-flight statement registered as query id " +
                            std::to_string(query_id));
  }
  it->second->Cancel();
  return Status::OK();
}

Result<QueryResult> Database::RunSelect(const sql::SelectStmt& stmt,
                                        bool explain_only, QueryGuard* guard,
                                        bool skip_quarantined) {
  Planner planner(&catalog_, &functions_, options_.planner);
  XO_ASSIGN_OR_RETURN(OperatorPtr plan, planner.PlanSelect(stmt));
  QueryResult result;
  result.plan = plan->Explain();
  for (const ColumnMeta& c : plan->columns()) result.columns.push_back(c.name);
  if (explain_only) {
    if (guard != nullptr) result.plan += "\n" + guard->StatsLine();
    return result;
  }

  ExecContext ctx;
  ctx.functions = &functions_;
  ctx.pool = pool_.get();
  ctx.catalog = &catalog_;
  ctx.guard = guard;
  ctx.skip_quarantined = skip_quarantined;
  // The marshaled-UDF ABI carries no context, so UDF bodies and the XADT
  // fragment scanner reach the guard thread-locally (DESIGN.md §12); the
  // degraded-scan mode travels the same way (DESIGN.md §13).
  ScopedGuardBind bind(guard);
  DegradedScan degraded;
  degraded.skip_corrupt = skip_quarantined;
  ScopedDegradedScanBind degraded_bind(skip_quarantined ? &degraded : nullptr);
  // Close() must run on the error path too: a query stopped by its guard
  // (or by any mid-scan failure) has to release every pin and every
  // tracked-arena charge before the error reaches the caller.
  Status exec = plan->Open(&ctx);
  if (exec.ok()) {
    Tuple row;
    while (true) {
      auto ok = plan->Next(&row);
      if (!ok.ok()) {
        exec = ok.status();
        break;
      }
      if (!*ok) break;
      result.rows.push_back(row);
      if (stmt.limit >= 0 &&
          result.rows.size() >= static_cast<size_t>(stmt.limit)) {
        break;
      }
    }
  }
  plan->Close();
  XO_RETURN_NOT_OK(exec);
  result.udf_stats = ctx.udf_stats;
  if (guard != nullptr) result.plan += "\n" + guard->StatsLine();
  // Resilience stats line (DESIGN.md §13), appended only when there is
  // something to report so healthy-engine plan text stays byte-identical.
  const HealthSnapshot hs = health_.Snapshot();
  const uint64_t quarantined = pool_->stats().quarantined_pages;
  if (skip_quarantined || hs.state != HealthState::kHealthy ||
      quarantined > 0) {
    result.plan += "\nresilience: health=";
    result.plan += HealthStateName(hs.state);
    result.plan += " quarantined=" + std::to_string(quarantined) +
                   " skipped_pages=" + std::to_string(ctx.skipped_pages) +
                   " skipped_records=" + std::to_string(ctx.skipped_records) +
                   " skipped_fragments=" +
                   std::to_string(degraded.skipped_fragments);
  }
  return result;
}

Result<QueryResult> Database::Query(const std::string& sql_text) {
  return Query(sql_text, QueryOptions{});
}

Result<QueryResult> Database::Query(const std::string& sql_text,
                                    const QueryOptions& options) {
  // Parsing is stateless, so it runs before any lock; the statement kind
  // then picks the side of the statement lock. SELECT/EXPLAIN take it
  // shared and run in parallel with other readers; everything else is
  // exclusive.
  XO_ASSIGN_OR_RETURN(sql::Statement stmt, sql::ParseSql(sql_text));
  // The guard's clock starts here, so the deadline covers time spent
  // queued on the statement lock; registration also happens before the
  // lock, so a statement stuck behind a writer is already cancellable.
  QueryGuard guard(options.deadline_millis, options.max_memory_bytes);
  QueryGuard* g = options.guarded() ? &guard : nullptr;
  GuardRegistration registration(this, options.query_id, g);
  switch (stmt.kind) {
    case sql::Statement::Kind::kSelect: {
      XO_RETURN_NOT_OK(health_.CheckUsable());
      xo::ReaderLock lock(&mu_);
      return RunSelect(stmt.select, /*explain_only=*/false, g,
                       options.skip_quarantined);
    }
    case sql::Statement::Kind::kExplain: {
      XO_RETURN_NOT_OK(health_.CheckUsable());
      xo::ReaderLock lock(&mu_);
      XO_ASSIGN_OR_RETURN(QueryResult r,
                          RunSelect(stmt.select, /*explain_only=*/true, g));
      QueryResult out;
      out.columns = {"plan"};
      out.plan = r.plan;
      out.rows.push_back({Value::Varchar(r.plan)});
      return out;
    }
    case sql::Statement::Kind::kPragma: {
      // Pragmas are maintenance reads: they run on any usable engine —
      // that is their point — and only touch internally-synchronized
      // state, so the shared side of the lock suffices. The guard binds
      // thread-locally so a scrub slice is deadline/cancel-paced.
      XO_RETURN_NOT_OK(health_.CheckUsable());
      xo::ReaderLock lock(&mu_);
      ScopedGuardBind bind(g);
      return RunPragma(stmt.pragma);
    }
    default: {
      // Fail-fast gate (DESIGN.md §13): a ReadOnly/Failed engine rejects
      // mutations before queueing on the statement lock.
      XO_RETURN_NOT_OK(health_.CheckWritable());
      xo::WriterLock lock(&mu_);
      // Write statements poll the thread-local binding (BulkInsertLocked,
      // RunDelete) rather than an ExecContext.
      ScopedGuardBind bind(g);
      return ExecuteStmtLocked(stmt);
    }
  }
}

Result<QueryResult> Database::ExecuteStmtLocked(const sql::Statement& stmt) {
  switch (stmt.kind) {
    case sql::Statement::Kind::kSelect:
    case sql::Statement::Kind::kExplain:
    case sql::Statement::Kind::kPragma:
      // Read-only kinds never reach here: Query() routes them through the
      // shared side of the lock (see the dispatch above).
      return Status::Internal("read-only statement on the write path");
    case sql::Statement::Kind::kCreateTable: {
      TableSchema schema;
      for (const auto& [name, type] : stmt.create_table.columns) {
        schema.columns.push_back({name, type});
      }
      XO_RETURN_NOT_OK(
          CreateTableLocked(stmt.create_table.name, std::move(schema)));
      return QueryResult{};
    }
    case sql::Statement::Kind::kCreateIndex:
      XO_RETURN_NOT_OK(CreateIndexLocked(stmt.create_index.table,
                                         stmt.create_index.column));
      return QueryResult{};
    case sql::Statement::Kind::kInsert: {
      std::vector<Tuple> rows;
      const TableInfo* t = catalog_.FindTable(stmt.insert.table);
      if (t == nullptr) {
        return Status::NotFound("unknown table '" + stmt.insert.table + "'");
      }
      for (const auto& literals : stmt.insert.rows) {
        if (literals.size() != t->schema.size()) {
          return Status::InvalidArgument("INSERT arity mismatch");
        }
        Tuple row;
        for (size_t i = 0; i < literals.size(); ++i) {
          const Value& v = literals[i];
          TypeId want = t->schema.columns[i].type;
          if (v.is_null()) {
            row.push_back(v);
          } else if (want == TypeId::kVarchar &&
                     v.type() == TypeId::kVarchar) {
            row.push_back(v);
          } else if (want == TypeId::kXadt && v.type() == TypeId::kVarchar) {
            // Raw XML text literal into an XADT column.
            row.push_back(Value::Xadt("R" + v.AsString()));
          } else if (want == TypeId::kInteger &&
                     v.type() == TypeId::kInteger) {
            row.push_back(v);
          } else if (want == TypeId::kDouble) {
            row.push_back(Value::Double(v.AsDouble()));
          } else if (want == TypeId::kBoolean &&
                     v.type() == TypeId::kInteger) {
            row.push_back(Value::Bool(v.AsInt() != 0));
          } else {
            return Status::InvalidArgument(
                "cannot store a " + std::string(TypeName(v.type())) +
                " into column '" + t->schema.columns[i].name + "'");
          }
        }
        rows.push_back(std::move(row));
      }
      XO_RETURN_NOT_OK(BulkInsertLocked(stmt.insert.table, rows));
      return QueryResult{};
    }
    case sql::Statement::Kind::kDelete:
      return RunDelete(stmt.del);
  }
  return Status::Internal("unhandled statement kind");
}

Status Database::Execute(const std::string& sql_text) {
  return Query(sql_text).status();
}

Status Database::Execute(const std::string& sql_text,
                         const QueryOptions& options) {
  return Query(sql_text, options).status();
}

Result<std::string> Database::Explain(const std::string& sql_text) {
  XO_ASSIGN_OR_RETURN(sql::Statement stmt, sql::ParseSql(sql_text));
  if (stmt.kind != sql::Statement::Kind::kSelect &&
      stmt.kind != sql::Statement::Kind::kExplain) {
    return Status::InvalidArgument("EXPLAIN requires a SELECT");
  }
  xo::ReaderLock lock(&mu_);
  XO_ASSIGN_OR_RETURN(QueryResult r,
                      RunSelect(stmt.select, /*explain_only=*/true));
  return r.plan;
}

Status Database::CreateTable(const std::string& name, TableSchema schema) {
  XO_RETURN_NOT_OK(health_.CheckWritable());
  xo::WriterLock lock(&mu_);
  return CreateTableLocked(name, std::move(schema));
}

Status Database::CreateTableLocked(const std::string& name,
                                   TableSchema schema) {
  return catalog_.CreateTable(name, std::move(schema), pool_.get()).status();
}

Status Database::CreateIndex(const std::string& table,
                             const std::string& column) {
  XO_RETURN_NOT_OK(health_.CheckWritable());
  xo::WriterLock lock(&mu_);
  return CreateIndexLocked(table, column);
}

Status Database::CreateIndexLocked(const std::string& table,
                                   const std::string& column) {
  std::string index_name = "idx_" + table + "_" + column;
  XO_ASSIGN_OR_RETURN(IndexInfo * index,
                      catalog_.CreateIndex(index_name, table, column,
                                           pool_.get()));
  // Backfill from existing rows.
  TableInfo* t = catalog_.FindTable(table);
  HeapFile::Scanner scanner = t->heap->Scan();
  Rid rid;
  std::string record;
  while (true) {
    XO_ASSIGN_OR_RETURN(bool ok, scanner.Next(&rid, &record));
    if (!ok) break;
    XO_ASSIGN_OR_RETURN(Tuple row, DecodeTuple(t->schema, record));
    const Value& v = row[index->column_index];
    if (v.is_null()) continue;
    uint64_t key = index->key_type == TypeId::kInteger
                       ? IntIndexKey(v.AsInt())
                       : Hash64(v.AsString());
    XO_RETURN_NOT_OK(index->tree->Insert(key, rid.Encode()));
  }
  return Status::OK();
}

Status Database::BulkInsert(const std::string& table,
                            const std::vector<Tuple>& rows) {
  XO_RETURN_NOT_OK(health_.CheckWritable());
  xo::WriterLock lock(&mu_);
  return BulkInsertLocked(table, rows);
}

Status Database::BulkInsertLocked(const std::string& table,
                                  const std::vector<Tuple>& rows) {
  TableInfo* t = catalog_.FindTable(table);
  if (t == nullptr) return Status::NotFound("unknown table '" + table + "'");
  // Between-row cancellation point. Every row is inserted atomically with
  // its index entries, so aborting here leaves the table consistent: the
  // rows already inserted stay, the rest never happen (the loader reports
  // the split; see shred::LoadReport).
  QueryGuard* guard = CurrentGuard();
  std::string record;
  for (const Tuple& row : rows) {
    if (guard != nullptr) XO_RETURN_NOT_OK(guard->CheckPoint());
    if (row.size() != t->schema.size()) {
      return Status::InvalidArgument("row arity mismatch for '" + table + "'");
    }
    record.clear();
    EncodeTuple(t->schema, row, &record);
    XO_ASSIGN_OR_RETURN(Rid rid, t->heap->Insert(record));
    for (IndexInfo* index : t->indexes) {
      const Value& v = row[index->column_index];
      if (v.is_null()) continue;
      uint64_t key = index->key_type == TypeId::kInteger
                         ? IntIndexKey(v.AsInt())
                         : Hash64(v.AsString());
      XO_RETURN_NOT_OK(index->tree->Insert(key, rid.Encode()));
    }
  }
  return Status::OK();
}

Status Database::RunStats() {
  XO_RETURN_NOT_OK(health_.CheckWritable());
  xo::WriterLock lock(&mu_);
  for (TableInfo* t : catalog_.tables()) {
    std::vector<std::unordered_set<uint64_t>> distinct(t->schema.size());
    HeapFile::Scanner scanner = t->heap->Scan();
    Rid rid;
    std::string record;
    uint64_t rows = 0;
    while (true) {
      XO_ASSIGN_OR_RETURN(bool ok, scanner.Next(&rid, &record));
      if (!ok) break;
      ++rows;
      XO_ASSIGN_OR_RETURN(Tuple row, DecodeTuple(t->schema, record));
      for (size_t i = 0; i < row.size(); ++i) {
        // Cap the per-column set so runstats stays cheap on huge tables.
        if (distinct[i].size() < 1u << 20) distinct[i].insert(row[i].Hash());
      }
    }
    t->stats.row_count = rows;
    for (size_t i = 0; i < t->schema.size(); ++i) {
      t->stats.columns[i].ndv = static_cast<double>(distinct[i].size());
    }
    t->stats.collected = true;
  }
  return Status::OK();
}

namespace {

/// Direct AST evaluation against a single table's row, used by DELETE
/// (which needs record ids and therefore bypasses the Volcano planner).
Result<Value> EvalAst(const sql::AstExpr& e, const TableSchema& schema,
                      const std::string& table_name, const Tuple& row,
                      const FunctionRegistry& functions, UdfStats* stats) {
  using sql::AstExpr;
  switch (e.kind) {
    case AstExpr::Kind::kColumn: {
      std::string name = e.name;
      size_t dot = name.find('.');
      if (dot != std::string::npos) {
        if (!EqualsIgnoreCase(name.substr(0, dot), table_name)) {
          return Status::NotFound("unknown qualifier in '" + e.name + "'");
        }
        name = name.substr(dot + 1);
      }
      for (size_t i = 0; i < schema.columns.size(); ++i) {
        if (EqualsIgnoreCase(schema.columns[i].name, name)) return row[i];
      }
      return Status::NotFound("unknown column '" + e.name + "'");
    }
    case AstExpr::Kind::kLiteral:
      return e.literal;
    case AstExpr::Kind::kCompare: {
      XO_ASSIGN_OR_RETURN(Value a, EvalAst(*e.children[0], schema, table_name,
                                           row, functions, stats));
      XO_ASSIGN_OR_RETURN(Value b, EvalAst(*e.children[1], schema, table_name,
                                           row, functions, stats));
      if (a.is_null() || b.is_null()) return Value::Bool(false);
      int c = a.Compare(b);
      switch (e.op) {
        case CompareOp::kEq:
          return Value::Bool(c == 0);
        case CompareOp::kNe:
          return Value::Bool(c != 0);
        case CompareOp::kLt:
          return Value::Bool(c < 0);
        case CompareOp::kLe:
          return Value::Bool(c <= 0);
        case CompareOp::kGt:
          return Value::Bool(c > 0);
        case CompareOp::kGe:
          return Value::Bool(c >= 0);
      }
      return Status::Internal("bad op");
    }
    case AstExpr::Kind::kAnd:
    case AstExpr::Kind::kOr: {
      XO_ASSIGN_OR_RETURN(Value a, EvalAst(*e.children[0], schema, table_name,
                                           row, functions, stats));
      bool av = !a.is_null() && a.AsBool();
      if (e.kind == AstExpr::Kind::kAnd && !av) return Value::Bool(false);
      if (e.kind == AstExpr::Kind::kOr && av) return Value::Bool(true);
      XO_ASSIGN_OR_RETURN(Value b, EvalAst(*e.children[1], schema, table_name,
                                           row, functions, stats));
      return Value::Bool(!b.is_null() && b.AsBool());
    }
    case AstExpr::Kind::kNot: {
      XO_ASSIGN_OR_RETURN(Value a, EvalAst(*e.children[0], schema, table_name,
                                           row, functions, stats));
      return Value::Bool(!(!a.is_null() && a.AsBool()));
    }
    case AstExpr::Kind::kLike: {
      XO_ASSIGN_OR_RETURN(Value a, EvalAst(*e.children[0], schema, table_name,
                                           row, functions, stats));
      if (a.is_null()) return Value::Bool(false);
      return Value::Bool(LikeMatch(a.AsString(), e.pattern));
    }
    case AstExpr::Kind::kIsNull: {
      XO_ASSIGN_OR_RETURN(Value a, EvalAst(*e.children[0], schema, table_name,
                                           row, functions, stats));
      return Value::Bool(e.negated ? !a.is_null() : a.is_null());
    }
    case AstExpr::Kind::kFunc: {
      const ScalarFunction* fn = functions.FindScalar(e.name);
      if (fn == nullptr) {
        return Status::NotFound("unknown function '" + e.name + "'");
      }
      std::vector<Value> args;
      for (const auto& a : e.children) {
        XO_ASSIGN_OR_RETURN(Value v, EvalAst(*a, schema, table_name, row,
                                             functions, stats));
        args.push_back(std::move(v));
      }
      return InvokeScalar(*fn, args, stats);
    }
    case AstExpr::Kind::kStar:
      return Status::InvalidArgument("'*' not valid here");
  }
  return Status::Internal("unhandled AST node");
}

void CollectIndexableColumns(const sql::AstExpr& e,
                             std::vector<std::string>* out) {
  using sql::AstExpr;
  if (e.kind == AstExpr::Kind::kCompare && e.op == CompareOp::kEq) {
    for (const auto& c : e.children) {
      if (c->kind == AstExpr::Kind::kColumn) out->push_back(c->name);
    }
  }
  for (const auto& c : e.children) CollectIndexableColumns(*c, out);
}

}  // namespace

Result<QueryResult> Database::RunDelete(const sql::DeleteStmt& stmt) {
  TableInfo* t = catalog_.FindTable(stmt.table);
  if (t == nullptr) {
    return Status::NotFound("unknown table '" + stmt.table + "'");
  }
  UdfStats stats;
  std::vector<std::pair<Rid, Tuple>> doomed;
  // Guard polls and charges cover only the scan phase: once the apply loop
  // below starts mutating the heap, finishing is cheaper and cleaner than
  // stopping with half the matches deleted.
  QueryGuard* guard = CurrentGuard();
  TrackedArena doomed_arena(guard);
  HeapFile::Scanner scanner = t->heap->Scan();
  Rid rid;
  std::string record;
  while (true) {
    if (guard != nullptr) XO_RETURN_NOT_OK(guard->CheckPoint());
    XO_ASSIGN_OR_RETURN(bool ok, scanner.Next(&rid, &record));
    if (!ok) break;
    XO_ASSIGN_OR_RETURN(Tuple row, DecodeTuple(t->schema, record));
    bool match = true;
    if (stmt.where != nullptr) {
      XO_ASSIGN_OR_RETURN(Value v, EvalAst(*stmt.where, t->schema, t->name,
                                           row, functions_, &stats));
      match = !v.is_null() && v.AsBool();
    }
    if (match) {
      XO_RETURN_NOT_OK(doomed_arena.Charge(record.size() + sizeof(Rid)));
      doomed.emplace_back(rid, std::move(row));
    }
  }
  for (auto& [doomed_rid, row] : doomed) {
    XO_RETURN_NOT_OK(t->heap->Delete(doomed_rid));
    for (IndexInfo* index : t->indexes) {
      const Value& v = row[index->column_index];
      if (v.is_null()) continue;
      uint64_t key = index->key_type == TypeId::kInteger
                         ? IntIndexKey(v.AsInt())
                         : Hash64(v.AsString());
      XO_RETURN_NOT_OK(index->tree->Delete(key, doomed_rid.Encode()));
    }
  }
  QueryResult result;
  result.columns = {"deleted"};
  result.rows.push_back({Value::Int(static_cast<int64_t>(doomed.size()))});
  result.udf_stats = stats;
  return result;
}

Status Database::AdviseIndexes(const std::vector<std::string>& queries) {
  XO_RETURN_NOT_OK(health_.CheckWritable());
  xo::WriterLock lock(&mu_);
  std::set<std::pair<std::string, std::string>> wanted;
  for (const std::string& q : queries) {
    auto parsed = sql::ParseSql(q);
    if (!parsed.ok()) continue;
    if (parsed->kind != sql::Statement::Kind::kSelect) continue;
    const sql::SelectStmt& stmt = parsed->select;
    if (stmt.where == nullptr) continue;
    std::vector<std::string> cols;
    CollectIndexableColumns(*stmt.where, &cols);
    // Resolve alias.col / col names against the statement's FROM clause.
    for (const std::string& name : cols) {
      std::string alias;
      std::string col = name;
      size_t dot = name.find('.');
      if (dot != std::string::npos) {
        alias = name.substr(0, dot);
        col = name.substr(dot + 1);
      }
      for (const sql::TableRef& ref : stmt.from) {
        if (ref.is_function) continue;
        if (!alias.empty() && !EqualsIgnoreCase(ref.alias, alias)) continue;
        const TableInfo* t = catalog_.FindTable(ref.table);
        if (t == nullptr) continue;
        int idx = t->schema.ColumnIndex(col);
        if (idx < 0) continue;
        if (t->schema.columns[idx].type == TypeId::kXadt) continue;
        // Like DB2's Index Wizard, skip columns where an equality match is
        // unselective (more than ~50 rows per distinct value).
        if (t->stats.collected && t->stats.row_count > 100 &&
            t->stats.columns[idx].ndv <
                static_cast<double>(t->stats.row_count) * 0.02) {
          continue;
        }
        wanted.emplace(ref.table, col);
      }
    }
  }
  for (const auto& [table, col] : wanted) {
    const TableInfo* t = catalog_.FindTable(table);
    if (t != nullptr && t->FindIndex(col) == nullptr) {
      XO_RETURN_NOT_OK(CreateIndexLocked(table, col));
    }
  }
  return Status::OK();
}

// ----------------------------------------- failure containment (DESIGN.md §13)

Status Database::RebuildStorageLocked() {
  const std::string wal_path = options_.path + ".wal";
  // Roll the file back to its last checkpoint first — dirty frames were
  // just dropped, so the on-disk image may hold a partial epoch.
  XO_RETURN_NOT_OK(RecoverFromWal(options_.path, wal_path).status());
  XO_ASSIGN_OR_RETURN(auto file_pager, FilePager::Open(options_.path));
  std::unique_ptr<Pager> pager = std::move(file_pager);
  XO_ASSIGN_OR_RETURN(wal_, Wal::Open(wal_path, pager->page_count()));
  if (options_.fault.has_value()) {
    // Re-wrap with the *current* schedule: tests typically clear the fault
    // options through mutable_options() before asking for recovery.
    auto faulty =
        std::make_unique<FaultInjectingPager>(std::move(pager),
                                              *options_.fault);
    fault_pager_ = faulty.get();
    pager = std::move(faulty);
    wal_->set_fault_hook([fp = fault_pager_] { return fp->DrawWalAppend(); });
  }
  pager_ = std::move(pager);
  pool_ =
      std::make_unique<BufferPool>(pager_.get(), options_.buffer_pool_pages);
  pool_->set_wal(wal_.get());
  pool_->set_health(&health_);
  if (pager_->page_count() > 0) {
    XO_RETURN_NOT_OK(LoadCatalog());
  }
  return Status::OK();
}

Status Database::TryRecover() {
  xo::WriterLock lock(&mu_);
  if (health_.state() == HealthState::kHealthy) return Status::OK();
  XO_RETURN_NOT_OK(health_.CheckUsable());  // kFailed is terminal
  if (pool_ == nullptr) {
    return Status::Unavailable("no storage stack to recover");
  }
  assert(pool_->PinnedFrameCount() == 0 &&
         "TryRecover reached with PageRef guards still holding pins");
  pool_->ClearQuarantine();
  if (wal_ == nullptr) {
    // Memory-backed: there is no durable state to re-verify; flushing the
    // pool against the memory pager proves the write path works again.
    XO_RETURN_NOT_OK(pool_->FlushAll());
    if (!health_.Recover()) {
      return Status::Unavailable("engine failed while recovering");
    }
    return Status::OK();
  }
  // File-backed: tear the whole storage stack down and re-run the Open
  // sequence. Dirty frames are dropped deliberately — the WAL rolls the
  // file back to the last checkpoint, the only state known to be sound.
  catalog_.Clear();
  pool_.reset();
  wal_.reset();
  fault_pager_ = nullptr;
  pager_.reset();
  opened_ = false;
  Status rebuilt = RebuildStorageLocked();
  if (!rebuilt.ok()) {
    // The stack is gone (possibly partially null); only a reopen helps.
    // Queries fail fast via CheckUsable rather than dereferencing nulls.
    health_.ReportFailed("recovery failed: " + rebuilt.message());
    return rebuilt;
  }
  opened_ = true;
  if (!health_.Recover()) {
    return Status::Unavailable("engine failed while recovering");
  }
  return Status::OK();
}

Result<ScrubReport> Database::Scrub(uint64_t max_pages) {
  XO_RETURN_NOT_OK(health_.CheckUsable());
  xo::ReaderLock lock(&mu_);
  if (pool_ == nullptr) {
    return Status::Unavailable("no storage stack attached");
  }
  return pool_->ScrubSlice(max_pages);
}

std::vector<std::pair<std::string, std::string>>
Database::ResilienceStatsLocked() {
  const HealthSnapshot hs = health_.Snapshot();
  const BufferPoolStats ps =
      pool_ != nullptr ? pool_->stats() : BufferPoolStats{};
  std::vector<std::pair<std::string, std::string>> rows;
  rows.emplace_back("health", std::string(HealthStateName(hs.state)));
  rows.emplace_back("health_detail", hs.detail);
  rows.emplace_back("health_transitions", std::to_string(hs.transitions));
  rows.emplace_back("io_retries", std::to_string(ps.retries));
  rows.emplace_back("checksum_failures", std::to_string(ps.checksum_failures));
  rows.emplace_back("quarantined_pages", std::to_string(ps.quarantined_pages));
  rows.emplace_back("quarantine_hits", std::to_string(ps.quarantine_hits));
  rows.emplace_back("scrub_pages_scanned",
                    std::to_string(ps.scrub_pages_scanned));
  rows.emplace_back("scrub_pages_bad", std::to_string(ps.scrub_pages_bad));
  rows.emplace_back("scrub_passes", std::to_string(ps.scrub_passes));
  return rows;
}

std::vector<std::pair<std::string, std::string>> Database::ResilienceStats() {
  xo::ReaderLock lock(&mu_);
  return ResilienceStatsLocked();
}

Result<QueryResult> Database::RunPragma(const sql::PragmaStmt& stmt) {
  if (EqualsIgnoreCase(stmt.name, "health")) {
    QueryResult result;
    result.columns = {"name", "value"};
    for (auto& [name, value] : ResilienceStatsLocked()) {
      result.rows.push_back(
          {Value::Varchar(std::move(name)), Value::Varchar(std::move(value))});
    }
    return result;
  }
  if (EqualsIgnoreCase(stmt.name, "scrub")) {
    if (pool_ == nullptr) {
      return Status::Unavailable("no storage stack attached");
    }
    uint64_t budget = kScrubSlicePages;
    if (stmt.has_arg) {
      if (stmt.arg <= 0) {
        return Status::InvalidArgument("PRAGMA scrub(n) needs n > 0");
      }
      budget = static_cast<uint64_t>(stmt.arg);
    }
    XO_ASSIGN_OR_RETURN(ScrubReport report, pool_->ScrubSlice(budget));
    QueryResult result;
    result.columns = {"pages_scanned", "pages_verified", "pages_resident",
                      "pages_bad",     "cursor",         "wrapped"};
    result.rows.push_back(
        {Value::Int(static_cast<int64_t>(report.pages_scanned)),
         Value::Int(static_cast<int64_t>(report.pages_verified)),
         Value::Int(static_cast<int64_t>(report.pages_resident)),
         Value::Int(static_cast<int64_t>(report.pages_bad)),
         Value::Int(static_cast<int64_t>(report.cursor)),
         Value::Bool(report.wrapped)});
    return result;
  }
  return Status::InvalidArgument("unknown pragma '" + stmt.name +
                                 "' (try PRAGMA health or PRAGMA scrub)");
}

}  // namespace xorator::ordb
