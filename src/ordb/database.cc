#include "ordb/database.h"

#include <set>
#include <unordered_set>

#include "common/str_util.h"

namespace xorator::ordb {

std::string QueryResult::ToString(size_t max_rows) const {
  std::string out;
  for (size_t i = 0; i < columns.size(); ++i) {
    if (i > 0) out += " | ";
    out += columns[i];
  }
  out += "\n";
  size_t shown = 0;
  for (const Tuple& row : rows) {
    if (shown++ >= max_rows) {
      out += "... (" + std::to_string(rows.size()) + " rows total)\n";
      break;
    }
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += " | ";
      out += row[i].ToString();
    }
    out += "\n";
  }
  if (shown <= max_rows) {
    out += "(" + std::to_string(rows.size()) + " rows)\n";
  }
  return out;
}

Result<std::unique_ptr<Database>> Database::Open(const DbOptions& options) {
  auto db = std::unique_ptr<Database>(new Database(options));
  if (options.path.empty()) {
    db->pager_ = std::make_unique<MemoryPager>();
  } else {
    XO_ASSIGN_OR_RETURN(auto pager, FilePager::Open(options.path));
    db->pager_ = std::move(pager);
  }
  db->pool_ =
      std::make_unique<BufferPool>(db->pager_.get(), options.buffer_pool_pages);
  db->functions_ = FunctionRegistry::WithBuiltins();
  return db;
}

Result<QueryResult> Database::RunSelect(const sql::SelectStmt& stmt,
                                        bool explain_only) {
  Planner planner(&catalog_, &functions_, options_.planner);
  XO_ASSIGN_OR_RETURN(OperatorPtr plan, planner.PlanSelect(stmt));
  QueryResult result;
  result.plan = plan->Explain();
  for (const ColumnMeta& c : plan->columns()) result.columns.push_back(c.name);
  if (explain_only) return result;

  ExecContext ctx;
  ctx.functions = &functions_;
  ctx.pool = pool_.get();
  ctx.catalog = &catalog_;
  XO_RETURN_NOT_OK(plan->Open(&ctx));
  Tuple row;
  while (true) {
    auto ok = plan->Next(&row);
    XO_RETURN_NOT_OK(ok.status());
    if (!*ok) break;
    result.rows.push_back(row);
    if (stmt.limit >= 0 &&
        result.rows.size() >= static_cast<size_t>(stmt.limit)) {
      break;
    }
  }
  plan->Close();
  result.udf_stats = ctx.udf_stats;
  return result;
}

Result<QueryResult> Database::Query(const std::string& sql_text) {
  XO_ASSIGN_OR_RETURN(sql::Statement stmt, sql::ParseSql(sql_text));
  switch (stmt.kind) {
    case sql::Statement::Kind::kSelect:
      return RunSelect(stmt.select, /*explain_only=*/false);
    case sql::Statement::Kind::kExplain: {
      XO_ASSIGN_OR_RETURN(QueryResult r,
                          RunSelect(stmt.select, /*explain_only=*/true));
      QueryResult out;
      out.columns = {"plan"};
      out.plan = r.plan;
      out.rows.push_back({Value::Varchar(r.plan)});
      return out;
    }
    case sql::Statement::Kind::kCreateTable: {
      TableSchema schema;
      for (const auto& [name, type] : stmt.create_table.columns) {
        schema.columns.push_back({name, type});
      }
      XO_RETURN_NOT_OK(CreateTable(stmt.create_table.name, std::move(schema)));
      return QueryResult{};
    }
    case sql::Statement::Kind::kCreateIndex:
      XO_RETURN_NOT_OK(
          CreateIndex(stmt.create_index.table, stmt.create_index.column));
      return QueryResult{};
    case sql::Statement::Kind::kInsert: {
      std::vector<Tuple> rows;
      const TableInfo* t = catalog_.FindTable(stmt.insert.table);
      if (t == nullptr) {
        return Status::NotFound("unknown table '" + stmt.insert.table + "'");
      }
      for (const auto& literals : stmt.insert.rows) {
        if (literals.size() != t->schema.size()) {
          return Status::InvalidArgument("INSERT arity mismatch");
        }
        Tuple row;
        for (size_t i = 0; i < literals.size(); ++i) {
          const Value& v = literals[i];
          TypeId want = t->schema.columns[i].type;
          if (v.is_null()) {
            row.push_back(v);
          } else if (want == TypeId::kVarchar &&
                     v.type() == TypeId::kVarchar) {
            row.push_back(v);
          } else if (want == TypeId::kXadt && v.type() == TypeId::kVarchar) {
            // Raw XML text literal into an XADT column.
            row.push_back(Value::Xadt("R" + v.AsString()));
          } else if (want == TypeId::kInteger &&
                     v.type() == TypeId::kInteger) {
            row.push_back(v);
          } else if (want == TypeId::kDouble) {
            row.push_back(Value::Double(v.AsDouble()));
          } else if (want == TypeId::kBoolean &&
                     v.type() == TypeId::kInteger) {
            row.push_back(Value::Bool(v.AsInt() != 0));
          } else {
            return Status::InvalidArgument(
                "cannot store a " + std::string(TypeName(v.type())) +
                " into column '" + t->schema.columns[i].name + "'");
          }
        }
        rows.push_back(std::move(row));
      }
      XO_RETURN_NOT_OK(BulkInsert(stmt.insert.table, rows));
      return QueryResult{};
    }
    case sql::Statement::Kind::kDelete:
      return RunDelete(stmt.del);
  }
  return Status::Internal("unhandled statement kind");
}

Status Database::Execute(const std::string& sql_text) {
  return Query(sql_text).status();
}

Result<std::string> Database::Explain(const std::string& sql_text) {
  XO_ASSIGN_OR_RETURN(sql::Statement stmt, sql::ParseSql(sql_text));
  if (stmt.kind != sql::Statement::Kind::kSelect &&
      stmt.kind != sql::Statement::Kind::kExplain) {
    return Status::InvalidArgument("EXPLAIN requires a SELECT");
  }
  XO_ASSIGN_OR_RETURN(QueryResult r,
                      RunSelect(stmt.select, /*explain_only=*/true));
  return r.plan;
}

Status Database::CreateTable(const std::string& name, TableSchema schema) {
  return catalog_.CreateTable(name, std::move(schema), pool_.get()).status();
}

Status Database::CreateIndex(const std::string& table,
                             const std::string& column) {
  std::string index_name = "idx_" + table + "_" + column;
  XO_ASSIGN_OR_RETURN(IndexInfo * index,
                      catalog_.CreateIndex(index_name, table, column,
                                           pool_.get()));
  // Backfill from existing rows.
  TableInfo* t = catalog_.FindTable(table);
  HeapFile::Scanner scanner = t->heap->Scan();
  Rid rid;
  std::string record;
  while (true) {
    XO_ASSIGN_OR_RETURN(bool ok, scanner.Next(&rid, &record));
    if (!ok) break;
    XO_ASSIGN_OR_RETURN(Tuple row, DecodeTuple(t->schema, record));
    const Value& v = row[index->column_index];
    if (v.is_null()) continue;
    uint64_t key = index->key_type == TypeId::kInteger
                       ? IntIndexKey(v.AsInt())
                       : Hash64(v.AsString());
    XO_RETURN_NOT_OK(index->tree->Insert(key, rid.Encode()));
  }
  return Status::OK();
}

Status Database::BulkInsert(const std::string& table,
                            const std::vector<Tuple>& rows) {
  TableInfo* t = catalog_.FindTable(table);
  if (t == nullptr) return Status::NotFound("unknown table '" + table + "'");
  std::string record;
  for (const Tuple& row : rows) {
    if (row.size() != t->schema.size()) {
      return Status::InvalidArgument("row arity mismatch for '" + table + "'");
    }
    record.clear();
    EncodeTuple(t->schema, row, &record);
    XO_ASSIGN_OR_RETURN(Rid rid, t->heap->Insert(record));
    for (IndexInfo* index : t->indexes) {
      const Value& v = row[index->column_index];
      if (v.is_null()) continue;
      uint64_t key = index->key_type == TypeId::kInteger
                         ? IntIndexKey(v.AsInt())
                         : Hash64(v.AsString());
      XO_RETURN_NOT_OK(index->tree->Insert(key, rid.Encode()));
    }
  }
  return Status::OK();
}

Status Database::RunStats() {
  for (const auto& t : catalog_.tables()) {
    std::vector<std::unordered_set<uint64_t>> distinct(t->schema.size());
    HeapFile::Scanner scanner = t->heap->Scan();
    Rid rid;
    std::string record;
    uint64_t rows = 0;
    while (true) {
      XO_ASSIGN_OR_RETURN(bool ok, scanner.Next(&rid, &record));
      if (!ok) break;
      ++rows;
      XO_ASSIGN_OR_RETURN(Tuple row, DecodeTuple(t->schema, record));
      for (size_t i = 0; i < row.size(); ++i) {
        // Cap the per-column set so runstats stays cheap on huge tables.
        if (distinct[i].size() < 1u << 20) distinct[i].insert(row[i].Hash());
      }
    }
    t->stats.row_count = rows;
    for (size_t i = 0; i < t->schema.size(); ++i) {
      t->stats.columns[i].ndv = static_cast<double>(distinct[i].size());
    }
    t->stats.collected = true;
  }
  return Status::OK();
}

namespace {

/// Direct AST evaluation against a single table's row, used by DELETE
/// (which needs record ids and therefore bypasses the Volcano planner).
Result<Value> EvalAst(const sql::AstExpr& e, const TableSchema& schema,
                      const std::string& table_name, const Tuple& row,
                      const FunctionRegistry& functions, UdfStats* stats) {
  using sql::AstExpr;
  switch (e.kind) {
    case AstExpr::Kind::kColumn: {
      std::string name = e.name;
      size_t dot = name.find('.');
      if (dot != std::string::npos) {
        if (!EqualsIgnoreCase(name.substr(0, dot), table_name)) {
          return Status::NotFound("unknown qualifier in '" + e.name + "'");
        }
        name = name.substr(dot + 1);
      }
      for (size_t i = 0; i < schema.columns.size(); ++i) {
        if (EqualsIgnoreCase(schema.columns[i].name, name)) return row[i];
      }
      return Status::NotFound("unknown column '" + e.name + "'");
    }
    case AstExpr::Kind::kLiteral:
      return e.literal;
    case AstExpr::Kind::kCompare: {
      XO_ASSIGN_OR_RETURN(Value a, EvalAst(*e.children[0], schema, table_name,
                                           row, functions, stats));
      XO_ASSIGN_OR_RETURN(Value b, EvalAst(*e.children[1], schema, table_name,
                                           row, functions, stats));
      if (a.is_null() || b.is_null()) return Value::Bool(false);
      int c = a.Compare(b);
      switch (e.op) {
        case CompareOp::kEq:
          return Value::Bool(c == 0);
        case CompareOp::kNe:
          return Value::Bool(c != 0);
        case CompareOp::kLt:
          return Value::Bool(c < 0);
        case CompareOp::kLe:
          return Value::Bool(c <= 0);
        case CompareOp::kGt:
          return Value::Bool(c > 0);
        case CompareOp::kGe:
          return Value::Bool(c >= 0);
      }
      return Status::Internal("bad op");
    }
    case AstExpr::Kind::kAnd:
    case AstExpr::Kind::kOr: {
      XO_ASSIGN_OR_RETURN(Value a, EvalAst(*e.children[0], schema, table_name,
                                           row, functions, stats));
      bool av = !a.is_null() && a.AsBool();
      if (e.kind == AstExpr::Kind::kAnd && !av) return Value::Bool(false);
      if (e.kind == AstExpr::Kind::kOr && av) return Value::Bool(true);
      XO_ASSIGN_OR_RETURN(Value b, EvalAst(*e.children[1], schema, table_name,
                                           row, functions, stats));
      return Value::Bool(!b.is_null() && b.AsBool());
    }
    case AstExpr::Kind::kNot: {
      XO_ASSIGN_OR_RETURN(Value a, EvalAst(*e.children[0], schema, table_name,
                                           row, functions, stats));
      return Value::Bool(!(!a.is_null() && a.AsBool()));
    }
    case AstExpr::Kind::kLike: {
      XO_ASSIGN_OR_RETURN(Value a, EvalAst(*e.children[0], schema, table_name,
                                           row, functions, stats));
      if (a.is_null()) return Value::Bool(false);
      return Value::Bool(LikeMatch(a.AsString(), e.pattern));
    }
    case AstExpr::Kind::kIsNull: {
      XO_ASSIGN_OR_RETURN(Value a, EvalAst(*e.children[0], schema, table_name,
                                           row, functions, stats));
      return Value::Bool(e.negated ? !a.is_null() : a.is_null());
    }
    case AstExpr::Kind::kFunc: {
      const ScalarFunction* fn = functions.FindScalar(e.name);
      if (fn == nullptr) {
        return Status::NotFound("unknown function '" + e.name + "'");
      }
      std::vector<Value> args;
      for (const auto& a : e.children) {
        XO_ASSIGN_OR_RETURN(Value v, EvalAst(*a, schema, table_name, row,
                                             functions, stats));
        args.push_back(std::move(v));
      }
      return InvokeScalar(*fn, args, stats);
    }
    case AstExpr::Kind::kStar:
      return Status::InvalidArgument("'*' not valid here");
  }
  return Status::Internal("unhandled AST node");
}

void CollectIndexableColumns(const sql::AstExpr& e,
                             std::vector<std::string>* out) {
  using sql::AstExpr;
  if (e.kind == AstExpr::Kind::kCompare && e.op == CompareOp::kEq) {
    for (const auto& c : e.children) {
      if (c->kind == AstExpr::Kind::kColumn) out->push_back(c->name);
    }
  }
  for (const auto& c : e.children) CollectIndexableColumns(*c, out);
}

}  // namespace

Result<QueryResult> Database::RunDelete(const sql::DeleteStmt& stmt) {
  TableInfo* t = catalog_.FindTable(stmt.table);
  if (t == nullptr) {
    return Status::NotFound("unknown table '" + stmt.table + "'");
  }
  UdfStats stats;
  std::vector<std::pair<Rid, Tuple>> doomed;
  HeapFile::Scanner scanner = t->heap->Scan();
  Rid rid;
  std::string record;
  while (true) {
    XO_ASSIGN_OR_RETURN(bool ok, scanner.Next(&rid, &record));
    if (!ok) break;
    XO_ASSIGN_OR_RETURN(Tuple row, DecodeTuple(t->schema, record));
    bool match = true;
    if (stmt.where != nullptr) {
      XO_ASSIGN_OR_RETURN(Value v, EvalAst(*stmt.where, t->schema, t->name,
                                           row, functions_, &stats));
      match = !v.is_null() && v.AsBool();
    }
    if (match) doomed.emplace_back(rid, std::move(row));
  }
  for (auto& [doomed_rid, row] : doomed) {
    XO_RETURN_NOT_OK(t->heap->Delete(doomed_rid));
    for (IndexInfo* index : t->indexes) {
      const Value& v = row[index->column_index];
      if (v.is_null()) continue;
      uint64_t key = index->key_type == TypeId::kInteger
                         ? IntIndexKey(v.AsInt())
                         : Hash64(v.AsString());
      XO_RETURN_NOT_OK(index->tree->Delete(key, doomed_rid.Encode()));
    }
  }
  QueryResult result;
  result.columns = {"deleted"};
  result.rows.push_back({Value::Int(static_cast<int64_t>(doomed.size()))});
  result.udf_stats = stats;
  return result;
}

Status Database::AdviseIndexes(const std::vector<std::string>& queries) {
  std::set<std::pair<std::string, std::string>> wanted;
  for (const std::string& q : queries) {
    auto parsed = sql::ParseSql(q);
    if (!parsed.ok()) continue;
    if (parsed->kind != sql::Statement::Kind::kSelect) continue;
    const sql::SelectStmt& stmt = parsed->select;
    if (stmt.where == nullptr) continue;
    std::vector<std::string> cols;
    CollectIndexableColumns(*stmt.where, &cols);
    // Resolve alias.col / col names against the statement's FROM clause.
    for (const std::string& name : cols) {
      std::string alias;
      std::string col = name;
      size_t dot = name.find('.');
      if (dot != std::string::npos) {
        alias = name.substr(0, dot);
        col = name.substr(dot + 1);
      }
      for (const sql::TableRef& ref : stmt.from) {
        if (ref.is_function) continue;
        if (!alias.empty() && !EqualsIgnoreCase(ref.alias, alias)) continue;
        const TableInfo* t = catalog_.FindTable(ref.table);
        if (t == nullptr) continue;
        int idx = t->schema.ColumnIndex(col);
        if (idx < 0) continue;
        if (t->schema.columns[idx].type == TypeId::kXadt) continue;
        // Like DB2's Index Wizard, skip columns where an equality match is
        // unselective (more than ~50 rows per distinct value).
        if (t->stats.collected && t->stats.row_count > 100 &&
            t->stats.columns[idx].ndv <
                static_cast<double>(t->stats.row_count) * 0.02) {
          continue;
        }
        wanted.emplace(ref.table, col);
      }
    }
  }
  for (const auto& [table, col] : wanted) {
    const TableInfo* t = catalog_.FindTable(table);
    if (t != nullptr && t->FindIndex(col) == nullptr) {
      XO_RETURN_NOT_OK(CreateIndex(table, col));
    }
  }
  return Status::OK();
}

}  // namespace xorator::ordb
