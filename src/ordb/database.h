#ifndef XORATOR_ORDB_DATABASE_H_
#define XORATOR_ORDB_DATABASE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "ordb/buffer_pool.h"
#include "ordb/catalog.h"
#include "ordb/functions.h"
#include "ordb/pager.h"
#include "ordb/planner.h"

namespace xorator::ordb {

/// Database configuration.
struct DbOptions {
  /// Path of the database file; empty means a memory-backed pager.
  std::string path;
  /// Buffer pool capacity in pages (default 64 MB of 8 KB pages).
  size_t buffer_pool_pages = 8192;
  PlannerOptions planner;
};

/// Materialized result of a query.
struct QueryResult {
  std::vector<std::string> columns;
  std::vector<Tuple> rows;
  /// Snapshot of the UDF accounting for this query.
  UdfStats udf_stats;
  /// EXPLAIN text (set for EXPLAIN statements, and always captured).
  std::string plan;

  /// Plain-text rendering (column header + one line per row).
  std::string ToString(size_t max_rows = 20) const;
};

/// The embedded object-relational engine: storage, catalog, SQL, UDFs.
///
/// Typical use:
///   auto db = Database::Open({});
///   db->Execute("CREATE TABLE t (a INTEGER, b VARCHAR)");
///   db->Execute("INSERT INTO t VALUES (1, 'x')");
///   auto result = db->Query("SELECT a FROM t WHERE b = 'x'");
class Database {
 public:
  static Result<std::unique_ptr<Database>> Open(const DbOptions& options = {});

  /// Runs any statement; DDL/INSERT return an empty result.
  Result<QueryResult> Query(const std::string& sql);

  /// Runs a statement for effect only.
  Status Execute(const std::string& sql);

  /// Returns the EXPLAIN plan of a SELECT without running it.
  Result<std::string> Explain(const std::string& sql);

  // -- Direct (non-SQL) data path, used by the bulk loader. -----------------

  Status CreateTable(const std::string& name, TableSchema schema);
  Status CreateIndex(const std::string& table, const std::string& column);

  /// Appends `rows` to `table`, maintaining any existing indexes.
  Status BulkInsert(const std::string& table, const std::vector<Tuple>& rows);

  /// Recomputes table statistics (the paper's "runstats").
  Status RunStats();

  /// Creates indexes useful for `queries` (the paper's "DB2 Index Wizard"):
  /// every column compared for equality against a literal or another column.
  Status AdviseIndexes(const std::vector<std::string>& queries);

  Catalog* catalog() { return &catalog_; }
  FunctionRegistry* functions() { return &functions_; }
  BufferPool* buffer_pool() { return pool_.get(); }
  const DbOptions& options() const { return options_; }
  DbOptions* mutable_options() { return &options_; }

  /// Paper metrics.
  uint64_t DataBytes() const { return catalog_.DataBytes(); }
  uint64_t IndexBytes() const { return catalog_.IndexBytes(); }

 private:
  explicit Database(DbOptions options) : options_(std::move(options)) {}

  Result<QueryResult> RunSelect(const sql::SelectStmt& stmt, bool explain_only);
  Result<QueryResult> RunDelete(const sql::DeleteStmt& stmt);

  DbOptions options_;
  std::unique_ptr<Pager> pager_;
  std::unique_ptr<BufferPool> pool_;
  Catalog catalog_;
  FunctionRegistry functions_;
};

}  // namespace xorator::ordb

#endif  // XORATOR_ORDB_DATABASE_H_
