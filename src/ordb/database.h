#ifndef XORATOR_ORDB_DATABASE_H_
#define XORATOR_ORDB_DATABASE_H_

#include <memory>
#include <string>
#include <vector>

#include <optional>

#include "common/result.h"
#include "ordb/buffer_pool.h"
#include "ordb/catalog.h"
#include "ordb/fault_pager.h"
#include "ordb/functions.h"
#include "ordb/pager.h"
#include "ordb/planner.h"
#include "ordb/wal.h"

namespace xorator::ordb {

/// Database configuration.
struct DbOptions {
  /// Path of the database file; empty means a memory-backed pager.
  std::string path;
  /// Buffer pool capacity in pages (default 64 MB of 8 KB pages).
  size_t buffer_pool_pages = 8192;
  PlannerOptions planner;
  /// When set, the pager is wrapped in a FaultInjectingPager driving the
  /// given deterministic fault schedule (testing only).
  std::optional<FaultOptions> fault;
};

/// Materialized result of a query.
struct QueryResult {
  std::vector<std::string> columns;
  std::vector<Tuple> rows;
  /// Snapshot of the UDF accounting for this query.
  UdfStats udf_stats;
  /// EXPLAIN text (set for EXPLAIN statements, and always captured).
  std::string plan;

  /// Plain-text rendering (column header + one line per row).
  std::string ToString(size_t max_rows = 20) const;
};

/// The embedded object-relational engine: storage, catalog, SQL, UDFs.
///
/// Typical use:
///   auto db = Database::Open({});
///   db->Execute("CREATE TABLE t (a INTEGER, b VARCHAR)");
///   db->Execute("INSERT INTO t VALUES (1, 'x')");
///   auto result = db->Query("SELECT a FROM t WHERE b = 'x'");
class Database {
 public:
  /// Opens (creating or recovering) a database. For file-backed databases
  /// this first rolls back any interrupted epoch via the write-ahead log
  /// (see wal.h), then reloads the catalog from the meta page; the last
  /// Checkpoint() is the state that survives a crash.
  static Result<std::unique_ptr<Database>> Open(const DbOptions& options = {});

  /// Checkpoints (best effort) unless Close() or Kill() was called.
  ~Database();

  /// Makes the current state durable: persists the catalog to the meta
  /// page, flushes every dirty buffer, and truncates the WAL (the atomic
  /// commit point). No-op persistence-wise for memory-backed databases.
  Status Checkpoint();

  /// Checkpoints and marks the database closed.
  Status Close();

  /// Testing hook: simulate a crash. The destructor will NOT checkpoint;
  /// dirty frames are dropped and the WAL keeps its current epoch, so the
  /// next Open() rolls back to the last checkpoint — exactly as if the
  /// process had died here.
  void Kill() { killed_ = true; }

  /// Runs any statement; DDL/INSERT return an empty result.
  Result<QueryResult> Query(const std::string& sql);

  /// Runs a statement for effect only.
  Status Execute(const std::string& sql);

  /// Returns the EXPLAIN plan of a SELECT without running it.
  Result<std::string> Explain(const std::string& sql);

  // -- Direct (non-SQL) data path, used by the bulk loader. -----------------

  Status CreateTable(const std::string& name, TableSchema schema);
  Status CreateIndex(const std::string& table, const std::string& column);

  /// Appends `rows` to `table`, maintaining any existing indexes.
  Status BulkInsert(const std::string& table, const std::vector<Tuple>& rows);

  /// Recomputes table statistics (the paper's "runstats").
  Status RunStats();

  /// Creates indexes useful for `queries` (the paper's "DB2 Index Wizard"):
  /// every column compared for equality against a literal or another column.
  Status AdviseIndexes(const std::vector<std::string>& queries);

  Catalog* catalog() { return &catalog_; }
  FunctionRegistry* functions() { return &functions_; }
  BufferPool* buffer_pool() { return pool_.get(); }
  /// The fault-injection decorator, or nullptr when DbOptions::fault is
  /// unset.
  FaultInjectingPager* fault_pager() { return fault_pager_; }
  /// The write-ahead log (nullptr for memory-backed databases).
  Wal* wal() { return wal_.get(); }
  const DbOptions& options() const { return options_; }
  DbOptions* mutable_options() { return &options_; }

  /// Paper metrics.
  uint64_t DataBytes() const { return catalog_.DataBytes(); }
  uint64_t IndexBytes() const { return catalog_.IndexBytes(); }

 private:
  explicit Database(DbOptions options) : options_(std::move(options)) {}

  Result<QueryResult> RunSelect(const sql::SelectStmt& stmt, bool explain_only);
  Result<QueryResult> RunDelete(const sql::DeleteStmt& stmt);

  /// Serializes the catalog into the meta page (page 0 of file-backed
  /// databases).
  Status SaveCatalog();
  /// Rebuilds the catalog from the meta page of an existing database.
  Status LoadCatalog();

  DbOptions options_;
  std::unique_ptr<Pager> pager_;  // declared before pool_/wal_: destroyed last
  std::unique_ptr<Wal> wal_;
  std::unique_ptr<BufferPool> pool_;
  Catalog catalog_;
  FunctionRegistry functions_;
  FaultInjectingPager* fault_pager_ = nullptr;  // owned via pager_
  /// Set once Open() fully succeeds. A database that failed to open (e.g.
  /// its catalog is corrupt) must stay read-only: checkpointing it would
  /// overwrite the meta page with a partial catalog and truncate the WAL,
  /// destroying exactly the evidence a later repair needs.
  bool opened_ = false;
  bool closed_ = false;
  bool killed_ = false;
};

}  // namespace xorator::ordb

#endif  // XORATOR_ORDB_DATABASE_H_
