#ifndef XORATOR_ORDB_DATABASE_H_
#define XORATOR_ORDB_DATABASE_H_

#include <atomic>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include <optional>

#include "common/mutex.h"
#include "common/result.h"
#include "common/thread_annotations.h"
#include "ordb/buffer_pool.h"
#include "ordb/catalog.h"
#include "ordb/fault_pager.h"
#include "ordb/functions.h"
#include "ordb/health.h"
#include "ordb/pager.h"
#include "ordb/planner.h"
#include "ordb/query_guard.h"
#include "ordb/wal.h"

namespace xorator::ordb {

/// Database configuration.
struct DbOptions {
  /// Path of the database file; empty means a memory-backed pager.
  std::string path;
  /// Buffer pool capacity in pages (default 64 MB of 8 KB pages).
  size_t buffer_pool_pages = 8192;
  PlannerOptions planner;
  /// When set, the pager is wrapped in a FaultInjectingPager driving the
  /// given deterministic fault schedule (testing only).
  std::optional<FaultOptions> fault;
};

/// Per-statement resource limits and cancellation identity (DESIGN.md
/// §12). All fields default to "off"; a default-constructed QueryOptions
/// runs the statement unguarded with zero overhead.
struct QueryOptions {
  /// Wall-clock budget in milliseconds from the moment Query() is called
  /// (steady clock). 0 means no deadline. A statement past its deadline
  /// unwinds at its next guard checkpoint with kDeadlineExceeded.
  uint64_t deadline_millis = 0;
  /// Byte budget for tracked materializations (join/sort/aggregate state,
  /// decoded XADT fragments). 0 means no budget. Tripping it returns
  /// kResourceExhausted.
  uint64_t max_memory_bytes = 0;
  /// Caller-chosen identity for Database::Cancel(). 0 means "not
  /// cancellable by id" (the statement still honors the other limits).
  /// The id is registered before the statement lock is taken, so even a
  /// query waiting behind a writer is already cancellable.
  uint64_t query_id = 0;

  /// Degraded-scan mode (DESIGN.md §13): SELECTs skip quarantined/corrupt
  /// heap pages and damaged overflow/XADT fragments instead of failing,
  /// and report what they skipped on the plan's "resilience:" stats line.
  /// Off by default: normal queries must surface corruption.
  bool skip_quarantined = false;

  /// True when any limit or the cancel identity is set — i.e. the
  /// statement needs a QueryGuard at all (skip_quarantined alone does not:
  /// it changes scan behavior, not resource governance).
  bool guarded() const {
    return deadline_millis != 0 || max_memory_bytes != 0 || query_id != 0;
  }
};

/// Materialized result of a query.
struct QueryResult {
  std::vector<std::string> columns;
  std::vector<Tuple> rows;
  /// Snapshot of the UDF accounting for this query.
  UdfStats udf_stats;
  /// EXPLAIN text (set for EXPLAIN statements, and always captured).
  std::string plan;

  /// Plain-text rendering (column header + one line per row).
  std::string ToString(size_t max_rows = 20) const;
};

/// The embedded object-relational engine: storage, catalog, SQL, UDFs.
///
/// Typical use:
///   auto db = Database::Open({});
///   db->Execute("CREATE TABLE t (a INTEGER, b VARCHAR)");
///   db->Execute("INSERT INTO t VALUES (1, 'x')");
///   auto result = db->Query("SELECT a FROM t WHERE b = 'x'");
///
/// Thread safety: the statement-level entry points synchronize on an
/// internal reader/writer statement lock (statically checked via Clang
/// Thread Safety Analysis; see DESIGN.md section 10). Read-only statements
/// — SELECT and EXPLAIN via Query/Execute/Explain — take the lock shared
/// and run genuinely in parallel. Statements that mutate state (DDL,
/// INSERT, DELETE, BulkInsert, Checkpoint, RunStats, AdviseIndexes, Close)
/// take it exclusively and serialize against everything else. Concurrent
/// readers are safe because every component they touch is internally
/// synchronized (BufferPool, Wal, Catalog registry) or only mutated under
/// the exclusive lock (heap/index structure, table statistics). The raw
/// component accessors (catalog(), buffer_pool(), wal(), ...) return
/// internally synchronized objects, but orchestrating multi-step work
/// through them (as the loader does) must happen on one thread or under
/// application-level exclusion — they bypass the statement lock.
///
/// Guardrails: the Query/Execute overloads taking QueryOptions run the
/// statement under a QueryGuard (deadline, cancel token, memory budget —
/// DESIGN.md section 12). Cancel(query_id) stops a registered in-flight
/// statement from any thread; it synchronizes only on the guard registry
/// (guards_mu_, a leaf lock), so a reader holding the statement lock
/// shared — or still queued behind a writer — remains cancellable.
class Database {
 public:
  /// Opens (creating or recovering) a database. For file-backed databases
  /// this first rolls back any interrupted epoch via the write-ahead log
  /// (see wal.h), then reloads the catalog from the meta page; the last
  /// Checkpoint() is the state that survives a crash.
  [[nodiscard]] static Result<std::unique_ptr<Database>> Open(
      const DbOptions& options = {});

  /// Checkpoints (best effort) unless Close() or Kill() was called. A
  /// failed implicit checkpoint cannot be returned, so it is recorded in
  /// last_close_status() and logged to stderr instead of being swallowed.
  ~Database();

  /// Makes the current state durable: persists the catalog to the meta
  /// page, flushes every dirty buffer, and truncates the WAL (the atomic
  /// commit point). No-op persistence-wise for memory-backed databases.
  [[nodiscard]] Status Checkpoint() XO_EXCLUDES(mu_);

  /// Checkpoints and marks the database closed.
  [[nodiscard]] Status Close() XO_EXCLUDES(mu_);

  /// The status of the most recent destructor or Close() checkpoint of any
  /// Database in this process (OK when it succeeded, or before any close).
  /// This is how a failure in the implicit destructor checkpoint — which
  /// has no other way to report — stays observable to callers and tests.
  [[nodiscard]] static Status last_close_status();

  /// Testing hook: simulate a crash. The destructor will NOT checkpoint;
  /// dirty frames are dropped and the WAL keeps its current epoch, so the
  /// next Open() rolls back to the last checkpoint — exactly as if the
  /// process had died here.
  void Kill() { killed_.store(true, std::memory_order_relaxed); }

  /// Runs any statement; DDL/INSERT return an empty result. SELECT and
  /// EXPLAIN take the statement lock shared (parallel with other readers);
  /// everything else takes it exclusively.
  [[nodiscard]] Result<QueryResult> Query(const std::string& sql)
      XO_EXCLUDES(mu_);

  /// Like Query(sql), but governed by `options` (DESIGN.md §12): the
  /// statement runs under a QueryGuard enforcing the deadline and memory
  /// budget, and — when options.query_id is set — is registered for
  /// Cancel() before the statement lock is taken. Guarded SELECTs append a
  /// "guard:" stats line (checkpoints, peak tracked bytes, why-stopped) to
  /// QueryResult::plan. Readers stay cancellable while holding the
  /// statement lock shared: Cancel() only touches guards_mu_, never mu_.
  [[nodiscard]] Result<QueryResult> Query(const std::string& sql,
                                          const QueryOptions& options)
      XO_EXCLUDES(mu_);

  /// Runs a statement for effect only.
  [[nodiscard]] Status Execute(const std::string& sql) XO_EXCLUDES(mu_);

  /// Execute() with guardrails; see Query(sql, options).
  [[nodiscard]] Status Execute(const std::string& sql,
                               const QueryOptions& options) XO_EXCLUDES(mu_);

  /// Requests cooperative cancellation of the in-flight statement that was
  /// started with QueryOptions::query_id == `query_id`. Returns NotFound
  /// when no such statement is currently registered (it may have finished,
  /// or not started yet — callers racing a startup can retry). Safe from
  /// any thread; never blocks on the statement lock, so it works while the
  /// target holds mu_ shared (or is still queued behind a writer).
  [[nodiscard]] Status Cancel(uint64_t query_id) XO_EXCLUDES(guards_mu_);

  /// Returns the EXPLAIN plan of a SELECT without running it.
  [[nodiscard]] Result<std::string> Explain(const std::string& sql)
      XO_EXCLUDES(mu_);

  // -- Failure containment (DESIGN.md §13). ---------------------------------

  /// The engine health state machine. Healthy engines run everything;
  /// Degraded engines run everything but carry quarantined pages;
  /// ReadOnly engines reject mutations (durability is compromised);
  /// Failed engines reject everything and need a reopen.
  EngineHealth* health() { return &health_; }

  /// Attempts to re-arm a Degraded/ReadOnly engine without a process
  /// restart: clears the page quarantine and, for file-backed databases,
  /// tears the storage stack down and re-runs WAL recovery + catalog
  /// reload (rolling back to the last checkpoint — uncheckpointed work is
  /// lost, exactly as a reopen would lose it). On success the engine is
  /// Healthy again. Failure latches kFailed: the on-disk state needs
  /// offline repair and the handle only answers what its caches can.
  /// Table/index pointers obtained from catalog() before TryRecover() are
  /// invalidated. No-op on a Healthy engine; error on a Failed one.
  [[nodiscard]] Status TryRecover() XO_EXCLUDES(mu_);

  /// Runs one budgeted slice of the incremental background scrubber:
  /// checksum-verifies up to `max_pages` pages from the persistent scrub
  /// cursor, quarantining (and reporting Degraded for) every page that
  /// fails. Callable from SQL as `PRAGMA scrub` / `PRAGMA scrub(n)`.
  /// Takes the statement lock shared — scrubbing runs alongside readers.
  [[nodiscard]] Result<ScrubReport> Scrub(uint64_t max_pages = kScrubSlicePages)
      XO_EXCLUDES(mu_);

  /// Default page budget of one scrub slice (1 MB of 8 KB pages).
  static constexpr uint64_t kScrubSlicePages = 128;

  /// Point-in-time (name, value) rows of the resilience report — health
  /// state/detail/transitions plus the buffer pool's containment counters;
  /// exactly the rows `PRAGMA health` returns. Public hook for the network
  /// front end's STATS frame (DESIGN.md section 17), which merges these
  /// with its own admission counters. Takes the statement lock shared.
  [[nodiscard]] std::vector<std::pair<std::string, std::string>>
  ResilienceStats() XO_EXCLUDES(mu_);

  // -- Direct (non-SQL) data path, used by the bulk loader. -----------------

  [[nodiscard]] Status CreateTable(const std::string& name, TableSchema schema)
      XO_EXCLUDES(mu_);
  [[nodiscard]] Status CreateIndex(const std::string& table,
                                   const std::string& column) XO_EXCLUDES(mu_);

  /// Appends `rows` to `table`, maintaining any existing indexes.
  [[nodiscard]] Status BulkInsert(const std::string& table,
                                  const std::vector<Tuple>& rows)
      XO_EXCLUDES(mu_);

  /// Recomputes table statistics (the paper's "runstats").
  [[nodiscard]] Status RunStats() XO_EXCLUDES(mu_);

  /// Creates indexes useful for `queries` (the paper's "DB2 Index Wizard"):
  /// every column compared for equality against a literal or another column.
  [[nodiscard]] Status AdviseIndexes(const std::vector<std::string>& queries)
      XO_EXCLUDES(mu_);

  Catalog* catalog() { return &catalog_; }
  FunctionRegistry* functions() { return &functions_; }
  BufferPool* buffer_pool() { return pool_.get(); }
  /// The fault-injection decorator, or nullptr when DbOptions::fault is
  /// unset.
  FaultInjectingPager* fault_pager() { return fault_pager_; }
  /// The write-ahead log (nullptr for memory-backed databases).
  Wal* wal() { return wal_.get(); }
  const DbOptions& options() const { return options_; }
  DbOptions* mutable_options() { return &options_; }

  /// Paper metrics.
  uint64_t DataBytes() const { return catalog_.DataBytes(); }
  uint64_t IndexBytes() const { return catalog_.IndexBytes(); }

 private:
  explicit Database(DbOptions options) : options_(std::move(options)) {}

  // Locked bodies of the public entry points. XO_REQUIRES(mu_) bodies run
  // with the statement lock held exclusively; RunSelect only needs it
  // shared (it is the concurrent read path).
  [[nodiscard]] Result<QueryResult> ExecuteStmtLocked(
      const sql::Statement& stmt) XO_REQUIRES(mu_);
  [[nodiscard]] Status CheckpointLocked() XO_REQUIRES(mu_);
  [[nodiscard]] Status CreateTableLocked(const std::string& name,
                                         TableSchema schema) XO_REQUIRES(mu_);
  [[nodiscard]] Status CreateIndexLocked(const std::string& table,
                                         const std::string& column)
      XO_REQUIRES(mu_);
  [[nodiscard]] Status BulkInsertLocked(const std::string& table,
                                        const std::vector<Tuple>& rows)
      XO_REQUIRES(mu_);

  /// `guard` may be null (unguarded). Guarded runs bind the guard to the
  /// executing thread (ScopedGuardBind) so UDFs and XADT scans can poll it,
  /// close the plan on the error path too (releasing every pin before the
  /// error propagates), and append the guard stats line to the plan text.
  /// `skip_quarantined` enables the degraded-scan mode (DESIGN.md §13).
  [[nodiscard]] Result<QueryResult> RunSelect(const sql::SelectStmt& stmt,
                                              bool explain_only,
                                              QueryGuard* guard = nullptr,
                                              bool skip_quarantined = false)
      XO_REQUIRES_SHARED(mu_);
  [[nodiscard]] Result<QueryResult> RunDelete(const sql::DeleteStmt& stmt)
      XO_REQUIRES(mu_);
  /// PRAGMA dispatch (health introspection, scrub slices). Shared lock:
  /// pragmas only touch internally-synchronized components.
  [[nodiscard]] Result<QueryResult> RunPragma(const sql::PragmaStmt& stmt)
      XO_REQUIRES_SHARED(mu_);
  /// Row-building body of ResilienceStats()/PRAGMA health.
  [[nodiscard]] std::vector<std::pair<std::string, std::string>>
  ResilienceStatsLocked() XO_REQUIRES_SHARED(mu_);
  /// The unlatched checkpoint body; CheckpointLocked wraps it with the
  /// health gate and failure latching.
  [[nodiscard]] Status DoCheckpointLocked() XO_REQUIRES(mu_);
  /// Rebuilds the file-backed storage stack (recovery → pager → WAL →
  /// buffer pool → catalog) for TryRecover().
  [[nodiscard]] Status RebuildStorageLocked() XO_REQUIRES(mu_);

  /// RAII registration of a guard under a caller-chosen id in guards_,
  /// keyed for Database::Cancel(). Registration happens in the constructor
  /// — before the statement lock is taken — and is removed on destruction.
  /// A query_id of 0 (or a null guard) registers nothing.
  class GuardRegistration {
   public:
    GuardRegistration(Database* db, uint64_t query_id, QueryGuard* guard);
    GuardRegistration(const GuardRegistration&) = delete;
    GuardRegistration& operator=(const GuardRegistration&) = delete;
    ~GuardRegistration();

   private:
    Database* db_;
    uint64_t query_id_;
  };

  /// Serializes the catalog into the meta page (page 0 of file-backed
  /// databases).
  [[nodiscard]] Status SaveCatalog() XO_REQUIRES(mu_);
  /// Rebuilds the catalog from the meta page of an existing database.
  [[nodiscard]] Status LoadCatalog() XO_REQUIRES(mu_);

  /// The statement lock (see the class comment): shared for read-only
  /// statements, exclusive for mutating ones. Outermost lock of the
  /// hierarchy (rank kStatement) — the buffer-pool latches, Wal::mu_ and
  /// Catalog::mu_ all rank below it (DESIGN.md section 10).
  mutable xo::SharedMutex mu_{xo::LockRank::kStatement};
  DbOptions options_;
  /// Engine health (internally synchronized leaf). Declared before the
  /// storage components so it outlives them: the buffer pool may report
  /// into it up to its own destruction.
  EngineHealth health_;
  // The component pointers below are set while Open() runs single-threaded
  // and are immutable afterwards except under TryRecover() (which holds
  // mu_ exclusively); the objects they point to are internally
  // synchronized, so the pointers themselves need no capability.
  std::unique_ptr<Pager> pager_;  // declared before pool_/wal_: destroyed last
  std::unique_ptr<Wal> wal_;
  std::unique_ptr<BufferPool> pool_;
  Catalog catalog_;
  FunctionRegistry functions_;
  FaultInjectingPager* fault_pager_ = nullptr;  // owned via pager_
  /// Set once Open() fully succeeds. A database that failed to open (e.g.
  /// its catalog is corrupt) must stay read-only: checkpointing it would
  /// overwrite the meta page with a partial catalog and truncate the WAL,
  /// destroying exactly the evidence a later repair needs.
  bool opened_ XO_GUARDED_BY(mu_) = false;
  bool closed_ XO_GUARDED_BY(mu_) = false;
  std::atomic<bool> killed_{false};

  /// Registry lock for guards_. A leaf in the hierarchy, independent of
  /// mu_: Cancel() takes only guards_mu_, and registration happens before
  /// mu_ is acquired — so cancellation can never deadlock against (or wait
  /// on) the statement lock (DESIGN.md sections 10 and 12).
  mutable xo::Mutex guards_mu_{xo::LockRank::kLeafGuardRegistry};
  /// In-flight guarded statements by caller-chosen query id. Values point
  /// at stack-allocated guards owned by Query(); GuardRegistration
  /// guarantees removal before the guard dies.
  std::unordered_map<uint64_t, QueryGuard*> guards_ XO_GUARDED_BY(guards_mu_);
};

}  // namespace xorator::ordb

#endif  // XORATOR_ORDB_DATABASE_H_
