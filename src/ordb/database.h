#ifndef XORATOR_ORDB_DATABASE_H_
#define XORATOR_ORDB_DATABASE_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include <optional>

#include "common/result.h"
#include "ordb/buffer_pool.h"
#include "ordb/catalog.h"
#include "ordb/fault_pager.h"
#include "ordb/functions.h"
#include "ordb/pager.h"
#include "ordb/planner.h"
#include "ordb/wal.h"

namespace xorator::ordb {

/// Database configuration.
struct DbOptions {
  /// Path of the database file; empty means a memory-backed pager.
  std::string path;
  /// Buffer pool capacity in pages (default 64 MB of 8 KB pages).
  size_t buffer_pool_pages = 8192;
  PlannerOptions planner;
  /// When set, the pager is wrapped in a FaultInjectingPager driving the
  /// given deterministic fault schedule (testing only).
  std::optional<FaultOptions> fault;
};

/// Materialized result of a query.
struct QueryResult {
  std::vector<std::string> columns;
  std::vector<Tuple> rows;
  /// Snapshot of the UDF accounting for this query.
  UdfStats udf_stats;
  /// EXPLAIN text (set for EXPLAIN statements, and always captured).
  std::string plan;

  /// Plain-text rendering (column header + one line per row).
  std::string ToString(size_t max_rows = 20) const;
};

/// The embedded object-relational engine: storage, catalog, SQL, UDFs.
///
/// Typical use:
///   auto db = Database::Open({});
///   db->Execute("CREATE TABLE t (a INTEGER, b VARCHAR)");
///   db->Execute("INSERT INTO t VALUES (1, 'x')");
///   auto result = db->Query("SELECT a FROM t WHERE b = 'x'");
///
/// Thread safety: the statement-level entry points (Query, Execute,
/// Explain, Checkpoint, Close, CreateTable, CreateIndex, BulkInsert,
/// RunStats, AdviseIndexes) are serialized by an internal mutex, so
/// concurrent callers are safe (though not parallel). The raw component
/// accessors (catalog(), buffer_pool(), wal(), ...) bypass that mutex and
/// remain single-threaded.
class Database {
 public:
  /// Opens (creating or recovering) a database. For file-backed databases
  /// this first rolls back any interrupted epoch via the write-ahead log
  /// (see wal.h), then reloads the catalog from the meta page; the last
  /// Checkpoint() is the state that survives a crash.
  [[nodiscard]] static Result<std::unique_ptr<Database>> Open(
      const DbOptions& options = {});

  /// Checkpoints (best effort) unless Close() or Kill() was called. A
  /// failed implicit checkpoint cannot be returned, so it is recorded in
  /// last_close_status() and logged to stderr instead of being swallowed.
  ~Database();

  /// Makes the current state durable: persists the catalog to the meta
  /// page, flushes every dirty buffer, and truncates the WAL (the atomic
  /// commit point). No-op persistence-wise for memory-backed databases.
  [[nodiscard]] Status Checkpoint();

  /// Checkpoints and marks the database closed.
  [[nodiscard]] Status Close();

  /// The status of the most recent destructor or Close() checkpoint of any
  /// Database in this process (OK when it succeeded, or before any close).
  /// This is how a failure in the implicit destructor checkpoint — which
  /// has no other way to report — stays observable to callers and tests.
  [[nodiscard]] static Status last_close_status();

  /// Testing hook: simulate a crash. The destructor will NOT checkpoint;
  /// dirty frames are dropped and the WAL keeps its current epoch, so the
  /// next Open() rolls back to the last checkpoint — exactly as if the
  /// process had died here.
  void Kill() { killed_.store(true, std::memory_order_relaxed); }

  /// Runs any statement; DDL/INSERT return an empty result.
  [[nodiscard]] Result<QueryResult> Query(const std::string& sql);

  /// Runs a statement for effect only.
  [[nodiscard]] Status Execute(const std::string& sql);

  /// Returns the EXPLAIN plan of a SELECT without running it.
  [[nodiscard]] Result<std::string> Explain(const std::string& sql);

  // -- Direct (non-SQL) data path, used by the bulk loader. -----------------

  [[nodiscard]] Status CreateTable(const std::string& name, TableSchema schema);
  [[nodiscard]] Status CreateIndex(const std::string& table,
                                   const std::string& column);

  /// Appends `rows` to `table`, maintaining any existing indexes.
  [[nodiscard]] Status BulkInsert(const std::string& table,
                                  const std::vector<Tuple>& rows);

  /// Recomputes table statistics (the paper's "runstats").
  [[nodiscard]] Status RunStats();

  /// Creates indexes useful for `queries` (the paper's "DB2 Index Wizard"):
  /// every column compared for equality against a literal or another column.
  [[nodiscard]] Status AdviseIndexes(const std::vector<std::string>& queries);

  Catalog* catalog() { return &catalog_; }
  FunctionRegistry* functions() { return &functions_; }
  BufferPool* buffer_pool() { return pool_.get(); }
  /// The fault-injection decorator, or nullptr when DbOptions::fault is
  /// unset.
  FaultInjectingPager* fault_pager() { return fault_pager_; }
  /// The write-ahead log (nullptr for memory-backed databases).
  Wal* wal() { return wal_.get(); }
  const DbOptions& options() const { return options_; }
  DbOptions* mutable_options() { return &options_; }

  /// Paper metrics.
  uint64_t DataBytes() const { return catalog_.DataBytes(); }
  uint64_t IndexBytes() const { return catalog_.IndexBytes(); }

 private:
  explicit Database(DbOptions options) : options_(std::move(options)) {}

  // Unlocked bodies of the public entry points; callers hold mu_.
  [[nodiscard]] Result<QueryResult> QueryLocked(const std::string& sql);
  [[nodiscard]] Status CheckpointLocked();
  [[nodiscard]] Status CreateTableLocked(const std::string& name,
                                         TableSchema schema);
  [[nodiscard]] Status CreateIndexLocked(const std::string& table,
                                         const std::string& column);
  [[nodiscard]] Status BulkInsertLocked(const std::string& table,
                                        const std::vector<Tuple>& rows);

  [[nodiscard]] Result<QueryResult> RunSelect(const sql::SelectStmt& stmt,
                                              bool explain_only);
  [[nodiscard]] Result<QueryResult> RunDelete(const sql::DeleteStmt& stmt);

  /// Serializes the catalog into the meta page (page 0 of file-backed
  /// databases).
  [[nodiscard]] Status SaveCatalog();
  /// Rebuilds the catalog from the meta page of an existing database.
  [[nodiscard]] Status LoadCatalog();

  /// Serializes the statement-level entry points (see the class comment).
  mutable std::mutex mu_;
  DbOptions options_;
  std::unique_ptr<Pager> pager_;  // declared before pool_/wal_: destroyed last
  std::unique_ptr<Wal> wal_;
  std::unique_ptr<BufferPool> pool_;
  Catalog catalog_;
  FunctionRegistry functions_;
  FaultInjectingPager* fault_pager_ = nullptr;  // owned via pager_
  /// Set once Open() fully succeeds. A database that failed to open (e.g.
  /// its catalog is corrupt) must stay read-only: checkpointing it would
  /// overwrite the meta page with a partial catalog and truncate the WAL,
  /// destroying exactly the evidence a later repair needs.
  bool opened_ = false;
  bool closed_ = false;
  std::atomic<bool> killed_{false};
};

}  // namespace xorator::ordb

#endif  // XORATOR_ORDB_DATABASE_H_
