#ifndef XORATOR_ORDB_EXEC_CONTEXT_H_
#define XORATOR_ORDB_EXEC_CONTEXT_H_

#include <cstdint>

#include "common/status.h"
#include "ordb/functions.h"
#include "ordb/query_guard.h"

namespace xorator::ordb {

class BufferPool;
class Catalog;

/// Per-query execution context threaded through expressions and operators.
///
/// Carries the query's `QueryGuard` (deadline / cancellation / memory
/// budget, DESIGN.md §12): every operator's Next() loop and every
/// materializing Open() loop polls `CheckPoint()` so a runaway query can be
/// stopped cooperatively. `guard` is null for unguarded execution (internal
/// statements, tests), which makes the poll a branch on a null pointer.
struct ExecContext {
  FunctionRegistry* functions = nullptr;
  BufferPool* pool = nullptr;
  Catalog* catalog = nullptr;
  /// The statement's resource governor, or null when unguarded. Owned by
  /// Database::Query for the duration of the statement.
  QueryGuard* guard = nullptr;
  /// UDF dispatch accounting for this query.
  UdfStats udf_stats;
  /// Rows produced by the root operator (set by Database::Query).
  uint64_t rows_out = 0;

  /// Degraded-scan mode (DESIGN.md §13): when true, table scans skip
  /// quarantined/corrupt pages and corrupt overflow chains instead of
  /// failing, and report what was skipped through the counters below.
  /// Opt-in per query via QueryOptions::skip_quarantined.
  bool skip_quarantined = false;
  /// Heap pages skipped by degraded scans in this query.
  uint64_t skipped_pages = 0;
  /// Records (including per-page markers) skipped by degraded scans.
  uint64_t skipped_records = 0;

  /// Polls the guard, if any: OK to keep running, else the guard's
  /// kCancelled / kDeadlineExceeded / kResourceExhausted error. Operators
  /// call this once per row produced or materialized.
  [[nodiscard]] Status CheckPoint() {
    return guard == nullptr ? Status::OK() : guard->CheckPoint();
  }
};

}  // namespace xorator::ordb

#endif  // XORATOR_ORDB_EXEC_CONTEXT_H_
