#ifndef XORATOR_ORDB_EXEC_CONTEXT_H_
#define XORATOR_ORDB_EXEC_CONTEXT_H_

#include <cstdint>

#include "ordb/functions.h"

namespace xorator::ordb {

class BufferPool;
class Catalog;

/// Per-query execution context threaded through expressions and operators.
struct ExecContext {
  FunctionRegistry* functions = nullptr;
  BufferPool* pool = nullptr;
  Catalog* catalog = nullptr;
  /// UDF dispatch accounting for this query.
  UdfStats udf_stats;
  /// Rows produced by the root operator (set by Database::Query).
  uint64_t rows_out = 0;
};

}  // namespace xorator::ordb

#endif  // XORATOR_ORDB_EXEC_CONTEXT_H_
