#include "ordb/executor.h"

#include <algorithm>

#include "common/span.h"
#include "common/str_util.h"
#include "common/varint.h"
#include "ordb/row_codec.h"

namespace xorator::ordb {

namespace {

std::vector<ColumnMeta> QualifiedColumns(const TableInfo& table,
                                         const std::string& alias) {
  std::vector<ColumnMeta> out;
  out.reserve(table.schema.size());
  for (const ColumnDef& c : table.schema.columns) {
    out.push_back({alias + "." + c.name, c.type});
  }
  return out;
}

Result<bool> EvalPredicate(const Expr* pred, const Tuple& row,
                           ExecContext* ctx) {
  if (pred == nullptr) return true;
  XO_ASSIGN_OR_RETURN(Value v, pred->Eval(row, ctx));
  return !v.is_null() && v.AsBool();
}

Result<std::vector<Value>> EvalKeys(const std::vector<ExprPtr>& keys,
                                    const Tuple& row, ExecContext* ctx) {
  std::vector<Value> out;
  out.reserve(keys.size());
  for (const ExprPtr& k : keys) {
    XO_ASSIGN_OR_RETURN(Value v, k->Eval(row, ctx));
    out.push_back(std::move(v));
  }
  return out;
}

int CompareValueLists(const std::vector<Value>& a,
                      const std::vector<Value>& b) {
  for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
    int c = a[i].Compare(b[i]);
    if (c != 0) return c;
  }
  return 0;
}

void AppendRow(const Tuple& left, const Tuple& right, Tuple* out) {
  out->clear();
  out->reserve(left.size() + right.size());
  out->insert(out->end(), left.begin(), left.end());
  out->insert(out->end(), right.begin(), right.end());
}

// Equality between an in-place column view and an owning key Value without
// materializing the view: string payloads compare as views, numerics via a
// (copy-free) Value. Used for the index-key rechecks, which are expected
// to reject rows (hashed string keys), so a miss costs no allocation.
bool ViewEqualsValue(const ValueView& view, const Value& key) {
  if (view.is_null()) return false;
  if ((view.type() == TypeId::kVarchar || view.type() == TypeId::kXadt) &&
      (key.type() == TypeId::kVarchar || key.type() == TypeId::kXadt)) {
    return view.bytes() == key.AsString();
  }
  return view.ToValue().Equals(key);
}

// Cheap size estimate used to charge materialized tuples against the
// query's memory budget (ExecContext::guard). Counts the inline Value slots
// plus out-of-line string payloads; deliberately ignores allocator slack.
uint64_t ApproxTupleBytes(const Tuple& row) {
  uint64_t bytes = sizeof(Tuple) + row.size() * sizeof(Value);
  for (const Value& v : row) {
    if (v.type() == TypeId::kVarchar || v.type() == TypeId::kXadt) {
      bytes += v.AsString().size();
    }
  }
  return bytes;
}

std::string RowFingerprint(const Tuple& row) {
  std::string key;
  for (const Value& v : row) {
    key.push_back(static_cast<char>(v.type()));
    switch (v.type()) {
      case TypeId::kNull:
        break;
      case TypeId::kBoolean:
      case TypeId::kInteger: {
        uint64_t raw = ZigZagEncode(v.AsInt());
        PutVarint(&key, raw);
        break;
      }
      case TypeId::kDouble: {
        xo::AppendFixed(&key, v.AsDouble());
        break;
      }
      case TypeId::kVarchar:
      case TypeId::kXadt:
        PutVarint(&key, v.AsString().size());
        key.append(v.AsString());
        break;
    }
  }
  return key;
}

}  // namespace

uint64_t HashValues(const std::vector<Value>& values) {
  uint64_t h = 0x9ae16a3b2f90404fULL;
  for (const Value& v : values) {
    h ^= v.Hash() + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  }
  return h;
}

std::string Operator::Explain(int indent) const {
  std::string out(static_cast<size_t>(indent) * 2, ' ');
  out += Label();
  out += "\n";
  for (const Operator* c : Children()) {
    out += c->Explain(indent + 1);
  }
  return out;
}

// ---------------------------------------------------------------------- scan

SeqScanOp::SeqScanOp(const TableInfo* table, const std::string& alias)
    : table_(table), alias_(alias) {
  columns_ = QualifiedColumns(*table, alias);
}

Status SeqScanOp::Open(ExecContext* ctx) {
  ctx_ = ctx;
  scanner_ = std::make_unique<HeapFile::Scanner>(table_->heap->Scan());
  scanner_->set_skip_corrupt(ctx->skip_quarantined);
  synced_skipped_pages_ = 0;
  synced_skipped_records_ = 0;
  return Status::OK();
}

void SeqScanOp::SyncSkipCounters() {
  ctx_->skipped_pages += scanner_->skipped_pages() - synced_skipped_pages_;
  synced_skipped_pages_ = scanner_->skipped_pages();
  ctx_->skipped_records +=
      scanner_->skipped_records() - synced_skipped_records_;
  synced_skipped_records_ = scanner_->skipped_records();
}

Result<bool> SeqScanOp::Next(Tuple* out) {
  RETURN_IF_ERROR(ctx_->CheckPoint());
  Rid rid;
  auto advanced = scanner_->Next(&rid, &record_);
  SyncSkipCounters();
  XO_ASSIGN_OR_RETURN(bool ok, std::move(advanced));
  if (!ok) return false;
  // In-place decode (row_codec.h): `record_` is a member, so its capacity
  // — and, via Materialize's slot reuse, the output tuple's string
  // capacity — is recycled across rows; the steady-state scan loop
  // allocates nothing.
  XO_ASSIGN_OR_RETURN(RowView row, RowView::Parse(table_->schema, record_));
  row.Materialize(out);
  return true;
}

std::string SeqScanOp::Label() const {
  return "SeqScan(" + table_->name + " AS " + alias_ + ")";
}

IndexScanOp::IndexScanOp(const TableInfo* table, const IndexInfo* index,
                         Value key, const std::string& alias)
    : table_(table), index_(index), key_(std::move(key)), alias_(alias) {
  columns_ = QualifiedColumns(*table, alias);
}

Status IndexScanOp::Open(ExecContext* ctx) {
  ctx_ = ctx;
  uint64_t k = index_->key_type == TypeId::kInteger
                   ? IntIndexKey(key_.AsInt())
                   : Hash64(key_.AsString());
  XO_ASSIGN_OR_RETURN(rids_, index_->tree->Find(k));
  pos_ = 0;
  return Status::OK();
}

Result<bool> IndexScanOp::Next(Tuple* out) {
  while (pos_ < rids_.size()) {
    RETURN_IF_ERROR(ctx_->CheckPoint());
    Rid rid = Rid::Decode(rids_[pos_++]);
    XO_ASSIGN_OR_RETURN(record_, table_->heap->Get(rid));
    XO_ASSIGN_OR_RETURN(RowView row, RowView::Parse(table_->schema, record_));
    // Recheck the key in place before materializing anything (string keys
    // are hashed in the index, so false positives are expected): a
    // mismatched row is skipped without a single string copy.
    if (!ViewEqualsValue(row.column(static_cast<size_t>(index_->column_index)),
                         key_)) {
      continue;
    }
    row.Materialize(out);
    return true;
  }
  return false;
}

std::string IndexScanOp::Label() const {
  return "IndexScan(" + table_->name + " AS " + alias_ + " ON " +
         index_->column + " = " + key_.ToString() + ")";
}

// -------------------------------------------------------------- filter etc.

FilterOp::FilterOp(OperatorPtr child, ExprPtr predicate)
    : child_(std::move(child)), predicate_(std::move(predicate)) {
  columns_ = child_->columns();
}

Status FilterOp::Open(ExecContext* ctx) {
  ctx_ = ctx;
  return child_->Open(ctx);
}

Result<bool> FilterOp::Next(Tuple* out) {
  while (true) {
    RETURN_IF_ERROR(ctx_->CheckPoint());
    XO_ASSIGN_OR_RETURN(bool ok, child_->Next(out));
    if (!ok) return false;
    XO_ASSIGN_OR_RETURN(bool pass, EvalPredicate(predicate_.get(), *out, ctx_));
    if (pass) return true;
  }
}

std::string FilterOp::Label() const {
  return "Filter(" + predicate_->ToString() + ")";
}

ProjectOp::ProjectOp(OperatorPtr child, std::vector<ExprPtr> exprs,
                     std::vector<std::string> names)
    : child_(std::move(child)), exprs_(std::move(exprs)) {
  for (size_t i = 0; i < exprs_.size(); ++i) {
    columns_.push_back({names[i], exprs_[i]->type()});
  }
}

Status ProjectOp::Open(ExecContext* ctx) {
  ctx_ = ctx;
  return child_->Open(ctx);
}

Result<bool> ProjectOp::Next(Tuple* out) {
  RETURN_IF_ERROR(ctx_->CheckPoint());
  Tuple row;
  XO_ASSIGN_OR_RETURN(bool ok, child_->Next(&row));
  if (!ok) return false;
  out->clear();
  out->reserve(exprs_.size());
  for (const ExprPtr& e : exprs_) {
    XO_ASSIGN_OR_RETURN(Value v, e->Eval(row, ctx_));
    out->push_back(std::move(v));
  }
  return true;
}

std::string ProjectOp::Label() const {
  std::string out = "Project(";
  for (size_t i = 0; i < exprs_.size(); ++i) {
    if (i > 0) out += ", ";
    out += exprs_[i]->ToString();
  }
  return out + ")";
}

// --------------------------------------------------------------------- joins

NestedLoopJoinOp::NestedLoopJoinOp(OperatorPtr left, OperatorPtr right,
                                   ExprPtr predicate)
    : left_(std::move(left)),
      right_(std::move(right)),
      predicate_(std::move(predicate)) {
  columns_ = left_->columns();
  for (const ColumnMeta& c : right_->columns()) columns_.push_back(c);
}

Status NestedLoopJoinOp::Open(ExecContext* ctx) {
  ctx_ = ctx;
  arena_.Rebind(ctx->guard);
  XO_RETURN_NOT_OK(left_->Open(ctx));
  XO_RETURN_NOT_OK(right_->Open(ctx));
  right_rows_.clear();
  Tuple row;
  while (true) {
    RETURN_IF_ERROR(ctx->CheckPoint());
    auto ok = right_->Next(&row);
    XO_RETURN_NOT_OK(ok.status());
    if (!*ok) break;
    RETURN_IF_ERROR(arena_.Charge(ApproxTupleBytes(row)));
    right_rows_.push_back(row);
  }
  right_->Close();
  left_valid_ = false;
  right_pos_ = 0;
  return Status::OK();
}

Result<bool> NestedLoopJoinOp::Next(Tuple* out) {
  while (true) {
    RETURN_IF_ERROR(ctx_->CheckPoint());
    if (!left_valid_) {
      XO_ASSIGN_OR_RETURN(bool ok, left_->Next(&left_row_));
      if (!ok) return false;
      left_valid_ = true;
      right_pos_ = 0;
    }
    while (right_pos_ < right_rows_.size()) {
      const Tuple& r = right_rows_[right_pos_++];
      AppendRow(left_row_, r, out);
      XO_ASSIGN_OR_RETURN(bool pass,
                          EvalPredicate(predicate_.get(), *out, ctx_));
      if (pass) return true;
    }
    left_valid_ = false;
  }
}

void NestedLoopJoinOp::Close() {
  left_->Close();
  right_rows_.clear();
  arena_.Release();
}

std::string NestedLoopJoinOp::Label() const {
  return "NestedLoopJoin(" +
         (predicate_ != nullptr ? predicate_->ToString() : "true") + ")";
}

HashJoinOp::HashJoinOp(OperatorPtr left, OperatorPtr right,
                       std::vector<ExprPtr> left_keys,
                       std::vector<ExprPtr> right_keys, ExprPtr residual)
    : left_(std::move(left)),
      right_(std::move(right)),
      left_keys_(std::move(left_keys)),
      right_keys_(std::move(right_keys)),
      residual_(std::move(residual)) {
  columns_ = left_->columns();
  for (const ColumnMeta& c : right_->columns()) columns_.push_back(c);
}

Status HashJoinOp::Open(ExecContext* ctx) {
  ctx_ = ctx;
  arena_.Rebind(ctx->guard);
  XO_RETURN_NOT_OK(left_->Open(ctx));
  table_.clear();
  Tuple row;
  while (true) {
    RETURN_IF_ERROR(ctx->CheckPoint());
    auto ok = left_->Next(&row);
    XO_RETURN_NOT_OK(ok.status());
    if (!*ok) break;
    auto keys = EvalKeys(left_keys_, row, ctx);
    XO_RETURN_NOT_OK(keys.status());
    RETURN_IF_ERROR(arena_.Charge(ApproxTupleBytes(row)));
    table_[HashValues(*keys)].push_back(row);
  }
  left_->Close();
  XO_RETURN_NOT_OK(right_->Open(ctx));
  matches_ = nullptr;
  match_pos_ = 0;
  return Status::OK();
}

Result<bool> HashJoinOp::Next(Tuple* out) {
  while (true) {
    RETURN_IF_ERROR(ctx_->CheckPoint());
    if (matches_ != nullptr) {
      while (match_pos_ < matches_->size()) {
        const Tuple& l = (*matches_)[match_pos_++];
        AppendRow(l, probe_row_, out);
        // Recheck key equality (hash collisions) plus any residual. Key
        // expressions are bound to their own side's row layout.
        XO_ASSIGN_OR_RETURN(auto lk, EvalKeys(left_keys_, l, ctx_));
        XO_ASSIGN_OR_RETURN(auto rk, EvalKeys(right_keys_, probe_row_, ctx_));
        if (CompareValueLists(lk, rk) != 0) continue;
        XO_ASSIGN_OR_RETURN(bool pass,
                            EvalPredicate(residual_.get(), *out, ctx_));
        if (pass) return true;
      }
      matches_ = nullptr;
    }
    XO_ASSIGN_OR_RETURN(bool ok, right_->Next(&probe_row_));
    if (!ok) return false;
    XO_ASSIGN_OR_RETURN(auto keys, EvalKeys(right_keys_, probe_row_, ctx_));
    auto it = table_.find(HashValues(keys));
    if (it == table_.end()) continue;
    matches_ = &it->second;
    match_pos_ = 0;
  }
}

void HashJoinOp::Close() {
  right_->Close();
  table_.clear();
  arena_.Release();
}

std::string HashJoinOp::Label() const {
  std::string out = "HashJoin(";
  for (size_t i = 0; i < left_keys_.size(); ++i) {
    if (i > 0) out += " AND ";
    out += left_keys_[i]->ToString() + " = " + right_keys_[i]->ToString();
  }
  return out + ")";
}

SortMergeJoinOp::SortMergeJoinOp(OperatorPtr left, OperatorPtr right,
                                 std::vector<ExprPtr> left_keys,
                                 std::vector<ExprPtr> right_keys,
                                 ExprPtr residual)
    : left_(std::move(left)),
      right_(std::move(right)),
      left_keys_(std::move(left_keys)),
      right_keys_(std::move(right_keys)),
      residual_(std::move(residual)) {
  columns_ = left_->columns();
  for (const ColumnMeta& c : right_->columns()) columns_.push_back(c);
}

Status SortMergeJoinOp::Open(ExecContext* ctx) {
  ctx_ = ctx;
  arena_.Rebind(ctx->guard);
  auto load = [&](Operator* input, const std::vector<ExprPtr>& keys,
                  std::vector<std::pair<std::vector<Value>, Tuple>>* rows)
      -> Status {
    XO_RETURN_NOT_OK(input->Open(ctx));
    Tuple row;
    while (true) {
      RETURN_IF_ERROR(ctx->CheckPoint());
      auto ok = input->Next(&row);
      XO_RETURN_NOT_OK(ok.status());
      if (!*ok) break;
      auto k = EvalKeys(keys, row, ctx);
      XO_RETURN_NOT_OK(k.status());
      RETURN_IF_ERROR(arena_.Charge(ApproxTupleBytes(row)));
      rows->emplace_back(std::move(*k), row);
    }
    input->Close();
    std::stable_sort(rows->begin(), rows->end(),
                     [](const auto& a, const auto& b) {
                       return CompareValueLists(a.first, b.first) < 0;
                     });
    return Status::OK();
  };
  left_rows_.clear();
  right_rows_.clear();
  XO_RETURN_NOT_OK(load(left_.get(), left_keys_, &left_rows_));
  XO_RETURN_NOT_OK(load(right_.get(), right_keys_, &right_rows_));
  li_ = ri_ = 0;
  in_run_ = false;
  return Status::OK();
}

Result<bool> SortMergeJoinOp::AdvanceRuns() {
  while (li_ < left_rows_.size() && ri_ < right_rows_.size()) {
    int c = CompareValueLists(left_rows_[li_].first, right_rows_[ri_].first);
    if (c < 0) {
      ++li_;
    } else if (c > 0) {
      ++ri_;
    } else {
      run_l_end_ = li_ + 1;
      while (run_l_end_ < left_rows_.size() &&
             CompareValueLists(left_rows_[run_l_end_].first,
                               left_rows_[li_].first) == 0) {
        ++run_l_end_;
      }
      run_r_end_ = ri_ + 1;
      while (run_r_end_ < right_rows_.size() &&
             CompareValueLists(right_rows_[run_r_end_].first,
                               right_rows_[ri_].first) == 0) {
        ++run_r_end_;
      }
      cur_l_ = li_;
      cur_r_ = ri_;
      in_run_ = true;
      return true;
    }
  }
  return false;
}

Result<bool> SortMergeJoinOp::Next(Tuple* out) {
  while (true) {
    RETURN_IF_ERROR(ctx_->CheckPoint());
    if (!in_run_) {
      XO_ASSIGN_OR_RETURN(bool ok, AdvanceRuns());
      if (!ok) return false;
    }
    while (cur_l_ < run_l_end_) {
      if (cur_r_ >= run_r_end_) {
        cur_r_ = ri_;
        ++cur_l_;
        continue;
      }
      const Tuple& l = left_rows_[cur_l_].second;
      const Tuple& r = right_rows_[cur_r_++].second;
      AppendRow(l, r, out);
      XO_ASSIGN_OR_RETURN(bool pass, EvalPredicate(residual_.get(), *out, ctx_));
      if (pass) return true;
    }
    li_ = run_l_end_;
    ri_ = run_r_end_;
    in_run_ = false;
  }
}

void SortMergeJoinOp::Close() {
  left_rows_.clear();
  right_rows_.clear();
  arena_.Release();
}

std::string SortMergeJoinOp::Label() const {
  std::string out = "SortMergeJoin(";
  for (size_t i = 0; i < left_keys_.size(); ++i) {
    if (i > 0) out += " AND ";
    out += left_keys_[i]->ToString() + " = " + right_keys_[i]->ToString();
  }
  return out + ")";
}

IndexNestedLoopJoinOp::IndexNestedLoopJoinOp(
    OperatorPtr left, const TableInfo* inner, const IndexInfo* index,
    ExprPtr left_key, const std::string& inner_alias, ExprPtr residual)
    : left_(std::move(left)),
      inner_(inner),
      index_(index),
      left_key_(std::move(left_key)),
      residual_(std::move(residual)) {
  columns_ = left_->columns();
  for (const ColumnMeta& c : QualifiedColumns(*inner, inner_alias)) {
    columns_.push_back(c);
  }
}

Status IndexNestedLoopJoinOp::Open(ExecContext* ctx) {
  ctx_ = ctx;
  XO_RETURN_NOT_OK(left_->Open(ctx));
  left_valid_ = false;
  rids_.clear();
  rid_pos_ = 0;
  return Status::OK();
}

Result<bool> IndexNestedLoopJoinOp::Next(Tuple* out) {
  while (true) {
    RETURN_IF_ERROR(ctx_->CheckPoint());
    if (!left_valid_) {
      XO_ASSIGN_OR_RETURN(bool ok, left_->Next(&left_row_));
      if (!ok) return false;
      left_valid_ = true;
      XO_ASSIGN_OR_RETURN(Value key, left_key_->Eval(left_row_, ctx_));
      if (key.is_null()) {
        left_valid_ = false;
        continue;
      }
      uint64_t k = index_->key_type == TypeId::kInteger
                       ? IntIndexKey(key.AsInt())
                       : Hash64(key.AsString());
      XO_ASSIGN_OR_RETURN(rids_, index_->tree->Find(k));
      rid_pos_ = 0;
    }
    while (rid_pos_ < rids_.size()) {
      Rid rid = Rid::Decode(rids_[rid_pos_++]);
      XO_ASSIGN_OR_RETURN(record_, inner_->heap->Get(rid));
      XO_ASSIGN_OR_RETURN(RowView row,
                          RowView::Parse(inner_->schema, record_));
      // Recheck the join key in place first (hashed string keys): a miss
      // skips the row before any string is copied out of the record.
      XO_ASSIGN_OR_RETURN(Value key, left_key_->Eval(left_row_, ctx_));
      if (!ViewEqualsValue(
              row.column(static_cast<size_t>(index_->column_index)), key)) {
        continue;
      }
      row.Materialize(&inner_row_);
      AppendRow(left_row_, inner_row_, out);
      XO_ASSIGN_OR_RETURN(bool pass, EvalPredicate(residual_.get(), *out, ctx_));
      if (pass) return true;
    }
    left_valid_ = false;
  }
}

void IndexNestedLoopJoinOp::Close() { left_->Close(); }

std::string IndexNestedLoopJoinOp::Label() const {
  return "IndexNLJoin(" + inner_->name + "." + index_->column + " = " +
         left_key_->ToString() + ")";
}

// ---------------------------------------------------------- sort / distinct

SortOp::SortOp(OperatorPtr child, std::vector<ExprPtr> keys,
               std::vector<bool> ascending)
    : child_(std::move(child)),
      keys_(std::move(keys)),
      ascending_(std::move(ascending)) {
  columns_ = child_->columns();
}

Status SortOp::Open(ExecContext* ctx) {
  ctx_ = ctx;
  arena_.Rebind(ctx->guard);
  XO_RETURN_NOT_OK(child_->Open(ctx));
  rows_.clear();
  std::vector<std::pair<std::vector<Value>, Tuple>> keyed;
  Tuple row;
  while (true) {
    RETURN_IF_ERROR(ctx->CheckPoint());
    auto ok = child_->Next(&row);
    XO_RETURN_NOT_OK(ok.status());
    if (!*ok) break;
    auto k = EvalKeys(keys_, row, ctx);
    XO_RETURN_NOT_OK(k.status());
    RETURN_IF_ERROR(arena_.Charge(ApproxTupleBytes(row)));
    keyed.emplace_back(std::move(*k), row);
  }
  child_->Close();
  std::stable_sort(keyed.begin(), keyed.end(), [this](const auto& a,
                                                      const auto& b) {
    for (size_t i = 0; i < a.first.size(); ++i) {
      int c = a.first[i].Compare(b.first[i]);
      if (c != 0) return ascending_[i] ? c < 0 : c > 0;
    }
    return false;
  });
  rows_.reserve(keyed.size());
  for (auto& [k, r] : keyed) rows_.push_back(std::move(r));
  pos_ = 0;
  return Status::OK();
}

Result<bool> SortOp::Next(Tuple* out) {
  RETURN_IF_ERROR(ctx_->CheckPoint());
  if (pos_ >= rows_.size()) return false;
  *out = rows_[pos_++];
  return true;
}

void SortOp::Close() {
  rows_.clear();
  arena_.Release();
}

std::string SortOp::Label() const {
  std::string out = "Sort(";
  for (size_t i = 0; i < keys_.size(); ++i) {
    if (i > 0) out += ", ";
    out += keys_[i]->ToString();
    out += ascending_[i] ? " ASC" : " DESC";
  }
  return out + ")";
}

DistinctOp::DistinctOp(OperatorPtr child) : child_(std::move(child)) {
  columns_ = child_->columns();
}

Status DistinctOp::Open(ExecContext* ctx) {
  ctx_ = ctx;
  arena_.Rebind(ctx->guard);
  seen_.clear();
  return child_->Open(ctx);
}

Result<bool> DistinctOp::Next(Tuple* out) {
  while (true) {
    RETURN_IF_ERROR(ctx_->CheckPoint());
    XO_ASSIGN_OR_RETURN(bool ok, child_->Next(out));
    if (!ok) return false;
    std::string fp = RowFingerprint(*out);
    if (!seen_.contains(fp)) {
      RETURN_IF_ERROR(arena_.Charge(fp.size() + sizeof(std::string)));
      seen_.insert(std::move(fp));
      return true;
    }
  }
}

void DistinctOp::Close() {
  child_->Close();
  seen_.clear();
  arena_.Release();
}

std::string DistinctOp::Label() const { return "Distinct"; }

// ----------------------------------------------------------------- aggregate

AggregateOp::AggregateOp(OperatorPtr child, std::vector<ExprPtr> group_keys,
                         std::vector<std::string> group_names,
                         std::vector<AggregateSpec> aggs)
    : child_(std::move(child)),
      group_keys_(std::move(group_keys)),
      aggs_(std::move(aggs)) {
  for (size_t i = 0; i < group_keys_.size(); ++i) {
    columns_.push_back({group_names[i], group_keys_[i]->type()});
  }
  for (const AggregateSpec& a : aggs_) {
    TypeId t = TypeId::kInteger;
    if ((a.kind == AggKind::kMin || a.kind == AggKind::kMax) &&
        a.arg != nullptr) {
      t = a.arg->type();
    }
    columns_.push_back({a.name, t});
  }
}

Status AggregateOp::Open(ExecContext* ctx) {
  ctx_ = ctx;
  arena_.Rebind(ctx->guard);
  XO_RETURN_NOT_OK(child_->Open(ctx));
  struct GroupState {
    std::vector<Value> keys;
    std::vector<Value> accumulators;
    std::vector<int64_t> counts;
  };
  std::unordered_map<std::string, GroupState> groups;
  std::vector<std::string> order;  // first-seen group order
  Tuple row;
  while (true) {
    RETURN_IF_ERROR(ctx->CheckPoint());
    auto ok = child_->Next(&row);
    XO_RETURN_NOT_OK(ok.status());
    if (!*ok) break;
    auto keys = EvalKeys(group_keys_, row, ctx);
    XO_RETURN_NOT_OK(keys.status());
    Tuple key_tuple(keys->begin(), keys->end());
    std::string fp = RowFingerprint(key_tuple);
    auto [it, inserted] = groups.emplace(fp, GroupState{});
    GroupState& g = it->second;
    if (inserted) {
      g.keys = *keys;
      g.accumulators.resize(aggs_.size());
      g.counts.assign(aggs_.size(), 0);
      order.push_back(fp);
      RETURN_IF_ERROR(arena_.Charge(ApproxTupleBytes(key_tuple) + fp.size() +
                                    aggs_.size() *
                                        (sizeof(Value) + sizeof(int64_t))));
    }
    for (size_t i = 0; i < aggs_.size(); ++i) {
      const AggregateSpec& a = aggs_[i];
      if (a.kind == AggKind::kCountStar) {
        ++g.counts[i];
        continue;
      }
      auto v = a.arg->Eval(row, ctx);
      XO_RETURN_NOT_OK(v.status());
      if (v->is_null()) continue;
      switch (a.kind) {
        case AggKind::kCount:
          ++g.counts[i];
          break;
        case AggKind::kSum:
          g.accumulators[i] =
              Value::Int(g.accumulators[i].is_null()
                             ? v->AsInt()
                             : g.accumulators[i].AsInt() + v->AsInt());
          break;
        case AggKind::kMin:
          if (g.accumulators[i].is_null() ||
              v->Compare(g.accumulators[i]) < 0) {
            g.accumulators[i] = *v;
          }
          break;
        case AggKind::kMax:
          if (g.accumulators[i].is_null() ||
              v->Compare(g.accumulators[i]) > 0) {
            g.accumulators[i] = *v;
          }
          break;
        case AggKind::kCountStar:
          break;
      }
    }
  }
  child_->Close();
  results_.clear();
  // A global aggregate (no GROUP BY) over zero rows still yields one row.
  if (order.empty() && group_keys_.empty()) {
    Tuple out;
    for (const AggregateSpec& a : aggs_) {
      if (a.kind == AggKind::kMin || a.kind == AggKind::kMax ||
          a.kind == AggKind::kSum) {
        out.push_back(Value::Null());
      } else {
        out.push_back(Value::Int(0));
      }
    }
    results_.push_back(std::move(out));
  }
  for (const std::string& fp : order) {
    GroupState& g = groups[fp];
    Tuple out(g.keys.begin(), g.keys.end());
    for (size_t i = 0; i < aggs_.size(); ++i) {
      switch (aggs_[i].kind) {
        case AggKind::kCountStar:
        case AggKind::kCount:
          out.push_back(Value::Int(g.counts[i]));
          break;
        default:
          out.push_back(g.accumulators[i]);
      }
    }
    results_.push_back(std::move(out));
  }
  pos_ = 0;
  return Status::OK();
}

Result<bool> AggregateOp::Next(Tuple* out) {
  RETURN_IF_ERROR(ctx_->CheckPoint());
  if (pos_ >= results_.size()) return false;
  *out = results_[pos_++];
  return true;
}

void AggregateOp::Close() {
  results_.clear();
  arena_.Release();
}

std::string AggregateOp::Label() const {
  std::string out = "Aggregate(groups=";
  out += std::to_string(group_keys_.size());
  out += ", aggs=" + std::to_string(aggs_.size()) + ")";
  return out;
}

// ------------------------------------------------------ table function scan

LateralTableFuncOp::LateralTableFuncOp(OperatorPtr child,
                                       const TableFunction* fn,
                                       std::vector<ExprPtr> args,
                                       const std::string& alias)
    : child_(std::move(child)), fn_(fn), args_(std::move(args)) {
  if (child_ != nullptr) columns_ = child_->columns();
  for (const ColumnDef& c : fn_->output) {
    columns_.push_back({alias + "." + c.name, c.type});
  }
}

Status LateralTableFuncOp::Open(ExecContext* ctx) {
  ctx_ = ctx;
  arena_.Rebind(ctx->guard);
  input_valid_ = false;
  emitted_single_ = false;
  fn_rows_.clear();
  fn_pos_ = 0;
  if (child_ != nullptr) return child_->Open(ctx);
  return Status::OK();
}

Result<bool> LateralTableFuncOp::Next(Tuple* out) {
  while (true) {
    RETURN_IF_ERROR(ctx_->CheckPoint());
    if (!input_valid_) {
      if (child_ == nullptr) {
        if (emitted_single_) return false;
        emitted_single_ = true;
        input_row_.clear();
      } else {
        XO_ASSIGN_OR_RETURN(bool ok, child_->Next(&input_row_));
        if (!ok) return false;
      }
      input_valid_ = true;
      XO_ASSIGN_OR_RETURN(auto args, EvalKeys(args_, input_row_, ctx_));
      // Each input row's function results replace the previous row's:
      // re-account the batch rather than accumulating charges forever.
      arena_.Release();
      XO_ASSIGN_OR_RETURN(fn_rows_, InvokeTable(*fn_, args, &ctx_->udf_stats));
      for (const Tuple& r : fn_rows_) {
        RETURN_IF_ERROR(arena_.Charge(ApproxTupleBytes(r)));
      }
      fn_pos_ = 0;
    }
    if (fn_pos_ < fn_rows_.size()) {
      AppendRow(input_row_, fn_rows_[fn_pos_++], out);
      return true;
    }
    input_valid_ = false;
  }
}

void LateralTableFuncOp::Close() {
  if (child_ != nullptr) child_->Close();
  fn_rows_.clear();
  arena_.Release();
}

std::string LateralTableFuncOp::Label() const {
  std::string out = "TableFunction(" + fn_->name + "(";
  for (size_t i = 0; i < args_.size(); ++i) {
    if (i > 0) out += ", ";
    out += args_[i]->ToString();
  }
  return out + "))";
}

}  // namespace xorator::ordb
