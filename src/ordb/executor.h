#ifndef XORATOR_ORDB_EXECUTOR_H_
#define XORATOR_ORDB_EXECUTOR_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/result.h"
#include "ordb/catalog.h"
#include "ordb/exec_context.h"
#include "ordb/expr.h"

namespace xorator::ordb {

/// Output column of an operator: display name plus type.
struct ColumnMeta {
  std::string name;
  TypeId type = TypeId::kVarchar;
};

/// Volcano-style physical operator. Usage: Open, Next until false, Close.
///
/// Guard contract (DESIGN.md §12): every Next() implementation and every
/// loop that materializes child rows inside Open() polls
/// `ctx->CheckPoint()` once per row, so deadlines, cancellation and the
/// memory budget are honored mid-operator; materialized state (hash
/// tables, sort buffers, ...) is charged to the guard via a TrackedArena
/// that Close() — and the destructor — releases. tools/lint enforces the
/// CheckPoint-in-Next half of the contract.
class Operator {
 public:
  virtual ~Operator() = default;

  [[nodiscard]] virtual Status Open(ExecContext* ctx) = 0;
  /// Produces the next row into `*out`; returns false at end of stream.
  [[nodiscard]] virtual Result<bool> Next(Tuple* out) = 0;
  virtual void Close() {}

  const std::vector<ColumnMeta>& columns() const { return columns_; }

  /// One-line operator label for EXPLAIN.
  virtual std::string Label() const = 0;
  virtual std::vector<const Operator*> Children() const { return {}; }

  /// Renders this subtree as an indented EXPLAIN plan.
  std::string Explain(int indent = 0) const;

 protected:
  std::vector<ColumnMeta> columns_;
};

using OperatorPtr = std::unique_ptr<Operator>;

/// Full-table scan.
class SeqScanOp : public Operator {
 public:
  SeqScanOp(const TableInfo* table, const std::string& alias);

  [[nodiscard]] Status Open(ExecContext* ctx) override;
  [[nodiscard]] Result<bool> Next(Tuple* out) override;
  std::string Label() const override;

 private:
  /// Flows the scanner's degraded-scan skip counters into the context
  /// incrementally, so partially-consumed scans (LIMIT, errors) still
  /// report what they skipped.
  void SyncSkipCounters();

  const TableInfo* table_;
  std::string alias_;
  ExecContext* ctx_ = nullptr;
  std::unique_ptr<HeapFile::Scanner> scanner_;
  /// Reused record buffer: RowView parses it in place every Next(), so its
  /// capacity (and the output tuple's string capacity) is recycled across
  /// rows instead of reallocated per row (DESIGN.md section 14).
  std::string record_;
  uint64_t synced_skipped_pages_ = 0;
  uint64_t synced_skipped_records_ = 0;
};

/// Point index scan: rows of `table` whose `index` column equals `key`.
/// String keys are hashed in the index, so the column value is rechecked.
class IndexScanOp : public Operator {
 public:
  IndexScanOp(const TableInfo* table, const IndexInfo* index, Value key,
              const std::string& alias);

  [[nodiscard]] Status Open(ExecContext* ctx) override;
  [[nodiscard]] Result<bool> Next(Tuple* out) override;
  std::string Label() const override;

 private:
  const TableInfo* table_;
  const IndexInfo* index_;
  Value key_;
  std::string alias_;
  ExecContext* ctx_ = nullptr;
  std::vector<uint64_t> rids_;
  /// Reused record buffer for in-place key rechecks (see SeqScanOp).
  std::string record_;
  size_t pos_ = 0;
};

/// Drops rows whose predicate does not evaluate to TRUE.
class FilterOp : public Operator {
 public:
  FilterOp(OperatorPtr child, ExprPtr predicate);

  [[nodiscard]] Status Open(ExecContext* ctx) override;
  [[nodiscard]] Result<bool> Next(Tuple* out) override;
  void Close() override { child_->Close(); }
  std::string Label() const override;
  std::vector<const Operator*> Children() const override {
    return {child_.get()};
  }

 private:
  OperatorPtr child_;
  ExprPtr predicate_;
  ExecContext* ctx_ = nullptr;
};

/// Evaluates one output expression per projected column.
class ProjectOp : public Operator {
 public:
  ProjectOp(OperatorPtr child, std::vector<ExprPtr> exprs,
            std::vector<std::string> names);

  [[nodiscard]] Status Open(ExecContext* ctx) override;
  [[nodiscard]] Result<bool> Next(Tuple* out) override;
  void Close() override { child_->Close(); }
  std::string Label() const override;
  std::vector<const Operator*> Children() const override {
    return {child_.get()};
  }

 private:
  OperatorPtr child_;
  std::vector<ExprPtr> exprs_;
  ExecContext* ctx_ = nullptr;
};

/// Nested-loop join; the right input is materialized on Open.
class NestedLoopJoinOp : public Operator {
 public:
  NestedLoopJoinOp(OperatorPtr left, OperatorPtr right, ExprPtr predicate);

  [[nodiscard]] Status Open(ExecContext* ctx) override;
  [[nodiscard]] Result<bool> Next(Tuple* out) override;
  void Close() override;
  std::string Label() const override;
  std::vector<const Operator*> Children() const override {
    return {left_.get(), right_.get()};
  }

 private:
  OperatorPtr left_;
  OperatorPtr right_;
  ExprPtr predicate_;  // may be null (cross product)
  ExecContext* ctx_ = nullptr;
  TrackedArena arena_;  // accounts the materialized right side
  std::vector<Tuple> right_rows_;
  Tuple left_row_;
  bool left_valid_ = false;
  size_t right_pos_ = 0;
};

/// Hash join on equi-key lists; the left input is the build side.
class HashJoinOp : public Operator {
 public:
  HashJoinOp(OperatorPtr left, OperatorPtr right,
             std::vector<ExprPtr> left_keys, std::vector<ExprPtr> right_keys,
             ExprPtr residual);

  [[nodiscard]] Status Open(ExecContext* ctx) override;
  [[nodiscard]] Result<bool> Next(Tuple* out) override;
  void Close() override;
  std::string Label() const override;
  std::vector<const Operator*> Children() const override {
    return {left_.get(), right_.get()};
  }

 private:
  OperatorPtr left_;
  OperatorPtr right_;
  std::vector<ExprPtr> left_keys_;
  std::vector<ExprPtr> right_keys_;
  ExprPtr residual_;  // may be null
  ExecContext* ctx_ = nullptr;
  TrackedArena arena_;  // accounts the build-side hash table
  std::unordered_map<uint64_t, std::vector<Tuple>> table_;
  Tuple probe_row_;
  const std::vector<Tuple>* matches_ = nullptr;
  size_t match_pos_ = 0;
};

/// Sort-merge join: both inputs are materialized and sorted on Open. This
/// is the join the planner picks when the build side exceeds the sort heap
/// (mirroring DB2's behaviour the paper observes at larger scale factors).
class SortMergeJoinOp : public Operator {
 public:
  SortMergeJoinOp(OperatorPtr left, OperatorPtr right,
                  std::vector<ExprPtr> left_keys,
                  std::vector<ExprPtr> right_keys, ExprPtr residual);

  [[nodiscard]] Status Open(ExecContext* ctx) override;
  [[nodiscard]] Result<bool> Next(Tuple* out) override;
  void Close() override;
  std::string Label() const override;
  std::vector<const Operator*> Children() const override {
    return {left_.get(), right_.get()};
  }

 private:
  [[nodiscard]] Result<bool> AdvanceRuns();

  OperatorPtr left_;
  OperatorPtr right_;
  std::vector<ExprPtr> left_keys_;
  std::vector<ExprPtr> right_keys_;
  ExprPtr residual_;
  ExecContext* ctx_ = nullptr;
  TrackedArena arena_;  // accounts both materialized, sorted inputs
  std::vector<std::pair<std::vector<Value>, Tuple>> left_rows_;
  std::vector<std::pair<std::vector<Value>, Tuple>> right_rows_;
  size_t li_ = 0, ri_ = 0;
  size_t run_l_end_ = 0, run_r_end_ = 0;
  size_t cur_l_ = 0, cur_r_ = 0;
  bool in_run_ = false;
};

/// Index nested-loop join: for each outer row, look up matching inner rows
/// through the inner table's index.
class IndexNestedLoopJoinOp : public Operator {
 public:
  IndexNestedLoopJoinOp(OperatorPtr left, const TableInfo* inner,
                        const IndexInfo* index, ExprPtr left_key,
                        const std::string& inner_alias, ExprPtr residual);

  [[nodiscard]] Status Open(ExecContext* ctx) override;
  [[nodiscard]] Result<bool> Next(Tuple* out) override;
  void Close() override;
  std::string Label() const override;
  std::vector<const Operator*> Children() const override {
    return {left_.get()};
  }

 private:
  OperatorPtr left_;
  const TableInfo* inner_;
  const IndexInfo* index_;
  ExprPtr left_key_;
  ExprPtr residual_;
  ExecContext* ctx_ = nullptr;
  Tuple left_row_;
  bool left_valid_ = false;
  std::vector<uint64_t> rids_;
  /// Reused record buffer / inner tuple for in-place rechecks and
  /// capacity-recycling materialization (see SeqScanOp).
  std::string record_;
  Tuple inner_row_;
  size_t rid_pos_ = 0;
};

/// ORDER BY: materializes and sorts on Open.
class SortOp : public Operator {
 public:
  SortOp(OperatorPtr child, std::vector<ExprPtr> keys,
         std::vector<bool> ascending);

  [[nodiscard]] Status Open(ExecContext* ctx) override;
  [[nodiscard]] Result<bool> Next(Tuple* out) override;
  void Close() override;
  std::string Label() const override;
  std::vector<const Operator*> Children() const override {
    return {child_.get()};
  }

 private:
  OperatorPtr child_;
  std::vector<ExprPtr> keys_;
  std::vector<bool> ascending_;
  ExecContext* ctx_ = nullptr;
  TrackedArena arena_;  // accounts the materialized sort input
  std::vector<Tuple> rows_;
  size_t pos_ = 0;
};

/// Hash-based DISTINCT over whole rows.
class DistinctOp : public Operator {
 public:
  explicit DistinctOp(OperatorPtr child);

  [[nodiscard]] Status Open(ExecContext* ctx) override;
  [[nodiscard]] Result<bool> Next(Tuple* out) override;
  void Close() override;
  std::string Label() const override;
  std::vector<const Operator*> Children() const override {
    return {child_.get()};
  }

 private:
  OperatorPtr child_;
  ExecContext* ctx_ = nullptr;
  TrackedArena arena_;  // accounts the seen-row fingerprint set
  std::unordered_set<std::string> seen_;
};

/// Supported aggregate functions.
enum class AggKind { kCountStar, kCount, kSum, kMin, kMax };

/// One aggregate in a GROUP BY plan: function + argument + label.
struct AggregateSpec {
  AggKind kind = AggKind::kCountStar;
  ExprPtr arg;  // null for COUNT(*)
  std::string name;
};

/// Hash aggregation: GROUP BY keys + aggregates.
class AggregateOp : public Operator {
 public:
  AggregateOp(OperatorPtr child, std::vector<ExprPtr> group_keys,
              std::vector<std::string> group_names,
              std::vector<AggregateSpec> aggs);

  [[nodiscard]] Status Open(ExecContext* ctx) override;
  [[nodiscard]] Result<bool> Next(Tuple* out) override;
  void Close() override;
  std::string Label() const override;
  std::vector<const Operator*> Children() const override {
    return {child_.get()};
  }

 private:
  OperatorPtr child_;
  std::vector<ExprPtr> group_keys_;
  std::vector<AggregateSpec> aggs_;
  ExecContext* ctx_ = nullptr;
  TrackedArena arena_;  // accounts the group hash table / result rows
  std::vector<Tuple> results_;
  size_t pos_ = 0;
};

/// Lateral table-function application: for each input row (or exactly one
/// empty row if `child` is null), evaluates the argument expressions against
/// it, invokes the table function, and emits input ++ function columns.
/// This implements the paper's `FROM speakers, table(unnest(...)) u` form.
class LateralTableFuncOp : public Operator {
 public:
  LateralTableFuncOp(OperatorPtr child, const TableFunction* fn,
                     std::vector<ExprPtr> args, const std::string& alias);

  [[nodiscard]] Status Open(ExecContext* ctx) override;
  [[nodiscard]] Result<bool> Next(Tuple* out) override;
  void Close() override;
  std::string Label() const override;
  std::vector<const Operator*> Children() const override {
    if (child_ == nullptr) return {};
    return {child_.get()};
  }

 private:
  OperatorPtr child_;  // may be null
  const TableFunction* fn_;
  std::vector<ExprPtr> args_;
  ExecContext* ctx_ = nullptr;
  TrackedArena arena_;  // accounts the per-input-row function results
  Tuple input_row_;
  bool input_valid_ = false;
  bool emitted_single_ = false;
  std::vector<Tuple> fn_rows_;
  size_t fn_pos_ = 0;
};

/// Hashes a key-value list for join/distinct bookkeeping.
uint64_t HashValues(const std::vector<Value>& values);

}  // namespace xorator::ordb

#endif  // XORATOR_ORDB_EXECUTOR_H_
