#include "ordb/expr.h"

#include "common/str_util.h"

namespace xorator::ordb {

std::string_view CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "<>";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

Result<Value> ColumnRefExpr::Eval(const Tuple& row, ExecContext*) const {
  if (index_ >= row.size()) {
    return Status::Internal("column index " + std::to_string(index_) +
                            " out of range for row of " +
                            std::to_string(row.size()));
  }
  return row[index_];
}

std::string LiteralExpr::ToString() const {
  if (value_.type() == TypeId::kVarchar) return "'" + value_.ToString() + "'";
  return value_.ToString();
}

Result<Value> CompareExpr::Eval(const Tuple& row, ExecContext* ctx) const {
  XO_ASSIGN_OR_RETURN(Value a, lhs_->Eval(row, ctx));
  XO_ASSIGN_OR_RETURN(Value b, rhs_->Eval(row, ctx));
  if (a.is_null() || b.is_null()) return Value::Bool(false);
  int c = a.Compare(b);
  switch (op_) {
    case CompareOp::kEq:
      return Value::Bool(c == 0);
    case CompareOp::kNe:
      return Value::Bool(c != 0);
    case CompareOp::kLt:
      return Value::Bool(c < 0);
    case CompareOp::kLe:
      return Value::Bool(c <= 0);
    case CompareOp::kGt:
      return Value::Bool(c > 0);
    case CompareOp::kGe:
      return Value::Bool(c >= 0);
  }
  return Status::Internal("bad compare op");
}

std::string CompareExpr::ToString() const {
  return lhs_->ToString() + " " + std::string(CompareOpName(op_)) + " " +
         rhs_->ToString();
}

Result<Value> LogicExpr::Eval(const Tuple& row, ExecContext* ctx) const {
  XO_ASSIGN_OR_RETURN(Value a, lhs_->Eval(row, ctx));
  bool av = !a.is_null() && a.AsBool();
  switch (kind_) {
    case Kind::kNot:
      return Value::Bool(!av);
    case Kind::kAnd: {
      if (!av) return Value::Bool(false);
      XO_ASSIGN_OR_RETURN(Value b, rhs_->Eval(row, ctx));
      return Value::Bool(!b.is_null() && b.AsBool());
    }
    case Kind::kOr: {
      if (av) return Value::Bool(true);
      XO_ASSIGN_OR_RETURN(Value b, rhs_->Eval(row, ctx));
      return Value::Bool(!b.is_null() && b.AsBool());
    }
  }
  return Status::Internal("bad logic op");
}

std::string LogicExpr::ToString() const {
  switch (kind_) {
    case Kind::kNot:
      return "NOT (" + lhs_->ToString() + ")";
    case Kind::kAnd:
      return "(" + lhs_->ToString() + " AND " + rhs_->ToString() + ")";
    case Kind::kOr:
      return "(" + lhs_->ToString() + " OR " + rhs_->ToString() + ")";
  }
  return "?";
}

Result<Value> LikeExpr::Eval(const Tuple& row, ExecContext* ctx) const {
  XO_ASSIGN_OR_RETURN(Value v, input_->Eval(row, ctx));
  if (v.is_null()) return Value::Bool(false);
  return Value::Bool(LikeMatch(v.AsString(), pattern_));
}

std::string LikeExpr::ToString() const {
  return input_->ToString() + " LIKE '" + pattern_ + "'";
}

Result<Value> IsNullExpr::Eval(const Tuple& row, ExecContext* ctx) const {
  XO_ASSIGN_OR_RETURN(Value v, input_->Eval(row, ctx));
  return Value::Bool(negated_ ? !v.is_null() : v.is_null());
}

std::string IsNullExpr::ToString() const {
  return input_->ToString() + (negated_ ? " IS NOT NULL" : " IS NULL");
}

Result<Value> FunctionExpr::Eval(const Tuple& row, ExecContext* ctx) const {
  std::vector<Value> args;
  args.reserve(args_.size());
  for (const ExprPtr& a : args_) {
    XO_ASSIGN_OR_RETURN(Value v, a->Eval(row, ctx));
    args.push_back(std::move(v));
  }
  return InvokeScalar(*fn_, args, ctx != nullptr ? &ctx->udf_stats : nullptr);
}

std::string FunctionExpr::ToString() const {
  std::string out = fn_->name + "(";
  for (size_t i = 0; i < args_.size(); ++i) {
    if (i > 0) out += ", ";
    out += args_[i]->ToString();
  }
  return out + ")";
}

}  // namespace xorator::ordb
