#ifndef XORATOR_ORDB_EXPR_H_
#define XORATOR_ORDB_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "ordb/exec_context.h"
#include "ordb/tuple.h"

namespace xorator::ordb {

/// Comparison operators.
enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };
std::string_view CompareOpName(CompareOp op);

/// A bound, executable expression tree evaluated against a row.
class Expr {
 public:
  virtual ~Expr() = default;
  [[nodiscard]] virtual Result<Value> Eval(const Tuple& row, ExecContext* ctx) const = 0;
  virtual TypeId type() const = 0;
  virtual std::string ToString() const = 0;

  /// Collects the row indices this expression reads (for planning).
  virtual void CollectColumns(std::vector<size_t>* out) const = 0;
};

using ExprPtr = std::unique_ptr<Expr>;

/// Reference to column `index` of the operator's output row.
class ColumnRefExpr : public Expr {
 public:
  ColumnRefExpr(size_t index, std::string name, TypeId type)
      : index_(index), name_(std::move(name)), type_(type) {}

  size_t index() const { return index_; }
  const std::string& name() const { return name_; }

  [[nodiscard]] Result<Value> Eval(const Tuple& row, ExecContext* ctx) const override;
  TypeId type() const override { return type_; }
  std::string ToString() const override { return name_; }
  void CollectColumns(std::vector<size_t>* out) const override {
    out->push_back(index_);
  }

 private:
  size_t index_;
  std::string name_;
  TypeId type_;
};

/// A constant value.
class LiteralExpr : public Expr {
 public:
  explicit LiteralExpr(Value value) : value_(std::move(value)) {}

  const Value& value() const { return value_; }

  [[nodiscard]] Result<Value> Eval(const Tuple&, ExecContext*) const override {
    return value_;
  }
  TypeId type() const override { return value_.type(); }
  std::string ToString() const override;
  void CollectColumns(std::vector<size_t>*) const override {}

 private:
  Value value_;
};

/// Binary comparison (=, <>, <, <=, >, >=) with SQL NULL semantics.
class CompareExpr : public Expr {
 public:
  CompareExpr(CompareOp op, ExprPtr lhs, ExprPtr rhs)
      : op_(op), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}

  CompareOp op() const { return op_; }
  const Expr& lhs() const { return *lhs_; }
  const Expr& rhs() const { return *rhs_; }

  [[nodiscard]] Result<Value> Eval(const Tuple& row, ExecContext* ctx) const override;
  TypeId type() const override { return TypeId::kBoolean; }
  std::string ToString() const override;
  void CollectColumns(std::vector<size_t>* out) const override {
    lhs_->CollectColumns(out);
    rhs_->CollectColumns(out);
  }

 private:
  CompareOp op_;
  ExprPtr lhs_;
  ExprPtr rhs_;
};

/// AND / OR with short-circuit evaluation; NOT has a single child.
class LogicExpr : public Expr {
 public:
  enum class Kind { kAnd, kOr, kNot };

  LogicExpr(Kind kind, ExprPtr lhs, ExprPtr rhs)
      : kind_(kind), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}

  [[nodiscard]] Result<Value> Eval(const Tuple& row, ExecContext* ctx) const override;
  TypeId type() const override { return TypeId::kBoolean; }
  std::string ToString() const override;
  void CollectColumns(std::vector<size_t>* out) const override {
    lhs_->CollectColumns(out);
    if (rhs_ != nullptr) rhs_->CollectColumns(out);
  }

 private:
  Kind kind_;
  ExprPtr lhs_;
  ExprPtr rhs_;  // null for kNot
};

/// SQL LIKE with a constant pattern.
class LikeExpr : public Expr {
 public:
  LikeExpr(ExprPtr input, std::string pattern)
      : input_(std::move(input)), pattern_(std::move(pattern)) {}

  [[nodiscard]] Result<Value> Eval(const Tuple& row, ExecContext* ctx) const override;
  TypeId type() const override { return TypeId::kBoolean; }
  std::string ToString() const override;
  void CollectColumns(std::vector<size_t>* out) const override {
    input_->CollectColumns(out);
  }

 private:
  ExprPtr input_;
  std::string pattern_;
};

/// IS NULL / IS NOT NULL.
class IsNullExpr : public Expr {
 public:
  IsNullExpr(ExprPtr input, bool negated)
      : input_(std::move(input)), negated_(negated) {}

  [[nodiscard]] Result<Value> Eval(const Tuple& row, ExecContext* ctx) const override;
  TypeId type() const override { return TypeId::kBoolean; }
  std::string ToString() const override;
  void CollectColumns(std::vector<size_t>* out) const override {
    input_->CollectColumns(out);
  }

 private:
  ExprPtr input_;
  bool negated_;
};

/// A call to a registered scalar function; UDFs go through the marshaling
/// dispatch in InvokeScalar.
class FunctionExpr : public Expr {
 public:
  FunctionExpr(const ScalarFunction* fn, std::vector<ExprPtr> args)
      : fn_(fn), args_(std::move(args)) {}

  const ScalarFunction& fn() const { return *fn_; }

  [[nodiscard]] Result<Value> Eval(const Tuple& row, ExecContext* ctx) const override;
  TypeId type() const override { return fn_->return_type; }
  std::string ToString() const override;
  void CollectColumns(std::vector<size_t>* out) const override {
    for (const ExprPtr& a : args_) a->CollectColumns(out);
  }

 private:
  const ScalarFunction* fn_;
  std::vector<ExprPtr> args_;
};

}  // namespace xorator::ordb

#endif  // XORATOR_ORDB_EXPR_H_
