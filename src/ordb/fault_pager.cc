#include "ordb/fault_pager.h"

#include <cstring>

namespace xorator::ordb {

bool FaultInjectingPager::Chance(double rate) {
  if (rate <= 0) return false;
  return std::uniform_real_distribution<double>(0, 1)(rng_) < rate;
}

bool FaultInjectingPager::WalChance(double rate) {
  if (rate <= 0) return false;
  return std::uniform_real_distribution<double>(0, 1)(wal_rng_) < rate;
}

Status FaultInjectingPager::DrawWalAppend() {
  ++stats_.wal_appends;
  if (options_.wal_fail_after_appends >= 0 &&
      static_cast<int64_t>(stats_.wal_appends) >
          options_.wal_fail_after_appends) {
    ++stats_.wal_failures;
    return Status::IOError("injected WAL device failure after " +
                           std::to_string(options_.wal_fail_after_appends) +
                           " appends");
  }
  if (WalChance(options_.wal_append_fail_rate)) {
    ++stats_.wal_failures;
    return Status::IOError("injected WAL append failure");
  }
  return Status::OK();
}

Status FaultInjectingPager::Draw(bool is_write) {
  if (is_write && options_.fail_after_writes >= 0 &&
      static_cast<int64_t>(stats_.writes) >= options_.fail_after_writes) {
    ++stats_.crash_failures;
    return Status::IOError("injected crash: disk gone after " +
                           std::to_string(options_.fail_after_writes) +
                           " writes");
  }
  if (Chance(options_.permanent_rate)) {
    ++stats_.permanents;
    consecutive_transients_ = 0;
    return Status::IOError("injected permanent fault");
  }
  if (consecutive_transients_ < options_.max_consecutive_transients &&
      Chance(options_.transient_rate)) {
    ++stats_.transients;
    ++consecutive_transients_;
    return Status::Unavailable("injected transient fault");
  }
  consecutive_transients_ = 0;
  return Status::OK();
}

Result<PageId> FaultInjectingPager::Allocate() {
  XO_RETURN_NOT_OK(Draw(/*is_write=*/true));
  auto id = base_->Allocate();
  if (id.ok()) ++stats_.writes;
  return id;
}

Status FaultInjectingPager::Read(PageId id, char* buf) {
  XO_RETURN_NOT_OK(Draw(/*is_write=*/false));
  Status s = base_->Read(id, buf);
  if (s.ok()) ++stats_.reads;
  return s;
}

Status FaultInjectingPager::Write(PageId id, const char* buf) {
  XO_RETURN_NOT_OK(Draw(/*is_write=*/true));
  if (Chance(options_.torn_write_rate)) {
    // Persist only a prefix: read-modify-write so the page tail keeps its
    // previous content, exactly like a write cut short by power loss.
    ++stats_.torn_writes;
    size_t cut = 1 + static_cast<size_t>(
                         std::uniform_int_distribution<uint64_t>(
                             0, kPageSize - 2)(rng_));
    char torn[kPageSize];
    Status read = base_->Read(id, torn);
    if (!read.ok()) std::memset(torn, 0, kPageSize);
    std::memcpy(torn, buf, cut);
    XO_DISCARD_STATUS(base_->Write(id, torn),
                      "a torn write is reported as the IOError below either "
                      "way; whether the partial page also reached disk only "
                      "changes which corruption the checksum later catches");
    return Status::IOError("injected torn write of page " +
                           std::to_string(id) + " (" + std::to_string(cut) +
                           " bytes reached disk)");
  }
  if (Chance(options_.bit_flip_rate)) {
    ++stats_.bit_flips;
    size_t bit = static_cast<size_t>(std::uniform_int_distribution<uint64_t>(
        0, kPageSize * 8 - 1)(rng_));
    char flipped[kPageSize];
    std::memcpy(flipped, buf, kPageSize);
    flipped[bit / 8] = static_cast<char>(flipped[bit / 8] ^ (1u << (bit % 8)));
    Status s = base_->Write(id, flipped);
    if (s.ok()) ++stats_.writes;  // the caller believes it succeeded
    return s;
  }
  Status s = base_->Write(id, buf);
  if (s.ok()) ++stats_.writes;
  return s;
}

Status FaultInjectingPager::Flush() {
  if (WalChance(options_.sync_fail_rate)) {
    ++stats_.sync_failures;
    return Status::IOError("injected sync failure");
  }
  return base_->Flush();
}

}  // namespace xorator::ordb
