#ifndef XORATOR_ORDB_FAULT_PAGER_H_
#define XORATOR_ORDB_FAULT_PAGER_H_

#include <cstdint>
#include <memory>
#include <random>

#include "common/result.h"
#include "ordb/page.h"
#include "ordb/pager.h"

namespace xorator::ordb {

/// Deterministic fault schedule for FaultInjectingPager. All rates are
/// probabilities in [0, 1] drawn from a PRNG seeded with `seed`, so a
/// given (schedule, operation sequence) always injects the same faults.
struct FaultOptions {
  uint64_t seed = 42;

  /// Rate of transient failures (StatusCode::kUnavailable) on reads and
  /// writes. The same operation never fails more than
  /// `max_consecutive_transients` times in a row, so the buffer pool's
  /// bounded retry always eventually succeeds on a purely transient
  /// schedule.
  double transient_rate = 0;
  int max_consecutive_transients = 2;

  /// Rate of permanent failures (StatusCode::kIOError) on reads and
  /// writes. Not retryable.
  double permanent_rate = 0;

  /// Rate of torn writes: only a random prefix of the page reaches the
  /// underlying pager and the write reports kIOError.
  double torn_write_rate = 0;

  /// Rate of silent single-bit flips on writes: the write "succeeds" but
  /// the stored page differs by one bit (caught later by the page
  /// checksum as kCorruption).
  double bit_flip_rate = 0;

  /// Crash mode: after this many successful writes/allocations, every
  /// subsequent write and allocation fails with kIOError (simulating the
  /// process losing its disk mid-run). Negative disables.
  int64_t fail_after_writes = -1;

  // -- Per-file scoping: the knobs above hit the DATA file only. The WAL
  // -- and sync knobs below are drawn from an independent PRNG stream, so
  // -- WAL-append and checkpoint failure paths are injectable without
  // -- perturbing the data-file fault schedule (and vice versa).

  /// Rate of kIOError injected into WAL record appends (wired into
  /// Wal::set_fault_hook by Database::Open). Exercises the engine's
  /// read-only latch: a failed pre-image append disables mutations.
  double wal_append_fail_rate = 0;

  /// After this many WAL appends, every subsequent append fails with
  /// kIOError (a full WAL device). Negative disables.
  int64_t wal_fail_after_appends = -1;

  /// Rate of kIOError on Flush() — the checkpoint's durability point —
  /// independently of per-page write faults.
  double sync_fail_rate = 0;
};

/// Counters of what was actually injected.
struct FaultStats {
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t transients = 0;
  uint64_t permanents = 0;
  uint64_t torn_writes = 0;
  uint64_t bit_flips = 0;
  uint64_t crash_failures = 0;
  /// WAL appends that passed through the hook (successful or not).
  uint64_t wal_appends = 0;
  /// WAL appends failed by wal_append_fail_rate / wal_fail_after_appends.
  uint64_t wal_failures = 0;
  /// Flush() calls failed by sync_fail_rate.
  uint64_t sync_failures = 0;
};

/// A Pager decorator that injects faults according to a seeded,
/// deterministic schedule — the harness behind tests/recovery_test.cc and
/// the fault scenarios in tests/robustness_test.cc.
class FaultInjectingPager : public Pager {
 public:
  FaultInjectingPager(std::unique_ptr<Pager> base, const FaultOptions& options)
      : base_(std::move(base)),
        options_(options),
        rng_(options.seed),
        wal_rng_(options.seed ^ kWalStreamSalt) {}

  [[nodiscard]] Result<PageId> Allocate() override;
  [[nodiscard]] Status Read(PageId id, char* buf) override;
  [[nodiscard]] Status Write(PageId id, const char* buf) override;
  /// Draws the sync fault (sync_fail_rate) before delegating — the
  /// checkpoint's pager Flush is independently injectable.
  [[nodiscard]] Status Flush() override;
  PageId page_count() const override { return base_->page_count(); }

  /// Draws the WAL-append fault decision; Database::Open installs this as
  /// the Wal's fault hook. Uses the independent WAL PRNG stream, so data
  /// and WAL schedules do not perturb each other.
  [[nodiscard]] Status DrawWalAppend();

  /// Replaces the fault schedule mid-run (e.g. a test clearing faults
  /// before TryRecover). Neither PRNG stream is reseeded, so determinism
  /// per (seed, operation sequence) is preserved.
  void set_options(const FaultOptions& options) { options_ = options; }

  const FaultStats& stats() const { return stats_; }
  Pager* base() { return base_.get(); }

 private:
  /// Decorrelates the WAL PRNG stream from the data-file stream.
  static constexpr uint64_t kWalStreamSalt = 0x57414C1957414C19ull;

  /// Draws the fault decision for one operation; OK means "pass through".
  [[nodiscard]] Status Draw(bool is_write);
  bool Chance(double rate);
  bool WalChance(double rate);

  std::unique_ptr<Pager> base_;
  FaultOptions options_;
  std::mt19937_64 rng_;
  std::mt19937_64 wal_rng_;
  FaultStats stats_;
  int consecutive_transients_ = 0;
};

}  // namespace xorator::ordb

#endif  // XORATOR_ORDB_FAULT_PAGER_H_
