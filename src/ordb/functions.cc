#include "ordb/functions.h"

#include "common/str_util.h"

namespace xorator::ordb {

namespace {

Status CheckArity(std::string_view name, int arity, size_t given) {
  if (arity >= 0 && static_cast<size_t>(arity) != given) {
    return Status::InvalidArgument(std::string(name) + " expects " +
                                   std::to_string(arity) + " arguments, got " +
                                   std::to_string(given));
  }
  return Status::OK();
}

Result<Value> BuiltinLength(const std::vector<Value>& args) {
  if (args[0].is_null()) return Value::Null();
  return Value::Int(static_cast<int64_t>(args[0].AsString().size()));
}

// substr(s, start [, len]) with 1-based start, like DB2's substr.
Result<Value> BuiltinSubstr(const std::vector<Value>& args) {
  if (args.size() < 2 || args.size() > 3) {
    return Status::InvalidArgument("substr expects 2 or 3 arguments");
  }
  if (args[0].is_null() || args[1].is_null()) return Value::Null();
  const std::string& s = args[0].AsString();
  int64_t start = args[1].AsInt();
  if (start < 1) start = 1;
  size_t from = static_cast<size_t>(start - 1);
  if (from >= s.size()) return Value::Varchar("");
  size_t len = s.size() - from;
  if (args.size() == 3 && !args[2].is_null()) {
    int64_t want = args[2].AsInt();
    if (want < 0) want = 0;
    len = std::min<size_t>(len, static_cast<size_t>(want));
  }
  return Value::Varchar(s.substr(from, len));
}

Result<Value> BuiltinUpper(const std::vector<Value>& args) {
  if (args[0].is_null()) return Value::Null();
  return Value::Varchar(ToUpper(args[0].AsString()));
}

Result<Value> BuiltinLower(const std::vector<Value>& args) {
  if (args[0].is_null()) return Value::Null();
  return Value::Varchar(ToLower(args[0].AsString()));
}

Result<Value> BuiltinConcat(const std::vector<Value>& args) {
  std::string out;
  for (const Value& v : args) {
    if (!v.is_null()) out += v.AsString();
  }
  return Value::Varchar(std::move(out));
}

}  // namespace

FunctionRegistry FunctionRegistry::WithBuiltins() {
  FunctionRegistry reg;
  auto add = [&reg](std::string name, TypeId ret, int arity, bool udf,
                    std::function<Result<Value>(const std::vector<Value>&)>
                        impl) {
    ScalarFunction fn;
    fn.name = std::move(name);
    fn.return_type = ret;
    fn.arity = arity;
    fn.is_udf = udf;
    fn.impl = std::move(impl);
    XO_DISCARD_STATUS(reg.RegisterScalar(std::move(fn)),
                      "the built-in names are unique by construction, so "
                      "kAlreadyExists cannot occur here");
  };
  add("length", TypeId::kInteger, 1, false, BuiltinLength);
  add("substr", TypeId::kVarchar, -1, false, BuiltinSubstr);
  add("upper", TypeId::kVarchar, 1, false, BuiltinUpper);
  add("lower", TypeId::kVarchar, 1, false, BuiltinLower);
  add("concat", TypeId::kVarchar, -1, false, BuiltinConcat);
  // UDF twins of the built-ins: identical logic, UDF dispatch path. These
  // back the paper's Figure 14 overhead experiment (QT1/QT2).
  add("udf_length", TypeId::kInteger, 1, true, BuiltinLength);
  add("udf_substr", TypeId::kVarchar, -1, true, BuiltinSubstr);
  return reg;
}

Status FunctionRegistry::RegisterScalar(ScalarFunction fn) {
  std::string key = ToLower(fn.name);
  fn.name = key;
  if (!scalar_.emplace(key, std::move(fn)).second) {
    return Status::AlreadyExists("scalar function '" + key + "' exists");
  }
  return Status::OK();
}

Status FunctionRegistry::RegisterTable(TableFunction fn) {
  std::string key = ToLower(fn.name);
  fn.name = key;
  if (!table_.emplace(key, std::move(fn)).second) {
    return Status::AlreadyExists("table function '" + key + "' exists");
  }
  return Status::OK();
}

const ScalarFunction* FunctionRegistry::FindScalar(
    std::string_view name) const {
  auto it = scalar_.find(ToLower(name));
  return it == scalar_.end() ? nullptr : &it->second;
}

const TableFunction* FunctionRegistry::FindTable(std::string_view name) const {
  auto it = table_.find(ToLower(name));
  return it == table_.end() ? nullptr : &it->second;
}

Result<Value> InvokeScalar(const ScalarFunction& fn,
                           const std::vector<Value>& args, UdfStats* stats) {
  XO_RETURN_NOT_OK(CheckArity(fn.name, fn.arity, args.size()));
  if (!fn.is_udf) {
    return fn.impl(args);
  }
  // UDF ABI emulation: marshal arguments into a private call frame. The
  // deep copies model crossing the engine/UDF boundary, where argument
  // storage is handed to the function by value (DB2 passes UDF arguments
  // in separate buffers even in NOT FENCED mode).
  std::vector<Value> frame;
  frame.reserve(args.size());
  uint64_t bytes = 0;
  for (const Value& v : args) {
    switch (v.type()) {
      case TypeId::kVarchar: {
        std::string copy(v.AsString().data(), v.AsString().size());
        bytes += copy.size();
        frame.push_back(Value::Varchar(std::move(copy)));
        break;
      }
      case TypeId::kXadt: {
        std::string copy(v.AsString().data(), v.AsString().size());
        bytes += copy.size();
        frame.push_back(Value::Xadt(std::move(copy)));
        break;
      }
      default:
        bytes += 8;
        frame.push_back(v);
    }
  }
  if (stats != nullptr) {
    ++stats->scalar_calls;
    stats->marshaled_bytes += bytes;
  }
  XO_ASSIGN_OR_RETURN(Value result, fn.impl(frame));
  // Marshal the result back out of the call frame.
  if (result.type() == TypeId::kVarchar) {
    std::string copy(result.AsString().data(), result.AsString().size());
    if (stats != nullptr) stats->marshaled_bytes += copy.size();
    return Value::Varchar(std::move(copy));
  }
  if (result.type() == TypeId::kXadt) {
    std::string copy(result.AsString().data(), result.AsString().size());
    if (stats != nullptr) stats->marshaled_bytes += copy.size();
    return Value::Xadt(std::move(copy));
  }
  return result;
}

Result<std::vector<Tuple>> InvokeTable(const TableFunction& fn,
                                       const std::vector<Value>& args,
                                       UdfStats* stats) {
  XO_RETURN_NOT_OK(CheckArity(fn.name, fn.arity, args.size()));
  if (stats != nullptr && fn.is_udf) ++stats->table_calls;
  return fn.impl(args);
}

}  // namespace xorator::ordb
