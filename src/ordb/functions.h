#ifndef XORATOR_ORDB_FUNCTIONS_H_
#define XORATOR_ORDB_FUNCTIONS_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "ordb/tuple.h"
#include "ordb/value.h"

namespace xorator::ordb {

/// Counters on user-defined-function dispatch, used by the Figure 14
/// experiment to quantify UDF overhead.
struct UdfStats {
  uint64_t scalar_calls = 0;
  uint64_t table_calls = 0;
  uint64_t marshaled_bytes = 0;
};

/// A scalar function. Built-ins are evaluated directly on the argument
/// values; functions registered with `is_udf = true` go through the UDF
/// dispatch path, which (like a real engine's UDF ABI) deep-copies every
/// argument into a private call frame before invocation and copies the
/// result back out.
struct ScalarFunction {
  std::string name;  // lower-case
  TypeId return_type = TypeId::kVarchar;
  int arity = -1;  // -1: variadic
  bool is_udf = false;
  std::function<Result<Value>(const std::vector<Value>&)> impl;
};

/// A table function (e.g. the paper's `unnest`): takes scalar arguments,
/// returns rows.
struct TableFunction {
  std::string name;  // lower-case
  std::vector<ColumnDef> output;
  int arity = -1;
  bool is_udf = true;  // table functions are external UDFs in the paper
  std::function<Result<std::vector<Tuple>>(const std::vector<Value>&)> impl;
};

/// Name-keyed registry of scalar and table functions. Lookup is
/// case-insensitive (names are interned lower-case).
class FunctionRegistry {
 public:
  /// Creates a registry pre-populated with the SQL built-ins
  /// (length, substr, upper, lower, concat) and their UDF twins
  /// (udf_length, udf_substr) used by the Figure 14 experiment.
  static FunctionRegistry WithBuiltins();

  [[nodiscard]] Status RegisterScalar(ScalarFunction fn);
  [[nodiscard]] Status RegisterTable(TableFunction fn);

  const ScalarFunction* FindScalar(std::string_view name) const;
  const TableFunction* FindTable(std::string_view name) const;

 private:
  std::map<std::string, ScalarFunction> scalar_;
  std::map<std::string, TableFunction> table_;
};

/// Invokes `fn` through the appropriate dispatch path, updating `stats`
/// (which may be null) for UDFs.
[[nodiscard]] Result<Value> InvokeScalar(const ScalarFunction& fn,
                           const std::vector<Value>& args, UdfStats* stats);

[[nodiscard]] Result<std::vector<Tuple>> InvokeTable(const TableFunction& fn,
                                       const std::vector<Value>& args,
                                       UdfStats* stats);

}  // namespace xorator::ordb

#endif  // XORATOR_ORDB_FUNCTIONS_H_
