#include "ordb/health.h"

#include <cassert>

namespace xorator::ordb {

std::string_view HealthStateName(HealthState state) {
  switch (state) {
    case HealthState::kHealthy:
      return "Healthy";
    case HealthState::kDegraded:
      return "Degraded";
    case HealthState::kReadOnly:
      return "ReadOnly";
    case HealthState::kFailed:
      return "Failed";
  }
  return "Unknown";
}

HealthSnapshot EngineHealth::Snapshot() const {
  xo::MutexLock lock(&mu_);
  HealthSnapshot snap;
  snap.state = state();
  snap.transitions = transitions();
  snap.detail = detail_;
  return snap;
}

void EngineHealth::Escalate(HealthState to, std::string detail) {
  xo::MutexLock lock(&mu_);
  const int cur = state_.load(std::memory_order_relaxed);
  const int want = static_cast<int>(to);
  if (want > cur) {
    state_.store(want, std::memory_order_relaxed);
    transitions_.fetch_add(1, std::memory_order_relaxed);
    detail_ = std::move(detail);
  } else if (want == cur && !detail.empty()) {
    // Same severity again: keep the freshest reason, no transition.
    detail_ = std::move(detail);
  }
}

void EngineHealth::ReportDegraded(std::string detail) {
  Escalate(HealthState::kDegraded, std::move(detail));
}

void EngineHealth::ReportReadOnly(std::string detail) {
  Escalate(HealthState::kReadOnly, std::move(detail));
}

void EngineHealth::ReportFailed(std::string detail) {
  Escalate(HealthState::kFailed, std::move(detail));
}

bool EngineHealth::Recover() {
  xo::MutexLock lock(&mu_);
  const HealthState cur =
      static_cast<HealthState>(state_.load(std::memory_order_relaxed));
  if (cur == HealthState::kHealthy) return true;
  if (cur == HealthState::kFailed) {
    // The machine's one illegal edge (see the class comment): kFailed is
    // terminal, and a caller claiming to have recovered a detached
    // storage stack is lying about an invariant. Fail the build's debug
    // tier loudly; stay failed in release.
    assert(false && "EngineHealth::Recover() called on a kFailed engine");
    return false;
  }
  state_.store(static_cast<int>(HealthState::kHealthy),
               std::memory_order_relaxed);
  transitions_.fetch_add(1, std::memory_order_relaxed);
  detail_.clear();
  return true;
}

Status EngineHealth::CheckWritable() const {
  xo::MutexLock lock(&mu_);
  const HealthState cur = state();
  if (cur == HealthState::kHealthy || cur == HealthState::kDegraded) {
    return Status::OK();
  }
  std::string msg = "engine is " + std::string(HealthStateName(cur)) +
                    "; mutations are disabled";
  if (!detail_.empty()) msg += " (" + detail_ + ")";
  if (cur == HealthState::kReadOnly) {
    // The state name, latched detail, and the recovery hint all ride the
    // message, and the retry-after hint rides the status itself — both
    // survive the wire protocol's ERROR frame, so a remote client's
    // backoff layer can tell "retry later, recovery may re-arm the
    // engine" from "give up" (DESIGN.md section 17). kReadOnly is not a
    // hot-retry: nothing changes until TryRecover() runs, so the hint is
    // deliberately coarse.
    msg += "; TryRecover() may re-arm it";
    return Status::Unavailable(std::move(msg))
        .WithRetryAfter(kReadOnlyRetryAfterMillis);
  }
  return Status::Unavailable(std::move(msg));
}

Status EngineHealth::CheckUsable() const {
  xo::MutexLock lock(&mu_);
  if (state() != HealthState::kFailed) return Status::OK();
  std::string msg = "engine is Failed; reopen the database";
  if (!detail_.empty()) msg += " (" + detail_ + ")";
  return Status::Unavailable(std::move(msg));
}

namespace {
thread_local DegradedScan* g_degraded_scan = nullptr;
}  // namespace

DegradedScan* CurrentDegradedScan() { return g_degraded_scan; }

ScopedDegradedScanBind::ScopedDegradedScanBind(DegradedScan* scan)
    : prev_(g_degraded_scan) {
  g_degraded_scan = scan;
}

ScopedDegradedScanBind::~ScopedDegradedScanBind() { g_degraded_scan = prev_; }

}  // namespace xorator::ordb
