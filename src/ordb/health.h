#ifndef XORATOR_ORDB_HEALTH_H_
#define XORATOR_ORDB_HEALTH_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/mutex.h"
#include "common/result.h"
#include "common/thread_annotations.h"

namespace xorator::ordb {

/// Availability state of the engine (DESIGN.md §13). States are ordered by
/// severity and transitions are monotone downward — a fault can only make
/// things worse — with `EngineHealth::Recover()` as the single upward edge
/// (kDegraded/kReadOnly back to kHealthy, driven by Database::TryRecover).
/// kFailed is terminal: the storage stack is gone and only reopening the
/// file helps.
enum class HealthState : int {
  /// Everything works; mutations and reads are both served.
  kHealthy = 0,
  /// Contained damage (e.g. quarantined pages). Mutations still run;
  /// strict scans touching the damage fail, skip_quarantined scans report
  /// it instead.
  kDegraded = 1,
  /// Durability is compromised (WAL append or checkpoint failed, meta page
  /// unreadable). SELECT/EXPLAIN keep working; mutations fail fast with
  /// kUnavailable carrying the latched detail.
  kReadOnly = 2,
  /// The storage stack is detached or unrecoverable. Terminal.
  kFailed = 3,
};

/// Human-readable name of `state` ("Healthy", "Degraded", ...).
std::string_view HealthStateName(HealthState state);

/// Point-in-time copy of the health machine, for PRAGMA health and the
/// resilience stats line.
struct HealthSnapshot {
  HealthState state = HealthState::kHealthy;
  /// Number of state changes since the engine opened (escalations and
  /// recoveries both count; same-severity detail refreshes do not).
  uint64_t transitions = 0;
  /// Why the engine left kHealthy (empty while healthy).
  std::string detail;
};

/// The engine health state machine, owned by Database (DESIGN.md §13).
///
/// Thread safety: fully thread-safe. The state itself is an atomic — a
/// mutation entry point polls it without locking — while the detail string
/// is guarded by an internal mutex. That mutex is a leaf of the lock
/// hierarchy: storage components report faults from under their own locks
/// (e.g. a buffer-pool bucket latch during a write-back), so EngineHealth
/// must never acquire anything on its way down.
///
/// Escalations latch: reporting a severity at or below the current state
/// refreshes the detail at equal severity and is otherwise a no-op, so the
/// machine can absorb fault storms without bouncing. The only illegal edge
/// is Recover() out of kFailed, which aborts in debug builds (the
/// death-tested contract) and reports failure in release builds.
class EngineHealth {
 public:
  EngineHealth() = default;
  EngineHealth(const EngineHealth&) = delete;
  EngineHealth& operator=(const EngineHealth&) = delete;

  /// Current state (relaxed atomic load; cheap enough for per-statement
  /// polling).
  [[nodiscard]] HealthState state() const {
    return static_cast<HealthState>(state_.load(std::memory_order_relaxed));
  }

  /// State changes since construction.
  [[nodiscard]] uint64_t transitions() const {
    return transitions_.load(std::memory_order_relaxed);
  }

  /// Coherent copy of state + transition count + detail.
  [[nodiscard]] HealthSnapshot Snapshot() const XO_EXCLUDES(mu_);

  /// Reports contained damage (quarantined page, failed write-back).
  /// Escalates kHealthy to kDegraded; never de-escalates.
  void ReportDegraded(std::string detail) XO_EXCLUDES(mu_);

  /// Reports a durability failure (WAL append, checkpoint, meta page).
  /// Escalates anything below kReadOnly to kReadOnly.
  void ReportReadOnly(std::string detail) XO_EXCLUDES(mu_);

  /// Reports an unrecoverable failure (storage stack detached). Terminal.
  void ReportFailed(std::string detail) XO_EXCLUDES(mu_);

  /// The one upward edge: re-arms a kDegraded/kReadOnly engine back to
  /// kHealthy after Database::TryRecover() re-verified the storage stack.
  /// No-op (returning true) when already healthy. Calling this on a
  /// kFailed engine is the machine's one illegal transition: debug builds
  /// abort (see the class comment); release builds return false and stay
  /// failed.
  [[nodiscard]] bool Recover() XO_EXCLUDES(mu_);

  /// OK while mutations may run (kHealthy/kDegraded); otherwise
  /// kUnavailable carrying the state name and latched detail — the
  /// fail-fast error mutation entry points return. For kReadOnly the
  /// status also carries a retry-after hint (kReadOnlyRetryAfterMillis):
  /// retrying can help, but only after TryRecover() re-arms the engine,
  /// so backoff layers should wait rather than hot-retry.
  [[nodiscard]] Status CheckWritable() const XO_EXCLUDES(mu_);

  /// Retry-after hint attached to kReadOnly mutation rejections: long
  /// enough that a well-behaved client backs off across a TryRecover()
  /// window instead of hammering a latched engine.
  static constexpr uint32_t kReadOnlyRetryAfterMillis = 500;

  /// OK unless the engine is kFailed (reads survive every other state).
  [[nodiscard]] Status CheckUsable() const XO_EXCLUDES(mu_);

 private:
  /// Latches `to` if it is strictly worse than the current state;
  /// refreshes the detail at equal severity.
  void Escalate(HealthState to, std::string detail) XO_EXCLUDES(mu_);

  /// Guards detail_ only (state/transitions are atomics). Leaf lock (rank
  /// kLeafHealth): reporters call in from under the buffer-pool bucket
  /// latches and Wal::mu_.
  mutable xo::Mutex mu_{xo::LockRank::kLeafHealth};
  std::atomic<int> state_{static_cast<int>(HealthState::kHealthy)};
  std::atomic<uint64_t> transitions_{0};
  std::string detail_ XO_GUARDED_BY(mu_);
};

/// Per-statement degraded-scan mode, bound to the executing thread the same
/// way QueryGuard is (CurrentGuard, DESIGN.md §12): the marshaled-UDF ABI
/// carries no ExecContext, so the XADT table functions consult this binding
/// to decide whether a malformed fragment aborts the query (strict, the
/// default) or is skipped and counted (skip_quarantined mode).
struct DegradedScan {
  /// True when the statement opted into skipping corrupt/undecodable data.
  bool skip_corrupt = false;
  /// XADT fragments skipped because they failed to parse.
  uint64_t skipped_fragments = 0;
};

/// The degraded-scan mode bound to the calling thread, or null (strict).
DegradedScan* CurrentDegradedScan();

/// Binds `scan` as the calling thread's CurrentDegradedScan() for the scope
/// of this object, restoring the previous binding on destruction.
class ScopedDegradedScanBind {
 public:
  /// Installs `scan` (may be null, which unbinds for the scope).
  explicit ScopedDegradedScanBind(DegradedScan* scan);
  ScopedDegradedScanBind(const ScopedDegradedScanBind&) = delete;
  ScopedDegradedScanBind& operator=(const ScopedDegradedScanBind&) = delete;
  ~ScopedDegradedScanBind();

 private:
  DegradedScan* prev_;
};

}  // namespace xorator::ordb

#endif  // XORATOR_ORDB_HEALTH_H_
