#include "ordb/heap_file.h"

#include <cstring>

namespace xorator::ordb {

namespace {
// Overflow page layout, after the common checksummed page header:
// [next:u32][len:u32][bytes...].
constexpr size_t kOverflowBase = kPageHeaderBytes;
constexpr size_t kOverflowHeader = kOverflowBase + 8;
constexpr size_t kOverflowCapacity = kPageSize - kOverflowHeader;
// Records at most this large are stored inline in a slotted page.
constexpr size_t kMaxInline = kPageSize - 64;
}  // namespace

Result<HeapFile> HeapFile::Create(BufferPool* pool) {
  XO_ASSIGN_OR_RETURN(auto page, pool->NewPage());
  SlottedPage(page.second).Init();
  RETURN_IF_ERROR(pool->Unpin(page.first, /*dirty=*/true));
  return HeapFile(pool, page.first, page.first, 0, 1);
}

HeapFile::HeapFile(BufferPool* pool, PageId first_page, PageId last_page,
                   uint64_t record_count, uint64_t page_count)
    : pool_(pool),
      first_page_(first_page),
      last_page_(last_page),
      record_count_(record_count),
      page_count_(page_count) {}

Result<Rid> HeapFile::Insert(std::string_view record) {
  std::string payload;
  if (record.size() + 1 <= kMaxInline) {
    payload.reserve(record.size() + 1);
    payload.push_back(kInlineMarker);
    payload.append(record);
    return InsertEncoded(payload);
  }
  // Spill to an overflow chain, then store a stub.
  PageId head = kInvalidPageId;
  PageId prev = kInvalidPageId;
  size_t pos = 0;
  while (pos < record.size()) {
    size_t chunk = std::min(kOverflowCapacity, record.size() - pos);
    XO_ASSIGN_OR_RETURN(auto page, pool_->NewPage());
    ++page_count_;
    uint32_t next = kInvalidPageId;
    uint32_t len = static_cast<uint32_t>(chunk);
    std::memcpy(page.second + kOverflowBase, &next, 4);
    std::memcpy(page.second + kOverflowBase + 4, &len, 4);
    std::memcpy(page.second + kOverflowHeader, record.data() + pos, chunk);
    RETURN_IF_ERROR(pool_->Unpin(page.first, /*dirty=*/true));
    if (prev != kInvalidPageId) {
      XO_ASSIGN_OR_RETURN(char* prev_data, pool_->FetchPage(prev));
      uint32_t link = page.first;
      std::memcpy(prev_data + kOverflowBase, &link, 4);
      RETURN_IF_ERROR(pool_->Unpin(prev, /*dirty=*/true));
    } else {
      head = page.first;
    }
    prev = page.first;
    pos += chunk;
  }
  payload.push_back(kOverflowMarker);
  uint32_t head32 = head;
  uint64_t total = record.size();
  payload.append(reinterpret_cast<const char*>(&head32), 4);
  payload.append(reinterpret_cast<const char*>(&total), 8);
  return InsertEncoded(payload);
}

Result<Rid> HeapFile::InsertEncoded(std::string_view payload) {
  XO_ASSIGN_OR_RETURN(char* data, pool_->FetchPage(last_page_));
  SlottedPage page(data);
  if (page.Fits(payload.size())) {
    auto slot = page.Insert(payload);
    Status unpin = pool_->Unpin(last_page_, /*dirty=*/true);
    if (!slot.ok()) {
      XO_DISCARD_STATUS(unpin, "the slot-insert failure is the primary error");
      return slot.status();
    }
    RETURN_IF_ERROR(unpin);
    ++record_count_;
    return Rid{last_page_, *slot};
  }
  // Chain a fresh page.
  XO_ASSIGN_OR_RETURN(auto fresh, pool_->NewPage());
  ++page_count_;
  SlottedPage fresh_page(fresh.second);
  fresh_page.Init();
  auto slot = fresh_page.Insert(payload);
  Status unpin = pool_->Unpin(fresh.first, /*dirty=*/true);
  page.set_next_page(fresh.first);
  unpin.Update(pool_->Unpin(last_page_, /*dirty=*/true));
  last_page_ = fresh.first;
  if (!slot.ok()) {
    XO_DISCARD_STATUS(unpin, "the slot-insert failure is the primary error");
    return slot.status();
  }
  RETURN_IF_ERROR(unpin);
  ++record_count_;
  return Rid{last_page_, *slot};
}

Result<std::string> HeapFile::ReadOverflow(std::string_view stub) const {
  if (stub.size() != 12) return Status::Internal("bad overflow stub");
  uint32_t page_id;
  uint64_t total;
  std::memcpy(&page_id, stub.data(), 4);
  std::memcpy(&total, stub.data() + 4, 8);
  std::string out;
  out.reserve(total);
  while (page_id != kInvalidPageId && out.size() < total) {
    XO_ASSIGN_OR_RETURN(char* data, pool_->FetchPage(page_id));
    uint32_t next, len;
    std::memcpy(&next, data + kOverflowBase, 4);
    std::memcpy(&len, data + kOverflowBase + 4, 4);
    if (len > kPageSize - kOverflowHeader) {
      XO_DISCARD_STATUS(pool_->Unpin(page_id, /*dirty=*/false),
                        "the corruption below is the primary error");
      return Status::Corruption("overflow page " + std::to_string(page_id) +
                                " has a bad chunk length");
    }
    out.append(data + kOverflowHeader, len);
    RETURN_IF_ERROR(pool_->Unpin(page_id, /*dirty=*/false));
    page_id = next;
  }
  if (out.size() != total) {
    return Status::Corruption("truncated overflow chain");
  }
  return out;
}

Result<std::string> HeapFile::Get(const Rid& rid) const {
  XO_ASSIGN_OR_RETURN(char* data, pool_->FetchPage(rid.page_id));
  SlottedPage page(data);
  auto record = page.Get(rid.slot);
  if (!record.ok()) {
    XO_DISCARD_STATUS(pool_->Unpin(rid.page_id, /*dirty=*/false),
                      "the record-lookup failure is the primary error");
    return record.status();
  }
  std::string_view bytes = *record;
  if (bytes.empty()) {
    XO_DISCARD_STATUS(pool_->Unpin(rid.page_id, /*dirty=*/false),
                      "the empty-payload error is the primary error");
    return Status::Internal("empty record payload");
  }
  if (bytes[0] == kInlineMarker) {
    std::string out(bytes.substr(1));
    RETURN_IF_ERROR(pool_->Unpin(rid.page_id, /*dirty=*/false));
    return out;
  }
  std::string stub(bytes.substr(1));
  RETURN_IF_ERROR(pool_->Unpin(rid.page_id, /*dirty=*/false));
  return ReadOverflow(stub);
}

Status HeapFile::Delete(const Rid& rid) {
  XO_ASSIGN_OR_RETURN(char* data, pool_->FetchPage(rid.page_id));
  SlottedPage page(data);
  Status s = page.Delete(rid.slot);
  const bool deleted = s.ok();
  Status unpin = pool_->Unpin(rid.page_id, /*dirty=*/deleted);
  if (!deleted) {
    XO_DISCARD_STATUS(unpin, "the delete failure is the primary error");
    return s;
  }
  RETURN_IF_ERROR(unpin);
  if (record_count_ > 0) --record_count_;
  return s;
}

HeapFile::Scanner::Scanner(const HeapFile* file)
    : file_(file), page_(file->first_page_), slot_(0) {}

Result<bool> HeapFile::Scanner::Next(Rid* rid, std::string* record) {
  while (page_ != kInvalidPageId) {
    XO_ASSIGN_OR_RETURN(char* data, file_->pool_->FetchPage(page_));
    SlottedPage page(data);
    if (!page.initialized()) {
      // A chained page whose initialization never reached disk (crash
      // without recovery): surface it rather than scanning garbage.
      XO_DISCARD_STATUS(file_->pool_->Unpin(page_, /*dirty=*/false),
                        "the corruption below is the primary error");
      return Status::Corruption("heap chain reaches uninitialized page " +
                                std::to_string(page_));
    }
    uint16_t count = page.slot_count();
    while (slot_ < count) {
      uint16_t s = slot_++;
      auto bytes = page.Get(s);
      if (!bytes.ok()) continue;  // tombstone
      std::string_view payload = *bytes;
      if (payload.empty()) continue;
      if (payload[0] == kInlineMarker) {
        record->assign(payload.substr(1));
      } else {
        std::string stub(payload.substr(1));
        RETURN_IF_ERROR(file_->pool_->Unpin(page_, /*dirty=*/false));
        XO_ASSIGN_OR_RETURN(*record, file_->ReadOverflow(stub));
        *rid = Rid{page_, s};
        return true;
      }
      *rid = Rid{page_, s};
      RETURN_IF_ERROR(file_->pool_->Unpin(page_, /*dirty=*/false));
      return true;
    }
    PageId next = page.next_page();
    RETURN_IF_ERROR(file_->pool_->Unpin(page_, /*dirty=*/false));
    if (next == page_) {
      return Status::Corruption("heap chain cycle at page " +
                                std::to_string(page_));
    }
    page_ = next;
    slot_ = 0;
  }
  return false;
}

}  // namespace xorator::ordb
