#include "ordb/heap_file.h"

#include <algorithm>

#include "common/span.h"

namespace xorator::ordb {

namespace {
// Overflow page layout, after the common checksummed page header:
// [next:u32][len:u32][bytes...].
constexpr size_t kOverflowBase = kPageHeaderBytes;
constexpr size_t kOverflowHeader = kOverflowBase + 8;
constexpr size_t kOverflowCapacity = kPageSize - kOverflowHeader;
// Records at most this large are stored inline in a slotted page.
constexpr size_t kMaxInline = kPageSize - 64;
// Preallocation cap for overflow reads: the stub's total-length field is
// untrusted bytes, so reserve() must not take it at face value (a corrupt
// stub could otherwise demand an arbitrary allocation before the chain
// walk proves it short). Longer genuine records just grow amortized.
constexpr size_t kMaxOverflowReserve = size_t{1} << 20;
}  // namespace

Result<HeapFile> HeapFile::Create(BufferPool* pool) {
  XO_ASSIGN_OR_RETURN(PageRef page, pool->Create());
  SlottedPage(page.data()).Init();
  const PageId first = page.id();
  RETURN_IF_ERROR(page.Release());
  return HeapFile(pool, first, first, 0, 1);
}

HeapFile::HeapFile(BufferPool* pool, PageId first_page, PageId last_page,
                   uint64_t record_count, uint64_t page_count)
    : pool_(pool),
      first_page_(first_page),
      last_page_(last_page),
      record_count_(record_count),
      page_count_(page_count) {}

Result<Rid> HeapFile::Insert(std::string_view record) {
  std::string payload;
  if (record.size() + 1 <= kMaxInline) {
    payload.reserve(record.size() + 1);
    payload.push_back(kInlineMarker);
    payload.append(record);
    return InsertEncoded(payload);
  }
  // Spill to an overflow chain, then store a stub.
  PageId head = kInvalidPageId;
  PageId prev = kInvalidPageId;
  size_t pos = 0;
  while (pos < record.size()) {
    size_t chunk = std::min(kOverflowCapacity, record.size() - pos);
    XO_ASSIGN_OR_RETURN(PageRef page, pool_->Create());
    ++page_count_;
    xo::MutableByteSpan frame(page.data(), kPageSize);
    xo::StoreFixedUnchecked<uint32_t>(frame, kOverflowBase, kInvalidPageId);
    xo::StoreFixedUnchecked(frame, kOverflowBase + 4,
                            static_cast<uint32_t>(chunk));
    RETURN_IF_ERROR(
        xo::CopyInto(frame, kOverflowHeader, record.substr(pos, chunk)));
    const PageId cur = page.id();
    RETURN_IF_ERROR(page.Release());
    if (prev != kInvalidPageId) {
      XO_ASSIGN_OR_RETURN(PageRef prev_ref, pool_->Fetch(prev));
      xo::StoreFixedUnchecked<uint32_t>(
          xo::MutableByteSpan(prev_ref.data(), kPageSize), kOverflowBase, cur);
      prev_ref.MarkDirty();
      RETURN_IF_ERROR(prev_ref.Release());
    } else {
      head = cur;
    }
    prev = cur;
    pos += chunk;
  }
  payload.push_back(kOverflowMarker);
  xo::AppendU32(&payload, head);
  xo::AppendU64(&payload, record.size());
  return InsertEncoded(payload);
}

Result<Rid> HeapFile::InsertEncoded(std::string_view payload) {
  XO_ASSIGN_OR_RETURN(PageRef last_ref, pool_->Fetch(last_page_));
  SlottedPage page(last_ref.data());
  if (page.Fits(payload.size())) {
    // Dirty even if the insert fails: Insert may have compacted the page
    // before running out of contiguous space.
    last_ref.MarkDirty();
    XO_ASSIGN_OR_RETURN(const uint16_t slot, page.Insert(payload));
    RETURN_IF_ERROR(last_ref.Release());
    ++record_count_;
    return Rid{last_page_, slot};
  }
  // Chain a fresh page.
  XO_ASSIGN_OR_RETURN(PageRef fresh_ref, pool_->Create());
  ++page_count_;
  SlottedPage fresh_page(fresh_ref.data());
  fresh_page.Init();
  page.set_next_page(fresh_ref.id());
  last_ref.MarkDirty();
  last_page_ = fresh_ref.id();
  XO_ASSIGN_OR_RETURN(const uint16_t slot, fresh_page.Insert(payload));
  RETURN_IF_ERROR(fresh_ref.Release());
  RETURN_IF_ERROR(last_ref.Release());
  ++record_count_;
  return Rid{last_page_, slot};
}

Result<std::string> HeapFile::ReadOverflow(std::string_view stub) const {
  xo::BoundedReader reader(stub);
  XO_ASSIGN_OR_RETURN(uint32_t page_id, reader.ReadU32());
  XO_ASSIGN_OR_RETURN(const uint64_t total, reader.ReadU64());
  if (!reader.AtEnd()) return Status::Internal("bad overflow stub");
  std::string out;
  out.reserve(static_cast<size_t>(
      std::min<uint64_t>(total, kMaxOverflowReserve)));
  // A valid chain for `total` bytes is at most this many pages; a corrupt
  // chain that cycles (or dribbles zero-length chunks) trips the bound
  // instead of looping forever.
  const uint64_t max_chain_pages = total / kOverflowCapacity + 2;
  uint64_t chain_pages = 0;
  while (page_id != kInvalidPageId && out.size() < total) {
    if (++chain_pages > max_chain_pages) {
      return Status::Corruption("overflow chain longer than its record");
    }
    XO_ASSIGN_OR_RETURN(PageRef ref, pool_->Fetch(page_id));
    xo::ByteSpan frame(ref.data(), kPageSize);
    XO_ASSIGN_OR_RETURN(uint32_t next, xo::LoadU32(frame, kOverflowBase));
    XO_ASSIGN_OR_RETURN(uint32_t len, xo::LoadU32(frame, kOverflowBase + 4));
    auto chunk = xo::ViewBytes(frame, kOverflowHeader, len);
    if (!chunk.ok()) {
      return Status::Corruption("overflow page " + std::to_string(page_id) +
                                " has a bad chunk length");
    }
    out.append(*chunk);
    RETURN_IF_ERROR(ref.Release());
    page_id = next;
  }
  if (out.size() != total) {
    return Status::Corruption("truncated overflow chain");
  }
  return out;
}

Result<std::string> HeapFile::Get(const Rid& rid) const {
  XO_ASSIGN_OR_RETURN(PageRef ref, pool_->Fetch(rid.page_id));
  SlottedPage page(ref.data());
  XO_ASSIGN_OR_RETURN(std::string_view bytes, page.Get(rid.slot));
  if (bytes.empty()) {
    return Status::Internal("empty record payload");
  }
  if (bytes[0] == kInlineMarker) {
    std::string out(bytes.substr(1));
    RETURN_IF_ERROR(ref.Release());
    return out;
  }
  std::string stub(bytes.substr(1));
  RETURN_IF_ERROR(ref.Release());
  return ReadOverflow(stub);
}

Status HeapFile::Delete(const Rid& rid) {
  XO_ASSIGN_OR_RETURN(PageRef ref, pool_->Fetch(rid.page_id));
  SlottedPage page(ref.data());
  // On failure the guard's destructor releases the pin clean — the page
  // was not modified.
  RETURN_IF_ERROR(page.Delete(rid.slot));
  ref.MarkDirty();
  RETURN_IF_ERROR(ref.Release());
  if (record_count_ > 0) --record_count_;
  return Status::OK();
}

HeapFile::Scanner::Scanner(const HeapFile* file)
    : file_(file), page_(file->first_page_), slot_(0) {}

namespace {
/// Longest run of consecutive corrupt pages a degraded scan will follow.
/// Salvaged next-links are unverified, so a badly damaged chain could
/// otherwise cycle through garbage page ids forever.
constexpr uint64_t kMaxSkipRun = 1024;
}  // namespace

Result<PageId> HeapFile::Scanner::SalvageNextPage(PageId corrupt) const {
  char raw[kPageSize];
  Status read = file_->pool_->ReadForSalvage(corrupt, raw);
  if (read.IsRetryable() || read.code() == StatusCode::kInternal) {
    return read;  // transient storm / pool exhaustion — not a verdict
  }
  if (!read.ok()) return kInvalidPageId;  // unreadable: end of usable chain
  SlottedPage page(raw);
  if (!page.initialized()) return kInvalidPageId;  // garbage header
  PageId next = page.next_page();
  if (next == corrupt) return kInvalidPageId;  // self-loop
  return next;
}

Result<bool> HeapFile::Scanner::Next(Rid* rid, std::string* record) {
  while (page_ != kInvalidPageId) {
    // Scan the current page inside its own pin scope; overflow stubs are
    // resolved after the pin is released (overflow reads pin other pages).
    std::string stub;
    bool have_stub = false;
    uint16_t stub_slot = 0;
    {
      auto fetched = file_->pool_->Fetch(page_);
      if (!fetched.ok()) {
        if (!skip_corrupt_ ||
            fetched.status().code() != StatusCode::kCorruption) {
          return fetched.status();
        }
        // Degraded scan: count the page out, recover the chain link from
        // the raw bytes, and keep going (DESIGN.md §13).
        ++skipped_pages_;
        ++skipped_records_;  // at least the page's records are gone
        if (++skip_run_ > kMaxSkipRun) {
          return Status::Corruption(
              "heap chain unscannable: " + std::to_string(skip_run_) +
              " consecutive corrupt pages from page " + std::to_string(page_));
        }
        XO_ASSIGN_OR_RETURN(page_, SalvageNextPage(page_));
        slot_ = 0;
        continue;
      }
      skip_run_ = 0;
      PageRef ref = std::move(*fetched);
      SlottedPage page(ref.data());
      if (!page.initialized()) {
        // A chained page whose initialization never reached disk (crash
        // without recovery): surface it rather than scanning garbage.
        if (!skip_corrupt_) {
          return Status::Corruption("heap chain reaches uninitialized page " +
                                    std::to_string(page_));
        }
        // An uninitialized page is the chain's torn tail — end the scan.
        ++skipped_pages_;
        ++skipped_records_;
        RETURN_IF_ERROR(ref.Release());
        page_ = kInvalidPageId;
        break;
      }
      uint16_t count = page.slot_count();
      while (slot_ < count) {
        uint16_t s = slot_++;
        auto bytes = page.Get(s);
        if (!bytes.ok()) continue;  // tombstone
        std::string_view payload = *bytes;
        if (payload.empty()) continue;
        if (payload[0] == kInlineMarker) {
          record->assign(payload.substr(1));
          *rid = Rid{page_, s};
          RETURN_IF_ERROR(ref.Release());
          return true;
        }
        stub.assign(payload.substr(1));
        have_stub = true;
        stub_slot = s;
        break;
      }
      if (!have_stub) {
        PageId next = page.next_page();
        RETURN_IF_ERROR(ref.Release());
        if (next == page_) {
          return Status::Corruption("heap chain cycle at page " +
                                    std::to_string(page_));
        }
        page_ = next;
        slot_ = 0;
        continue;
      }
      RETURN_IF_ERROR(ref.Release());
    }
    auto overflow = file_->ReadOverflow(stub);
    if (!overflow.ok()) {
      if (skip_corrupt_ &&
          overflow.status().code() == StatusCode::kCorruption) {
        // The record's overflow chain is damaged; drop the record, keep
        // the page (slot_ already points past it).
        ++skipped_records_;
        continue;
      }
      return overflow.status();
    }
    *record = std::move(*overflow);
    *rid = Rid{page_, stub_slot};
    return true;
  }
  return false;
}

}  // namespace xorator::ordb
