#ifndef XORATOR_ORDB_HEAP_FILE_H_
#define XORATOR_ORDB_HEAP_FILE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "ordb/buffer_pool.h"
#include "ordb/page.h"

namespace xorator::ordb {

/// An unordered collection of variable-length records stored in a chain of
/// slotted pages. Records larger than a page spill to dedicated overflow
/// pages (an in-page stub points at the overflow chain), which is how large
/// XADT fragments are stored.
///
/// Thread safety: every page is held through a PageRef guard from the
/// (fully thread-safe) BufferPool, and every read path copies record bytes
/// out before the guard releases its pin, so any number of concurrent
/// readers (Get/Scan) are safe. Insert/Delete mutate the page chain and
/// the inline counters and must hold the Database statement lock
/// exclusively — which the engine's statement dispatch guarantees
/// (DESIGN.md section 10). Error paths release pins via the guard's
/// destructor (DESIGN.md section 11), so a failed operation cannot leak a
/// pin.
class HeapFile {
 public:
  /// Creates an empty heap file (allocates its first page).
  [[nodiscard]] static Result<HeapFile> Create(BufferPool* pool);

  /// Re-attaches to an existing heap file rooted at `first_page`.
  HeapFile(BufferPool* pool, PageId first_page, PageId last_page,
           uint64_t record_count, uint64_t page_count);

  PageId first_page() const { return first_page_; }
  PageId last_page() const { return last_page_; }
  uint64_t record_count() const { return record_count_; }
  /// Pages owned by this heap file (data + overflow).
  uint64_t page_count() const { return page_count_; }
  uint64_t bytes() const { return page_count_ * kPageSize; }

  [[nodiscard]] Result<Rid> Insert(std::string_view record);

  /// Reads the record at `rid` (follows overflow stubs) into an owning
  /// string — the page pin is released before returning, so the bytes are
  /// copied out exactly once. Callers decode in place from that buffer via
  /// RowView::Parse (row_codec.h, DESIGN.md section 14); reusing one
  /// `std::string` across Get calls recycles its capacity (see the
  /// executor's member record buffers).
  [[nodiscard]] Result<std::string> Get(const Rid& rid) const;

  [[nodiscard]] Status Delete(const Rid& rid);

  /// Sequential scanner over live records.
  class Scanner {
   public:
    Scanner(const HeapFile* file);

    /// Advances to the next record; false at end of file. `*record` is
    /// overwritten in place (its capacity is reused across calls — pass
    /// the same string every iteration for an allocation-free scan).
    [[nodiscard]] Result<bool> Next(Rid* rid, std::string* record);

    /// Degraded-scan mode (DESIGN.md §13): instead of failing the scan,
    /// a kCorruption page fetch skips the whole page (salvaging its
    /// next-page link from the raw on-disk bytes) and a corrupt overflow
    /// chain skips just that record; everything skipped is counted below.
    /// Off by default — a normal scan must surface corruption.
    void set_skip_corrupt(bool skip) { skip_corrupt_ = skip; }

    /// Pages skipped because they were quarantined/corrupt (skip mode).
    uint64_t skipped_pages() const { return skipped_pages_; }
    /// Records skipped because their overflow chain was corrupt, plus a
    /// conservative marker count for each skipped page (skip mode).
    uint64_t skipped_records() const { return skipped_records_; }

   private:
    /// Reads the corrupt page's raw bytes (no checksum check) to recover
    /// its next-page link; kInvalidPageId ends the scan when the link is
    /// unrecoverable or self-referential.
    [[nodiscard]] Result<PageId> SalvageNextPage(PageId corrupt) const;

    const HeapFile* file_;
    PageId page_;
    uint16_t slot_;
    bool skip_corrupt_ = false;
    uint64_t skipped_pages_ = 0;
    uint64_t skipped_records_ = 0;
    /// Corrupt pages traversed back-to-back; bounds degraded scans over a
    /// damaged chain whose salvaged links could otherwise loop.
    uint64_t skip_run_ = 0;
  };

  Scanner Scan() const { return Scanner(this); }

 private:
  // Record headers distinguishing inline records from overflow stubs.
  static constexpr char kInlineMarker = 0x00;
  static constexpr char kOverflowMarker = 0x01;

  [[nodiscard]] Result<Rid> InsertEncoded(std::string_view payload);
  [[nodiscard]] Result<std::string> ReadOverflow(std::string_view stub) const;

  BufferPool* pool_ = nullptr;
  PageId first_page_ = kInvalidPageId;
  PageId last_page_ = kInvalidPageId;
  uint64_t record_count_ = 0;
  uint64_t page_count_ = 0;
};

}  // namespace xorator::ordb

#endif  // XORATOR_ORDB_HEAP_FILE_H_
