#include "ordb/page.h"

#include "common/crc32.h"

namespace xorator::ordb {

uint32_t ComputePageChecksum(const char* page) {
  return Crc32(page + 4, kPageSize - 4);
}

void SetPageChecksum(char* page) {
  uint32_t crc = ComputePageChecksum(page);
  std::memcpy(page, &crc, 4);
}

bool VerifyPageChecksum(const char* page) {
  uint32_t stored;
  std::memcpy(&stored, page, 4);
  if (stored == ComputePageChecksum(page)) return true;
  for (size_t i = 0; i < kPageSize; ++i) {
    if (page[i] != 0) return false;
  }
  return true;  // freshly allocated page, never written back
}

void SlottedPage::Init() {
  std::memset(data_, 0, kPageSize);
  Write16(kPageHeaderBytes, 0);  // slot_count
  Write16(kPageHeaderBytes + 2, static_cast<uint16_t>(kPageSize - 1));
  Write32(kPageHeaderBytes + 4, kInvalidPageId);  // next_page
  // data_start is stored as (kPageSize - 1) because kPageSize itself does
  // not fit in u16; real offsets are <= kPageSize - 1 and records are
  // written ending at data_start + 1.
}

size_t SlottedPage::FreeSpace() const {
  size_t dir_end = kHeaderBytes + kSlotBytes * slot_count();
  size_t data_begin = static_cast<size_t>(data_start()) + 1;
  return data_begin > dir_end ? data_begin - dir_end : 0;
}

Result<uint16_t> SlottedPage::Insert(std::string_view record) {
  if (!initialized()) {
    return Status::Corruption("insert into uninitialized page");
  }
  if (!Fits(record.size())) {
    return Status::OutOfRange("page full");
  }
  uint16_t count = slot_count();
  size_t data_begin = static_cast<size_t>(data_start()) + 1;
  size_t offset = data_begin - record.size();
  std::memcpy(data_ + offset, record.data(), record.size());
  size_t slot_off = kHeaderBytes + kSlotBytes * count;
  Write16(slot_off, static_cast<uint16_t>(offset));
  Write16(slot_off + 2, static_cast<uint16_t>(record.size()));
  Write16(kPageHeaderBytes, static_cast<uint16_t>(count + 1));
  Write16(kPageHeaderBytes + 2, static_cast<uint16_t>(offset - 1));
  return count;
}

Result<std::string_view> SlottedPage::Get(uint16_t slot) const {
  if (slot >= slot_count()) return Status::NotFound("bad slot");
  size_t slot_off = kHeaderBytes + kSlotBytes * slot;
  uint16_t offset = Read16(slot_off);
  uint16_t len = Read16(slot_off + 2);
  if (offset == 0) return Status::NotFound("deleted slot");
  if (offset < kHeaderBytes || static_cast<size_t>(offset) + len > kPageSize) {
    return Status::Corruption("slot " + std::to_string(slot) +
                              " points outside the page");
  }
  return std::string_view(data_ + offset, len);
}

Status SlottedPage::Delete(uint16_t slot) {
  if (slot >= slot_count()) return Status::NotFound("bad slot");
  size_t slot_off = kHeaderBytes + kSlotBytes * slot;
  if (Read16(slot_off) == 0) return Status::NotFound("already deleted");
  Write16(slot_off, 0);
  return Status::OK();
}

}  // namespace xorator::ordb
