#include "ordb/page.h"

#include "common/crc32.h"

namespace xorator::ordb {

uint32_t ComputePageChecksum(const char* page) {
  std::string_view payload = std::string_view(page, kPageSize).substr(4);
  return Crc32(payload.data(), payload.size());
}

void SetPageChecksum(char* page) {
  xo::StoreFixedUnchecked(xo::MutableByteSpan(page, kPageSize), 0,
                          ComputePageChecksum(page));
}

bool VerifyPageChecksum(const char* page) {
  uint32_t stored =
      xo::LoadFixedUnchecked<uint32_t>(std::string_view(page, kPageSize), 0);
  if (stored == ComputePageChecksum(page)) return true;
  for (size_t i = 0; i < kPageSize; ++i) {
    if (page[i] != 0) return false;
  }
  return true;  // freshly allocated page, never written back
}

void SlottedPage::Init() {
  xo::FillZeroUnchecked(mutable_page(), 0, kPageSize);
  Write16(kPageHeaderBytes, 0);  // slot_count
  Write16(kPageHeaderBytes + 2, static_cast<uint16_t>(kPageSize - 1));
  Write32(kPageHeaderBytes + 4, kInvalidPageId);  // next_page
  // data_start is stored as (kPageSize - 1) because kPageSize itself does
  // not fit in u16; real offsets are <= kPageSize - 1 and records are
  // written ending at data_start + 1.
}

size_t SlottedPage::FreeSpace() const {
  size_t dir_end = kHeaderBytes + kSlotBytes * slot_count();
  size_t data_begin = static_cast<size_t>(data_start()) + 1;
  return data_begin > dir_end ? data_begin - dir_end : 0;
}

Result<uint16_t> SlottedPage::Insert(std::string_view record) {
  if (!initialized()) {
    return Status::Corruption("insert into uninitialized page");
  }
  if (!Fits(record.size())) {
    return Status::OutOfRange("page full");
  }
  // Fits() proved both the record range and the new slot entry lie inside
  // [dir_end, data_begin) <= kPageSize, so the stores below cannot escape.
  uint16_t count = slot_count();
  size_t data_begin = static_cast<size_t>(data_start()) + 1;
  size_t offset = data_begin - record.size();
  RETURN_IF_ERROR(xo::CopyInto(mutable_page(), offset, record));
  size_t slot_off = kHeaderBytes + kSlotBytes * count;
  Write16(slot_off, static_cast<uint16_t>(offset));
  Write16(slot_off + 2, static_cast<uint16_t>(record.size()));
  Write16(kPageHeaderBytes, static_cast<uint16_t>(count + 1));
  Write16(kPageHeaderBytes + 2, static_cast<uint16_t>(offset - 1));
  return count;
}

Result<std::string_view> SlottedPage::Get(uint16_t slot) const {
  if (slot >= slot_count()) return Status::NotFound("bad slot");
  // slot_count is itself untrusted (a corrupt header can claim more slots
  // than the directory can hold), so the directory reads are checked too.
  size_t slot_off = kHeaderBytes + kSlotBytes * slot;
  XO_ASSIGN_OR_RETURN(uint16_t offset, xo::LoadU16(page(), slot_off));
  XO_ASSIGN_OR_RETURN(uint16_t len, xo::LoadU16(page(), slot_off + 2));
  if (offset == 0) return Status::NotFound("deleted slot");
  if (offset < kHeaderBytes) {
    return Status::Corruption("slot " + std::to_string(slot) +
                              " points inside the page header");
  }
  auto view = xo::ViewBytes(page(), offset, len);
  if (!view.ok()) {
    return Status::Corruption("slot " + std::to_string(slot) +
                              " points outside the page");
  }
  return *view;
}

Status SlottedPage::Delete(uint16_t slot) {
  if (slot >= slot_count()) return Status::NotFound("bad slot");
  size_t slot_off = kHeaderBytes + kSlotBytes * slot;
  XO_ASSIGN_OR_RETURN(uint16_t offset, xo::LoadU16(page(), slot_off));
  if (offset == 0) return Status::NotFound("already deleted");
  Write16(slot_off, 0);
  return Status::OK();
}

}  // namespace xorator::ordb
