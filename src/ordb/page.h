#ifndef XORATOR_ORDB_PAGE_H_
#define XORATOR_ORDB_PAGE_H_

#include <cstdint>
#include <string_view>

#include "common/lifetime.h"
#include "common/result.h"
#include "common/span.h"

namespace xorator::ordb {

/// Fixed page size of the storage engine (the paper's DB2 configuration,
/// reading its "8 MB" as the obvious 8 KB).
inline constexpr size_t kPageSize = 8192;

/// Every page — slotted, B+-tree node, overflow, catalog — reserves its
/// first 8 bytes for a common page header:
///
///   [crc32:u32][reserved:u32]
///
/// The CRC covers bytes [4, kPageSize). It is stamped by the buffer pool
/// when a frame is written back and verified on every fetch; a mismatch
/// surfaces as StatusCode::kCorruption. An all-zero page (allocated but
/// never written back) is considered valid.
inline constexpr size_t kPageHeaderBytes = 8;

using PageId = uint32_t;
inline constexpr PageId kInvalidPageId = 0xFFFFFFFFu;

/// Computes the checksum of a page's payload (everything after the CRC
/// field itself).
uint32_t ComputePageChecksum(const char* page);

/// Stamps the page's CRC field from its current payload.
void SetPageChecksum(char* page);

/// True if the stored CRC matches the payload, or the page is entirely
/// zero (a freshly allocated page that was never written back).
bool VerifyPageChecksum(const char* page);

/// Record id: page + slot.
struct Rid {
  PageId page_id = kInvalidPageId;
  uint16_t slot = 0;

  uint64_t Encode() const {
    return (static_cast<uint64_t>(page_id) << 16) | slot;
  }
  static Rid Decode(uint64_t raw) {
    return Rid{static_cast<PageId>(raw >> 16),
               static_cast<uint16_t>(raw & 0xFFFF)};
  }
  bool operator==(const Rid& o) const {
    return page_id == o.page_id && slot == o.slot;
  }
};

/// View over one 8 KB buffer laid out as a slotted page (offsets are
/// relative to the end of the common page header):
///
///   [crc32:u32][reserved:u32]
///   [slot_count:u16][data_start:u16 offset][next_page:u32]
///   [slot 0: offset:u16 len:u16] ... | free | ... record data ...
///
/// Record data grows downward from the end; the slot directory grows upward.
/// A slot offset of 0 marks a deleted record (offset 0 is inside the
/// header, so it can never be a real record offset).
///
/// The class is a gsl::Pointer over the page buffer (DESIGN.md section 14):
/// it never copies the bytes, and the views Get() hands out are tied to
/// them. The buffer normally comes from a PageRef guard, whose data() is
/// itself lifetime-bound to the pin.
class XO_GSL_POINTER(char) SlottedPage {
 public:
  explicit SlottedPage(char* data XO_LIFETIME_BOUND) : data_(data) {}

  /// Formats an empty page.
  void Init();

  /// True if the page has been formatted by Init (an all-zero page — e.g.
  /// one whose initialization never reached disk before a crash — is not).
  bool initialized() const { return data_start() != 0; }

  uint16_t slot_count() const { return Read16(kPageHeaderBytes); }
  PageId next_page() const { return Read32(kPageHeaderBytes + 4); }
  void set_next_page(PageId id) { Write32(kPageHeaderBytes + 4, id); }

  /// Free bytes available for one more record (including its slot entry).
  size_t FreeSpace() const;

  /// True if a record of `len` bytes fits.
  bool Fits(size_t len) const { return FreeSpace() >= len + kSlotBytes; }

  /// Inserts a record; returns its slot. Fails with OutOfRange if full.
  [[nodiscard]] Result<uint16_t> Insert(std::string_view record);

  /// Returns the record bytes in `slot`; NotFound for deleted/bad slots,
  /// Corruption for slots whose offset/length escape the page. The view
  /// points into the page buffer: it is valid only while the underlying
  /// pin (PageRef) is held and the slot is not deleted or overwritten.
  [[nodiscard]] Result<std::string_view> Get(uint16_t slot) const
      XO_LIFETIME_BOUND;

  /// Tombstones `slot` (space is not compacted).
  [[nodiscard]] Status Delete(uint16_t slot);

 private:
  static constexpr size_t kHeaderBytes = kPageHeaderBytes + 8;
  static constexpr size_t kSlotBytes = 4;

  xo::ByteSpan page() const XO_LIFETIME_BOUND {
    return xo::ByteSpan(data_, kPageSize);
  }
  xo::MutableByteSpan mutable_page() XO_LIFETIME_BOUND {
    return xo::MutableByteSpan(data_, kPageSize);
  }

  /// Header accessors: offsets are compile-time constants well inside the
  /// 16-byte header, hence the unchecked loads/stores. Slot-directory
  /// offsets are computed from the (untrusted) slot count and must go
  /// through the checked xo::LoadU16/StoreU16 instead.
  uint16_t Read16(size_t off) const {
    return xo::LoadFixedUnchecked<uint16_t>(
        std::string_view(data_, kPageSize), off);
  }
  uint32_t Read32(size_t off) const {
    return xo::LoadFixedUnchecked<uint32_t>(
        std::string_view(data_, kPageSize), off);
  }
  void Write16(size_t off, uint16_t v) {
    xo::StoreFixedUnchecked(mutable_page(), off, v);
  }
  void Write32(size_t off, uint32_t v) {
    xo::StoreFixedUnchecked(mutable_page(), off, v);
  }

  uint16_t data_start() const { return Read16(kPageHeaderBytes + 2); }

  char* data_;
};

}  // namespace xorator::ordb

#endif  // XORATOR_ORDB_PAGE_H_
