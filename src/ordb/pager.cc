#include "ordb/pager.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <system_error>

namespace xorator::ordb {

Status SyncToDisk(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::IOError("cannot open '" + path +
                           "' to sync it: " +
                           std::system_category().message(errno));
  }
  const int rc = ::fsync(fd);
  const int saved_errno = errno;
  ::close(fd);
  if (rc != 0) {
    return Status::IOError("fsync of '" + path +
                           "' failed: " +
                           std::system_category().message(saved_errno));
  }
  return Status::OK();
}

Result<PageId> MemoryPager::Allocate() {
  auto page = std::make_unique<char[]>(kPageSize);
  std::memset(page.get(), 0, kPageSize);
  pages_.push_back(std::move(page));
  return static_cast<PageId>(pages_.size() - 1);
}

Status MemoryPager::Read(PageId id, char* buf) {
  if (id >= pages_.size()) {
    return Status::OutOfRange("bad page id " + std::to_string(id));
  }
  std::memcpy(buf, pages_[id].get(), kPageSize);
  return Status::OK();
}

Status MemoryPager::Write(PageId id, const char* buf) {
  if (id >= pages_.size()) {
    return Status::OutOfRange("bad page id " + std::to_string(id));
  }
  std::memcpy(pages_[id].get(), buf, kPageSize);
  return Status::OK();
}

Result<std::unique_ptr<FilePager>> FilePager::Open(const std::string& path) {
  // Ensure the file exists, then open for read/write.
  {
    std::ofstream touch(path, std::ios::binary | std::ios::app);
    if (!touch) return Status::IOError("cannot create '" + path + "'");
  }
  std::fstream file(path, std::ios::binary | std::ios::in | std::ios::out);
  if (!file) return Status::IOError("cannot open '" + path + "'");
  file.seekg(0, std::ios::end);
  auto size = static_cast<uint64_t>(file.tellg());
  if (size % kPageSize != 0) {
    return Status::IOError(
        "'" + path + "' is " + std::to_string(size) +
        " bytes, not a multiple of the " + std::to_string(kPageSize) +
        "-byte page size (torn final write? recover from the WAL)");
  }
  return std::unique_ptr<FilePager>(new FilePager(
      path, std::move(file), static_cast<PageId>(size / kPageSize)));
}

FilePager::~FilePager() { file_.flush(); }

Result<PageId> FilePager::Allocate() {
  char zeros[kPageSize];
  std::memset(zeros, 0, kPageSize);
  file_.clear();
  file_.seekp(static_cast<std::streamoff>(page_count_) * kPageSize);
  file_.write(zeros, kPageSize);
  if (file_.fail()) {
    file_.clear();
    return Status::IOError("failed to extend file for page " +
                           std::to_string(page_count_));
  }
  return page_count_++;
}

Status FilePager::Read(PageId id, char* buf) {
  if (id >= page_count_) {
    return Status::OutOfRange("bad page id " + std::to_string(id));
  }
  file_.clear();
  file_.seekg(static_cast<std::streamoff>(id) * kPageSize);
  file_.read(buf, kPageSize);
  if (file_.fail() || file_.gcount() != static_cast<std::streamsize>(kPageSize)) {
    file_.clear();
    return Status::IOError("short read of page " + std::to_string(id));
  }
  return Status::OK();
}

Status FilePager::Write(PageId id, const char* buf) {
  if (id >= page_count_) {
    return Status::OutOfRange("bad page id " + std::to_string(id));
  }
  file_.clear();
  file_.seekp(static_cast<std::streamoff>(id) * kPageSize);
  file_.write(buf, kPageSize);
  if (file_.fail()) {
    file_.clear();
    return Status::IOError("failed write of page " + std::to_string(id));
  }
  return Status::OK();
}

Status FilePager::Flush() {
  file_.clear();
  file_.flush();
  if (file_.fail()) {
    file_.clear();
    return Status::IOError("flush failed");
  }
  // Flush() is the checkpoint's commit barrier: the WAL is truncated right
  // after it returns, so the epoch's pages must be durable, not merely
  // handed to the kernel.
  return SyncToDisk(path_);
}

}  // namespace xorator::ordb
