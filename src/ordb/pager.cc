#include "ordb/pager.h"

#include <cstring>

namespace xorator::ordb {

Result<PageId> MemoryPager::Allocate() {
  auto page = std::make_unique<char[]>(kPageSize);
  std::memset(page.get(), 0, kPageSize);
  pages_.push_back(std::move(page));
  return static_cast<PageId>(pages_.size() - 1);
}

Status MemoryPager::Read(PageId id, char* buf) {
  if (id >= pages_.size()) return Status::OutOfRange("bad page id");
  std::memcpy(buf, pages_[id].get(), kPageSize);
  return Status::OK();
}

Status MemoryPager::Write(PageId id, const char* buf) {
  if (id >= pages_.size()) return Status::OutOfRange("bad page id");
  std::memcpy(pages_[id].get(), buf, kPageSize);
  return Status::OK();
}

Result<std::unique_ptr<FilePager>> FilePager::Open(const std::string& path) {
  // Ensure the file exists, then open for read/write.
  {
    std::ofstream touch(path, std::ios::binary | std::ios::app);
    if (!touch) return Status::IOError("cannot create '" + path + "'");
  }
  std::fstream file(path, std::ios::binary | std::ios::in | std::ios::out);
  if (!file) return Status::IOError("cannot open '" + path + "'");
  file.seekg(0, std::ios::end);
  auto size = static_cast<uint64_t>(file.tellg());
  if (size % kPageSize != 0) {
    return Status::IOError("'" + path + "' is not page-aligned");
  }
  return std::unique_ptr<FilePager>(
      new FilePager(std::move(file), static_cast<PageId>(size / kPageSize)));
}

FilePager::~FilePager() { file_.flush(); }

Result<PageId> FilePager::Allocate() {
  char zeros[kPageSize];
  std::memset(zeros, 0, kPageSize);
  file_.seekp(static_cast<std::streamoff>(page_count_) * kPageSize);
  file_.write(zeros, kPageSize);
  if (!file_) return Status::IOError("allocate failed");
  return page_count_++;
}

Status FilePager::Read(PageId id, char* buf) {
  if (id >= page_count_) return Status::OutOfRange("bad page id");
  file_.seekg(static_cast<std::streamoff>(id) * kPageSize);
  file_.read(buf, kPageSize);
  if (!file_) return Status::IOError("read failed");
  return Status::OK();
}

Status FilePager::Write(PageId id, const char* buf) {
  if (id >= page_count_) return Status::OutOfRange("bad page id");
  file_.seekp(static_cast<std::streamoff>(id) * kPageSize);
  file_.write(buf, kPageSize);
  if (!file_) return Status::IOError("write failed");
  return Status::OK();
}

}  // namespace xorator::ordb
