#ifndef XORATOR_ORDB_PAGER_H_
#define XORATOR_ORDB_PAGER_H_

#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "ordb/page.h"

namespace xorator::ordb {

/// Forces `path`'s written data down to durable storage (open + fsync +
/// close). A buffered flush only hands bytes to the kernel; a process
/// killed before writeback can lose them, so every durability barrier in
/// the engine — WAL record appends, checkpoint flushes, recovery — ends
/// with this call.
[[nodiscard]] Status SyncToDisk(const std::string& path);

/// Abstract page-addressed storage; pages are allocated sequentially and
/// never freed (the engine has no vacuum — see DESIGN.md non-goals).
///
/// Thread safety: implementations are NOT internally synchronized. In the
/// engine a pager is only reached from under BufferPool::io_mu_ (page I/O,
/// allocation and page_count — the sharded pool's single I/O funnel, rank
/// kPagerIo) or the exclusive Database statement lock (Checkpoint's Flush,
/// recovery), which serializes all access (DESIGN.md sections 10 and 15).
class Pager {
 public:
  virtual ~Pager() = default;

  /// Allocates a zeroed page and returns its id.
  [[nodiscard]] virtual Result<PageId> Allocate() = 0;

  /// Reads page `id` into `buf` (kPageSize bytes).
  [[nodiscard]] virtual Status Read(PageId id, char* buf) = 0;

  /// Writes `buf` (kPageSize bytes) to page `id`.
  [[nodiscard]] virtual Status Write(PageId id, const char* buf) = 0;

  /// Pushes buffered writes toward durable storage (no-op by default).
  [[nodiscard]] virtual Status Flush() { return Status::OK(); }

  /// Number of pages allocated so far.
  virtual PageId page_count() const = 0;
};

/// Heap-backed pager; the default for benchmarks (the paper's relative
/// claims are about bytes touched and operator asymptotics, not disk).
class MemoryPager : public Pager {
 public:
  [[nodiscard]] Result<PageId> Allocate() override;
  [[nodiscard]] Status Read(PageId id, char* buf) override;
  [[nodiscard]] Status Write(PageId id, const char* buf) override;
  PageId page_count() const override {
    return static_cast<PageId>(pages_.size());
  }

 private:
  std::vector<std::unique_ptr<char[]>> pages_;
};

/// File-backed pager over a single database file.
///
/// Every operation checks the stream's failbits and reports the offending
/// page id; a failed operation clears the sticky error state so later
/// operations are not poisoned by it.
class FilePager : public Pager {
 public:
  /// Opens (creating if needed) `path`. A file whose size is not a
  /// multiple of kPageSize is rejected (a torn final page from a crash;
  /// Database::Open runs WAL recovery, which repairs the size, before
  /// opening the pager).
  [[nodiscard]] static Result<std::unique_ptr<FilePager>> Open(const std::string& path);
  ~FilePager() override;

  [[nodiscard]] Result<PageId> Allocate() override;
  [[nodiscard]] Status Read(PageId id, char* buf) override;
  [[nodiscard]] Status Write(PageId id, const char* buf) override;
  [[nodiscard]] Status Flush() override;
  PageId page_count() const override { return page_count_; }

 private:
  FilePager(std::string path, std::fstream file, PageId page_count)
      : path_(std::move(path)),
        file_(std::move(file)),
        page_count_(page_count) {}

  const std::string path_;
  std::fstream file_;
  PageId page_count_;
};

}  // namespace xorator::ordb

#endif  // XORATOR_ORDB_PAGER_H_
