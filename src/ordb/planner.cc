#include "ordb/planner.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/str_util.h"

namespace xorator::ordb {

namespace {

using sql::AstExpr;

bool IsAggregateName(const std::string& name) {
  std::string lower = ToLower(name);
  return lower == "count" || lower == "sum" || lower == "min" ||
         lower == "max";
}

bool ContainsAggregate(const AstExpr& e) {
  if (e.kind == AstExpr::Kind::kFunc && IsAggregateName(e.name)) return true;
  for (const auto& c : e.children) {
    if (ContainsAggregate(*c)) return true;
  }
  return false;
}

/// One FROM entry with its contribution to the combined row layout.
struct FromItem {
  const TableInfo* table = nullptr;       // null for table functions
  const TableFunction* function = nullptr;
  std::string alias;
  std::vector<ColumnMeta> columns;  // qualified alias.col
  size_t offset = 0;
};

/// Resolves column names against the combined layout of all FROM items.
class Scope {
 public:
  explicit Scope(const std::vector<FromItem>* items) : items_(items) {}

  struct Resolution {
    size_t global_index;
    size_t item;
    TypeId type;
    std::string qualified;
  };

  Result<Resolution> Resolve(const std::string& name) const {
    std::string target = ToLower(name);
    bool qualified = target.find('.') != std::string::npos;
    const FromItem* found_item = nullptr;
    Resolution found{};
    for (size_t i = 0; i < items_->size(); ++i) {
      const FromItem& item = (*items_)[i];
      for (size_t c = 0; c < item.columns.size(); ++c) {
        std::string col = ToLower(item.columns[c].name);
        bool match = qualified ? col == target
                               : col.size() > target.size() &&
                                     col.compare(col.size() - target.size(),
                                                 target.size(), target) == 0 &&
                                     col[col.size() - target.size() - 1] == '.';
        if (!match) continue;
        if (found_item != nullptr) {
          return Status::InvalidArgument("ambiguous column '" + name + "'");
        }
        found_item = &item;
        found.global_index = item.offset + c;
        found.item = i;
        found.type = item.columns[c].type;
        found.qualified = item.columns[c].name;
      }
    }
    if (found_item == nullptr) {
      return Status::NotFound("unknown column '" + name + "'");
    }
    return found;
  }

 private:
  const std::vector<FromItem>* items_;
};

/// Binds AST expressions to executable expressions against the combined
/// layout, optionally shifted for side-local binding.
class Binder {
 public:
  Binder(const Scope* scope, const FunctionRegistry* functions)
      : scope_(scope), functions_(functions) {}

  /// `offset_shift` is subtracted from every resolved global index (to bind
  /// an expression against one side's local layout).
  Result<ExprPtr> Bind(const AstExpr& e, size_t offset_shift = 0) const {
    switch (e.kind) {
      case AstExpr::Kind::kColumn: {
        XO_ASSIGN_OR_RETURN(auto res, scope_->Resolve(e.name));
        if (res.global_index < offset_shift) {
          return Status::Internal("column bound below side offset");
        }
        return ExprPtr(new ColumnRefExpr(res.global_index - offset_shift,
                                         res.qualified, res.type));
      }
      case AstExpr::Kind::kLiteral:
        return ExprPtr(new LiteralExpr(e.literal));
      case AstExpr::Kind::kStar:
        return Status::InvalidArgument("'*' is only valid in COUNT(*)");
      case AstExpr::Kind::kCompare: {
        XO_ASSIGN_OR_RETURN(auto l, Bind(*e.children[0], offset_shift));
        XO_ASSIGN_OR_RETURN(auto r, Bind(*e.children[1], offset_shift));
        return ExprPtr(new CompareExpr(e.op, std::move(l), std::move(r)));
      }
      case AstExpr::Kind::kAnd:
      case AstExpr::Kind::kOr: {
        XO_ASSIGN_OR_RETURN(auto l, Bind(*e.children[0], offset_shift));
        XO_ASSIGN_OR_RETURN(auto r, Bind(*e.children[1], offset_shift));
        return ExprPtr(new LogicExpr(e.kind == AstExpr::Kind::kAnd
                                         ? LogicExpr::Kind::kAnd
                                         : LogicExpr::Kind::kOr,
                                     std::move(l), std::move(r)));
      }
      case AstExpr::Kind::kNot: {
        XO_ASSIGN_OR_RETURN(auto c, Bind(*e.children[0], offset_shift));
        return ExprPtr(
            new LogicExpr(LogicExpr::Kind::kNot, std::move(c), nullptr));
      }
      case AstExpr::Kind::kLike: {
        XO_ASSIGN_OR_RETURN(auto c, Bind(*e.children[0], offset_shift));
        return ExprPtr(new LikeExpr(std::move(c), e.pattern));
      }
      case AstExpr::Kind::kIsNull: {
        XO_ASSIGN_OR_RETURN(auto c, Bind(*e.children[0], offset_shift));
        return ExprPtr(new IsNullExpr(std::move(c), e.negated));
      }
      case AstExpr::Kind::kFunc: {
        const ScalarFunction* fn = functions_->FindScalar(e.name);
        if (fn == nullptr) {
          return Status::NotFound("unknown function '" + e.name + "'");
        }
        std::vector<ExprPtr> args;
        for (const auto& a : e.children) {
          XO_ASSIGN_OR_RETURN(auto bound, Bind(*a, offset_shift));
          args.push_back(std::move(bound));
        }
        return ExprPtr(new FunctionExpr(fn, std::move(args)));
      }
    }
    return Status::Internal("unhandled AST node");
  }

 private:
  const Scope* scope_;
  const FunctionRegistry* functions_;
};

void CollectColumnNames(const AstExpr& e, std::vector<std::string>* out) {
  if (e.kind == AstExpr::Kind::kColumn) out->push_back(e.name);
  for (const auto& c : e.children) CollectColumnNames(*c, out);
}

/// A WHERE conjunct with the FROM items it references.
struct Conjunct {
  const AstExpr* ast;
  std::set<size_t> items;
  bool consumed = false;
};

void FlattenConjuncts(const AstExpr& e, std::vector<const AstExpr*>* out) {
  if (e.kind == AstExpr::Kind::kAnd) {
    FlattenConjuncts(*e.children[0], out);
    FlattenConjuncts(*e.children[1], out);
    return;
  }
  out->push_back(&e);
}

/// Crude selectivity model for base-table cardinality estimation.
double EstimateSelectivity(const AstExpr& e, const TableInfo& table,
                           const Scope& scope) {
  switch (e.kind) {
    case AstExpr::Kind::kCompare: {
      if (e.op != CompareOp::kEq) return 0.3;
      // col = literal: 1/ndv when stats exist.
      const AstExpr* col = nullptr;
      if (e.children[0]->kind == AstExpr::Kind::kColumn &&
          e.children[1]->kind == AstExpr::Kind::kLiteral) {
        col = e.children[0].get();
      } else if (e.children[1]->kind == AstExpr::Kind::kColumn &&
                 e.children[0]->kind == AstExpr::Kind::kLiteral) {
        col = e.children[1].get();
      }
      if (col != nullptr && table.stats.collected) {
        auto res = scope.Resolve(col->name);
        if (res.ok()) {
          // Map the qualified name back to the table's local column.
          std::string local = res->qualified.substr(
              res->qualified.find('.') + 1);
          int idx = table.schema.ColumnIndex(local);
          if (idx >= 0 && table.stats.columns[idx].ndv > 0) {
            return 1.0 / table.stats.columns[idx].ndv;
          }
        }
      }
      return 0.05;
    }
    case AstExpr::Kind::kLike:
      return 0.25;
    case AstExpr::Kind::kAnd:
      return EstimateSelectivity(*e.children[0], table, scope) *
             EstimateSelectivity(*e.children[1], table, scope);
    case AstExpr::Kind::kOr:
      return std::min(1.0,
                      EstimateSelectivity(*e.children[0], table, scope) +
                          EstimateSelectivity(*e.children[1], table, scope));
    default:
      return 0.5;
  }
}

/// Recognizes `col = literal` for index-scan selection; returns the column
/// AST node and the literal.
bool MatchColumnEqLiteral(const AstExpr& e, const AstExpr** col,
                          const Value** literal) {
  if (e.kind != AstExpr::Kind::kCompare || e.op != CompareOp::kEq) {
    return false;
  }
  if (e.children[0]->kind == AstExpr::Kind::kColumn &&
      e.children[1]->kind == AstExpr::Kind::kLiteral) {
    *col = e.children[0].get();
    *literal = &e.children[1]->literal;
    return true;
  }
  if (e.children[1]->kind == AstExpr::Kind::kColumn &&
      e.children[0]->kind == AstExpr::Kind::kLiteral) {
    *col = e.children[1].get();
    *literal = &e.children[0]->literal;
    return true;
  }
  return false;
}

/// Recognizes `colA = colB` across two different items.
bool MatchEquiJoin(const AstExpr& e) {
  return e.kind == AstExpr::Kind::kCompare && e.op == CompareOp::kEq &&
         e.children[0]->kind == AstExpr::Kind::kColumn &&
         e.children[1]->kind == AstExpr::Kind::kColumn;
}

}  // namespace

Result<OperatorPtr> Planner::PlanSelect(const sql::SelectStmt& stmt) {
  if (stmt.from.empty()) {
    return Status::InvalidArgument("FROM clause is required");
  }

  // ---- Resolve FROM items and the combined layout. -----------------------
  std::vector<FromItem> items;
  items.reserve(stmt.from.size());
  size_t offset = 0;
  for (const sql::TableRef& ref : stmt.from) {
    FromItem item;
    item.alias = ref.alias;
    if (ref.is_function) {
      item.function = functions_->FindTable(ref.function_name);
      if (item.function == nullptr) {
        return Status::NotFound("unknown table function '" +
                                ref.function_name + "'");
      }
      for (const ColumnDef& c : item.function->output) {
        item.columns.push_back({ref.alias + "." + c.name, c.type});
      }
    } else {
      item.table = catalog_->FindTable(ref.table);
      if (item.table == nullptr) {
        return Status::NotFound("unknown table '" + ref.table + "'");
      }
      for (const ColumnDef& c : item.table->schema.columns) {
        item.columns.push_back({ref.alias + "." + c.name, c.type});
      }
    }
    item.offset = offset;
    offset += item.columns.size();
    items.push_back(std::move(item));
  }
  Scope scope(&items);
  Binder binder(&scope, functions_);

  // ---- Classify WHERE conjuncts by the items they reference. -------------
  std::vector<Conjunct> conjuncts;
  if (stmt.where != nullptr) {
    std::vector<const AstExpr*> flat;
    FlattenConjuncts(*stmt.where, &flat);
    for (const AstExpr* e : flat) {
      Conjunct c;
      c.ast = e;
      std::vector<std::string> cols;
      CollectColumnNames(*e, &cols);
      for (const std::string& name : cols) {
        XO_ASSIGN_OR_RETURN(auto res, scope.Resolve(name));
        c.items.insert(res.item);
      }
      conjuncts.push_back(std::move(c));
    }
  }

  // ---- Build each base access path with pushed-down filters. -------------
  auto base_filters = [&](size_t item_idx) {
    std::vector<Conjunct*> out;
    for (Conjunct& c : conjuncts) {
      if (!c.consumed && c.items.size() == 1 && c.items.count(item_idx)) {
        out.push_back(&c);
      }
    }
    return out;
  };

  // Estimated cardinality per base item after pushed filters.
  std::vector<double> est_rows(items.size(), 1.0);
  for (size_t i = 0; i < items.size(); ++i) {
    if (items[i].table == nullptr) {
      est_rows[i] = 4.0;  // table functions: a handful of rows per call
      continue;
    }
    double rows = static_cast<double>(items[i].table->heap->record_count());
    for (Conjunct* c : base_filters(i)) {
      rows *= EstimateSelectivity(*c->ast, *items[i].table, scope);
    }
    est_rows[i] = std::max(rows, 1.0);
  }

  auto build_base = [&](size_t i) -> Result<OperatorPtr> {
    const FromItem& item = items[i];
    std::vector<Conjunct*> filters = base_filters(i);
    OperatorPtr op;
    // Prefer an index scan for a `col = literal` filter.
    Conjunct* index_filter = nullptr;
    const IndexInfo* index = nullptr;
    Value index_key;
    for (Conjunct* c : filters) {
      const AstExpr* col;
      const Value* literal;
      if (!MatchColumnEqLiteral(*c->ast, &col, &literal)) continue;
      auto res = scope.Resolve(col->name);
      if (!res.ok() || res->item != i) continue;
      std::string local = res->qualified.substr(res->qualified.find('.') + 1);
      const IndexInfo* idx = item.table->FindIndex(local);
      if (idx != nullptr) {
        index_filter = c;
        index = idx;
        index_key = *literal;
        break;
      }
    }
    if (index != nullptr) {
      op = std::make_unique<IndexScanOp>(item.table, index, index_key,
                                         item.alias);
      index_filter->consumed = true;
    } else {
      op = std::make_unique<SeqScanOp>(item.table, item.alias);
    }
    // Remaining pushed filters. They are bound against the item's local
    // layout (shift by the item's offset).
    for (Conjunct* c : filters) {
      if (c->consumed) continue;
      XO_ASSIGN_OR_RETURN(auto pred, binder.Bind(*c->ast, item.offset));
      op = std::make_unique<FilterOp>(std::move(op), std::move(pred));
      c->consumed = true;
    }
    return op;
  };

  // ---- Left-deep join in FROM order. --------------------------------------
  std::set<size_t> joined;
  OperatorPtr plan;
  double acc_rows = 0;
  double acc_bytes_per_row = 64;

  auto table_bytes_per_row = [&](size_t i) -> double {
    if (items[i].table == nullptr || items[i].table->heap->record_count() == 0)
      return 64;
    return static_cast<double>(items[i].table->heap->bytes()) /
           static_cast<double>(items[i].table->heap->record_count());
  };

  for (size_t i = 0; i < items.size(); ++i) {
    const FromItem& item = items[i];
    if (item.function != nullptr) {
      // Lateral table function: arguments bound against the accumulated
      // layout (they may reference earlier items only).
      std::vector<ExprPtr> args;
      for (const auto& a : stmt.from[i].function_args) {
        std::vector<std::string> cols;
        CollectColumnNames(*a, &cols);
        for (const std::string& name : cols) {
          XO_ASSIGN_OR_RETURN(auto res, scope.Resolve(name));
          if (!joined.count(res.item)) {
            return Status::InvalidArgument(
                "table function argument references a later FROM item");
          }
        }
        XO_ASSIGN_OR_RETURN(auto bound, binder.Bind(*a));
        args.push_back(std::move(bound));
      }
      plan = std::make_unique<LateralTableFuncOp>(std::move(plan),
                                                  item.function,
                                                  std::move(args), item.alias);
      joined.insert(i);
      acc_rows = std::max(1.0, acc_rows) * est_rows[i];
      // Fall through to apply any now-complete conjuncts below.
    } else if (plan == nullptr) {
      XO_ASSIGN_OR_RETURN(plan, build_base(i));
      joined.insert(i);
      acc_rows = est_rows[i];
      acc_bytes_per_row = table_bytes_per_row(i);
    } else {
      // Find equi-join conjuncts linking the accumulated set to item i.
      struct JoinKey {
        const AstExpr* acc_side;
        const AstExpr* item_side;
        Conjunct* conjunct;
      };
      std::vector<JoinKey> keys;
      for (Conjunct& c : conjuncts) {
        if (c.consumed || !c.items.count(i)) continue;
        if (c.items.size() != 2) continue;
        size_t other = *c.items.begin() == i ? *c.items.rbegin()
                                             : *c.items.begin();
        if (!joined.count(other)) continue;
        if (!MatchEquiJoin(*c.ast)) continue;
        XO_ASSIGN_OR_RETURN(auto res0,
                            scope.Resolve(c.ast->children[0]->name));
        const AstExpr* acc_side = c.ast->children[0].get();
        const AstExpr* item_side = c.ast->children[1].get();
        if (res0.item == i) std::swap(acc_side, item_side);
        keys.push_back({acc_side, item_side, &c});
      }
      if (keys.empty()) {
        XO_ASSIGN_OR_RETURN(OperatorPtr right, build_base(i));
        // Cross product with any applicable predicate as residual.
        ExprPtr residual;
        for (Conjunct& c : conjuncts) {
          if (c.consumed || !c.items.count(i)) continue;
          bool complete = true;
          for (size_t it : c.items) {
            if (it != i && !joined.count(it)) complete = false;
          }
          if (!complete) continue;
          XO_ASSIGN_OR_RETURN(auto pred, binder.Bind(*c.ast));
          residual = residual == nullptr
                         ? std::move(pred)
                         : ExprPtr(new LogicExpr(LogicExpr::Kind::kAnd,
                                                 std::move(residual),
                                                 std::move(pred)));
          c.consumed = true;
        }
        plan = std::make_unique<NestedLoopJoinOp>(
            std::move(plan), std::move(right), std::move(residual));
        acc_rows = std::max(1.0, acc_rows * est_rows[i] * 0.3);
      } else {
        // Join cardinality estimate: |acc >< i| = |acc| * |i| / ndv(key),
        // with the inner join-key column's distinct count from runstats.
        double ndv_key = est_rows[i];
        if (items[i].table != nullptr && items[i].table->stats.collected &&
            keys[0].item_side->kind == AstExpr::Kind::kColumn) {
          auto res = scope.Resolve(keys[0].item_side->name);
          if (res.ok() && res->item == i) {
            std::string local =
                res->qualified.substr(res->qualified.find('.') + 1);
            int idx = items[i].table->schema.ColumnIndex(local);
            if (idx >= 0 && items[i].table->stats.columns[idx].ndv > 0) {
              ndv_key = items[i].table->stats.columns[idx].ndv;
            }
          }
        }
        double join_rows = std::max(
            1.0, acc_rows * est_rows[i] / std::max(ndv_key, 1.0));

        // Decide the join algorithm.
        bool used_index_join = false;
        if (options_.enable_index_join && keys.size() >= 1 &&
            items[i].table != nullptr) {
          // Index NL is profitable when the outer (accumulated) side is
          // selective relative to the inner table.
          double inner_rows =
              static_cast<double>(items[i].table->heap->record_count());
          if (acc_rows <= options_.index_join_outer_ratio *
                              std::max(inner_rows, 1.0)) {
            for (JoinKey& k : keys) {
              if (k.item_side->kind != AstExpr::Kind::kColumn) continue;
              auto res = scope.Resolve(k.item_side->name);
              if (!res.ok()) continue;
              std::string local =
                  res->qualified.substr(res->qualified.find('.') + 1);
              const IndexInfo* idx = items[i].table->FindIndex(local);
              if (idx == nullptr) continue;
              // Residual: the remaining join keys (bound to the combined
              // layout).
              ExprPtr residual;
              for (JoinKey& other : keys) {
                if (&other == &k) {
                  other.conjunct->consumed = true;
                  continue;
                }
                XO_ASSIGN_OR_RETURN(auto pred,
                                    binder.Bind(*other.conjunct->ast));
                residual = residual == nullptr
                               ? std::move(pred)
                               : ExprPtr(new LogicExpr(LogicExpr::Kind::kAnd,
                                                       std::move(residual),
                                                       std::move(pred)));
                other.conjunct->consumed = true;
              }
              XO_ASSIGN_OR_RETURN(auto outer_key, binder.Bind(*k.acc_side));
              // The inner side's pushed filters become part of the
              // residual (the index join reads the base table directly).
              for (Conjunct* c : base_filters(i)) {
                XO_ASSIGN_OR_RETURN(auto pred, binder.Bind(*c->ast));
                residual = residual == nullptr
                               ? std::move(pred)
                               : ExprPtr(new LogicExpr(LogicExpr::Kind::kAnd,
                                                       std::move(residual),
                                                       std::move(pred)));
                c->consumed = true;
              }
              plan = std::make_unique<IndexNestedLoopJoinOp>(
                  std::move(plan), items[i].table, idx, std::move(outer_key),
                  item.alias, std::move(residual));
              used_index_join = true;
              break;
            }
          }
        }
        if (!used_index_join) {
          XO_ASSIGN_OR_RETURN(OperatorPtr right, build_base(i));
          std::vector<ExprPtr> left_keys;
          std::vector<ExprPtr> right_keys;
          for (JoinKey& k : keys) {
            XO_ASSIGN_OR_RETURN(auto l, binder.Bind(*k.acc_side));
            XO_ASSIGN_OR_RETURN(auto r, binder.Bind(*k.item_side,
                                                    items[i].offset));
            left_keys.push_back(std::move(l));
            right_keys.push_back(std::move(r));
            k.conjunct->consumed = true;
          }
          double build_bytes = acc_rows * acc_bytes_per_row;
          bool hash_fits =
              options_.enable_hash_join &&
              build_bytes <= static_cast<double>(options_.sort_heap_bytes);
          if (hash_fits) {
            plan = std::make_unique<HashJoinOp>(
                std::move(plan), std::move(right), std::move(left_keys),
                std::move(right_keys), nullptr);
          } else {
            plan = std::make_unique<SortMergeJoinOp>(
                std::move(plan), std::move(right), std::move(left_keys),
                std::move(right_keys), nullptr);
          }
        }
        acc_rows = join_rows;
        acc_bytes_per_row += table_bytes_per_row(i);
      }
    }
    joined.insert(i);
    // Apply any conjuncts that have just become fully bound.
    for (Conjunct& c : conjuncts) {
      if (c.consumed) continue;
      bool complete = true;
      for (size_t it : c.items) {
        if (!joined.count(it)) complete = false;
      }
      if (!complete) continue;
      XO_ASSIGN_OR_RETURN(auto pred, binder.Bind(*c.ast));
      plan = std::make_unique<FilterOp>(std::move(plan), std::move(pred));
      c.consumed = true;
      acc_rows = std::max(1.0, acc_rows * 0.3);
    }
  }

  // ---- Aggregation. -------------------------------------------------------
  bool has_aggregate = !stmt.group_by.empty();
  for (const sql::SelectItem& item : stmt.items) {
    if (ContainsAggregate(*item.expr)) has_aggregate = true;
  }

  auto item_name = [](const sql::SelectItem& item) {
    return item.alias.empty() ? item.expr->ToString() : item.alias;
  };

  if (has_aggregate) {
    std::vector<ExprPtr> group_keys;
    std::vector<std::string> group_names;
    for (const auto& g : stmt.group_by) {
      XO_ASSIGN_OR_RETURN(auto bound, binder.Bind(*g));
      group_names.push_back(g->ToString());
      group_keys.push_back(std::move(bound));
    }
    std::vector<AggregateSpec> aggs;
    // Map each select item onto the aggregate output.
    struct OutputRef {
      bool is_group_key;
      size_t index;  // group key idx or aggregate idx
      std::string name;
      TypeId type;
    };
    std::vector<OutputRef> outputs;
    for (const sql::SelectItem& sel : stmt.items) {
      const AstExpr& e = *sel.expr;
      if (e.kind == AstExpr::Kind::kFunc && IsAggregateName(e.name)) {
        AggregateSpec spec;
        std::string lower = ToLower(e.name);
        if (lower == "count") {
          if (e.children.size() == 1 &&
              e.children[0]->kind == AstExpr::Kind::kStar) {
            spec.kind = AggKind::kCountStar;
          } else if (e.children.size() == 1) {
            spec.kind = AggKind::kCount;
            XO_ASSIGN_OR_RETURN(spec.arg, binder.Bind(*e.children[0]));
          } else {
            return Status::InvalidArgument("COUNT takes one argument");
          }
        } else {
          if (e.children.size() != 1) {
            return Status::InvalidArgument(e.name + " takes one argument");
          }
          spec.kind = lower == "sum" ? AggKind::kSum
                      : lower == "min" ? AggKind::kMin
                                       : AggKind::kMax;
          XO_ASSIGN_OR_RETURN(spec.arg, binder.Bind(*e.children[0]));
        }
        spec.name = item_name(sel);
        TypeId out_type =
            (spec.kind == AggKind::kMin || spec.kind == AggKind::kMax) &&
                    spec.arg != nullptr
                ? spec.arg->type()
                : TypeId::kInteger;
        outputs.push_back({false, aggs.size(), spec.name, out_type});
        aggs.push_back(std::move(spec));
        continue;
      }
      // Non-aggregate select item must match a GROUP BY expression.
      std::string text = e.ToString();
      bool matched = false;
      for (size_t g = 0; g < group_names.size(); ++g) {
        if (EqualsIgnoreCase(group_names[g], text)) {
          outputs.push_back(
              {true, g, item_name(sel), group_keys[g]->type()});
          matched = true;
          break;
        }
      }
      if (!matched) {
        return Status::InvalidArgument(
            "select item '" + text +
            "' must be an aggregate or appear in GROUP BY");
      }
    }
    size_t n_groups = group_keys.size();
    plan = std::make_unique<AggregateOp>(std::move(plan),
                                         std::move(group_keys), group_names,
                                         std::move(aggs));
    // Final projection into select order.
    std::vector<ExprPtr> proj;
    std::vector<std::string> names;
    for (const OutputRef& o : outputs) {
      size_t idx = o.is_group_key ? o.index : n_groups + o.index;
      proj.push_back(ExprPtr(new ColumnRefExpr(idx, o.name, o.type)));
      names.push_back(o.name);
    }
    plan = std::make_unique<ProjectOp>(std::move(plan), std::move(proj),
                                       std::move(names));
  } else {
    // ---- Plain projection. -----------------------------------------------
    std::vector<ExprPtr> proj;
    std::vector<std::string> names;
    for (const sql::SelectItem& sel : stmt.items) {
      if (sel.expr->kind == AstExpr::Kind::kStar) {
        for (const FromItem& item : items) {
          for (size_t c = 0; c < item.columns.size(); ++c) {
            proj.push_back(ExprPtr(new ColumnRefExpr(
                item.offset + c, item.columns[c].name, item.columns[c].type)));
            names.push_back(item.columns[c].name);
          }
        }
        continue;
      }
      XO_ASSIGN_OR_RETURN(auto bound, binder.Bind(*sel.expr));
      names.push_back(item_name(sel));
      proj.push_back(std::move(bound));
    }
    plan = std::make_unique<ProjectOp>(std::move(plan), std::move(proj),
                                       std::move(names));
  }

  if (stmt.distinct) {
    plan = std::make_unique<DistinctOp>(std::move(plan));
  }

  // ---- ORDER BY over the projected output. --------------------------------
  if (!stmt.order_by.empty()) {
    std::vector<ExprPtr> keys;
    std::vector<bool> asc;
    for (const sql::OrderItem& o : stmt.order_by) {
      std::string text = o.expr->ToString();
      int found = -1;
      const auto& cols = plan->columns();
      for (size_t c = 0; c < cols.size(); ++c) {
        if (EqualsIgnoreCase(cols[c].name, text)) {
          found = static_cast<int>(c);
          break;
        }
        // Allow matching the unqualified column suffix.
        size_t dot = cols[c].name.find('.');
        if (dot != std::string::npos &&
            EqualsIgnoreCase(cols[c].name.substr(dot + 1), text)) {
          found = static_cast<int>(c);
          break;
        }
      }
      if (found < 0) {
        return Status::InvalidArgument(
            "ORDER BY expression '" + text +
            "' must reference a select-list column");
      }
      keys.push_back(ExprPtr(new ColumnRefExpr(
          static_cast<size_t>(found), plan->columns()[found].name,
          plan->columns()[found].type)));
      asc.push_back(o.ascending);
    }
    plan = std::make_unique<SortOp>(std::move(plan), std::move(keys),
                                    std::move(asc));
  }
  return plan;
}

}  // namespace xorator::ordb
