#ifndef XORATOR_ORDB_PLANNER_H_
#define XORATOR_ORDB_PLANNER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "ordb/catalog.h"
#include "ordb/executor.h"
#include "ordb/functions.h"
#include "ordb/sql.h"

namespace xorator::ordb {

/// Planner knobs, mirroring the DB2 configuration the paper describes
/// (hash joins enabled, a bounded sort heap, index-wizard indexes).
struct PlannerOptions {
  /// Hash-join build side must fit here, else the planner falls back to
  /// sort-merge (how the Figure 13 crossover arises at larger scales).
  size_t sort_heap_bytes = 8u << 20;
  bool enable_hash_join = true;
  /// Use index nested-loop joins when the outer side is estimated to be
  /// selective and the inner column has an index.
  bool enable_index_join = true;
  /// Outer-to-inner row ratio below which an index nested-loop join is
  /// considered profitable.
  double index_join_outer_ratio = 0.25;
};

/// Translates a parsed SELECT into a physical operator tree over the
/// catalog: filter pushdown, left-deep joins in FROM order with
/// index-NL/hash/sort-merge selection, lateral table functions, aggregation,
/// DISTINCT and ORDER BY.
class Planner {
 public:
  Planner(Catalog* catalog, FunctionRegistry* functions,
          const PlannerOptions& options)
      : catalog_(catalog), functions_(functions), options_(options) {}

  [[nodiscard]] Result<OperatorPtr> PlanSelect(const sql::SelectStmt& stmt);

 private:
  Catalog* catalog_;
  FunctionRegistry* functions_;
  PlannerOptions options_;
};

}  // namespace xorator::ordb

#endif  // XORATOR_ORDB_PLANNER_H_
