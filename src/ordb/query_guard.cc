#include "ordb/query_guard.h"

namespace xorator::ordb {

namespace {
thread_local QueryGuard* g_current_guard = nullptr;
}  // namespace

QueryGuard::QueryGuard(uint64_t deadline_millis, uint64_t max_memory_bytes)
    : deadline_millis_(deadline_millis),
      max_memory_bytes_(max_memory_bytes),
      start_(std::chrono::steady_clock::now()),
      deadline_(deadline_millis == 0
                    ? std::chrono::steady_clock::time_point::max()
                    : start_ + std::chrono::milliseconds(deadline_millis)) {}

StatusCode QueryGuard::LatchStop(StatusCode code) {
  int expected = static_cast<int>(StatusCode::kOk);
  stop_code_.compare_exchange_strong(expected, static_cast<int>(code),
                                     std::memory_order_relaxed);
  // On failure `expected` holds the code that won the race; return that so
  // every caller reports one coherent reason.
  return expected == static_cast<int>(StatusCode::kOk)
             ? code
             : static_cast<StatusCode>(expected);
}

Status QueryGuard::StopError(StatusCode code) const {
  switch (code) {
    case StatusCode::kCancelled:
      return Status::Cancelled("query cancelled");
    case StatusCode::kDeadlineExceeded:
      return Status::DeadlineExceeded(
          "query deadline of " + std::to_string(deadline_millis_) +
          " ms exceeded");
    case StatusCode::kResourceExhausted:
      return Status::ResourceExhausted(
          "query memory budget of " + std::to_string(max_memory_bytes_) +
          " bytes exceeded (tracked " +
          std::to_string(tracked_bytes_.load(std::memory_order_relaxed)) +
          " bytes)");
    default:
      return Status::Internal("guard stopped with unexpected code");
  }
}

Status QueryGuard::CheckPoint() {
  uint64_t n = checkpoints_.fetch_add(1, std::memory_order_relaxed);
  // Once tripped, stay tripped: the unwinding query sees one reason no
  // matter which loop polls next.
  int latched = stop_code_.load(std::memory_order_relaxed);
  if (latched != static_cast<int>(StatusCode::kOk)) {
    return StopError(static_cast<StatusCode>(latched));
  }
  if (cancelled_.load(std::memory_order_relaxed)) {
    return StopError(LatchStop(StatusCode::kCancelled));
  }
  if (max_memory_bytes_ != 0 &&
      tracked_bytes_.load(std::memory_order_relaxed) > max_memory_bytes_) {
    return StopError(LatchStop(StatusCode::kResourceExhausted));
  }
  if (deadline_millis_ != 0 && (n % kClockStride == 0) &&
      std::chrono::steady_clock::now() >= deadline_) {
    return StopError(LatchStop(StatusCode::kDeadlineExceeded));
  }
  return Status::OK();
}

Status QueryGuard::Charge(uint64_t bytes) {
  uint64_t total =
      tracked_bytes_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  uint64_t peak = peak_bytes_.load(std::memory_order_relaxed);
  while (total > peak && !peak_bytes_.compare_exchange_weak(
                             peak, total, std::memory_order_relaxed)) {
  }
  if (max_memory_bytes_ != 0 && total > max_memory_bytes_) {
    return StopError(LatchStop(StatusCode::kResourceExhausted));
  }
  return Status::OK();
}

GuardStats QueryGuard::Stats() const {
  GuardStats s;
  s.checkpoints = checkpoints_.load(std::memory_order_relaxed);
  s.tracked_bytes = tracked_bytes_.load(std::memory_order_relaxed);
  s.peak_tracked_bytes = peak_bytes_.load(std::memory_order_relaxed);
  s.stop_code =
      static_cast<StatusCode>(stop_code_.load(std::memory_order_relaxed));
  return s;
}

std::string QueryGuard::StatsLine() const {
  GuardStats s = Stats();
  std::string out = "guard: checkpoints=" + std::to_string(s.checkpoints) +
                    " peak_bytes=" + std::to_string(s.peak_tracked_bytes) +
                    " stopped=";
  out += StatusCodeToString(s.stop_code);
  return out;
}

Status TrackedArena::Charge(uint64_t bytes) {
  if (guard_ == nullptr) return Status::OK();
  charged_ += bytes;
  return guard_->Charge(bytes);
}

void TrackedArena::Release() {
  if (guard_ != nullptr && charged_ != 0) {
    guard_->Uncharge(charged_);
  }
  charged_ = 0;
}

QueryGuard* CurrentGuard() { return g_current_guard; }

ScopedGuardBind::ScopedGuardBind(QueryGuard* guard) : prev_(g_current_guard) {
  g_current_guard = guard;
}

ScopedGuardBind::~ScopedGuardBind() { g_current_guard = prev_; }

}  // namespace xorator::ordb
