#ifndef XORATOR_ORDB_QUERY_GUARD_H_
#define XORATOR_ORDB_QUERY_GUARD_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

#include "common/status.h"

namespace xorator::ordb {

/// Snapshot of a guard's counters, surfaced in EXPLAIN output and
/// `shred::LoadReport` so callers can see how close a query came to its
/// limits and why it stopped (DESIGN.md §12).
struct GuardStats {
  /// Number of CheckPoint() calls the query made (a proxy for rows/steps
  /// examined between cancellation opportunities).
  uint64_t checkpoints = 0;
  /// Bytes currently charged against the budget.
  uint64_t tracked_bytes = 0;
  /// High-water mark of charged bytes over the query's lifetime.
  uint64_t peak_tracked_bytes = 0;
  /// Why the guard tripped: kDeadlineExceeded, kCancelled or
  /// kResourceExhausted — or kOk if it never did.
  StatusCode stop_code = StatusCode::kOk;
};

/// Per-query resource governor: a monotonic deadline, a cross-thread cancel
/// token, and a tracked-byte budget, polled cooperatively via CheckPoint()
/// from operator loops, XADT fragment scans and the bulk loader.
///
/// Protocol (DESIGN.md §12): the thread running the query calls
/// CheckPoint() every few rows / fragment events and Charge()/Uncharge()
/// around materializations; any other thread may call Cancel() at any time.
/// The first limit to trip is latched as `stop_code` and every subsequent
/// CheckPoint() keeps returning the same error, so a query unwinds with one
/// coherent reason. All counters are atomics — a guard may be polled while
/// the owning statement holds `Database::mu_` shared, and Cancel() never
/// takes a lock, so readers stay cancellable mid-statement.
///
/// A limit of 0 means "unlimited" for both the deadline and the byte
/// budget; a guard constructed with both zero still honors Cancel().
class QueryGuard {
 public:
  /// Starts the clock now. `deadline_millis` bounds wall time from this
  /// moment (steady clock, immune to wall-clock adjustment);
  /// `max_memory_bytes` bounds the sum of outstanding Charge()s. Zero
  /// disables the respective limit.
  QueryGuard(uint64_t deadline_millis, uint64_t max_memory_bytes);

  QueryGuard(const QueryGuard&) = delete;
  QueryGuard& operator=(const QueryGuard&) = delete;

  /// Polls every limit. Returns OK to keep running, or latches and returns
  /// kCancelled / kDeadlineExceeded / kResourceExhausted. Cheap enough for
  /// per-row use: the cancel flag and byte counter are relaxed atomic
  /// loads; the clock is only read every kClockStride calls (a late
  /// deadline detection of at most kClockStride rows).
  [[nodiscard]] Status CheckPoint();

  /// Requests cooperative cancellation; the query returns kCancelled from
  /// its next CheckPoint(). Safe from any thread, lock-free.
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  /// True once Cancel() has been called (the query may not have noticed
  /// yet).
  bool cancel_requested() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

  /// Adds `bytes` to the tracked total (updating the peak). Returns
  /// kResourceExhausted — latched, like CheckPoint() — when the total
  /// exceeds the budget; the charge stays recorded so the unwinding
  /// caller's Uncharge() balances it.
  [[nodiscard]] Status Charge(uint64_t bytes);

  /// Returns `bytes` to the budget. Must balance a prior Charge().
  void Uncharge(uint64_t bytes) {
    tracked_bytes_.fetch_sub(bytes, std::memory_order_relaxed);
  }

  /// Point-in-time snapshot of the counters; coherent enough for reporting
  /// (individual fields are read relaxed).
  GuardStats Stats() const;

  /// One-line human-readable rendering of Stats() for EXPLAIN output,
  /// e.g. "guard: checkpoints=1234 peak_bytes=5678 stopped=Cancelled".
  std::string StatsLine() const;

  /// True for the three codes a guard stop produces (kCancelled,
  /// kDeadlineExceeded, kResourceExhausted); callers use this to tell a
  /// governed abort from a genuine data or storage error.
  static bool IsStopCode(StatusCode code) {
    return code == StatusCode::kCancelled ||
           code == StatusCode::kDeadlineExceeded ||
           code == StatusCode::kResourceExhausted;
  }

 private:
  /// Clock reads are strided: CheckPoint() consults steady_clock only once
  /// per this many calls. 32 keeps BM_GuardOverhead comfortably under the
  /// 2% target while bounding deadline-detection latency to a handful of
  /// microseconds of extra rows.
  static constexpr uint64_t kClockStride = 32;

  /// Latches `code` as the stop reason if none is set yet and returns the
  /// reason actually latched (first trip wins).
  StatusCode LatchStop(StatusCode code);

  /// Builds the error for the latched stop code.
  Status StopError(StatusCode code) const;

  const uint64_t deadline_millis_;
  const uint64_t max_memory_bytes_;
  const std::chrono::steady_clock::time_point start_;
  const std::chrono::steady_clock::time_point deadline_;

  std::atomic<bool> cancelled_{false};
  std::atomic<uint64_t> tracked_bytes_{0};
  std::atomic<uint64_t> peak_bytes_{0};
  std::atomic<uint64_t> checkpoints_{0};
  /// StatusCode of the first limit to trip, or kOk. Stored as int so it
  /// fits a lock-free atomic on every target.
  std::atomic<int> stop_code_{static_cast<int>(StatusCode::kOk)};
};

/// RAII accounting for one consumer's share of a guard's byte budget
/// (operator hash tables, sort buffers, decoded XADT fragments). Charges
/// accumulate via Charge(); everything still outstanding is returned to the
/// guard when the arena is destroyed or Release()d, so an error unwind can
/// never leak budget. A null guard makes every operation a no-op, keeping
/// unguarded execution zero-cost.
class TrackedArena {
 public:
  /// An unbound arena; every operation is a no-op until Rebind().
  TrackedArena() : guard_(nullptr) {}
  /// Binds the arena to `guard` (may be null for unguarded execution).
  explicit TrackedArena(QueryGuard* guard) : guard_(guard) {}

  TrackedArena(const TrackedArena&) = delete;
  TrackedArena& operator=(const TrackedArena&) = delete;

  ~TrackedArena() { Release(); }

  /// Charges `bytes` against the guard's budget; kResourceExhausted when
  /// the query is over budget, OK otherwise (and always OK when unguarded).
  [[nodiscard]] Status Charge(uint64_t bytes);

  /// Returns every outstanding byte to the guard. Idempotent; called by
  /// the destructor.
  void Release();

  /// Releases any outstanding charge, then binds the arena to `guard` (an
  /// operator's Open() does this, since the guard is only known then and
  /// operators may be re-opened).
  void Rebind(QueryGuard* guard) {
    Release();
    guard_ = guard;
  }

  /// Bytes this arena currently holds charged.
  uint64_t charged() const { return charged_; }

 private:
  QueryGuard* guard_;
  uint64_t charged_ = 0;
};

/// The guard bound to the calling thread by ScopedGuardBind, or null.
///
/// Exists for the XADT UDF boundary: scalar/table function implementations
/// receive only `const std::vector<Value>&` (the marshaled-UDF ABI,
/// functions.h), so the executor cannot pass a guard through the call.
/// Database binds the statement's guard to the executing thread instead,
/// and the xadt fragment loops poll it here (DESIGN.md §12).
QueryGuard* CurrentGuard();

/// Binds `guard` as the calling thread's CurrentGuard() for the scope of
/// this object, restoring the previous binding on destruction (bindings
/// nest).
class ScopedGuardBind {
 public:
  /// Installs `guard` (may be null, which unbinds for the scope).
  explicit ScopedGuardBind(QueryGuard* guard);
  ScopedGuardBind(const ScopedGuardBind&) = delete;
  ScopedGuardBind& operator=(const ScopedGuardBind&) = delete;
  ~ScopedGuardBind();

 private:
  QueryGuard* prev_;
};

}  // namespace xorator::ordb

#endif  // XORATOR_ORDB_QUERY_GUARD_H_
