#include "ordb/row_codec.h"

#include "common/span.h"

namespace xorator::ordb {

namespace {

// Post-validation varint read: RowView::Parse already proved the buffer
// holds a complete, in-range varint at `*pos`, so the hot decode path can
// skip the bounds checks and Result plumbing of common/varint.h.
uint64_t GetVarintUnchecked(std::string_view s, size_t* pos) {
  uint64_t value = 0;
  int shift = 0;
  size_t p = *pos;
  while (true) {
    uint8_t byte = static_cast<uint8_t>(s[p++]);
    value |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
  }
  *pos = p;
  return value;
}

}  // namespace

Value ValueView::ToValue() const {
  if (null_) return Value::Null();
  switch (type_) {
    case TypeId::kBoolean:
      return Value::Bool(int_ != 0);
    case TypeId::kInteger:
      return Value::Int(int_);
    case TypeId::kDouble:
      return Value::Double(double_);
    case TypeId::kVarchar:
      return Value::Varchar(std::string(bytes_));
    case TypeId::kXadt:
      return Value::Xadt(std::string(bytes_));
    case TypeId::kNull:
      break;
  }
  return Value::Null();
}

Result<RowView> RowView::Parse(const TableSchema& schema,
                               std::string_view row) {
  // This is the validating pass the unchecked accessors below rely on:
  // the BoundedReader proves every field — bitmap, numerics, varint
  // lengths, string payloads — lies inside `row` before any view is
  // handed out. Corrupt records fail closed with kCorruption here.
  RowView v;
  v.schema_ = &schema;
  v.row_ = row;
  v.ncols_ = schema.columns.size();
  const size_t bitmap_bytes = (v.ncols_ + 7) / 8;
  xo::BoundedReader reader(row);
  if (!reader.Skip(bitmap_bytes).ok()) {
    return Status::Corruption("row shorter than its null bitmap");
  }
  for (size_t i = 0; i < v.ncols_; ++i) {
    if (i < kInlineOffsets) {
      v.offsets_[i] = static_cast<uint32_t>(reader.position());
    }
    if (v.IsNull(i)) continue;
    switch (schema.columns[i].type) {
      case TypeId::kBoolean:
        if (!reader.Skip(1).ok()) {
          return Status::Corruption("truncated boolean in row");
        }
        break;
      case TypeId::kInteger:
      case TypeId::kDouble:
        if (!reader.Skip(8).ok()) {
          return Status::Corruption("truncated numeric in row");
        }
        break;
      case TypeId::kVarchar:
      case TypeId::kXadt: {
        if (!reader.ReadLengthPrefixedBytes().ok()) {
          return Status::Corruption("string length overflows row");
        }
        break;
      }
      case TypeId::kNull:
        break;
    }
  }
  if (!reader.AtEnd()) {
    return Status::Corruption("trailing bytes after the last column");
  }
  return v;
}

size_t RowView::Skip(size_t pos, size_t col) const {
  switch (schema_->columns[col].type) {
    case TypeId::kBoolean:
      return pos + 1;
    case TypeId::kInteger:
    case TypeId::kDouble:
      return pos + 8;
    case TypeId::kVarchar:
    case TypeId::kXadt: {
      uint64_t len = GetVarintUnchecked(row_, &pos);
      return pos + static_cast<size_t>(len);
    }
    case TypeId::kNull:
      break;
  }
  return pos;
}

size_t RowView::OffsetOf(size_t i) const {
  if (i < kInlineOffsets) return offsets_[i];
  size_t pos = offsets_[kInlineOffsets - 1];
  for (size_t c = kInlineOffsets - 1; c < i; ++c) {
    if (!IsNull(c)) pos = Skip(pos, c);
  }
  return pos;
}

ValueView RowView::DecodeAt(size_t pos, size_t col) const {
  ValueView v;
  v.type_ = schema_->columns[col].type;
  v.null_ = false;
  switch (v.type_) {
    case TypeId::kBoolean:
      v.int_ = row_[pos] != 0 ? 1 : 0;
      break;
    case TypeId::kInteger: {
      v.int_ = xo::LoadFixedUnchecked<int64_t>(row_, pos);
      break;
    }
    case TypeId::kDouble: {
      v.double_ = xo::LoadFixedUnchecked<double>(row_, pos);
      break;
    }
    case TypeId::kVarchar:
    case TypeId::kXadt: {
      uint64_t len = GetVarintUnchecked(row_, &pos);
      v.bytes_ = row_.substr(pos, static_cast<size_t>(len));
      break;
    }
    case TypeId::kNull:
      v.null_ = true;
      break;
  }
  return v;
}

ValueView RowView::column(size_t i) const {
  if (IsNull(i)) {
    ValueView v;
    v.type_ = schema_->columns[i].type;
    v.null_ = true;
    return v;
  }
  return DecodeAt(OffsetOf(i), i);
}

void RowView::Materialize(Tuple* out) const {
  if (out->size() != ncols_) out->resize(ncols_);
  size_t pos = (ncols_ + 7) / 8;
  for (size_t i = 0; i < ncols_; ++i) {
    Value& slot = (*out)[i];
    if (IsNull(i)) {
      slot.SetNull();
      continue;
    }
    switch (schema_->columns[i].type) {
      case TypeId::kBoolean:
        slot.SetBool(row_[pos] != 0);
        pos += 1;
        break;
      case TypeId::kInteger: {
        slot.SetInt(xo::LoadFixedUnchecked<int64_t>(row_, pos));
        pos += 8;
        break;
      }
      case TypeId::kDouble: {
        slot.SetDouble(xo::LoadFixedUnchecked<double>(row_, pos));
        pos += 8;
        break;
      }
      case TypeId::kVarchar:
      case TypeId::kXadt: {
        uint64_t len = GetVarintUnchecked(row_, &pos);
        std::string_view payload = row_.substr(pos, static_cast<size_t>(len));
        if (schema_->columns[i].type == TypeId::kVarchar) {
          slot.SetVarchar(payload);
        } else {
          slot.SetXadt(payload);
        }
        pos += static_cast<size_t>(len);
        break;
      }
      case TypeId::kNull:
        slot.SetNull();
        break;
    }
  }
}

}  // namespace xorator::ordb
