#ifndef XORATOR_ORDB_ROW_CODEC_H_
#define XORATOR_ORDB_ROW_CODEC_H_

#include <cstdint>
#include <string_view>

#include "common/lifetime.h"
#include "common/result.h"
#include "ordb/tuple.h"

namespace xorator::ordb {

/// A decoded column of a `RowView`: the schema type, the null flag, and the
/// value — numerics inline, string/XADT payloads as a view into the encoded
/// row (zero copies). A `ValueView` borrows from the buffer its `RowView`
/// was parsed over; it must not outlive that buffer (statically checked
/// under Clang via the XO_GSL_POINTER / XO_LIFETIME_BOUND annotations,
/// DESIGN.md section 14).
class XO_GSL_POINTER(char) ValueView {
 public:
  ValueView() = default;

  /// The column's *declared* type (a null value keeps its column type).
  TypeId type() const { return type_; }
  bool is_null() const { return null_; }

  bool AsBool() const { return int_ != 0; }
  int64_t AsInt() const { return int_; }
  double AsDouble() const {
    return type_ == TypeId::kDouble ? double_ : static_cast<double>(int_);
  }
  /// VARCHAR text or raw XADT bytes, viewing the encoded row in place;
  /// empty for other types.
  std::string_view bytes() const XO_LIFETIME_BOUND { return bytes_; }

  /// Materializes an owning `Value` (this is where the string copy, if
  /// any, finally happens).
  Value ToValue() const;

 private:
  friend class RowView;

  TypeId type_ = TypeId::kNull;
  bool null_ = true;
  int64_t int_ = 0;
  double double_ = 0;
  std::string_view bytes_;
};

/// A validated, in-place view of one encoded row (the EncodeTuple wire
/// format: null bitmap, fixed-width numerics, varint length-prefixed
/// strings — DESIGN.md section 14). `Parse` checks the whole record up
/// front — truncated prefixes, overflowing lengths and trailing garbage
/// are all rejected — so accessors cannot fail and never copy: `column(i)`
/// decodes in place, and string payloads come back as views into the
/// original buffer.
///
/// A `RowView` borrows both the row bytes and the schema; neither may be
/// destroyed while the view (or any `ValueView` taken from it) is alive.
/// Under Clang the XO_LIFETIME_BOUND annotations on `Parse` make a view
/// that outlives either owner a compile error; the scan path therefore
/// parses each record into a buffer that lives for the whole iteration
/// (see SeqScanOp::Next).
class XO_GSL_POINTER(char) RowView {
 public:
  RowView() = default;

  /// Validates `row` against `schema` and returns an in-place view over
  /// it. The view borrows `schema` and `row`: both must outlive it.
  [[nodiscard]] static Result<RowView> Parse(
      const TableSchema& schema XO_LIFETIME_BOUND,
      std::string_view row XO_LIFETIME_BOUND);

  /// Number of columns (== the schema's).
  size_t columns() const { return ncols_; }

  /// Decodes column `i` (which must be < columns()) in place. The returned
  /// view borrows from the same buffers as this RowView.
  ValueView column(size_t i) const XO_LIFETIME_BOUND;

  /// The encoded bytes this view was parsed over.
  std::string_view raw() const XO_LIFETIME_BOUND { return row_; }

  /// Materializes every column into `*out`, reusing its existing Value
  /// slots (and their string capacity) in place — the steady-state scan
  /// loop allocates nothing once the tuple's strings have grown to the
  /// table's row sizes.
  void Materialize(Tuple* out) const;

 private:
  /// Column start offsets are cached for the first kInlineOffsets columns;
  /// wider schemas fall back to skipping forward from the last cached one.
  static constexpr size_t kInlineOffsets = 16;

  bool IsNull(size_t i) const {
    return (static_cast<uint8_t>(row_[i / 8]) >> (i % 8)) & 1;
  }
  /// Offset of column `i`'s payload (its would-be position if null).
  size_t OffsetOf(size_t i) const;
  /// Advances past (non-null) column `col`'s payload at `pos`.
  size_t Skip(size_t pos, size_t col) const;
  /// Decodes the (non-null) column `col` at byte offset `pos`.
  ValueView DecodeAt(size_t pos, size_t col) const XO_LIFETIME_BOUND;

  const TableSchema* schema_ = nullptr;
  std::string_view row_;
  size_t ncols_ = 0;
  uint32_t offsets_[kInlineOffsets] = {};
};

}  // namespace xorator::ordb

#endif  // XORATOR_ORDB_ROW_CODEC_H_
