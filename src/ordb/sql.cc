#include "ordb/sql.h"

#include <cctype>

#include "common/str_util.h"

namespace xorator::ordb::sql {

std::string AstExpr::ToString() const {
  switch (kind) {
    case Kind::kColumn:
      return name;
    case Kind::kLiteral:
      return literal.type() == TypeId::kVarchar ? "'" + literal.ToString() + "'"
                                                : literal.ToString();
    case Kind::kStar:
      return "*";
    case Kind::kCompare:
      return children[0]->ToString() + " " + std::string(CompareOpName(op)) +
             " " + children[1]->ToString();
    case Kind::kAnd:
      return "(" + children[0]->ToString() + " AND " +
             children[1]->ToString() + ")";
    case Kind::kOr:
      return "(" + children[0]->ToString() + " OR " + children[1]->ToString() +
             ")";
    case Kind::kNot:
      return "NOT (" + children[0]->ToString() + ")";
    case Kind::kLike:
      return children[0]->ToString() + " LIKE '" + pattern + "'";
    case Kind::kIsNull:
      return children[0]->ToString() + (negated ? " IS NOT NULL" : " IS NULL");
    case Kind::kFunc: {
      std::string out = name + "(";
      for (size_t i = 0; i < children.size(); ++i) {
        if (i > 0) out += ", ";
        out += children[i]->ToString();
      }
      return out + ")";
    }
  }
  return "?";
}

namespace {

enum class TokKind { kIdent, kString, kNumber, kPunct, kEnd };

struct Token {
  TokKind kind = TokKind::kEnd;
  std::string text;   // ident (original case) / punct
  std::string upper;  // ident upper-cased, for keyword matching
  int64_t number = 0;
  std::string str;  // string literal value
};

class Lexer {
 public:
  explicit Lexer(std::string_view input) : input_(input) {}

  Result<std::vector<Token>> Lex() {
    std::vector<Token> out;
    while (true) {
      SkipSpace();
      if (pos_ >= input_.size()) break;
      char c = input_[pos_];
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        size_t start = pos_;
        while (pos_ < input_.size() &&
               (std::isalnum(static_cast<unsigned char>(input_[pos_])) ||
                input_[pos_] == '_')) {
          ++pos_;
        }
        Token t;
        t.kind = TokKind::kIdent;
        t.text = std::string(input_.substr(start, pos_ - start));
        t.upper = ToUpper(t.text);
        out.push_back(std::move(t));
      } else if (std::isdigit(static_cast<unsigned char>(c)) ||
                 (c == '-' && pos_ + 1 < input_.size() &&
                  std::isdigit(static_cast<unsigned char>(input_[pos_ + 1])) &&
                  NumberMayFollow(out))) {
        size_t start = pos_;
        if (c == '-') ++pos_;
        while (pos_ < input_.size() &&
               std::isdigit(static_cast<unsigned char>(input_[pos_]))) {
          ++pos_;
        }
        Token t;
        t.kind = TokKind::kNumber;
        t.number = std::stoll(std::string(input_.substr(start, pos_ - start)));
        out.push_back(std::move(t));
      } else if (c == '\'') {
        ++pos_;
        std::string value;
        while (true) {
          if (pos_ >= input_.size()) {
            return Status::ParseError("unterminated string literal");
          }
          if (input_[pos_] == '\'') {
            if (pos_ + 1 < input_.size() && input_[pos_ + 1] == '\'') {
              value.push_back('\'');
              pos_ += 2;
              continue;
            }
            ++pos_;
            break;
          }
          value.push_back(input_[pos_++]);
        }
        Token t;
        t.kind = TokKind::kString;
        t.str = std::move(value);
        out.push_back(std::move(t));
      } else {
        Token t;
        t.kind = TokKind::kPunct;
        // Two-char operators.
        if (pos_ + 1 < input_.size()) {
          std::string two(input_.substr(pos_, 2));
          if (two == "<>" || two == "<=" || two == ">=" || two == "!=") {
            t.text = two == "!=" ? "<>" : two;
            pos_ += 2;
            out.push_back(std::move(t));
            continue;
          }
        }
        t.text = std::string(1, c);
        ++pos_;
        out.push_back(std::move(t));
      }
    }
    out.push_back(Token{});
    return out;
  }

 private:
  void SkipSpace() {
    while (pos_ < input_.size()) {
      if (std::isspace(static_cast<unsigned char>(input_[pos_]))) {
        ++pos_;
      } else if (input_.compare(pos_, 2, "--") == 0) {
        while (pos_ < input_.size() && input_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  // '-' starts a negative number only where a value may begin.
  static bool NumberMayFollow(const std::vector<Token>& out) {
    if (out.empty()) return true;
    const Token& last = out.back();
    if (last.kind == TokKind::kPunct &&
        (last.text == "(" || last.text == "," || last.text == "=" ||
         last.text == "<" || last.text == ">" || last.text == "<=" ||
         last.text == ">=" || last.text == "<>")) {
      return true;
    }
    return false;
  }

  std::string_view input_;
  size_t pos_ = 0;
};

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Statement> ParseStatement() {
    Statement stmt;
    if (ConsumeKeyword("EXPLAIN")) {
      stmt.kind = Statement::Kind::kExplain;
      XO_ASSIGN_OR_RETURN(stmt.select, ParseSelect());
    } else if (PeekKeyword("SELECT")) {
      stmt.kind = Statement::Kind::kSelect;
      XO_ASSIGN_OR_RETURN(stmt.select, ParseSelect());
    } else if (ConsumeKeyword("CREATE")) {
      if (ConsumeKeyword("TABLE")) {
        stmt.kind = Statement::Kind::kCreateTable;
        XO_ASSIGN_OR_RETURN(stmt.create_table, ParseCreateTable());
      } else if (ConsumeKeyword("INDEX")) {
        stmt.kind = Statement::Kind::kCreateIndex;
        XO_ASSIGN_OR_RETURN(stmt.create_index, ParseCreateIndex());
      } else {
        return Error("expected TABLE or INDEX after CREATE");
      }
    } else if (ConsumeKeyword("INSERT")) {
      stmt.kind = Statement::Kind::kInsert;
      XO_ASSIGN_OR_RETURN(stmt.insert, ParseInsert());
    } else if (ConsumeKeyword("DELETE")) {
      stmt.kind = Statement::Kind::kDelete;
      if (!ConsumeKeyword("FROM")) return Error("expected FROM after DELETE");
      XO_ASSIGN_OR_RETURN(stmt.del.table, ExpectIdent("table name"));
      if (ConsumeKeyword("WHERE")) {
        XO_ASSIGN_OR_RETURN(stmt.del.where, ParseExpr());
      }
    } else if (ConsumeKeyword("PRAGMA")) {
      stmt.kind = Statement::Kind::kPragma;
      XO_ASSIGN_OR_RETURN(stmt.pragma.name, ExpectIdent("pragma name"));
      if (ConsumePunct("(")) {
        if (Peek().kind != TokKind::kNumber) return Error("expected number");
        stmt.pragma.arg = Advance().number;
        stmt.pragma.has_arg = true;
        if (!ConsumePunct(")")) return Error("expected ')'");
      }
    } else {
      return Error("expected SELECT, CREATE, INSERT, DELETE, PRAGMA or EXPLAIN");
    }
    ConsumePunct(";");
    if (Peek().kind != TokKind::kEnd) {
      return Error("trailing tokens after statement");
    }
    return stmt;
  }

 private:
  const Token& Peek(size_t off = 0) const {
    size_t i = pos_ + off;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_++]; }

  bool PeekKeyword(std::string_view kw) const {
    return Peek().kind == TokKind::kIdent && Peek().upper == kw;
  }
  bool ConsumeKeyword(std::string_view kw) {
    if (PeekKeyword(kw)) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool PeekPunct(std::string_view p) const {
    return Peek().kind == TokKind::kPunct && Peek().text == p;
  }
  bool ConsumePunct(std::string_view p) {
    if (PeekPunct(p)) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status Error(std::string msg) const {
    std::string near = Peek().kind == TokKind::kEnd ? "<end>" : Peek().text;
    if (Peek().kind == TokKind::kString) near = "'" + Peek().str + "'";
    if (Peek().kind == TokKind::kNumber) near = std::to_string(Peek().number);
    return Status::ParseError(msg + " (near \"" + near + "\")");
  }

  Result<std::string> ExpectIdent(std::string_view what) {
    if (Peek().kind != TokKind::kIdent) {
      return Error("expected " + std::string(what));
    }
    return Advance().text;
  }

  static bool IsReserved(const std::string& upper) {
    static const char* kReserved[] = {
        "SELECT", "FROM",  "WHERE", "GROUP",  "ORDER", "BY",    "AND",
        "OR",     "NOT",   "LIKE",  "AS",     "TABLE", "ASC",   "DESC",
        "LIMIT",  "HAVING", "DISTINCT", "INSERT", "INTO", "VALUES",
        "CREATE", "INDEX", "ON", "EXPLAIN", "IS", "NULL", "DELETE",
        "FROM"};
    for (const char* k : kReserved) {
      if (upper == k) return true;
    }
    return false;
  }

  Result<SelectStmt> ParseSelect() {
    SelectStmt stmt;
    if (!ConsumeKeyword("SELECT")) return Error("expected SELECT");
    stmt.distinct = ConsumeKeyword("DISTINCT");
    // Select list.
    while (true) {
      SelectItem item;
      XO_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      if (ConsumeKeyword("AS")) {
        XO_ASSIGN_OR_RETURN(item.alias, ExpectIdent("alias"));
      } else if (Peek().kind == TokKind::kIdent && !IsReserved(Peek().upper)) {
        item.alias = Advance().text;
      }
      stmt.items.push_back(std::move(item));
      if (!ConsumePunct(",")) break;
    }
    if (!ConsumeKeyword("FROM")) return Error("expected FROM");
    while (true) {
      TableRef ref;
      if (ConsumeKeyword("TABLE")) {
        if (!ConsumePunct("(")) return Error("expected '(' after TABLE");
        ref.is_function = true;
        XO_ASSIGN_OR_RETURN(ref.function_name, ExpectIdent("function name"));
        if (!ConsumePunct("(")) return Error("expected '(' in table function");
        if (!PeekPunct(")")) {
          while (true) {
            XO_ASSIGN_OR_RETURN(auto arg, ParseExpr());
            ref.function_args.push_back(std::move(arg));
            if (!ConsumePunct(",")) break;
          }
        }
        if (!ConsumePunct(")")) return Error("expected ')' after arguments");
        if (!ConsumePunct(")")) return Error("expected ')' after TABLE(...)");
        if (Peek().kind == TokKind::kIdent && !IsReserved(Peek().upper)) {
          ref.alias = Advance().text;
        } else {
          return Error("table function requires an alias");
        }
      } else {
        XO_ASSIGN_OR_RETURN(ref.table, ExpectIdent("table name"));
        ref.alias = ref.table;
        if (ConsumeKeyword("AS")) {
          XO_ASSIGN_OR_RETURN(ref.alias, ExpectIdent("alias"));
        } else if (Peek().kind == TokKind::kIdent &&
                   !IsReserved(Peek().upper)) {
          ref.alias = Advance().text;
        }
      }
      stmt.from.push_back(std::move(ref));
      if (!ConsumePunct(",")) break;
    }
    if (ConsumeKeyword("WHERE")) {
      XO_ASSIGN_OR_RETURN(stmt.where, ParseExpr());
    }
    if (ConsumeKeyword("GROUP")) {
      if (!ConsumeKeyword("BY")) return Error("expected BY after GROUP");
      while (true) {
        XO_ASSIGN_OR_RETURN(auto e, ParseExpr());
        stmt.group_by.push_back(std::move(e));
        if (!ConsumePunct(",")) break;
      }
    }
    if (ConsumeKeyword("ORDER")) {
      if (!ConsumeKeyword("BY")) return Error("expected BY after ORDER");
      while (true) {
        OrderItem item;
        XO_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (ConsumeKeyword("DESC")) {
          item.ascending = false;
        } else {
          ConsumeKeyword("ASC");
        }
        stmt.order_by.push_back(std::move(item));
        if (!ConsumePunct(",")) break;
      }
    }
    if (ConsumeKeyword("LIMIT")) {
      if (Peek().kind != TokKind::kNumber) return Error("expected number");
      stmt.limit = Advance().number;
    }
    return stmt;
  }

  // Precedence: OR < AND < NOT < comparison/LIKE < primary.
  Result<AstExprPtr> ParseExpr() { return ParseOr(); }

  Result<AstExprPtr> ParseOr() {
    XO_ASSIGN_OR_RETURN(auto lhs, ParseAnd());
    while (ConsumeKeyword("OR")) {
      XO_ASSIGN_OR_RETURN(auto rhs, ParseAnd());
      auto node = std::make_unique<AstExpr>();
      node->kind = AstExpr::Kind::kOr;
      node->children.push_back(std::move(lhs));
      node->children.push_back(std::move(rhs));
      lhs = std::move(node);
    }
    return lhs;
  }

  Result<AstExprPtr> ParseAnd() {
    XO_ASSIGN_OR_RETURN(auto lhs, ParseNot());
    while (ConsumeKeyword("AND")) {
      XO_ASSIGN_OR_RETURN(auto rhs, ParseNot());
      auto node = std::make_unique<AstExpr>();
      node->kind = AstExpr::Kind::kAnd;
      node->children.push_back(std::move(lhs));
      node->children.push_back(std::move(rhs));
      lhs = std::move(node);
    }
    return lhs;
  }

  Result<AstExprPtr> ParseNot() {
    if (ConsumeKeyword("NOT")) {
      XO_ASSIGN_OR_RETURN(auto child, ParseNot());
      auto node = std::make_unique<AstExpr>();
      node->kind = AstExpr::Kind::kNot;
      node->children.push_back(std::move(child));
      return node;
    }
    return ParseComparison();
  }

  Result<AstExprPtr> ParseComparison() {
    XO_ASSIGN_OR_RETURN(auto lhs, ParsePrimary());
    if (ConsumeKeyword("IS")) {
      bool negated = ConsumeKeyword("NOT");
      if (!ConsumeKeyword("NULL")) return Error("expected NULL after IS");
      auto node = std::make_unique<AstExpr>();
      node->kind = AstExpr::Kind::kIsNull;
      node->negated = negated;
      node->children.push_back(std::move(lhs));
      return node;
    }
    if (ConsumeKeyword("LIKE")) {
      if (Peek().kind != TokKind::kString) {
        return Error("LIKE requires a string literal pattern");
      }
      auto node = std::make_unique<AstExpr>();
      node->kind = AstExpr::Kind::kLike;
      node->pattern = Advance().str;
      node->children.push_back(std::move(lhs));
      return node;
    }
    static const std::pair<const char*, CompareOp> kOps[] = {
        {"=", CompareOp::kEq},  {"<>", CompareOp::kNe}, {"<=", CompareOp::kLe},
        {">=", CompareOp::kGe}, {"<", CompareOp::kLt},  {">", CompareOp::kGt}};
    for (const auto& [text, op] : kOps) {
      if (ConsumePunct(text)) {
        XO_ASSIGN_OR_RETURN(auto rhs, ParsePrimary());
        auto node = std::make_unique<AstExpr>();
        node->kind = AstExpr::Kind::kCompare;
        node->op = op;
        node->children.push_back(std::move(lhs));
        node->children.push_back(std::move(rhs));
        return node;
      }
    }
    return lhs;
  }

  Result<AstExprPtr> ParsePrimary() {
    auto node = std::make_unique<AstExpr>();
    if (ConsumePunct("(")) {
      XO_ASSIGN_OR_RETURN(auto inner, ParseExpr());
      if (!ConsumePunct(")")) return Error("expected ')'");
      return inner;
    }
    if (Peek().kind == TokKind::kString) {
      node->kind = AstExpr::Kind::kLiteral;
      node->literal = Value::Varchar(Advance().str);
      return node;
    }
    if (Peek().kind == TokKind::kNumber) {
      node->kind = AstExpr::Kind::kLiteral;
      node->literal = Value::Int(Advance().number);
      return node;
    }
    if (PeekPunct("*")) {
      Advance();
      node->kind = AstExpr::Kind::kStar;
      return node;
    }
    if (Peek().kind != TokKind::kIdent) return Error("expected expression");
    std::string first = Advance().text;
    if (PeekPunct("(")) {
      // Function call.
      Advance();
      node->kind = AstExpr::Kind::kFunc;
      node->name = first;
      if (!PeekPunct(")")) {
        while (true) {
          XO_ASSIGN_OR_RETURN(auto arg, ParseExpr());
          node->children.push_back(std::move(arg));
          if (!ConsumePunct(",")) break;
        }
      }
      if (!ConsumePunct(")")) return Error("expected ')' after arguments");
      return node;
    }
    node->kind = AstExpr::Kind::kColumn;
    node->name = first;
    if (ConsumePunct(".")) {
      XO_ASSIGN_OR_RETURN(std::string col, ExpectIdent("column name"));
      node->name = first + "." + col;
    }
    return node;
  }

  Result<CreateTableStmt> ParseCreateTable() {
    CreateTableStmt stmt;
    XO_ASSIGN_OR_RETURN(stmt.name, ExpectIdent("table name"));
    if (!ConsumePunct("(")) return Error("expected '('");
    while (true) {
      std::string col;
      XO_ASSIGN_OR_RETURN(col, ExpectIdent("column name"));
      XO_ASSIGN_OR_RETURN(std::string type_name, ExpectIdent("type"));
      std::string upper = ToUpper(type_name);
      TypeId type;
      if (upper == "INTEGER" || upper == "INT" || upper == "BIGINT") {
        type = TypeId::kInteger;
      } else if (upper == "VARCHAR" || upper == "TEXT" || upper == "STRING" ||
                 upper == "CHAR" || upper == "CLOB") {
        type = TypeId::kVarchar;
      } else if (upper == "XADT" || upper == "XML") {
        type = TypeId::kXadt;
      } else if (upper == "DOUBLE" || upper == "FLOAT" || upper == "REAL") {
        type = TypeId::kDouble;
      } else if (upper == "BOOLEAN" || upper == "BOOL") {
        type = TypeId::kBoolean;
      } else {
        return Error("unknown type '" + type_name + "'");
      }
      // Optional length/precision: VARCHAR(80).
      if (ConsumePunct("(")) {
        while (!ConsumePunct(")")) {
          if (Peek().kind == TokKind::kEnd) return Error("unterminated type");
          Advance();
        }
      }
      // Optional PRIMARY KEY / NOT NULL noise words.
      while (Peek().kind == TokKind::kIdent &&
             (Peek().upper == "PRIMARY" || Peek().upper == "KEY" ||
              Peek().upper == "NOT" || Peek().upper == "NULL")) {
        Advance();
      }
      stmt.columns.emplace_back(col, type);
      if (!ConsumePunct(",")) break;
    }
    if (!ConsumePunct(")")) return Error("expected ')'");
    return stmt;
  }

  Result<CreateIndexStmt> ParseCreateIndex() {
    CreateIndexStmt stmt;
    XO_ASSIGN_OR_RETURN(stmt.index_name, ExpectIdent("index name"));
    if (!ConsumeKeyword("ON")) return Error("expected ON");
    XO_ASSIGN_OR_RETURN(stmt.table, ExpectIdent("table name"));
    if (!ConsumePunct("(")) return Error("expected '('");
    XO_ASSIGN_OR_RETURN(stmt.column, ExpectIdent("column name"));
    if (!ConsumePunct(")")) return Error("expected ')'");
    return stmt;
  }

  Result<InsertStmt> ParseInsert() {
    InsertStmt stmt;
    if (!ConsumeKeyword("INTO")) return Error("expected INTO");
    XO_ASSIGN_OR_RETURN(stmt.table, ExpectIdent("table name"));
    if (!ConsumeKeyword("VALUES")) return Error("expected VALUES");
    while (true) {
      if (!ConsumePunct("(")) return Error("expected '('");
      std::vector<Value> row;
      while (true) {
        if (Peek().kind == TokKind::kString) {
          row.push_back(Value::Varchar(Advance().str));
        } else if (Peek().kind == TokKind::kNumber) {
          row.push_back(Value::Int(Advance().number));
        } else if (ConsumeKeyword("NULL")) {
          row.push_back(Value::Null());
        } else {
          return Error("expected literal in VALUES");
        }
        if (!ConsumePunct(",")) break;
      }
      if (!ConsumePunct(")")) return Error("expected ')'");
      stmt.rows.push_back(std::move(row));
      if (!ConsumePunct(",")) break;
    }
    return stmt;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<Statement> ParseSql(std::string_view input) {
  Lexer lexer(input);
  XO_ASSIGN_OR_RETURN(auto tokens, lexer.Lex());
  Parser parser(std::move(tokens));
  return parser.ParseStatement();
}

StatementClass ClassifyStatement(std::string_view input) {
  size_t i = 0;
  while (i < input.size() &&
         std::isspace(static_cast<unsigned char>(input[i]))) {
    ++i;
  }
  size_t j = i;
  while (j < input.size() &&
         std::isalpha(static_cast<unsigned char>(input[j]))) {
    ++j;
  }
  const std::string_view keyword = input.substr(i, j - i);
  if (EqualsIgnoreCase(keyword, "SELECT") ||
      EqualsIgnoreCase(keyword, "EXPLAIN")) {
    return StatementClass::kRead;
  }
  if (EqualsIgnoreCase(keyword, "CREATE") ||
      EqualsIgnoreCase(keyword, "INSERT") ||
      EqualsIgnoreCase(keyword, "DELETE")) {
    return StatementClass::kMutation;
  }
  if (EqualsIgnoreCase(keyword, "PRAGMA")) {
    return StatementClass::kPragma;
  }
  return StatementClass::kUnknown;
}

}  // namespace xorator::ordb::sql
