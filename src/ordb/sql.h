#ifndef XORATOR_ORDB_SQL_H_
#define XORATOR_ORDB_SQL_H_

#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "common/result.h"
#include "ordb/expr.h"
#include "ordb/value.h"

namespace xorator::ordb::sql {

/// Unbound expression AST produced by the parser.
struct AstExpr {
  enum class Kind {
    kColumn,   // name = "col" or "alias.col"
    kLiteral,  // value
    kStar,     // "*" (only inside COUNT(*))
    kCompare,  // op, children[0/1]
    kAnd,
    kOr,
    kNot,
    kLike,    // children[0] LIKE str
    kFunc,    // name(children...)
    kIsNull,  // children[0] IS [NOT] NULL (negated -> IS NOT NULL)
  };

  Kind kind = Kind::kColumn;
  std::string name;
  Value literal;
  std::string pattern;  // LIKE pattern
  bool negated = false;  // for kIsNull
  CompareOp op = CompareOp::kEq;
  std::vector<std::unique_ptr<AstExpr>> children;

  std::string ToString() const;
};

using AstExprPtr = std::unique_ptr<AstExpr>;

/// One FROM entry: a table (with optional alias) or a table-function call
/// `table(fn(args)) alias`.
struct TableRef {
  std::string table;
  std::string alias;
  bool is_function = false;
  std::string function_name;
  std::vector<AstExprPtr> function_args;
};

/// One expression in a SELECT list.
struct SelectItem {
  AstExprPtr expr;
  std::string alias;  // from AS, may be empty
};

/// One ORDER BY key.
struct OrderItem {
  AstExprPtr expr;
  bool ascending = true;
};

/// A parsed SELECT (or the SELECT under an EXPLAIN).
struct SelectStmt {
  bool distinct = false;
  std::vector<SelectItem> items;
  std::vector<TableRef> from;
  AstExprPtr where;  // may be null
  std::vector<AstExprPtr> group_by;
  std::vector<OrderItem> order_by;
  int64_t limit = -1;  // -1: none
};

/// A parsed CREATE TABLE.
struct CreateTableStmt {
  std::string name;
  std::vector<std::pair<std::string, TypeId>> columns;
};

/// A parsed CREATE INDEX.
struct CreateIndexStmt {
  std::string index_name;
  std::string table;
  std::string column;
};

/// A parsed INSERT ... VALUES.
struct InsertStmt {
  std::string table;
  std::vector<std::vector<Value>> rows;  // literal rows
};

/// A parsed DELETE.
struct DeleteStmt {
  std::string table;
  AstExprPtr where;  // may be null (delete all rows)
};

/// A parsed PRAGMA: an engine maintenance/introspection command
/// (`PRAGMA health`, `PRAGMA scrub`, `PRAGMA scrub(256)`).
struct PragmaStmt {
  std::string name;
  int64_t arg = -1;
  bool has_arg = false;
};

/// A parsed statement. EXPLAIN wraps a SELECT.
struct Statement {
  enum class Kind {
    kSelect,
    kCreateTable,
    kCreateIndex,
    kInsert,
    kDelete,
    kExplain,
    kPragma,
  };
  Kind kind = Kind::kSelect;
  SelectStmt select;  // kSelect / kExplain
  CreateTableStmt create_table;
  CreateIndexStmt create_index;
  InsertStmt insert;
  DeleteStmt del;
  PragmaStmt pragma;
};

/// Coarse statement class, decidable from the leading keyword without a
/// full parse. The network front end (src/server) uses this at admission
/// time to shed mutations fast while the engine is latched read-only —
/// before the statement spends a queue slot or a worker thread
/// (DESIGN.md section 17).
enum class StatementClass {
  /// SELECT / EXPLAIN: takes the statement lock shared, never mutates.
  kRead,
  /// CREATE / INSERT / DELETE: requires a writable engine.
  kMutation,
  /// PRAGMA: introspection/maintenance; runs on a read-only engine.
  kPragma,
  /// Unrecognized leading keyword — let the parser produce the real error.
  kUnknown,
};

/// Classifies `input` by its first keyword (case-insensitive, leading
/// whitespace skipped). Never fails: garbage is kUnknown, and the caller
/// falls through to ParseSql for the authoritative diagnosis. The
/// classification is intentionally conservative — a kRead answer
/// guarantees the statement cannot mutate, because the parser maps each
/// leading keyword to exactly one statement kind.
[[nodiscard]] StatementClass ClassifyStatement(std::string_view input);

/// Parses one SQL statement (optionally ';'-terminated). Supported grammar:
///
///   SELECT [DISTINCT] item {, item}
///   FROM table [alias] {, table [alias] | , TABLE(fn(args)) alias}
///   [WHERE conjunctive/disjunctive predicate]
///   [GROUP BY column {, column}]
///   [ORDER BY expr [ASC|DESC] {, ...}]
///   [LIMIT n]
///
///   CREATE TABLE t (col TYPE, ...)
///   CREATE INDEX i ON t (col)
///   INSERT INTO t VALUES (lit, ...), (...)
///   DELETE FROM t [WHERE predicate]
///   EXPLAIN SELECT ...
///   PRAGMA name [( n )]
[[nodiscard]] Result<Statement> ParseSql(std::string_view input);

}  // namespace xorator::ordb::sql

#endif  // XORATOR_ORDB_SQL_H_
