#include "ordb/tuple.h"

#include "common/varint.h"

namespace xorator::ordb {

int TableSchema::ColumnIndex(std::string_view name) const {
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

void EncodeTuple(const TableSchema& schema, const Tuple& tuple,
                 std::string* out) {
  size_t n = schema.columns.size();
  size_t bitmap_bytes = (n + 7) / 8;
  size_t bitmap_at = out->size();
  out->append(bitmap_bytes, '\0');
  for (size_t i = 0; i < n; ++i) {
    const Value& v = i < tuple.size() ? tuple[i] : Value::Null();
    if (v.is_null()) {
      (*out)[bitmap_at + i / 8] |= static_cast<char>(1 << (i % 8));
      continue;
    }
    switch (schema.columns[i].type) {
      case TypeId::kBoolean:
        out->push_back(v.AsBool() ? 1 : 0);
        break;
      case TypeId::kInteger: {
        // Integers are stored fixed-width (like a real engine's BIGINT
        // column); the paper's storage-size comparison depends on the
        // relational baseline paying normal per-column costs.
        int64_t raw = v.AsInt();
        out->append(reinterpret_cast<const char*>(&raw), sizeof(raw));
        break;
      }
      case TypeId::kDouble: {
        double d = v.AsDouble();
        out->append(reinterpret_cast<const char*>(&d), sizeof(d));
        break;
      }
      case TypeId::kVarchar:
      case TypeId::kXadt:
        PutVarint(out, v.AsString().size());
        out->append(v.AsString());
        break;
      case TypeId::kNull:
        break;
    }
  }
}

Result<Tuple> DecodeTuple(const TableSchema& schema, std::string_view bytes) {
  size_t n = schema.columns.size();
  size_t bitmap_bytes = (n + 7) / 8;
  if (bytes.size() < bitmap_bytes) {
    return Status::Internal("tuple shorter than its null bitmap");
  }
  Tuple tuple;
  tuple.reserve(n);
  size_t pos = bitmap_bytes;
  for (size_t i = 0; i < n; ++i) {
    bool null =
        (static_cast<uint8_t>(bytes[i / 8]) >> (i % 8)) & 1;
    if (null) {
      tuple.push_back(Value::Null());
      continue;
    }
    switch (schema.columns[i].type) {
      case TypeId::kBoolean: {
        if (pos + 1 > bytes.size()) {
          return Status::Internal("truncated boolean in tuple");
        }
        tuple.push_back(Value::Bool(bytes[pos] != 0));
        pos += 1;
        break;
      }
      case TypeId::kInteger: {
        if (pos + 8 > bytes.size()) {
          return Status::Internal("truncated integer in tuple");
        }
        int64_t raw;
        __builtin_memcpy(&raw, bytes.data() + pos, sizeof(raw));
        pos += 8;
        tuple.push_back(Value::Int(raw));
        break;
      }
      case TypeId::kDouble: {
        if (pos + 8 > bytes.size()) {
          return Status::Internal("truncated double in tuple");
        }
        double d;
        __builtin_memcpy(&d, bytes.data() + pos, sizeof(d));
        pos += 8;
        tuple.push_back(Value::Double(d));
        break;
      }
      case TypeId::kVarchar:
      case TypeId::kXadt: {
        XO_ASSIGN_OR_RETURN(uint64_t len, GetVarint(bytes, &pos));
        if (pos + len > bytes.size()) {
          return Status::Internal("truncated string in tuple");
        }
        std::string s(bytes.substr(pos, len));
        pos += len;
        tuple.push_back(schema.columns[i].type == TypeId::kVarchar
                            ? Value::Varchar(std::move(s))
                            : Value::Xadt(std::move(s)));
        break;
      }
      case TypeId::kNull:
        tuple.push_back(Value::Null());
        break;
    }
  }
  return tuple;
}

size_t TupleFootprint(const Tuple& tuple) {
  size_t bytes = sizeof(Tuple);
  for (const Value& v : tuple) {
    bytes += sizeof(Value) + v.AsString().capacity();
  }
  return bytes;
}

}  // namespace xorator::ordb
