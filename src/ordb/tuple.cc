#include "ordb/tuple.h"

#include "common/span.h"
#include "common/varint.h"
#include "ordb/row_codec.h"

namespace xorator::ordb {

int TableSchema::ColumnIndex(std::string_view name) const {
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

void EncodeTuple(const TableSchema& schema, const Tuple& tuple,
                 std::string* out) {
  size_t n = schema.columns.size();
  size_t bitmap_bytes = (n + 7) / 8;
  size_t bitmap_at = out->size();
  out->append(bitmap_bytes, '\0');
  for (size_t i = 0; i < n; ++i) {
    const Value& v = i < tuple.size() ? tuple[i] : Value::Null();
    if (v.is_null()) {
      (*out)[bitmap_at + i / 8] |= static_cast<char>(1 << (i % 8));
      continue;
    }
    switch (schema.columns[i].type) {
      case TypeId::kBoolean:
        out->push_back(v.AsBool() ? 1 : 0);
        break;
      case TypeId::kInteger: {
        // Integers are stored fixed-width (like a real engine's BIGINT
        // column); the paper's storage-size comparison depends on the
        // relational baseline paying normal per-column costs.
        xo::AppendFixed(out, v.AsInt());
        break;
      }
      case TypeId::kDouble: {
        xo::AppendFixed(out, v.AsDouble());
        break;
      }
      case TypeId::kVarchar:
      case TypeId::kXadt:
        PutVarint(out, v.AsString().size());
        out->append(v.AsString());
        break;
      case TypeId::kNull:
        break;
    }
  }
}

Result<Tuple> DecodeTuple(const TableSchema& schema, std::string_view bytes) {
  // One validating pass, then an in-place materialization — the string
  // copies happen once, straight from the encoded record into the tuple's
  // Value slots (row_codec.h; DESIGN.md section 14). Callers that can keep
  // the record buffer alive should parse a RowView themselves and skip the
  // materialization entirely.
  XO_ASSIGN_OR_RETURN(RowView row, RowView::Parse(schema, bytes));
  Tuple tuple;
  row.Materialize(&tuple);
  return tuple;
}

size_t TupleFootprint(const Tuple& tuple) {
  size_t bytes = sizeof(Tuple);
  for (const Value& v : tuple) {
    bytes += sizeof(Value) + v.AsString().capacity();
  }
  return bytes;
}

}  // namespace xorator::ordb
