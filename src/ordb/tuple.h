#ifndef XORATOR_ORDB_TUPLE_H_
#define XORATOR_ORDB_TUPLE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "ordb/value.h"

namespace xorator::ordb {

/// A row: one `Value` per column.
using Tuple = std::vector<Value>;

/// Declared column of a stored table.
struct ColumnDef {
  std::string name;
  TypeId type = TypeId::kVarchar;
};

/// Declared schema of a stored table.
struct TableSchema {
  std::vector<ColumnDef> columns;

  int ColumnIndex(std::string_view name) const;
  size_t size() const { return columns.size(); }
};

/// Serializes `tuple` (which must match `schema`) into `*out`: a null
/// bitmap, then fixed 8-byte integers/doubles, 1-byte booleans, and varint
/// length-prefixed bytes for strings/XADT (the RowView wire format,
/// row_codec.h).
void EncodeTuple(const TableSchema& schema, const Tuple& tuple,
                 std::string* out);

/// Decodes a tuple previously produced by EncodeTuple into owning Values.
/// Strict: malformed records (truncated prefixes, overflowing lengths,
/// trailing bytes) are rejected. Zero-copy readers should use
/// RowView::Parse (row_codec.h) directly instead.
[[nodiscard]] Result<Tuple> DecodeTuple(const TableSchema& schema, std::string_view bytes);

/// Approximate in-memory footprint, used for sort-heap accounting.
size_t TupleFootprint(const Tuple& tuple);

}  // namespace xorator::ordb

#endif  // XORATOR_ORDB_TUPLE_H_
