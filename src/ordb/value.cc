#include "ordb/value.h"

#include <bit>

#include "common/safe_math.h"
#include "common/str_util.h"

namespace xorator::ordb {

std::string_view TypeName(TypeId t) {
  switch (t) {
    case TypeId::kNull:
      return "NULL";
    case TypeId::kBoolean:
      return "BOOLEAN";
    case TypeId::kInteger:
      return "INTEGER";
    case TypeId::kDouble:
      return "DOUBLE";
    case TypeId::kVarchar:
      return "VARCHAR";
    case TypeId::kXadt:
      return "XADT";
  }
  return "?";
}

int Value::Compare(const Value& other) const {
  if (is_null() || other.is_null()) {
    if (is_null() && other.is_null()) return 0;
    return is_null() ? -1 : 1;
  }
  auto numeric = [](TypeId t) {
    return t == TypeId::kInteger || t == TypeId::kDouble ||
           t == TypeId::kBoolean;
  };
  if (numeric(type_) && numeric(other.type_)) {
    if (type_ == TypeId::kInteger && other.type_ == TypeId::kInteger) {
      return int_ < other.int_ ? -1 : (int_ > other.int_ ? 1 : 0);
    }
    double a = AsDouble();
    double b = other.AsDouble();
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  // Strings and XADT payloads compare bytewise.
  return str_.compare(other.str_) < 0 ? -1 : (str_ == other.str_ ? 0 : 1);
}

uint64_t Value::Hash() const {
  switch (type_) {
    case TypeId::kNull:
      return 0x9e3779b97f4a7c15ULL;
    case TypeId::kBoolean:
    case TypeId::kInteger:
      return xo::WrapMul(static_cast<uint64_t>(int_), 0x9e3779b97f4a7c15ULL);
    case TypeId::kDouble: {
      // Hash doubles through their integer value when exact so that
      // 1 == 1.0 hashes consistently.
      auto as_int = static_cast<int64_t>(double_);
      if (static_cast<double>(as_int) == double_) {
        return xo::WrapMul(static_cast<uint64_t>(as_int),
                           0x9e3779b97f4a7c15ULL);
      }
      return xo::WrapMul(std::bit_cast<uint64_t>(double_),
                         0x9e3779b97f4a7c15ULL);
    }
    case TypeId::kVarchar:
    case TypeId::kXadt:
      return Hash64(str_);
  }
  return 0;
}

std::string Value::ToString() const {
  switch (type_) {
    case TypeId::kNull:
      return "NULL";
    case TypeId::kBoolean:
      return int_ ? "TRUE" : "FALSE";
    case TypeId::kInteger:
      return std::to_string(int_);
    case TypeId::kDouble:
      return std::to_string(double_);
    case TypeId::kVarchar:
      return str_;
    case TypeId::kXadt:
      return "[XADT " + std::to_string(str_.size()) + " bytes]";
  }
  return "?";
}

}  // namespace xorator::ordb
