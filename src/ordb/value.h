#ifndef XORATOR_ORDB_VALUE_H_
#define XORATOR_ORDB_VALUE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"

namespace xorator::ordb {

/// Runtime type of a `Value`.
enum class TypeId : uint8_t {
  kNull = 0,
  kBoolean,
  kInteger,  // 64-bit signed
  kDouble,
  kVarchar,
  kXadt,  // encoded XADT bytes (see xadt/xadt.h)
};

std::string_view TypeName(TypeId t);

/// A dynamically-typed SQL value. Strings and XADT payloads share the string
/// storage; nulls are typed `kNull`.
class Value {
 public:
  Value() : type_(TypeId::kNull) {}

  static Value Null() { return Value(); }
  static Value Bool(bool b) {
    Value v;
    v.type_ = TypeId::kBoolean;
    v.int_ = b ? 1 : 0;
    return v;
  }
  static Value Int(int64_t i) {
    Value v;
    v.type_ = TypeId::kInteger;
    v.int_ = i;
    return v;
  }
  static Value Double(double d) {
    Value v;
    v.type_ = TypeId::kDouble;
    v.double_ = d;
    return v;
  }
  static Value Varchar(std::string s) {
    Value v;
    v.type_ = TypeId::kVarchar;
    v.str_ = std::move(s);
    return v;
  }
  static Value Xadt(std::string bytes) {
    Value v;
    v.type_ = TypeId::kXadt;
    v.str_ = std::move(bytes);
    return v;
  }

  TypeId type() const { return type_; }
  bool is_null() const { return type_ == TypeId::kNull; }

  bool AsBool() const { return int_ != 0; }
  int64_t AsInt() const { return int_; }
  double AsDouble() const {
    return type_ == TypeId::kDouble ? double_ : static_cast<double>(int_);
  }
  /// VARCHAR text or raw XADT bytes.
  const std::string& AsString() const { return str_; }
  std::string&& TakeString() { return std::move(str_); }

  /// Three-way comparison; requires comparable types (numeric/numeric or
  /// same type). Nulls compare less than everything (used only for sorting).
  int Compare(const Value& other) const;
  bool Equals(const Value& other) const { return Compare(other) == 0; }

  /// Hash consistent with Equals for join/group keys.
  uint64_t Hash() const;

  /// Display rendering ("NULL", integers, text; XADT as a size tag —
  /// callers that want XML should decode via xadt::ToXmlString).
  std::string ToString() const;

 private:
  TypeId type_;
  int64_t int_ = 0;
  double double_ = 0;
  std::string str_;
};

}  // namespace xorator::ordb

#endif  // XORATOR_ORDB_VALUE_H_
