#ifndef XORATOR_ORDB_VALUE_H_
#define XORATOR_ORDB_VALUE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/lifetime.h"
#include "common/result.h"

namespace xorator::ordb {

/// Runtime type of a `Value`.
enum class TypeId : uint8_t {
  kNull = 0,
  kBoolean,
  kInteger,  // 64-bit signed
  kDouble,
  kVarchar,
  kXadt,  // encoded XADT bytes (see xadt/xadt.h)
};

std::string_view TypeName(TypeId t);

/// A dynamically-typed SQL value. Strings and XADT payloads share the string
/// storage; nulls are typed `kNull`.
class Value {
 public:
  Value() : type_(TypeId::kNull) {}

  static Value Null() { return Value(); }
  static Value Bool(bool b) {
    Value v;
    v.type_ = TypeId::kBoolean;
    v.int_ = b ? 1 : 0;
    return v;
  }
  static Value Int(int64_t i) {
    Value v;
    v.type_ = TypeId::kInteger;
    v.int_ = i;
    return v;
  }
  static Value Double(double d) {
    Value v;
    v.type_ = TypeId::kDouble;
    v.double_ = d;
    return v;
  }
  static Value Varchar(std::string s) {
    Value v;
    v.type_ = TypeId::kVarchar;
    v.str_ = std::move(s);
    return v;
  }
  static Value Xadt(std::string bytes) {
    Value v;
    v.type_ = TypeId::kXadt;
    v.str_ = std::move(bytes);
    return v;
  }

  // In-place re-assignment, used by RowView::Materialize (row_codec.h) so a
  // scan loop can refill the same Tuple row after row: the string setters
  // assign into str_, reusing its capacity, so the steady state allocates
  // nothing. SetNull() clears (but keeps) the string storage so a stale
  // payload can never leak through AsString().
  void SetNull() {
    type_ = TypeId::kNull;
    int_ = 0;
    double_ = 0;
    str_.clear();
  }
  void SetBool(bool b) {
    type_ = TypeId::kBoolean;
    int_ = b ? 1 : 0;
    double_ = 0;
    str_.clear();
  }
  void SetInt(int64_t i) {
    type_ = TypeId::kInteger;
    int_ = i;
    double_ = 0;
    str_.clear();
  }
  void SetDouble(double d) {
    type_ = TypeId::kDouble;
    int_ = 0;
    double_ = d;
    str_.clear();
  }
  void SetVarchar(std::string_view s) {
    type_ = TypeId::kVarchar;
    int_ = 0;
    double_ = 0;
    str_.assign(s);
  }
  void SetXadt(std::string_view bytes) {
    type_ = TypeId::kXadt;
    int_ = 0;
    double_ = 0;
    str_.assign(bytes);
  }

  TypeId type() const { return type_; }
  bool is_null() const { return type_ == TypeId::kNull; }

  bool AsBool() const { return int_ != 0; }
  int64_t AsInt() const { return int_; }
  double AsDouble() const {
    return type_ == TypeId::kDouble ? double_ : static_cast<double>(int_);
  }
  /// VARCHAR text or raw XADT bytes. The reference borrows from this Value
  /// (statically checked under Clang, DESIGN.md section 14).
  const std::string& AsString() const XO_LIFETIME_BOUND { return str_; }
  std::string&& TakeString() XO_LIFETIME_BOUND { return std::move(str_); }

  /// Three-way comparison; requires comparable types (numeric/numeric or
  /// same type). Nulls compare less than everything (used only for sorting).
  int Compare(const Value& other) const;
  bool Equals(const Value& other) const { return Compare(other) == 0; }

  /// Hash consistent with Equals for join/group keys.
  uint64_t Hash() const;

  /// Display rendering ("NULL", integers, text; XADT as a size tag —
  /// callers that want XML should decode via xadt::ToXmlString).
  std::string ToString() const;

 private:
  TypeId type_;
  int64_t int_ = 0;
  double double_ = 0;
  std::string str_;
};

}  // namespace xorator::ordb

#endif  // XORATOR_ORDB_VALUE_H_
