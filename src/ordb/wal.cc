#include "ordb/wal.h"

#include <filesystem>
#include <map>

#include "common/crc32.h"
#include "common/safe_math.h"
#include "common/span.h"
#include "ordb/pager.h"

namespace xorator::ordb {

namespace {

constexpr uint32_t kWalMagic = 0x4C415758u;    // "XWAL"
constexpr uint32_t kWalVersion = 1;
constexpr uint32_t kRecordMarker = 0x47504D49u;  // "IMPG"

uint32_t RecordCrc(PageId page_id, const char* payload) {
  uint32_t crc = Crc32(&page_id, sizeof(page_id));
  return Crc32(payload, kPageSize, crc);
}

Status WriteHeader(std::ofstream& file, PageId checkpoint_page_count) {
  std::string header;
  header.reserve(kWalHeaderBytes);
  xo::AppendU32(&header, kWalMagic);
  xo::AppendU32(&header, kWalVersion);
  xo::AppendU64(&header, checkpoint_page_count);
  file.write(header.data(), static_cast<std::streamsize>(header.size()));
  file.flush();
  if (file.fail()) return Status::IOError("cannot write WAL header");
  return Status::OK();
}

}  // namespace

Result<WalHeader> ParseWalHeader(std::string_view bytes) {
  xo::BoundedReader reader(bytes);
  XO_ASSIGN_OR_RETURN(uint32_t magic, reader.ReadU32());
  XO_ASSIGN_OR_RETURN(uint32_t version, reader.ReadU32());
  XO_ASSIGN_OR_RETURN(uint64_t pages, reader.ReadU64());
  if (magic != kWalMagic || version != kWalVersion) {
    return Status::Corruption("not a v" + std::to_string(kWalVersion) +
                              " WAL header");
  }
  if (!xo::FitsIn<PageId>(pages)) {
    return Status::Corruption("WAL header claims " + std::to_string(pages) +
                              " pages, more than a PageId can address");
  }
  return WalHeader{static_cast<PageId>(pages)};
}

Result<WalRecordHeader> ParseWalRecordHeader(std::string_view bytes) {
  xo::BoundedReader reader(bytes);
  XO_ASSIGN_OR_RETURN(uint32_t marker, reader.ReadU32());
  XO_ASSIGN_OR_RETURN(PageId page_id, reader.ReadU32());
  XO_ASSIGN_OR_RETURN(uint32_t crc, reader.ReadU32());
  if (marker != kRecordMarker) {
    return Status::Corruption("bad WAL record marker");
  }
  return WalRecordHeader{page_id, crc};
}

Result<std::unique_ptr<Wal>> Wal::Open(const std::string& path,
                                       PageId checkpoint_page_count) {
  auto wal = std::unique_ptr<Wal>(new Wal(path, checkpoint_page_count));
  // The object is not published yet; the lock only satisfies the analysis
  // (static member functions get no constructor exemption).
  xo::MutexLock lock(&wal->mu_);
  wal->file_.open(path, std::ios::binary | std::ios::trunc);
  if (!wal->file_) return Status::IOError("cannot open WAL '" + path + "'");
  XO_RETURN_NOT_OK(WriteHeader(wal->file_, checkpoint_page_count));
  XO_RETURN_NOT_OK(SyncToDisk(path));
  return wal;
}

bool Wal::Logged(PageId page_id) const {
  xo::MutexLock lock(&mu_);
  return logged_.count(page_id) > 0;
}

PageId Wal::checkpoint_page_count() const {
  xo::MutexLock lock(&mu_);
  return checkpoint_page_count_;
}

uint64_t Wal::records_logged() const {
  xo::MutexLock lock(&mu_);
  return records_logged_;
}

void Wal::set_fault_hook(FaultHook hook) {
  xo::MutexLock lock(&mu_);
  fault_hook_ = std::move(hook);
}

Status Wal::LogPageImage(PageId page_id, const char* page) {
  xo::MutexLock lock(&mu_);
  if (page_id >= checkpoint_page_count_ || logged_.count(page_id) > 0) {
    return Status::OK();  // truncation covers it / pre-image already logged
  }
  if (fault_hook_ != nullptr) {
    XO_RETURN_NOT_OK(fault_hook_());
  }
  std::string header;
  header.reserve(kWalRecordHeaderBytes);
  xo::AppendU32(&header, kRecordMarker);
  xo::AppendU32(&header, page_id);
  xo::AppendU32(&header, RecordCrc(page_id, page));
  file_.write(header.data(), static_cast<std::streamsize>(header.size()));
  file_.write(page, kPageSize);
  file_.flush();
  if (file_.fail()) {
    file_.clear();
    return Status::IOError("cannot log pre-image of page " +
                           std::to_string(page_id));
  }
  // The write-ahead contract ("a record is always durable before its
  // data-file write begins") needs a real barrier: a flushed-but-unsynced
  // record can vanish with the process, leaving an overwritten page with
  // no pre-image to roll back to.
  XO_RETURN_NOT_OK(SyncToDisk(path_));
  logged_.insert(page_id);
  ++records_logged_;
  return Status::OK();
}

Status Wal::Reset(PageId checkpoint_page_count) {
  xo::MutexLock lock(&mu_);
  file_.close();
  file_.open(path_, std::ios::binary | std::ios::trunc);
  if (!file_) return Status::IOError("cannot reset WAL '" + path_ + "'");
  XO_RETURN_NOT_OK(WriteHeader(file_, checkpoint_page_count));
  XO_RETURN_NOT_OK(SyncToDisk(path_));
  checkpoint_page_count_ = checkpoint_page_count;
  logged_.clear();
  records_logged_ = 0;
  return Status::OK();
}

Result<RecoveryStats> RecoverFromWal(const std::string& db_path,
                                     const std::string& wal_path) {
  RecoveryStats stats;
  std::ifstream wal(wal_path, std::ios::binary);
  if (!wal) return stats;  // no journal — nothing to recover

  char header[kWalHeaderBytes];
  wal.read(header, kWalHeaderBytes);
  if (wal.gcount() != static_cast<std::streamsize>(kWalHeaderBytes)) {
    return stats;  // header never made it to disk — no epoch ever started
  }
  auto parsed_header =
      ParseWalHeader(std::string_view(header, kWalHeaderBytes));
  if (!parsed_header.ok()) {
    return Status::Corruption("'" + wal_path +
                              "' is not a usable WAL: " +
                              parsed_header.status().message());
  }
  const PageId pages = parsed_header->checkpoint_page_count;

  // Collect intact pre-images; stop at the first torn record (crash tail).
  // The first record per page wins: it is the page's checkpoint-time image.
  std::map<PageId, std::string> images;
  while (true) {
    char rec_header[kWalRecordHeaderBytes];
    wal.read(rec_header, kWalRecordHeaderBytes);
    if (wal.gcount() != static_cast<std::streamsize>(kWalRecordHeaderBytes)) {
      stats.torn_tail_bytes += static_cast<uint64_t>(wal.gcount());
      break;
    }
    auto rec =
        ParseWalRecordHeader(std::string_view(rec_header, kWalRecordHeaderBytes));
    std::string payload(kPageSize, '\0');
    wal.read(payload.data(), kPageSize);
    if (!rec.ok() ||
        wal.gcount() != static_cast<std::streamsize>(kPageSize) ||
        rec->crc != RecordCrc(rec->page_id, payload.data())) {
      stats.torn_tail_bytes +=
          kWalRecordHeaderBytes + static_cast<uint64_t>(wal.gcount());
      break;
    }
    images.emplace(rec->page_id, std::move(payload));
  }
  wal.close();

  if (!std::filesystem::exists(db_path)) {
    // A crash cannot delete the data file, so a journal without one is
    // stale (the database was removed); Wal::Open will truncate it.
    stats.recovered = pages == 0 && images.empty();
    return stats;
  }

  {
    std::fstream db(db_path,
                    std::ios::binary | std::ios::in | std::ios::out);
    if (!db) return Status::IOError("cannot open '" + db_path + "'");
    for (const auto& [page_id, image] : images) {
      if (page_id >= pages) continue;  // truncated away below
      db.seekp(static_cast<std::streamoff>(page_id) * kPageSize);
      db.write(image.data(), kPageSize);
      if (db.fail()) {
        return Status::IOError("cannot restore page " +
                               std::to_string(page_id));
      }
      ++stats.pages_restored;
    }
    db.flush();
    if (db.fail()) return Status::IOError("flush failed during recovery");
  }

  // The header validated pages <= PageId max, but the checkpoint size is
  // still attacker bytes: compute it with checked arithmetic.
  XO_ASSIGN_OR_RETURN(
      const uint64_t checkpoint_bytes,
      xo::CheckedMul<uint64_t>(pages, kPageSize));
  std::error_code ec;
  std::filesystem::resize_file(db_path, checkpoint_bytes, ec);
  if (ec) {
    return Status::IOError("cannot truncate '" + db_path +
                           "' to its checkpoint size: " + ec.message());
  }
  // Make the rollback itself durable before Wal::Open truncates the
  // journal; a crash here must find either the journal or the restored
  // pages, never neither.
  XO_RETURN_NOT_OK(SyncToDisk(db_path));
  stats.recovered = true;
  stats.page_count = pages;
  return stats;
}

}  // namespace xorator::ordb
