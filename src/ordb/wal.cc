#include "ordb/wal.h"

#include <cstring>
#include <filesystem>
#include <map>

#include "common/crc32.h"
#include "ordb/pager.h"

namespace xorator::ordb {

namespace {

constexpr uint32_t kWalMagic = 0x4C415758u;    // "XWAL"
constexpr uint32_t kWalVersion = 1;
constexpr uint32_t kRecordMarker = 0x47504D49u;  // "IMPG"
constexpr size_t kHeaderBytes = 16;
constexpr size_t kRecordHeaderBytes = 12;

uint32_t RecordCrc(PageId page_id, const char* payload) {
  uint32_t crc = Crc32(&page_id, sizeof(page_id));
  return Crc32(payload, kPageSize, crc);
}

Status WriteHeader(std::ofstream& file, PageId checkpoint_page_count) {
  char header[kHeaderBytes];
  uint64_t pages = checkpoint_page_count;
  std::memcpy(header, &kWalMagic, 4);
  std::memcpy(header + 4, &kWalVersion, 4);
  std::memcpy(header + 8, &pages, 8);
  file.write(header, kHeaderBytes);
  file.flush();
  if (file.fail()) return Status::IOError("cannot write WAL header");
  return Status::OK();
}

}  // namespace

Result<std::unique_ptr<Wal>> Wal::Open(const std::string& path,
                                       PageId checkpoint_page_count) {
  auto wal = std::unique_ptr<Wal>(new Wal(path, checkpoint_page_count));
  // The object is not published yet; the lock only satisfies the analysis
  // (static member functions get no constructor exemption).
  xo::MutexLock lock(&wal->mu_);
  wal->file_.open(path, std::ios::binary | std::ios::trunc);
  if (!wal->file_) return Status::IOError("cannot open WAL '" + path + "'");
  XO_RETURN_NOT_OK(WriteHeader(wal->file_, checkpoint_page_count));
  XO_RETURN_NOT_OK(SyncToDisk(path));
  return wal;
}

bool Wal::Logged(PageId page_id) const {
  xo::MutexLock lock(&mu_);
  return logged_.count(page_id) > 0;
}

PageId Wal::checkpoint_page_count() const {
  xo::MutexLock lock(&mu_);
  return checkpoint_page_count_;
}

uint64_t Wal::records_logged() const {
  xo::MutexLock lock(&mu_);
  return records_logged_;
}

void Wal::set_fault_hook(FaultHook hook) {
  xo::MutexLock lock(&mu_);
  fault_hook_ = std::move(hook);
}

Status Wal::LogPageImage(PageId page_id, const char* page) {
  xo::MutexLock lock(&mu_);
  if (page_id >= checkpoint_page_count_ || logged_.count(page_id) > 0) {
    return Status::OK();  // truncation covers it / pre-image already logged
  }
  if (fault_hook_ != nullptr) {
    XO_RETURN_NOT_OK(fault_hook_());
  }
  char header[kRecordHeaderBytes];
  uint32_t crc = RecordCrc(page_id, page);
  std::memcpy(header, &kRecordMarker, 4);
  std::memcpy(header + 4, &page_id, 4);
  std::memcpy(header + 8, &crc, 4);
  file_.write(header, kRecordHeaderBytes);
  file_.write(page, kPageSize);
  file_.flush();
  if (file_.fail()) {
    file_.clear();
    return Status::IOError("cannot log pre-image of page " +
                           std::to_string(page_id));
  }
  // The write-ahead contract ("a record is always durable before its
  // data-file write begins") needs a real barrier: a flushed-but-unsynced
  // record can vanish with the process, leaving an overwritten page with
  // no pre-image to roll back to.
  XO_RETURN_NOT_OK(SyncToDisk(path_));
  logged_.insert(page_id);
  ++records_logged_;
  return Status::OK();
}

Status Wal::Reset(PageId checkpoint_page_count) {
  xo::MutexLock lock(&mu_);
  file_.close();
  file_.open(path_, std::ios::binary | std::ios::trunc);
  if (!file_) return Status::IOError("cannot reset WAL '" + path_ + "'");
  XO_RETURN_NOT_OK(WriteHeader(file_, checkpoint_page_count));
  XO_RETURN_NOT_OK(SyncToDisk(path_));
  checkpoint_page_count_ = checkpoint_page_count;
  logged_.clear();
  records_logged_ = 0;
  return Status::OK();
}

Result<RecoveryStats> RecoverFromWal(const std::string& db_path,
                                     const std::string& wal_path) {
  RecoveryStats stats;
  std::ifstream wal(wal_path, std::ios::binary);
  if (!wal) return stats;  // no journal — nothing to recover

  char header[kHeaderBytes];
  wal.read(header, kHeaderBytes);
  if (wal.gcount() != static_cast<std::streamsize>(kHeaderBytes)) {
    return stats;  // header never made it to disk — no epoch ever started
  }
  uint32_t magic, version;
  uint64_t pages;
  std::memcpy(&magic, header, 4);
  std::memcpy(&version, header + 4, 4);
  std::memcpy(&pages, header + 8, 8);
  if (magic != kWalMagic || version != kWalVersion) {
    return Status::Corruption("'" + wal_path + "' is not a v" +
                              std::to_string(kWalVersion) + " WAL");
  }

  // Collect intact pre-images; stop at the first torn record (crash tail).
  // The first record per page wins: it is the page's checkpoint-time image.
  std::map<PageId, std::string> images;
  while (true) {
    char rec_header[kRecordHeaderBytes];
    wal.read(rec_header, kRecordHeaderBytes);
    if (wal.gcount() != static_cast<std::streamsize>(kRecordHeaderBytes)) {
      stats.torn_tail_bytes += static_cast<uint64_t>(wal.gcount());
      break;
    }
    uint32_t marker, crc;
    PageId page_id;
    std::memcpy(&marker, rec_header, 4);
    std::memcpy(&page_id, rec_header + 4, 4);
    std::memcpy(&crc, rec_header + 8, 4);
    std::string payload(kPageSize, '\0');
    wal.read(payload.data(), kPageSize);
    if (marker != kRecordMarker ||
        wal.gcount() != static_cast<std::streamsize>(kPageSize) ||
        crc != RecordCrc(page_id, payload.data())) {
      stats.torn_tail_bytes +=
          kRecordHeaderBytes + static_cast<uint64_t>(wal.gcount());
      break;
    }
    images.emplace(page_id, std::move(payload));
  }
  wal.close();

  if (!std::filesystem::exists(db_path)) {
    // A crash cannot delete the data file, so a journal without one is
    // stale (the database was removed); Wal::Open will truncate it.
    stats.recovered = pages == 0 && images.empty();
    return stats;
  }

  {
    std::fstream db(db_path,
                    std::ios::binary | std::ios::in | std::ios::out);
    if (!db) return Status::IOError("cannot open '" + db_path + "'");
    for (const auto& [page_id, image] : images) {
      if (page_id >= pages) continue;  // truncated away below
      db.seekp(static_cast<std::streamoff>(page_id) * kPageSize);
      db.write(image.data(), kPageSize);
      if (db.fail()) {
        return Status::IOError("cannot restore page " +
                               std::to_string(page_id));
      }
      ++stats.pages_restored;
    }
    db.flush();
    if (db.fail()) return Status::IOError("flush failed during recovery");
  }

  std::error_code ec;
  std::filesystem::resize_file(db_path, pages * kPageSize, ec);
  if (ec) {
    return Status::IOError("cannot truncate '" + db_path +
                           "' to its checkpoint size: " + ec.message());
  }
  // Make the rollback itself durable before Wal::Open truncates the
  // journal; a crash here must find either the journal or the restored
  // pages, never neither.
  XO_RETURN_NOT_OK(SyncToDisk(db_path));
  stats.recovered = true;
  stats.page_count = static_cast<PageId>(pages);
  return stats;
}

}  // namespace xorator::ordb
