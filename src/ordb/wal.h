#ifndef XORATOR_ORDB_WAL_H_
#define XORATOR_ORDB_WAL_H_

#include <cstdint>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_set>

#include "common/mutex.h"
#include "common/result.h"
#include "common/thread_annotations.h"
#include "ordb/page.h"

namespace xorator::ordb {

/// On-disk WAL framing sizes (header and per-record header).
inline constexpr size_t kWalHeaderBytes = 16;
inline constexpr size_t kWalRecordHeaderBytes = 12;

/// Decoded WAL file header: [magic:u32][version:u32][pages:u64].
struct WalHeader {
  /// Data-file size (pages) at the checkpoint this log protects.
  PageId checkpoint_page_count = 0;
};

/// Decoded WAL record header: [marker:u32][page_id:u32][crc32:u32].
struct WalRecordHeader {
  PageId page_id = kInvalidPageId;
  uint32_t crc = 0;
};

/// Parses and validates a WAL file header. Fails closed with kCorruption
/// on truncation, a bad magic/version, or a page count that does not fit
/// a PageId (which would silently truncate in the recovery resize).
/// Pure — exposed for the page fuzzer and the adversarial bounds tests.
[[nodiscard]] Result<WalHeader> ParseWalHeader(std::string_view bytes);

/// Parses and validates one WAL record header (the payload CRC is checked
/// separately, against the payload). Fails closed with kCorruption on
/// truncation or a bad marker; recovery treats that as the crash tail.
[[nodiscard]] Result<WalRecordHeader> ParseWalRecordHeader(
    std::string_view bytes);

/// Write-ahead log of physical page images, giving the engine crash
/// atomicity at Checkpoint() granularity (the design of SQLite's rollback
/// journal; see DESIGN.md "Durability & fault tolerance").
///
/// File layout:
///   header:  [magic:u32][version:u32][checkpoint_page_count:u64]
///   records: [marker:u32][page_id:u32][crc32:u32][payload: kPageSize]
///
/// Between checkpoints, the buffer pool logs the *on-disk* image of every
/// page — appended and fsynced, then overwritten ("write-ahead") — the
/// first time that page is written back. Recovery restores the logged images in reverse
/// order and truncates the data file to the checkpointed page count, which
/// rolls the database back exactly to its last checkpoint: torn data-file
/// pages are overwritten with their intact pre-images, and half-appended
/// log records (the crash tail) are ignored, which is safe because a
/// record is always durable before its data-file write begins.
///
/// Thread safety: fully thread-safe. An internal mutex guards the log
/// stream and the logged-page set, so concurrent write-backs from the
/// buffer pool append whole records. Reset() is the epoch boundary and is
/// only called with the Database statement lock held exclusively, which
/// keeps it ordered against in-flight LogPageImage calls (DESIGN.md
/// section 10 has the full lock hierarchy).
class Wal {
 public:
  /// Opens (truncating) the log at `path` and writes a fresh header
  /// declaring `checkpoint_page_count` data pages. Call only after any
  /// existing log has been recovered — opening discards it.
  [[nodiscard]] static Result<std::unique_ptr<Wal>> Open(const std::string& path,
                                           PageId checkpoint_page_count);

  /// Testing hook drawn before each real pre-image append; a non-OK
  /// return is reported as the append's failure without touching the
  /// file. The WAL is an ofstream, not a Pager, so this is how
  /// FaultInjectingPager scopes faults to the log (DESIGN.md §13).
  using FaultHook = std::function<Status()>;

  /// Installs (or, with nullptr, removes) the fault hook.
  void set_fault_hook(FaultHook hook) XO_EXCLUDES(mu_);

  /// Appends (and fsyncs) the pre-image of `page_id`, once per page per
  /// checkpoint epoch; later calls for the same page are no-ops.
  [[nodiscard]] Status LogPageImage(PageId page_id, const char* page)
      XO_EXCLUDES(mu_);

  /// True if `page_id` already has a pre-image in the current epoch.
  [[nodiscard]] bool Logged(PageId page_id) const XO_EXCLUDES(mu_);

  /// Pages the data file held at the epoch's start; pages at or beyond
  /// this id need no pre-image (recovery truncates them away).
  [[nodiscard]] PageId checkpoint_page_count() const XO_EXCLUDES(mu_);

  /// Starts a new epoch: truncates the log and writes a fresh header.
  /// This is the engine's atomic commit point.
  [[nodiscard]] Status Reset(PageId checkpoint_page_count) XO_EXCLUDES(mu_);

  /// Pre-image records appended in the current epoch.
  [[nodiscard]] uint64_t records_logged() const XO_EXCLUDES(mu_);

 private:
  Wal(std::string path, PageId checkpoint_page_count)
      : path_(std::move(path)),
        checkpoint_page_count_(checkpoint_page_count) {}

  const std::string path_;

  /// Guards the log stream and the epoch state below. Rank kWal: acquired
  /// from under a buffer-pool bucket latch during write-backs, never the
  /// other way around; only the leaf ranks sit below it (DESIGN.md
  /// section 10).
  mutable xo::Mutex mu_{xo::LockRank::kWal};
  std::ofstream file_ XO_GUARDED_BY(mu_);
  PageId checkpoint_page_count_ XO_GUARDED_BY(mu_) = 0;
  std::unordered_set<PageId> logged_ XO_GUARDED_BY(mu_);
  uint64_t records_logged_ XO_GUARDED_BY(mu_) = 0;
  FaultHook fault_hook_ XO_GUARDED_BY(mu_);
};

/// What `RecoverFromWal` did.
struct RecoveryStats {
  /// True if a log with a valid header existed and recovery ran.
  bool recovered = false;
  /// Intact pre-image records found (and restored).
  uint64_t pages_restored = 0;
  /// Trailing bytes discarded as a torn record (crash tail).
  uint64_t torn_tail_bytes = 0;
  /// Data-file size (in pages) after the rollback truncation.
  PageId page_count = 0;
};

/// Rolls `db_path` back to its last checkpoint using the journal at
/// `wal_path`, as described on Wal. Missing or header-less journals mean
/// "nothing to recover" (clean shutdown or a database that never
/// checkpointed); the data file is left untouched in that case. Run this
/// before opening a FilePager on `db_path`.
[[nodiscard]] Result<RecoveryStats> RecoverFromWal(const std::string& db_path,
                                     const std::string& wal_path);

}  // namespace xorator::ordb

#endif  // XORATOR_ORDB_WAL_H_
