#include "server/client.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

namespace xorator::server {

Client::Client(ClientOptions options)
    : options_(std::move(options)), rng_(options_.rng_seed) {}

void Client::Disconnect() { socket_.Close(); }

Result<Client::RawResponse> Client::RoundTrip(const std::string& frame,
                                              bool* request_delivered) {
  if (request_delivered != nullptr) *request_delivered = false;
  if (!socket_.valid()) {
    ASSIGN_OR_RETURN(socket_,
                     Connect(options_.host, options_.port,
                             Deadline::After(options_.connect_timeout_millis)));
  }
  // One deadline spans the whole round trip: a server that accepted the
  // request but never answers must not hang the caller.
  const Deadline deadline = Deadline::After(options_.io_timeout_millis);
  Status sent = WriteFull(socket_, frame, deadline);
  if (!sent.ok()) {
    socket_.Close();
    // Re-shape to kUnavailable so the retry layer reconnects and retries:
    // a write that died mid-frame poisoned this connection either way. A
    // truncated frame is also provably not executed — the server cannot
    // decode a statement out of a partial frame — so request_delivered
    // stays false.
    return Status::Unavailable("request send failed: " + sent.message());
  }
  if (request_delivered != nullptr) *request_delivered = true;
  std::string header_bytes;
  Status read = ReadFull(socket_, &header_bytes, kFrameHeaderBytes, deadline);
  if (!read.ok()) {
    socket_.Close();
    return Status::Unavailable("response read failed: " + read.message());
  }
  Result<FrameHeader> decoded = DecodeFrameHeader(header_bytes);
  if (!decoded.ok()) {
    // A header that fails to parse leaves the byte stream desynced; drop
    // the connection like every other failure path so the next call
    // reconnects instead of misparsing the leftover bytes.
    socket_.Close();
    return decoded.status();
  }
  const FrameHeader header = decoded.value();
  RawResponse response;
  response.type = header.type;
  if (header.payload_bytes > 0) {
    read = ReadFull(socket_, &response.payload, header.payload_bytes,
                    deadline);
    if (!read.ok()) {
      socket_.Close();
      return Status::Unavailable("response payload read failed: " +
                                 read.message());
    }
  }
  return response;
}

int64_t Client::BackoffMillis(int attempt, uint32_t hint_millis) {
  // Bounded exponential: base << attempt, saturating at the cap.
  int64_t backoff = options_.backoff_base_millis;
  for (int i = 0; i < attempt && backoff < options_.backoff_max_millis; ++i) {
    backoff *= 2;
  }
  backoff = std::min(backoff, options_.backoff_max_millis);
  // The server's hint is a floor, not a substitute: it says "no point
  // retrying sooner", while the exponential keeps distinct clients from
  // converging on the same retry schedule.
  backoff = std::max(backoff, static_cast<int64_t>(hint_millis));
  // Full jitter on top, so a burst of rejected clients decorrelates.
  std::uniform_int_distribution<int64_t> jitter(0, std::max<int64_t>(
                                                       backoff - 1, 0));
  return backoff + jitter(rng_);
}

Result<Client::RawResponse> Client::RoundTripWithRetry(
    const std::string& frame, bool retry_after_delivery) {
  Status last = Status::OK();
  for (int attempt = 0; attempt <= options_.max_retries; ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(BackoffMillis(
              attempt - 1, last.ok() ? 0 : last.retry_after_millis())));
    }
    bool delivered = false;
    Result<RawResponse> response = RoundTrip(frame, &delivered);
    if (!response.ok()) {
      last = response.status();
      if (!last.IsRetryable()) return last;
      if (delivered && !retry_after_delivery) {
        // The request reached the server but the response was lost — the
        // statement may already have executed, so re-sending it could
        // apply a mutation twice. Surface the ambiguity to the caller
        // instead (see Client::Execute's at-most-once contract).
        return Status::Unavailable(
            "request delivered but the response was lost; the statement "
            "may have executed, not retrying a non-idempotent call: " +
            last.message());
      }
      continue;
    }
    if (response->type == FrameType::kError) {
      ASSIGN_OR_RETURN(ErrorPayload error, DecodeError(response->payload));
      last = StatusFromError(error);
      if (!last.IsRetryable()) return last;
      continue;
    }
    return response;
  }
  return last;
}

Result<ResultPayload> Client::Query(const std::string& sql,
                                    const CallOptions& call) {
  QueryRequest request;
  request.query_id = call.query_id;
  request.deadline_millis = call.deadline_millis;
  request.max_memory_bytes = call.max_memory_bytes;
  request.skip_quarantined = call.skip_quarantined;
  request.sql = sql;
  ASSIGN_OR_RETURN(
      RawResponse response,
      RoundTripWithRetry(EncodeQueryRequest(FrameType::kQuery, request)));
  if (response.type != FrameType::kResult) {
    return Status::ParseError("unexpected response frame type " +
                              std::to_string(static_cast<int>(response.type)));
  }
  return DecodeResult(response.payload);
}

Status Client::Execute(const std::string& sql, const CallOptions& call) {
  QueryRequest request;
  request.query_id = call.query_id;
  request.deadline_millis = call.deadline_millis;
  request.max_memory_bytes = call.max_memory_bytes;
  request.skip_quarantined = call.skip_quarantined;
  request.sql = sql;
  ASSIGN_OR_RETURN(
      RawResponse response,
      RoundTripWithRetry(EncodeQueryRequest(FrameType::kExecute, request),
                         /*retry_after_delivery=*/call.idempotent));
  if (response.type != FrameType::kResult) {
    return Status::ParseError("unexpected response frame type " +
                              std::to_string(static_cast<int>(response.type)));
  }
  return Status::OK();
}

Status Client::Cancel(uint64_t query_id) {
  CancelRequest request;
  request.query_id = query_id;
  ASSIGN_OR_RETURN(RawResponse response,
                   RoundTrip(EncodeCancelRequest(request)));
  if (response.type == FrameType::kError) {
    ASSIGN_OR_RETURN(ErrorPayload error, DecodeError(response.payload));
    return StatusFromError(error);
  }
  return Status::OK();
}

Result<StatsPayload> Client::Stats() {
  ASSIGN_OR_RETURN(RawResponse response,
                   RoundTripWithRetry(EncodeStatsRequest()));
  if (response.type != FrameType::kStatsResult) {
    return Status::ParseError("unexpected response frame type " +
                              std::to_string(static_cast<int>(response.type)));
  }
  return DecodeStats(response.payload);
}

}  // namespace xorator::server
