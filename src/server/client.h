#ifndef XORATOR_SERVER_CLIENT_H_
#define XORATOR_SERVER_CLIENT_H_

#include <cstdint>
#include <random>
#include <string>

#include "common/result.h"
#include "server/net.h"
#include "server/protocol.h"

namespace xorator::server {

/// Client configuration.
struct ClientOptions {
  /// Server address (numeric IPv4).
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  /// Budget for establishing a TCP connection.
  int64_t connect_timeout_millis = 1'000;
  /// Budget for one request/response round trip on an established
  /// connection (a per-request deadline_millis does not extend it).
  int64_t io_timeout_millis = 30'000;
  /// Retries after the first attempt. Only Status::IsRetryable() failures
  /// — transport kUnavailable, admission kResourceExhausted with a hint,
  /// the read-only health latch — are retried; everything else returns
  /// immediately.
  int max_retries = 4;
  /// Bounded exponential backoff between retries: attempt n sleeps
  /// max(server retry-after hint, base << n, capped at max) plus jitter in
  /// [0, that). Deterministic given rng_seed.
  int64_t backoff_base_millis = 10;
  int64_t backoff_max_millis = 1'000;
  uint64_t rng_seed = 0x9E3779B97F4A7C15ull;
};

/// Per-call options mirroring the QUERY/EXECUTE frame's resource envelope.
struct CallOptions {
  /// Client-chosen cancellation identity (0 = not cancellable by id).
  uint64_t query_id = 0;
  /// Wall-clock budget in ms, measured server-side from admission.
  uint64_t deadline_millis = 0;
  /// Tracked-memory budget in bytes.
  uint64_t max_memory_bytes = 0;
  /// Degraded-scan opt-in.
  bool skip_quarantined = false;
  /// Marks the statement safe to re-send after an *ambiguous* transport
  /// failure — one that struck after the request was fully delivered but
  /// before a response arrived, so the server may already have executed
  /// it. Execute() only auto-retries such failures when this is set (a
  /// blind re-send could apply an INSERT/DELETE twice). Failures that
  /// provably preceded delivery, and errors the server itself reports
  /// (admission rejection, the read-only latch), are always retried —
  /// those never executed. Query() ignores this: reads are idempotent.
  bool idempotent = false;
};

/// Client for the xorator wire protocol (server/protocol.h): one lazy
/// connection, per-call timeout, and bounded exponential backoff with
/// jitter on retryable failures. A broken connection is dropped and
/// re-established on the next attempt.
///
/// Thread safety: none — one Client per thread (the underlying protocol is
/// strictly request/response per connection anyway).
class Client {
 public:
  explicit Client(ClientOptions options);

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Runs SQL and returns the rendered result. Retryable failures are
  /// retried per ClientOptions; the returned status on exhaustion is the
  /// last failure (its retry_after_millis and message intact).
  [[nodiscard]] Result<ResultPayload> Query(const std::string& sql,
                                            const CallOptions& call = {});

  /// Runs SQL for effect. At-most-once by default: a transport failure
  /// after the request was delivered (response read timed out, connection
  /// reset) is returned as kUnavailable *without* retrying, because the
  /// statement may already have executed and a re-send could apply the
  /// mutation twice. Set CallOptions::idempotent to opt into at-least-once
  /// retries; rejections the server answered with (which never executed)
  /// are always retried per ClientOptions.
  [[nodiscard]] Status Execute(const std::string& sql,
                               const CallOptions& call = {});

  /// Cancels the in-flight statement (on any connection of this server)
  /// whose CallOptions carried `query_id`. NotFound when nothing with that
  /// id is in flight. Never retried: by the time a retry landed, the
  /// statement it targeted would be gone anyway.
  [[nodiscard]] Status Cancel(uint64_t query_id);

  /// Fetches the server's STATS rows (engine resilience + `server_*`
  /// admission counters).
  [[nodiscard]] Result<StatsPayload> Stats();

  /// Drops the current connection (the next call reconnects). Mainly a
  /// test hook for exercising the server's disconnect handling.
  void Disconnect();

  /// True while a connection is established (test hook).
  [[nodiscard]] bool connected() const { return socket_.valid(); }

 private:
  /// Sends `frame` and reads one response frame, reconnecting first if
  /// needed. Transport failures drop the connection and come back
  /// kUnavailable (retryable); a kError response becomes its decoded
  /// Status; kResult/kStatsResult come back as the payload bytes plus
  /// their type.
  struct RawResponse {
    FrameType type = FrameType::kError;
    std::string payload;
  };
  /// `*request_delivered` (when non-null) is set true once the request
  /// frame was fully written — the line between "safe to blindly re-send"
  /// and "the server may have executed it".
  [[nodiscard]] Result<RawResponse> RoundTrip(
      const std::string& frame, bool* request_delivered = nullptr);

  /// RoundTrip + retry loop: retries per ClientOptions while the failure
  /// IsRetryable(), sleeping the backoff between attempts. When
  /// `retry_after_delivery` is false, a transport failure that struck
  /// after the request was fully delivered is returned instead of retried
  /// (the duplicate-mutation guard for non-idempotent EXECUTE); failures
  /// before delivery and server-reported rejections are still retried.
  [[nodiscard]] Result<RawResponse> RoundTripWithRetry(
      const std::string& frame, bool retry_after_delivery = true);

  /// Backoff for `attempt` (0-based): max(hint, min(base << attempt, max))
  /// + jitter.
  [[nodiscard]] int64_t BackoffMillis(int attempt, uint32_t hint_millis);

  const ClientOptions options_;
  Socket socket_;
  std::mt19937_64 rng_;
};

}  // namespace xorator::server

#endif  // XORATOR_SERVER_CLIENT_H_
