#include "server/net.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <system_error>

namespace xorator::server {

namespace {

/// Largest value we hand poll() as a timeout; also the RemainingMillis()
/// sentinel for infinite deadlines. One hour — far beyond any deadline a
/// caller would legitimately wait out in a single poll.
constexpr int64_t kPollCapMillis = 60 * 60 * 1000;

std::string ErrnoMessage(int err) {
  return std::system_category().message(err);
}

Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::IOError("fcntl(O_NONBLOCK): " + ErrnoMessage(errno));
  }
  return Status::OK();
}

/// Polls `fd` for `events` until the deadline. OK when an event (or any
/// error/hangup revent) is pending; kDeadlineExceeded on timeout.
Status PollFor(int fd, short events, const Deadline& deadline) {
  for (;;) {
    const int64_t remaining = deadline.RemainingMillis();
    if (remaining <= 0) {
      return Status::DeadlineExceeded("socket wait timed out");
    }
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = events;
    pfd.revents = 0;
    const int timeout =
        static_cast<int>(std::min<int64_t>(remaining, kPollCapMillis));
    const int rc = ::poll(&pfd, 1, timeout);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("poll: " + ErrnoMessage(errno));
    }
    if (rc > 0) return Status::OK();
    // rc == 0: poll timed out; loop to re-check the real deadline (it may
    // have been capped).
  }
}

}  // namespace

Deadline Deadline::After(int64_t millis) {
  Deadline d;
  d.infinite_ = false;
  d.at_ = std::chrono::steady_clock::now() +
          std::chrono::milliseconds(std::max<int64_t>(millis, 0));
  return d;
}

Deadline Deadline::Infinite() {
  Deadline d;
  d.infinite_ = true;
  return d;
}

int64_t Deadline::RemainingMillis() const {
  if (infinite_) return kPollCapMillis;
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                        at_ - std::chrono::steady_clock::now())
                        .count();
  return std::max<int64_t>(left, 0);
}

bool Deadline::Expired() const {
  return !infinite_ && RemainingMillis() == 0;
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::ShutdownBoth() {
  if (fd_ >= 0) {
    ::shutdown(fd_, SHUT_RDWR);
  }
}

void Socket::ShutdownRead() {
  if (fd_ >= 0) {
    ::shutdown(fd_, SHUT_RD);
  }
}

Result<Socket> Listen(uint16_t port, int backlog) {
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) {
    return Status::IOError("socket: " + ErrnoMessage(errno));
  }
  const int one = 1;
  if (::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) <
      0) {
    return Status::IOError("setsockopt(SO_REUSEADDR): " + ErrnoMessage(errno));
  }
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(sock.fd(), reinterpret_cast<const struct sockaddr*>(&addr),
             sizeof(addr)) < 0) {
    return Status::IOError("bind(127.0.0.1:" + std::to_string(port) +
                           "): " + ErrnoMessage(errno));
  }
  if (::listen(sock.fd(), backlog) < 0) {
    return Status::IOError("listen: " + ErrnoMessage(errno));
  }
  RETURN_IF_ERROR(SetNonBlocking(sock.fd()));
  return sock;
}

Result<uint16_t> BoundPort(const Socket& listener) {
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  socklen_t len = sizeof(addr);
  if (::getsockname(listener.fd(),
                    reinterpret_cast<struct sockaddr*>(&addr), &len) < 0) {
    return Status::IOError("getsockname: " + ErrnoMessage(errno));
  }
  return static_cast<uint16_t>(ntohs(addr.sin_port));
}

Result<Socket> Accept(const Socket& listener, const Deadline& deadline) {
  for (;;) {
    RETURN_IF_ERROR(PollFor(listener.fd(), POLLIN, deadline));
    const int fd = ::accept(listener.fd(), nullptr, nullptr);
    if (fd >= 0) {
      Socket sock(fd);
      RETURN_IF_ERROR(SetNonBlocking(sock.fd()));
      const int one = 1;
      // Best effort: latency tuning, not correctness.
      ::setsockopt(sock.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return sock;
    }
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK ||
        errno == ECONNABORTED) {
      // The pending connection vanished between poll and accept; wait for
      // the next one.
      continue;
    }
    return Status::IOError("accept: " + ErrnoMessage(errno));
  }
}

Result<Socket> Connect(const std::string& host, uint16_t port,
                       const Deadline& deadline) {
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) {
    return Status::IOError("socket: " + ErrnoMessage(errno));
  }
  RETURN_IF_ERROR(SetNonBlocking(sock.fd()));
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("not a numeric IPv4 address: '" + host +
                                   "'");
  }
  int rc;
  do {
    rc = ::connect(sock.fd(), reinterpret_cast<const struct sockaddr*>(&addr),
                   sizeof(addr));
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) {
    if (errno != EINPROGRESS) {
      return Status::Unavailable("connect(" + host + ":" +
                                 std::to_string(port) +
                                 "): " + ErrnoMessage(errno));
    }
    RETURN_IF_ERROR(PollFor(sock.fd(), POLLOUT, deadline));
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(sock.fd(), SOL_SOCKET, SO_ERROR, &err, &len) < 0) {
      return Status::IOError("getsockopt(SO_ERROR): " + ErrnoMessage(errno));
    }
    if (err != 0) {
      return Status::Unavailable("connect(" + host + ":" +
                                 std::to_string(port) +
                                 "): " + ErrnoMessage(err));
    }
  }
  const int one = 1;
  // Best effort: latency tuning, not correctness.
  ::setsockopt(sock.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return sock;
}

Status ReadFull(const Socket& socket, std::string* buf, size_t n,
                const Deadline& deadline) {
  buf->resize(n);
  size_t got = 0;
  while (got < n) {
    RETURN_IF_ERROR(PollFor(socket.fd(), POLLIN, deadline));
    const ssize_t rc = ::recv(socket.fd(), &(*buf)[got], n - got, 0);
    if (rc > 0) {
      got += static_cast<size_t>(rc);
      continue;
    }
    if (rc == 0) {
      if (got == 0) {
        return Status::Unavailable("peer closed the connection");
      }
      return Status::Corruption("peer closed the connection mid-frame (" +
                                std::to_string(got) + " of " +
                                std::to_string(n) + " bytes)");
    }
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
    if (errno == ECONNRESET) {
      return got == 0 ? Status::Unavailable("connection reset by peer")
                      : Status::Corruption("connection reset mid-frame");
    }
    return Status::IOError("recv: " + ErrnoMessage(errno));
  }
  return Status::OK();
}

Status WriteFull(const Socket& socket, std::string_view data,
                 const Deadline& deadline) {
  size_t sent = 0;
  while (sent < data.size()) {
    RETURN_IF_ERROR(PollFor(socket.fd(), POLLOUT, deadline));
    const ssize_t rc = ::send(socket.fd(), data.data() + sent,
                              data.size() - sent, MSG_NOSIGNAL);
    if (rc > 0) {
      sent += static_cast<size_t>(rc);
      continue;
    }
    if (rc < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      if (errno == EPIPE || errno == ECONNRESET) {
        return Status::Unavailable("peer closed the connection");
      }
      return Status::IOError("send: " + ErrnoMessage(errno));
    }
  }
  return Status::OK();
}

bool PeerDisconnected(const Socket& socket) {
  struct pollfd pfd;
  pfd.fd = socket.fd();
  // POLLIN alone suffices: a closed peer makes the socket readable (EOF).
  // We only peek, so pipelined request bytes (which the protocol forbids
  // anyway) would not be consumed.
  pfd.events = POLLIN;
  pfd.revents = 0;
  int rc;
  do {
    rc = ::poll(&pfd, 1, 0);
  } while (rc < 0 && errno == EINTR);
  if (rc <= 0) return false;
  if ((pfd.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0) return true;
  if ((pfd.revents & POLLIN) != 0) {
    char probe;
    ssize_t peeked;
    do {
      peeked = ::recv(socket.fd(), &probe, 1, MSG_PEEK | MSG_DONTWAIT);
    } while (peeked < 0 && errno == EINTR);
    if (peeked == 0) return true;                      // orderly shutdown
    if (peeked < 0 && errno == ECONNRESET) return true;  // hard reset
  }
  return false;
}

}  // namespace xorator::server
