#ifndef XORATOR_SERVER_NET_H_
#define XORATOR_SERVER_NET_H_

#include <chrono>
#include <cstdint>
#include <string>

#include "common/result.h"

namespace xorator::server {

/// Thin POSIX socket layer for the xorator server and client (DESIGN.md
/// section 17). Loopback TCP only; every blocking operation takes a
/// Deadline and fails closed with kDeadlineExceeded instead of hanging, so
/// a stalled peer can never wedge a server thread. All syscalls loop on
/// EINTR; writes use MSG_NOSIGNAL so a dead peer yields a Status, not a
/// SIGPIPE.

/// A wall-deadline measured on the steady clock. Cheap to copy; Infinite()
/// never expires.
class Deadline {
 public:
  /// A deadline `millis` from now (negative clamps to "already expired").
  static Deadline After(int64_t millis);

  /// A deadline that never expires.
  static Deadline Infinite();

  /// Milliseconds until expiry, clamped to >= 0; a large sentinel when
  /// infinite (callers feed this to poll(), which takes an int).
  [[nodiscard]] int64_t RemainingMillis() const;

  /// True once RemainingMillis() has hit zero (never for Infinite()).
  [[nodiscard]] bool Expired() const;

 private:
  bool infinite_ = false;
  std::chrono::steady_clock::time_point at_{};
};

/// An owned socket file descriptor, closed on destruction. Move-only.
class Socket {
 public:
  Socket() = default;
  /// Takes ownership of `fd` (-1 = invalid).
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }

  /// The raw descriptor (-1 when invalid).
  [[nodiscard]] int fd() const { return fd_; }

  /// True when this owns a live descriptor.
  [[nodiscard]] bool valid() const { return fd_ >= 0; }

  /// Closes the descriptor now (idempotent).
  void Close();

  /// shutdown(SHUT_RDWR): wakes any thread blocked in poll/recv on this
  /// socket — including in another thread — without racing the close.
  void ShutdownBoth();

  /// shutdown(SHUT_RD): wakes a blocked read with EOF while leaving the
  /// write half open, so a response already in flight still goes out (the
  /// server's drain path uses this to end idle connections without
  /// clipping the last frame).
  void ShutdownRead();

 private:
  int fd_ = -1;
};

/// Opens a non-blocking loopback listener on `port` (0 = ephemeral) with
/// SO_REUSEADDR and the given accept backlog.
[[nodiscard]] Result<Socket> Listen(uint16_t port, int backlog);

/// The port a listener actually bound (the answer when Listen got 0).
[[nodiscard]] Result<uint16_t> BoundPort(const Socket& listener);

/// Waits up to the deadline for a connection and accepts it (the accepted
/// socket is non-blocking). kDeadlineExceeded on timeout — acceptor loops
/// poll with short deadlines so they can observe shutdown.
[[nodiscard]] Result<Socket> Accept(const Socket& listener,
                                    const Deadline& deadline);

/// Connects to host:port (numeric IPv4 only, e.g. "127.0.0.1") within the
/// deadline; the socket comes back non-blocking with TCP_NODELAY set.
[[nodiscard]] Result<Socket> Connect(const std::string& host, uint16_t port,
                                     const Deadline& deadline);

/// Reads exactly `n` bytes into `*buf` (resized to `n`). kUnavailable when
/// the peer closed cleanly before the first byte; kCorruption when it
/// closed mid-read (a truncated frame); kDeadlineExceeded on timeout.
[[nodiscard]] Status ReadFull(const Socket& socket, std::string* buf, size_t n,
                              const Deadline& deadline);

/// Writes all of `data`. kUnavailable when the peer is gone;
/// kDeadlineExceeded on timeout.
[[nodiscard]] Status WriteFull(const Socket& socket, std::string_view data,
                               const Deadline& deadline);

/// Non-blocking probe: true once the peer has closed or reset the
/// connection (the disconnect-cancel path polls this while a statement of
/// the connection is in flight).
[[nodiscard]] bool PeerDisconnected(const Socket& socket);

}  // namespace xorator::server

#endif  // XORATOR_SERVER_NET_H_
