#include "server/protocol.h"

#include <cassert>
#include <string_view>

#include "common/status.h"
#include "common/varint.h"

namespace xorator::server {

namespace {

/// Appends a varint-length-prefixed string.
void AppendString(std::string* out, std::string_view s) {
  PutVarint(out, s.size());
  out->append(s);
}

/// Reads a varint-length-prefixed string, bounded by `max_bytes`.
Result<std::string> ReadString(xo::BoundedReader* reader, uint64_t max_bytes) {
  ASSIGN_OR_RETURN(std::string_view bytes, reader->ReadLengthPrefixedBytes());
  if (bytes.size() > max_bytes) {
    return Status::ParseError("string field exceeds its bound");
  }
  return std::string(bytes);
}

/// Reads a varint element count. The reader bounds it implicitly — every
/// element is at least one byte — so a hostile count can never drive a
/// larger allocation than the payload itself paid for.
Result<uint64_t> ReadCount(xo::BoundedReader* reader) {
  ASSIGN_OR_RETURN(uint64_t count, reader->ReadVarint());
  if (count > reader->remaining()) {
    return Status::ParseError("element count outruns the payload");
  }
  return count;
}

/// Decoding must consume the payload exactly: trailing bytes mean the
/// sender and receiver disagree about the shape, which is a protocol error
/// worth failing loudly on rather than silently ignoring.
Status ExpectEnd(const xo::BoundedReader& reader) {
  if (!reader.AtEnd()) {
    return Status::ParseError("trailing bytes after payload");
  }
  return Status::OK();
}

bool ValidFrameType(uint8_t type) {
  return type >= static_cast<uint8_t>(FrameType::kQuery) &&
         type <= static_cast<uint8_t>(FrameType::kStatsResult);
}

/// StatusCode values a wire error may carry. An unknown byte (a newer
/// peer, or corruption that slipped the magic check) maps to kInternal
/// rather than being trusted.
StatusCode CodeFromWire(uint8_t code) {
  if (code > static_cast<uint8_t>(StatusCode::kResourceExhausted) ||
      code == static_cast<uint8_t>(StatusCode::kOk)) {
    return StatusCode::kInternal;
  }
  return static_cast<StatusCode>(code);
}

}  // namespace

void AppendFrame(std::string* out, FrameType type, uint8_t flags,
                 std::string_view payload) {
  assert(payload.size() <= kMaxPayloadBytes);
  xo::AppendU16(out, kFrameMagic);
  out->push_back(static_cast<char>(type));
  out->push_back(static_cast<char>(flags));
  xo::AppendU32(out, static_cast<uint32_t>(payload.size()));
  out->append(payload);
}

std::string EncodeQueryRequest(FrameType type, const QueryRequest& request) {
  std::string payload;
  xo::AppendU64(&payload, request.query_id);
  xo::AppendU64(&payload, request.deadline_millis);
  xo::AppendU64(&payload, request.max_memory_bytes);
  AppendString(&payload, request.sql);
  std::string frame;
  AppendFrame(&frame, type, request.skip_quarantined ? 1 : 0, payload);
  return frame;
}

std::string EncodeCancelRequest(const CancelRequest& request) {
  std::string payload;
  xo::AppendU64(&payload, request.query_id);
  std::string frame;
  AppendFrame(&frame, FrameType::kCancel, 0, payload);
  return frame;
}

std::string EncodeStatsRequest() {
  std::string frame;
  AppendFrame(&frame, FrameType::kStats, 0, std::string_view());
  return frame;
}

Result<std::string> EncodeResult(const ResultPayload& result) {
  std::string payload;
  PutVarint(&payload, result.columns.size());
  for (const std::string& column : result.columns) {
    AppendString(&payload, column);
  }
  PutVarint(&payload, result.rows.size());
  for (const std::vector<std::string>& row : result.rows) {
    PutVarint(&payload, row.size());
    for (const std::string& value : row) {
      AppendString(&payload, value);
    }
  }
  AppendString(&payload, result.plan);
  if (payload.size() > kMaxPayloadBytes) {
    return Status::ResourceExhausted(
        "result of " + std::to_string(payload.size()) +
        " bytes exceeds the " + std::to_string(kMaxPayloadBytes) +
        "-byte frame payload cap");
  }
  std::string frame;
  AppendFrame(&frame, FrameType::kResult, 0, payload);
  return frame;
}

std::string EncodeError(const ErrorPayload& error) {
  // The message can originate anywhere in the engine at any length; clamp
  // it so an ERROR frame always fits the payload cap (the slack covers the
  // code byte, the retry-after u32, and the length varint). An unframeable
  // error reply would be rejected at the peer's header decode, turning a
  // reported failure into a protocol failure.
  constexpr size_t kMaxErrorMessageBytes = kMaxPayloadBytes - 32;
  std::string_view message = error.message;
  if (message.size() > kMaxErrorMessageBytes) {
    message = message.substr(0, kMaxErrorMessageBytes);
  }
  std::string payload;
  payload.push_back(static_cast<char>(error.code));
  xo::AppendU32(&payload, error.retry_after_millis);
  AppendString(&payload, message);
  std::string frame;
  AppendFrame(&frame, FrameType::kError, 0, payload);
  return frame;
}

std::string EncodeStats(const StatsPayload& stats) {
  // Stats rows are engine-provided; like EncodeError, keep the frame under
  // the payload cap — by dropping tail rows — rather than emitting a reply
  // the peer must reject as oversize. The slack covers the row-count
  // varint.
  std::string rows_bytes;
  size_t included = 0;
  constexpr size_t kCountSlack = 16;
  for (const auto& [name, value] : stats.rows) {
    std::string row;
    AppendString(&row, name);
    AppendString(&row, value);
    if (rows_bytes.size() + row.size() + kCountSlack > kMaxPayloadBytes) break;
    rows_bytes += row;
    ++included;
  }
  std::string payload;
  PutVarint(&payload, included);
  payload += rows_bytes;
  std::string frame;
  AppendFrame(&frame, FrameType::kStatsResult, 0, payload);
  return frame;
}

Result<FrameHeader> DecodeFrameHeader(std::string_view bytes) {
  xo::BoundedReader reader(bytes);
  ASSIGN_OR_RETURN(uint16_t magic, reader.ReadU16());
  if (magic != kFrameMagic) {
    return Status::ParseError("bad frame magic");
  }
  ASSIGN_OR_RETURN(uint8_t type, reader.ReadU8());
  if (!ValidFrameType(type)) {
    return Status::ParseError("unknown frame type " + std::to_string(type));
  }
  ASSIGN_OR_RETURN(uint8_t flags, reader.ReadU8());
  ASSIGN_OR_RETURN(uint32_t payload_bytes, reader.ReadU32());
  if (payload_bytes > kMaxPayloadBytes) {
    return Status::ParseError("frame payload of " +
                              std::to_string(payload_bytes) +
                              " bytes exceeds the " +
                              std::to_string(kMaxPayloadBytes) + "-byte cap");
  }
  FrameHeader header;
  header.type = static_cast<FrameType>(type);
  header.flags = flags;
  header.payload_bytes = payload_bytes;
  return header;
}

Result<QueryRequest> DecodeQueryRequest(std::string_view payload,
                                        uint8_t flags) {
  xo::BoundedReader reader(payload);
  QueryRequest request;
  ASSIGN_OR_RETURN(request.query_id, reader.ReadU64());
  ASSIGN_OR_RETURN(request.deadline_millis, reader.ReadU64());
  ASSIGN_OR_RETURN(request.max_memory_bytes, reader.ReadU64());
  ASSIGN_OR_RETURN(request.sql, ReadString(&reader, kMaxSqlBytes));
  request.skip_quarantined = (flags & 1) != 0;
  RETURN_IF_ERROR(ExpectEnd(reader));
  return request;
}

Result<CancelRequest> DecodeCancelRequest(std::string_view payload) {
  xo::BoundedReader reader(payload);
  CancelRequest request;
  ASSIGN_OR_RETURN(request.query_id, reader.ReadU64());
  RETURN_IF_ERROR(ExpectEnd(reader));
  return request;
}

Result<ResultPayload> DecodeResult(std::string_view payload) {
  xo::BoundedReader reader(payload);
  ResultPayload result;
  ASSIGN_OR_RETURN(uint64_t columns, ReadCount(&reader));
  result.columns.reserve(static_cast<size_t>(columns));
  for (uint64_t c = 0; c < columns; ++c) {
    ASSIGN_OR_RETURN(std::string column, ReadString(&reader, kMaxPayloadBytes));
    result.columns.push_back(std::move(column));
  }
  ASSIGN_OR_RETURN(uint64_t rows, ReadCount(&reader));
  result.rows.reserve(static_cast<size_t>(rows));
  for (uint64_t r = 0; r < rows; ++r) {
    ASSIGN_OR_RETURN(uint64_t values, ReadCount(&reader));
    std::vector<std::string> row;
    row.reserve(static_cast<size_t>(values));
    for (uint64_t v = 0; v < values; ++v) {
      ASSIGN_OR_RETURN(std::string value, ReadString(&reader, kMaxPayloadBytes));
      row.push_back(std::move(value));
    }
    result.rows.push_back(std::move(row));
  }
  ASSIGN_OR_RETURN(result.plan, ReadString(&reader, kMaxPayloadBytes));
  RETURN_IF_ERROR(ExpectEnd(reader));
  return result;
}

Result<ErrorPayload> DecodeError(std::string_view payload) {
  xo::BoundedReader reader(payload);
  ErrorPayload error;
  ASSIGN_OR_RETURN(error.code, reader.ReadU8());
  ASSIGN_OR_RETURN(error.retry_after_millis, reader.ReadU32());
  ASSIGN_OR_RETURN(error.message, ReadString(&reader, kMaxPayloadBytes));
  RETURN_IF_ERROR(ExpectEnd(reader));
  return error;
}

Result<StatsPayload> DecodeStats(std::string_view payload) {
  xo::BoundedReader reader(payload);
  StatsPayload stats;
  ASSIGN_OR_RETURN(uint64_t rows, ReadCount(&reader));
  stats.rows.reserve(static_cast<size_t>(rows));
  for (uint64_t r = 0; r < rows; ++r) {
    ASSIGN_OR_RETURN(std::string name, ReadString(&reader, kMaxPayloadBytes));
    ASSIGN_OR_RETURN(std::string value, ReadString(&reader, kMaxPayloadBytes));
    stats.rows.emplace_back(std::move(name), std::move(value));
  }
  RETURN_IF_ERROR(ExpectEnd(reader));
  return stats;
}

Status StatusFromError(const ErrorPayload& error) {
  Status status(CodeFromWire(error.code), error.message);
  if (error.retry_after_millis > 0) {
    return std::move(status).WithRetryAfter(error.retry_after_millis);
  }
  return status;
}

ErrorPayload ErrorFromStatus(const Status& status) {
  ErrorPayload error;
  error.code = static_cast<uint8_t>(status.code());
  error.retry_after_millis = status.retry_after_millis();
  error.message = status.message();
  return error;
}

}  // namespace xorator::server

