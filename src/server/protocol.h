#ifndef XORATOR_SERVER_PROTOCOL_H_
#define XORATOR_SERVER_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/span.h"

namespace xorator::server {

/// The xorator wire protocol (DESIGN.md section 17): length-prefixed binary
/// frames over a byte stream. Every frame is
///
///   magic    u16   0x584F ("XO", little-endian on the wire)
///   type     u8    FrameType below
///   flags    u8    per-type bits (REQUEST frames: bit 0 = skip_quarantined)
///   length   u32   payload byte count, <= kMaxPayloadBytes
///   payload  length bytes
///
/// followed by the type-specific payload. Fixed-width integers are
/// little-endian; strings and counts inside payloads are LEB128 varint
/// length-prefixed (the engine's tuple-codec wire shape, decoded by the
/// same checked BoundedReader).
/// Decoding is total: any byte sequence either yields a frame or a clean
/// kParseError/kCorruption — never a crash, an unbounded allocation, or an
/// out-of-bounds read (the frame_fuzz harness holds the protocol to this).
///
/// Conversation shape: a client sends one request frame and reads exactly
/// one response frame (kResult, kStatsResult, or kError) before sending the
/// next — no pipelining. CANCEL targets a statement in flight on a
/// *different* connection, identified by the client-chosen query id.
enum class FrameType : uint8_t {
  /// Request: run SQL, return columns+rows (QueryRequest payload).
  kQuery = 1,
  /// Request: run SQL for effect; kResult response carries no rows.
  kExecute = 2,
  /// Request: cancel the in-flight statement whose QueryRequest carried
  /// this client-chosen query_id (CancelRequest payload).
  kCancel = 3,
  /// Request: server + engine counters as (name, value) rows (no payload).
  kStats = 4,
  /// Response: a successful query (ResultPayload).
  kResult = 5,
  /// Response: a failure (ErrorPayload: status code, retry-after, message).
  kError = 6,
  /// Response: STATS counters (StatsPayload).
  kStatsResult = 7,
};

/// Upper bound on a frame payload. Oversize lengths are rejected at header
/// decode, before any allocation — a hostile length can never balloon
/// server memory.
inline constexpr uint32_t kMaxPayloadBytes = 4u * 1024 * 1024;

/// Upper bound on the SQL text inside a request (well under the payload cap
/// so the rest of the request always fits).
inline constexpr uint32_t kMaxSqlBytes = 1u * 1024 * 1024;

/// Encoded size of the fixed frame header.
inline constexpr size_t kFrameHeaderBytes = 8;

/// The frame magic ("XO").
inline constexpr uint16_t kFrameMagic = 0x584F;

/// Decoded frame header.
struct FrameHeader {
  FrameType type = FrameType::kQuery;
  uint8_t flags = 0;
  uint32_t payload_bytes = 0;
};

/// QUERY / EXECUTE request: the statement plus its resource envelope,
/// mapped by the server onto ordb::QueryOptions (deadline measured from
/// admission, so queue wait counts against it — DESIGN.md section 17).
struct QueryRequest {
  /// Client-chosen cancellation identity (0 = not remotely cancellable by
  /// id; the server still cancels on disconnect).
  uint64_t query_id = 0;
  /// Wall-clock budget in ms from admission; 0 = none.
  uint64_t deadline_millis = 0;
  /// Tracked-memory budget in bytes; 0 = none.
  uint64_t max_memory_bytes = 0;
  /// Degraded-scan opt-in (QueryOptions::skip_quarantined).
  bool skip_quarantined = false;
  /// The SQL text.
  std::string sql;
};

/// CANCEL request payload.
struct CancelRequest {
  /// The query_id the target statement's QueryRequest carried.
  uint64_t query_id = 0;
};

/// kResult payload: column names plus rows of string-rendered values, and
/// the plan/stats text (EXPLAIN output, "guard:"/"resilience:" lines).
struct ResultPayload {
  std::vector<std::string> columns;
  std::vector<std::vector<std::string>> rows;
  std::string plan;
};

/// kError payload: the Status, round-tripped losslessly enough for the
/// client's backoff layer — code, retry-after hint, and full message (the
/// read-only health latch's state+detail+hint text included).
struct ErrorPayload {
  uint8_t code = 0;
  uint32_t retry_after_millis = 0;
  std::string message;
};

/// kStatsResult payload: ordered (name, value) counter rows.
struct StatsPayload {
  std::vector<std::pair<std::string, std::string>> rows;
};

/// Appends a complete frame (header + payload) to `*out`.
void AppendFrame(std::string* out, FrameType type, uint8_t flags,
                 std::string_view payload);

/// Encodes a QUERY or EXECUTE request as a complete frame.
[[nodiscard]] std::string EncodeQueryRequest(FrameType type,
                                             const QueryRequest& request);

/// Encodes a CANCEL request as a complete frame.
[[nodiscard]] std::string EncodeCancelRequest(const CancelRequest& request);

/// Encodes a STATS request as a complete frame.
[[nodiscard]] std::string EncodeStatsRequest();

/// Encodes a kResult response as a complete frame. kResourceExhausted when
/// the rendered result exceeds kMaxPayloadBytes (the server turns that
/// into a clean kError response rather than an unframeable reply).
[[nodiscard]] Result<std::string> EncodeResult(const ResultPayload& result);

/// Encodes a kError response as a complete frame. `code` must fit a u8
/// (StatusCode values do). The message is truncated if it would push the
/// payload past kMaxPayloadBytes — an error response is always frameable.
[[nodiscard]] std::string EncodeError(const ErrorPayload& error);

/// Encodes a kStatsResult response as a complete frame. Rows past the
/// kMaxPayloadBytes payload cap are dropped so the response is always
/// frameable.
[[nodiscard]] std::string EncodeStats(const StatsPayload& stats);

/// Decodes the fixed header from the first kFrameHeaderBytes of `bytes`.
/// kParseError on bad magic, unknown type, or an oversize/overlong length;
/// kCorruption when fewer than kFrameHeaderBytes are given.
[[nodiscard]] Result<FrameHeader> DecodeFrameHeader(std::string_view bytes);

/// Decodes a QUERY/EXECUTE payload. `flags` is the frame header's flags
/// byte. Fails closed (kCorruption/kParseError) on truncation, trailing
/// bytes, or an oversize SQL length.
[[nodiscard]] Result<QueryRequest> DecodeQueryRequest(std::string_view payload,
                                                      uint8_t flags);

/// Decodes a CANCEL payload.
[[nodiscard]] Result<CancelRequest> DecodeCancelRequest(
    std::string_view payload);

/// Decodes a kResult payload.
[[nodiscard]] Result<ResultPayload> DecodeResult(std::string_view payload);

/// Decodes a kError payload.
[[nodiscard]] Result<ErrorPayload> DecodeError(std::string_view payload);

/// Decodes a kStatsResult payload.
[[nodiscard]] Result<StatsPayload> DecodeStats(std::string_view payload);

/// Reconstructs the Status an ErrorPayload carried: code, message, and the
/// retry-after hint, so Status::IsRetryable() answers identically on both
/// sides of the wire.
[[nodiscard]] Status StatusFromError(const ErrorPayload& error);

/// Builds the ErrorPayload for `status` (which must be non-OK; inspecting
/// it here counts as checking it).
[[nodiscard]] ErrorPayload ErrorFromStatus(const Status& status);

}  // namespace xorator::server

#endif  // XORATOR_SERVER_PROTOCOL_H_
