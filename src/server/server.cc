#include "server/server.h"

#include <utility>

#include "ordb/health.h"
#include "ordb/sql.h"

namespace xorator::server {

namespace {

/// Acceptor poll granularity: how often the accept loop wakes to check for
/// shutdown and reap finished connection threads.
constexpr int64_t kAcceptTickMillis = 50;

/// Connection-thread poll granularity while its statement is queued or
/// running: each tick re-checks completion and probes the socket for a
/// client disconnect.
constexpr int64_t kDisconnectProbeMillis = 20;

/// Shutdown drain poll granularity.
constexpr int64_t kDrainTickMillis = 20;

/// Renders a QueryResult into the wire shape (values become their display
/// strings; the examples and tests want text anyway, and it keeps the
/// protocol free of the engine's type system).
ResultPayload RenderResult(const ordb::QueryResult& result) {
  ResultPayload payload;
  payload.columns = result.columns;
  payload.rows.reserve(result.rows.size());
  for (const ordb::Tuple& row : result.rows) {
    std::vector<std::string> rendered;
    rendered.reserve(row.size());
    for (const ordb::Value& value : row) {
      rendered.push_back(value.ToString());
    }
    payload.rows.push_back(std::move(rendered));
  }
  payload.plan = result.plan;
  return payload;
}

/// Encodes the frame for `result`, downgrading an over-cap result to a
/// clean error frame.
std::string EncodeResultOrError(const ResultPayload& result) {
  Result<std::string> frame = EncodeResult(result);
  if (frame.ok()) return std::move(frame).value();
  return EncodeError(ErrorFromStatus(frame.status()));
}

}  // namespace

Server::Server(ordb::Database* db, const ServerOptions& options)
    : db_(db), options_(options) {}

Result<std::unique_ptr<Server>> Server::Start(ordb::Database* db,
                                              const ServerOptions& options) {
  // The backlog is sized past max_connections so a burst reaches the
  // acceptor (which rejects it fast with a proper error frame) instead of
  // timing out in the kernel's SYN queue.
  std::unique_ptr<Server> server(new Server(db, options));
  ASSIGN_OR_RETURN(
      server->listener_,
      Listen(options.port, static_cast<int>(options.max_connections) + 16));
  ASSIGN_OR_RETURN(server->port_, BoundPort(server->listener_));
  const size_t workers =
      options.worker_threads == 0 ? 1 : options.worker_threads;
  server->workers_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    server->workers_.emplace_back([s = server.get()] { s->WorkerLoop(); });
  }
  server->acceptor_ = std::thread([s = server.get()] { s->AcceptLoop(); });
  return server;
}

Server::~Server() { Shutdown(); }

void Server::AcceptLoop() {
  for (;;) {
    // Reap connection threads that finished on their own, so a long-lived
    // server does not accumulate dead std::thread objects. Joins happen
    // outside the lock.
    std::vector<std::unique_ptr<Connection>> finished;
    {
      xo::MutexLock lock(&mu_);
      if (draining_) break;
      for (auto it = connections_.begin(); it != connections_.end();) {
        if ((*it)->finished.load(std::memory_order_acquire)) {
          finished.push_back(std::move(*it));
          it = connections_.erase(it);
        } else {
          ++it;
        }
      }
    }
    for (const std::unique_ptr<Connection>& conn : finished) {
      conn->thread.join();
    }

    Result<Socket> accepted =
        Accept(listener_, Deadline::After(kAcceptTickMillis));
    if (!accepted.ok()) {
      // The deadline is the idle tick; any other error (the listener going
      // away under Shutdown) is re-checked against draining_ at the top.
      if (accepted.status().code() != StatusCode::kDeadlineExceeded) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(kAcceptTickMillis));
      }
      continue;
    }
    Socket socket = std::move(accepted).value();

    // Admission and thread spawn in one critical section: the thread
    // handle is only ever written here and joined by a thread that
    // acquired mu_ afterwards, so the handle itself is race-free.
    bool admit = false;
    {
      xo::MutexLock lock(&mu_);
      if (!draining_ && stats_.active_connections < options_.max_connections) {
        admit = true;
        ++stats_.connections_accepted;
        ++stats_.active_connections;
        auto conn = std::make_unique<Connection>();
        conn->socket = std::move(socket);
        Connection* raw = conn.get();
        raw->thread = std::thread([this, raw] {
          ServeConnection(raw);
          raw->finished.store(true, std::memory_order_release);
        });
        connections_.push_back(std::move(conn));
      } else {
        ++stats_.connections_rejected;
      }
    }
    if (!admit) {
      // Fast rejection: one small error frame, then close. The short
      // deadline keeps a peer that will not even read a 40-byte frame from
      // stalling the acceptor.
      const std::string frame = EncodeError(ErrorFromStatus(
          Status::ResourceExhausted("server connection limit reached")
              .WithRetryAfter(options_.retry_after_millis)));
      XO_DISCARD_STATUS(WriteFull(socket, frame, Deadline::After(100)),
                        "rejected peer may already be gone");
      continue;
    }
  }
}

void Server::ServeConnection(Connection* conn) {
  for (;;) {
    std::string header_bytes;
    // Idle reads wait indefinitely: Shutdown() wakes them by shutting the
    // socket down, which surfaces here as a failed read.
    Status read = ReadFull(conn->socket, &header_bytes, kFrameHeaderBytes,
                           Deadline::Infinite());
    if (!read.ok()) {
      // kUnavailable = clean close between frames; anything else is a
      // truncated or failed header read.
      if (read.code() != StatusCode::kUnavailable) {
        xo::MutexLock lock(&mu_);
        ++stats_.malformed_frames;
      }
      break;
    }
    Result<FrameHeader> header = DecodeFrameHeader(header_bytes);
    if (!header.ok()) {
      // A desynced byte stream cannot be re-synced; answer with the parse
      // error and close.
      {
        xo::MutexLock lock(&mu_);
        ++stats_.malformed_frames;
      }
      SendError(conn, header.status());
      break;
    }
    std::string payload;
    if (header->payload_bytes > 0) {
      read = ReadFull(conn->socket, &payload, header->payload_bytes,
                      Deadline::After(options_.io_timeout_millis));
      if (!read.ok()) {
        xo::MutexLock lock(&mu_);
        ++stats_.malformed_frames;
        break;
      }
    }

    bool keep_serving = true;
    switch (header->type) {
      case FrameType::kQuery:
      case FrameType::kExecute: {
        Result<QueryRequest> request =
            DecodeQueryRequest(payload, header->flags);
        if (!request.ok()) {
          {
            xo::MutexLock lock(&mu_);
            ++stats_.malformed_frames;
          }
          SendError(conn, request.status());
          keep_serving = false;
          break;
        }
        HandleStatement(conn, header->type, std::move(request).value());
        break;
      }
      case FrameType::kCancel: {
        Result<CancelRequest> request = DecodeCancelRequest(payload);
        if (!request.ok()) {
          {
            xo::MutexLock lock(&mu_);
            ++stats_.malformed_frames;
          }
          SendError(conn, request.status());
          keep_serving = false;
          break;
        }
        HandleCancel(conn, request.value());
        break;
      }
      case FrameType::kStats:
        HandleStats(conn);
        break;
      default: {
        // A response frame type arriving as a request.
        {
          xo::MutexLock lock(&mu_);
          ++stats_.malformed_frames;
        }
        SendError(conn,
                  Status::ParseError("response frame type sent as a request"));
        keep_serving = false;
        break;
      }
    }
    if (!keep_serving) break;
  }
  xo::MutexLock lock(&mu_);
  --stats_.active_connections;
  ++stats_.connections_closed;
}

void Server::HandleStatement(Connection* conn, FrameType type,
                             QueryRequest request) {
  // Graceful degradation: shed mutations at admission while the engine
  // cannot write. The health latch's own status rides the wire — state
  // name, latched detail, retry-after hint — so the client's backoff layer
  // can tell "retry later" from "give up".
  if (ordb::sql::ClassifyStatement(request.sql) ==
      ordb::sql::StatementClass::kMutation) {
    Status writable = db_->health()->CheckWritable();
    if (!writable.ok()) {
      {
        xo::MutexLock lock(&mu_);
        ++stats_.statements_shed_readonly;
      }
      SendError(conn, writable);
      return;
    }
  }

  auto task = std::make_shared<Task>();
  task->type = type;
  task->request = std::move(request);

  Status rejection = Status::OK();
  {
    xo::MutexLock lock(&mu_);
    if (draining_) {
      ++stats_.statements_rejected_draining;
      rejection = Status::Unavailable("server is shutting down");
    } else if (queue_.size() >= options_.max_queue_depth) {
      // Admission control: reject fast instead of queuing into collapse.
      ++stats_.statements_rejected_queue;
      rejection =
          Status::ResourceExhausted("statement queue full (" +
                                    std::to_string(options_.max_queue_depth) +
                                    " statements queued)")
              .WithRetryAfter(options_.retry_after_millis);
    } else {
      task->server_query_id = next_server_query_id_++;
      task->admitted_at = std::chrono::steady_clock::now();
      ++stats_.statements_admitted;
      ++in_flight_;
      queue_.push_back(task);
      stats_.queue_depth = queue_.size();
      if (stats_.queue_depth > stats_.peak_queue_depth) {
        stats_.peak_queue_depth = stats_.queue_depth;
      }
      tasks_[task->server_query_id] = task;
      if (task->request.query_id != 0) {
        by_client_id_[task->request.query_id] = task;
      }
      work_cv_.Signal();
    }
  }
  if (!rejection.ok()) {
    SendError(conn, rejection);
    return;
  }

  // Wait for the worker, watching the socket: a client that disconnects
  // mid-query gets its statement cancelled instead of burning a worker for
  // nobody.
  bool probe_disconnect = true;
  for (;;) {
    bool fire_cancel = false;
    {
      xo::MutexLock lock(&mu_);
      if (task->done) break;
      if (probe_disconnect && !task->cancel_requested &&
          PeerDisconnected(conn->socket)) {
        task->cancel_requested = true;
        task->abandoned = true;
        probe_disconnect = false;
        fire_cancel = true;
        ++stats_.cancelled_on_disconnect;
      }
      if (!fire_cancel) {
        // Wake on the completion broadcast or the next disconnect probe
        // tick; spurious wakeups just re-run the checks.
        done_cv_.WaitFor(&mu_, kDisconnectProbeMillis);
        continue;
      }
    }
    // Engine call outside the server lock (class comment). Cancel only
    // touches the engine's leaf guard registry and never blocks; NotFound
    // means the task is still queued (the worker honors cancel_requested
    // at pickup) or already finished.
    Status cancelled = db_->Cancel(task->server_query_id);
    cancelled.IgnoreError();
  }

  std::string response;
  bool abandoned;
  {
    xo::MutexLock lock(&mu_);
    response = std::move(task->response);
    abandoned = task->abandoned || response.empty();
  }
  if (!abandoned) {
    SendFrame(conn, response);
  }
}

void Server::HandleCancel(Connection* conn, const CancelRequest& request) {
  uint64_t server_id = 0;
  {
    xo::MutexLock lock(&mu_);
    auto it = by_client_id_.find(request.query_id);
    if (it != by_client_id_.end()) {
      it->second->cancel_requested = true;
      server_id = it->second->server_query_id;
    }
  }
  if (server_id == 0) {
    SendError(conn, Status::NotFound("no in-flight statement with query id " +
                                     std::to_string(request.query_id)));
    return;
  }
  // Reaches the statement if it is already running; a still-queued one is
  // covered by the cancel_requested flag the worker checks at pickup.
  Status cancelled = db_->Cancel(server_id);
  cancelled.IgnoreError();
  SendFrame(conn, EncodeResultOrError(ResultPayload{}));
}

void Server::HandleStats(Connection* conn) {
  // Engine rows first (health state/detail and the containment counters —
  // the degraded-state advertisement), then the server's own counters.
  StatsPayload stats;
  stats.rows = db_->ResilienceStats();
  const ServerStats s = server_stats();
  const std::pair<const char*, uint64_t> counters[] = {
      {"server_connections_accepted", s.connections_accepted},
      {"server_connections_rejected", s.connections_rejected},
      {"server_connections_closed", s.connections_closed},
      {"server_active_connections", s.active_connections},
      {"server_statements_admitted", s.statements_admitted},
      {"server_statements_rejected_queue", s.statements_rejected_queue},
      {"server_statements_shed_readonly", s.statements_shed_readonly},
      {"server_statements_rejected_draining", s.statements_rejected_draining},
      {"server_statements_ok", s.statements_ok},
      {"server_statements_error", s.statements_error},
      {"server_cancelled_on_disconnect", s.cancelled_on_disconnect},
      {"server_malformed_frames", s.malformed_frames},
      {"server_queue_depth", s.queue_depth},
      {"server_peak_queue_depth", s.peak_queue_depth},
  };
  for (const auto& [name, value] : counters) {
    stats.rows.emplace_back(name, std::to_string(value));
  }
  SendFrame(conn, EncodeStats(stats));
}

Server::TaskOutcome Server::RunTask(Task* task) {
  // The deadline is measured from admission: queue wait counts against the
  // budget, and a statement that died in the queue is answered without
  // touching the engine — an overloaded server drains its backlog at
  // rejection speed, not service speed.
  ordb::QueryOptions query_options;
  query_options.max_memory_bytes = task->request.max_memory_bytes;
  query_options.query_id = task->server_query_id;
  query_options.skip_quarantined = task->request.skip_quarantined;
  if (task->request.deadline_millis > 0) {
    const auto waited = std::chrono::duration_cast<std::chrono::milliseconds>(
                            std::chrono::steady_clock::now() -
                            task->admitted_at)
                            .count();
    if (waited >= static_cast<int64_t>(task->request.deadline_millis)) {
      return {EncodeError(ErrorFromStatus(Status::DeadlineExceeded(
                  "deadline of " +
                  std::to_string(task->request.deadline_millis) +
                  "ms expired after " + std::to_string(waited) +
                  "ms in the admission queue"))),
              false};
    }
    query_options.deadline_millis =
        task->request.deadline_millis - static_cast<uint64_t>(waited);
  }

  if (task->type == FrameType::kExecute) {
    Status executed = db_->Execute(task->request.sql, query_options);
    if (!executed.ok()) {
      return {EncodeError(ErrorFromStatus(executed)), false};
    }
    return {EncodeResultOrError(ResultPayload{}), true};
  }
  Result<ordb::QueryResult> result =
      db_->Query(task->request.sql, query_options);
  if (!result.ok()) {
    return {EncodeError(ErrorFromStatus(result.status())), false};
  }
  return {EncodeResultOrError(RenderResult(result.value())), true};
}

void Server::WorkerLoop() {
  for (;;) {
    std::shared_ptr<Task> task;
    {
      xo::MutexLock lock(&mu_);
      while (queue_.empty() && !stopping_) {
        work_cv_.Wait(&mu_);
      }
      if (queue_.empty()) return;  // stopping_ and fully drained
      task = queue_.front();
      queue_.pop_front();
      stats_.queue_depth = queue_.size();
      task->started = true;
      if (task->cancel_requested) {
        // Cancelled (or abandoned) while queued: answer without running.
        task->response = EncodeError(ErrorFromStatus(
            Status::Cancelled("statement cancelled while queued")));
        task->done = true;
        ++stats_.statements_error;
        FinishTaskLocked(task);
        continue;
      }
    }

    TaskOutcome outcome = RunTask(task.get());

    xo::MutexLock lock(&mu_);
    if (outcome.ok) {
      ++stats_.statements_ok;
    } else {
      ++stats_.statements_error;
    }
    task->response = std::move(outcome.frame);
    task->done = true;
    FinishTaskLocked(task);
  }
}

void Server::FinishTaskLocked(const std::shared_ptr<Task>& task) {
  tasks_.erase(task->server_query_id);
  if (task->request.query_id != 0) {
    auto it = by_client_id_.find(task->request.query_id);
    if (it != by_client_id_.end() && it->second == task) {
      by_client_id_.erase(it);
    }
  }
  --in_flight_;
  done_cv_.SignalAll();
}

void Server::SendFrame(Connection* conn, std::string_view frame) {
  XO_DISCARD_STATUS(
      WriteFull(conn->socket, frame,
                Deadline::After(options_.io_timeout_millis)),
      "a peer that stopped reading forfeits its response; the read loop "
      "observes the dead socket next");
}

void Server::SendError(Connection* conn, const Status& status) {
  SendFrame(conn, EncodeError(ErrorFromStatus(status)));
}

void Server::Shutdown() {
  {
    xo::MutexLock lock(&mu_);
    if (shut_down_) return;
    if (draining_) {
      // Another thread is mid-shutdown; wait for it to finish.
      while (!shut_down_) {
        done_cv_.WaitFor(&mu_, kDrainTickMillis);
      }
      return;
    }
    draining_ = true;
  }

  // Stop accepting. The acceptor polls with a short tick and re-checks
  // draining_, so it exits within one tick; the listener closes after the
  // join (never while the acceptor might still poll it). When Start()
  // failed before spawning the acceptor (Listen or BoundPort failed), the
  // handle is default-constructed and there is nothing to join — joining
  // it anyway would throw inside the (noexcept) destructor.
  if (acceptor_.joinable()) acceptor_.join();
  listener_.Close();

  // Drain: let in-flight statements finish for the grace window.
  const Deadline drain = Deadline::After(options_.drain_timeout_millis);
  std::vector<uint64_t> running;
  {
    xo::MutexLock lock(&mu_);
    while (in_flight_ > 0 && !drain.Expired()) {
      done_cv_.WaitFor(&mu_, kDrainTickMillis);
    }
    // Hard timeout: cancel every straggler. Queued tasks die at pickup via
    // cancel_requested; running ones via their query guard.
    for (const auto& [id, task] : tasks_) {
      task->cancel_requested = true;
      if (task->started && !task->done) {
        running.push_back(id);
      }
    }
  }
  for (uint64_t id : running) {
    Status cancelled = db_->Cancel(id);
    cancelled.IgnoreError();
  }

  // Stop the workers. They first drain the (now fully cancelled) queue —
  // every admitted statement gets a response — then exit.
  {
    xo::MutexLock lock(&mu_);
    stopping_ = true;
    work_cv_.SignalAll();
  }
  for (std::thread& worker : workers_) {
    worker.join();
  }

  // End the connections. Read-half only: a thread blocked in its idle
  // header read wakes with EOF and exits, while a thread still sending the
  // response of a just-drained statement keeps its write half — the drain
  // guarantee would be hollow if shutdown clipped the final frame.
  std::vector<std::unique_ptr<Connection>> connections;
  {
    xo::MutexLock lock(&mu_);
    connections.swap(connections_);
  }
  for (const std::unique_ptr<Connection>& conn : connections) {
    conn->socket.ShutdownRead();
  }
  for (const std::unique_ptr<Connection>& conn : connections) {
    conn->thread.join();
  }

  xo::MutexLock lock(&mu_);
  shut_down_ = true;
  done_cv_.SignalAll();
}

ServerStats Server::server_stats() const {
  xo::MutexLock lock(&mu_);
  return stats_;
}

}  // namespace xorator::server
