#ifndef XORATOR_SERVER_SERVER_H_
#define XORATOR_SERVER_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/result.h"
#include "common/thread_annotations.h"
#include "ordb/database.h"
#include "server/net.h"
#include "server/protocol.h"

namespace xorator::server {

/// Server configuration. The defaults suit tests and the example binary;
/// production-shaped loads tune max_connections / worker_threads /
/// max_queue_depth together (queue depth bounds memory under overload,
/// worker count bounds engine concurrency).
struct ServerOptions {
  /// TCP port on 127.0.0.1 (0 = ephemeral; read the choice via port()).
  uint16_t port = 0;
  /// Admission cap on concurrent connections; excess connections get a
  /// fast kResourceExhausted + retry-after and are closed.
  size_t max_connections = 64;
  /// Worker threads executing admitted statements against the Database.
  size_t worker_threads = 4;
  /// Admission cap on queued statements (in flight = queued + running);
  /// excess statements get kResourceExhausted + retry-after.
  size_t max_queue_depth = 128;
  /// How long Shutdown() lets in-flight statements drain before
  /// cancelling them.
  int64_t drain_timeout_millis = 5000;
  /// Retry-after hint attached to admission rejections (connection cap
  /// and queue cap).
  uint32_t retry_after_millis = 25;
  /// Per-frame I/O budget: reading a request payload after its header, and
  /// writing a response. A peer that stalls longer mid-frame is dropped.
  int64_t io_timeout_millis = 10'000;
};

/// Monotonic server counters, exposed through the STATS frame (prefixed
/// `server_`) and the server_stats() test hook. Snapshot semantics: one
/// coherent copy under the server lock.
struct ServerStats {
  uint64_t connections_accepted = 0;
  /// Connections turned away at the connection cap.
  uint64_t connections_rejected = 0;
  uint64_t connections_closed = 0;
  uint64_t active_connections = 0;
  /// Statements that passed admission into the queue.
  uint64_t statements_admitted = 0;
  /// Statements rejected because the queue was at max_queue_depth.
  uint64_t statements_rejected_queue = 0;
  /// Mutations shed at admission because the engine was read-only/failed.
  uint64_t statements_shed_readonly = 0;
  /// Statements rejected because the server was draining.
  uint64_t statements_rejected_draining = 0;
  /// Admitted statements that completed OK / with an error status.
  uint64_t statements_ok = 0;
  uint64_t statements_error = 0;
  /// Admitted statements cancelled because their client disconnected.
  uint64_t cancelled_on_disconnect = 0;
  /// Frames that failed header or payload decode.
  uint64_t malformed_frames = 0;
  /// Current and high-water queue depth (queued, not yet picked up).
  uint64_t queue_depth = 0;
  uint64_t peak_queue_depth = 0;
};

/// The xorator network front end (DESIGN.md section 17): a thread-pool
/// socket server speaking the server/protocol.h frame protocol over the
/// embedded Database.
///
/// Robustness contract:
///   * Admission control — connection count and statement queue depth are
///     both bounded; excess load is rejected fast with a retryable
///     kResourceExhausted carrying a retry-after hint, so overload sheds
///     in microseconds instead of queuing into collapse.
///   * Deadline & budget propagation — frame fields become QueryOptions;
///     the deadline is measured from admission, so time spent queued
///     counts against it, and a statement whose deadline expired in the
///     queue is answered kDeadlineExceeded without touching the engine.
///   * Disconnect cancellation — every admitted statement runs under a
///     server-assigned QueryGuard id; the connection thread watches the
///     socket while its statement is in flight and fires Database::Cancel
///     the moment the client goes away.
///   * Graceful degradation — mutations are shed at admission with the
///     health latch's own status (state, detail, retry-after) while the
///     engine is read-only; STATS advertises the degraded state.
///   * Drain-then-close shutdown — Shutdown() stops accepting, lets
///     in-flight statements finish for drain_timeout_millis, then cancels
///     the stragglers and joins every thread.
///
/// Locking: one xo::Mutex at rank kServer — above kStatement, per the
/// descending-acquire rule, because connection threads call into the
/// engine. The lock is never held across an engine call (Database::Cancel,
/// which only touches the engine's leaf guard registry, included); waits
/// go through xo::CondVar.
///
/// Thread safety: Start/Shutdown/port/server_stats are safe from any
/// thread; Shutdown is idempotent.
class Server {
 public:
  /// Binds, listens, and starts the acceptor + worker threads. `db` must
  /// outlive the returned server.
  [[nodiscard]] static Result<std::unique_ptr<Server>> Start(
      ordb::Database* db, const ServerOptions& options = {});

  /// Shuts down (drain-then-close) if still running.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The bound port (the ephemeral choice when options.port was 0).
  [[nodiscard]] uint16_t port() const { return port_; }

  /// Drain-then-close shutdown; see the class comment. Idempotent.
  void Shutdown() XO_EXCLUDES(mu_);

  /// Coherent snapshot of the admission/served counters (test hook; the
  /// same numbers ride the STATS frame prefixed `server_`).
  [[nodiscard]] ServerStats server_stats() const XO_EXCLUDES(mu_);

 private:
  /// One admitted statement moving through the queue. Shared between the
  /// owning connection thread and the worker that picks it up; all fields
  /// after `admitted_at` are guarded by the server lock.
  struct Task {
    FrameType type = FrameType::kQuery;
    QueryRequest request;
    /// Server-assigned guard id (never 0): every admitted statement is
    /// cancellable regardless of the client-chosen request.query_id.
    uint64_t server_query_id = 0;
    std::chrono::steady_clock::time_point admitted_at{};

    /// Cancel was requested (CANCEL frame or client disconnect) — a worker
    /// picking the task up answers kCancelled without running it.
    bool cancel_requested = false;
    /// The client is gone; the worker still finishes (the engine call is
    /// already cancelled) but nobody sends the response.
    bool abandoned = false;
    bool started = false;
    bool done = false;
    /// Encoded response frame, set before done flips true.
    std::string response;
  };

  /// One live client connection: the socket plus the thread serving it.
  struct Connection {
    Socket socket;
    std::thread thread;
    std::atomic<bool> finished{false};
  };

  Server(ordb::Database* db, const ServerOptions& options);

  /// Acceptor loop: admits or fast-rejects connections, reaps finished
  /// connection threads.
  void AcceptLoop() XO_EXCLUDES(mu_);

  /// Per-connection loop: frame parse, admission, response.
  void ServeConnection(Connection* conn) XO_EXCLUDES(mu_);

  /// Worker loop: pops tasks, runs them against the Database, publishes
  /// responses.
  void WorkerLoop() XO_EXCLUDES(mu_);

  /// Handles one QUERY/EXECUTE frame on a connection thread: admission,
  /// queue wait with disconnect watch, response send.
  void HandleStatement(Connection* conn, FrameType type, QueryRequest request)
      XO_EXCLUDES(mu_);

  /// Handles a CANCEL frame: resolves the client-chosen id to the admitted
  /// statement and cancels it.
  void HandleCancel(Connection* conn, const CancelRequest& request)
      XO_EXCLUDES(mu_);

  /// Handles a STATS frame: engine resilience rows + server counters.
  void HandleStats(Connection* conn) XO_EXCLUDES(mu_);

  /// Result of running one task: the encoded response frame plus whether
  /// the statement succeeded (for the ok/error counters).
  struct TaskOutcome {
    std::string frame;
    bool ok = false;
  };

  /// Runs one popped task against the Database and encodes the response.
  /// Called without the server lock (the task's request fields are
  /// immutable once queued).
  [[nodiscard]] TaskOutcome RunTask(Task* task);

  /// Completion bookkeeping once a task's `done` flipped true: deregisters
  /// it, decrements in_flight_, broadcasts done_cv_.
  void FinishTaskLocked(const std::shared_ptr<Task>& task) XO_REQUIRES(mu_);

  /// Sends an encoded frame with the per-frame I/O deadline (best effort:
  /// a send failure just ends the connection).
  void SendFrame(Connection* conn, std::string_view frame);

  /// Sends an ERROR frame built from `status`.
  void SendError(Connection* conn, const Status& status);

  ordb::Database* const db_;
  const ServerOptions options_;
  uint16_t port_ = 0;
  Socket listener_;

  /// The server lock (rank kServer; see the class comment).
  mutable xo::Mutex mu_{xo::LockRank::kServer};
  /// Signalled when work arrives or the server starts draining.
  xo::CondVar work_cv_;
  /// Broadcast when any task completes (connection threads and Shutdown
  /// both wait on it).
  xo::CondVar done_cv_;

  /// Draining: no new statements, in-flight ones may finish.
  bool draining_ XO_GUARDED_BY(mu_) = false;
  /// Stopping: workers exit once the queue is empty.
  bool stopping_ XO_GUARDED_BY(mu_) = false;
  std::deque<std::shared_ptr<Task>> queue_ XO_GUARDED_BY(mu_);
  /// Queued + running statements (drain waits for this to hit zero).
  size_t in_flight_ XO_GUARDED_BY(mu_) = 0;
  uint64_t next_server_query_id_ XO_GUARDED_BY(mu_) = 1;
  /// Every queued or running task by server-assigned id — the shutdown
  /// path's cancel fan-out. Entries are removed on completion.
  std::unordered_map<uint64_t, std::shared_ptr<Task>> tasks_
      XO_GUARDED_BY(mu_);
  /// Client-chosen query_id -> the admitted task, for CANCEL frames from
  /// other connections. Entries are removed on completion.
  std::unordered_map<uint64_t, std::shared_ptr<Task>> by_client_id_
      XO_GUARDED_BY(mu_);
  ServerStats stats_ XO_GUARDED_BY(mu_);

  std::vector<std::unique_ptr<Connection>> connections_ XO_GUARDED_BY(mu_);
  std::thread acceptor_;
  std::vector<std::thread> workers_;
  /// Set once Shutdown() has fully run (threads joined).
  bool shut_down_ XO_GUARDED_BY(mu_) = false;
};

}  // namespace xorator::server

#endif  // XORATOR_SERVER_SERVER_H_
