#include "shred/loader.h"

#include "common/timer.h"
#include "shred/shredder.h"

namespace xorator::shred {

ordb::TypeId EngineType(mapping::ColumnType type) {
  switch (type) {
    case mapping::ColumnType::kInteger:
      return ordb::TypeId::kInteger;
    case mapping::ColumnType::kVarchar:
      return ordb::TypeId::kVarchar;
    case mapping::ColumnType::kXadt:
      return ordb::TypeId::kXadt;
  }
  return ordb::TypeId::kVarchar;
}

Status Loader::CreateTables() {
  for (const mapping::TableSpec& table : schema_->tables) {
    ordb::TableSchema schema;
    for (const mapping::ColumnSpec& col : table.columns) {
      schema.columns.push_back({col.name, EngineType(col.type)});
    }
    XO_RETURN_NOT_OK(db_->CreateTable(table.name, std::move(schema)));
  }
  return Status::OK();
}

Result<LoadReport> Loader::Load(const std::vector<const xml::Node*>& documents,
                                const LoadOptions& options) {
  LoadReport report;
  // Decide the XADT representation by trial-shredding sample documents both
  // ways and comparing total XADT bytes (the paper's 20% rule).
  bool schema_has_xadt = false;
  for (const mapping::TableSpec& t : schema_->tables) {
    for (const mapping::ColumnSpec& c : t.columns) {
      if (c.type == mapping::ColumnType::kXadt) schema_has_xadt = true;
    }
  }
  bool compress = options.force_compression;
  if (schema_has_xadt && !options.force_compression && !options.force_raw) {
    size_t samples = std::min(options.sample_docs, documents.size());
    uint64_t raw_bytes = 0;
    uint64_t compressed_bytes = 0;
    for (size_t pass = 0; pass < 2; ++pass) {
      Shredder shredder(schema_, /*use_compression=*/pass == 1);
      RowBatch batch;
      for (size_t d = 0; d < samples; ++d) {
        XO_RETURN_NOT_OK(shredder.Shred(*documents[d], &batch));
      }
      uint64_t bytes = 0;
      for (const auto& [table, rows] : batch) {
        for (const ordb::Tuple& row : rows) {
          for (const ordb::Value& v : row) {
            if (v.type() == ordb::TypeId::kXadt) bytes += v.AsString().size();
          }
        }
      }
      (pass == 0 ? raw_bytes : compressed_bytes) = bytes;
    }
    compress = raw_bytes > 0 &&
               static_cast<double>(compressed_bytes) <=
                   (1.0 - options.compression_threshold) *
                       static_cast<double>(raw_bytes);
  }
  report.used_compression = compress;

  Timer timer;
  // Bind the batch guard thread-locally so the per-row checkpoints inside
  // Database::BulkInsert (and any XADT scans during shredding) poll it;
  // the between-document poll below is the loader's own cadence.
  ordb::ScopedGuardBind bind(options.guard);
  Shredder shredder(schema_, compress, options.use_directory);
  for (size_t d = 0; d < documents.size(); ++d) {
    // Per-document fault isolation: one bad document (malformed structure,
    // or a storage error while inserting its rows) is recorded and skipped
    // rather than sinking the whole batch. Rows of the failed document
    // already inserted into earlier tables stay — the engine has no
    // transactions below Checkpoint() granularity.
    Timer doc_timer;
    Status doc_status;
    if (options.guard != nullptr) doc_status = options.guard->CheckPoint();
    RowBatch batch;
    if (doc_status.ok()) doc_status = shredder.Shred(*documents[d], &batch);
    if (doc_status.ok()) {
      for (auto& [table, rows] : batch) {
        doc_status = db_->BulkInsert(table, rows);
        if (!doc_status.ok()) break;
        report.tuples += rows.size();
      }
    }
    report.doc_millis.push_back(doc_timer.ElapsedMillis());
    if (!doc_status.ok()) {
      if (ordb::QueryGuard::IsStopCode(doc_status.code())) {
        // A guard stop is latched — every later document would fail the
        // same way — so it ends the batch, counted apart from skips.
        report.stopped_code = doc_status.code();
        report.stopped_message = doc_status.message();
        ++report.cancelled;
        break;
      }
      if (options.stop_on_error) return doc_status;
      ++report.skipped;
      report.errors.push_back({d, std::move(doc_status)});
      continue;
    }
    ++report.documents;
  }
  report.load_millis = timer.ElapsedMillis();
  return report;
}

}  // namespace xorator::shred
