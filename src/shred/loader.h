#ifndef XORATOR_SHRED_LOADER_H_
#define XORATOR_SHRED_LOADER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "mapping/schema.h"
#include "ordb/database.h"
#include "ordb/query_guard.h"
#include "xml/dom.h"

namespace xorator::shred {

/// Knobs for shredding documents into the mapped tables.
struct LoadOptions {
  /// Pick the XADT representation by sampling (Section 4.1): compression is
  /// used only when it saves at least `compression_threshold` on the first
  /// `sample_docs` documents. Set `force_compression`/`force_raw` to skip
  /// the sampling.
  bool force_compression = false;
  bool force_raw = false;
  double compression_threshold = 0.2;
  size_t sample_docs = 3;
  /// Store XADT values with the top-level fragment directory (Section 5
  /// metadata extension); speeds up order access at a few bytes per value.
  bool use_directory = false;
  /// Abort the batch on the first failed document instead of isolating the
  /// error and continuing with the rest (see LoadReport::errors).
  bool stop_on_error = false;
  /// Optional resource governor for the whole batch (DESIGN.md §12). The
  /// loader polls it between documents and binds it thread-locally so the
  /// per-row checkpoints inside Database::BulkInsert see it too. A guard
  /// stop is reported distinctly from per-document errors: it ends the
  /// batch and fills LoadReport::stopped_code, it is not a "skip".
  ordb::QueryGuard* guard = nullptr;
};

/// One document that failed to load (when LoadOptions::stop_on_error is
/// off, the failure is recorded here instead of aborting the batch).
struct LoadError {
  /// Index of the document in the batch passed to Load.
  size_t document = 0;
  Status status;
};

/// What a Load() call actually did (rows, bytes, XADT choices).
struct LoadReport {
  bool used_compression = false;
  uint64_t documents = 0;
  uint64_t tuples = 0;
  /// Documents that failed to shred or insert and were skipped. Counts only
  /// genuine per-document faults (malformed structure, storage errors) —
  /// never guard stops, which end the batch and land in `cancelled`.
  uint64_t skipped = 0;
  std::vector<LoadError> errors;
  /// Documents abandoned because the batch guard tripped (0 or 1: a guard
  /// stop is latched, so the batch ends at the first one). Documents after
  /// the stop were never attempted and appear in no counter.
  uint64_t cancelled = 0;
  /// Why the guard stopped the batch (kCancelled, kDeadlineExceeded or
  /// kResourceExhausted), or kOk when it ran to completion. Kept as raw
  /// code + message rather than a Status so an unread report never trips
  /// the unchecked-Status tracker.
  StatusCode stopped_code = StatusCode::kOk;
  std::string stopped_message;
  /// Wall-clock milliseconds spent shredding + inserting.
  double load_millis = 0;
  /// Per-document elapsed milliseconds (shred + insert), parallel to the
  /// batch order; documents never attempted have no entry.
  std::vector<double> doc_millis;
};

/// Creates the tables of `schema` in `db` and loads `documents` through the
/// Shredder.
///
/// Thread safety: not synchronized. Each statement-level call into the
/// database takes the statement lock itself, but a load is a multi-step
/// orchestration (create tables, then many bulk inserts), so a Loader must
/// be driven from one thread and must not overlap other writers on the
/// same database (DESIGN.md section 10).
class Loader {
 public:
  Loader(ordb::Database* db, const mapping::MappedSchema* schema)
      : db_(db), schema_(schema) {}

  /// Creates one engine table per mapped table (idempotent failure if any
  /// already exists).
  [[nodiscard]] Status CreateTables();

  /// Shreds and bulk-inserts all documents; returns load statistics.
  [[nodiscard]] Result<LoadReport> Load(const std::vector<const xml::Node*>& documents,
                          const LoadOptions& options = {});

 private:
  ordb::Database* db_;
  const mapping::MappedSchema* schema_;
};

/// Maps a mapped-schema column type onto an engine type.
ordb::TypeId EngineType(mapping::ColumnType type);

}  // namespace xorator::shred

#endif  // XORATOR_SHRED_LOADER_H_
