#ifndef XORATOR_SHRED_LOADER_H_
#define XORATOR_SHRED_LOADER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "mapping/schema.h"
#include "ordb/database.h"
#include "xml/dom.h"

namespace xorator::shred {

/// Knobs for shredding documents into the mapped tables.
struct LoadOptions {
  /// Pick the XADT representation by sampling (Section 4.1): compression is
  /// used only when it saves at least `compression_threshold` on the first
  /// `sample_docs` documents. Set `force_compression`/`force_raw` to skip
  /// the sampling.
  bool force_compression = false;
  bool force_raw = false;
  double compression_threshold = 0.2;
  size_t sample_docs = 3;
  /// Store XADT values with the top-level fragment directory (Section 5
  /// metadata extension); speeds up order access at a few bytes per value.
  bool use_directory = false;
  /// Abort the batch on the first failed document instead of isolating the
  /// error and continuing with the rest (see LoadReport::errors).
  bool stop_on_error = false;
};

/// One document that failed to load (when LoadOptions::stop_on_error is
/// off, the failure is recorded here instead of aborting the batch).
struct LoadError {
  /// Index of the document in the batch passed to Load.
  size_t document = 0;
  Status status;
};

/// What a Load() call actually did (rows, bytes, XADT choices).
struct LoadReport {
  bool used_compression = false;
  uint64_t documents = 0;
  uint64_t tuples = 0;
  /// Documents that failed to shred or insert and were skipped.
  uint64_t skipped = 0;
  std::vector<LoadError> errors;
  /// Wall-clock milliseconds spent shredding + inserting.
  double load_millis = 0;
};

/// Creates the tables of `schema` in `db` and loads `documents` through the
/// Shredder.
///
/// Thread safety: not synchronized. Each statement-level call into the
/// database takes the statement lock itself, but a load is a multi-step
/// orchestration (create tables, then many bulk inserts), so a Loader must
/// be driven from one thread and must not overlap other writers on the
/// same database (DESIGN.md section 10).
class Loader {
 public:
  Loader(ordb::Database* db, const mapping::MappedSchema* schema)
      : db_(db), schema_(schema) {}

  /// Creates one engine table per mapped table (idempotent failure if any
  /// already exists).
  [[nodiscard]] Status CreateTables();

  /// Shreds and bulk-inserts all documents; returns load statistics.
  [[nodiscard]] Result<LoadReport> Load(const std::vector<const xml::Node*>& documents,
                          const LoadOptions& options = {});

 private:
  ordb::Database* db_;
  const mapping::MappedSchema* schema_;
};

/// Maps a mapped-schema column type onto an engine type.
ordb::TypeId EngineType(mapping::ColumnType type);

}  // namespace xorator::shred

#endif  // XORATOR_SHRED_LOADER_H_
