#include "shred/reconstruct.h"

#include <algorithm>

#include "common/str_util.h"
#include "xadt/xadt.h"

namespace xorator::shred {

namespace {

using mapping::ColumnRole;
using mapping::ColumnSpec;
using mapping::TableSpec;
using ordb::Tuple;
using ordb::Value;

std::string PathKey(const std::vector<std::string>& path) {
  return Join(path, "/");
}

/// Index of the column with the given role/path/attr, or -1.
int FindColumn(const TableSpec& spec, ColumnRole role,
               const std::string& path_key, const std::string& attr) {
  for (size_t i = 0; i < spec.columns.size(); ++i) {
    const ColumnSpec& col = spec.columns[i];
    if (col.role != role) continue;
    if (PathKey(col.path) != path_key) continue;
    if (role == ColumnRole::kInlinedAttr && col.attr != attr) continue;
    return static_cast<int>(i);
  }
  return -1;
}

/// True if any populated column sits at or below `path_key`.
bool AnyColumnPopulated(const TableSpec& spec, const Tuple& row,
                        const std::string& path_key) {
  for (size_t i = 0; i < spec.columns.size(); ++i) {
    const ColumnSpec& col = spec.columns[i];
    if (col.role != ColumnRole::kInlinedValue &&
        col.role != ColumnRole::kInlinedAttr &&
        col.role != ColumnRole::kXadtFragment) {
      continue;
    }
    std::string key = PathKey(col.path);
    if (key != path_key &&
        key.compare(0, path_key.size() + 1, path_key + "/") != 0) {
      continue;
    }
    if (!row[i].is_null()) return true;
  }
  return false;
}

}  // namespace

Status Reconstructor::LoadTables() {
  tables_.clear();
  for (const TableSpec& spec : schema_->tables) {
    LoadedTable table;
    table.spec = &spec;
    table.id_col = spec.RoleIndex(ColumnRole::kId);
    table.parent_col = spec.RoleIndex(ColumnRole::kParentId);
    table.code_col = spec.RoleIndex(ColumnRole::kParentCode);
    table.order_col = spec.RoleIndex(ColumnRole::kChildOrder);
    const ordb::TableInfo* info = db_->catalog()->FindTable(spec.name);
    if (info == nullptr) {
      return Status::NotFound("table '" + spec.name + "' is not loaded");
    }
    ordb::HeapFile::Scanner scanner = info->heap->Scan();
    ordb::Rid rid;
    std::string record;
    while (true) {
      XO_ASSIGN_OR_RETURN(bool ok, scanner.Next(&rid, &record));
      if (!ok) break;
      XO_ASSIGN_OR_RETURN(Tuple row, ordb::DecodeTuple(info->schema, record));
      table.rows.push_back(std::move(row));
    }
    tables_.emplace(spec.element, std::move(table));
  }
  // Group children by parent and sort by childOrder.
  for (auto& [element, table] : tables_) {
    if (table.parent_col < 0) continue;
    for (const Tuple& row : table.rows) {
      std::string code = table.code_col >= 0 && !row[table.code_col].is_null()
                             ? row[table.code_col].AsString()
                             : "";
      int64_t parent = row[table.parent_col].is_null()
                           ? -1
                           : row[table.parent_col].AsInt();
      table.by_parent[{code, parent}].push_back(&row);
    }
    for (auto& [key, rows] : table.by_parent) {
      std::stable_sort(rows.begin(), rows.end(),
                       [&](const Tuple* a, const Tuple* b) {
                         if (table.order_col < 0) return false;
                         return (*a)[table.order_col].AsInt() <
                                (*b)[table.order_col].AsInt();
                       });
    }
  }
  return Status::OK();
}

Status Reconstructor::BuildInlined(const LoadedTable& table, const Tuple& row,
                                   const std::string& child_name,
                                   const std::vector<std::string>& path,
                                   dtdgraph::Occurrence occurrence,
                                   xml::Node* parent) {
  const TableSpec& spec = *table.spec;
  std::string key = PathKey(path);

  // An XADT column stores the child element(s) verbatim.
  int xadt_col = FindColumn(spec, ColumnRole::kXadtFragment, key, "");
  if (xadt_col >= 0) {
    if (row[xadt_col].is_null()) return Status::OK();
    XO_ASSIGN_OR_RETURN(auto fragment, xadt::Decode(row[xadt_col].AsString()));
    for (const auto& child : fragment->children()) {
      parent->AddChild(child->Clone());
    }
    return Status::OK();
  }

  const dtdgraph::SimplifiedElement* decl = dtd_->Find(child_name);
  if (decl == nullptr) {
    return Status::NotFound("element '" + child_name + "' not in DTD");
  }
  int value_col = FindColumn(spec, ColumnRole::kInlinedValue, key, "");
  bool mandatory = occurrence == dtdgraph::Occurrence::kOne;
  if (!mandatory && !AnyColumnPopulated(spec, row, key)) {
    return Status::OK();
  }
  auto elem = xml::Node::Element(child_name);
  for (const std::string& attr : decl->attributes) {
    int attr_col = FindColumn(spec, ColumnRole::kInlinedAttr, key, attr);
    if (attr_col >= 0 && !row[attr_col].is_null()) {
      elem->AddAttribute(attr, row[attr_col].AsString());
    }
  }
  if (value_col >= 0 && !row[value_col].is_null() &&
      !row[value_col].AsString().empty()) {
    elem->AddChild(xml::Node::Text(row[value_col].AsString()));
  }
  xml::Node* raw = parent->AddChild(std::move(elem));
  // Deeper inlined descendants (Hybrid's path-prefixed columns).
  for (const dtdgraph::ChildSpec& grand : decl->children) {
    if (schema_->IsRelationElement(grand.name)) {
      // A relation child of an inlined element: its tuples point at the
      // hosting relation's id (rare; recursive DTD shapes).
      continue;
    }
    std::vector<std::string> sub_path = path;
    sub_path.push_back(grand.name);
    XO_RETURN_NOT_OK(
        BuildInlined(table, row, grand.name, sub_path, grand.occurrence, raw));
  }
  return Status::OK();
}

Result<std::unique_ptr<xml::Node>> Reconstructor::BuildElement(
    const LoadedTable& table, const Tuple& row) {
  const TableSpec& spec = *table.spec;
  const dtdgraph::SimplifiedElement* decl = dtd_->Find(spec.element);
  if (decl == nullptr) {
    return Status::NotFound("element '" + spec.element + "' not in DTD");
  }
  auto elem = xml::Node::Element(spec.element);
  // Attributes of the relation element itself (empty path).
  for (const std::string& attr : decl->attributes) {
    int attr_col = FindColumn(spec, ColumnRole::kInlinedAttr, "", attr);
    if (attr_col >= 0 && !row[attr_col].is_null()) {
      elem->AddAttribute(attr, row[attr_col].AsString());
    }
  }
  // PCDATA of the element itself.
  int value_col = spec.RoleIndex(ColumnRole::kValue);
  if (value_col >= 0 && !row[value_col].is_null() &&
      !row[value_col].AsString().empty()) {
    elem->AddChild(xml::Node::Text(row[value_col].AsString()));
  }
  int64_t id = row[table.id_col].AsInt();
  for (const dtdgraph::ChildSpec& child : decl->children) {
    if (schema_->IsRelationElement(child.name)) {
      auto child_table = tables_.find(child.name);
      if (child_table == tables_.end()) continue;
      const LoadedTable& ct = child_table->second;
      // Child rows point back via (parentCODE?, parentID).
      std::string code =
          ct.code_col >= 0 ? spec.element : "";
      auto rows = ct.by_parent.find({code, id});
      if (rows == ct.by_parent.end()) continue;
      for (const Tuple* child_row : rows->second) {
        XO_ASSIGN_OR_RETURN(auto child_elem, BuildElement(ct, *child_row));
        elem->AddChild(std::move(child_elem));
      }
      continue;
    }
    XO_RETURN_NOT_OK(BuildInlined(table, row, child.name, {child.name},
                                  child.occurrence, elem.get()));
  }
  return elem;
}

Result<std::vector<std::unique_ptr<xml::Node>>>
Reconstructor::ReconstructAll() {
  XO_RETURN_NOT_OK(LoadTables());
  // Roots: relation elements whose tables have no parentID column.
  std::vector<std::unique_ptr<xml::Node>> out;
  for (const TableSpec& spec : schema_->tables) {
    const LoadedTable& table = tables_.at(spec.element);
    if (table.parent_col >= 0) continue;
    std::vector<const Tuple*> roots;
    for (const Tuple& row : table.rows) roots.push_back(&row);
    std::stable_sort(roots.begin(), roots.end(),
                     [&](const Tuple* a, const Tuple* b) {
                       return (*a)[table.id_col].AsInt() <
                              (*b)[table.id_col].AsInt();
                     });
    for (const Tuple* row : roots) {
      XO_ASSIGN_OR_RETURN(auto doc, BuildElement(table, *row));
      out.push_back(std::move(doc));
    }
  }
  return out;
}

bool EquivalentModuloInterleave(const xml::Node& a, const xml::Node& b) {
  if (a.name() != b.name()) return false;
  if (a.attributes().size() != b.attributes().size()) return false;
  for (const xml::Attribute& attr : a.attributes()) {
    const std::string* other = b.FindAttribute(attr.name);
    if (other == nullptr || *other != attr.value) return false;
  }
  // Direct text, whitespace-insensitively concatenated.
  auto direct_text = [](const xml::Node& n) {
    std::string out;
    for (const auto& c : n.children()) {
      if (c->is_text()) out += c->text();
    }
    return std::string(StripWhitespace(out));
  };
  if (direct_text(a) != direct_text(b)) return false;
  // Per-tag child sequences.
  std::map<std::string, std::vector<const xml::Node*>> a_children;
  std::map<std::string, std::vector<const xml::Node*>> b_children;
  for (const xml::Node* c : a.ChildElements()) {
    a_children[c->name()].push_back(c);
  }
  for (const xml::Node* c : b.ChildElements()) {
    b_children[c->name()].push_back(c);
  }
  if (a_children.size() != b_children.size()) return false;
  for (const auto& [tag, seq] : a_children) {
    auto other = b_children.find(tag);
    if (other == b_children.end() || other->second.size() != seq.size()) {
      return false;
    }
    for (size_t i = 0; i < seq.size(); ++i) {
      if (!EquivalentModuloInterleave(*seq[i], *other->second[i])) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace xorator::shred
