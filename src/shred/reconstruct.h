#ifndef XORATOR_SHRED_RECONSTRUCT_H_
#define XORATOR_SHRED_RECONSTRUCT_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "dtdgraph/simplify.h"
#include "mapping/schema.h"
#include "ordb/database.h"
#include "xml/dom.h"

namespace xorator::shred {

/// Rebuilds XML documents from a database previously loaded through the
/// Loader — the reverse direction of shredding ("publishing" relational
/// data back as XML, which the paper delegates to systems like XPERANTO).
///
/// Works for any of the mapping algorithms. Fidelity:
///   * XADT fragments round-trip exactly (order, text, attributes);
///   * relation and inlined content is re-assembled in simplified-DTD
///     order, with same-tag sibling order restored from childOrder;
///   * the relative interleaving of *different* tags under one parent is
///     not stored by the inlining mappings (childOrder is per tag, exactly
///     the information QS6 relies on), so documents with choice/mixed
///     content models round-trip modulo that interleaving. DTDs whose
///     content models are plain sequences (e.g. the SIGMOD Proceedings
///     DTD) round-trip exactly.
class Reconstructor {
 public:
  Reconstructor(ordb::Database* db, const mapping::MappedSchema* schema,
                const dtdgraph::SimplifiedDtd* dtd)
      : db_(db), schema_(schema), dtd_(dtd) {}

  /// Scans every table once and rebuilds all documents, ordered by the
  /// root tuple id.
  [[nodiscard]] Result<std::vector<std::unique_ptr<xml::Node>>> ReconstructAll();

 private:
  struct LoadedTable {
    const mapping::TableSpec* spec = nullptr;
    int id_col = -1;
    int parent_col = -1;
    int code_col = -1;
    int order_col = -1;
    std::vector<ordb::Tuple> rows;
    /// Rows grouped by (parentCODE, parentID), pre-sorted by childOrder.
    std::map<std::pair<std::string, int64_t>, std::vector<const ordb::Tuple*>>
        by_parent;
  };

  [[nodiscard]] Status LoadTables();
  [[nodiscard]] Result<std::unique_ptr<xml::Node>> BuildElement(const LoadedTable& table,
                                                  const ordb::Tuple& row);
  /// Reconstructs the inlined (non-relation) child `child_name` of `row`,
  /// appending to `parent` when any of its columns are populated or its
  /// occurrence is mandatory.
  [[nodiscard]] Status BuildInlined(const LoadedTable& table, const ordb::Tuple& row,
                      const std::string& child_name,
                      const std::vector<std::string>& path,
                      dtdgraph::Occurrence occurrence, xml::Node* parent);

  ordb::Database* db_;
  const mapping::MappedSchema* schema_;
  const dtdgraph::SimplifiedDtd* dtd_;
  std::map<std::string, LoadedTable> tables_;  // by element name
};

/// Structural equivalence modulo the interleaving the inlining mappings
/// cannot store: two elements are equivalent iff they have the same name,
/// the same attributes, the same direct text, and for every tag the same
/// ordered sequence of equivalent same-tag children. Exposed for tests.
bool EquivalentModuloInterleave(const xml::Node& a, const xml::Node& b);

}  // namespace xorator::shred

#endif  // XORATOR_SHRED_RECONSTRUCT_H_
