#include "shred/shredder.h"

#include "common/str_util.h"
#include "xadt/xadt.h"

namespace xorator::shred {

namespace {

using mapping::ColumnRole;
using mapping::ColumnSpec;
using mapping::TableSpec;
using ordb::Tuple;
using ordb::Value;

std::string PathKey(const std::vector<std::string>& path) {
  return Join(path, "/");
}

// Concatenation of the direct text children only (excludes text nested in
// sub-elements, which belongs to their own columns/fragments).
std::string DirectText(const xml::Node& elem) {
  std::string out;
  for (const auto& c : elem.children()) {
    if (c->is_text()) out += c->text();
  }
  return out;
}

}  // namespace

Shredder::Shredder(const mapping::MappedSchema* schema, bool use_compression,
                   bool use_directory)
    : schema_(schema),
      use_compression_(use_compression),
      use_directory_(use_directory) {
  for (const TableSpec& table : schema_->tables) {
    TablePlan plan;
    plan.spec = &table;
    for (size_t i = 0; i < table.columns.size(); ++i) {
      const ColumnSpec& col = table.columns[i];
      int idx = static_cast<int>(i);
      switch (col.role) {
        case ColumnRole::kId:
          plan.id_col = idx;
          break;
        case ColumnRole::kParentId:
          plan.parent_col = idx;
          break;
        case ColumnRole::kParentCode:
          plan.code_col = idx;
          break;
        case ColumnRole::kChildOrder:
          plan.order_col = idx;
          break;
        case ColumnRole::kValue:
          plan.value_col = idx;
          break;
        case ColumnRole::kInlinedValue:
          plan.inlined_value_cols[PathKey(col.path)] = idx;
          break;
        case ColumnRole::kInlinedAttr:
          plan.attr_cols[PathKey(col.path) + "@" + col.attr] = idx;
          break;
        case ColumnRole::kXadtFragment:
          plan.xadt_cols[PathKey(col.path)] = idx;
          break;
      }
    }
    plans_[table.name] = std::move(plan);
  }
  for (auto& [name, plan] : plans_) {
    by_element_[plan.spec->element] = &plan;
    next_id_[name] = 1;
  }
}

int64_t Shredder::NextId(const std::string& table) const {
  auto it = next_id_.find(table);
  return it == next_id_.end() ? 1 : it->second;
}

Status Shredder::Shred(const xml::Node& root, RowBatch* out) {
  if (!root.is_element()) {
    return Status::InvalidArgument("document root must be an element");
  }
  auto it = by_element_.find(root.name());
  if (it == by_element_.end()) {
    return Status::InvalidArgument("root element '" + root.name() +
                                   "' is not mapped to a relation");
  }
  return VisitRelation(root, nullptr, 0, 1, out);
}

Status Shredder::VisitRelation(const xml::Node& elem,
                               const TablePlan* parent_plan, int64_t parent_id,
                               int64_t child_order, RowBatch* out) {
  auto it = by_element_.find(elem.name());
  if (it == by_element_.end()) {
    return Status::Internal("element '" + elem.name() +
                            "' has no relation plan");
  }
  const TablePlan& plan = *it->second;
  const TableSpec& spec = *plan.spec;

  Tuple tuple(spec.columns.size(), Value::Null());
  int64_t id = next_id_[spec.name]++;
  tuple[plan.id_col] = Value::Int(id);
  if (plan.parent_col >= 0 && parent_plan != nullptr) {
    tuple[plan.parent_col] = Value::Int(parent_id);
  }
  if (plan.code_col >= 0 && parent_plan != nullptr) {
    tuple[plan.code_col] = Value::Varchar(parent_plan->spec->element);
  }
  if (plan.order_col >= 0) {
    tuple[plan.order_col] = Value::Int(child_order);
  }
  if (plan.value_col >= 0) {
    std::string text = DirectText(elem);
    if (!text.empty()) tuple[plan.value_col] = Value::Varchar(std::move(text));
  }
  // Attributes of the relation element itself (empty path).
  for (const xml::Attribute& attr : elem.attributes()) {
    auto col = plan.attr_cols.find("@" + attr.name);
    if (col != plan.attr_cols.end()) {
      tuple[col->second] = Value::Varchar(attr.value);
    }
  }

  std::map<int, std::vector<const xml::Node*>> fragments;
  XO_RETURN_NOT_OK(
      WalkInlined(elem, plan, "", &tuple, &fragments, id, out));

  for (auto& [col, nodes] : fragments) {
    tuple[col] = Value::Xadt(
        use_directory_ ? xadt::EncodeWithDirectory(nodes, use_compression_)
                       : xadt::Encode(nodes, use_compression_));
  }
  (*out)[spec.name].push_back(std::move(tuple));
  return Status::OK();
}

Status Shredder::WalkInlined(
    const xml::Node& node, const TablePlan& plan, const std::string& path,
    Tuple* tuple, std::map<int, std::vector<const xml::Node*>>* fragments,
    int64_t tuple_id, RowBatch* out) {
  std::map<std::string, int64_t> sibling_count;
  for (const auto& child : node.children()) {
    if (!child->is_element()) continue;
    const xml::Node& c = *child;
    int64_t order = ++sibling_count[c.name()];
    if (schema_->IsRelationElement(c.name())) {
      XO_RETURN_NOT_OK(VisitRelation(c, &plan, tuple_id, order, out));
      continue;
    }
    std::string key = path.empty() ? c.name() : path + "/" + c.name();
    auto xadt_col = plan.xadt_cols.find(key);
    if (xadt_col != plan.xadt_cols.end()) {
      (*fragments)[xadt_col->second].push_back(&c);
      continue;
    }
    bool known = false;
    auto value_col = plan.inlined_value_cols.find(key);
    if (value_col != plan.inlined_value_cols.end()) {
      known = true;
      if ((*tuple)[value_col->second].is_null()) {
        (*tuple)[value_col->second] = Value::Varchar(DirectText(c));
      }
    }
    for (const xml::Attribute& attr : c.attributes()) {
      auto attr_col = plan.attr_cols.find(key + "@" + attr.name);
      if (attr_col != plan.attr_cols.end()) {
        known = true;
        if ((*tuple)[attr_col->second].is_null()) {
          (*tuple)[attr_col->second] = Value::Varchar(attr.value);
        }
      }
    }
    // Recurse: deeper inlined descendants (Hybrid's path-prefixed columns)
    // or relation elements further down.
    bool has_element_children = false;
    for (const auto& gc : c.children()) {
      if (gc->is_element()) {
        has_element_children = true;
        break;
      }
    }
    if (has_element_children || !known) {
      XO_RETURN_NOT_OK(WalkInlined(c, plan, key, tuple, fragments, tuple_id,
                                   out));
    }
  }
  return Status::OK();
}

}  // namespace xorator::shred
