#ifndef XORATOR_SHRED_SHREDDER_H_
#define XORATOR_SHRED_SHREDDER_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "mapping/schema.h"
#include "ordb/tuple.h"
#include "xml/dom.h"

namespace xorator::shred {

/// Rows produced for one or more documents, keyed by table name.
using RowBatch = std::map<std::string, std::vector<ordb::Tuple>>;

/// Converts parsed XML documents into tuples under a mapped schema
/// (either mapping algorithm).
///
/// Surrogate ids are dense per table and persist across documents, so one
/// Shredder instance can load a whole corpus. Semantics:
///   * parentID: id of the enclosing relation tuple;
///   * parentCODE: element name of the enclosing relation's table;
///   * childOrder: 1-based position among same-tag siblings;
///   * XADT columns: all matching child fragments of the tuple's element,
///     encoded raw or compressed per `use_compression`.
class Shredder {
 public:
  /// `use_directory` switches XADT columns to the directory-prefixed
  /// representation (the paper's Section 5 metadata extension).
  Shredder(const mapping::MappedSchema* schema, bool use_compression,
           bool use_directory = false);

  /// Shreds one document rooted at `root`, appending rows to `*out`.
  /// Fails if the root element is not mapped to a relation.
  [[nodiscard]] Status Shred(const xml::Node& root, RowBatch* out);

  /// Next id that will be assigned for `table` (ids are 1-based).
  int64_t NextId(const std::string& table) const;

 private:
  struct TablePlan {
    const mapping::TableSpec* spec = nullptr;
    int id_col = -1;
    int parent_col = -1;
    int code_col = -1;
    int order_col = -1;
    int value_col = -1;
    // Keys are '/'-joined element paths below the table's element.
    std::map<std::string, int> inlined_value_cols;
    // Keys are "<path>@<attr>"; the empty path addresses the element itself.
    std::map<std::string, int> attr_cols;
    std::map<std::string, int> xadt_cols;
  };

  [[nodiscard]] Status VisitRelation(const xml::Node& elem, const TablePlan* parent_plan,
                       int64_t parent_id, int64_t child_order, RowBatch* out);

  [[nodiscard]] Status WalkInlined(const xml::Node& node, const TablePlan& plan,
                     const std::string& path, ordb::Tuple* tuple,
                     std::map<int, std::vector<const xml::Node*>>* fragments,
                     int64_t tuple_id, RowBatch* out);

  const mapping::MappedSchema* schema_;
  bool use_compression_;
  bool use_directory_;
  std::map<std::string, TablePlan> plans_;          // by table name
  std::map<std::string, const TablePlan*> by_element_;
  std::map<std::string, int64_t> next_id_;
};

}  // namespace xorator::shred

#endif  // XORATOR_SHRED_SHREDDER_H_
