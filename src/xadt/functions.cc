#include "xadt/functions.h"

#include "ordb/health.h"
#include "ordb/query_guard.h"
#include "xadt/xadt.h"

namespace xorator::xadt {

namespace {

using ordb::ScalarFunction;
using ordb::TableFunction;
using ordb::Tuple;
using ordb::TypeId;
using ordb::Value;

// Entry-point cancellation poll. UDF implementations receive only their
// marshaled arguments (no ExecContext — the UDF ABI, ordb/functions.h), so
// they consult the statement guard the Database layer binds thread-locally
// around execution (DESIGN.md §12); the fragment scanner then polls the
// same guard once per event for the duration of the scan.
Status GuardEntry() {
  ordb::QueryGuard* guard = ordb::CurrentGuard();
  return guard == nullptr ? Status::OK() : guard->CheckPoint();
}

Status ExpectXadt(const Value& v, std::string_view fn) {
  if (v.type() != TypeId::kXadt && v.type() != TypeId::kVarchar &&
      !v.is_null()) {
    return Status::InvalidArgument(std::string(fn) +
                                   ": first argument must be an XADT value");
  }
  return Status::OK();
}

Result<Value> GetElmImpl(const std::vector<Value>& args) {
  XO_RETURN_NOT_OK(GuardEntry());
  if (args.size() != 4 && args.size() != 5) {
    return Status::InvalidArgument("getElm expects 4 or 5 arguments");
  }
  XO_RETURN_NOT_OK(ExpectXadt(args[0], "getElm"));
  if (args[0].is_null()) return Value::Null();
  int level = 0;
  if (args.size() == 5 && !args[4].is_null()) {
    level = static_cast<int>(args[4].AsInt());
  }
  XO_ASSIGN_OR_RETURN(
      std::string out,
      GetElm(args[0].AsString(), args[1].AsString(), args[2].AsString(),
             args[3].AsString(), level));
  return Value::Xadt(std::move(out));
}

Result<Value> FindKeyInElmImpl(const std::vector<Value>& args) {
  XO_RETURN_NOT_OK(GuardEntry());
  XO_RETURN_NOT_OK(ExpectXadt(args[0], "findKeyInElm"));
  if (args[0].is_null()) return Value::Int(0);
  XO_ASSIGN_OR_RETURN(int64_t found,
                      FindKeyInElm(args[0].AsString(), args[1].AsString(),
                                   args[2].AsString()));
  return Value::Int(found);
}

Result<Value> GetElmIndexImpl(const std::vector<Value>& args) {
  XO_RETURN_NOT_OK(GuardEntry());
  XO_RETURN_NOT_OK(ExpectXadt(args[0], "getElmIndex"));
  if (args[0].is_null()) return Value::Null();
  XO_ASSIGN_OR_RETURN(
      std::string out,
      GetElmIndex(args[0].AsString(), args[1].AsString(), args[2].AsString(),
                  static_cast<int>(args[3].AsInt()),
                  static_cast<int>(args[4].AsInt())));
  return Value::Xadt(std::move(out));
}

Result<Value> ToXmlImpl(const std::vector<Value>& args) {
  XO_RETURN_NOT_OK(GuardEntry());
  if (args[0].is_null()) return Value::Null();
  XO_ASSIGN_OR_RETURN(std::string xml, ToXmlString(args[0].AsString()));
  return Value::Varchar(std::move(xml));
}

Result<Value> TextImpl(const std::vector<Value>& args) {
  XO_RETURN_NOT_OK(GuardEntry());
  if (args[0].is_null()) return Value::Null();
  XO_ASSIGN_OR_RETURN(std::string text, TextContent(args[0].AsString()));
  return Value::Varchar(std::move(text));
}

/// True when a kCorruption/kParseError failure on one fragment should be
/// skipped (and counted) rather than fail the whole unnest — the
/// degraded-scan contract (DESIGN.md §13): a damaged XADT value loses its
/// own fragments, not the query.
bool SkipFragmentFailure(const Status& s) {
  ordb::DegradedScan* scan = ordb::CurrentDegradedScan();
  if (scan == nullptr || !scan->skip_corrupt) return false;
  if (s.code() != StatusCode::kCorruption &&
      s.code() != StatusCode::kParseError) {
    return false;
  }
  ++scan->skipped_fragments;
  return true;
}

Result<std::vector<Tuple>> UnnestImpl(const std::vector<Value>& args) {
  XO_RETURN_NOT_OK(GuardEntry());
  std::vector<Tuple> out;
  if (args[0].is_null()) return out;
  auto unnested = Unnest(args[0].AsString(), args[1].AsString());
  if (!unnested.ok()) {
    if (SkipFragmentFailure(unnested.status())) return out;
    return unnested.status();
  }
  auto fragments = std::move(unnested).value();
  out.reserve(fragments.size());
  for (std::string& frag : fragments) {
    auto text = TextContent(frag);
    if (!text.ok()) {
      if (SkipFragmentFailure(text.status())) continue;
      return text.status();
    }
    Tuple row;
    row.push_back(Value::Varchar(std::move(*text)));
    row.push_back(Value::Xadt(std::move(frag)));
    out.push_back(std::move(row));
  }
  return out;
}

}  // namespace

Status RegisterXadtFunctions(ordb::FunctionRegistry* registry) {
  auto scalar = [&](std::string name, TypeId ret, int arity,
                    std::function<Result<Value>(const std::vector<Value>&)>
                        impl) -> Status {
    ScalarFunction fn;
    fn.name = std::move(name);
    fn.return_type = ret;
    fn.arity = arity;
    fn.is_udf = true;
    fn.impl = std::move(impl);
    return registry->RegisterScalar(std::move(fn));
  };
  XO_RETURN_NOT_OK(scalar("getelm", TypeId::kXadt, -1, GetElmImpl));
  XO_RETURN_NOT_OK(
      scalar("findkeyinelm", TypeId::kInteger, 3, FindKeyInElmImpl));
  XO_RETURN_NOT_OK(scalar("getelmindex", TypeId::kXadt, 5, GetElmIndexImpl));
  XO_RETURN_NOT_OK(scalar("xadttoxml", TypeId::kVarchar, 1, ToXmlImpl));
  XO_RETURN_NOT_OK(scalar("xadttext", TypeId::kVarchar, 1, TextImpl));

  TableFunction unnest;
  unnest.name = "unnest";
  unnest.arity = 2;
  unnest.is_udf = true;
  unnest.output = {{"out", TypeId::kVarchar}, {"frag", TypeId::kXadt}};
  unnest.impl = UnnestImpl;
  XO_RETURN_NOT_OK(registry->RegisterTable(std::move(unnest)));
  return Status::OK();
}

}  // namespace xorator::xadt
