#ifndef XORATOR_XADT_FUNCTIONS_H_
#define XORATOR_XADT_FUNCTIONS_H_

#include "common/result.h"
#include "ordb/functions.h"

namespace xorator::xadt {

/// Registers the paper's XADT methods with an engine function registry:
///
///   getElm(xadt, rootElm, searchElm, searchKey [, level]) -> XADT
///   findKeyInElm(xadt, searchElm, searchKey)              -> INTEGER (0/1)
///   getElmIndex(xadt, parentElm, childElm, start, end)    -> XADT
///   xadtToXml(xadt)                                       -> VARCHAR
///   xadtText(xadt)                                        -> VARCHAR
///   table function unnest(xadt, tag) -> (out VARCHAR, frag XADT)
///
/// All are registered as UDFs (is_udf = true) and therefore pay the UDF
/// marshaling dispatch, exactly as the paper's DB2 implementation does.
[[nodiscard]] Status RegisterXadtFunctions(ordb::FunctionRegistry* registry);

}  // namespace xorator::xadt

#endif  // XORATOR_XADT_FUNCTIONS_H_
