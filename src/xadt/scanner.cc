#include "xadt/scanner.h"

#include <cctype>

#include "common/safe_math.h"
#include "common/varint.h"
#include "ordb/query_guard.h"
#include "xml/parser.h"

namespace xorator::xadt {

namespace {
constexpr char kRawMarker = 'R';
constexpr char kCompressedMarker = 'C';
constexpr char kDirectoryMarker = 'D';
constexpr uint8_t kTokStart = 0x01;
constexpr uint8_t kTokEnd = 0x02;
constexpr uint8_t kTokText = 0x03;
}  // namespace

Result<FragmentScanner> FragmentScanner::Create(std::string_view bytes) {
  FragmentScanner scanner(bytes);
  if (bytes.empty()) {
    scanner.pos_ = 0;
    scanner.content_begin_ = 0;
    return scanner;
  }
  size_t base = 0;
  if (bytes[0] == kDirectoryMarker) {
    // 'D' + varint count + count * (varint start, varint len), offsets
    // relative to the embedded payload.
    scanner.has_directory_ = true;
    size_t pos = 1;
    XO_ASSIGN_OR_RETURN(uint64_t count, GetVarint(bytes, &pos));
    // Each directory entry needs at least two bytes; reject corrupt counts
    // before reserving memory for them.
    // The directory is stored metadata, not document text, so its failures
    // are kCorruption; its offsets and lengths are attacker bytes and all
    // arithmetic on them is checked (a wrapped start+len used to rely on
    // the range checks below catching the wrapped values).
    if (count > (bytes.size() - pos) / 2) {
      return Status::Corruption("XADT directory count exceeds value size");
    }
    scanner.top_ranges_.reserve(count);
    for (uint64_t i = 0; i < count; ++i) {
      XO_ASSIGN_OR_RETURN(uint64_t start, GetVarint(bytes, &pos));
      XO_ASSIGN_OR_RETURN(uint64_t len, GetVarint(bytes, &pos));
      XO_ASSIGN_OR_RETURN(uint64_t end, xo::CheckedAdd(start, len));
      scanner.top_ranges_.emplace_back(start, end);
    }
    base = pos;
    if (base >= bytes.size()) {
      return Status::Corruption("directory XADT value without payload");
    }
    for (auto& [start, end] : scanner.top_ranges_) {
      XO_ASSIGN_OR_RETURN(start, xo::CheckedAdd<uint64_t>(start, base));
      XO_ASSIGN_OR_RETURN(end, xo::CheckedAdd<uint64_t>(end, base));
      if (end > bytes.size() || start >= end) {
        return Status::Corruption("bad XADT directory range");
      }
    }
  }
  scanner.payload_base_ = base;
  if (bytes[base] == kRawMarker) {
    scanner.compressed_ = false;
    scanner.content_begin_ = base + 1;
    scanner.pos_ = base + 1;
    return scanner;
  }
  if (bytes[base] == kCompressedMarker) {
    scanner.compressed_ = true;
    XO_RETURN_NOT_OK(scanner.ParseDictionary(base + 1));
    return scanner;
  }
  return Status::ParseError("unknown XADT representation marker");
}

Result<std::string_view> FragmentScanner::NameAt(size_t offset) const {
  if (offset >= bytes_.size()) {
    return Status::OutOfRange("NameAt offset out of range");
  }
  if (!compressed_) {
    if (bytes_[offset] != '<') {
      return Status::ParseError("NameAt: not a start tag");
    }
    size_t p = offset + 1;
    while (p < bytes_.size() && bytes_[p] != '>' && bytes_[p] != '/' &&
           !std::isspace(static_cast<unsigned char>(bytes_[p]))) {
      ++p;
    }
    return bytes_.substr(offset + 1, p - offset - 1);
  }
  size_t pos = offset;
  if (static_cast<uint8_t>(bytes_[pos]) != kTokStart) {
    return Status::ParseError("NameAt: not a start token");
  }
  ++pos;
  XO_ASSIGN_OR_RETURN(uint64_t tag, GetVarint(bytes_, &pos));
  if (tag >= dict_.size()) {
    return Status::ParseError("NameAt: tag id out of range");
  }
  return std::string_view(dict_[tag]);
}

Status FragmentScanner::ParseDictionary(size_t dict_begin) {
  size_t pos = dict_begin;
  XO_ASSIGN_OR_RETURN(uint64_t count, GetVarint(bytes_, &pos));
  if (count > bytes_.size() - pos) {
    return Status::ParseError("XADT dictionary count exceeds value size");
  }
  dict_.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    XO_ASSIGN_OR_RETURN(uint64_t len, GetVarint(bytes_, &pos));
    // Subtraction form: pos <= size() after GetVarint, so this cannot
    // wrap the way `pos + len` could.
    if (len > bytes_.size() - pos) {
      return Status::ParseError("truncated XADT dictionary");
    }
    dict_.emplace_back(bytes_.substr(pos, len));
    pos += len;
  }
  content_begin_ = pos;
  pos_ = pos;
  return Status::OK();
}

Result<FragmentScanner::Event> FragmentScanner::Next() {
  // Per-fragment-step guard poll (DESIGN.md §12): every event produced
  // while a statement guard is bound thread-locally counts as a
  // cancellation point, so long XADT scans inside ctx-less UDFs stay
  // responsive to deadlines and Cancel().
  if (ordb::QueryGuard* guard = ordb::CurrentGuard(); guard != nullptr) {
    RETURN_IF_ERROR(guard->CheckPoint());
  }
  if (pending_self_close_) {
    pending_self_close_ = false;
    Event event;
    event.kind = EventKind::kEnd;
    event.name = open_.back();
    event.end_offset = pending_end_offset_;
    open_.pop_back();
    return event;
  }
  if (pos_ >= bytes_.size()) {
    if (!open_.empty()) {
      return Status::ParseError("unbalanced XADT fragment");
    }
    return Event{};
  }
  return compressed_ ? NextCompressed() : NextRaw();
}

Result<FragmentScanner::Event> FragmentScanner::NextRaw() {
  Event event;
  if (bytes_[pos_] != '<') {
    // Character data run.
    size_t start = pos_;
    size_t lt = bytes_.find('<', pos_);
    if (lt == std::string_view::npos) lt = bytes_.size();
    std::string_view raw = bytes_.substr(start, lt - start);
    pos_ = lt;
    event.kind = EventKind::kText;
    event.offset = start;
    event.end_offset = lt;
    if (raw.find('&') == std::string_view::npos) {
      event.text = raw;
    } else {
      XO_ASSIGN_OR_RETURN(text_scratch_, xml::DecodeEntities(raw));
      event.text = text_scratch_;
    }
    return event;
  }
  // Markup. Comments are skipped iteratively: a value packed with
  // back-to-back comments must not recurse once per comment.
  while (bytes_.compare(pos_, 4, "<!--") == 0) {
    size_t end = bytes_.find("-->", pos_);
    if (end == std::string_view::npos) {
      return Status::ParseError("unterminated comment in XADT value");
    }
    pos_ = end + 3;
    if (pos_ >= bytes_.size() || bytes_[pos_] != '<') return Next();
  }
  size_t start = pos_;
  if (bytes_.compare(pos_, 9, "<![CDATA[") == 0) {
    size_t end = bytes_.find("]]>", pos_);
    if (end == std::string_view::npos) {
      return Status::ParseError("unterminated CDATA in XADT value");
    }
    event.kind = EventKind::kText;
    event.text = bytes_.substr(pos_ + 9, end - pos_ - 9);
    event.offset = start;
    event.end_offset = end + 3;
    pos_ = end + 3;
    return event;
  }
  if (pos_ + 1 < bytes_.size() && bytes_[pos_ + 1] == '/') {
    // End tag.
    size_t name_start = pos_ + 2;
    size_t gt = bytes_.find('>', name_start);
    if (gt == std::string_view::npos) {
      return Status::ParseError("unterminated end tag in XADT value");
    }
    size_t name_end = name_start;
    while (name_end < gt &&
           !std::isspace(static_cast<unsigned char>(bytes_[name_end]))) {
      ++name_end;
    }
    std::string_view name = bytes_.substr(name_start, name_end - name_start);
    if (open_.empty() || open_.back() != name) {
      return Status::ParseError("mismatched end tag in XADT value");
    }
    open_.pop_back();
    pos_ = gt + 1;
    event.kind = EventKind::kEnd;
    event.name = name;
    event.offset = start;
    event.end_offset = pos_;
    return event;
  }
  // Start tag: scan the name, then skip attributes respecting quotes.
  size_t name_start = pos_ + 1;
  size_t p = name_start;
  while (p < bytes_.size() && bytes_[p] != '>' && bytes_[p] != '/' &&
         !std::isspace(static_cast<unsigned char>(bytes_[p]))) {
    ++p;
  }
  std::string_view name = bytes_.substr(name_start, p - name_start);
  if (name.empty()) {
    return Status::ParseError("bad start tag in XADT value");
  }
  bool self_closing = false;
  while (p < bytes_.size()) {
    char c = bytes_[p];
    if (c == '"' || c == '\'') {
      size_t close = bytes_.find(c, p + 1);
      if (close == std::string_view::npos) {
        return Status::ParseError("unterminated attribute in XADT value");
      }
      p = close + 1;
      continue;
    }
    if (c == '>') {
      break;
    }
    if (c == '/' && p + 1 < bytes_.size() && bytes_[p + 1] == '>') {
      self_closing = true;
      ++p;
      break;
    }
    ++p;
  }
  if (p >= bytes_.size()) {
    return Status::ParseError("unterminated start tag in XADT value");
  }
  pos_ = p + 1;
  open_.push_back(name);
  event.kind = EventKind::kStart;
  event.name = name;
  event.offset = start;
  event.end_offset = pos_;
  if (self_closing) {
    pending_self_close_ = true;
    pending_end_offset_ = pos_;
  }
  return event;
}

Result<FragmentScanner::Event> FragmentScanner::NextCompressed() {
  Event event;
  size_t start = pos_;
  uint8_t op = static_cast<uint8_t>(bytes_[pos_++]);
  switch (op) {
    case kTokStart: {
      XO_ASSIGN_OR_RETURN(uint64_t tag, GetVarint(bytes_, &pos_));
      if (tag >= dict_.size()) {
        return Status::ParseError("XADT tag id out of range");
      }
      XO_ASSIGN_OR_RETURN(uint64_t nattrs, GetVarint(bytes_, &pos_));
      for (uint64_t i = 0; i < nattrs; ++i) {
        XO_ASSIGN_OR_RETURN(uint64_t name_id, GetVarint(bytes_, &pos_));
        XO_ASSIGN_OR_RETURN(uint64_t len, GetVarint(bytes_, &pos_));
        if (name_id >= dict_.size() || len > bytes_.size() - pos_) {
          return Status::ParseError("bad XADT attribute token");
        }
        pos_ += len;
      }
      open_.push_back(dict_[tag]);
      event.kind = EventKind::kStart;
      event.name = dict_[tag];
      event.offset = start;
      event.end_offset = pos_;
      return event;
    }
    case kTokEnd: {
      if (open_.empty()) {
        return Status::ParseError("unbalanced XADT end token");
      }
      event.kind = EventKind::kEnd;
      event.name = open_.back();
      open_.pop_back();
      event.offset = start;
      event.end_offset = pos_;
      return event;
    }
    case kTokText: {
      XO_ASSIGN_OR_RETURN(uint64_t len, GetVarint(bytes_, &pos_));
      if (len > bytes_.size() - pos_) {
        return Status::ParseError("truncated XADT text token");
      }
      event.kind = EventKind::kText;
      event.text = bytes_.substr(pos_, len);
      event.offset = start;
      pos_ += len;
      event.end_offset = pos_;
      return event;
    }
    default:
      return Status::ParseError("unknown XADT token opcode");
  }
}

}  // namespace xorator::xadt
