#ifndef XORATOR_XADT_SCANNER_H_
#define XORATOR_XADT_SCANNER_H_

#include <string>
#include <vector>
#include <string_view>

#include "common/lifetime.h"
#include "common/result.h"

namespace xorator::xadt {

/// A pull-based event scanner over an encoded XADT value (either
/// representation), used by the XADT methods to evaluate path/keyword/order
/// predicates without materializing a DOM — the streaming equivalent of the
/// paper's C-string implementation.
///
/// Events carry byte offsets into the encoded value so that matched
/// fragments can be emitted by copying the original byte range:
///   * a kStart event's `offset` is the first byte of the element
///     (the '<' in the raw form, the start opcode in the compressed form);
///   * a kEnd event's `end_offset` is one past the last byte of the element.
/// Self-closing raw elements produce a kStart immediately followed by a
/// kEnd.
///
/// The scanner is a gsl::Pointer into the encoded bytes (DESIGN.md
/// section 14): it never copies them, so Clang builds reject constructing
/// one over a temporary owner in a single statement.
class XO_GSL_POINTER(char) FragmentScanner {
 public:
  enum class EventKind { kStart, kEnd, kText, kEof };

  struct Event {
    EventKind kind = EventKind::kEof;
    /// Element name (valid until the next call) for kStart/kEnd.
    std::string_view name;
    /// Decoded character data for kText.
    std::string_view text;
    /// Byte offset of the event start (kStart) in the encoded value.
    size_t offset = 0;
    /// One past the last byte (kEnd).
    size_t end_offset = 0;
  };

  /// `bytes` must outlive the scanner (enforced on Clang builds via the
  /// lifetime-bound parameter). Accepts all three representations (raw,
  /// compressed, and the directory-prefixed form, whose directory is
  /// parsed into top_ranges()).
  [[nodiscard]] static Result<FragmentScanner> Create(
      std::string_view bytes XO_LIFETIME_BOUND);

  /// The returned Event's views point into the scanner (and its bytes);
  /// they are valid only until the next call.
  [[nodiscard]] Result<Event> Next() XO_LIFETIME_BOUND;

  bool compressed() const { return compressed_; }

  /// True when the value carries a top-level fragment directory
  /// (the 'D' representation, the paper's Section 5 metadata extension).
  bool has_directory() const { return has_directory_; }

  /// Absolute (start, end) byte ranges of the top-level fragments, from the
  /// directory; empty unless has_directory().
  const std::vector<std::pair<size_t, size_t>>& top_ranges() const {
    return top_ranges_;
  }

  /// Element name of the start event at `offset` (which must be the first
  /// byte of an element in this value), without advancing the scanner. The
  /// view points into the scanner's bytes (raw form) or its dictionary.
  [[nodiscard]] Result<std::string_view> NameAt(size_t offset) const
      XO_LIFETIME_BOUND;

  /// Offset where the token/markup stream begins (after the marker byte
  /// and, for the compressed form, the dictionary).
  size_t content_begin() const { return content_begin_; }

  /// The dictionary prefix of a compressed value ('C' + dictionary), usable
  /// verbatim as the header of a sliced output value.
  std::string_view header() const XO_LIFETIME_BOUND {
    return bytes_.substr(payload_base_, content_begin_ - payload_base_);
  }

 private:
  explicit FragmentScanner(std::string_view bytes) : bytes_(bytes) {}

  [[nodiscard]] Result<Event> NextRaw();
  [[nodiscard]] Result<Event> NextCompressed();
  [[nodiscard]] Status ParseDictionary(size_t dict_begin);

  std::string_view bytes_;
  bool compressed_ = false;
  bool has_directory_ = false;
  /// First byte of the embedded payload ('R'/'C' marker) for the directory
  /// form; 0 otherwise.
  size_t payload_base_ = 0;
  std::vector<std::pair<size_t, size_t>> top_ranges_;
  size_t content_begin_ = 1;
  size_t pos_ = 0;
  // Raw form: stack of open element names (string_views into bytes_);
  // compressed form: stack of dictionary ids.
  std::vector<std::string_view> open_;
  std::vector<std::string> dict_;
  // Scratch for decoded entity text and synthesized end events.
  std::string text_scratch_;
  bool pending_self_close_ = false;
  size_t pending_end_offset_ = 0;
};

}  // namespace xorator::xadt

#endif  // XORATOR_XADT_SCANNER_H_
