#include "xadt/xadt.h"

#include "xadt/scanner.h"

#include <functional>
#include <map>

#include "common/str_util.h"
#include "common/varint.h"
#include "ordb/query_guard.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace xorator::xadt {

namespace {

// Charges one XADT method call's result expansion against the statement's
// thread-locally bound guard (ordb::CurrentGuard(), null in direct library
// use). The charge is released when the call returns — the caller accounts
// the value it receives — so this caps *peak* decoded-fragment expansion
// during evaluation (DESIGN.md §12).
class ExpansionBudget {
 public:
  ExpansionBudget() : arena_(ordb::CurrentGuard()) {}
  [[nodiscard]] Status Charge(size_t bytes) { return arena_.Charge(bytes); }

 private:
  ordb::TrackedArena arena_;
};

constexpr char kRawMarker = 'R';
constexpr char kCompressedMarker = 'C';
constexpr char kDirectoryMarker = 'D';

// Token opcodes of the compressed representation.
constexpr uint8_t kTokStart = 0x01;
constexpr uint8_t kTokEnd = 0x02;
constexpr uint8_t kTokText = 0x03;

void CollectNames(const xml::Node& node,
                  std::map<std::string, uint64_t>* dict,
                  std::vector<std::string>* names) {
  auto intern = [&](const std::string& name) {
    if (dict->emplace(name, names->size()).second) names->push_back(name);
  };
  if (node.is_element()) {
    intern(node.name());
    for (const xml::Attribute& a : node.attributes()) intern(a.name);
    for (const auto& c : node.children()) CollectNames(*c, dict, names);
  }
}

void EncodeNode(const xml::Node& node,
                const std::map<std::string, uint64_t>& dict,
                std::string* out) {
  if (node.is_text()) {
    out->push_back(static_cast<char>(kTokText));
    PutVarint(out, node.text().size());
    out->append(node.text());
    return;
  }
  out->push_back(static_cast<char>(kTokStart));
  PutVarint(out, dict.at(node.name()));
  PutVarint(out, node.attributes().size());
  for (const xml::Attribute& a : node.attributes()) {
    PutVarint(out, dict.at(a.name));
    PutVarint(out, a.value.size());
    out->append(a.value);
  }
  for (const auto& c : node.children()) EncodeNode(*c, dict, out);
  out->push_back(static_cast<char>(kTokEnd));
}

Result<std::unique_ptr<xml::Node>> DecodeCompressed(std::string_view bytes) {
  size_t pos = 1;
  XO_ASSIGN_OR_RETURN(uint64_t name_count, GetVarint(bytes, &pos));
  if (name_count > bytes.size() - pos) {
    return Status::ParseError("XADT dictionary count exceeds value size");
  }
  std::vector<std::string> names;
  names.reserve(name_count);
  for (uint64_t i = 0; i < name_count; ++i) {
    XO_ASSIGN_OR_RETURN(uint64_t len, GetVarint(bytes, &pos));
    // Subtraction form: pos <= size() after GetVarint, so this cannot
    // wrap the way `pos + len` could.
    if (len > bytes.size() - pos) {
      return Status::ParseError("truncated XADT dictionary");
    }
    names.emplace_back(bytes.substr(pos, len));
    pos += len;
  }
  auto root = xml::Node::Element("#fragment");
  std::vector<xml::Node*> stack = {root.get()};
  // This loop bypasses FragmentScanner, so it polls the statement guard
  // and charges DOM expansion itself: a small compressed value can decode
  // to a much larger tree, and hostile token streams must stay both
  // cancellable and budget-bounded.
  ordb::QueryGuard* guard = ordb::CurrentGuard();
  ExpansionBudget budget;
  while (pos < bytes.size()) {
    if (guard != nullptr) {
      RETURN_IF_ERROR(guard->CheckPoint());
    }
    uint8_t op = static_cast<uint8_t>(bytes[pos++]);
    switch (op) {
      case kTokStart: {
        XO_ASSIGN_OR_RETURN(uint64_t tag, GetVarint(bytes, &pos));
        if (tag >= names.size()) {
          return Status::ParseError("XADT tag id out of range");
        }
        auto elem = xml::Node::Element(names[tag]);
        XO_ASSIGN_OR_RETURN(uint64_t nattrs, GetVarint(bytes, &pos));
        for (uint64_t i = 0; i < nattrs; ++i) {
          XO_ASSIGN_OR_RETURN(uint64_t name_id, GetVarint(bytes, &pos));
          XO_ASSIGN_OR_RETURN(uint64_t len, GetVarint(bytes, &pos));
          if (name_id >= names.size() || len > bytes.size() - pos) {
            return Status::ParseError("bad XADT attribute token");
          }
          RETURN_IF_ERROR(budget.Charge(names[name_id].size() + len));
          elem->AddAttribute(names[name_id],
                             std::string(bytes.substr(pos, len)));
          pos += len;
        }
        RETURN_IF_ERROR(budget.Charge(sizeof(xml::Node) + names[tag].size()));
        xml::Node* raw = stack.back()->AddChild(std::move(elem));
        stack.push_back(raw);
        break;
      }
      case kTokEnd:
        if (stack.size() <= 1) {
          return Status::ParseError("unbalanced XADT end token");
        }
        stack.pop_back();
        break;
      case kTokText: {
        XO_ASSIGN_OR_RETURN(uint64_t len, GetVarint(bytes, &pos));
        if (len > bytes.size() - pos) {
          return Status::ParseError("truncated XADT text token");
        }
        RETURN_IF_ERROR(budget.Charge(sizeof(xml::Node) + len));
        stack.back()->AddChild(
            xml::Node::Text(std::string(bytes.substr(pos, len))));
        pos += len;
        break;
      }
      default:
        return Status::ParseError("unknown XADT token opcode");
    }
  }
  if (stack.size() != 1) {
    return Status::ParseError("unbalanced XADT start token");
  }
  return root;
}

}  // namespace

namespace {

/// Strips a directory prefix, returning the embedded 'R'/'C' payload (the
/// input itself when no directory is present). Malformed directories yield
/// an empty view, which downstream decoding rejects.
std::string_view StripDirectory(std::string_view bytes XO_LIFETIME_BOUND) {
  if (bytes.empty() || bytes[0] != kDirectoryMarker) return bytes;
  size_t pos = 1;
  auto count = GetVarint(bytes, &pos);
  if (!count.ok()) return std::string_view();
  for (uint64_t i = 0; i < *count; ++i) {
    if (!GetVarint(bytes, &pos).ok() || !GetVarint(bytes, &pos).ok()) {
      return std::string_view();
    }
  }
  return bytes.substr(pos);
}

}  // namespace

bool IsCompressed(std::string_view bytes) {
  std::string_view payload = StripDirectory(bytes);
  return !payload.empty() && payload[0] == kCompressedMarker;
}

bool HasDirectory(std::string_view bytes) {
  return !bytes.empty() && bytes[0] == kDirectoryMarker;
}

std::string EncodeRaw(const std::vector<const xml::Node*>& fragments) {
  std::string out(1, kRawMarker);
  for (const xml::Node* f : fragments) xml::SerializeTo(*f, &out);
  return out;
}

std::string EncodeCompressed(const std::vector<const xml::Node*>& fragments) {
  std::map<std::string, uint64_t> dict;
  std::vector<std::string> names;
  for (const xml::Node* f : fragments) CollectNames(*f, &dict, &names);
  std::string out(1, kCompressedMarker);
  PutVarint(&out, names.size());
  for (const std::string& n : names) {
    PutVarint(&out, n.size());
    out.append(n);
  }
  for (const xml::Node* f : fragments) EncodeNode(*f, dict, &out);
  return out;
}

std::string Encode(const std::vector<const xml::Node*>& fragments,
                   bool compressed) {
  return compressed ? EncodeCompressed(fragments) : EncodeRaw(fragments);
}

std::string EncodeWithDirectory(const std::vector<const xml::Node*>& fragments,
                                bool compressed) {
  std::string payload = Encode(fragments, compressed);
  // Locate the (start, length) of every top-level fragment in the payload.
  std::vector<std::pair<size_t, size_t>> ranges;
  auto scanner = FragmentScanner::Create(payload);
  if (scanner.ok()) {
    size_t depth = 0;
    size_t open_offset = 0;
    while (true) {
      auto event = scanner->Next();
      if (!event.ok() || event->kind == FragmentScanner::EventKind::kEof) {
        break;
      }
      if (event->kind == FragmentScanner::EventKind::kStart) {
        if (depth == 0) open_offset = event->offset;
        ++depth;
      } else if (event->kind == FragmentScanner::EventKind::kEnd) {
        --depth;
        if (depth == 0) {
          ranges.emplace_back(open_offset, event->end_offset - open_offset);
        }
      }
    }
  }
  std::string out(1, kDirectoryMarker);
  PutVarint(&out, ranges.size());
  for (const auto& [start, len] : ranges) {
    PutVarint(&out, start);
    PutVarint(&out, len);
  }
  out += payload;
  return out;
}

Result<std::unique_ptr<xml::Node>> Decode(std::string_view bytes) {
  bytes = StripDirectory(bytes);
  if (bytes.empty()) return xml::Node::Element("#fragment");
  if (bytes[0] == kRawMarker) {
    return xml::ParseFragment(bytes.substr(1));
  }
  if (bytes[0] == kCompressedMarker) {
    return DecodeCompressed(bytes);
  }
  return Status::ParseError("unknown XADT representation marker");
}

Result<std::string> ToXmlString(std::string_view bytes) {
  bytes = StripDirectory(bytes);
  if (bytes.empty()) return std::string();
  if (bytes[0] == kRawMarker) return std::string(bytes.substr(1));
  XO_ASSIGN_OR_RETURN(auto root, Decode(bytes));
  std::string out;
  xml::SerializeTo(*root, &out);
  return out;
}

Result<std::string> TextContent(std::string_view bytes) {
  XO_ASSIGN_OR_RETURN(FragmentScanner scanner, FragmentScanner::Create(bytes));
  ExpansionBudget budget;
  std::string out;
  while (true) {
    XO_ASSIGN_OR_RETURN(auto event, scanner.Next());
    if (event.kind == FragmentScanner::EventKind::kEof) return out;
    if (event.kind == FragmentScanner::EventKind::kText) {
      RETURN_IF_ERROR(budget.Charge(event.text.size()));
      out.append(event.text);
    }
  }
}

void CompressionAdvisor::AddSample(
    const std::vector<const xml::Node*>& fragments) {
  raw_bytes_ += EncodeRaw(fragments).size();
  compressed_bytes_ += EncodeCompressed(fragments).size();
}

bool CompressionAdvisor::UseCompression() const {
  if (raw_bytes_ == 0) return false;
  double saving = 1.0 - static_cast<double>(compressed_bytes_) /
                            static_cast<double>(raw_bytes_);
  return saving >= min_saving_;
}

Result<std::string> GetElm(std::string_view in, std::string_view root_elm,
                           std::string_view search_elm,
                           std::string_view search_key, int level) {
  if (root_elm.empty()) {
    return Status::InvalidArgument("getElm: rootElm must not be empty");
  }
  XO_ASSIGN_OR_RETURN(FragmentScanner scanner, FragmentScanner::Create(in));
  ExpansionBudget budget;
  std::string out(scanner.header());
  if (out.empty()) out.push_back(kRawMarker);

  struct Candidate {
    size_t start_offset;
    size_t depth;
    bool matched;
  };
  struct SearchFrame {
    size_t depth;
    bool matched;
    // Sliding window over the subtree's character data: only the last
    // search_key.size()-1 bytes are retained, enough to catch a key that
    // straddles two text events, so the frame never copies the whole
    // subtree's text (DESIGN.md section 14).
    std::string window;
  };
  std::vector<Candidate> candidates;  // open rootElm elements (stack)
  std::vector<SearchFrame> searches;  // open searchElm elements (stack)
  size_t depth = 0;
  while (true) {
    XO_ASSIGN_OR_RETURN(auto event, scanner.Next());
    switch (event.kind) {
      case FragmentScanner::EventKind::kEof:
        if (depth != 0) {
          return Status::ParseError("unbalanced XADT fragment");
        }
        return out;
      case FragmentScanner::EventKind::kStart:
        if (event.name == root_elm) {
          candidates.push_back({event.offset, depth, search_elm.empty()});
        }
        if (!search_elm.empty() && event.name == search_elm) {
          searches.push_back({depth, search_key.empty(), {}});
        }
        ++depth;
        break;
      case FragmentScanner::EventKind::kText:
        for (SearchFrame& f : searches) {
          if (f.matched) continue;
          f.window.append(event.text);
          if (Contains(f.window, search_key)) {
            f.matched = true;
            f.window.clear();
          } else if (f.window.size() >= search_key.size()) {
            f.window.erase(0, f.window.size() - (search_key.size() - 1));
          }
        }
        break;
      case FragmentScanner::EventKind::kEnd: {
        --depth;
        if (!searches.empty() && searches.back().depth == depth) {
          // A searchElm subtree closed: on a key match, mark every open
          // candidate within `level` levels above it.
          SearchFrame frame = std::move(searches.back());
          searches.pop_back();
          if (frame.matched) {
            for (Candidate& c : candidates) {
              if (level <= 0 ||
                  depth - c.depth <= static_cast<size_t>(level)) {
                c.matched = true;
              }
            }
          }
        }
        if (!candidates.empty() && candidates.back().depth == depth) {
          Candidate c = candidates.back();
          candidates.pop_back();
          if (c.matched) {
            RETURN_IF_ERROR(budget.Charge(event.end_offset - c.start_offset));
            out.append(in.substr(c.start_offset,
                                 event.end_offset - c.start_offset));
          }
        }
        break;
      }
    }
  }
}

Result<int64_t> FindKeyInElm(std::string_view in, std::string_view search_elm,
                             std::string_view search_key) {
  if (search_elm.empty() && search_key.empty()) {
    return Status::InvalidArgument(
        "findKeyInElm: searchElm and searchKey cannot both be empty");
  }
  XO_ASSIGN_OR_RETURN(FragmentScanner scanner, FragmentScanner::Create(in));
  if (search_elm.empty()) {
    // Key against the content of any element: a sliding window over the
    // concatenated character data.
    std::string window;
    while (true) {
      XO_ASSIGN_OR_RETURN(auto event, scanner.Next());
      if (event.kind == FragmentScanner::EventKind::kEof) return 0;
      if (event.kind != FragmentScanner::EventKind::kText) continue;
      window.append(event.text);
      if (Contains(window, search_key)) return 1;
      if (window.size() >= search_key.size()) {
        window.erase(0, window.size() - (search_key.size() - 1));
      }
    }
  }
  struct SearchFrame {
    size_t depth;
    // Sliding window, as in GetElm: keep only the trailing
    // search_key.size()-1 bytes so cross-event matches still land without
    // buffering the subtree's full character data.
    std::string window;
  };
  ExpansionBudget budget;
  std::vector<SearchFrame> searches;
  size_t depth = 0;
  while (true) {
    XO_ASSIGN_OR_RETURN(auto event, scanner.Next());
    switch (event.kind) {
      case FragmentScanner::EventKind::kEof:
        return 0;
      case FragmentScanner::EventKind::kStart:
        if (event.name == search_elm) {
          if (search_key.empty()) return 1;
          searches.push_back({depth, {}});
        }
        ++depth;
        break;
      case FragmentScanner::EventKind::kText:
        RETURN_IF_ERROR(budget.Charge(event.text.size() * searches.size()));
        for (SearchFrame& f : searches) {
          f.window.append(event.text);
          // Early exit as soon as any tracked element matches.
          if (Contains(f.window, search_key)) return 1;
          if (f.window.size() >= search_key.size()) {
            f.window.erase(0, f.window.size() - (search_key.size() - 1));
          }
        }
        break;
      case FragmentScanner::EventKind::kEnd:
        --depth;
        if (!searches.empty() && searches.back().depth == depth) {
          searches.pop_back();
        }
        break;
    }
  }
}

Result<std::string> GetElmIndex(std::string_view in,
                                std::string_view parent_elm,
                                std::string_view child_elm, int start_pos,
                                int end_pos) {
  if (child_elm.empty()) {
    return Status::InvalidArgument("getElmIndex: childElm must not be empty");
  }
  XO_ASSIGN_OR_RETURN(FragmentScanner scanner, FragmentScanner::Create(in));
  ExpansionBudget budget;
  std::string out(scanner.header());
  if (out.empty()) out.push_back(kRawMarker);

  if (parent_elm.empty() && scanner.has_directory()) {
    // Directory fast path: the fragment roots are indexed, so the
    // requested positions are sliced without scanning fragment bodies.
    int count = 0;
    for (const auto& [start, end] : scanner.top_ranges()) {
      XO_ASSIGN_OR_RETURN(std::string_view name, scanner.NameAt(start));
      if (name != child_elm) continue;
      ++count;
      if (count >= start_pos && count <= end_pos) {
        RETURN_IF_ERROR(budget.Charge(end - start));
        out.append(in.substr(start, end - start));
      }
      if (count >= end_pos) break;
    }
    return out;
  }

  struct Frame {
    std::string_view name;
    int child_count = 0;  // direct children named child_elm so far
  };
  struct Capture {
    size_t start_offset;
    size_t depth;
  };
  std::vector<Frame> frames = {{std::string_view("#root"), 0}};
  std::vector<Capture> captures;
  size_t depth = 0;
  while (true) {
    XO_ASSIGN_OR_RETURN(auto event, scanner.Next());
    switch (event.kind) {
      case FragmentScanner::EventKind::kEof:
        return out;
      case FragmentScanner::EventKind::kStart: {
        Frame& parent = frames.back();
        if (event.name == child_elm) {
          bool parent_ok = parent_elm.empty()
                               ? frames.size() == 1
                               : parent.name == parent_elm;
          if (parent_elm.empty() || parent.name == parent_elm) {
            ++parent.child_count;
          }
          if (parent_ok && parent.child_count >= start_pos &&
              parent.child_count <= end_pos) {
            captures.push_back({event.offset, depth});
          }
        }
        frames.push_back({event.name, 0});
        ++depth;
        break;
      }
      case FragmentScanner::EventKind::kText:
        break;
      case FragmentScanner::EventKind::kEnd:
        --depth;
        frames.pop_back();
        if (!captures.empty() && captures.back().depth == depth) {
          Capture c = captures.back();
          captures.pop_back();
          RETURN_IF_ERROR(budget.Charge(event.end_offset - c.start_offset));
          out.append(
              in.substr(c.start_offset, event.end_offset - c.start_offset));
        }
        break;
    }
  }
}

Result<std::vector<std::string>> Unnest(std::string_view in,
                                        std::string_view tag) {
  XO_ASSIGN_OR_RETURN(FragmentScanner scanner, FragmentScanner::Create(in));
  ExpansionBudget budget;
  std::string_view header = scanner.header();
  std::string prefix =
      header.empty() ? std::string(1, kRawMarker) : std::string(header);
  std::vector<std::string> out;
  if (tag.empty() && scanner.has_directory()) {
    // Directory fast path: slice the indexed fragment roots directly.
    for (const auto& [start, end] : scanner.top_ranges()) {
      RETURN_IF_ERROR(budget.Charge(prefix.size() + (end - start)));
      std::string value = prefix;
      value.append(in.substr(start, end - start));
      out.push_back(std::move(value));
    }
    return out;
  }
  struct Capture {
    size_t start_offset;
    size_t depth;
  };
  std::vector<Capture> captures;
  size_t depth = 0;
  while (true) {
    XO_ASSIGN_OR_RETURN(auto event, scanner.Next());
    switch (event.kind) {
      case FragmentScanner::EventKind::kEof:
        return out;
      case FragmentScanner::EventKind::kStart:
        if (tag.empty() ? depth == 0 : event.name == tag) {
          captures.push_back({event.offset, depth});
        }
        ++depth;
        break;
      case FragmentScanner::EventKind::kText:
        break;
      case FragmentScanner::EventKind::kEnd:
        --depth;
        if (!captures.empty() && captures.back().depth == depth) {
          Capture c = captures.back();
          captures.pop_back();
          RETURN_IF_ERROR(budget.Charge(
              prefix.size() + (event.end_offset - c.start_offset)));
          std::string value = prefix;
          value.append(
              in.substr(c.start_offset, event.end_offset - c.start_offset));
          out.push_back(std::move(value));
        }
        break;
    }
  }
}

}  // namespace xorator::xadt
