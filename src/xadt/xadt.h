#ifndef XORATOR_XADT_XADT_H_
#define XORATOR_XADT_XADT_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "xml/dom.h"

namespace xorator::xadt {

/// The XADT value encoding (Section 3.4.1 of the paper).
///
/// An XADT value stores a *fragment*: an ordered forest of XML subtrees
/// (e.g. every LINE child of one SPEECH). Two on-disk representations exist:
///
///   * raw ('R'): the tagged XML text of the fragments, concatenated;
///   * compressed ('C'): an XMill-inspired form in which element/attribute
///     names are replaced by integer codes, with a per-value dictionary
///     mapping codes back to names.
///
/// The first byte of the encoded value selects the representation. All
/// methods accept either representation and produce their output in the same
/// representation as their input.

/// True if `bytes` holds the compressed representation (looking through a
/// directory prefix when present).
bool IsCompressed(std::string_view bytes);

/// True if `bytes` carries the directory-prefixed representation.
bool HasDirectory(std::string_view bytes);

/// Encodes `fragments` (subtree roots; borrowed) in the raw representation.
std::string EncodeRaw(const std::vector<const xml::Node*>& fragments);

/// Encodes `fragments` in the compressed (tag-dictionary) representation.
std::string EncodeCompressed(const std::vector<const xml::Node*>& fragments);

/// Encodes with the representation chosen by `compressed`.
std::string Encode(const std::vector<const xml::Node*>& fragments,
                   bool compressed);

/// The paper's Section 5 metadata extension: prefixes the encoded value
/// with a directory of (offset, length) pairs, one per top-level fragment,
/// so order-access methods (getElmIndex with an empty parentElm, unnest of
/// the fragment roots) can slice fragments without scanning their bodies.
/// All XADT methods accept this representation transparently.
std::string EncodeWithDirectory(const std::vector<const xml::Node*>& fragments,
                                bool compressed);

/// Decodes an XADT value into a DOM forest under a synthetic `#fragment`
/// root node.
[[nodiscard]] Result<std::unique_ptr<xml::Node>> Decode(std::string_view bytes);

/// Renders an XADT value back to XML text (no enclosing root).
[[nodiscard]] Result<std::string> ToXmlString(std::string_view bytes);

/// Concatenated text content of all fragments.
[[nodiscard]] Result<std::string> TextContent(std::string_view bytes);

/// Decides between the two representations by trial-encoding sample
/// fragments: compression is chosen only when it saves at least
/// `min_saving` (the paper uses 20%) of the raw size (Section 4.1).
class CompressionAdvisor {
 public:
  explicit CompressionAdvisor(double min_saving = 0.2)
      : min_saving_(min_saving) {}

  /// Accounts one sample fragment forest.
  void AddSample(const std::vector<const xml::Node*>& fragments);

  size_t raw_bytes() const { return raw_bytes_; }
  size_t compressed_bytes() const { return compressed_bytes_; }

  /// True if enough saving was observed over the samples so far.
  bool UseCompression() const;

 private:
  double min_saving_;
  size_t raw_bytes_ = 0;
  size_t compressed_bytes_ = 0;
};

// ---------------------------------------------------------------------------
// XADT methods (Section 3.4.2). These mirror the UDFs the paper registered
// with DB2 and are registered as UDFs with the ordb engine by
// RegisterXadtFunctions() in xadt/functions.h.
// ---------------------------------------------------------------------------

/// Returns all `root_elm` elements (searched descendant-or-self across the
/// fragments) that contain a `search_elm` descendant within `level` levels
/// (level <= 0: any depth) whose text content contains `search_key`.
/// Per the paper: an empty `search_key` only requires `search_elm` to exist;
/// an empty `search_elm` returns all `root_elm` elements.
[[nodiscard]] Result<std::string> GetElm(std::string_view in, std::string_view root_elm,
                           std::string_view search_elm,
                           std::string_view search_key, int level = 0);

/// Returns 1 if some `search_elm` element's text contains `search_key`
/// (empty `search_elm`: any element; empty `search_key`: existence test).
/// Both arguments empty is an error.
[[nodiscard]] Result<int64_t> FindKeyInElm(std::string_view in, std::string_view search_elm,
                             std::string_view search_key);

/// Returns all `child_elm` elements that are direct children of
/// `parent_elm` elements with 1-based same-tag sibling position in
/// [start_pos, end_pos]. An empty `parent_elm` treats `child_elm` as the
/// fragment roots. `child_elm` must not be empty.
[[nodiscard]] Result<std::string> GetElmIndex(std::string_view in,
                                std::string_view parent_elm,
                                std::string_view child_elm, int start_pos,
                                int end_pos);

/// Splits the value into one single-element XADT per `tag` element
/// (descendant-or-self; empty `tag`: every top-level fragment). This backs
/// the table UDF `unnest` of Section 3.5.
[[nodiscard]] Result<std::vector<std::string>> Unnest(std::string_view in,
                                        std::string_view tag);

}  // namespace xorator::xadt

#endif  // XORATOR_XADT_XADT_H_
