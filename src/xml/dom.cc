#include "xml/dom.h"

namespace xorator::xml {

const std::string* Node::FindAttribute(std::string_view name) const {
  for (const Attribute& a : attributes_) {
    if (a.name == name) return &a.value;
  }
  return nullptr;
}

Node* Node::AddChild(std::unique_ptr<Node> child) {
  child->parent_ = this;
  children_.push_back(std::move(child));
  return children_.back().get();
}

Node* Node::AddElementWithText(std::string name, std::string text) {
  auto elem = Node::Element(std::move(name));
  if (!text.empty()) elem->AddChild(Node::Text(std::move(text)));
  return AddChild(std::move(elem));
}

const Node* Node::FirstChildElement(std::string_view name) const {
  for (const auto& c : children_) {
    if (c->is_element() && c->name() == name) return c.get();
  }
  return nullptr;
}

std::vector<const Node*> Node::ChildElements() const {
  std::vector<const Node*> out;
  for (const auto& c : children_) {
    if (c->is_element()) out.push_back(c.get());
  }
  return out;
}

std::vector<const Node*> Node::ChildElements(std::string_view name) const {
  std::vector<const Node*> out;
  for (const auto& c : children_) {
    if (c->is_element() && c->name() == name) out.push_back(c.get());
  }
  return out;
}

std::string Node::TextContent() const {
  if (is_text()) return text_;
  std::string out;
  for (const auto& c : children_) {
    out += c->TextContent();
  }
  return out;
}

std::unique_ptr<Node> Node::Clone() const {
  std::unique_ptr<Node> copy;
  if (is_text()) {
    copy = Node::Text(text_);
  } else {
    copy = Node::Element(name_);
    copy->attributes_ = attributes_;
    for (const auto& c : children_) {
      copy->AddChild(c->Clone());
    }
  }
  return copy;
}

}  // namespace xorator::xml
