#ifndef XORATOR_XML_DOM_H_
#define XORATOR_XML_DOM_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/lifetime.h"

namespace xorator::xml {

/// One attribute on an element node.
struct Attribute {
  std::string name;
  std::string value;
};

/// A node in a parsed XML document tree.
///
/// Only element and text nodes are materialized; comments, processing
/// instructions and the DOCTYPE declaration are consumed by the parser.
/// Nodes own their children; parent links are non-owning back-pointers.
class Node {
 public:
  enum class Kind { kElement, kText };

  static std::unique_ptr<Node> Element(std::string name) {
    auto n = std::unique_ptr<Node>(new Node(Kind::kElement));
    n->name_ = std::move(name);
    return n;
  }
  static std::unique_ptr<Node> Text(std::string text) {
    auto n = std::unique_ptr<Node>(new Node(Kind::kText));
    n->text_ = std::move(text);
    return n;
  }

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  Kind kind() const { return kind_; }
  bool is_element() const { return kind_ == Kind::kElement; }
  bool is_text() const { return kind_ == Kind::kText; }

  /// Element tag name; empty for text nodes.
  const std::string& name() const XO_LIFETIME_BOUND { return name_; }
  /// Text content; empty for element nodes.
  const std::string& text() const XO_LIFETIME_BOUND { return text_; }

  const std::vector<Attribute>& attributes() const XO_LIFETIME_BOUND {
    return attributes_;
  }
  void AddAttribute(std::string name, std::string value) {
    attributes_.push_back({std::move(name), std::move(value)});
  }
  /// Pointer to the attribute's value, or nullptr if absent. The pointer
  /// aims into this node's attribute table: it is lifetime-bound to the
  /// node and invalidated by AddAttribute (vector growth may reallocate).
  /// `name` is only read during the call and may be a temporary.
  const std::string* FindAttribute(std::string_view name) const
      XO_LIFETIME_BOUND;

  const std::vector<std::unique_ptr<Node>>& children() const
      XO_LIFETIME_BOUND {
    return children_;
  }
  Node* parent() const { return parent_; }

  /// Appends `child` and fixes its parent pointer. Returns the raw pointer
  /// for chaining.
  Node* AddChild(std::unique_ptr<Node> child);

  /// Convenience: appends `<name>text</name>`.
  Node* AddElementWithText(std::string name, std::string text);

  /// First child element with the given tag name, or nullptr. The child is
  /// owned by this node, so the pointer is lifetime-bound to it.
  const Node* FirstChildElement(std::string_view name) const XO_LIFETIME_BOUND;

  /// All child elements (skipping text nodes). The vector is an owned copy,
  /// but the Node pointers inside it are non-owning: they stay valid only
  /// while this node (which owns the children) is alive and its child list
  /// is not mutated.
  std::vector<const Node*> ChildElements() const;

  /// Child elements with the given tag name, in document order. Same
  /// lifetime contract as ChildElements() above.
  std::vector<const Node*> ChildElements(std::string_view name) const;

  /// Concatenation of all descendant text (the XPath string-value).
  std::string TextContent() const;

  /// Deep copy of this subtree (parent of the copy is null).
  std::unique_ptr<Node> Clone() const;

 private:
  explicit Node(Kind kind) : kind_(kind) {}

  Kind kind_;
  std::string name_;
  std::string text_;
  std::vector<Attribute> attributes_;
  std::vector<std::unique_ptr<Node>> children_;
  Node* parent_ = nullptr;
};

/// A parsed document: the root element plus the raw DOCTYPE internal subset
/// (if any), which the DTD parser can consume.
struct Document {
  std::unique_ptr<Node> root;
  std::string doctype_name;
  std::string internal_subset;
};

}  // namespace xorator::xml

#endif  // XORATOR_XML_DOM_H_
