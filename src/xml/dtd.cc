#include "xml/dtd.h"

#include <cctype>
#include <set>

namespace xorator::xml {

char OccurrenceSuffix(Occurrence occ) {
  switch (occ) {
    case Occurrence::kOne:
      return '\0';
    case Occurrence::kOptional:
      return '?';
    case Occurrence::kStar:
      return '*';
    case Occurrence::kPlus:
      return '+';
  }
  return '\0';
}

std::unique_ptr<ContentParticle> ContentParticle::ElementRef(std::string name,
                                                             Occurrence occ) {
  auto p = std::make_unique<ContentParticle>();
  p->kind = Kind::kElementRef;
  p->name = std::move(name);
  p->occurrence = occ;
  return p;
}

std::unique_ptr<ContentParticle> ContentParticle::PCData() {
  auto p = std::make_unique<ContentParticle>();
  p->kind = Kind::kPCData;
  return p;
}

std::unique_ptr<ContentParticle> ContentParticle::Group(Kind kind,
                                                        Occurrence occ) {
  auto p = std::make_unique<ContentParticle>();
  p->kind = kind;
  p->occurrence = occ;
  return p;
}

std::unique_ptr<ContentParticle> ContentParticle::Clone() const {
  auto p = std::make_unique<ContentParticle>();
  p->kind = kind;
  p->occurrence = occurrence;
  p->name = name;
  for (const auto& c : children) p->children.push_back(c->Clone());
  return p;
}

std::string ContentParticle::ToString() const {
  std::string out;
  switch (kind) {
    case Kind::kElementRef:
      out = name;
      break;
    case Kind::kPCData:
      out = "#PCDATA";
      break;
    case Kind::kSequence:
    case Kind::kChoice: {
      out = "(";
      const char* sep = kind == Kind::kSequence ? "," : "|";
      for (size_t i = 0; i < children.size(); ++i) {
        if (i > 0) out += sep;
        out += children[i]->ToString();
      }
      out += ")";
      break;
    }
  }
  char suffix = OccurrenceSuffix(occurrence);
  if (suffix != '\0') out.push_back(suffix);
  return out;
}

const ElementDecl* Dtd::Find(std::string_view name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : it->second;
}

ElementDecl* Dtd::FindMutable(std::string_view name) {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : it->second;
}

Status Dtd::Add(std::unique_ptr<ElementDecl> decl) {
  if (by_name_.count(decl->name) != 0) {
    return Status::AlreadyExists("element '" + decl->name +
                                 "' declared twice");
  }
  by_name_.emplace(decl->name, decl.get());
  elements_.push_back(std::move(decl));
  return Status::OK();
}

namespace {

void CollectRefs(const ContentParticle& p, std::set<std::string>* out) {
  if (p.kind == ContentParticle::Kind::kElementRef) out->insert(p.name);
  for (const auto& c : p.children) CollectRefs(*c, out);
}

}  // namespace

std::vector<std::string> Dtd::UndeclaredReferences() const {
  std::set<std::string> refs;
  for (const auto& e : elements_) {
    if (e->content != nullptr) CollectRefs(*e->content, &refs);
  }
  std::vector<std::string> out;
  for (const std::string& r : refs) {
    if (by_name_.count(r) == 0) out.push_back(r);
  }
  return out;
}

std::vector<std::string> Dtd::RootCandidates() const {
  std::set<std::string> refs;
  for (const auto& e : elements_) {
    if (e->content != nullptr) CollectRefs(*e->content, &refs);
  }
  std::vector<std::string> out;
  for (const auto& e : elements_) {
    if (refs.count(e->name) == 0) out.push_back(e->name);
  }
  return out;
}

std::string Dtd::ToString() const {
  std::string out;
  for (const auto& e : elements_) {
    out += "<!ELEMENT " + e->name + " ";
    switch (e->content_kind) {
      case ContentKind::kEmpty:
        out += "EMPTY";
        break;
      case ContentKind::kAny:
        out += "ANY";
        break;
      case ContentKind::kChildren:
      case ContentKind::kMixed:
        out += e->content->ToString();
        break;
    }
    out += ">\n";
    if (!e->attributes.empty()) {
      out += "<!ATTLIST " + e->name;
      for (const AttributeDecl& a : e->attributes) {
        out += " " + a.name + " " + a.type + " " + a.default_decl;
      }
      out += ">\n";
    }
  }
  return out;
}

namespace {

bool IsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == ':' ||
         c == '-' || c == '.';
}

/// Cursor-based parser for DTD declarations.
class DtdParser {
 public:
  explicit DtdParser(std::string input) : input_(std::move(input)) {}

  Result<Dtd> Parse() {
    Dtd dtd;
    // Attlists may precede their element declaration; buffer them.
    std::vector<std::pair<std::string, std::vector<AttributeDecl>>> attlists;
    while (true) {
      SkipWhitespaceAndComments();
      if (pos_ >= input_.size()) break;
      if (Consume("<!ELEMENT")) {
        XO_ASSIGN_OR_RETURN(auto decl, ParseElementDecl());
        XO_RETURN_NOT_OK(dtd.Add(std::move(decl)));
      } else if (Consume("<!ATTLIST")) {
        XO_ASSIGN_OR_RETURN(auto attlist, ParseAttlist());
        attlists.push_back(std::move(attlist));
      } else if (Consume("<!ENTITY")) {
        // Parameter entities were pre-expanded; general entities skipped.
        XO_RETURN_NOT_OK(SkipUntil('>'));
      } else if (Consume("<!NOTATION")) {
        XO_RETURN_NOT_OK(SkipUntil('>'));
      } else {
        return Status::ParseError(
            "unexpected content in DTD near position " + std::to_string(pos_));
      }
    }
    for (auto& [elem, attrs] : attlists) {
      ElementDecl* decl = dtd.FindMutable(elem);
      if (decl == nullptr) {
        return Status::ParseError("<!ATTLIST " + elem +
                                  "> refers to undeclared element");
      }
      for (AttributeDecl& a : attrs) decl->attributes.push_back(std::move(a));
    }
    return dtd;
  }

 private:
  void SkipWhitespace() {
    while (pos_ < input_.size() &&
           std::isspace(static_cast<unsigned char>(input_[pos_]))) {
      ++pos_;
    }
  }

  void SkipWhitespaceAndComments() {
    while (true) {
      SkipWhitespace();
      if (input_.compare(pos_, 4, "<!--") == 0) {
        size_t end = input_.find("-->", pos_ + 4);
        pos_ = end == std::string::npos ? input_.size() : end + 3;
      } else if (pos_ < input_.size() && input_[pos_] == '%') {
        // An unexpanded parameter-entity reference (undefined entity):
        // tolerate and skip it, as real-world DTDs reference external
        // entities we do not fetch.
        size_t semi = input_.find(';', pos_);
        pos_ = semi == std::string::npos ? input_.size() : semi + 1;
      } else {
        return;
      }
    }
  }

  bool Consume(std::string_view token) {
    if (input_.compare(pos_, token.size(), token) == 0) {
      pos_ += token.size();
      return true;
    }
    return false;
  }

  Status SkipUntil(char c) {
    size_t found = input_.find(c, pos_);
    if (found == std::string::npos) {
      return Status::ParseError("unterminated DTD declaration");
    }
    pos_ = found + 1;
    return Status::OK();
  }

  Result<std::string> ParseName() {
    SkipWhitespace();
    size_t start = pos_;
    while (pos_ < input_.size() && IsNameChar(input_[pos_])) ++pos_;
    if (pos_ == start) {
      return Status::ParseError("expected name in DTD at position " +
                                std::to_string(pos_));
    }
    return input_.substr(start, pos_ - start);
  }

  Occurrence ParseOccurrence() {
    if (pos_ < input_.size()) {
      switch (input_[pos_]) {
        case '?':
          ++pos_;
          return Occurrence::kOptional;
        case '*':
          ++pos_;
          return Occurrence::kStar;
        case '+':
          ++pos_;
          return Occurrence::kPlus;
        default:
          break;
      }
    }
    return Occurrence::kOne;
  }

  Result<std::unique_ptr<ElementDecl>> ParseElementDecl() {
    auto decl = std::make_unique<ElementDecl>();
    XO_ASSIGN_OR_RETURN(decl->name, ParseName());
    SkipWhitespace();
    if (Consume("EMPTY")) {
      decl->content_kind = ContentKind::kEmpty;
    } else if (Consume("ANY")) {
      decl->content_kind = ContentKind::kAny;
    } else {
      XO_ASSIGN_OR_RETURN(decl->content, ParseParticle());
      decl->content_kind =
          ContainsPCData(*decl->content) ? ContentKind::kMixed
                                         : ContentKind::kChildren;
    }
    SkipWhitespace();
    if (!Consume(">")) {
      return Status::ParseError("expected '>' after <!ELEMENT " + decl->name);
    }
    return decl;
  }

  static bool ContainsPCData(const ContentParticle& p) {
    if (p.kind == ContentParticle::Kind::kPCData) return true;
    for (const auto& c : p.children) {
      if (ContainsPCData(*c)) return true;
    }
    return false;
  }

  Result<std::unique_ptr<ContentParticle>> ParseParticle() {
    SkipWhitespace();
    if (Consume("(")) {
      std::vector<std::unique_ptr<ContentParticle>> items;
      char sep = '\0';
      while (true) {
        XO_ASSIGN_OR_RETURN(auto item, ParseParticle());
        items.push_back(std::move(item));
        SkipWhitespace();
        if (Consume(")")) break;
        char c = pos_ < input_.size() ? input_[pos_] : '\0';
        if (c != ',' && c != '|') {
          return Status::ParseError("expected ',' or '|' in content model");
        }
        if (sep != '\0' && sep != c) {
          return Status::ParseError(
              "mixed ',' and '|' at one level of a content model");
        }
        sep = c;
        ++pos_;
      }
      auto group = ContentParticle::Group(
          sep == '|' ? ContentParticle::Kind::kChoice
                     : ContentParticle::Kind::kSequence,
          Occurrence::kOne);
      group->children = std::move(items);
      group->occurrence = ParseOccurrence();
      // Unwrap single-child sequences that carry no extra occurrence.
      if (group->children.size() == 1 &&
          group->occurrence == Occurrence::kOne) {
        return std::move(group->children[0]);
      }
      return group;
    }
    if (Consume("#PCDATA")) {
      return ContentParticle::PCData();
    }
    XO_ASSIGN_OR_RETURN(std::string name, ParseName());
    Occurrence occ = ParseOccurrence();
    return ContentParticle::ElementRef(std::move(name), occ);
  }

  Result<std::pair<std::string, std::vector<AttributeDecl>>> ParseAttlist() {
    XO_ASSIGN_OR_RETURN(std::string elem, ParseName());
    std::vector<AttributeDecl> attrs;
    while (true) {
      SkipWhitespace();
      if (Consume(">")) break;
      if (pos_ >= input_.size()) {
        return Status::ParseError("unterminated <!ATTLIST " + elem);
      }
      if (input_[pos_] == '%') {
        // Undefined parameter-entity reference inside an ATTLIST (e.g. an
        // external %Xlink; we did not fetch): tolerate and skip it.
        XO_RETURN_NOT_OK(SkipUntil(';'));
        continue;
      }
      AttributeDecl attr;
      XO_ASSIGN_OR_RETURN(attr.name, ParseName());
      SkipWhitespace();
      // Type: an enumeration "(a|b|c)" or a keyword such as CDATA/ID/NMTOKEN.
      if (pos_ < input_.size() && input_[pos_] == '(') {
        size_t close = input_.find(')', pos_);
        if (close == std::string::npos) {
          return Status::ParseError("unterminated enumeration in ATTLIST");
        }
        attr.type = input_.substr(pos_, close - pos_ + 1);
        pos_ = close + 1;
      } else {
        XO_ASSIGN_OR_RETURN(attr.type, ParseName());
      }
      SkipWhitespace();
      // Default: #REQUIRED | #IMPLIED | [#FIXED] "literal".
      if (Consume("#REQUIRED")) {
        attr.default_decl = "#REQUIRED";
      } else if (Consume("#IMPLIED")) {
        attr.default_decl = "#IMPLIED";
      } else {
        if (Consume("#FIXED")) {
          attr.default_decl = "#FIXED ";
          SkipWhitespace();
        }
        if (pos_ < input_.size() &&
            (input_[pos_] == '"' || input_[pos_] == '\'')) {
          char quote = input_[pos_++];
          size_t end = input_.find(quote, pos_);
          if (end == std::string::npos) {
            return Status::ParseError("unterminated attribute default");
          }
          attr.default_decl += input_.substr(pos_, end - pos_);
          pos_ = end + 1;
        } else {
          return Status::ParseError("expected attribute default in ATTLIST " +
                                    elem);
        }
      }
      attrs.push_back(std::move(attr));
    }
    return std::make_pair(std::move(elem), std::move(attrs));
  }

  std::string input_;
  size_t pos_ = 0;
};

/// Expands `%name;` parameter-entity references given `<!ENTITY % name "...">`
/// declarations found in the same text. Declarations are kept (the parser
/// skips them); undefined references are left for the parser to tolerate.
std::string ExpandParameterEntities(std::string_view input) {
  std::map<std::string, std::string> entities;
  // First pass: collect declarations.
  size_t pos = 0;
  while (true) {
    size_t decl = input.find("<!ENTITY", pos);
    if (decl == std::string_view::npos) break;
    size_t p = decl + 8;
    while (p < input.size() && std::isspace(static_cast<unsigned char>(input[p]))) ++p;
    if (p >= input.size() || input[p] != '%') {
      pos = decl + 8;
      continue;
    }
    ++p;
    while (p < input.size() && std::isspace(static_cast<unsigned char>(input[p]))) ++p;
    size_t name_start = p;
    while (p < input.size() && IsNameChar(input[p])) ++p;
    std::string name(input.substr(name_start, p - name_start));
    while (p < input.size() && std::isspace(static_cast<unsigned char>(input[p]))) ++p;
    if (p < input.size() && (input[p] == '"' || input[p] == '\'')) {
      char quote = input[p++];
      size_t end = input.find(quote, p);
      if (end != std::string_view::npos) {
        entities[name] = std::string(input.substr(p, end - p));
      }
    }
    pos = decl + 8;
  }
  if (entities.empty()) return std::string(input);
  // Second pass: expand references repeatedly (entities may nest), with an
  // iteration cap to break reference cycles.
  std::string text(input);
  for (int round = 0; round < 8; ++round) {
    bool changed = false;
    std::string out;
    out.reserve(text.size());
    for (size_t i = 0; i < text.size();) {
      if (text[i] == '%') {
        size_t j = i + 1;
        size_t name_start = j;
        while (j < text.size() && IsNameChar(text[j])) ++j;
        if (j < text.size() && text[j] == ';' && j > name_start) {
          std::string name = text.substr(name_start, j - name_start);
          auto it = entities.find(name);
          if (it != entities.end()) {
            out += it->second;
            i = j + 1;
            changed = true;
            continue;
          }
        }
      }
      out.push_back(text[i++]);
    }
    text = std::move(out);
    if (!changed) break;
  }
  return text;
}

}  // namespace

Result<Dtd> ParseDtd(std::string_view input) {
  DtdParser parser(ExpandParameterEntities(input));
  return parser.Parse();
}

}  // namespace xorator::xml
