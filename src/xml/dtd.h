#ifndef XORATOR_XML_DTD_H_
#define XORATOR_XML_DTD_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace xorator::xml {

/// How often a content particle may occur.
enum class Occurrence {
  kOne,       // e
  kOptional,  // e?
  kStar,      // e*
  kPlus,      // e+
};

char OccurrenceSuffix(Occurrence occ);

/// A node in a DTD content model expression.
///
/// `(a, (b | c)*, d?)` parses to a kSequence particle with three children.
struct ContentParticle {
  enum class Kind {
    kElementRef,  // a child element name
    kPCData,      // #PCDATA
    kSequence,    // (p1, p2, ...)
    kChoice,      // (p1 | p2 | ...)
  };

  Kind kind = Kind::kElementRef;
  Occurrence occurrence = Occurrence::kOne;
  std::string name;  // for kElementRef
  std::vector<std::unique_ptr<ContentParticle>> children;

  static std::unique_ptr<ContentParticle> ElementRef(std::string name,
                                                     Occurrence occ);
  static std::unique_ptr<ContentParticle> PCData();
  static std::unique_ptr<ContentParticle> Group(Kind kind, Occurrence occ);

  std::unique_ptr<ContentParticle> Clone() const;

  /// Renders the particle back to DTD syntax, e.g. "(TITLE,SUBTITLE*)".
  std::string ToString() const;
};

/// Content category of an element declaration.
enum class ContentKind {
  kEmpty,     // <!ELEMENT e EMPTY>
  kAny,       // <!ELEMENT e ANY>
  kChildren,  // element content: a particle without #PCDATA
  kMixed,     // (#PCDATA | a | b)* or (#PCDATA)
};

/// One <!ATTLIST> attribute definition (type/default are informational; the
/// mapping layer treats all attributes as optional strings).
struct AttributeDecl {
  std::string name;
  std::string type;           // e.g. "CDATA", "ID", enumeration text
  std::string default_decl;   // e.g. "#IMPLIED", "#REQUIRED", a literal
};

/// One <!ELEMENT> declaration.
struct ElementDecl {
  std::string name;
  ContentKind content_kind = ContentKind::kChildren;
  std::unique_ptr<ContentParticle> content;  // null for EMPTY/ANY
  std::vector<AttributeDecl> attributes;     // merged from <!ATTLIST>

  bool has_pcdata() const { return content_kind == ContentKind::kMixed; }
};

/// A parsed DTD: element declarations in document order.
class Dtd {
 public:
  Dtd() = default;
  Dtd(Dtd&&) = default;
  Dtd& operator=(Dtd&&) = default;

  /// Declaration order as written, which the mapping layer uses for
  /// deterministic column ordering.
  const std::vector<std::unique_ptr<ElementDecl>>& elements() const {
    return elements_;
  }

  const ElementDecl* Find(std::string_view name) const;
  ElementDecl* FindMutable(std::string_view name);

  /// Adds a declaration; fails if the element was already declared.
  [[nodiscard]] Status Add(std::unique_ptr<ElementDecl> decl);

  /// Elements that are referenced by some content model but never declared.
  std::vector<std::string> UndeclaredReferences() const;

  /// Root candidates: declared elements never referenced by another
  /// declared element's content model.
  std::vector<std::string> RootCandidates() const;

  /// Renders all declarations back to DTD syntax.
  std::string ToString() const;

 private:
  std::vector<std::unique_ptr<ElementDecl>> elements_;
  std::map<std::string, ElementDecl*, std::less<>> by_name_;
};

/// Parses the element/attlist/entity declarations of a DTD (an internal
/// subset or a standalone .dtd file). Parameter entities declared as
/// `<!ENTITY % name "text">` are textually expanded at `%name;` references
/// before declaration parsing, which is how real DTDs such as the SIGMOD
/// Proceedings DTD use them.
[[nodiscard]] Result<Dtd> ParseDtd(std::string_view input);

}  // namespace xorator::xml

#endif  // XORATOR_XML_DTD_H_
