#include "xml/parser.h"

#include <cctype>
#include <cstdint>
#include <string>

#include "common/str_util.h"

namespace xorator::xml {

namespace {

bool IsNameStartChar(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}
bool IsNameChar(char c) {
  return IsNameStartChar(c) || std::isdigit(static_cast<unsigned char>(c)) ||
         c == '-' || c == '.';
}

/// Recursive-descent XML parser over a string_view cursor.
class Parser {
 public:
  Parser(std::string_view input, const ParseOptions& options)
      : input_(input), options_(options) {}

  Result<Document> ParseDocument() {
    XO_RETURN_NOT_OK(CheckInputSize());
    Document doc;
    XO_RETURN_NOT_OK(SkipProlog(&doc));
    if (AtEnd() || Peek() != '<') {
      return Error("expected root element");
    }
    XO_ASSIGN_OR_RETURN(doc.root, ParseElement());
    SkipMisc();
    if (!AtEnd()) return Error("content after root element");
    return doc;
  }

  Result<std::unique_ptr<Node>> ParseFragmentNodes() {
    XO_RETURN_NOT_OK(CheckInputSize());
    auto root = Node::Element("#fragment");
    XO_RETURN_NOT_OK(ParseContentInto(root.get(), /*close_tag=*/""));
    if (!AtEnd()) return Error("unexpected '</' in fragment");
    return root;
  }

 private:
  bool AtEnd() const { return pos_ >= input_.size(); }
  char Peek() const { return input_[pos_]; }
  char PeekAt(size_t off) const {
    return pos_ + off < input_.size() ? input_[pos_ + off] : '\0';
  }
  void Advance() {
    if (input_[pos_] == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    ++pos_;
  }
  bool ConsumeIf(std::string_view token) {
    if (input_.substr(pos_).substr(0, token.size()) == token) {
      for (size_t i = 0; i < token.size(); ++i) Advance();
      return true;
    }
    return false;
  }
  void SkipWhitespace() {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) {
      Advance();
    }
  }

  Status Error(std::string msg) const {
    return Status::ParseError(msg + " at line " + std::to_string(line_) +
                              ", column " + std::to_string(col_));
  }

  Status CheckInputSize() const {
    const ParserLimits& limits = options_.limits;
    if (limits.max_input_bytes != 0 && input_.size() > limits.max_input_bytes) {
      return Status::ParseError(
          "input of " + std::to_string(input_.size()) +
          " bytes exceeds the parser limit of " +
          std::to_string(limits.max_input_bytes) + " bytes");
    }
    return Status::OK();
  }

  Status CheckTokenBytes(size_t bytes, std::string_view what) const {
    const ParserLimits& limits = options_.limits;
    if (limits.max_token_bytes != 0 && bytes > limits.max_token_bytes) {
      return Error(std::string(what) + " longer than the parser limit of " +
                   std::to_string(limits.max_token_bytes) + " bytes");
    }
    return Status::OK();
  }

  Result<std::string> ParseName() {
    if (AtEnd() || !IsNameStartChar(Peek())) return Error("expected name");
    size_t start = pos_;
    while (!AtEnd() && IsNameChar(Peek())) Advance();
    XO_RETURN_NOT_OK(CheckTokenBytes(pos_ - start, "name"));
    return std::string(input_.substr(start, pos_ - start));
  }

  // Skips the XML declaration, comments, PIs, whitespace and DOCTYPE before
  // the root element.
  Status SkipProlog(Document* doc) {
    while (true) {
      SkipWhitespace();
      if (ConsumeIf("<?")) {
        XO_RETURN_NOT_OK(SkipUntil("?>"));
      } else if (ConsumeIf("<!--")) {
        XO_RETURN_NOT_OK(SkipUntil("-->"));
      } else if (input_.substr(pos_).substr(0, 9) == "<!DOCTYPE") {
        XO_RETURN_NOT_OK(ParseDoctype(doc));
      } else {
        return Status::OK();
      }
    }
  }

  Status ParseDoctype(Document* doc) {
    ConsumeIf("<!DOCTYPE");
    SkipWhitespace();
    XO_ASSIGN_OR_RETURN(doc->doctype_name, ParseName());
    SkipWhitespace();
    // Optional external id (SYSTEM "..."/PUBLIC "..." "..."): skipped.
    while (!AtEnd() && Peek() != '[' && Peek() != '>') Advance();
    if (!AtEnd() && Peek() == '[') {
      Advance();
      size_t start = pos_;
      int depth = 1;  // '[' nests only via conditional sections; rare.
      while (!AtEnd()) {
        if (Peek() == '[') ++depth;
        if (Peek() == ']') {
          --depth;
          if (depth == 0) break;
        }
        Advance();
      }
      if (AtEnd()) return Error("unterminated DOCTYPE internal subset");
      doc->internal_subset = std::string(input_.substr(start, pos_ - start));
      Advance();  // ']'
      SkipWhitespace();
    }
    if (AtEnd() || Peek() != '>') return Error("expected '>' after DOCTYPE");
    Advance();
    return Status::OK();
  }

  Status SkipUntil(std::string_view token) {
    size_t found = input_.find(token, pos_);
    if (found == std::string_view::npos) {
      return Error(std::string("unterminated construct, expected '") +
                   std::string(token) + "'");
    }
    while (pos_ < found + token.size()) Advance();
    return Status::OK();
  }

  void SkipMisc() {
    while (true) {
      SkipWhitespace();
      if (ConsumeIf("<!--")) {
        if (!SkipUntil("-->").ok()) return;
      } else if (ConsumeIf("<?")) {
        if (!SkipUntil("?>").ok()) return;
      } else {
        return;
      }
    }
  }

  Result<std::unique_ptr<Node>> ParseElement() {
    // Depth bound: one recursion level per open element, so a
    // deeply-nested bomb fails here instead of exhausting the stack.
    if (options_.limits.max_depth != 0 &&
        depth_ >= options_.limits.max_depth) {
      return Error("element nesting deeper than the parser limit of " +
                   std::to_string(options_.limits.max_depth));
    }
    ++depth_;
    auto result = ParseElementAtDepth();
    --depth_;
    return result;
  }

  Result<std::unique_ptr<Node>> ParseElementAtDepth() {
    if (!ConsumeIf("<")) return Error("expected '<'");
    XO_ASSIGN_OR_RETURN(std::string name, ParseName());
    auto elem = Node::Element(name);
    // Attributes.
    while (true) {
      SkipWhitespace();
      if (AtEnd()) return Error("unterminated start tag");
      if (Peek() == '>' || Peek() == '/') break;
      XO_ASSIGN_OR_RETURN(std::string attr_name, ParseName());
      SkipWhitespace();
      if (AtEnd() || Peek() != '=') return Error("expected '=' in attribute");
      Advance();
      SkipWhitespace();
      XO_ASSIGN_OR_RETURN(std::string attr_value, ParseQuoted());
      elem->AddAttribute(std::move(attr_name), std::move(attr_value));
    }
    if (ConsumeIf("/>")) return elem;
    if (!ConsumeIf(">")) return Error("expected '>'");
    XO_RETURN_NOT_OK(ParseContentInto(elem.get(), name));
    return elem;
  }

  Result<std::string> ParseQuoted() {
    if (AtEnd() || (Peek() != '"' && Peek() != '\'')) {
      return Error("expected quoted value");
    }
    char quote = Peek();
    Advance();
    size_t start = pos_;
    while (!AtEnd() && Peek() != quote) Advance();
    if (AtEnd()) return Error("unterminated quoted value");
    XO_RETURN_NOT_OK(CheckTokenBytes(pos_ - start, "attribute value"));
    std::string_view raw = input_.substr(start, pos_ - start);
    Advance();
    return DecodeEntities(raw);
  }

  // Parses element content until the matching close tag (or end of input if
  // `close_tag` is empty, the fragment case).
  Status ParseContentInto(Node* elem, std::string_view close_tag) {
    std::string pending_text;
    auto flush_text = [&]() -> Status {
      if (pending_text.empty()) return Status::OK();
      XO_ASSIGN_OR_RETURN(std::string decoded, DecodeEntities(pending_text));
      pending_text.clear();
      bool all_space = true;
      for (char c : decoded) {
        if (!std::isspace(static_cast<unsigned char>(c))) {
          all_space = false;
          break;
        }
      }
      if (!(options_.strip_whitespace_text && all_space)) {
        elem->AddChild(Node::Text(std::move(decoded)));
      }
      return Status::OK();
    };

    while (true) {
      if (AtEnd()) {
        if (close_tag.empty()) {
          XO_RETURN_NOT_OK(flush_text());
          return Status::OK();
        }
        return Error("unexpected end of input inside <" +
                     std::string(close_tag) + ">");
      }
      if (Peek() == '<') {
        if (PeekAt(1) == '/') {
          XO_RETURN_NOT_OK(flush_text());
          if (close_tag.empty()) return Status::OK();
          ConsumeIf("</");
          XO_ASSIGN_OR_RETURN(std::string name, ParseName());
          SkipWhitespace();
          if (!ConsumeIf(">")) return Error("expected '>' in end tag");
          if (name != close_tag) {
            return Error("mismatched end tag </" + name + ">, expected </" +
                         std::string(close_tag) + ">");
          }
          return Status::OK();
        }
        if (ConsumeIf("<!--")) {
          XO_RETURN_NOT_OK(SkipUntil("-->"));
          continue;
        }
        if (ConsumeIf("<![CDATA[")) {
          size_t found = input_.find("]]>", pos_);
          if (found == std::string_view::npos) {
            return Error("unterminated CDATA section");
          }
          XO_RETURN_NOT_OK(CheckTokenBytes(found - pos_, "CDATA section"));
          XO_RETURN_NOT_OK(flush_text());
          std::string cdata(input_.substr(pos_, found - pos_));
          elem->AddChild(Node::Text(std::move(cdata)));
          while (pos_ < found + 3) Advance();
          continue;
        }
        if (ConsumeIf("<?")) {
          XO_RETURN_NOT_OK(SkipUntil("?>"));
          continue;
        }
        XO_RETURN_NOT_OK(flush_text());
        XO_ASSIGN_OR_RETURN(auto child, ParseElement());
        elem->AddChild(std::move(child));
        continue;
      }
      pending_text.push_back(Peek());
      XO_RETURN_NOT_OK(CheckTokenBytes(pending_text.size(), "text run"));
      Advance();
    }
  }

  std::string_view input_;
  ParseOptions options_;
  size_t pos_ = 0;
  size_t depth_ = 0;
  int line_ = 1;
  int col_ = 1;
};

}  // namespace

Result<std::string> DecodeEntities(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (size_t i = 0; i < raw.size();) {
    if (raw[i] != '&') {
      out.push_back(raw[i++]);
      continue;
    }
    size_t semi = raw.find(';', i);
    if (semi == std::string_view::npos) {
      return Status::ParseError("unterminated entity reference");
    }
    std::string_view name = raw.substr(i + 1, semi - i - 1);
    if (name == "amp") {
      out.push_back('&');
    } else if (name == "lt") {
      out.push_back('<');
    } else if (name == "gt") {
      out.push_back('>');
    } else if (name == "quot") {
      out.push_back('"');
    } else if (name == "apos") {
      out.push_back('\'');
    } else if (!name.empty() && name[0] == '#') {
      uint32_t code = 0;
      bool ok = name.size() > 1;
      if (name.size() > 2 && (name[1] == 'x' || name[1] == 'X')) {
        for (size_t k = 2; k < name.size(); ++k) {
          char c = name[k];
          int digit;
          if (c >= '0' && c <= '9') digit = c - '0';
          else if (c >= 'a' && c <= 'f') digit = c - 'a' + 10;
          else if (c >= 'A' && c <= 'F') digit = c - 'A' + 10;
          else { ok = false; break; }
          code = code * 16 + digit;
        }
      } else {
        for (size_t k = 1; k < name.size(); ++k) {
          char c = name[k];
          if (c < '0' || c > '9') { ok = false; break; }
          code = code * 10 + (c - '0');
        }
      }
      if (!ok) return Status::ParseError("bad character reference");
      // UTF-8 encode.
      if (code < 0x80) {
        out.push_back(static_cast<char>(code));
      } else if (code < 0x800) {
        out.push_back(static_cast<char>(0xC0 | (code >> 6)));
        out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
      } else if (code < 0x10000) {
        out.push_back(static_cast<char>(0xE0 | (code >> 12)));
        out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
        out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
      } else {
        out.push_back(static_cast<char>(0xF0 | (code >> 18)));
        out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
        out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
        out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
      }
    } else {
      return Status::ParseError("unknown entity '&" + std::string(name) +
                                ";'");
    }
    i = semi + 1;
  }
  return out;
}

Result<Document> ParseDocument(std::string_view input,
                               const ParseOptions& options) {
  Parser parser(input, options);
  return parser.ParseDocument();
}

Result<std::unique_ptr<Node>> ParseFragment(std::string_view input,
                                            const ParseOptions& options) {
  Parser parser(input, options);
  return parser.ParseFragmentNodes();
}

}  // namespace xorator::xml
