#ifndef XORATOR_XML_PARSER_H_
#define XORATOR_XML_PARSER_H_

#include <string_view>

#include "common/result.h"
#include "xml/dom.h"

namespace xorator::xml {

/// Hard limits protecting the parser against hostile ("XML bomb") inputs.
/// Exceeding any limit is an ordinary ParseError — never unbounded
/// recursion (stack exhaustion) or unbounded allocation. A limit of 0
/// disables that particular check.
struct ParserLimits {
  /// Maximum element nesting depth. The parser recurses once per level, so
  /// this bounds stack use; 256 is far beyond data-oriented documents
  /// (Shakespeare nests 5 deep) while keeping frames comfortably small.
  size_t max_depth = 256;
  /// Maximum bytes in one token: an element/attribute name, one attribute
  /// value, or one contiguous text run.
  size_t max_token_bytes = 1u << 20;
  /// Maximum total input size in bytes, checked before scanning starts.
  size_t max_input_bytes = 1u << 30;
};

/// Options controlling document parsing.
struct ParseOptions {
  /// When true, text nodes consisting solely of whitespace between elements
  /// are dropped (the usual choice for data-oriented XML).
  bool strip_whitespace_text = true;
  /// Hostile-input bounds (see ParserLimits). Defaults are generous for
  /// real documents and strict enough to stop bombs.
  ParserLimits limits;
};

/// Parses an XML 1.0 document (the subset used by data-oriented XML):
/// elements, attributes, character data, CDATA sections, comments,
/// processing instructions, the five predefined entities, decimal and hex
/// character references, and a DOCTYPE declaration whose internal subset is
/// captured verbatim into `Document::internal_subset`.
///
/// Well-formedness violations produce a ParseError with a line/column
/// position.
[[nodiscard]] Result<Document> ParseDocument(std::string_view input,
                               const ParseOptions& options = {});

/// Parses a *fragment*: a sequence of sibling elements/text with no single
/// root, e.g. "<speaker>s1</speaker><speaker>s2</speaker>". Returned under a
/// synthetic root element named `#fragment`.
[[nodiscard]] Result<std::unique_ptr<Node>> ParseFragment(std::string_view input,
                                            const ParseOptions& options = {});

/// Expands the five predefined entities and character references in
/// attribute values / character data. Exposed for tests.
[[nodiscard]] Result<std::string> DecodeEntities(std::string_view raw);

}  // namespace xorator::xml

#endif  // XORATOR_XML_PARSER_H_
