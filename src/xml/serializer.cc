#include "xml/serializer.h"

namespace xorator::xml {

namespace {

void AppendEscaped(std::string_view raw, bool attribute, std::string* out) {
  for (char c : raw) {
    switch (c) {
      case '&':
        *out += "&amp;";
        break;
      case '<':
        *out += "&lt;";
        break;
      case '>':
        *out += "&gt;";
        break;
      case '"':
        if (attribute) {
          *out += "&quot;";
        } else {
          out->push_back(c);
        }
        break;
      default:
        out->push_back(c);
    }
  }
}

void SerializeNode(const Node& node, int indent, int depth, std::string* out) {
  auto newline_indent = [&](int d) {
    if (indent >= 0) {
      out->push_back('\n');
      out->append(static_cast<size_t>(indent) * d, ' ');
    }
  };
  if (node.is_text()) {
    AppendEscaped(node.text(), /*attribute=*/false, out);
    return;
  }
  if (node.name() == "#fragment") {
    bool first = true;
    for (const auto& c : node.children()) {
      if (!first) newline_indent(depth);
      first = false;
      SerializeNode(*c, indent, depth, out);
    }
    return;
  }
  out->push_back('<');
  *out += node.name();
  for (const Attribute& a : node.attributes()) {
    out->push_back(' ');
    *out += a.name;
    *out += "=\"";
    AppendEscaped(a.value, /*attribute=*/true, out);
    out->push_back('"');
  }
  if (node.children().empty()) {
    *out += "/>";
    return;
  }
  out->push_back('>');
  bool only_text = true;
  for (const auto& c : node.children()) {
    if (!c->is_text()) {
      only_text = false;
      break;
    }
  }
  for (const auto& c : node.children()) {
    if (!only_text) newline_indent(depth + 1);
    SerializeNode(*c, indent, depth + 1, out);
  }
  if (!only_text) newline_indent(depth);
  *out += "</";
  *out += node.name();
  out->push_back('>');
}

}  // namespace

std::string EscapeText(std::string_view raw) {
  std::string out;
  AppendEscaped(raw, /*attribute=*/false, &out);
  return out;
}

std::string EscapeAttribute(std::string_view raw) {
  std::string out;
  AppendEscaped(raw, /*attribute=*/true, &out);
  return out;
}

std::string Serialize(const Node& node, const SerializeOptions& options) {
  std::string out;
  SerializeNode(node, options.indent, 0, &out);
  return out;
}

void SerializeTo(const Node& node, std::string* out) {
  SerializeNode(node, /*indent=*/-1, 0, out);
}

}  // namespace xorator::xml
