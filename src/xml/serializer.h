#ifndef XORATOR_XML_SERIALIZER_H_
#define XORATOR_XML_SERIALIZER_H_

#include <string>

#include "xml/dom.h"

namespace xorator::xml {

/// Options for XML serialization.
struct SerializeOptions {
  /// Pretty-print with this indent per depth level; -1 means compact
  /// single-line output (the default; round-trips exactly when whitespace
  /// text was stripped at parse time).
  int indent = -1;
};

/// Escapes `<`, `>`, `&` (and in attribute context also quotes) as entities.
std::string EscapeText(std::string_view raw);
std::string EscapeAttribute(std::string_view raw);

/// Serializes the subtree rooted at `node`. A synthetic `#fragment` root is
/// serialized as its children only.
std::string Serialize(const Node& node, const SerializeOptions& options = {});

/// Appends the serialization of `node` to `*out` (compact form).
void SerializeTo(const Node& node, std::string* out);

}  // namespace xorator::xml

#endif  // XORATOR_XML_SERIALIZER_H_
