#ifndef XORATOR_XORATOR_H_
#define XORATOR_XORATOR_H_

/// Umbrella header for the XORator library: storing and querying XML data in
/// an object-relational DBMS (reproduction of Runapongsa & Patel, EDBT 2002).
///
/// Layering (each layer depends only on those above it):
///   common/    - Status/Result, string utilities, varints, timing
///   xml/       - XML + DTD parsing, DOM, serialization
///   dtdgraph/  - DTD simplification and the (revised) DTD graph
///   mapping/   - Hybrid / Shared / PerElement / XORator schema mappers
///   xadt/      - the XADT value format, methods and engine UDF bindings
///   ordb/      - the embedded object-relational engine (storage, B+-trees,
///                executor, SQL, UDFs)
///   shred/     - document shredding, bulk loading, reconstruction
///   datagen/   - synthetic Shakespeare / SIGMOD corpora and a generic
///                DTD-driven generator
///   xpath/     - path-expression to SQL translation for either mapping
///   server/    - the network front end: wire protocol, thread-pool socket
///                server and retrying client (DESIGN.md section 17)

#include "common/result.h"
#include "common/status.h"
#include "common/str_util.h"
#include "common/timer.h"
#include "datagen/dtds.h"
#include "datagen/generators.h"
#include "dtdgraph/dtd_graph.h"
#include "dtdgraph/simplify.h"
#include "mapping/mapper.h"
#include "mapping/schema.h"
#include "ordb/database.h"
#include "mapping/xml_stats.h"
#include "shred/loader.h"
#include "shred/reconstruct.h"
#include "shred/shredder.h"
#include "xadt/functions.h"
#include "xadt/xadt.h"
#include "xml/dom.h"
#include "xml/dtd.h"
#include "xml/parser.h"
#include "server/client.h"
#include "server/server.h"
#include "xml/serializer.h"
#include "xpath/xpath.h"

#endif  // XORATOR_XORATOR_H_
