#include "xpath/xpath.h"

#include <cctype>

#include "common/str_util.h"

namespace xorator::xpath {

namespace {

using mapping::ColumnRole;
using mapping::ColumnSpec;
using mapping::TableSpec;

std::string Quote(const std::string& s) {
  std::string out = "'";
  for (char c : s) {
    if (c == '\'') out += "''";
    else out.push_back(c);
  }
  return out + "'";
}

int FindColumn(const TableSpec& spec, ColumnRole role,
               const std::vector<std::string>& path, const std::string& attr) {
  for (size_t i = 0; i < spec.columns.size(); ++i) {
    const ColumnSpec& col = spec.columns[i];
    if (col.role != role) continue;
    if (col.path != path) continue;
    if (role == ColumnRole::kInlinedAttr && col.attr != attr) continue;
    return static_cast<int>(i);
  }
  return -1;
}

}  // namespace

std::string Predicate::ToString() const {
  switch (kind) {
    case Kind::kContainsSelf:
      return "[contains(., " + Quote(key) + ")]";
    case Kind::kContainsChild:
      return "[contains(" + child + ", " + Quote(key) + ")]";
    case Kind::kPosition:
      return "[position() = " + std::to_string(position) + "]";
  }
  return "[?]";
}

std::string PathExpr::ToString() const {
  std::string out;
  for (const Step& step : steps) {
    out += step.descendant ? "//" : "/";
    out += step.name;
    for (const Predicate& p : step.predicates) out += p.ToString();
  }
  return out;
}

Result<PathExpr> ParsePath(std::string_view input) {
  PathExpr path;
  size_t pos = 0;
  auto skip_space = [&] {
    while (pos < input.size() &&
           std::isspace(static_cast<unsigned char>(input[pos]))) {
      ++pos;
    }
  };
  auto parse_name = [&]() -> Result<std::string> {
    skip_space();
    size_t start = pos;
    while (pos < input.size() &&
           (std::isalnum(static_cast<unsigned char>(input[pos])) ||
            input[pos] == '_' || input[pos] == '-')) {
      ++pos;
    }
    if (pos == start) {
      return Status::ParseError("expected name at position " +
                                std::to_string(pos));
    }
    return std::string(input.substr(start, pos - start));
  };
  auto parse_string = [&]() -> Result<std::string> {
    skip_space();
    if (pos >= input.size() || input[pos] != '\'') {
      return Status::ParseError("expected string literal");
    }
    ++pos;
    std::string out;
    while (pos < input.size() && input[pos] != '\'') out.push_back(input[pos++]);
    if (pos >= input.size()) {
      return Status::ParseError("unterminated string literal");
    }
    ++pos;
    return out;
  };
  skip_space();
  while (pos < input.size()) {
    skip_space();
    if (pos >= input.size()) break;
    if (input[pos] != '/') {
      return Status::ParseError("expected '/' at position " +
                                std::to_string(pos));
    }
    Step step;
    ++pos;
    if (pos < input.size() && input[pos] == '/') {
      step.descendant = true;
      ++pos;
    }
    XO_ASSIGN_OR_RETURN(step.name, parse_name());
    skip_space();
    while (pos < input.size() && input[pos] == '[') {
      ++pos;
      skip_space();
      Predicate pred;
      if (input.compare(pos, 8, "position") == 0) {
        pos += 8;
        skip_space();
        if (input.compare(pos, 1, "(") != 0) {
          return Status::ParseError("expected '(' after position");
        }
        ++pos;
        skip_space();
        if (pos >= input.size() || input[pos] != ')') {
          return Status::ParseError("expected ')' after position(");
        }
        ++pos;
        skip_space();
        if (pos >= input.size() || input[pos] != '=') {
          return Status::ParseError("expected '=' in position predicate");
        }
        ++pos;
        skip_space();
        size_t start = pos;
        while (pos < input.size() &&
               std::isdigit(static_cast<unsigned char>(input[pos]))) {
          ++pos;
        }
        if (pos == start) return Status::ParseError("expected number");
        pred.kind = Predicate::Kind::kPosition;
        pred.position = std::stoi(std::string(input.substr(start, pos - start)));
      } else if (input.compare(pos, 8, "contains") == 0) {
        pos += 8;
        skip_space();
        if (pos >= input.size() || input[pos] != '(') {
          return Status::ParseError("expected '(' after contains");
        }
        ++pos;
        skip_space();
        if (pos < input.size() && input[pos] == '.') {
          pred.kind = Predicate::Kind::kContainsSelf;
          ++pos;
        } else {
          pred.kind = Predicate::Kind::kContainsChild;
          XO_ASSIGN_OR_RETURN(pred.child, parse_name());
        }
        skip_space();
        if (pos >= input.size() || input[pos] != ',') {
          return Status::ParseError("expected ',' in contains");
        }
        ++pos;
        XO_ASSIGN_OR_RETURN(pred.key, parse_string());
        skip_space();
        if (pos >= input.size() || input[pos] != ')') {
          return Status::ParseError("expected ')' after contains");
        }
        ++pos;
      } else {
        return Status::ParseError("unknown predicate at position " +
                                  std::to_string(pos));
      }
      skip_space();
      if (pos >= input.size() || input[pos] != ']') {
        return Status::ParseError("expected ']'");
      }
      ++pos;
      step.predicates.push_back(std::move(pred));
      skip_space();
    }
    path.steps.push_back(std::move(step));
  }
  if (path.steps.empty()) {
    return Status::ParseError("empty path expression");
  }
  return path;
}

namespace {

/// Accumulated SQL plus the current binding while walking the path.
struct Ctx {
  std::vector<std::string> from;
  std::vector<std::string> where;
  int alias_count = 0;

  enum class Kind { kRelation, kInlined, kXadt };
  Kind kind = Kind::kRelation;
  std::string element;           // current element name
  const TableSpec* table = nullptr;  // owner table (kRelation/kInlined/kXadt)
  std::string alias;                 // owner table alias
  std::vector<std::string> path;     // kInlined: path below the owner element
  std::string xadt_expr;             // kXadt: expression yielding fragments
  /// kXadt: true when the current elements are the fragment roots of
  /// `xadt_expr` (as opposed to one level below the roots).
  bool xadt_at_roots = true;

  std::string NewAlias(const std::string& base) {
    return base + "_" + std::to_string(++alias_count);
  }
  std::string Qualify(const TableSpec& spec, int col) const {
    return alias + "." + spec.columns[col].name;
  }
};

class TranslateWalk {
 public:
  TranslateWalk(const mapping::MappedSchema* schema,
                const dtdgraph::SimplifiedDtd* dtd)
      : schema_(schema), dtd_(dtd) {}

  Result<std::string> Run(const PathExpr& path, OutputMode mode) {
    Ctx ctx;
    XO_RETURN_NOT_OK(Start(path.steps.front(), &ctx));
    XO_RETURN_NOT_OK(ApplyPredicates(path.steps.front(), &ctx));
    for (size_t i = 1; i < path.steps.size(); ++i) {
      XO_RETURN_NOT_OK(Advance(path.steps[i], &ctx));
      XO_RETURN_NOT_OK(ApplyPredicates(path.steps[i], &ctx));
    }
    return Finish(ctx, mode);
  }

 private:
  Status Start(const Step& step, Ctx* ctx) {
    const TableSpec* table = schema_->TableForElement(step.name);
    if (table == nullptr) {
      return Status::InvalidArgument(
          "path must start at a relation element; '" + step.name +
          "' is not one under the " + schema_->algorithm + " mapping");
    }
    ctx->kind = Ctx::Kind::kRelation;
    ctx->table = table;
    ctx->element = step.name;
    ctx->alias = ctx->NewAlias(table->name);
    ctx->from.push_back(table->name + " " + ctx->alias);
    return Status::OK();
  }

  /// True if `child` is a DTD child of `parent`.
  bool IsDtdChild(const std::string& parent, const std::string& child) const {
    const dtdgraph::SimplifiedElement* decl = dtd_->Find(parent);
    if (decl == nullptr) return false;
    for (const auto& spec : decl->children) {
      if (spec.name == child) return true;
    }
    return false;
  }

  Status Advance(const Step& step, Ctx* ctx) {
    switch (ctx->kind) {
      case Ctx::Kind::kRelation:
        return AdvanceFromRelation(step, ctx);
      case Ctx::Kind::kInlined:
        return AdvanceFromInlined(step, ctx);
      case Ctx::Kind::kXadt:
        return AdvanceInXadt(step, ctx);
    }
    return Status::Internal("bad binding");
  }

  Status AdvanceFromRelation(const Step& step, Ctx* ctx) {
    const std::string& child = step.name;
    // Relation child: join.
    const TableSpec* child_table = schema_->TableForElement(child);
    if (child_table != nullptr) {
      if (!step.descendant && !IsDtdChild(ctx->element, child)) {
        return Status::InvalidArgument("'" + child + "' is not a child of '" +
                                       ctx->element + "'");
      }
      if (step.descendant && !IsDtdChild(ctx->element, child)) {
        return Status::NotImplemented(
            "'//' across relation boundaries is only supported one level "
            "deep ('" + child + "' below '" + ctx->element + "')");
      }
      std::string alias = ctx->NewAlias(child_table->name);
      ctx->from.push_back(child_table->name + " " + alias);
      int parent_col = child_table->RoleIndex(ColumnRole::kParentId);
      int id_col = ctx->table->RoleIndex(ColumnRole::kId);
      if (parent_col < 0 || id_col < 0) {
        return Status::Internal("missing parent/id columns");
      }
      ctx->where.push_back(alias + "." +
                           child_table->columns[parent_col].name + " = " +
                           ctx->Qualify(*ctx->table, id_col));
      int code_col = child_table->RoleIndex(ColumnRole::kParentCode);
      if (code_col >= 0) {
        ctx->where.push_back(alias + "." +
                             child_table->columns[code_col].name + " = " +
                             Quote(ctx->element));
      }
      ctx->table = child_table;
      ctx->alias = alias;
      ctx->element = child;
      return Status::OK();
    }
    // XADT column: enter fragment context.
    int xadt_col = FindColumn(*ctx->table, ColumnRole::kXadtFragment, {child},
                              "");
    if (xadt_col >= 0) {
      ctx->kind = Ctx::Kind::kXadt;
      ctx->xadt_expr = ctx->Qualify(*ctx->table, xadt_col);
      ctx->element = child;
      ctx->xadt_at_roots = true;
      return Status::OK();
    }
    // Inlined column(s): switch to the inlined binding.
    if (!IsDtdChild(ctx->element, child) && !step.descendant) {
      return Status::InvalidArgument("'" + child + "' is not a child of '" +
                                     ctx->element + "'");
    }
    ctx->kind = Ctx::Kind::kInlined;
    ctx->path = {child};
    ctx->element = child;
    if (FindColumn(*ctx->table, ColumnRole::kInlinedValue, ctx->path, "") < 0 &&
        !HasInlinedBelow(*ctx->table, ctx->path)) {
      return Status::InvalidArgument("no mapping for '" + child +
                                     "' below '" + ctx->table->element + "'");
    }
    return Status::OK();
  }

  bool HasInlinedBelow(const TableSpec& spec,
                       const std::vector<std::string>& path) const {
    for (const ColumnSpec& col : spec.columns) {
      if (col.role != ColumnRole::kInlinedValue &&
          col.role != ColumnRole::kInlinedAttr &&
          col.role != ColumnRole::kXadtFragment) {
        continue;
      }
      if (col.path.size() < path.size()) continue;
      if (std::equal(path.begin(), path.end(), col.path.begin())) return true;
    }
    return false;
  }

  Status AdvanceFromInlined(const Step& step, Ctx* ctx) {
    if (step.descendant) {
      return Status::NotImplemented("'//' inside inlined content");
    }
    ctx->path.push_back(step.name);
    ctx->element = step.name;
    // Deeper XADT below the inlined path? (possible under tuned mappings)
    int xadt_col =
        FindColumn(*ctx->table, ColumnRole::kXadtFragment, ctx->path, "");
    if (xadt_col >= 0) {
      ctx->kind = Ctx::Kind::kXadt;
      ctx->xadt_expr = ctx->Qualify(*ctx->table, xadt_col);
      ctx->xadt_at_roots = true;
      return Status::OK();
    }
    if (FindColumn(*ctx->table, ColumnRole::kInlinedValue, ctx->path, "") < 0 &&
        !HasInlinedBelow(*ctx->table, ctx->path)) {
      return Status::InvalidArgument("no mapping for inlined path");
    }
    return Status::OK();
  }

  Status AdvanceInXadt(const Step& step, Ctx* ctx) {
    // getElm's descendant-or-self search implements both '/' and '//'
    // (exact for '/' when the DTD places the name at one level, which the
    // translator's supported subset assumes).
    ctx->xadt_expr = "getElm(" + ctx->xadt_expr + ", " + Quote(step.name) +
                     ", '', '')";
    ctx->element = step.name;
    ctx->xadt_at_roots = true;  // getElm output has the matches as roots
    return Status::OK();
  }

  Status ApplyPredicates(const Step& step, Ctx* ctx) {
    for (const Predicate& pred : step.predicates) {
      switch (ctx->kind) {
        case Ctx::Kind::kRelation:
          XO_RETURN_NOT_OK(RelationPredicate(pred, ctx));
          break;
        case Ctx::Kind::kInlined:
          XO_RETURN_NOT_OK(InlinedPredicate(pred, ctx));
          break;
        case Ctx::Kind::kXadt:
          XO_RETURN_NOT_OK(XadtPredicate(pred, ctx));
          break;
      }
    }
    return Status::OK();
  }

  Status RelationPredicate(const Predicate& pred, Ctx* ctx) {
    const TableSpec& spec = *ctx->table;
    switch (pred.kind) {
      case Predicate::Kind::kContainsSelf: {
        int value_col = spec.RoleIndex(ColumnRole::kValue);
        if (value_col < 0) {
          return Status::InvalidArgument("element '" + ctx->element +
                                         "' has no text column");
        }
        ctx->where.push_back(ctx->Qualify(spec, value_col) + " LIKE " +
                             Quote("%" + pred.key + "%"));
        return Status::OK();
      }
      case Predicate::Kind::kContainsChild: {
        // XADT child: findKeyInElm. Inlined child: LIKE. Relation child:
        // join (the paper's own style, see QE1).
        int xadt_col = FindColumn(spec, ColumnRole::kXadtFragment,
                                  {pred.child}, "");
        if (xadt_col >= 0) {
          ctx->where.push_back("findKeyInElm(" + ctx->Qualify(spec, xadt_col) +
                               ", " + Quote(pred.child) + ", " +
                               Quote(pred.key) + ") = 1");
          return Status::OK();
        }
        int inlined_col = FindColumn(spec, ColumnRole::kInlinedValue,
                                     {pred.child}, "");
        if (inlined_col >= 0) {
          ctx->where.push_back(ctx->Qualify(spec, inlined_col) + " LIKE " +
                               Quote("%" + pred.key + "%"));
          return Status::OK();
        }
        const TableSpec* child_table = schema_->TableForElement(pred.child);
        if (child_table != nullptr) {
          int value_col = child_table->RoleIndex(ColumnRole::kValue);
          int parent_col = child_table->RoleIndex(ColumnRole::kParentId);
          int id_col = spec.RoleIndex(ColumnRole::kId);
          if (value_col < 0 || parent_col < 0 || id_col < 0) {
            return Status::InvalidArgument("cannot filter on child '" +
                                           pred.child + "'");
          }
          std::string alias = ctx->NewAlias(child_table->name);
          ctx->from.push_back(child_table->name + " " + alias);
          ctx->where.push_back(alias + "." +
                               child_table->columns[parent_col].name + " = " +
                               ctx->Qualify(spec, id_col));
          int code_col = child_table->RoleIndex(ColumnRole::kParentCode);
          if (code_col >= 0) {
            ctx->where.push_back(alias + "." +
                                 child_table->columns[code_col].name + " = " +
                                 Quote(ctx->element));
          }
          ctx->where.push_back(alias + "." +
                               child_table->columns[value_col].name +
                               " LIKE " + Quote("%" + pred.key + "%"));
          return Status::OK();
        }
        return Status::InvalidArgument("unknown child '" + pred.child +
                                       "' in predicate");
      }
      case Predicate::Kind::kPosition: {
        int order_col = spec.RoleIndex(ColumnRole::kChildOrder);
        if (order_col < 0) {
          return Status::InvalidArgument("element '" + ctx->element +
                                         "' has no childOrder column");
        }
        ctx->where.push_back(ctx->Qualify(spec, order_col) + " = " +
                             std::to_string(pred.position));
        return Status::OK();
      }
    }
    return Status::Internal("bad predicate");
  }

  Status InlinedPredicate(const Predicate& pred, Ctx* ctx) {
    const TableSpec& spec = *ctx->table;
    switch (pred.kind) {
      case Predicate::Kind::kContainsSelf: {
        int col = FindColumn(spec, ColumnRole::kInlinedValue, ctx->path, "");
        if (col < 0) {
          return Status::InvalidArgument("inlined element has no text column");
        }
        ctx->where.push_back(ctx->Qualify(spec, col) + " LIKE " +
                             Quote("%" + pred.key + "%"));
        return Status::OK();
      }
      case Predicate::Kind::kContainsChild: {
        std::vector<std::string> child_path = ctx->path;
        child_path.push_back(pred.child);
        int col = FindColumn(spec, ColumnRole::kInlinedValue, child_path, "");
        if (col < 0) {
          return Status::InvalidArgument("no column for child '" +
                                         pred.child + "'");
        }
        ctx->where.push_back(ctx->Qualify(spec, col) + " LIKE " +
                             Quote("%" + pred.key + "%"));
        return Status::OK();
      }
      case Predicate::Kind::kPosition:
        return Status::NotImplemented(
            "position() on inlined (single-occurrence) content");
    }
    return Status::Internal("bad predicate");
  }

  Status XadtPredicate(const Predicate& pred, Ctx* ctx) {
    switch (pred.kind) {
      case Predicate::Kind::kContainsSelf:
        ctx->xadt_expr = "getElm(" + ctx->xadt_expr + ", " +
                         Quote(ctx->element) + ", " + Quote(ctx->element) +
                         ", " + Quote(pred.key) + ")";
        return Status::OK();
      case Predicate::Kind::kContainsChild:
        ctx->xadt_expr = "getElm(" + ctx->xadt_expr + ", " +
                         Quote(ctx->element) + ", " + Quote(pred.child) +
                         ", " + Quote(pred.key) + ")";
        return Status::OK();
      case Predicate::Kind::kPosition: {
        // getElmIndex needs the elements still attached to their parents;
        // that is exactly the pre-step expression when the current elements
        // are the fragment roots.
        std::string parent = ctx->xadt_at_roots ? "" : ctx->element;
        ctx->xadt_expr = "getElmIndex(" + ctx->xadt_expr + ", " +
                         Quote(parent) + ", " + Quote(ctx->element) + ", " +
                         std::to_string(pred.position) + ", " +
                         std::to_string(pred.position) + ")";
        ctx->xadt_at_roots = true;
        return Status::OK();
      }
    }
    return Status::Internal("bad predicate");
  }

  Result<std::string> Finish(Ctx& ctx, OutputMode mode) {
    std::string select;
    switch (ctx.kind) {
      case Ctx::Kind::kRelation: {
        if (mode == OutputMode::kCount) {
          select = "COUNT(*) AS n";
        } else {
          int value_col = ctx.table->RoleIndex(ColumnRole::kValue);
          if (value_col < 0) {
            return Status::InvalidArgument(
                "element '" + ctx.element +
                "' has no text column; use count mode");
          }
          select = ctx.Qualify(*ctx.table, value_col) + " AS text";
        }
        break;
      }
      case Ctx::Kind::kInlined: {
        int col =
            FindColumn(*ctx.table, ColumnRole::kInlinedValue, ctx.path, "");
        if (col < 0) {
          return Status::InvalidArgument("inlined element has no text column");
        }
        // Count elements = rows where the inlined column is populated.
        ctx.where.push_back(ctx.Qualify(*ctx.table, col) + " IS NOT NULL");
        select = mode == OutputMode::kCount
                     ? "COUNT(*) AS n"
                     : ctx.Qualify(*ctx.table, col) + " AS text";
        break;
      }
      case Ctx::Kind::kXadt: {
        std::string alias = ctx.NewAlias("u");
        ctx.from.push_back("table(unnest(" + ctx.xadt_expr + ", " +
                           Quote(ctx.element) + ")) " + alias);
        select = mode == OutputMode::kCount ? "COUNT(*) AS n"
                                            : alias + ".out AS text";
        break;
      }
    }
    std::string sql = "SELECT " + select + " FROM " + Join(ctx.from, ", ");
    if (!ctx.where.empty()) {
      sql += " WHERE " + Join(ctx.where, " AND ");
    }
    return sql;
  }

  const mapping::MappedSchema* schema_;
  const dtdgraph::SimplifiedDtd* dtd_;
};

}  // namespace

Result<std::string> Translator::ToSql(const PathExpr& path,
                                      OutputMode mode) const {
  TranslateWalk walk(schema_, dtd_);
  return walk.Run(path, mode);
}

}  // namespace xorator::xpath
