#ifndef XORATOR_XPATH_XPATH_H_
#define XORATOR_XPATH_XPATH_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "dtdgraph/simplify.h"
#include "mapping/schema.h"

namespace xorator::xpath {

/// A predicate inside a path step.
struct Predicate {
  enum class Kind {
    kContainsSelf,   // [contains(., 'key')]
    kContainsChild,  // [contains(Child, 'key')]
    kPosition,       // [position() = n]
  };
  Kind kind = Kind::kContainsSelf;
  std::string child;  // for kContainsChild
  std::string key;    // for the contains forms
  int position = 0;   // for kPosition

  std::string ToString() const;
};

/// One step of a path expression.
struct Step {
  bool descendant = false;  // '//' instead of '/'
  std::string name;
  std::vector<Predicate> predicates;
};

/// A parsed path expression such as
///   /PLAY/ACT/SCENE/SPEECH[contains(SPEAKER,'ROMEO')]//LINE[contains(.,'love')]
struct PathExpr {
  std::vector<Step> steps;

  std::string ToString() const;
};

/// Parses the XPath subset used by the translator:
///   path       := step+
///   step       := ('/' | '//') Name predicate*
///   predicate  := '[' 'contains' '(' ('.' | Name) ',' string ')' ']'
///               | '[' 'position' '(' ')' '=' number ']'
[[nodiscard]] Result<PathExpr> ParsePath(std::string_view input);

/// What the generated SQL should return.
enum class OutputMode {
  kCount,  // SELECT COUNT(*) AS n  — number of selected elements
  kText,   // one row per selected element with its text content
};

/// Compiles path expressions to SQL against a mapped schema — the
/// XML-query-to-SQL rewriting the paper defers to XPERANTO/Shimura et al.
/// The same path produces join-based SQL on a Hybrid-family schema and
/// getElm/unnest-based SQL on an XORator-family schema.
///
/// Supported subset (anything else returns InvalidArgument):
///   * the first step names a document root (child) or any relation
///     element (descendant, '//');
///   * subsequent child steps follow the DTD one level at a time;
///   * '//' below the first step is allowed once the path has entered an
///     XADT fragment (where getElm searches descendants natively);
///   * predicates as in ParsePath. `position()` uses childOrder on
///     relations and getElmIndex inside fragments.
///
/// Caveat (shared with the paper's hand-written SQL, e.g. QE1): a
/// contains(Child,...) predicate over a *relation* child is implemented as
/// a join, so an element with several matching children appears once per
/// match.
class Translator {
 public:
  Translator(const mapping::MappedSchema* schema,
             const dtdgraph::SimplifiedDtd* dtd)
      : schema_(schema), dtd_(dtd) {}

  [[nodiscard]] Result<std::string> ToSql(const PathExpr& path, OutputMode mode) const;

 private:
  const mapping::MappedSchema* schema_;
  const dtdgraph::SimplifiedDtd* dtd_;
};

}  // namespace xorator::xpath

#endif  // XORATOR_XPATH_XPATH_H_
