#include <gtest/gtest.h>

#include "benchutil/benchutil.h"
#include "benchutil/workload.h"
#include "ordb/sql.h"

namespace xorator::benchutil {
namespace {

TEST(TimingTest, MedianOfMiddleAverages) {
  int calls = 0;
  auto ms = TimeMedianOfMiddle(
      [&]() {
        ++calls;
        return Status::OK();
      },
      5);
  ASSERT_TRUE(ms.ok());
  EXPECT_EQ(calls, 5);
  EXPECT_GE(*ms, 0.0);
}

TEST(TimingTest, PropagatesFailure) {
  auto ms = TimeMedianOfMiddle([]() { return Status::Internal("boom"); }, 3);
  EXPECT_FALSE(ms.ok());
  EXPECT_FALSE(TimeMedianOfMiddle([]() { return Status::OK(); }, 0).ok());
}

TEST(TimingTest, SingleRunWorks) {
  auto ms = TimeMedianOfMiddle([]() { return Status::OK(); }, 1);
  ASSERT_TRUE(ms.ok());
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"a", "long header"});
  table.AddRow({"value-one", "x"});
  table.AddRow({"v", "y"});
  std::string out = table.ToString();
  // Header row, separator, two data rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
  EXPECT_NE(out.find("| a         | long header |"), std::string::npos)
      << out;
  EXPECT_NE(out.find("| value-one | x           |"), std::string::npos)
      << out;
}

TEST(FormatTest, Numbers) {
  EXPECT_EQ(Fmt(1.2345, 2), "1.23");
  EXPECT_EQ(Fmt(10.0, 0), "10");
  EXPECT_EQ(FmtBytes(512), "0.5 KB");
  EXPECT_EQ(FmtBytes(3 * 1024 * 1024), "3.0 MB");
}

TEST(WorkloadTest, AllPaperQueriesParse) {
  // Every stored query must at least parse under the SQL front end.
  auto check = [](const std::vector<PaperQuery>& queries) {
    for (const PaperQuery& q : queries) {
      auto hybrid = ordb::sql::ParseSql(q.hybrid_sql);
      EXPECT_TRUE(hybrid.ok()) << q.id << " hybrid: "
                               << hybrid.status().ToString();
      auto xorator = ordb::sql::ParseSql(q.xorator_sql);
      EXPECT_TRUE(xorator.ok()) << q.id << " xorator: "
                                << xorator.status().ToString();
    }
  };
  check(ShakespeareQueries());
  check(SigmodQueries());
  check(UdfOverheadQueries());
  EXPECT_EQ(ShakespeareQueries().size(), 6u);
  EXPECT_EQ(SigmodQueries().size(), 6u);
  EXPECT_EQ(UdfOverheadQueries().size(), 2u);
}

TEST(WorkloadTest, QueryIdsMatchPaperNaming) {
  for (size_t i = 0; i < ShakespeareQueries().size(); ++i) {
    EXPECT_EQ(ShakespeareQueries()[i].id, "QS" + std::to_string(i + 1));
  }
  for (size_t i = 0; i < SigmodQueries().size(); ++i) {
    EXPECT_EQ(SigmodQueries()[i].id, "QG" + std::to_string(i + 1));
  }
}

}  // namespace
}  // namespace xorator::benchutil
