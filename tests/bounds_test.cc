// Adversarial bounds tests (DESIGN.md section 16): every on-disk length,
// offset, and count is attacker-controlled bytes, and each test here hands
// a decoder input crafted to wrap, truncate, or escape its buffer. The
// contract under test is uniform: the decoder fails closed with
// kCorruption (never a crash, a wild read, or a silent wrap), and every
// rejection drains its buffer-pool pins (PinnedFrameCount() == 0) so a
// corrupt page cannot wedge eviction.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <limits>
#include <string>
#include <string_view>

#include "common/safe_math.h"
#include "common/span.h"
#include "common/status.h"
#include "common/varint.h"
#include "ordb/bptree.h"
#include "ordb/buffer_pool.h"
#include "ordb/heap_file.h"
#include "ordb/page.h"
#include "ordb/pager.h"
#include "ordb/row_codec.h"
#include "ordb/tuple.h"
#include "ordb/wal.h"
#include "xadt/scanner.h"

namespace xorator {
namespace {

using ordb::BPlusTree;
using ordb::BufferPool;
using ordb::HeapFile;
using ordb::kPageHeaderBytes;
using ordb::kPageSize;
using ordb::kWalHeaderBytes;
using ordb::kWalRecordHeaderBytes;
using ordb::MemoryPager;
using ordb::ParseWalHeader;
using ordb::ParseWalRecordHeader;
using ordb::RowView;
using ordb::SlottedPage;
using ordb::TableSchema;
using ordb::TypeId;
using ordb::ValidateBPlusTreeNode;
using xadt::FragmentScanner;

// ---------------------------------------------------------------- safe_math

TEST(SafeMathBounds, CheckedArithmeticFailsClosed) {
  const uint64_t big = std::numeric_limits<uint64_t>::max();
  auto sum = xo::CheckedAdd(big, uint64_t{1});
  ASSERT_FALSE(sum.ok());
  EXPECT_EQ(sum.status().code(), StatusCode::kCorruption);
  auto diff = xo::CheckedSub(uint64_t{0}, uint64_t{1});
  ASSERT_FALSE(diff.ok());
  EXPECT_EQ(diff.status().code(), StatusCode::kCorruption);
  auto prod = xo::CheckedMul(big, uint64_t{2});
  ASSERT_FALSE(prod.ok());
  EXPECT_EQ(prod.status().code(), StatusCode::kCorruption);
  // In-range operations pass values through untouched.
  EXPECT_EQ(*xo::CheckedAdd<uint64_t>(40, 2), 42u);
}

TEST(SafeMathBounds, CheckedCastRejectsUnrepresentable) {
  auto narrowed = xo::checked_cast<uint32_t>(uint64_t{1} << 40);
  ASSERT_FALSE(narrowed.ok());
  EXPECT_EQ(narrowed.status().code(), StatusCode::kInvalidArgument);
  auto negative = xo::checked_cast<uint32_t>(int64_t{-1});
  ASSERT_FALSE(negative.ok());
  EXPECT_EQ(*xo::checked_cast<uint32_t>(int64_t{7}), 7u);
  EXPECT_TRUE(xo::FitsIn<uint16_t>(65535));
  EXPECT_FALSE(xo::FitsIn<uint16_t>(65536));
}

TEST(SafeMathBounds, WrapHelpersWrap) {
  const uint64_t big = std::numeric_limits<uint64_t>::max();
  EXPECT_EQ(xo::WrapAdd(big, uint64_t{2}), 1u);
  EXPECT_EQ(xo::WrapSub(uint64_t{0}, uint64_t{1}), big);
  EXPECT_EQ(xo::WrapMul(uint64_t{1} << 63, uint64_t{2}), 0u);
}

// ------------------------------------------------------- span/BoundedReader

TEST(SpanBounds, SubspanAndViewBytesRejectWrappingRanges) {
  const std::string buf(16, 'x');
  const xo::ByteSpan span(buf.data(), buf.size());
  // off + len would wrap a naive `off + len <= size` check.
  auto wrapped =
      xo::ViewBytes(span, 8, std::numeric_limits<size_t>::max() - 4);
  ASSERT_FALSE(wrapped.ok());
  EXPECT_EQ(wrapped.status().code(), StatusCode::kCorruption);
  EXPECT_FALSE(span.Subspan(17, 0).ok());
  EXPECT_TRUE(span.Subspan(16, 0).ok());  // empty tail is fine
  auto tail = xo::ViewBytes(span, 12, 4);
  ASSERT_TRUE(tail.ok());
  EXPECT_EQ(*tail, "xxxx");
}

TEST(BoundedReaderBounds, TruncatedVarint) {
  // Continuation bit set on the last byte: the varint promises more input
  // than exists.
  const std::string bytes("\x80\x80", 2);
  size_t pos = 0;
  auto v = GetVarint(bytes, &pos);
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kCorruption);
  EXPECT_EQ(pos, 0u);  // cursor unchanged on failure
}

TEST(BoundedReaderBounds, OverlongVarint) {
  // 10 continuation bytes shift past bit 63.
  const std::string bytes(10, '\x80');
  size_t pos = 0;
  auto v = GetVarint(bytes, &pos);
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kCorruption);
}

TEST(BoundedReaderBounds, ReadsNeverAdvancePastEnd) {
  const std::string bytes("abcd", 4);
  xo::BoundedReader reader(bytes);
  EXPECT_FALSE(reader.ReadFixed<uint64_t>().ok());
  EXPECT_FALSE(reader.Skip(5).ok());
  EXPECT_FALSE(reader.SeekTo(5).ok());
  ASSERT_TRUE(reader.Skip(4).ok());
  EXPECT_TRUE(reader.AtEnd());
  EXPECT_FALSE(reader.ReadBytes(1).ok());
}

// -------------------------------------------------------------- row codec

TEST(RowCodecBounds, StringLengthOverflowingRecord) {
  TableSchema schema;
  schema.columns.push_back({"s", TypeId::kVarchar});
  // Null bitmap (nothing null), then a length prefix far past uint32.
  std::string record("\x00", 1);
  PutVarint(&record, uint64_t{1} << 40);
  auto view = RowView::Parse(schema, record);
  ASSERT_FALSE(view.ok());
  EXPECT_EQ(view.status().code(), StatusCode::kCorruption);
}

TEST(RowCodecBounds, RecordShorterThanFixedColumns) {
  TableSchema schema;
  schema.columns.push_back({"i", TypeId::kInteger});
  const std::string record("\x00\x01\x02", 3);  // bitmap + 2 of 8 bytes
  auto view = RowView::Parse(schema, record);
  ASSERT_FALSE(view.ok());
  EXPECT_EQ(view.status().code(), StatusCode::kCorruption);
}

// ------------------------------------------------------------ slotted page

TEST(SlottedPageBounds, SlotOffsetPastPageEnd) {
  char buf[kPageSize];
  SlottedPage page(buf);
  page.Init();
  auto slot = page.Insert("victim");
  ASSERT_TRUE(slot.ok());
  // Corrupt the slot entry: offset near the end, length crossing it.
  constexpr size_t kSlotDirectory = kPageHeaderBytes + 8;
  xo::MutableByteSpan frame(buf, kPageSize);
  ASSERT_TRUE(xo::StoreU16(frame, kSlotDirectory, kPageSize - 4).ok());
  ASSERT_TRUE(xo::StoreU16(frame, kSlotDirectory + 2, 64).ok());
  auto rec = page.Get(*slot);
  ASSERT_FALSE(rec.ok());
  EXPECT_EQ(rec.status().code(), StatusCode::kCorruption);
}

TEST(SlottedPageBounds, SlotOffsetInsideHeader) {
  char buf[kPageSize];
  SlottedPage page(buf);
  page.Init();
  auto slot = page.Insert("victim");
  ASSERT_TRUE(slot.ok());
  constexpr size_t kSlotDirectory = kPageHeaderBytes + 8;
  xo::MutableByteSpan frame(buf, kPageSize);
  ASSERT_TRUE(xo::StoreU16(frame, kSlotDirectory, 2).ok());
  auto rec = page.Get(*slot);
  ASSERT_FALSE(rec.ok());
  EXPECT_EQ(rec.status().code(), StatusCode::kCorruption);
}

TEST(SlottedPageBounds, CorruptSlotCountCannotEscapeDirectory) {
  char buf[kPageSize];
  SlottedPage page(buf);
  page.Init();
  // Claim more slots than the whole page could hold a directory for: the
  // directory read for a high slot lands past the 8 KB frame and must be
  // rejected by the checked load, not performed.
  xo::MutableByteSpan frame(buf, kPageSize);
  ASSERT_TRUE(xo::StoreU16(frame, kPageHeaderBytes, 0xFFFF).ok());
  auto rec = page.Get(3000);
  ASSERT_FALSE(rec.ok());
  EXPECT_EQ(rec.status().code(), StatusCode::kCorruption);
}

// ------------------------------------------------------------- B+-tree

TEST(BPlusTreeBounds, ValidatorRejectsCorruptNodes) {
  std::string node(kPageSize, '\0');
  EXPECT_TRUE(ValidateBPlusTreeNode(node).ok());  // empty leaf
  // Wrong size.
  auto short_node = ValidateBPlusTreeNode(std::string_view(node).substr(1));
  EXPECT_EQ(short_node.code(), StatusCode::kCorruption);
  // Unknown type byte.
  node[kPageHeaderBytes] = 7;
  EXPECT_EQ(ValidateBPlusTreeNode(node).code(), StatusCode::kCorruption);
  // Leaf claiming more entries than a page holds.
  node[kPageHeaderBytes] = 0;
  xo::MutableByteSpan frame(node.data(), node.size());
  ASSERT_TRUE(xo::StoreU16(frame, kPageHeaderBytes + 2, 0xFFFF).ok());
  EXPECT_EQ(ValidateBPlusTreeNode(node).code(), StatusCode::kCorruption);
}

TEST(BPlusTreeBounds, CorruptCountFailsClosedAndDrainsPins) {
  MemoryPager pager;
  BufferPool pool(&pager, 64);
  auto tree = BPlusTree::Create(&pool);
  ASSERT_TRUE(tree.ok());
  for (uint64_t k = 0; k < 100; ++k) {
    ASSERT_TRUE(tree->Insert(k, k * 10).ok());
  }
  {
    auto root = pool.Fetch(tree->root());
    ASSERT_TRUE(root.ok());
    xo::MutableByteSpan frame(root->data(), kPageSize);
    ASSERT_TRUE(xo::StoreU16(frame, kPageHeaderBytes + 2, 0xFFFF).ok());
    root->MarkDirty();
    ASSERT_TRUE(root->Release().ok());
  }
  auto found = tree->Find(42);
  ASSERT_FALSE(found.ok());
  EXPECT_EQ(found.status().code(), StatusCode::kCorruption);
  EXPECT_EQ(pool.PinnedFrameCount(), 0u);
  EXPECT_EQ(tree->Insert(1000, 1).code(), StatusCode::kCorruption);
  EXPECT_EQ(pool.PinnedFrameCount(), 0u);
  auto range = tree->FindRange(0, 99);
  EXPECT_EQ(range.status().code(), StatusCode::kCorruption);
  EXPECT_EQ(pool.PinnedFrameCount(), 0u);
}

// ------------------------------------------------------------------- WAL

TEST(WalBounds, HeaderParsing) {
  // Too short.
  EXPECT_EQ(ParseWalHeader("short").status().code(), StatusCode::kCorruption);
  // Bad magic.
  const std::string zeros(kWalHeaderBytes, '\0');
  EXPECT_EQ(ParseWalHeader(zeros).status().code(), StatusCode::kCorruption);
  // Good magic/version but a page count that cannot fit a PageId: the
  // would-be `pages * kPageSize` must be refused before any allocation.
  std::string huge;
  xo::AppendU32(&huge, 0x4C415758u);
  xo::AppendU32(&huge, 1);
  xo::AppendU64(&huge, uint64_t{1} << 40);
  auto parsed = ParseWalHeader(huge);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kCorruption);
  // A sane header parses.
  std::string good;
  xo::AppendU32(&good, 0x4C415758u);
  xo::AppendU32(&good, 1);
  xo::AppendU64(&good, 3);
  auto ok_header = ParseWalHeader(good);
  ASSERT_TRUE(ok_header.ok());
  EXPECT_EQ(ok_header->checkpoint_page_count, 3u);
}

TEST(WalBounds, RecordHeaderParsing) {
  const std::string zeros(kWalRecordHeaderBytes, '\0');
  EXPECT_EQ(ParseWalRecordHeader(zeros).status().code(),
            StatusCode::kCorruption);
  std::string good;
  xo::AppendU32(&good, 0x47504D49u);
  xo::AppendU32(&good, 7);
  xo::AppendU32(&good, 0xDEADBEEFu);
  auto rec = ParseWalRecordHeader(good);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->page_id, 7u);
  EXPECT_EQ(rec->crc, 0xDEADBEEFu);
}

TEST(WalBounds, RecoverRejectsCorruptJournal) {
  const std::string dir = ::testing::TempDir();
  const std::string db_path = dir + "/bounds_wal_test.db";
  const std::string wal_path = dir + "/bounds_wal_test.wal";
  std::remove(db_path.c_str());
  std::remove(wal_path.c_str());
  {
    std::ofstream wal(wal_path, std::ios::binary);
    const std::string garbage(kWalHeaderBytes, '\x5A');
    wal.write(garbage.data(), static_cast<std::streamsize>(garbage.size()));
  }
  auto stats = ordb::RecoverFromWal(db_path, wal_path);
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kCorruption);
  std::remove(wal_path.c_str());
}

// ------------------------------------------------------- heap overflow

TEST(HeapFileBounds, OverflowStubWithHugeTotalFailsClosed) {
  MemoryPager pager;
  BufferPool pool(&pager, 64);
  auto heap = HeapFile::Create(&pool);
  ASSERT_TRUE(heap.ok());
  // Large enough to spill to an overflow chain.
  const std::string record(3 * kPageSize, 'r');
  auto rid = heap->Insert(record);
  ASSERT_TRUE(rid.ok());
  ASSERT_EQ(*heap->Get(*rid), record);
  // Corrupt the stub's total-length field (marker byte, head u32, then
  // total u64). A naive reader would reserve() petabytes or loop the
  // chain forever; the bounded reader must fail closed instead.
  {
    auto ref = pool.Fetch(rid->page_id);
    ASSERT_TRUE(ref.ok());
    SlottedPage page(ref->data());
    auto stub = page.Get(rid->slot);
    ASSERT_TRUE(stub.ok());
    const size_t stub_off = static_cast<size_t>(stub->data() - ref->data());
    xo::MutableByteSpan frame(ref->data(), kPageSize);
    ASSERT_TRUE(
        xo::StoreU64(frame, stub_off + 1 + 4, uint64_t{1} << 50).ok());
    ref->MarkDirty();
    ASSERT_TRUE(ref->Release().ok());
  }
  auto got = heap->Get(*rid);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kCorruption);
  EXPECT_EQ(pool.PinnedFrameCount(), 0u);
}

TEST(HeapFileBounds, OverflowChunkLengthEscapingPageFailsClosed) {
  MemoryPager pager;
  BufferPool pool(&pager, 64);
  auto heap = HeapFile::Create(&pool);
  ASSERT_TRUE(heap.ok());
  const std::string record(3 * kPageSize, 'q');
  auto rid = heap->Insert(record);
  ASSERT_TRUE(rid.ok());
  // Find the chain head from the stub, then corrupt that overflow page's
  // chunk length so it crosses the page boundary.
  uint32_t head = 0;
  {
    auto ref = pool.Fetch(rid->page_id);
    ASSERT_TRUE(ref.ok());
    SlottedPage page(ref->data());
    auto stub = page.Get(rid->slot);
    ASSERT_TRUE(stub.ok());
    xo::BoundedReader reader(*stub);
    ASSERT_TRUE(reader.Skip(1).ok());  // overflow marker byte
    auto parsed_head = reader.ReadFixed<uint32_t>();
    ASSERT_TRUE(parsed_head.ok());
    head = *parsed_head;
    ASSERT_TRUE(ref->Release().ok());
  }
  {
    auto ref = pool.Fetch(head);
    ASSERT_TRUE(ref.ok());
    xo::MutableByteSpan frame(ref->data(), kPageSize);
    ASSERT_TRUE(xo::StoreU32(frame, kPageHeaderBytes + 4, 0xFFFFFFF0u).ok());
    ref->MarkDirty();
    ASSERT_TRUE(ref->Release().ok());
  }
  auto got = heap->Get(*rid);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kCorruption);
  EXPECT_EQ(pool.PinnedFrameCount(), 0u);
}

// --------------------------------------------------------- XADT directory

TEST(XadtDirectoryBounds, RangeArithmeticCannotWrap) {
  // 'D' + count + (start, len) entries, then the embedded payload. A
  // start+len chosen to wrap uint64 used to rely on downstream range
  // checks seeing the wrapped sum; now the add itself fails closed.
  std::string value("D", 1);
  PutVarint(&value, 1);                                  // one fragment
  PutVarint(&value, std::numeric_limits<uint64_t>::max() - 2);  // start
  PutVarint(&value, 16);                                 // len: wraps
  value += "R<a>payload</a>";
  auto scanner = FragmentScanner::Create(value);
  ASSERT_FALSE(scanner.ok());
  EXPECT_EQ(scanner.status().code(), StatusCode::kCorruption);
}

TEST(XadtDirectoryBounds, RangeCrossingValueEndRejected) {
  std::string value("D", 1);
  PutVarint(&value, 1);
  PutVarint(&value, 0);     // start
  PutVarint(&value, 4096);  // len: far past the tiny payload below
  value += "R<a/>";
  auto scanner = FragmentScanner::Create(value);
  ASSERT_FALSE(scanner.ok());
  EXPECT_EQ(scanner.status().code(), StatusCode::kCorruption);
}

TEST(XadtDirectoryBounds, CountExceedingValueRejected) {
  std::string value("D", 1);
  PutVarint(&value, uint64_t{1} << 32);  // more entries than bytes
  value += "R<a/>";
  auto scanner = FragmentScanner::Create(value);
  ASSERT_FALSE(scanner.ok());
  EXPECT_EQ(scanner.status().code(), StatusCode::kCorruption);
}

}  // namespace
}  // namespace xorator
