#include <gtest/gtest.h>

#include <map>
#include <random>
#include <set>

#include "ordb/bptree.h"
#include "ordb/buffer_pool.h"
#include "ordb/pager.h"

namespace xorator::ordb {
namespace {

class BPlusTreeTest : public ::testing::Test {
 protected:
  BPlusTreeTest() : pool_(&pager_, 4096) {}

  MemoryPager pager_;
  BufferPool pool_;
};

TEST_F(BPlusTreeTest, EmptyTree) {
  auto tree = BPlusTree::Create(&pool_);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->entry_count(), 0u);
  auto found = tree->Find(42);
  ASSERT_TRUE(found.ok());
  EXPECT_TRUE(found->empty());
  ASSERT_TRUE(tree->CheckInvariants().ok());
}

TEST_F(BPlusTreeTest, InsertAndFind) {
  auto tree = BPlusTree::Create(&pool_);
  ASSERT_TRUE(tree.ok());
  for (uint64_t k = 0; k < 100; ++k) {
    ASSERT_TRUE(tree->Insert(k, k * 10).ok());
  }
  EXPECT_EQ(tree->entry_count(), 100u);
  auto found = tree->Find(37);
  ASSERT_TRUE(found.ok());
  ASSERT_EQ(found->size(), 1u);
  EXPECT_EQ((*found)[0], 370u);
  EXPECT_TRUE(tree->Find(1000)->empty());
}

TEST_F(BPlusTreeTest, DuplicateKeys) {
  auto tree = BPlusTree::Create(&pool_);
  ASSERT_TRUE(tree.ok());
  for (uint64_t rid = 0; rid < 50; ++rid) {
    ASSERT_TRUE(tree->Insert(7, rid).ok());
  }
  auto found = tree->Find(7);
  ASSERT_TRUE(found.ok());
  ASSERT_EQ(found->size(), 50u);
  // Rids come back sorted (entries are ordered by (key, rid)).
  for (uint64_t rid = 0; rid < 50; ++rid) EXPECT_EQ((*found)[rid], rid);
}

TEST_F(BPlusTreeTest, RangeScan) {
  auto tree = BPlusTree::Create(&pool_);
  ASSERT_TRUE(tree.ok());
  for (uint64_t k = 0; k < 1000; k += 2) {
    ASSERT_TRUE(tree->Insert(k, k).ok());
  }
  auto range = tree->FindRange(100, 110);
  ASSERT_TRUE(range.ok());
  EXPECT_EQ(*range, (std::vector<uint64_t>{100, 102, 104, 106, 108, 110}));
}

TEST_F(BPlusTreeTest, DeleteEntries) {
  auto tree = BPlusTree::Create(&pool_);
  ASSERT_TRUE(tree.ok());
  for (uint64_t k = 0; k < 100; ++k) {
    ASSERT_TRUE(tree->Insert(k, k).ok());
  }
  ASSERT_TRUE(tree->Delete(50, 50).ok());
  EXPECT_TRUE(tree->Find(50)->empty());
  EXPECT_FALSE(tree->Delete(50, 50).ok());
  EXPECT_EQ(tree->entry_count(), 99u);
  ASSERT_TRUE(tree->CheckInvariants().ok());
}

TEST_F(BPlusTreeTest, IntKeyOrderPreserving) {
  EXPECT_LT(IntIndexKey(-5), IntIndexKey(-1));
  EXPECT_LT(IntIndexKey(-1), IntIndexKey(0));
  EXPECT_LT(IntIndexKey(0), IntIndexKey(1));
  EXPECT_LT(IntIndexKey(1), IntIndexKey(INT64_MAX));
  EXPECT_LT(IntIndexKey(INT64_MIN), IntIndexKey(-1));
}

struct ModelParams {
  int n;
  uint64_t seed;
  uint64_t key_range;
};

class BPlusTreeModelTest : public ::testing::TestWithParam<ModelParams> {};

TEST_P(BPlusTreeModelTest, AgreesWithMultimap) {
  const ModelParams& p = GetParam();
  MemoryPager pager;
  BufferPool pool(&pager, 8192);
  auto tree = BPlusTree::Create(&pool);
  ASSERT_TRUE(tree.ok());
  std::multimap<uint64_t, uint64_t> model;
  std::mt19937_64 rng(p.seed);
  for (int i = 0; i < p.n; ++i) {
    uint64_t key = rng() % p.key_range;
    uint64_t rid = i;
    ASSERT_TRUE(tree->Insert(key, rid).ok());
    model.emplace(key, rid);
    if (i % 7 == 0 && !model.empty()) {
      // Delete a random existing entry.
      auto it = model.begin();
      std::advance(it, rng() % model.size());
      ASSERT_TRUE(tree->Delete(it->first, it->second).ok());
      model.erase(it);
    }
  }
  ASSERT_TRUE(tree->CheckInvariants().ok()) << "n=" << p.n;
  EXPECT_EQ(tree->entry_count(), model.size());
  // Point lookups across the key space.
  for (uint64_t key = 0; key < p.key_range; key += p.key_range / 50 + 1) {
    auto got = tree->Find(key);
    ASSERT_TRUE(got.ok());
    auto [lo, hi] = model.equal_range(key);
    std::multiset<uint64_t> expected;
    for (auto it = lo; it != hi; ++it) expected.insert(it->second);
    std::multiset<uint64_t> actual(got->begin(), got->end());
    EXPECT_EQ(actual, expected) << "key " << key;
  }
  // A full-range scan returns everything in key order.
  auto all = tree->FindRange(0, UINT64_MAX);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), model.size());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BPlusTreeModelTest,
    ::testing::Values(ModelParams{100, 1, 50}, ModelParams{1000, 2, 100},
                      ModelParams{5000, 3, 1u << 30},
                      ModelParams{20000, 4, 500},
                      ModelParams{50000, 5, 1u << 20}));

TEST_F(BPlusTreeTest, ManySequentialInsertsSplitInternalNodes) {
  auto tree = BPlusTree::Create(&pool_);
  ASSERT_TRUE(tree.ok());
  const uint64_t kN = 300000;
  for (uint64_t k = 0; k < kN; ++k) {
    ASSERT_TRUE(tree->Insert(k, k).ok());
  }
  EXPECT_GT(tree->page_count(), 500u);  // multiple levels
  ASSERT_TRUE(tree->CheckInvariants().ok());
  for (uint64_t k = 0; k < kN; k += 12345) {
    auto found = tree->Find(k);
    ASSERT_TRUE(found.ok());
    ASSERT_EQ(found->size(), 1u) << k;
    EXPECT_EQ((*found)[0], k);
  }
}

}  // namespace
}  // namespace xorator::ordb
