#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <optional>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "benchutil/fixture.h"
#include "benchutil/workload.h"
#include "datagen/dtds.h"
#include "datagen/generators.h"
#include "ordb/database.h"
#include "shred/loader.h"
#include "xml/dom.h"

namespace xorator {
namespace {

using ordb::Database;
using ordb::DbOptions;
using ordb::HealthState;
using ordb::QueryOptions;

/// The chaos soak harness (DESIGN.md §13): a deterministic, seeded mix of
/// bulk loads, paper queries (QS1-QS6), DELETEs, pragmas, degraded scans
/// and cross-thread cancels runs against a fault-injecting pager; every
/// iteration ends in a crash (or a close attempt) and a clean reopen that
/// must recover to the last committed state with all invariants intact.
///
/// Reproduction: every iteration logs its seed via SCOPED_TRACE. To replay
/// a failing iteration alone, run with XO_CHAOS_SEED=<that seed> and
/// XO_CHAOS_ITERS=1 — the whole workload, fault schedule and crash point
/// derive from the seed, so the replay is exact (cancel-thread timing is
/// the one nondeterminism, and no invariant depends on it). CI soaks a
/// rotating 200-iteration window under ASan and TSan.

uint64_t EnvOr(const char* name, uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return static_cast<uint64_t>(std::strtoull(value, nullptr, 10));
}

/// Every failure a chaos iteration may legitimately surface: injected
/// faults (kUnavailable/kIOError), their checksum consequences
/// (kCorruption), guard stops, fail-fast gates (kUnavailable again) and
/// Cancel() losing the race with query completion (kNotFound). Anything
/// else — kInternal, kInvalidArgument, a crash — is a bug.
bool IsChaosCode(StatusCode code) {
  switch (code) {
    case StatusCode::kUnavailable:
    case StatusCode::kIOError:
    case StatusCode::kCorruption:
    case StatusCode::kCancelled:
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kResourceExhausted:
    case StatusCode::kNotFound:
      return true;
    default:
      return false;
  }
}

class ChaosTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto mapped = benchutil::MapDtd(datagen::kPlaysDtd,
                                    benchutil::Mapping::kXorator);
    ASSERT_TRUE(mapped.ok());
    schema_ = new mapping::MappedSchema(std::move(*mapped));
    datagen::ShakespeareOptions opts;
    opts.plays = 5;
    opts.acts_per_play = 1;
    opts.scenes_per_act = 2;
    opts.speeches_per_scene = 8;
    opts.max_lines_per_speech = 4;
    corpus_ = new std::vector<std::unique_ptr<xml::Node>>(
        datagen::ShakespeareGenerator(opts).GenerateCorpus());
    for (const auto& d : *corpus_) docs_.push_back(d.get());
  }

  static void TearDownTestSuite() {
    delete corpus_;
    corpus_ = nullptr;
    delete schema_;
    schema_ = nullptr;
    docs_.clear();
  }

  /// Strict per-table row counts, or nullopt when any count failed (which
  /// is legal mid-chaos; the failure code is still whitelist-checked).
  static std::optional<std::map<std::string, int64_t>> CountsOf(Database* db) {
    std::map<std::string, int64_t> counts;
    for (const auto& t : schema_->tables) {
      auto r = db->Query("SELECT COUNT(*) AS n FROM " + t.name);
      if (!r.ok()) {
        EXPECT_TRUE(IsChaosCode(r.status().code())) << r.status().ToString();
        return std::nullopt;
      }
      counts[t.name] = r->rows[0][0].AsInt();
    }
    return counts;
  }

  static mapping::MappedSchema* schema_;
  static std::vector<std::unique_ptr<xml::Node>>* corpus_;
  static std::vector<const xml::Node*> docs_;
};

mapping::MappedSchema* ChaosTest::schema_ = nullptr;
std::vector<std::unique_ptr<xml::Node>>* ChaosTest::corpus_ = nullptr;
std::vector<const xml::Node*> ChaosTest::docs_;

TEST_F(ChaosTest, SeededSoakSurvivesFaultsAndCrashes) {
  const uint64_t base_seed = EnvOr("XO_CHAOS_SEED", 20260807);
  const uint64_t iters = EnvOr("XO_CHAOS_ITERS", 25);
  const std::string path = ::testing::TempDir() + "/xorator_chaos.db";
  const std::string wal_path = path + ".wal";
  const auto& queries = benchutil::ShakespeareQueries();

  // Harness honesty counters: a soak whose injector never fires, or whose
  // engine never leaves kHealthy, is not testing failure containment.
  uint64_t iterations_with_injected_faults = 0;
  uint64_t iterations_left_healthy = 0;

  for (uint64_t iter = 0; iter < iters; ++iter) {
    const uint64_t seed = base_seed + iter;
    SCOPED_TRACE("chaos seed " + std::to_string(seed) +
                 " (replay: XO_CHAOS_SEED=" + std::to_string(seed) +
                 " XO_CHAOS_ITERS=1)");
    std::mt19937_64 rng(seed);
    std::remove(path.c_str());
    std::remove(wal_path.c_str());

    const bool faults = rng() % 4 != 0;  // one calm iteration in four
    bool silent_corruption = false;      // bit flips slip past checkpoints
    std::optional<std::map<std::string, int64_t>> committed;
    bool closed_cleanly = false;

    {
      DbOptions options;
      options.path = path;
      options.buffer_pool_pages = 8;  // force evictions and WAL traffic
      ordb::FaultOptions cold;        // wrap the injector, rates all zero
      cold.seed = seed;
      options.fault = cold;
      auto opened = Database::Open(options);
      ASSERT_TRUE(opened.ok()) << opened.status().ToString();
      Database* db = opened->get();

      // Fault-free setup: tables plus a committed two-document baseline.
      shred::Loader setup_loader(db, schema_);
      ASSERT_TRUE(setup_loader.CreateTables().ok());
      std::vector<const xml::Node*> baseline(docs_.begin(), docs_.begin() + 2);
      auto baseline_report = setup_loader.Load(baseline);
      ASSERT_TRUE(baseline_report.ok()) << baseline_report.status().ToString();
      ASSERT_TRUE(baseline_report->errors.empty());
      ASSERT_TRUE(db->Checkpoint().ok());
      committed = CountsOf(db);
      ASSERT_TRUE(committed.has_value());
      std::string delete_column;
      const ordb::TableInfo* speech = db->catalog()->FindTable("speech");
      ASSERT_NE(speech, nullptr);
      for (const auto& col : speech->schema.columns) {
        if (col.type == ordb::TypeId::kInteger) {
          delete_column = col.name;
          break;
        }
      }

      // Arm the hot fault schedule for the chaos phase.
      if (faults) {
        ordb::FaultOptions hot = cold;
        switch (rng() % 4) {
          case 0:  // transient storms the retry policy must absorb
            hot.transient_rate = 0.02 + 0.001 * static_cast<double>(rng() % 40);
            break;
          case 1:  // media decay: hard errors, torn writes, bit rot
            hot.permanent_rate = 0.003;
            hot.torn_write_rate = 0.003;
            hot.bit_flip_rate = 0.004;
            break;
          case 2:  // durability-path failures: WAL appends and syncs
            hot.wal_append_fail_rate = 0.02;
            hot.sync_fail_rate = 0.05;
            break;
          default:  // a little of everything
            hot.transient_rate = 0.01;
            hot.permanent_rate = 0.001;
            hot.bit_flip_rate = 0.002;
            hot.wal_append_fail_rate = 0.005;
            hot.sync_fail_rate = 0.01;
            break;
        }
        const auto& fs = db->fault_pager()->stats();
        if (rng() % 3 == 0) {
          hot.fail_after_writes =
              static_cast<int64_t>(fs.writes + 150 + rng() % 400);
        }
        if (rng() % 4 == 0) {
          hot.wal_fail_after_appends =
              static_cast<int64_t>(fs.wal_appends + rng() % 24);
        }
        silent_corruption = hot.bit_flip_rate > 0;
        db->mutable_options()->fault = hot;  // survives TryRecover rebuilds
        db->fault_pager()->set_options(hot);
      }

      // Health transitions must be monotone within an epoch: severity only
      // climbs, except across a successful TryRecover (or a reopen).
      int prev_severity = 0;
      auto check_health = [&] {
        const int severity = static_cast<int>(db->health()->state());
        EXPECT_GE(severity, prev_severity)
            << "health de-escalated without TryRecover";
        prev_severity = severity;
      };

      uint64_t next_query_id = 1;
      const int ops = 24 + static_cast<int>(rng() % 24);
      for (int op = 0; op < ops; ++op) {
        SCOPED_TRACE("op " + std::to_string(op));
        switch (rng() % 10) {
          case 0:
          case 1: {  // bulk load one more document
            shred::Loader loader(db, schema_);
            std::vector<const xml::Node*> one = {docs_[rng() % docs_.size()]};
            auto report = loader.Load(one);
            if (report.ok()) {
              // Per-document failures are isolated into the report; each
              // must still carry a chaos-legal code (and each must be
              // inspected — an unread error Status trips the tracker).
              for (const auto& e : report->errors) {
                EXPECT_TRUE(IsChaosCode(e.status.code()))
                    << e.status.ToString();
              }
            } else {
              EXPECT_TRUE(IsChaosCode(report.status().code()))
                  << report.status().ToString();
            }
            break;
          }
          case 2:
          case 3:
          case 4: {  // a paper query, sometimes guarded and/or cancelled
            const auto& q = queries[rng() % queries.size()];
            QueryOptions qo;
            if (rng() % 3 == 0) qo.deadline_millis = 1 + rng() % 20;
            if (rng() % 5 == 0) qo.max_memory_bytes = 1 << (12 + rng() % 10);
            const bool cancel = rng() % 4 == 0;
            std::atomic<bool> done{false};
            std::thread canceller;
            if (cancel) {
              qo.query_id = next_query_id++;
              canceller = std::thread([db, qid = qo.query_id, &done] {
                while (!done.load(std::memory_order_relaxed)) {
                  if (db->Cancel(qid).ok()) return;
                  std::this_thread::yield();
                }
              });
            }
            auto r = db->Query(q.xorator_sql, qo);
            done.store(true, std::memory_order_relaxed);
            if (canceller.joinable()) canceller.join();
            if (!r.ok()) {
              EXPECT_TRUE(IsChaosCode(r.status().code()))
                  << q.id << ": " << r.status().ToString();
            }
            break;
          }
          case 5: {  // DELETE a band of speeches
            if (delete_column.empty()) break;
            auto r = db->Query("DELETE FROM speech WHERE " + delete_column +
                               " >= " + std::to_string(1 + rng() % 8));
            if (!r.ok()) {
              EXPECT_TRUE(IsChaosCode(r.status().code()))
                  << r.status().ToString();
            }
            break;
          }
          case 6: {  // degraded scan: must not fail on mere quarantine
            QueryOptions skip;
            skip.skip_quarantined = true;
            auto r = db->Query("SELECT COUNT(*) AS n FROM speech", skip);
            if (!r.ok()) {
              EXPECT_TRUE(IsChaosCode(r.status().code()))
                  << r.status().ToString();
            }
            break;
          }
          case 7: {  // introspection + a scrub slice
            auto health = db->Query("PRAGMA health");
            if (!health.ok()) {
              EXPECT_TRUE(IsChaosCode(health.status().code()))
                  << health.status().ToString();
            }
            auto scrub = db->Query("PRAGMA scrub(8)");
            if (!scrub.ok()) {
              EXPECT_TRUE(IsChaosCode(scrub.status().code()))
                  << scrub.status().ToString();
            }
            break;
          }
          case 8: {  // checkpoint: on success this is the new rollback goal
            Status s = db->Checkpoint();
            if (s.ok()) {
              committed = CountsOf(db);
            } else {
              EXPECT_TRUE(IsChaosCode(s.code())) << s.ToString();
            }
            break;
          }
          default: {  // try to re-arm a limping engine
            if (db->health()->state() == HealthState::kHealthy) break;
            Status s = db->TryRecover();
            if (s.ok()) {
              // Rolled back to the last checkpoint; `committed` already
              // describes it. The severity baseline resets with the state.
              prev_severity = 0;
            } else {
              EXPECT_TRUE(IsChaosCode(s.code())) << s.ToString();
            }
            break;
          }
        }
        EXPECT_EQ(db->buffer_pool()->PinnedFrameCount(), 0u);
        check_health();
        if (db->health()->state() == HealthState::kFailed) break;
      }

      {
        const ordb::FaultStats& fs = db->fault_pager()->stats();
        if (fs.transients + fs.permanents + fs.torn_writes + fs.bit_flips +
                fs.crash_failures + fs.wal_failures + fs.sync_failures >
            0) {
          ++iterations_with_injected_faults;
        }
      }
      if (db->health()->state() != HealthState::kHealthy) {
        ++iterations_left_healthy;
      }

      // Crash — or, one iteration in five, attempt an orderly close whose
      // success commits the current state.
      if (rng() % 5 == 0 && db->health()->state() != HealthState::kFailed) {
        auto final_counts = CountsOf(db);
        Status closed = db->Close();
        if (closed.ok()) {
          committed = final_counts;
          closed_cleanly = true;
        } else {
          EXPECT_TRUE(IsChaosCode(closed.code())) << closed.ToString();
          db->Kill();
        }
      } else {
        db->Kill();
      }
    }

    // Clean reopen: recovery must land exactly on the committed state.
    DbOptions clean;
    clean.path = path;
    auto reopened = Database::Open(clean);
    if (!reopened.ok()) {
      // The only legal way a reopen fails is committed silent corruption
      // of the meta page (a bit flip inside a successful checkpoint).
      EXPECT_TRUE(silent_corruption) << reopened.status().ToString();
      EXPECT_EQ(reopened.status().code(), StatusCode::kCorruption)
          << reopened.status().ToString();
      continue;
    }
    Database* db = reopened->get();
    EXPECT_EQ(db->health()->state(), HealthState::kHealthy);
    EXPECT_NE(db->catalog()->FindTable("speech"), nullptr);
    for (const auto& t : schema_->tables) {
      auto r = db->Query("SELECT COUNT(*) AS n FROM " + t.name);
      if (r.ok()) {
        if (committed.has_value()) {
          EXPECT_EQ(r->rows[0][0].AsInt(), (*committed)[t.name]) << t.name;
        }
      } else {
        // Committed bit rot: detected, quarantined, and still readable in
        // degraded mode — never a crash or garbage rows.
        EXPECT_EQ(r.status().code(), StatusCode::kCorruption)
            << t.name << ": " << r.status().ToString();
        EXPECT_TRUE(silent_corruption) << t.name;
        QueryOptions skip;
        skip.skip_quarantined = true;
        auto degraded =
            db->Query("SELECT COUNT(*) AS n FROM " + t.name, skip);
        EXPECT_TRUE(degraded.ok()) << degraded.status().ToString();
        if (degraded.ok() && committed.has_value()) {
          EXPECT_LE(degraded->rows[0][0].AsInt(), (*committed)[t.name]);
        }
      }
      EXPECT_EQ(db->buffer_pool()->PinnedFrameCount(), 0u);
    }
    if (!faults && !closed_cleanly) {
      // Calm iterations must recover to a checksum-perfect file.
      auto scrub = db->Query("PRAGMA scrub(1000000)");
      ASSERT_TRUE(scrub.ok()) << scrub.status().ToString();
      EXPECT_EQ(scrub->rows[0][3].AsInt(), 0);  // pages_bad
      EXPECT_TRUE(scrub->rows[0][5].AsBool());  // wrapped: full pass
    }
    if (db->health()->state() == HealthState::kHealthy) {
      EXPECT_TRUE(db->Close().ok());
    } else {
      db->Kill();
    }
  }
  if (iters >= 10) {
    // With ~3/4 of iterations running a hot schedule, a window this size
    // that injected nothing (or never degraded the engine) means the
    // harness has rotted, not that the seeds were unlucky.
    EXPECT_GT(iterations_with_injected_faults, 0u);
    EXPECT_GT(iterations_left_healthy, 0u);
  }
  std::remove(path.c_str());
  std::remove(wal_path.c_str());
}

}  // namespace
}  // namespace xorator
